// Command sensnetd is the topology-as-a-service daemon: it holds built
// SENS/HNG network snapshots in memory and serves route, stretch,
// coverage and lifetime queries over HTTP/JSON, batching concurrent
// queries into shared measurement sweeps.
//
// Usage:
//
//	sensnetd -addr :8080 -preload kind:udg,side:25,lambda:16,seed:42
//	sensnetd -workers 16 -batch 128 -batchwait 1ms
//	sensnetd -preload kind:hng,side:20,baseradius:1 -check
//
// The -check flag builds the preload snapshot, prints its summary and
// exits without serving — a dry run for specs and scripts.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the daemon CLI against explicit streams and returns the
// process exit code — the testable core of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sensnetd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":8080", "listen address")
		preload   = fs.String("preload", "", "snapshot spec to build and activate at startup, e.g. kind:udg,side:25,lambda:16,seed:42")
		workers   = fs.Int("workers", 8, "bounded worker pool size (queries beyond it get 429)")
		batch     = fs.Int("batch", 64, "batcher flush threshold in pairs")
		batchwait = fs.Duration("batchwait", 2*time.Millisecond, "batcher latency bound")
		check     = fs.Bool("check", false, "build the -preload snapshot, print its summary and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "sensnetd: "+format+"\n", args...)
		return 1
	}

	if *check && *preload == "" {
		return fail("-check needs a -preload spec to build")
	}

	srv := serve.New(serve.Config{
		Workers:       *workers,
		MaxBatchPairs: *batch,
		BatchWait:     *batchwait,
	})

	if *preload != "" {
		spec, err := parsePreload(*preload)
		if err != nil {
			return fail("%v", err)
		}
		snap, err := serve.Build(spec)
		if err != nil {
			return fail("preload build: %v", err)
		}
		live, _ := srv.Store().Add(snap, true, false)
		if err := emitInfo(stdout, live.Info); err != nil {
			return fail("encode: %v", err)
		}
		if *check {
			return 0
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stdout, "sensnetd: listening on %s\n", *addr)

	select {
	case err := <-errc:
		return fail("serve: %v", err)
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fail("shutdown: %v", err)
	}
	fmt.Fprintln(stdout, "sensnetd: drained, exiting")
	return 0
}

// parsePreload parses the -preload spec "key:value,..." into a BuildSpec.
// Keys mirror the POST /snapshots JSON fields (lower-case).
func parsePreload(spec string) (serve.BuildSpec, error) {
	var sp serve.BuildSpec
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return sp, fmt.Errorf("bad -preload entry %q (want key:value)", part)
		}
		var err error
		switch key {
		case "kind":
			sp.Kind = val
		case "mode":
			sp.Mode = val
		case "seed":
			_, err = fmt.Sscanf(val, "%d", &sp.Seed)
		case "stream":
			_, err = fmt.Sscanf(val, "%d", &sp.Stream)
		case "side":
			_, err = fmt.Sscanf(val, "%g", &sp.Side)
		case "lambda":
			_, err = fmt.Sscanf(val, "%g", &sp.Lambda)
		case "genside":
			_, err = fmt.Sscanf(val, "%g", &sp.GenSide)
		case "p":
			_, err = fmt.Sscanf(val, "%g", &sp.P)
		case "maxchildren":
			_, err = fmt.Sscanf(val, "%d", &sp.MaxChildren)
		case "baseradius":
			_, err = fmt.Sscanf(val, "%g", &sp.BaseRadius)
		case "slabcap":
			_, err = fmt.Sscanf(val, "%d", &sp.SlabCap)
		default:
			return sp, fmt.Errorf("unknown -preload key %q", key)
		}
		if err != nil {
			return sp, fmt.Errorf("bad -preload value for %q: %q", key, val)
		}
	}
	return sp, nil
}

// emitInfo prints one snapshot's summary as indented JSON.
func emitInfo(w io.Writer, info serve.SnapshotInfo) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}
