package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/serve"
)

// runCLI executes run with captured output.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

// TestCheckPreload is the success-path smoke test: -check builds the
// preload snapshot, prints its summary and exits 0 without serving.
func TestCheckPreload(t *testing.T) {
	out, _, code := runCLI(t, "-check", "-preload", "kind:udg,side:8,lambda:8,seed:1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var info serve.SnapshotInfo
	if err := json.Unmarshal([]byte(out), &info); err != nil {
		t.Fatalf("-check output is not a snapshot summary: %v\n%s", err, out)
	}
	if info.Kind != "udg-sens" || info.Points == 0 || info.ID == "" || !info.HasBase {
		t.Fatalf("unexpected preload summary: %+v", info)
	}
}

// TestCheckPreloadHNG covers the HNG preload path with a base graph.
func TestCheckPreloadHNG(t *testing.T) {
	out, _, code := runCLI(t, "-check", "-preload", "kind:hng,side:6,lambda:6,seed:2,baseradius:1")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var info serve.SnapshotInfo
	if err := json.Unmarshal([]byte(out), &info); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if info.Kind != "hng" || !info.HasBase {
		t.Fatalf("unexpected HNG summary: %+v", info)
	}
}

func TestUsageError(t *testing.T) {
	_, stderr, code := runCLI(t, "-definitely-not-a-flag")
	if code != 2 {
		t.Fatalf("exit %d, want 2 on flag parse error", code)
	}
	if !strings.Contains(stderr, "Usage") && !strings.Contains(stderr, "flag") {
		t.Fatalf("no usage output on stderr:\n%s", stderr)
	}
}

func TestCheckWithoutPreload(t *testing.T) {
	_, stderr, code := runCLI(t, "-check")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr, "-preload") {
		t.Fatalf("error does not mention the missing -preload:\n%s", stderr)
	}
}

func TestBadPreloadSpecs(t *testing.T) {
	cases := []struct{ name, spec, wantErr string }{
		{"missing colon", "kind=udg", "want key:value"},
		{"unknown key", "kind:udg,widgets:3", "unknown -preload key"},
		{"bad value", "kind:udg,side:wide", "bad -preload value"},
		{"bad kind", "kind:mesh", "unknown kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, stderr, code := runCLI(t, "-check", "-preload", tc.spec)
			if code != 1 {
				t.Fatalf("exit %d, want 1", code)
			}
			if !strings.Contains(stderr, tc.wantErr) {
				t.Fatalf("stderr %q does not mention %q", stderr, tc.wantErr)
			}
		})
	}
}

// TestParsePreloadRoundTrip pins that every documented key lands in the
// right BuildSpec field.
func TestParsePreloadRoundTrip(t *testing.T) {
	sp, err := parsePreload("kind:hng,seed:7,stream:2,side:12.5,lambda:4,mode:relaxed,p:0.25,maxchildren:4,baseradius:1.5,slabcap:3")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := serve.BuildSpec{
		Kind: "hng", Seed: 7, Stream: 2, Side: 12.5, Lambda: 4,
		Mode: "relaxed", P: 0.25, MaxChildren: 4, BaseRadius: 1.5, SlabCap: 3,
	}
	if sp != want {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}
}
