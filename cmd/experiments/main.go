// Command experiments regenerates the paper-reproduction tables (DESIGN.md
// §4, EXPERIMENTS.md). Each experiment E01–E18 backs one theorem, claim or
// numeric bound of the paper.
//
// Usage:
//
//	experiments                  # run everything at full scale
//	experiments -run E05,E07     # just the threshold experiments
//	experiments -scale 0.2       # quick pass
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/rng"
)

func main() {
	var (
		run   = flag.String("run", "all", "comma-separated experiment IDs (e.g. E05,E07) or 'all'")
		scale = flag.Float64("scale", 1.0, "trial/size multiplier (1 = EXPERIMENTS.md scale)")
		seed  = flag.Uint64("seed", 2026, "random seed")
		list  = flag.Bool("list", false, "list available experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All {
			fmt.Printf("%s  %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Config{Seed: rng.Seed(*seed), Scale: *scale}
	var selected []experiments.Runner
	if *run == "all" {
		selected = experiments.All
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			r := experiments.ByID(id)
			if r == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", id)
				os.Exit(1)
			}
			selected = append(selected, *r)
		}
	}

	for i, r := range selected {
		if i > 0 {
			fmt.Println()
		}
		start := time.Now()
		table := r.Run(cfg)
		fmt.Print(table.String())
		fmt.Printf("(%s in %v)\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
