// Command experiments regenerates the paper-reproduction tables (DESIGN.md
// §4) through the scenario engine: every experiment — the paper artifacts
// E01–E18, the hierarchical-neighbor-graph comparisons H01–H03 and the
// energy/lifetime scenarios Q01–Q03 — is a registered scenario, executed
// through a shared build cache (deployments, base graphs, SENS structures,
// HNGs, baselines, lifetime instances and measurement weight slabs are
// built at most once per suite run) with results streamed to a pluggable
// sink.
//
// Usage:
//
//	experiments                        # run everything at full scale
//	experiments -list                  # list scenarios, tags and parameter grids
//	experiments -run E05,E07           # just the threshold experiments
//	experiments -run 'E0?'             # glob over IDs or names
//	experiments -run tag:power         # everything tagged "power"
//	experiments -run tag:topology:hng  # the hierarchical-neighbor-graph suite
//	experiments -run tag:energy        # the battery/lifetime suite (Q01–Q03)
//	experiments -run stretch           # by scenario name
//	experiments -scale 0.2             # quick pass
//	experiments -format csv -out t.csv # stream rows as CSV to a file
//	experiments -format jsonl          # one JSON event per table/row/note
//	experiments -jobs 4                # run up to 4 scenarios concurrently
//
// Output is deterministic for a fixed seed: tables are emitted in
// registration order and are byte-identical at any -jobs value or
// GOMAXPROCS.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/rng"
	"repro/internal/scenario"
)

func main() {
	var (
		run = flag.String("run", "all", "comma-separated scenario selectors: IDs (E05), "+
			"names (stretch), globs (E0?, ablation-*) or tags (tag:power)")
		scale   = flag.Float64("scale", 1.0, "trial/size multiplier (1 = EXPERIMENTS.md scale)")
		seed    = flag.Uint64("seed", 2026, "random seed")
		list    = flag.Bool("list", false, "list available scenarios and exit")
		format  = flag.String("format", "table", "output format: table, csv or jsonl")
		out     = flag.String("out", "", "write results to this file instead of stdout")
		jobs    = flag.Int("jobs", 1, "max scenarios running concurrently")
		timings = flag.Bool("timings", true, "report per-scenario wall time (table and jsonl formats)")
	)
	flag.Parse()
	// The experiments package registers the scenarios at init; referencing it
	// keeps that dependency explicit.
	_ = experiments.All

	if *list {
		listScenarios()
		return
	}

	selected, err := scenario.Match(strings.Split(*run, ","))
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}

	var sink scenario.Sink
	switch *format {
	case "table":
		ts := scenario.NewTextSink(w)
		ts.Timings = *timings
		sink = ts
	case "csv":
		sink = scenario.NewCSVSink(w)
	case "jsonl":
		js := scenario.NewJSONLSink(w)
		if !*timings {
			sink = noTimingSink{js}
		} else {
			sink = js
		}
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown format %q (table, csv, jsonl)\n", *format)
		os.Exit(1)
	}

	eng := scenario.NewEngine(sink)
	eng.Jobs = *jobs
	cfg := scenario.Config{Seed: rng.Seed(*seed), Scale: *scale}
	if _, err := eng.Run(cfg, selected); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// noTimingSink hides the TimingSink extension of the wrapped sink.
type noTimingSink struct{ scenario.Sink }

func listScenarios() {
	for _, s := range scenario.All() {
		fmt.Printf("%s  %-18s %s\n", s.ID, s.Name, s.Title)
		if len(s.Tags) > 0 {
			fmt.Printf("     tags: %s\n", strings.Join(s.Tags, ", "))
		}
		for _, p := range s.Grid {
			fmt.Printf("     grid: %s ∈ {%s}\n", p.Name, strings.Join(p.Values, ", "))
		}
		if len(s.Needs) > 0 {
			fmt.Printf("     needs: %s\n", strings.Join(s.Needs, ", "))
		}
	}
	fmt.Printf("\ntags: %s\n", strings.Join(scenario.Tags(), ", "))
}
