// Command sensnet builds a SENS network over a random deployment and
// reports its structure — the quickest way to see the paper's construction
// on real numbers.
//
// Usage:
//
//	sensnet -kind udg -lambda 16 -side 30 -seed 1
//	sensnet -kind udg -mode relaxed -lambda 4 -render
//	sensnet -kind nn -k 188 -a 0.893 -tiles 5 -json
//	sensnet -kind udg -side 14 -faults crash:0.1,loss:0.05,attack:degree
//	sensnet -kind udg -side 14 -mobility model:waypoint,speed:0.05,pause:2,steps:40
//	sensnet -kind udg -scale -side 250 -lambda 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	sensnet "repro"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mobility"
	"repro/internal/tiling"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// udgSpecFor maps the -mode flag to its geometry spec.
func udgSpecFor(mode string) (sensnet.UDGSpec, error) {
	switch mode {
	case "literal":
		return sensnet.PaperUDGSpec(), nil
	case "repaired":
		return sensnet.DefaultUDGSpec(), nil
	case "relaxed":
		return sensnet.RelaxedUDGSpec(), nil
	}
	return sensnet.UDGSpec{}, fmt.Errorf("unknown -mode %q", mode)
}

// run executes the CLI against explicit streams and returns the process
// exit code — the testable core of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sensnet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "udg", "construction: udg | nn")
		mode    = fs.String("mode", "repaired", "UDG geometry: literal | repaired | relaxed")
		lambda  = fs.Float64("lambda", 16, "Poisson intensity (udg; nn uses λ=1)")
		side    = fs.Float64("side", 30, "deployment box side (udg)")
		k       = fs.Int("k", 188, "NN parameter k")
		a       = fs.Float64("a", 0.893, "NN tile scale a (tile side = 10a)")
		tiles   = fs.Int("tiles", 5, "NN: box side in tiles")
		seed    = fs.Uint64("seed", 1, "random seed")
		asJSON  = fs.Bool("json", false, "emit JSON summary")
		render  = fs.Bool("render", false, "render the tile map (good/bad) as ASCII")
		tilefig = fs.Bool("tilefig", false, "render the tile region layout (paper Fig. 3 / Fig. 5) and exit")
		faults  = fs.String("faults", "", "fault spec, e.g. crash:0.1,loss:0.05,attack:degree (attack: random | degree | betweenness)")
		mob     = fs.String("mobility", "", "mobility spec, e.g. model:waypoint,speed:0.05,pause:2,steps:40 (model: waypoint | direction)")
		scale   = fs.Bool("scale", false, "use the scale-tier pipeline: streaming SoA deployment, pair-free grid UDG, tile-sharded SENS build (udg only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, args ...any) int {
		fmt.Fprintf(stderr, "sensnet: "+format+"\n", args...)
		return 1
	}

	if *tilefig {
		switch *kind {
		case "udg":
			spec, err := udgSpecFor(*mode)
			if err != nil {
				return fail("%v", err)
			}
			fmt.Fprintf(stdout, "UDG-SENS tile (%s geometry, paper Fig. 3): C=C0, r/l/t/b=relay regions\n\n", *mode)
			fmt.Fprint(stdout, tiling.RenderUDGTile(spec, 64))
		case "nn":
			spec := sensnet.NNSpec{A: *a, K: *k}
			fmt.Fprintf(stdout, "NN-SENS tile (a=%v, paper Fig. 5): C=C0, R/L/T/B=outer disks, r/l/t/b=bridges\n\n", *a)
			fmt.Fprint(stdout, tiling.RenderNNTile(spec.Compile(), 72))
		default:
			return fail("unknown -kind %q", *kind)
		}
		return 0
	}

	var (
		net *sensnet.Network
		err error
	)
	switch *kind {
	case "udg":
		spec, serr := udgSpecFor(*mode)
		if serr != nil {
			return fail("%v", serr)
		}
		box := sensnet.Box(*side, *side)
		if *scale {
			// Scale tier: tile-streamed SoA deployment (its per-tile
			// substreams draw differently from Deploy, so the realization
			// differs from the default pipeline at the same seed), pair-free
			// grid UDG and the tile-sharded SENS build.
			pts := sensnet.DeploySoA(box, *lambda, sensnet.Seed(*seed), scaleGenSide).Points(nil)
			net, err = sensnet.BuildUDGSensSharded(pts, box, spec, sensnet.Options{})
		} else {
			pts := sensnet.Deploy(box, *lambda, sensnet.Seed(*seed))
			net, err = sensnet.BuildUDGSens(pts, box, spec, sensnet.Options{})
		}
	case "nn":
		if *scale {
			return fail("-scale supports -kind udg only")
		}
		spec := sensnet.NNSpec{A: *a, K: *k}
		boxSide := float64(*tiles) * spec.TileSide()
		box := sensnet.Box(boxSide, boxSide)
		pts := sensnet.Deploy(box, 1, sensnet.Seed(*seed))
		net, err = sensnet.BuildNNSens(pts, box, spec, sensnet.Options{})
	default:
		return fail("unknown -kind %q", *kind)
	}
	if err != nil {
		return fail("build: %v", err)
	}

	var fsum *faultSummary
	if *faults != "" {
		fsum, err = applyFaults(net, *faults, *seed)
		if err != nil {
			return fail("%v", err)
		}
	}

	var msum *mobilitySummary
	if *mob != "" {
		msum, err = applyMobility(net, *mob, *seed)
		if err != nil {
			return fail("%v", err)
		}
	}

	if *asJSON {
		if err := emitJSON(stdout, net, fsum, msum); err != nil {
			return fail("encode: %v", err)
		}
	} else {
		emitText(stdout, net, fsum, msum)
	}
	if *render {
		fmt.Fprintln(stdout)
		fmt.Fprint(stdout, renderTiles(net))
	}
	return 0
}

// faultSummary is the robustness block emitted when -faults is given: the
// parsed spec applied to the freshly built network.
type faultSummary struct {
	Attack        string  `json:"attack"`
	CrashFraction float64 `json:"crashFraction"`
	Crashed       int     `json:"crashed"`
	SurvivingLCC  float64 `json:"survivingLCC"`
	LossRate      float64 `json:"lossRate"`
}

// parseFaults parses "crash:FRAC,loss:P,attack:SEL" (any subset, any
// order; attack defaults to random).
func parseFaults(spec string) (crash, loss float64, sel sensnet.VictimSelector, err error) {
	sel = sensnet.SelectRandom
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return 0, 0, sel, fmt.Errorf("bad -faults entry %q (want key:value)", part)
		}
		switch key {
		case "crash":
			if _, e := fmt.Sscanf(val, "%g", &crash); e != nil || crash < 0 || crash > 1 {
				return 0, 0, sel, fmt.Errorf("bad -faults crash fraction %q (want 0..1)", val)
			}
		case "loss":
			if _, e := fmt.Sscanf(val, "%g", &loss); e != nil || loss < 0 || loss >= 1 {
				return 0, 0, sel, fmt.Errorf("bad -faults loss rate %q (want 0 ≤ p < 1)", val)
			}
		case "attack":
			switch val {
			case "random":
				sel = sensnet.SelectRandom
			case "degree":
				sel = sensnet.SelectDegree
			case "betweenness":
				sel = sensnet.SelectBetweenness
			default:
				return 0, 0, sel, fmt.Errorf("unknown -faults attack %q (want random | degree | betweenness)", val)
			}
		default:
			return 0, 0, sel, fmt.Errorf("unknown -faults key %q (want crash | loss | attack)", key)
		}
	}
	return crash, loss, sel, nil
}

// applyFaults builds the deterministic fault schedule the spec describes,
// applies the crash prefix to the network's member set, and summarizes
// what an attacked run would start from.
func applyFaults(net *sensnet.Network, spec string, seed uint64) (*faultSummary, error) {
	crash, loss, sel, err := parseFaults(spec)
	if err != nil {
		return nil, err
	}
	victims := sensnet.NetworkVictims(net, sel, sensnet.Seed(seed))
	sched := sensnet.CrashSchedule(victims, crash, 1, 0)
	if loss > 0 {
		sched = sched.WithLoss(loss)
	}
	alive := sched.AliveSet(int(net.Graph.N), 1)
	lcc := graph.LargestComponentWhere(net.Graph, net.Members,
		func(u int32) bool { return alive[u] })
	return &faultSummary{
		Attack:        sel.String(),
		CrashFraction: crash,
		Crashed:       len(sched.Crashes),
		SurvivingLCC:  float64(lcc) / float64(len(net.Members)),
		LossRate:      sched.LossAt(1),
	}, nil
}

// mobilitySummary is the motion block emitted when -mobility is given: a
// sampled trajectory replayed through the incremental maintainer, with the
// repair work it cost and the equivalence gate's verdict.
type mobilitySummary struct {
	Model             string  `json:"model"`
	Speed             float64 `json:"speed"`
	Pause             int     `json:"pause"`
	Steps             int     `json:"steps"`
	Moves             int     `json:"moves"`
	TileReelections   int     `json:"tileReelections"`
	EdgeChanges       int     `json:"edgeChanges"`
	GoodFractionStart float64 `json:"goodFractionStart"`
	GoodFractionEnd   float64 `json:"goodFractionEnd"`
	MatchesRebuild    bool    `json:"matchesRebuild"`
}

// parseMobility parses "model:M,speed:S,pause:P,steps:N" (any subset, any
// order) over the package defaults and validates the result.
func parseMobility(spec string) (mobility.Spec, error) {
	ms := mobility.DefaultSpec()
	for _, part := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return ms, fmt.Errorf("bad -mobility entry %q (want key:value)", part)
		}
		switch key {
		case "model":
			m, err := mobility.ParseModel(val)
			if err != nil {
				return ms, fmt.Errorf("bad -mobility model: %v", err)
			}
			ms.Model = m
		case "speed":
			if _, err := fmt.Sscanf(val, "%g", &ms.Speed); err != nil {
				return ms, fmt.Errorf("bad -mobility speed %q", val)
			}
		case "pause":
			if _, err := fmt.Sscanf(val, "%d", &ms.Pause); err != nil {
				return ms, fmt.Errorf("bad -mobility pause %q", val)
			}
		case "steps":
			if _, err := fmt.Sscanf(val, "%d", &ms.Steps); err != nil {
				return ms, fmt.Errorf("bad -mobility steps %q", val)
			}
		default:
			return ms, fmt.Errorf("unknown -mobility key %q (want model | speed | pause | steps)", key)
		}
	}
	if err := ms.Validate(); err != nil {
		return ms, fmt.Errorf("-mobility: %v", err)
	}
	return ms, nil
}

// mobilityStream is the substream the CLI's trajectory is sampled from —
// disjoint from the deployment draw on the same seed.
const mobilityStream = 9

// scaleGenSide is the generation-tile side the -scale deployment uses: a
// few hundred points per tile at the default λ=16 — fine enough to spread
// across cores, coarse enough that the per-tile substream setup is noise.
const scaleGenSide = 4.0

// applyMobility samples a trajectory for the deployment and replays it
// through the kinetic maintainer, then cross-checks the maintained
// structure against a from-scratch build at the final positions (the
// equivalence gate). Only UDG-SENS networks support incremental
// maintenance, so -kind nn combined with -mobility fails.
func applyMobility(net *sensnet.Network, spec string, seed uint64) (*mobilitySummary, error) {
	ms, err := parseMobility(spec)
	if err != nil {
		return nil, err
	}
	k, err := core.NewKinetic(net, core.Options{})
	if err != nil {
		return nil, fmt.Errorf("-mobility: %v", err)
	}
	traj := mobility.Sample(net.Pts, net.Box, ms, sensnet.Seed(seed), mobilityStream)
	for _, step := range traj.Steps {
		for _, mv := range step {
			k.Move(mv.Node, mv.To)
		}
	}
	stats := k.Stats()
	matches := false
	if ref, err := core.BuildUDG(k.Positions(), net.Box, *net.UDGSpec,
		core.Options{SkipBase: true}); err == nil {
		matches = graph.Equal(k.Materialize(), ref.Graph)
	}
	tiles := float64(net.Stats.Tiles)
	return &mobilitySummary{
		Model:             ms.Model.String(),
		Speed:             ms.Speed,
		Pause:             ms.Pause,
		Steps:             ms.Steps,
		Moves:             traj.TotalMoves(),
		TileReelections:   stats.TileRecomputes,
		EdgeChanges:       stats.EdgeChanges,
		GoodFractionStart: net.GoodFraction(),
		GoodFractionEnd:   float64(k.GoodTiles()) / tiles,
		MatchesRebuild:    matches,
	}, nil
}

type summary struct {
	Kind             string  `json:"kind"`
	Points           int     `json:"points"`
	Tiles            int     `json:"tiles"`
	GoodTiles        int     `json:"goodTiles"`
	GoodFraction     float64 `json:"goodFraction"`
	Members          int     `json:"members"`
	ActiveFraction   float64 `json:"activeFraction"`
	Edges            int     `json:"edges"`
	MaxDegree        int     `json:"maxDegree"`
	ElectionMessages int     `json:"electionMessages"`
	ElectionRounds   int     `json:"electionRounds"`
	HandshakeFails   int     `json:"handshakeFailures"`
	DegreeHistogram  []int   `json:"degreeHistogram"`

	Faults   *faultSummary    `json:"faults,omitempty"`
	Mobility *mobilitySummary `json:"mobility,omitempty"`
}

func summarize(net *sensnet.Network) summary {
	return summary{
		Kind:             net.Kind.String(),
		Points:           len(net.Pts),
		Tiles:            net.Stats.Tiles,
		GoodTiles:        net.Stats.GoodTiles,
		GoodFraction:     net.GoodFraction(),
		Members:          len(net.Members),
		ActiveFraction:   net.ActiveFraction(),
		Edges:            net.Stats.SubgraphEdges,
		MaxDegree:        net.MaxDegree(),
		ElectionMessages: net.Stats.ElectionMessages,
		ElectionRounds:   net.Stats.ElectionRounds,
		HandshakeFails:   net.Stats.HandshakeFailures,
		DegreeHistogram:  net.DegreeHistogram(),
	}
}

func emitJSON(w io.Writer, net *sensnet.Network, fsum *faultSummary, msum *mobilitySummary) error {
	s := summarize(net)
	s.Faults = fsum
	s.Mobility = msum
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func emitText(w io.Writer, net *sensnet.Network, fsum *faultSummary, msum *mobilitySummary) {
	s := summarize(net)
	fmt.Fprintf(w, "%s\n", net)
	fmt.Fprintf(w, "  deployment:        %d points\n", s.Points)
	fmt.Fprintf(w, "  tiles:             %d (%d good, %.1f%%)\n", s.Tiles, s.GoodTiles, 100*s.GoodFraction)
	fmt.Fprintf(w, "  network members:   %d (%.1f%% of deployment)\n", s.Members, 100*s.ActiveFraction)
	fmt.Fprintf(w, "  edges:             %d\n", s.Edges)
	fmt.Fprintf(w, "  max degree:        %d (P1 bound: 4)\n", s.MaxDegree)
	fmt.Fprintf(w, "  degree histogram:  %v\n", s.DegreeHistogram)
	fmt.Fprintf(w, "  election cost:     %d messages, %d rounds (P4)\n", s.ElectionMessages, s.ElectionRounds)
	if s.HandshakeFails > 0 {
		fmt.Fprintf(w, "  handshake fails:   %d (relaxed mode)\n", s.HandshakeFails)
	}
	if fsum != nil {
		fmt.Fprintf(w, "fault injection:\n")
		fmt.Fprintf(w, "  attack:            %s (crash fraction %.2f)\n", fsum.Attack, fsum.CrashFraction)
		fmt.Fprintf(w, "  crashed:           %d of %d members\n", fsum.Crashed, s.Members)
		fmt.Fprintf(w, "  surviving LCC:     %.1f%% of members\n", 100*fsum.SurvivingLCC)
		fmt.Fprintf(w, "  per-hop loss:      %.2f\n", fsum.LossRate)
	}
	if msum != nil {
		match := "yes"
		if !msum.MatchesRebuild {
			match = "NO"
		}
		fmt.Fprintf(w, "mobility:\n")
		fmt.Fprintf(w, "  model:             %s (speed %g/step, pause %d, %d steps)\n",
			msum.Model, msum.Speed, msum.Pause, msum.Steps)
		fmt.Fprintf(w, "  moves applied:     %d\n", msum.Moves)
		fmt.Fprintf(w, "  tile re-elections: %d (full rebuild re-elects %d per step)\n",
			msum.TileReelections, net.Stats.Tiles)
		fmt.Fprintf(w, "  edge changes:      %d\n", msum.EdgeChanges)
		fmt.Fprintf(w, "  good tiles:        %.1f%% -> %.1f%%\n",
			100*msum.GoodFractionStart, 100*msum.GoodFractionEnd)
		fmt.Fprintf(w, "  matches rebuild:   %s\n", match)
	}
}

// renderTiles draws the mapped tile window: '#' good tile, '.' bad tile —
// the percolation configuration of the paper's Figure 2.
func renderTiles(net *sensnet.Network) string {
	if net.Lat == nil {
		return "(no mapped tiles)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tile map (%dx%d, '#'=good/open, '.'=bad/closed):\n", net.Lat.W, net.Lat.H)
	for y := net.Lat.H - 1; y >= 0; y-- {
		for x := 0; x < net.Lat.W; x++ {
			if net.Lat.IsOpen(x, y) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
