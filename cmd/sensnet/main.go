// Command sensnet builds a SENS network over a random deployment and
// reports its structure — the quickest way to see the paper's construction
// on real numbers.
//
// Usage:
//
//	sensnet -kind udg -lambda 16 -side 30 -seed 1
//	sensnet -kind udg -mode relaxed -lambda 4 -render
//	sensnet -kind nn -k 188 -a 0.893 -tiles 5 -json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	sensnet "repro"
	"repro/internal/tiling"
)

func main() {
	var (
		kind    = flag.String("kind", "udg", "construction: udg | nn")
		mode    = flag.String("mode", "repaired", "UDG geometry: literal | repaired | relaxed")
		lambda  = flag.Float64("lambda", 16, "Poisson intensity (udg; nn uses λ=1)")
		side    = flag.Float64("side", 30, "deployment box side (udg)")
		k       = flag.Int("k", 188, "NN parameter k")
		a       = flag.Float64("a", 0.893, "NN tile scale a (tile side = 10a)")
		tiles   = flag.Int("tiles", 5, "NN: box side in tiles")
		seed    = flag.Uint64("seed", 1, "random seed")
		asJSON  = flag.Bool("json", false, "emit JSON summary")
		render  = flag.Bool("render", false, "render the tile map (good/bad) as ASCII")
		tilefig = flag.Bool("tilefig", false, "render the tile region layout (paper Fig. 3 / Fig. 5) and exit")
	)
	flag.Parse()

	if *tilefig {
		switch *kind {
		case "udg":
			var spec sensnet.UDGSpec
			switch *mode {
			case "literal":
				spec = sensnet.PaperUDGSpec()
			case "repaired":
				spec = sensnet.DefaultUDGSpec()
			case "relaxed":
				spec = sensnet.RelaxedUDGSpec()
			default:
				fatalf("unknown -mode %q", *mode)
			}
			fmt.Printf("UDG-SENS tile (%s geometry, paper Fig. 3): C=C0, r/l/t/b=relay regions\n\n", *mode)
			fmt.Print(tiling.RenderUDGTile(spec, 64))
		case "nn":
			spec := sensnet.NNSpec{A: *a, K: *k}
			fmt.Printf("NN-SENS tile (a=%v, paper Fig. 5): C=C0, R/L/T/B=outer disks, r/l/t/b=bridges\n\n", *a)
			fmt.Print(tiling.RenderNNTile(spec.Compile(), 72))
		default:
			fatalf("unknown -kind %q", *kind)
		}
		return
	}

	var (
		net *sensnet.Network
		err error
	)
	switch *kind {
	case "udg":
		var spec sensnet.UDGSpec
		switch *mode {
		case "literal":
			spec = sensnet.PaperUDGSpec()
		case "repaired":
			spec = sensnet.DefaultUDGSpec()
		case "relaxed":
			spec = sensnet.RelaxedUDGSpec()
		default:
			fatalf("unknown -mode %q", *mode)
		}
		box := sensnet.Box(*side, *side)
		pts := sensnet.Deploy(box, *lambda, sensnet.Seed(*seed))
		net, err = sensnet.BuildUDGSens(pts, box, spec, sensnet.Options{})
	case "nn":
		spec := sensnet.NNSpec{A: *a, K: *k}
		boxSide := float64(*tiles) * spec.TileSide()
		box := sensnet.Box(boxSide, boxSide)
		pts := sensnet.Deploy(box, 1, sensnet.Seed(*seed))
		net, err = sensnet.BuildNNSens(pts, box, spec, sensnet.Options{})
	default:
		fatalf("unknown -kind %q", *kind)
	}
	if err != nil {
		fatalf("build: %v", err)
	}

	if *asJSON {
		emitJSON(net)
	} else {
		emitText(net)
	}
	if *render {
		fmt.Println()
		fmt.Print(renderTiles(net))
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sensnet: "+format+"\n", args...)
	os.Exit(1)
}

type summary struct {
	Kind             string  `json:"kind"`
	Points           int     `json:"points"`
	Tiles            int     `json:"tiles"`
	GoodTiles        int     `json:"goodTiles"`
	GoodFraction     float64 `json:"goodFraction"`
	Members          int     `json:"members"`
	ActiveFraction   float64 `json:"activeFraction"`
	Edges            int     `json:"edges"`
	MaxDegree        int     `json:"maxDegree"`
	ElectionMessages int     `json:"electionMessages"`
	ElectionRounds   int     `json:"electionRounds"`
	HandshakeFails   int     `json:"handshakeFailures"`
	DegreeHistogram  []int   `json:"degreeHistogram"`
}

func summarize(net *sensnet.Network) summary {
	return summary{
		Kind:             net.Kind.String(),
		Points:           len(net.Pts),
		Tiles:            net.Stats.Tiles,
		GoodTiles:        net.Stats.GoodTiles,
		GoodFraction:     net.GoodFraction(),
		Members:          len(net.Members),
		ActiveFraction:   net.ActiveFraction(),
		Edges:            net.Stats.SubgraphEdges,
		MaxDegree:        net.MaxDegree(),
		ElectionMessages: net.Stats.ElectionMessages,
		ElectionRounds:   net.Stats.ElectionRounds,
		HandshakeFails:   net.Stats.HandshakeFailures,
		DegreeHistogram:  net.DegreeHistogram(),
	}
}

func emitJSON(net *sensnet.Network) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summarize(net)); err != nil {
		fatalf("encode: %v", err)
	}
}

func emitText(net *sensnet.Network) {
	s := summarize(net)
	fmt.Printf("%s\n", net)
	fmt.Printf("  deployment:        %d points\n", s.Points)
	fmt.Printf("  tiles:             %d (%d good, %.1f%%)\n", s.Tiles, s.GoodTiles, 100*s.GoodFraction)
	fmt.Printf("  network members:   %d (%.1f%% of deployment)\n", s.Members, 100*s.ActiveFraction)
	fmt.Printf("  edges:             %d\n", s.Edges)
	fmt.Printf("  max degree:        %d (P1 bound: 4)\n", s.MaxDegree)
	fmt.Printf("  degree histogram:  %v\n", s.DegreeHistogram)
	fmt.Printf("  election cost:     %d messages, %d rounds (P4)\n", s.ElectionMessages, s.ElectionRounds)
	if s.HandshakeFails > 0 {
		fmt.Printf("  handshake fails:   %d (relaxed mode)\n", s.HandshakeFails)
	}
}

// renderTiles draws the mapped tile window: '#' good tile, '.' bad tile —
// the percolation configuration of the paper's Figure 2.
func renderTiles(net *sensnet.Network) string {
	if net.Lat == nil {
		return "(no mapped tiles)\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "tile map (%dx%d, '#'=good/open, '.'=bad/closed):\n", net.Lat.W, net.Lat.H)
	for y := net.Lat.H - 1; y >= 0; y-- {
		for x := 0; x < net.Lat.W; x++ {
			if net.Lat.IsOpen(x, y) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
