package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// runCLI executes run with captured output.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestUDGTextSummary(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-lambda", "16", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"UDG-SENS", "deployment:", "network members:",
		"max degree:", "P1 bound: 4", "election cost:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text summary missing %q:\n%s", want, out)
		}
	}
}

func TestNNTextSummary(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "nn", "-tiles", "3", "-seed", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "NN-SENS") || !strings.Contains(out, "tiles:") {
		t.Errorf("NN summary wrong:\n%s", out)
	}
}

// TestJSONShape pins the -json output: valid JSON with the documented
// fields and consistent values.
func TestJSONShape(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-json", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var s summary
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if s.Kind != "UDG-SENS" || s.Points == 0 || s.Tiles == 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.GoodTiles > s.Tiles || s.Members > s.Points {
		t.Errorf("inconsistent counts: %+v", s)
	}
	if s.MaxDegree > 4 {
		t.Errorf("max degree %d violates P1", s.MaxDegree)
	}
	// The histogram is indexed by degree and must cover MaxDegree.
	if len(s.DegreeHistogram) < s.MaxDegree+1 {
		t.Errorf("degree histogram %v shorter than max degree %d",
			s.DegreeHistogram, s.MaxDegree)
	}
	// Field names are part of the CLI contract.
	for _, field := range []string{`"kind"`, `"points"`, `"goodFraction"`,
		`"activeFraction"`, `"electionMessages"`, `"degreeHistogram"`} {
		if !strings.Contains(out, field) {
			t.Errorf("JSON missing field %s:\n%s", field, out)
		}
	}
}

func TestRenderTileMap(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-render", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "tile map") || !strings.ContainsAny(out, "#.") {
		t.Errorf("render output wrong:\n%s", out)
	}
}

func TestTilefigBothKinds(t *testing.T) {
	for _, kind := range []string{"udg", "nn"} {
		out, _, code := runCLI(t, "-tilefig", "-kind", kind)
		if code != 0 {
			t.Fatalf("%s: exit %d", kind, code)
		}
		if !strings.Contains(out, "tile") || !strings.Contains(out, "C") {
			t.Errorf("%s tilefig output wrong:\n%s", kind, out)
		}
	}
}

func TestLiteralModeStillBuilds(t *testing.T) {
	// The literal geometry has empty relay regions (the documented negative
	// result) but the build itself must succeed.
	out, _, code := runCLI(t, "-kind", "udg", "-mode", "literal", "-side", "12", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

func TestErrorPaths(t *testing.T) {
	cases := [][]string{
		{"-kind", "marble"},
		{"-kind", "udg", "-mode", "cubist"},
		{"-tilefig", "-kind", "marble"},
	}
	for _, args := range cases {
		_, errOut, code := runCLI(t, args...)
		if code != 1 {
			t.Errorf("%v: exit %d, want 1", args, code)
		}
		if !strings.Contains(errOut, "unknown") {
			t.Errorf("%v: stderr %q", args, errOut)
		}
	}
	if _, _, code := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag should exit 2")
	}
}
