package main

import (
	"encoding/json"
	"strings"
	"testing"
)

// runCLI executes run with captured output.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestUDGTextSummary(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-lambda", "16", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"UDG-SENS", "deployment:", "network members:",
		"max degree:", "P1 bound: 4", "election cost:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text summary missing %q:\n%s", want, out)
		}
	}
}

func TestNNTextSummary(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "nn", "-tiles", "3", "-seed", "2")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "NN-SENS") || !strings.Contains(out, "tiles:") {
		t.Errorf("NN summary wrong:\n%s", out)
	}
}

// TestJSONShape pins the -json output: valid JSON with the documented
// fields and consistent values.
func TestJSONShape(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-json", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var s summary
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if s.Kind != "UDG-SENS" || s.Points == 0 || s.Tiles == 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.GoodTiles > s.Tiles || s.Members > s.Points {
		t.Errorf("inconsistent counts: %+v", s)
	}
	if s.MaxDegree > 4 {
		t.Errorf("max degree %d violates P1", s.MaxDegree)
	}
	// The histogram is indexed by degree and must cover MaxDegree.
	if len(s.DegreeHistogram) < s.MaxDegree+1 {
		t.Errorf("degree histogram %v shorter than max degree %d",
			s.DegreeHistogram, s.MaxDegree)
	}
	// Field names are part of the CLI contract.
	for _, field := range []string{`"kind"`, `"points"`, `"goodFraction"`,
		`"activeFraction"`, `"electionMessages"`, `"degreeHistogram"`} {
		if !strings.Contains(out, field) {
			t.Errorf("JSON missing field %s:\n%s", field, out)
		}
	}
}

func TestRenderTileMap(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-render", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "tile map") || !strings.ContainsAny(out, "#.") {
		t.Errorf("render output wrong:\n%s", out)
	}
}

func TestTilefigBothKinds(t *testing.T) {
	for _, kind := range []string{"udg", "nn"} {
		out, _, code := runCLI(t, "-tilefig", "-kind", kind)
		if code != 0 {
			t.Fatalf("%s: exit %d", kind, code)
		}
		if !strings.Contains(out, "tile") || !strings.Contains(out, "C") {
			t.Errorf("%s tilefig output wrong:\n%s", kind, out)
		}
	}
}

func TestLiteralModeStillBuilds(t *testing.T) {
	// The literal geometry has empty relay regions (the documented negative
	// result) but the build itself must succeed.
	out, _, code := runCLI(t, "-kind", "udg", "-mode", "literal", "-side", "12", "-seed", "3")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
}

// TestFaultsFlag pins the -faults robustness block: a valid spec reports
// the crashed count and surviving giant component, a targeted attack
// shreds the LCC harder than the crash fraction alone, and the block
// rides the JSON summary too.
func TestFaultsFlag(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-seed", "3",
		"-faults", "crash:0.1,loss:0.05,attack:degree")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"fault injection:", "attack:", "degree",
		"crashed:", "surviving LCC:", "per-hop loss:"} {
		if !strings.Contains(out, want) {
			t.Errorf("fault block missing %q:\n%s", want, out)
		}
	}

	jout, _, code := runCLI(t, "-kind", "udg", "-side", "14", "-seed", "3", "-json",
		"-faults", "crash:0.2,attack:random")
	if code != 0 {
		t.Fatalf("json exit %d", code)
	}
	var s summary
	if err := json.Unmarshal([]byte(jout), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jout)
	}
	if s.Faults == nil {
		t.Fatalf("JSON summary missing faults block:\n%s", jout)
	}
	if s.Faults.Attack != "random" || s.Faults.Crashed == 0 ||
		s.Faults.SurvivingLCC <= 0 || s.Faults.SurvivingLCC > 1 {
		t.Errorf("faults block = %+v", s.Faults)
	}
	// Without -faults the block stays out of the JSON contract.
	jout, _, _ = runCLI(t, "-kind", "udg", "-side", "14", "-seed", "3", "-json")
	if strings.Contains(jout, `"faults"`) {
		t.Errorf("faults block present without -faults:\n%s", jout)
	}
}

// TestFaultsFlagErrors: malformed specs exit 1 with a diagnostic.
func TestFaultsFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-faults", "crash:2"},
		{"-faults", "loss:1.5"},
		{"-faults", "attack:psychic"},
		{"-faults", "banana:0.5"},
		{"-faults", "crash=0.5"},
	}
	for _, extra := range cases {
		args := append([]string{"-kind", "udg", "-side", "12", "-seed", "3"}, extra...)
		_, errOut, code := runCLI(t, args...)
		if code != 1 {
			t.Errorf("%v: exit %d, want 1", extra, code)
		}
		if !strings.Contains(errOut, "-faults") {
			t.Errorf("%v: stderr %q lacks a -faults diagnostic", extra, errOut)
		}
	}
}

// TestMobilityFlag pins the -mobility motion block: a valid spec replays a
// trajectory through the kinetic maintainer, reports the repair work, and
// the maintained structure matches a from-scratch rebuild at the final
// positions. The block rides the JSON summary too.
func TestMobilityFlag(t *testing.T) {
	out, _, code := runCLI(t, "-kind", "udg", "-side", "12", "-seed", "3",
		"-mobility", "model:direction,speed:0.1,pause:1,steps:5")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, out)
	}
	for _, want := range []string{"mobility:", "direction", "moves applied:",
		"tile re-elections:", "edge changes:", "good tiles:", "matches rebuild:   yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("mobility block missing %q:\n%s", want, out)
		}
	}

	jout, _, code := runCLI(t, "-kind", "udg", "-side", "12", "-seed", "3", "-json",
		"-mobility", "speed:0.2,steps:4")
	if code != 0 {
		t.Fatalf("json exit %d", code)
	}
	var s summary
	if err := json.Unmarshal([]byte(jout), &s); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, jout)
	}
	if s.Mobility == nil {
		t.Fatalf("JSON summary missing mobility block:\n%s", jout)
	}
	if s.Mobility.Model != "waypoint" || s.Mobility.Moves == 0 ||
		s.Mobility.TileReelections == 0 || !s.Mobility.MatchesRebuild {
		t.Errorf("mobility block = %+v", s.Mobility)
	}
	// Without -mobility the block stays out of the JSON contract.
	jout, _, _ = runCLI(t, "-kind", "udg", "-side", "12", "-seed", "3", "-json")
	if strings.Contains(jout, `"mobility"`) {
		t.Errorf("mobility block present without -mobility:\n%s", jout)
	}
}

// TestMobilityFlagErrors: malformed specs — and the unsupported NN kind —
// exit 1 with a -mobility diagnostic.
func TestMobilityFlagErrors(t *testing.T) {
	cases := [][]string{
		{"-kind", "udg", "-side", "12", "-mobility", "model:teleport"},
		{"-kind", "udg", "-side", "12", "-mobility", "speed:-1"},
		{"-kind", "udg", "-side", "12", "-mobility", "speed:fast"},
		{"-kind", "udg", "-side", "12", "-mobility", "steps:-3"},
		{"-kind", "udg", "-side", "12", "-mobility", "warp:9"},
		{"-kind", "udg", "-side", "12", "-mobility", "model=waypoint"},
		{"-kind", "nn", "-tiles", "3", "-mobility", "model:waypoint,steps:2"},
	}
	for _, args := range cases {
		args = append(args, "-seed", "3")
		_, errOut, code := runCLI(t, args...)
		if code != 1 {
			t.Errorf("%v: exit %d, want 1", args, code)
		}
		if !strings.Contains(errOut, "-mobility") {
			t.Errorf("%v: stderr %q lacks a -mobility diagnostic", args, errOut)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	cases := [][]string{
		{"-kind", "marble"},
		{"-kind", "udg", "-mode", "cubist"},
		{"-tilefig", "-kind", "marble"},
	}
	for _, args := range cases {
		_, errOut, code := runCLI(t, args...)
		if code != 1 {
			t.Errorf("%v: exit %d, want 1", args, code)
		}
		if !strings.Contains(errOut, "unknown") {
			t.Errorf("%v: stderr %q", args, errOut)
		}
	}
	if _, _, code := runCLI(t, "-no-such-flag"); code != 2 {
		t.Errorf("bad flag should exit 2")
	}
}

// TestScaleFlag50k smokes the scale-tier pipeline end to end: a ~50k-point
// streamed deployment, the pair-free grid UDG base and the tile-sharded
// build, through the ordinary summary path.
func TestScaleFlag50k(t *testing.T) {
	if testing.Short() {
		t.Skip("50k-point scale smoke skipped in -short")
	}
	out, _, code := runCLI(t, "-kind", "udg", "-scale", "-side", "56", "-lambda", "16", "-seed", "5", "-json")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	var s summary
	if err := json.Unmarshal([]byte(out), &s); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if s.Points < 45000 {
		t.Errorf("points = %d, want ~50k", s.Points)
	}
	if s.Members == 0 || s.GoodTiles == 0 {
		t.Errorf("scale build produced empty network: %+v", s)
	}
	if s.MaxDegree > 4 {
		t.Errorf("max degree %d violates P1", s.MaxDegree)
	}
}

func TestScaleFlagRejectsNN(t *testing.T) {
	_, errOut, code := runCLI(t, "-kind", "nn", "-scale")
	if code == 0 || !strings.Contains(errOut, "-scale") {
		t.Fatalf("expected -scale/nn rejection, got exit %d, stderr %q", code, errOut)
	}
}
