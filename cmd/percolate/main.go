// Command percolate explores site percolation on Z² — the discrete process
// the paper couples its constructions to (§2). It estimates crossing
// probabilities, θ(p), the critical probability, and chemical-distance
// ratios.
//
// Usage:
//
//	percolate -n 64 -p 0.6            # crossing probability and θ at p
//	percolate -n 64 -pc               # bisection estimate of p_c
//	percolate -n 128 -p 0.75 -chem    # chemical distance ratios
//	percolate -n 32 -p 0.65 -draw     # render one configuration
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lattice"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
)

func main() {
	var (
		n      = flag.Int("n", 64, "lattice side")
		p      = flag.Float64("p", 0.6, "site-open probability")
		trials = flag.Int("trials", 400, "Monte-Carlo trials")
		seed   = flag.Uint64("seed", 1, "random seed")
		doPc   = flag.Bool("pc", false, "estimate p_c by bisection")
		chem   = flag.Bool("chem", false, "measure chemical-distance ratios at p")
		route  = flag.Bool("route", false, "run x–y routing trials at p")
		draw   = flag.Bool("draw", false, "render one configuration")
	)
	flag.Parse()
	g := rng.New(rng.Seed(*seed))

	switch {
	case *doPc:
		pc := lattice.EstimatePc(*n, *trials, 20, g)
		fmt.Printf("p_c estimate on %dx%d (%d trials/step): %.4f (reference %.6f)\n",
			*n, *n, *trials, pc, lattice.SitePcReference)
	case *chem:
		l := lattice.Sample(*n, *n, *p, g)
		giant := l.LargestCluster()
		if len(giant) < 10 {
			fmt.Println("giant cluster too small — subcritical p?")
			os.Exit(1)
		}
		var ratios []float64
		for i := 0; i < *trials; i++ {
			a := giant[g.IntN(len(giant))]
			b := giant[g.IntN(len(giant))]
			ax, ay := l.XY(a)
			bx, by := l.XY(b)
			d := lattice.L1(ax, ay, bx, by)
			if d < 4 {
				continue
			}
			if dp := l.ChemicalDistance(ax, ay, bx, by); dp >= 0 {
				ratios = append(ratios, float64(dp)/float64(d))
			}
		}
		s := stats.Summarize(ratios)
		fmt.Printf("chemical distance Dp/D at p=%.3f over %d pairs: %v\n", *p, s.N, s)
	case *route:
		l := lattice.Sample(*n, *n, *p, g)
		giant := l.LargestCluster()
		if len(giant) < 10 {
			fmt.Println("giant cluster too small — subcritical p?")
			os.Exit(1)
		}
		var ratios []float64
		delivered := 0
		for i := 0; i < *trials; i++ {
			a := giant[g.IntN(len(giant))]
			b := giant[g.IntN(len(giant))]
			ax, ay := l.XY(a)
			bx, by := l.XY(b)
			opt := l.ChemicalDistance(ax, ay, bx, by)
			if opt < 2 {
				continue
			}
			res := routing.RouteXY(l, ax, ay, bx, by, 0)
			if res.Delivered {
				delivered++
				ratios = append(ratios, float64(res.Probes)/float64(opt))
			}
		}
		fmt.Printf("routing at p=%.3f: %d delivered, probes/optimal %v\n",
			*p, delivered, stats.Summarize(ratios))
	default:
		cross := lattice.CrossingProbability(*n, *p, *trials, g)
		theta := lattice.Theta(*n, *p, max(*trials/10, 5), g)
		fmt.Printf("n=%d p=%.4f: P(crossing) = %v, θ ≈ %.4f\n", *n, *p, cross, theta.Mean)
	}

	if *draw {
		l := lattice.Sample(*n, *n, *p, g)
		fmt.Print(render(l))
	}
}

func render(l *lattice.Lattice) string {
	var b strings.Builder
	for y := l.H - 1; y >= 0; y-- {
		for x := 0; x < l.W; x++ {
			if l.IsOpen(x, y) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
