// Command percolate explores site percolation on Z² — the discrete process
// the paper couples its constructions to (§2). It estimates crossing
// probabilities, θ(p), the critical probability, and chemical-distance
// ratios.
//
// Usage:
//
//	percolate -n 64 -p 0.6            # crossing probability and θ at p
//	percolate -n 64 -pc               # bisection estimate of p_c
//	percolate -n 128 -p 0.75 -chem    # chemical distance ratios
//	percolate -n 32 -p 0.65 -draw     # render one configuration
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lattice"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// sampleAttemptFactor bounds pair resampling: up to this many draws per
// requested pair before giving up (degenerate clusters could otherwise loop
// forever).
const sampleAttemptFactor = 50

// run executes the CLI against explicit streams and returns the process
// exit code — the testable core of the command.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("percolate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		n      = fs.Int("n", 64, "lattice side")
		p      = fs.Float64("p", 0.6, "site-open probability")
		trials = fs.Int("trials", 400, "Monte-Carlo trials / measured pairs")
		seed   = fs.Uint64("seed", 1, "random seed")
		doPc   = fs.Bool("pc", false, "estimate p_c by bisection")
		chem   = fs.Bool("chem", false, "measure chemical-distance ratios at p")
		route  = fs.Bool("route", false, "run x–y routing trials at p")
		draw   = fs.Bool("draw", false, "render one configuration")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	g := rng.New(rng.Seed(*seed))

	switch {
	case *doPc:
		pc, ok := lattice.EstimatePc(*n, *trials, 20, g)
		qual := ""
		if !ok {
			qual = " (bracket endpoint — crossing probability never straddled 1/2)"
		}
		fmt.Fprintf(stdout, "p_c estimate on %dx%d (%d trials/step): %.4f%s (reference %.6f)\n",
			*n, *n, *trials, pc, qual, lattice.SitePcReference)
	case *chem:
		l := lattice.Sample(*n, *n, *p, g)
		giant := l.LargestCluster()
		if len(giant) < 10 {
			fmt.Fprintln(stdout, "giant cluster too small — subcritical p?")
			return 1
		}
		// Resample until *trials pairs pass the validity filter (distinct
		// endpoints, lattice distance ≥ 4, chemically connected) instead of
		// silently dropping rejects from a fixed draw count: the reported
		// pair total is now the requested sample size, with the rejection
		// rate surfaced via the attempts count.
		var ratios []float64
		attempts := 0
		for maxA := *trials * sampleAttemptFactor; len(ratios) < *trials && attempts < maxA; {
			attempts++
			a := giant[g.IntN(len(giant))]
			b := giant[g.IntN(len(giant))]
			ax, ay := l.XY(a)
			bx, by := l.XY(b)
			d := lattice.L1(ax, ay, bx, by)
			if d < 4 {
				continue
			}
			if dp := l.ChemicalDistance(ax, ay, bx, by); dp >= 0 {
				ratios = append(ratios, float64(dp)/float64(d))
			}
		}
		s := stats.Summarize(ratios)
		fmt.Fprintf(stdout, "chemical distance Dp/D at p=%.3f over %d pairs (%d measured, %d attempts): %v\n",
			*p, *trials, s.N, attempts, s)
		if s.N < *trials {
			fmt.Fprintf(stdout, "warning: only %d/%d valid pairs within the attempt bound\n", s.N, *trials)
		}
	case *route:
		l := lattice.Sample(*n, *n, *p, g)
		giant := l.LargestCluster()
		if len(giant) < 10 {
			fmt.Fprintln(stdout, "giant cluster too small — subcritical p?")
			return 1
		}
		// Same resampling discipline as -chem: keep drawing until *trials
		// pairs with optimal distance ≥ 2 have been routed.
		var ratios []float64
		delivered, routed, attempts := 0, 0, 0
		for maxA := *trials * sampleAttemptFactor; routed < *trials && attempts < maxA; {
			attempts++
			a := giant[g.IntN(len(giant))]
			b := giant[g.IntN(len(giant))]
			ax, ay := l.XY(a)
			bx, by := l.XY(b)
			opt := l.ChemicalDistance(ax, ay, bx, by)
			if opt < 2 {
				continue
			}
			routed++
			res := routing.RouteXY(l, ax, ay, bx, by, 0)
			if res.Delivered {
				delivered++
				ratios = append(ratios, float64(res.Probes)/float64(opt))
			}
		}
		fmt.Fprintf(stdout, "routing at p=%.3f over %d pairs (%d attempts): %d delivered, probes/optimal %v\n",
			*p, routed, attempts, delivered, stats.Summarize(ratios))
		if routed < *trials {
			fmt.Fprintf(stdout, "warning: only %d/%d valid pairs within the attempt bound\n", routed, *trials)
		}
	default:
		cross := lattice.CrossingProbability(*n, *p, *trials, g)
		theta := lattice.Theta(*n, *p, max(*trials/10, 5), g)
		fmt.Fprintf(stdout, "n=%d p=%.4f: P(crossing) = %v, θ ≈ %.4f\n", *n, *p, cross, theta.Mean)
	}

	if *draw {
		l := lattice.Sample(*n, *n, *p, g)
		fmt.Fprint(stdout, render(l))
	}
	return 0
}

func render(l *lattice.Lattice) string {
	var b strings.Builder
	for y := l.H - 1; y >= 0; y-- {
		for x := 0; x < l.W; x++ {
			if l.IsOpen(x, y) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
