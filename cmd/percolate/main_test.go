package main

import (
	"strings"
	"testing"
)

// runCLI executes run with captured output.
func runCLI(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return out.String(), errb.String(), code
}

func TestDefaultCrossing(t *testing.T) {
	out, _, code := runCLI(t, "-n", "24", "-p", "0.65", "-trials", "40", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "P(crossing)") || !strings.Contains(out, "θ") {
		t.Errorf("output missing crossing/θ: %q", out)
	}
}

func TestPcEstimate(t *testing.T) {
	out, _, code := runCLI(t, "-pc", "-n", "24", "-trials", "30", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out, "p_c estimate") || !strings.Contains(out, "0.592746") {
		t.Errorf("output = %q", out)
	}
}

// TestChemSamplesRequestedPairs pins the resampling fix: the reported pair
// count equals -trials (rejected draws — close pairs, disconnected pairs —
// are resampled, not silently dropped), and attempts ≥ measured.
func TestChemSamplesRequestedPairs(t *testing.T) {
	out, _, code := runCLI(t, "-chem", "-n", "48", "-p", "0.75", "-trials", "50", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d: %q", code, out)
	}
	if !strings.Contains(out, "over 50 pairs (50 measured") {
		t.Errorf("chem did not measure the requested pair count: %q", out)
	}
	if strings.Contains(out, "warning:") {
		t.Errorf("unexpected attempt-bound warning: %q", out)
	}
}

func TestRouteSamplesRequestedPairs(t *testing.T) {
	out, _, code := runCLI(t, "-route", "-n", "48", "-p", "0.75", "-trials", "50", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d: %q", code, out)
	}
	if !strings.Contains(out, "over 50 pairs") || !strings.Contains(out, "delivered") {
		t.Errorf("route output = %q", out)
	}
	// On the giant cluster every valid pair routes successfully.
	if !strings.Contains(out, "50 delivered") {
		t.Errorf("expected all 50 pairs delivered: %q", out)
	}
}

// TestSubcriticalExit covers the subcritical-p failure path: tiny giant
// cluster → diagnostic + exit 1 for both measurement modes.
func TestSubcriticalExit(t *testing.T) {
	for _, mode := range []string{"-chem", "-route"} {
		out, _, code := runCLI(t, mode, "-n", "24", "-p", "0.1", "-trials", "10", "-seed", "7")
		if code != 1 {
			t.Errorf("%s: exit %d, want 1", mode, code)
		}
		if !strings.Contains(out, "subcritical") {
			t.Errorf("%s: output = %q", mode, out)
		}
	}
}

func TestDrawRendersLattice(t *testing.T) {
	out, _, code := runCLI(t, "-draw", "-n", "8", "-p", "0.5", "-trials", "5", "-seed", "7")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	grid := lines[len(lines)-8:]
	for _, l := range grid {
		if len(l) != 8 || strings.Trim(l, "#.") != "" {
			t.Fatalf("bad render line %q in %q", l, out)
		}
	}
}

func TestBadFlagExitsTwo(t *testing.T) {
	_, errOut, code := runCLI(t, "-definitely-not-a-flag")
	if code != 2 || !strings.Contains(errOut, "flag") {
		t.Errorf("bad flag: exit %d, stderr %q", code, errOut)
	}
}
