// Command doclint checks that every exported identifier in the given
// package directories carries a godoc comment — the documentation gate
// wired into `make ci`, so a new exported symbol without a doc comment
// fails the build instead of rotting silently.
//
// Usage:
//
//	doclint [dir ...]
//
// Each argument is a package directory; an argument ending in /... is
// walked recursively (testdata and hidden directories are skipped). With
// no arguments it checks ./... — the whole module. _test.go files and
// generated files (a "// Code generated ... DO NOT EDIT." line before the
// package clause, per the Go convention) are exempt. The exit status is
// non-zero when any exported identifier lacks
// documentation, with one "file:line: identifier" diagnostic per finding.
//
// The rules mirror godoc conventions: an exported function, method (on an
// exported receiver), type, constant or variable needs a doc comment
// either on its own declaration or on the enclosing grouped declaration
// (a documented const/var block covers its members).
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			if rest == "." || rest == "" {
				rest = "."
			}
			if err := filepath.WalkDir(rest, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != rest && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				dirs = append(dirs, path)
				return nil
			}); err != nil {
				fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
				os.Exit(2)
			}
		} else {
			dirs = append(dirs, a)
		}
	}
	sort.Strings(dirs)

	bad := 0
	for _, dir := range dirs {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doclint: %d exported identifier(s) missing doc comments\n", bad)
		os.Exit(1)
	}
}

// lintDir parses the non-test Go files of one directory and reports every
// undocumented exported identifier; returns the finding count.
func lintDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "doclint: %v\n", err)
			os.Exit(2)
		}
		// A directory without Go files (or with build errors another gate
		// reports better) is not doclint's concern.
		return 0
	}
	bad := 0
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			// Generated files ("// Code generated ... DO NOT EDIT." before
			// the package clause) are exempt: their doc comments are the
			// generator's concern, and regenerating would erase any fixes.
			if ast.IsGenerated(file) {
				continue
			}
			for _, decl := range file.Decls {
				bad += lintDecl(fset, decl)
			}
		}
	}
	return bad
}

// lintDecl reports the undocumented exported identifiers of one top-level
// declaration.
func lintDecl(fset *token.FileSet, decl ast.Decl) int {
	report := func(pos token.Pos, name string) {
		fmt.Printf("%s: %s\n", fset.Position(pos), name)
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return 0
		}
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return 0
		}
		report(d.Pos(), d.Name.Name)
		return 1
	case *ast.GenDecl:
		// A documented grouped declaration covers all of its specs.
		if d.Doc != nil {
			return 0
		}
		bad := 0
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
					report(s.Pos(), s.Name.Name)
					bad++
				}
			case *ast.ValueSpec:
				if s.Doc != nil || s.Comment != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						report(n.Pos(), n.Name)
						bad++
					}
				}
			}
		}
		return bad
	}
	return 0
}

// exportedReceiver reports whether a method's receiver type is exported
// (methods on unexported types are internal API and exempt).
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
