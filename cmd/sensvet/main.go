// Command sensvet is the project-specific static-analysis gate: it
// enforces the determinism, RNG-substream and waiver contracts that keep
// every result table byte-identical at GOMAXPROCS 1 and 8 (the conventions
// doclint's move turned into CI failures for docs, applied to
// nondeterminism). See internal/lint for the analyzers:
//
//   - detrange: map iteration in result-producing packages
//   - detclock: wall-clock / global math/rand outside the allowlist
//   - substreams: constant RNG streams vs the docs/substreams.md registry
//   - waiverlint: //sensvet:allow hygiene and stale-waiver detection
//
// Usage:
//
//	sensvet [-registry file] [dir ...]
//	sensvet -gen-substreams
//
// Each argument is a package directory; an argument ending in /... is
// walked recursively (testdata and hidden directories are skipped; with no
// arguments, ./...). The whole module is always loaded — cross-package
// rules need it — and the arguments select which directories' findings are
// reported. Exit status 1 when findings remain after waivers, 2 on load
// errors.
//
// -gen-substreams prints a registry table skeleton built from the current
// code (owners filled in, purposes TODO) — the bootstrap and repair tool
// for docs/substreams.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("sensvet", flag.ContinueOnError)
	fl.SetOutput(stderr)
	genSubstreams := fl.Bool("gen-substreams", false, "print a substream registry skeleton from the code and exit")
	registry := fl.String("registry", "", "substream registry path (default <module>/docs/substreams.md)")
	if err := fl.Parse(args); err != nil {
		return 2
	}

	root, modPath, err := lint.FindModuleRoot(".")
	if err != nil {
		fmt.Fprintf(stderr, "sensvet: %v\n", err)
		return 2
	}
	mod, err := lint.LoadModule(root, modPath)
	if err != nil {
		fmt.Fprintf(stderr, "sensvet: %v\n", err)
		return 2
	}

	if *genSubstreams {
		fmt.Fprint(stdout, lint.GenerateRegistry(mod))
		return 0
	}

	report, err := reportDirs(fl.Args())
	if err != nil {
		fmt.Fprintf(stderr, "sensvet: %v\n", err)
		return 2
	}

	diags := lint.Run(mod, lint.Options{RegistryPath: *registry})
	bad := 0
	for _, d := range diags {
		// Registry findings carry the registry's .md path and are always
		// reported; source findings are filtered by the directory args.
		if !strings.HasSuffix(d.Pos.Filename, ".md") {
			dir, err := filepath.Abs(filepath.Dir(d.Pos.Filename))
			if err != nil || !report[dir] {
				continue
			}
		}
		fmt.Fprintf(stdout, "%s\n", d)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "sensvet: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// reportDirs expands the doclint-style directory arguments (dir, dir/...,
// default ./...) into the set of absolute directories whose findings are
// reported.
func reportDirs(args []string) (map[string]bool, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	report := make(map[string]bool)
	for _, a := range args {
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			if rest == "" || rest == "." {
				rest = "."
			}
			if err := filepath.WalkDir(rest, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != rest && (strings.HasPrefix(name, ".") || name == "testdata") {
					return filepath.SkipDir
				}
				abs, err := filepath.Abs(path)
				if err != nil {
					return err
				}
				report[abs] = true
				return nil
			}); err != nil {
				return nil, err
			}
		} else {
			abs, err := filepath.Abs(a)
			if err != nil {
				return nil, err
			}
			report[abs] = true
		}
	}
	return report, nil
}
