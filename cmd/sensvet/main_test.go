package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunCleanModule pins the CI contract: sensvet ./... over the
// repository exits 0 with no output.
func TestRunCleanModule(t *testing.T) {
	t.Chdir(moduleRoot(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean run produced output:\n%s", stdout.String())
	}
}

// TestRunMissingRegistry pins the failure path: a bad registry path makes
// the gate fail, not silently pass.
func TestRunMissingRegistry(t *testing.T) {
	t.Chdir(moduleRoot(t))
	var stdout, stderr bytes.Buffer
	code := run([]string{"-registry", filepath.Join(t.TempDir(), "none.md"), "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stdout:\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "registry unreadable") {
		t.Errorf("missing registry not reported:\n%s", stdout.String())
	}
}

// TestRunDirFilter pins argument handling: findings are filtered to the
// requested directories, so a clean subtree passes even if asked alone.
func TestRunDirFilter(t *testing.T) {
	t.Chdir(moduleRoot(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./internal/lint"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
}

// TestGenSubstreams pins the bootstrap tool: the skeleton covers the
// registry's constant streams.
func TestGenSubstreams(t *testing.T) {
	t.Chdir(moduleRoot(t))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-gen-substreams"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	for _, want := range []string{"| Stream | Owners | Purpose |", "| 2010 |", "| 4300 |"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("skeleton missing %q:\n%s", want, stdout.String())
		}
	}
}

// moduleRoot locates the repository root from the test's working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}
