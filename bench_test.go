// Benchmarks: one testing.B target per reproduced table/figure (DESIGN.md
// §4). Each benchmark regenerates its experiment's table at a reduced scale
// per iteration, so `go test -bench=. -benchmem` exercises every
// reproduction path and reports its cost. Set -benchtime=1x for a single
// regeneration per experiment.
package sensnet_test

import (
	"testing"

	sensnet "repro"
)

// benchCfg is the per-iteration configuration: small enough to keep the
// full suite in minutes, large enough to exercise the real code paths.
func benchCfg(i int) sensnet.ExperimentConfig {
	return sensnet.ExperimentConfig{Seed: sensnet.Seed(1000 + i), Scale: 0.2}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab := sensnet.RunExperiment(id, benchCfg(i))
		if tab == nil || len(tab.Rows) == 0 {
			b.Fatalf("%s produced no table", id)
		}
	}
}

// BenchmarkE01BaseModels regenerates E01: base model sanity (Poisson, UDG
// mean degree law, NN degree bounds).
func BenchmarkE01BaseModels(b *testing.B) { runExperiment(b, "E01") }

// BenchmarkE02SitePc regenerates E02: site-percolation crossing
// probabilities and the p_c estimate (paper §2, reference 0.5927).
func BenchmarkE02SitePc(b *testing.B) { runExperiment(b, "E02") }

// BenchmarkE03ChemicalDistance regenerates E03: chemical-distance
// concentration (Lemma 1.1, Antal–Pisztora).
func BenchmarkE03ChemicalDistance(b *testing.B) { runExperiment(b, "E03") }

// BenchmarkE04UDGClaim regenerates E04: UDG-SENS goodness across geometry
// modes and the Claim 2.1 path bound (Figures 1–4).
func BenchmarkE04UDGClaim(b *testing.B) { runExperiment(b, "E04") }

// BenchmarkE05LambdaS regenerates E05: the Theorem 2.2 threshold λs and the
// direct λc estimate.
func BenchmarkE05LambdaS(b *testing.B) { runExperiment(b, "E05") }

// BenchmarkE06NNClaim regenerates E06: NN-SENS goodness at paper parameters
// and the Claim 2.3 path bound (Figures 5–6).
func BenchmarkE06NNClaim(b *testing.B) { runExperiment(b, "E06") }

// BenchmarkE07KS regenerates E07: the Theorem 2.4 threshold ks with tuned
// tile scale, plus the direct kc estimate.
func BenchmarkE07KS(b *testing.B) { runExperiment(b, "E07") }

// BenchmarkE08Stretch regenerates E08: Theorem 3.2 constant stretch.
func BenchmarkE08Stretch(b *testing.B) { runExperiment(b, "E08") }

// BenchmarkE09Coverage regenerates E09: Theorem 3.3 coverage decay.
func BenchmarkE09Coverage(b *testing.B) { runExperiment(b, "E09") }

// BenchmarkE10Sparsity regenerates E10: property P1 degree distributions.
func BenchmarkE10Sparsity(b *testing.B) { runExperiment(b, "E10") }

// BenchmarkE11Power regenerates E11: Li–Wan–Wang power stretch bound.
func BenchmarkE11Power(b *testing.B) { runExperiment(b, "E11") }

// BenchmarkE12Routing regenerates E12: §4.2 routing probes vs optimal
// (Figure 9 algorithm; Figure 8 expansion).
func BenchmarkE12Routing(b *testing.B) { runExperiment(b, "E12") }

// BenchmarkE13Construction regenerates E13: §4.1 construction cost / P4
// (Figure 7 pipeline with both election protocols).
func BenchmarkE13Construction(b *testing.B) { runExperiment(b, "E13") }

// BenchmarkE14Baselines regenerates E14: SENS vs Gabriel/RNG/Yao/EMST/k-NN.
func BenchmarkE14Baselines(b *testing.B) { runExperiment(b, "E14") }

// Component-level benchmarks: the two constructions end to end.

func BenchmarkBuildUDGSens(b *testing.B) {
	box := sensnet.Box(24, 24)
	pts := sensnet.Deploy(box, 16, 7)
	spec := sensnet.DefaultUDGSpec()
	b.ReportMetric(float64(len(pts)), "points")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sensnet.BuildUDGSens(pts, box, spec, sensnet.Options{SkipBase: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildNNSens(b *testing.B) {
	spec := sensnet.PaperNNSpec()
	box := sensnet.Box(4*spec.TileSide(), 4*spec.TileSide())
	pts := sensnet.Deploy(box, 1, 8)
	b.ReportMetric(float64(len(pts)), "points")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sensnet.BuildNNSens(pts, box, spec, sensnet.Options{SkipBase: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRouteOnSens(b *testing.B) {
	box := sensnet.Box(30, 30)
	pts := sensnet.Deploy(box, 16, 9)
	net, err := sensnet.BuildUDGSens(pts, box, sensnet.DefaultUDGSpec(), sensnet.Options{SkipBase: true})
	if err != nil {
		b.Fatal(err)
	}
	_, coords := net.GoodReps()
	if len(coords) < 2 {
		b.Skip("no routable pairs")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := coords[i%len(coords)]
		to := coords[(i*7+3)%len(coords)]
		if _, err := sensnet.Route(net, from, to, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildHNG builds the hierarchical neighbor graph (internal/hng)
// end to end at the SENS benchmarks' deployment scale (~9k points).
func BenchmarkBuildHNG(b *testing.B) {
	box := sensnet.Box(24, 24)
	pts := sensnet.Deploy(box, 16, 7)
	spec := sensnet.DefaultHNGSpec()
	b.ReportMetric(float64(len(pts)), "points")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := sensnet.BuildHNG(pts, spec, 8)
		if err != nil || g.EdgeCount == 0 {
			b.Fatalf("bad HNG build: %v", err)
		}
	}
}

// Base-graph construction benchmarks at 10× and 50× the SENS benchmarks'
// node counts (~9k points): the flat-CSR builder and the parallel point
// loops are sized for exactly these scales. λ=16 UDG at radius 1 carries a
// mean degree of ~50, so the 460k-point build moves ~11.6M directed edges.

func benchUDGGraph(b *testing.B, side float64) {
	b.Helper()
	box := sensnet.Box(side, side)
	pts := sensnet.Deploy(box, 16, 11)
	b.ReportMetric(float64(len(pts)), "points")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := sensnet.UDG(pts, 1); g.EdgeCount == 0 {
			b.Fatal("empty UDG")
		}
	}
}

func benchNNGraph(b *testing.B, side float64) {
	b.Helper()
	box := sensnet.Box(side, side)
	pts := sensnet.Deploy(box, 16, 11)
	b.ReportMetric(float64(len(pts)), "points")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := sensnet.NN(pts, 6); g.EdgeCount == 0 {
			b.Fatal("empty NN graph")
		}
	}
}

// BenchmarkUDGGraph100k builds UDG(2, λ) over ~100k Poisson points (10×).
func BenchmarkUDGGraph100k(b *testing.B) { benchUDGGraph(b, 79) }

// BenchmarkUDGGraph460k builds UDG(2, λ) over ~460k Poisson points (50×).
func BenchmarkUDGGraph460k(b *testing.B) { benchUDGGraph(b, 170) }

// BenchmarkNNGraph100k builds NN(2, 6) over ~100k Poisson points (10×).
func BenchmarkNNGraph100k(b *testing.B) { benchNNGraph(b, 79) }

// BenchmarkNNGraph460k builds NN(2, 6) over ~460k Poisson points (50×).
func BenchmarkNNGraph460k(b *testing.B) { benchNNGraph(b, 170) }

// BenchmarkE15AblationGeometry regenerates E15: the repaired-geometry
// parameter sweep and λs optimizer (the paper's future-work item).
func BenchmarkE15AblationGeometry(b *testing.B) { runExperiment(b, "E15") }

// BenchmarkE16AblationRelaxed regenerates E16: handshake-failure rates of
// the as-written Figure 7 algorithm on the paper's original tile.
func BenchmarkE16AblationRelaxed(b *testing.B) { runExperiment(b, "E16") }

// BenchmarkE17FaultTolerance regenerates E17: failure degradation and the
// rebuild threshold crossover.
func BenchmarkE17FaultTolerance(b *testing.B) { runExperiment(b, "E17") }

// BenchmarkE18DensityGradient regenerates E18: construction under an
// inhomogeneous deployment.
func BenchmarkE18DensityGradient(b *testing.B) { runExperiment(b, "E18") }

// BenchmarkH01HNGSweep regenerates H01: hierarchical-neighbor-graph shape,
// degree and stretch across promotion probabilities.
func BenchmarkH01HNGSweep(b *testing.B) { runExperiment(b, "H01") }

// BenchmarkH02HNGBaselines regenerates H02: the HNG vs SENS vs dense-base
// head-to-head comparison.
func BenchmarkH02HNGBaselines(b *testing.B) { runExperiment(b, "H02") }

// BenchmarkH03HNGChurn regenerates H03: HNG churn degradation and
// survivor-rebuild sweep.
func BenchmarkH03HNGChurn(b *testing.B) { runExperiment(b, "H03") }

// BenchmarkQ01Lifetime regenerates Q01: network lifetime head-to-head
// (UDG-SENS vs NN-SENS vs HNG under the default radio model).
func BenchmarkQ01Lifetime(b *testing.B) { runExperiment(b, "Q01") }

// BenchmarkQ02LifetimeQoS regenerates Q02: the report-rate × path-loss-β
// QoS sweep on UDG-SENS.
func BenchmarkQ02LifetimeQoS(b *testing.B) { runExperiment(b, "Q02") }

// BenchmarkQ03LifetimeRotation regenerates Q03: member rotation on vs off.
func BenchmarkQ03LifetimeRotation(b *testing.B) { runExperiment(b, "Q03") }

// BenchmarkSimulateLifetimePublic runs the public lifetime simulation over
// a UDG-SENS network end to end (the per-cell cost of the Q scenarios at
// API level; the internal/energy benchmark covers the raw engine).
func BenchmarkSimulateLifetimePublic(b *testing.B) {
	box := sensnet.Box(16, 16)
	pts := sensnet.Deploy(box, 16, 6)
	net, err := sensnet.BuildUDGSens(pts, box, sensnet.DefaultUDGSpec(), sensnet.Options{SkipBase: true})
	if err != nil {
		b.Fatal(err)
	}
	sinks := sensnet.LifetimeSinks(net)
	spec := sensnet.DefaultLifetimeSpec()
	spec.MaxRounds = 400
	b.ReportMetric(float64(len(net.Members)), "members")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sensnet.SimulateLifetime(net, sinks, spec, sensnet.Seed(i))
		if err != nil || rep.Rounds == 0 {
			b.Fatalf("bad run: %v", err)
		}
	}
}

// BenchmarkR01AttackDecay regenerates R01: giant-component decay under
// random failure vs targeted (degree/betweenness) attack per topology.
func BenchmarkR01AttackDecay(b *testing.B) { runExperiment(b, "R01") }

// BenchmarkR02LifetimeUnderAttack regenerates R02: the Q01 lifetime
// head-to-head with a mid-run crash-stop attack and localized repair.
func BenchmarkR02LifetimeUnderAttack(b *testing.B) { runExperiment(b, "R02") }

// BenchmarkR03LossRetry regenerates R03: the per-link loss × retry-policy
// sweep on the percolated-lattice router.
func BenchmarkR03LossRetry(b *testing.B) { runExperiment(b, "R03") }

// BenchmarkM01RepairCost regenerates M01: incremental repair cost vs
// displacement across the kinetic maintainers (the dirty-region claim; the
// paired internal/core RepairIncremental/RebuildFull benchmarks give the
// same contrast as raw per-op cost).
func BenchmarkM01RepairCost(b *testing.B) { runExperiment(b, "M01") }

// BenchmarkM02Drift regenerates M02: connectivity and stretch drift under
// sustained waypoint motion.
func BenchmarkM02Drift(b *testing.B) { runExperiment(b, "M02") }

// BenchmarkM03MobileLifetime regenerates M03: the Q01 lifetime head-to-head
// on a moving network maintained incrementally while batteries drain.
func BenchmarkM03MobileLifetime(b *testing.B) { runExperiment(b, "M03") }
