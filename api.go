package sensnet

import (
	"io"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/hng"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/tiling"
	"repro/internal/topo"
)

// Core geometric types.
type (
	// Point is a point in R².
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
)

// Pt builds a Point.
func Pt(x, y float64) Point { return geom.Pt(x, y) }

// Box returns the deployment rectangle [0, w] × [0, h].
func Box(w, h float64) Rect { return geom.Box(w, h) }

// Seed identifies a reproducible random stream.
type Seed = rng.Seed

// NewRand returns a deterministic generator for the seed — the type the
// measurement methods (Network.SampleRepStretch, EmptyBoxProbability)
// expect.
func NewRand(seed Seed) *rand.Rand { return rng.New(seed) }

// Deploy samples a Poisson(λ) deployment on box — the node placement model
// of the paper.
func Deploy(box Rect, lambda float64, seed Seed) []Point {
	return pointprocess.Poisson(box, lambda, rng.New(seed))
}

// DeployN places exactly n uniform nodes on box (the binomial process).
func DeployN(box Rect, n int, seed Seed) []Point {
	return pointprocess.Binomial(box, n, rng.New(seed))
}

// SoA is a struct-of-arrays point set (separate X/Y coordinate slabs) — the
// compact deployment representation of the million-node scale tier. Convert
// to the interleaved form once with SoA.Points when a builder needs []Point.
type SoA = geom.SoA

// DeploySoA samples a Poisson(λ) deployment on box straight into
// struct-of-arrays slabs, generated tile by tile (square generation tiles of
// side genSide; ≤ 0 means one tile) from per-tile RNG substreams: exact-size
// allocation, parallel fill, identical output at any GOMAXPROCS. This is
// the scale-tier form of Deploy — at 10⁶ points it avoids the append-growth
// copies and serial RNG stream of the slice path.
func DeploySoA(box Rect, lambda float64, seed Seed, genSide float64) SoA {
	return pointprocess.PoissonSoA(box, lambda, seed, genSide)
}

// DeployStream samples the same deployment as DeploySoA but hands each
// generation tile's points to emit instead of retaining them — constant
// memory for consumers that reduce tiles on the fly. The emitted coordinate
// slices are reused between calls; copy what you keep. Concatenating the
// emissions in call order reproduces DeploySoA exactly. Returns the total
// point count.
func DeployStream(box Rect, lambda float64, seed Seed, genSide float64, emit func(tile Rect, xs, ys []float64)) int {
	return pointprocess.StreamPoisson(box, lambda, seed, genSide, emit)
}

// Tile geometry specifications.
type (
	// UDGSpec parameterizes the UDG-SENS tile geometry.
	UDGSpec = tiling.UDGSpec
	// NNSpec parameterizes the NN-SENS tile geometry.
	NNSpec = tiling.NNSpec
	// TileCoord identifies a tile.
	TileCoord = tiling.Coord
	// GeometryMode selects literal / repaired / relaxed regions.
	GeometryMode = tiling.GeometryMode
)

// Geometry modes (see DESIGN.md §2 for the literal-geometry caveat).
const (
	GeometryLiteral  = tiling.GeometryLiteral
	GeometryRepaired = tiling.GeometryRepaired
	GeometryRelaxed  = tiling.GeometryRelaxed
)

// DefaultUDGSpec returns the repaired feasible UDG-SENS geometry
// (a = 3/2, R0 = Re = 1/4, Xe = 1/2).
func DefaultUDGSpec() UDGSpec { return tiling.DefaultUDGSpec() }

// PaperUDGSpec returns the paper's literal §2.1 geometry (empty relay
// regions; useful only for the negative experiment).
func PaperUDGSpec() UDGSpec { return tiling.PaperUDGSpec() }

// RelaxedUDGSpec returns the operational variant with handshake-validated
// connections on the paper's original tile.
func RelaxedUDGSpec() UDGSpec { return tiling.RelaxedUDGSpec() }

// PaperNNSpec returns the paper's Theorem 2.4 parameters (k=188, a=0.893).
func PaperNNSpec() NNSpec { return tiling.PaperNNSpec() }

// Networks.
type (
	// Network is a constructed SENS subnetwork.
	Network = core.Network
	// Options tunes construction (election protocol, base graph reuse).
	Options = core.Options
	// Stats carries construction accounting.
	Stats = core.Stats
	// StretchSample is one rep-pair stretch measurement.
	StretchSample = core.StretchSample
)

// BuildUDGSens constructs UDG-SENS(2, λ) over pts.
func BuildUDGSens(pts []Point, box Rect, spec UDGSpec, opt Options) (*Network, error) {
	return core.BuildUDG(pts, box, spec, opt)
}

// BuildUDGSensSharded constructs the same network as BuildUDGSens by
// tile-sharded parallel execution: per-tile elections and border-stitched
// relay wiring run across all cores and the result is byte-identical to the
// serial build at any GOMAXPROCS (equivalence-tested). This is the
// scale-tier path for 10⁶-node deployments; when it builds the base graph
// itself it uses the pair-free UDGGrid enumeration.
func BuildUDGSensSharded(pts []Point, box Rect, spec UDGSpec, opt Options) (*Network, error) {
	return core.BuildUDGSharded(pts, box, spec, opt)
}

// BuildNNSens constructs NN-SENS(2, k) over pts.
func BuildNNSens(pts []Point, box Rect, spec NNSpec, opt Options) (*Network, error) {
	return core.BuildNN(pts, box, spec, opt)
}

// DistributedResult reports a message-passing construction run.
type DistributedResult = core.DistributedResult

// BuildUDGSensDistributed runs the Figure 7 construction as an actual
// message-passing protocol on the discrete-event simulator; the topology is
// identical to BuildUDGSens with the broadcast election protocol, and the
// message counts are measured rather than computed.
func BuildUDGSensDistributed(pts []Point, box Rect, spec UDGSpec) (*DistributedResult, error) {
	return core.BuildUDGDistributed(pts, box, spec)
}

// BuildNNSensDistributed is the NN-SENS counterpart of
// BuildUDGSensDistributed: the §2.2 construction (including the population
// census for the k/2 cap) as measured message passing.
func BuildNNSensDistributed(pts []Point, box Rect, spec NNSpec) (*DistributedResult, error) {
	return core.BuildNNDistributed(pts, box, spec)
}

// FailureReport quantifies node-failure damage and the rebuilt network.
type FailureReport = core.FailureReport

// SimulateFailures kills each node independently with probability q,
// reports the degradation of the standing network, and rebuilds from the
// survivors with the same geometry.
func SimulateFailures(n *Network, q float64, seed Seed) (*FailureReport, error) {
	return core.SimulateFailures(n, q, rng.New(seed))
}

// DeployGradient samples an inhomogeneous Poisson deployment whose
// intensity ramps linearly from lambda0 at the left edge of box to lambda1
// at the right edge.
func DeployGradient(box Rect, lambda0, lambda1 float64, seed Seed) []Point {
	g := rng.New(seed)
	grad := pointprocess.LinearGradient(box, lambda0, lambda1)
	max := lambda0
	if lambda1 > max {
		max = lambda1
	}
	return pointprocess.Inhomogeneous(box, grad, max, g)
}

// Geometric is a geometric graph (positions + CSR adjacency).
type Geometric = rgg.Geometric

// UDG builds the unit disk graph with connection radius r.
func UDG(pts []Point, r float64) *Geometric { return rgg.UDG(pts, r) }

// NN builds the undirected k-nearest-neighbor graph.
func NN(pts []Point, k int) *Geometric { return rgg.NN(pts, k) }

// UDGGrid builds the identical unit disk graph as UDG by pair-free bucket
// grid enumeration — the scale-tier builder: each unordered point pair is
// examined at most once, edges stream into pre-sized per-shard buffers, and
// memory stays O(n + m). Prefer it from ~10⁵ points up; the two builders
// are equivalence-tested edge for edge.
func UDGGrid(pts []Point, r float64) *Geometric { return rgg.UDGGrid(pts, r) }

// UDGGridSoA is UDGGrid over a struct-of-arrays deployment (DeploySoA); the
// slabs are interleaved once and the graph is built over the result.
func UDGGridSoA(s SoA, r float64) *Geometric { return rgg.UDGGridSoA(s, r) }

// Baseline topology-control structures (§1.2 related work).
var (
	// Gabriel returns the Gabriel graph of a UDG.
	Gabriel = topo.Gabriel
	// RelativeNeighborhood returns the RNG of a UDG.
	RelativeNeighborhood = topo.RelativeNeighborhood
	// Yao returns the Yao graph of a UDG with the given cone count.
	Yao = topo.Yao
	// EMST returns the Euclidean minimum spanning forest of a UDG.
	EMST = topo.EMST
)

// Hierarchical neighbor graphs (arXiv:0903.0742) — the competing
// bounded-degree low-stretch topology from the same research line,
// reproduced in internal/hng and compared against the SENS constructions by
// the H01–H03 scenarios (tag "topology:hng").
type (
	// HNGSpec parameterizes a hierarchical neighbor graph (promotion
	// probability, bounded-degree chaining cap).
	HNGSpec = hng.Spec
	// HNGGraph is a constructed hierarchical neighbor graph: positions, CSR
	// adjacency, per-node levels and construction stats.
	HNGGraph = hng.Graph
)

// DefaultHNGSpec returns the reference HNG parameterization (p = 1/8,
// chaining cap 6) used by the H** scenarios.
func DefaultHNGSpec() HNGSpec { return hng.DefaultSpec() }

// BuildHNG constructs the hierarchical neighbor graph over pts. The seed
// drives only the level promotion draws; construction is deterministic at
// any GOMAXPROCS. The result flows through the same measurement engine as
// every other structure (its CSR works with MeasureStretch and the power
// Measurer).
func BuildHNG(pts []Point, spec HNGSpec, seed Seed) (*HNGGraph, error) {
	return hng.Build(pts, spec, rng.New(seed))
}

// Energy and network lifetime (internal/energy): per-node batteries under a
// first-order radio model, debited by the lifetime simulation, the simnet
// energy sink and the routing charge hooks; measured by the Q01–Q03
// scenarios (tag "energy").
type (
	// EnergyModel is the radio energy model: tx = bits·(c + d^β), rx per
	// bit, idle drain per round.
	EnergyModel = energy.Model
	// Battery is one node's energy store (charge remaining, total spent).
	Battery = energy.Battery
	// LifetimeSpec configures a lifetime simulation (model, battery
	// capacity, traffic rate, rotation).
	LifetimeSpec = energy.Spec
	// LifetimeReport is the outcome: first death, coverage lifetime,
	// delivery counts, alive/component/service curves, residual-energy
	// summary.
	LifetimeReport = energy.Report
)

// DefaultEnergyModel returns the reference radio parameterization.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// DefaultLifetimeSpec returns the reference lifetime configuration used by
// the Q** scenarios.
func DefaultLifetimeSpec() LifetimeSpec { return energy.DefaultSpec() }

// RepairPolicy selects how the lifetime simulation's routing forest reacts
// to node deaths (LifetimeSpec.Repair).
type RepairPolicy = energy.RepairPolicy

// Repair policies: full forest rebuild (the historical default) vs
// localized repair that re-attaches only orphaned subtrees (graceful
// degradation under attack, R02).
const (
	RepairRebuild = energy.RepairRebuild
	RepairLocal   = energy.RepairLocal
)

// LifetimeSinks returns the deterministic multi-gateway sink choice for a
// SENS network: up to four members, one nearest each quadrant centroid of
// the member bounding box.
func LifetimeSinks(n *Network) []int32 { return energy.QuadrantSinks(n.Pts, n.Members) }

// SimulateLifetime runs the round-based data-gathering lifetime simulation
// over the SENS network's members: every round each member reports
// spec.Rate packets on average toward its nearest sink, hops debit tx/rx
// energy, batteries that empty kill (or rotate) their node, and the report
// carries first-death time, coverage lifetime and the alive/component
// curves. Sinks are mains-powered. Deterministic in the seed at any
// GOMAXPROCS.
func SimulateLifetime(n *Network, sinks []int32, spec LifetimeSpec, seed Seed) (*LifetimeReport, error) {
	return energy.SimulateLifetime(n.Graph, n.Pts, n.Members, sinks, spec, rng.New(seed))
}

// SimulateHNGLifetime is SimulateLifetime over a hierarchical neighbor
// graph, whose every node is active (and battery-powered unless listed in
// sinks).
func SimulateHNGLifetime(h *HNGGraph, sinks []int32, spec LifetimeSpec, seed Seed) (*LifetimeReport, error) {
	return energy.SimulateLifetime(h.CSR, h.Pos, h.Vertices(), sinks, spec, rng.New(seed))
}

// Fault injection: deterministic crash/loss/attack schedules applied to
// the structures above; measured by the R01–R03 scenarios (tag
// "robustness"). Schedules are pure data — build once, reuse across runs.
type (
	// FaultSchedule is a deterministic fault plan: crash-stop events at
	// round boundaries, a baseline per-hop loss probability, and burst
	// windows of elevated loss.
	FaultSchedule = fault.Schedule
	// FaultEvent is one crash-stop failure (round, node).
	FaultEvent = fault.Event
	// LossWindow is a burst of elevated loss over a round interval.
	LossWindow = fault.Window
	// VictimSelector picks the attack victim ordering (random failure vs
	// targeted attack).
	VictimSelector = fault.Selector
)

// Victim selectors: uniform random failure, and the two classic targeted
// attacks — by descending degree and by descending betweenness centrality.
const (
	SelectRandom      = fault.SelectRandom
	SelectDegree      = fault.SelectDegree
	SelectBetweenness = fault.SelectBetweenness
)

// NetworkVictims orders the network's members as attack victims under the
// selector: a uniform shuffle for SelectRandom (driven by seed), descending
// degree / betweenness (ties by ascending id, seed unused) for the targeted
// attacks. Feed the prefix to CrashSchedule.
func NetworkVictims(n *Network, sel VictimSelector, seed Seed) []int32 {
	return fault.Victims(n.Graph, n.Members, sel, rng.New(seed))
}

// CrashSchedule turns a victim ordering into a crash schedule killing the
// first frac of the victims from round start on, perRound at a time
// (perRound ≤ 0: all at once at start). Compose loss on the result with
// WithLoss / WithBurst.
func CrashSchedule(victims []int32, frac float64, start, perRound int) *FaultSchedule {
	return fault.CrashSchedule(victims, frac, start, perRound)
}

// RouteResult reports a SENS routing attempt.
type RouteResult = routing.SensResult

// Route routes a packet between the representatives of two good tiles using
// the percolated-mesh algorithm of §4.2 (probeBudget ≤ 0 = unlimited).
func Route(n *Network, from, to TileCoord, probeBudget int) (RouteResult, error) {
	return routing.RouteOnSens(n, from, to, probeBudget)
}

// ExperimentTable is a rendered experiment result.
type ExperimentTable = experiments.Table

// ExperimentConfig tunes experiment runs (seed + scale).
type ExperimentConfig = experiments.Config

// RunExperiment runs the experiment with the given ID ("E01".."E18", an
// HNG scenario "H01".."H03", or an energy/lifetime scenario "Q01".."Q03");
// returns nil for unknown IDs. The run executes
// against fresh caches; to share structures across several experiments use
// NewScenarioEngine.
func RunExperiment(id string, cfg ExperimentConfig) *ExperimentTable {
	r := experiments.ByID(id)
	if r == nil {
		return nil
	}
	return r.Run(cfg)
}

// ExperimentIDs lists the available experiment IDs in order.
func ExperimentIDs() []string {
	out := make([]string, len(experiments.All))
	for i, r := range experiments.All {
		out[i] = r.ID
	}
	return out
}

// Scenario registry and engine surface: every experiment is a registered
// scenario (name, tags, parameter grid, required structures) executed
// through a keyed build cache that shares deployments, base graphs, SENS
// structures, baselines and measurement weight slabs across scenarios.
type (
	// Scenario is a registered experiment with discovery metadata.
	Scenario = scenario.Scenario
	// ScenarioParam is one axis of a scenario's declarative parameter grid.
	ScenarioParam = scenario.Param
	// ScenarioEngine executes scenarios through shared caches into a sink.
	ScenarioEngine = scenario.Engine
	// ResultSink consumes the typed row stream of an engine run.
	ResultSink = scenario.Sink
)

// Scenarios lists every registered scenario in registration order.
func Scenarios() []Scenario { return scenario.All() }

// ScenarioTags lists all registered scenario tags, sorted.
func ScenarioTags() []string { return scenario.Tags() }

// MatchScenarios selects scenarios by ID, name, glob ("E0?", "ablation-*")
// or tag ("tag:power"), in registration order; a pattern that selects
// nothing is an error.
func MatchScenarios(patterns ...string) ([]Scenario, error) {
	return scenario.Match(patterns)
}

// NewScenarioEngine returns an engine with fresh shared caches writing to
// sink (which may be nil to collect tables only). Set Jobs to run several
// scenarios concurrently — emission order and bytes stay identical.
func NewScenarioEngine(sink ResultSink) *ScenarioEngine { return scenario.NewEngine(sink) }

// NewTextSink renders tables as aligned monospace text.
func NewTextSink(w io.Writer) ResultSink { return scenario.NewTextSink(w) }

// NewCSVSink streams rows as CSV records prefixed with the scenario ID.
func NewCSVSink(w io.Writer) ResultSink { return scenario.NewCSVSink(w) }

// NewJSONLSink streams one JSON event per table/row/note.
func NewJSONLSink(w io.Writer) ResultSink { return scenario.NewJSONLSink(w) }
