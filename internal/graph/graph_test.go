package graph

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rng"
)

// pathGraph builds the path 0−1−2−…−(n−1).
func pathGraph(n int) *CSR {
	b := NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate (reversed) — removed at Build
	b.AddEdge(2, 2) // self loop — ignored
	b.AddEdge(1, 2)
	if b.Pending() != 3 {
		t.Errorf("Pending = %d want 3 (self loop dropped, duplicate kept)", b.Pending())
	}
	if b.N() != 4 {
		t.Errorf("N = %d", b.N())
	}
	g := b.Build()
	if g.EdgeCount != 2 {
		t.Errorf("EdgeCount = %d want 2", g.EdgeCount)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 {
		t.Errorf("Degree(1) = %d", g.Degree(1))
	}
}

// TestBuildEdgeCountDedup is the regression test for the dedup-at-build
// accounting: the seed builder counted edges at insert time, which would
// overcount duplicates under the flat edge-list scheme.
func TestBuildEdgeCountDedup(t *testing.T) {
	b := NewBuilder(5)
	for i := 0; i < 7; i++ {
		b.AddEdge(0, 1) // same edge, repeatedly
	}
	b.AddEdge(1, 0) // and reversed
	b.AddEdge(3, 4)
	g := b.Build()
	if g.EdgeCount != 2 {
		t.Fatalf("EdgeCount = %d want 2", g.EdgeCount)
	}
	if len(g.Adj) != 2*g.EdgeCount {
		t.Fatalf("len(Adj) = %d want %d", len(g.Adj), 2*g.EdgeCount)
	}
	if got := g.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if got := g.MeanDegree(); math.Abs(got-4.0/5) > 1e-12 {
		t.Errorf("MeanDegree = %v", got)
	}
}

func TestBuilderUniqueAndPacked(t *testing.T) {
	// AddEdgeUnique and AddPacked(unique) must agree with the dedup path
	// when the uniqueness promise holds.
	b1 := NewBuilder(6)
	b2 := NewBuilder(6)
	var packed []uint64
	edges := [][2]int32{{0, 1}, {2, 1}, {5, 0}, {3, 4}, {4, 5}}
	for _, e := range edges {
		b1.AddEdge(e[0], e[1])
		b2.AddEdgeUnique(e[0], e[1])
		packed = append(packed, Pack(e[0], e[1]))
	}
	b3 := NewBuilder(6)
	b3.AddPacked(packed, true)
	g1, g2, g3 := b1.Build(), b2.Build(), b3.Build()
	for _, g := range []*CSR{g2, g3} {
		if !sameCSR(g1, g) {
			t.Fatalf("builder paths disagree:\n%v\n%v", g1, g)
		}
	}
	if u, v := Unpack(Pack(3, 1)); u != 1 || v != 3 {
		t.Errorf("Pack/Unpack not canonical: (%d, %d)", u, v)
	}
}

func sameCSR(a, b *CSR) bool {
	if a.N != b.N || a.EdgeCount != b.EdgeCount || len(a.Start) != len(b.Start) || len(a.Adj) != len(b.Adj) {
		return false
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			return false
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			return false
		}
	}
	return true
}

// TestBuildMatchesReferenceProperty checks the counting-sort Build against a
// straightforward map-based reference over random edge multisets (with
// duplicates and insertion-order shuffling).
func TestBuildMatchesReferenceProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 23
		b := NewBuilder(n)
		adj := make(map[int32]map[int32]bool)
		for _, r := range raw {
			u, v := int32(r%n), int32((r/n)%n)
			b.AddEdge(u, v)
			if u != v {
				if adj[u] == nil {
					adj[u] = map[int32]bool{}
				}
				if adj[v] == nil {
					adj[v] = map[int32]bool{}
				}
				adj[u][v] = true
				adj[v][u] = true
			}
		}
		g := b.Build()
		edges := 0
		for u := int32(0); u < n; u++ {
			var want []int32
			for v := range adj[u] {
				want = append(want, v)
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := g.Neighbors(u)
			if len(got) != len(want) {
				return false
			}
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
			edges += len(want)
		}
		return g.EdgeCount == edges/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuilderPanicsOnBadEdge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 5)
}

func TestCSRStructure(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 3)
	b.AddEdge(0, 1)
	b.AddEdge(3, 4)
	g := b.Build()
	if g.N != 5 || g.EdgeCount != 3 {
		t.Fatalf("N=%d E=%d", g.N, g.EdgeCount)
	}
	// Sorted adjacency.
	n0 := g.Neighbors(0)
	if len(n0) != 2 || n0[0] != 1 || n0[1] != 3 {
		t.Errorf("Neighbors(0) = %v", n0)
	}
	if g.Degree(2) != 0 {
		t.Errorf("Degree(2) = %d", g.Degree(2))
	}
	if !g.HasEdge(0, 3) || !g.HasEdge(4, 3) || g.HasEdge(1, 4) {
		t.Error("CSR HasEdge wrong")
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if got := g.MeanDegree(); math.Abs(got-6.0/5) > 1e-12 {
		t.Errorf("MeanDegree = %v", got)
	}
	h := g.DegreeHistogram()
	// Degrees: 0:2, 1:1, 2:0, 3:2, 4:1 → hist[0]=1, hist[1]=2, hist[2]=2.
	if h[0] != 1 || h[1] != 2 || h[2] != 2 {
		t.Errorf("DegreeHistogram = %v", h)
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Count() != 6 {
		t.Errorf("initial Count = %d", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Error("Union of distinct sets returned false")
	}
	if uf.Union(0, 2) {
		t.Error("Union of same set returned true")
	}
	if !uf.Connected(0, 2) || uf.Connected(0, 3) {
		t.Error("Connected wrong")
	}
	if uf.Count() != 4 {
		t.Errorf("Count = %d", uf.Count())
	}
}

func TestUnionFindPropertyTransitive(t *testing.T) {
	f := func(ops [][2]uint8) bool {
		uf := NewUnionFind(16)
		// Mirror with an explicit labels array.
		labels := make([]int, 16)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for _, op := range ops {
			a, b := int32(op[0]%16), int32(op[1]%16)
			uf.Union(a, b)
			relabel(labels[a], labels[b])
		}
		for i := int32(0); i < 16; i++ {
			for j := int32(0); j < 16; j++ {
				if uf.Connected(i, j) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated.
	g := b.Build()
	labels, sizes := Components(g)
	if len(sizes) != 4 {
		t.Fatalf("num components = %d", len(sizes))
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("component {0,1,2} split")
	}
	if labels[3] != labels[4] {
		t.Error("component {3,4} split")
	}
	if labels[5] == labels[6] || labels[5] == labels[0] {
		t.Error("isolated vertices mislabeled")
	}
	members, _ := LargestComponent(g)
	if len(members) != 3 || members[0] != 0 || members[2] != 2 {
		t.Errorf("LargestComponent = %v", members)
	}
}

func TestLargestComponentEmpty(t *testing.T) {
	g := NewBuilder(0).Build()
	members, label := LargestComponent(g)
	if members != nil || label != -1 {
		t.Errorf("empty graph largest component = %v, %d", members, label)
	}
}

func TestBFSOnPath(t *testing.T) {
	g := pathGraph(10)
	dist := BFS(g, 0, nil)
	for i := 0; i < 10; i++ {
		if dist[i] != int32(i) {
			t.Errorf("dist[%d] = %d", i, dist[i])
		}
	}
	// Buffer reuse.
	dist2 := BFS(g, 9, dist)
	if dist2[0] != 9 {
		t.Errorf("reused-buffer BFS wrong: %v", dist2[0])
	}
}

func TestBFSUnreachable(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	g := b.Build()
	dist := BFS(g, 0, nil)
	if dist[2] != -1 || dist[3] != -1 {
		t.Error("unreachable vertices should be -1")
	}
}

func TestBFSPath(t *testing.T) {
	g := pathGraph(6)
	p := BFSPath(g, 1, 4)
	want := []int32{1, 2, 3, 4}
	if len(p) != len(want) {
		t.Fatalf("path = %v", p)
	}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("path = %v", p)
		}
	}
	if p := BFSPath(g, 2, 2); len(p) != 1 || p[0] != 2 {
		t.Errorf("trivial path = %v", p)
	}
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	if p := BFSPath(b.Build(), 0, 2); p != nil {
		t.Errorf("unreachable path = %v", p)
	}
}

func TestBFSPathIsShortest(t *testing.T) {
	// Cycle of length 8: path from 0 to 5 should use the short side (3 hops).
	b := NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddEdge(int32(i), int32((i+1)%8))
	}
	g := b.Build()
	p := BFSPath(g, 0, 5)
	if len(p)-1 != 3 {
		t.Errorf("cycle shortest path length = %d want 3 (path %v)", len(p)-1, p)
	}
	d := BFS(g, 0, nil)
	if d[5] != 3 {
		t.Errorf("BFS dist = %d", d[5])
	}
}

func TestDijkstraMatchesBFSOnUnitWeights(t *testing.T) {
	g := rngGraph(t, 200, 0.03)
	unit := func(u, v int32) float64 { return 1 }
	d := Dijkstra(g, 0, unit)
	h := BFS(g, 0, nil)
	for i := 0; i < g.N; i++ {
		if h[i] < 0 {
			if !math.IsInf(d[i], 1) {
				t.Fatalf("vertex %d: BFS unreachable but Dijkstra %v", i, d[i])
			}
			continue
		}
		if math.Abs(d[i]-float64(h[i])) > 1e-9 {
			t.Fatalf("vertex %d: Dijkstra %v vs BFS %d", i, d[i], h[i])
		}
	}
}

// rngGraph builds a G(n, p) random graph.
func rngGraph(t *testing.T, n int, p float64) *CSR {
	t.Helper()
	g := rng.New(77)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if g.Float64() < p {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.Build()
}

func TestDijkstraWeighted(t *testing.T) {
	// Triangle with a shortcut: 0−1 (1.0), 1−2 (1.0), 0−2 (2.5).
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	// Override distance 0−2 via positions: d(0,2) = 2 > d(0,1)+d(1,2) = 2 is
	// a tie; use a bent middle point instead.
	pos[1] = geom.Pt(1, 0.1)
	g := b.Build()
	w := EuclideanWeight(pos)
	d := Dijkstra(g, 0, w)
	// Direct edge 0−2 has length 2; via 1 it is ~2.01. Direct should win.
	if math.Abs(d[2]-2) > 1e-9 {
		t.Errorf("d[2] = %v want 2", d[2])
	}
	if got := DijkstraTo(g, 0, 2, w); math.Abs(got-2) > 1e-9 {
		t.Errorf("DijkstraTo = %v", got)
	}
	if got := DijkstraTo(g, 0, 2, PowerWeight(pos, 2)); math.Abs(got-(pos[0].Dist2(pos[1])+pos[1].Dist2(pos[2]))) > 1e-9 {
		// With beta=2 the two-hop path is cheaper: 1.01² ≈ two short hops.
		t.Errorf("power-weight DijkstraTo = %v", got)
	}
}

func TestDijkstraToUnreachable(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	if got := DijkstraTo(g, 0, 2, func(u, v int32) float64 { return 1 }); !math.IsInf(got, 1) {
		t.Errorf("unreachable DijkstraTo = %v", got)
	}
}

func TestPowerWeight(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(2, 0)}
	w := PowerWeight(pos, 3)
	if got := w(0, 1); math.Abs(got-8) > 1e-12 {
		t.Errorf("PowerWeight = %v want 8", got)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := pathGraph(100000)
	var dist []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dist = BFS(g, 0, dist)
	}
}

func BenchmarkUnionFindComponents(b *testing.B) {
	bld := NewBuilder(100000)
	g := rng.New(3)
	for i := 0; i < 200000; i++ {
		u := int32(g.IntN(100000))
		v := int32(g.IntN(100000))
		if u != v {
			bld.AddEdge(u, v)
		}
	}
	csr := bld.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Components(csr)
	}
}

func TestLargestComponentWhere(t *testing.T) {
	// Path 0-1-2-3-4; dropping vertex 2 leaves components {0,1} and {3,4}.
	b := NewBuilder(5)
	for i := int32(0); i < 4; i++ {
		b.AddEdgeUnique(i, i+1)
	}
	c := b.Build()
	alive := []bool{true, true, true, true, true}
	keep := func(u int32) bool { return alive[u] }
	if got := LargestComponentWhere(c, nil, keep); got != 5 {
		t.Errorf("all alive: %d, want 5", got)
	}
	alive[2] = false
	if got := LargestComponentWhere(c, nil, keep); got != 2 {
		t.Errorf("split: %d, want 2", got)
	}
	if got := LargestComponentWhere(c, nil, func(int32) bool { return false }); got != 0 {
		t.Errorf("all dead: %d, want 0", got)
	}
	// Restricting to a member subset ignores edges to non-members' side
	// only via keep; members {0, 1} alone count 2 even while all alive.
	alive[2] = true
	if got := LargestComponentWhere(c, []int32{0, 1}, keep); got != 2 {
		t.Errorf("member subset: %d, want 2", got)
	}
}
