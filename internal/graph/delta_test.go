package graph

import (
	"testing"

	"repro/internal/rng"
)

// refGraph is a map-backed undirected graph used as the oracle for Delta.
type refGraph struct {
	n     int
	edges map[uint64]bool
}

func newRef(n int) *refGraph { return &refGraph{n: n, edges: make(map[uint64]bool)} }

func (r *refGraph) add(u, v int32) bool {
	if u == v {
		return false
	}
	k := Pack(u, v)
	if r.edges[k] {
		return false
	}
	r.edges[k] = true
	return true
}

func (r *refGraph) remove(u, v int32) bool {
	k := Pack(u, v)
	if !r.edges[k] {
		return false
	}
	delete(r.edges, k)
	return true
}

func (r *refGraph) csr() *CSR {
	b := NewBuilder(r.n)
	for k := range r.edges {
		u, v := Unpack(k)
		b.AddEdgeUnique(u, v)
	}
	return b.Build()
}

func TestDeltaMatchesBuilderUnderRandomEdits(t *testing.T) {
	const n = 60
	gen := rng.Sub(3, 0)
	base := NewBuilder(n)
	ref := newRef(n)
	for i := 0; i < 150; i++ {
		u, v := int32(gen.IntN(n)), int32(gen.IntN(n))
		if ref.add(u, v) {
			base.AddEdgeUnique(u, v)
		}
	}
	baseCSR := base.Build()
	d := NewDelta(baseCSR)
	if !Equal(d.Materialize(), baseCSR) {
		t.Fatalf("empty overlay differs from base: %s", FirstDiff(d.Materialize(), baseCSR))
	}

	for round := 0; round < 30; round++ {
		for step := 0; step < 20; step++ {
			u, v := int32(gen.IntN(n)), int32(gen.IntN(n))
			if gen.Float64() < 0.5 {
				if got, want := d.AddEdge(u, v), ref.add(u, v); got != want {
					t.Fatalf("AddEdge(%d,%d)=%v want %v", u, v, got, want)
				}
			} else {
				if got, want := d.RemoveEdge(u, v), ref.remove(u, v); got != want {
					t.Fatalf("RemoveEdge(%d,%d)=%v want %v", u, v, got, want)
				}
			}
		}
		want := ref.csr()
		got := d.Materialize()
		if diff := FirstDiff(got, want); diff != "" {
			t.Fatalf("round %d: overlay != rebuilt: %s", round, diff)
		}
		if d.EdgeCount() != len(ref.edges) {
			t.Fatalf("round %d: EdgeCount=%d want %d", round, d.EdgeCount(), len(ref.edges))
		}
	}
}

func TestDeltaDropVertex(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdgeUnique(0, 1)
	b.AddEdgeUnique(0, 2)
	b.AddEdgeUnique(0, 3)
	b.AddEdgeUnique(1, 2)
	d := NewDelta(b.Build())
	if got := d.DropVertex(0); got != 3 {
		t.Fatalf("DropVertex removed %d edges, want 3", got)
	}
	if d.Degree(0) != 0 || d.EdgeCount() != 1 || !d.HasEdge(1, 2) {
		t.Fatalf("after drop: deg0=%d edges=%d has(1,2)=%v", d.Degree(0), d.EdgeCount(), d.HasEdge(1, 2))
	}
	if got := d.DropVertex(0); got != 0 {
		t.Fatalf("second DropVertex removed %d edges, want 0", got)
	}
}

func TestDeltaUntouchedVerticesAliasBase(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdgeUnique(0, 1)
	b.AddEdgeUnique(2, 3)
	base := b.Build()
	d := NewDelta(base)
	d.AddEdge(0, 2)
	if d.Touched() != 2 {
		t.Fatalf("Touched=%d want 2", d.Touched())
	}
	// Vertex 3 was never touched: its view must be the base slab itself.
	got := d.Neighbors(3)
	want := base.Neighbors(3)
	if &got[0] != &want[0] {
		t.Fatal("untouched vertex does not alias the base adjacency")
	}
}
