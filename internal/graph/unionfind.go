package graph

// UnionFind is a disjoint-set forest with union by rank and path halving.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets of x and y; returns true if they were distinct.
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int32) bool { return uf.Find(x) == uf.Find(y) }

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Components labels each vertex of the graph with a component id in
// [0, numComponents) and returns (labels, sizes). Ids are assigned in order
// of each component's smallest vertex. Implemented as a flood fill over the
// CSR — O(N + E) with two slab allocations, no union-find or remap table.
func Components(g *CSR) (labels []int32, sizes []int) {
	labels = make([]int32, g.N)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, 256)
	id := int32(0)
	for s := 0; s < g.N; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = id
		size := 1
		queue = append(queue[:0], int32(s))
		for head := 0; head < len(queue); head++ {
			for _, v := range g.Neighbors(queue[head]) {
				if labels[v] < 0 {
					labels[v] = id
					size++
					queue = append(queue, v)
				}
			}
		}
		sizes = append(sizes, size)
		id++
	}
	return labels, sizes
}

// LargestComponentWhere returns the size of the largest connected
// component of the subgraph induced by the vertices of members for which
// keep reports true (edges incident to a dropped vertex disappear).
// members nil means every vertex of the graph. It is the shared primitive
// behind the failure/churn experiments' "how much network survives without
// a rebuild" metric.
func LargestComponentWhere(g *CSR, members []int32, keep func(int32) bool) int {
	forEach := func(f func(u int32)) {
		if members == nil {
			for u := int32(0); int(u) < g.N; u++ {
				f(u)
			}
		} else {
			for _, u := range members {
				f(u)
			}
		}
	}
	uf := NewUnionFind(g.N)
	forEach(func(u int32) {
		if !keep(u) {
			return
		}
		for _, v := range g.Neighbors(u) {
			if v > u && keep(v) {
				uf.Union(u, v)
			}
		}
	})
	counts := make([]int32, g.N)
	best := 0
	forEach(func(u int32) {
		if !keep(u) {
			return
		}
		r := uf.Find(u)
		counts[r]++
		if int(counts[r]) > best {
			best = int(counts[r])
		}
	})
	return best
}

// LargestComponent returns the vertex set of the largest connected component
// (ties broken by lowest label) and its component label.
func LargestComponent(g *CSR) (members []int32, label int32) {
	labels, sizes := Components(g)
	if len(sizes) == 0 {
		return nil, -1
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	label = int32(best)
	members = make([]int32, 0, sizes[best])
	for u, l := range labels {
		if l == label {
			members = append(members, int32(u))
		}
	}
	return members, label
}
