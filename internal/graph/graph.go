// Package graph provides the graph substrate used by the topology
// constructions: a mutable adjacency-list builder, an immutable CSR
// (compressed sparse row) form for query-heavy phases, union-find for
// connected components, BFS (hop distance) and Dijkstra (weighted distance).
//
// Vertices are dense int32 indices; edge weights, where used, are Euclidean
// lengths supplied by the caller. All shortest-path routines reuse caller
// buffers where it matters to keep the Monte-Carlo loops allocation-light.
package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates an undirected multigraph-free edge set.
type Builder struct {
	n     int
	adj   [][]int32
	edges int
}

// NewBuilder creates a builder over n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, adj: make([][]int32, n)}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// Edges returns the number of undirected edges added.
func (b *Builder) Edges() int { return b.edges }

// AddEdge adds the undirected edge {u, v} if absent. Self loops are ignored.
// Returns true if the edge was newly added.
func (b *Builder) AddEdge(u, v int32) bool {
	if u == v {
		return false
	}
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d, %d) out of range [0, %d)", u, v, b.n))
	}
	for _, w := range b.adj[u] {
		if w == v {
			return false
		}
	}
	b.adj[u] = append(b.adj[u], v)
	b.adj[v] = append(b.adj[v], u)
	b.edges++
	return true
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (b *Builder) HasEdge(u, v int32) bool {
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		return false
	}
	for _, w := range b.adj[u] {
		if w == v {
			return true
		}
	}
	return false
}

// Degree returns the degree of u.
func (b *Builder) Degree(u int32) int { return len(b.adj[u]) }

// Neighbors returns u's adjacency slice (not a copy).
func (b *Builder) Neighbors(u int32) []int32 { return b.adj[u] }

// Build freezes the builder into CSR form.
func (b *Builder) Build() *CSR {
	c := &CSR{
		N:     b.n,
		Start: make([]int32, b.n+1),
	}
	total := 0
	for _, a := range b.adj {
		total += len(a)
	}
	c.Adj = make([]int32, total)
	pos := int32(0)
	for u, a := range b.adj {
		c.Start[u] = pos
		// Sorted adjacency gives deterministic iteration order downstream.
		sorted := append([]int32(nil), a...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		copy(c.Adj[pos:], sorted)
		pos += int32(len(a))
	}
	c.Start[b.n] = pos
	c.EdgeCount = b.edges
	return c
}

// CSR is an immutable undirected graph in compressed sparse row form.
type CSR struct {
	N         int
	Start     []int32 // len N+1
	Adj       []int32 // len 2·EdgeCount
	EdgeCount int
}

// Neighbors returns the sorted adjacency of u.
func (c *CSR) Neighbors(u int32) []int32 {
	return c.Adj[c.Start[u]:c.Start[u+1]]
}

// Degree returns the degree of u.
func (c *CSR) Degree(u int32) int {
	return int(c.Start[u+1] - c.Start[u])
}

// MaxDegree returns the maximum degree over all vertices (0 for empty).
func (c *CSR) MaxDegree() int {
	m := 0
	for u := 0; u < c.N; u++ {
		if d := c.Degree(int32(u)); d > m {
			m = d
		}
	}
	return m
}

// MeanDegree returns the average degree (0 for the empty graph).
func (c *CSR) MeanDegree() float64 {
	if c.N == 0 {
		return 0
	}
	return 2 * float64(c.EdgeCount) / float64(c.N)
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func (c *CSR) DegreeHistogram() []int {
	h := make([]int, c.MaxDegree()+1)
	for u := 0; u < c.N; u++ {
		h[c.Degree(int32(u))]++
	}
	return h
}

// HasEdge reports whether {u, v} is an edge, via binary search on the sorted
// adjacency of the lower-degree endpoint.
func (c *CSR) HasEdge(u, v int32) bool {
	if c.Degree(u) > c.Degree(v) {
		u, v = v, u
	}
	a := c.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}
