// Package graph provides the graph substrate used by the topology
// constructions: a flat edge-list builder, an immutable CSR (compressed
// sparse row) form for query-heavy phases, union-find for connected
// components, BFS (hop distance) and Dijkstra (weighted distance).
//
// Vertices are dense int32 indices; edge weights, where used, are Euclidean
// lengths supplied by the caller. All shortest-path routines reuse caller
// buffers where it matters to keep the Monte-Carlo loops allocation-light.
//
// The builder stores edges as packed uint64 (u, v) pairs appended without
// any per-insertion dedup scan, so AddEdge is O(1) and the whole edge set
// lives in one slab. Build produces the CSR with two stable counting-sort
// passes over the directed pairs (radix sort on the two 32-bit vertex keys),
// deduplicating adjacent equal pairs during the final write. The output is
// the same as the historical adjacency-list builder — undirected, no self
// loops, deterministic sorted adjacency — but construction is O(E + n)
// with O(E) memory in two slabs instead of n separately grown slices, and
// the result is independent of insertion order, which is what lets the
// parallel edge generators in rgg and topo merge per-shard buffers in any
// grouping and still produce byte-identical CSRs.
package graph

import (
	"fmt"
	"sort"
)

// Pack encodes the undirected edge {u, v} as a canonical (min, max) packed
// pair for Builder.AddPacked. Callers generating edges in parallel shards
// pack with this and hand the merged slice to the builder.
func Pack(u, v int32) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Unpack decodes a packed edge into its (min, max) endpoints.
func Unpack(e uint64) (u, v int32) {
	return int32(e >> 32), int32(uint32(e))
}

// Builder accumulates an undirected edge set over n vertices. Self loops
// are dropped at insertion; parallel edges are dropped once, at Build time.
// The zero Builder is not usable; use NewBuilder.
type Builder struct {
	n     int
	edges []uint64 // canonical packed pairs, in insertion order
	// mayDup records whether any insertion path that admits duplicates was
	// used. When false, Build skips the dedup comparison and trusts the
	// caller's uniqueness guarantee.
	mayDup bool
}

// NewBuilder creates a builder over n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n}
}

// N returns the number of vertices.
func (b *Builder) N() int { return b.n }

// Pending returns the number of edge insertions buffered so far, counting
// duplicates. The deduplicated count is CSR.EdgeCount, computed by Build.
func (b *Builder) Pending() int { return len(b.edges) }

func (b *Builder) checkRange(u, v int32) {
	if u < 0 || v < 0 || int(u) >= b.n || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d, %d) out of range [0, %d)", u, v, b.n))
	}
}

// AddEdge records the undirected edge {u, v}. Self loops are ignored;
// duplicates are tolerated and removed during Build.
func (b *Builder) AddEdge(u, v int32) {
	if u == v {
		return
	}
	b.checkRange(u, v)
	b.edges = append(b.edges, Pack(u, v))
	b.mayDup = true
}

// AddEdgeUnique is the fast path for callers that guarantee each undirected
// edge is inserted at most once (e.g. generators that only emit pairs with
// u < v): Build then skips the dedup pass. Self loops are still ignored.
// Violating the uniqueness guarantee corrupts EdgeCount and duplicates
// adjacency entries.
func (b *Builder) AddEdgeUnique(u, v int32) {
	if u == v {
		return
	}
	b.checkRange(u, v)
	b.edges = append(b.edges, Pack(u, v))
}

// AddPacked bulk-appends canonically packed edges (see Pack). unique makes
// the same promise as AddEdgeUnique for the entire builder: no undirected
// edge appears twice across all insertions. Entries must be self-loop-free
// and in range; this is checked.
func (b *Builder) AddPacked(edges []uint64, unique bool) {
	checkPacked(b.n, edges)
	b.edges = append(b.edges, edges...)
	if !unique {
		b.mayDup = true
	}
}

// Grow ensures capacity for at least m further edge insertions without
// reallocation — the pre-sizing hook for callers that know their edge count
// (or a good estimate) up front.
func (b *Builder) Grow(m int) {
	if m <= 0 || cap(b.edges)-len(b.edges) >= m {
		return
	}
	grown := make([]uint64, len(b.edges), len(b.edges)+m)
	copy(grown, b.edges)
	b.edges = grown
}

// checkPacked validates a packed edge slab: in range, no self loops.
func checkPacked(n int, edges []uint64) {
	for _, e := range edges {
		u, v := Unpack(e)
		if u == v {
			panic(fmt.Sprintf("graph: packed self loop at vertex %d", u))
		}
		if u < 0 || v < 0 || int(u) >= n || int(v) >= n {
			panic(fmt.Sprintf("graph: edge (%d, %d) out of range [0, %d)", u, v, n))
		}
	}
}

// FromPacked builds the CSR directly from a slab of canonically packed
// edges (see Pack), skipping the copy into a Builder — the zero-overhead
// entry point for bulk generators that already hold their whole edge set in
// one slab. unique makes the AddEdgeUnique promise: no undirected edge
// appears twice. Entries must be self-loop-free and in range (checked).
// The slab is only read, never retained or modified.
func FromPacked(n int, edges []uint64, unique bool) *CSR {
	checkPacked(n, edges)
	return makeCSR(n, edges, !unique)
}

// Build freezes the builder into CSR form: two stable counting-sort passes
// over the 2·|edges| directed pairs (low key then high key), then a single
// dedup-and-write scan. The builder remains usable; Build may be called
// again after further insertions.
func (b *Builder) Build() *CSR {
	return makeCSR(b.n, b.edges, b.mayDup)
}

// makeCSR is the shared CSR construction core of Build and FromPacked.
func makeCSR(n int, edges []uint64, mayDup bool) *CSR {
	c := &CSR{N: n, Start: make([]int32, n+1)}
	if len(edges) == 0 {
		return c
	}

	// Directed pairs, packed (from << 32 | to).
	m2 := 2 * len(edges)
	a := make([]uint64, m2)
	for i, e := range edges {
		a[2*i] = e
		a[2*i+1] = e<<32 | e>>32
	}

	// Pass 1: stable counting sort by the low key (the "to" vertex).
	buf := make([]uint64, m2)
	count := make([]int32, n+1)
	for _, x := range a {
		count[uint32(x)+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	for _, x := range a {
		k := uint32(x)
		buf[count[k]] = x
		count[k]++
	}

	// Pass 2: stable counting sort by the high key (the "from" vertex).
	// Stability preserves the pass-1 order, so each vertex's adjacency comes
	// out sorted. Reuses count by recomputing offsets.
	for i := range count {
		count[i] = 0
	}
	for _, x := range buf {
		count[(x>>32)+1]++
	}
	for i := 0; i < n; i++ {
		count[i+1] += count[i]
	}
	for _, x := range buf {
		k := x >> 32
		a[count[k]] = x
		count[k]++
	}

	// Final write: fill Adj from the fully sorted pairs, skipping adjacent
	// duplicates when the builder may hold any. Degrees are accumulated in
	// Start[u+1] and prefix-summed afterwards. EdgeCount is derived from the
	// deduplicated total — never from insertion-time accounting.
	if mayDup {
		adj := a[:0] // dedup in place; write cursor trails the read cursor
		prev := ^uint64(0)
		for _, x := range a {
			if x == prev {
				continue
			}
			prev = x
			adj = append(adj, x)
		}
		a = adj
	}
	c.Adj = make([]int32, len(a))
	for i, x := range a {
		c.Adj[i] = int32(uint32(x))
		c.Start[(x>>32)+1]++
	}
	for i := 0; i < n; i++ {
		c.Start[i+1] += c.Start[i]
	}
	c.EdgeCount = len(a) / 2
	return c
}

// CSR is an immutable undirected graph in compressed sparse row form.
type CSR struct {
	N         int
	Start     []int32 // len N+1
	Adj       []int32 // len 2·EdgeCount
	EdgeCount int
}

// Neighbors returns the sorted adjacency of u.
func (c *CSR) Neighbors(u int32) []int32 {
	return c.Adj[c.Start[u]:c.Start[u+1]]
}

// Degree returns the degree of u.
func (c *CSR) Degree(u int32) int {
	return int(c.Start[u+1] - c.Start[u])
}

// MaxDegree returns the maximum degree over all vertices (0 for empty).
func (c *CSR) MaxDegree() int {
	m := 0
	for u := 0; u < c.N; u++ {
		if d := c.Degree(int32(u)); d > m {
			m = d
		}
	}
	return m
}

// MeanDegree returns the average degree (0 for the empty graph).
func (c *CSR) MeanDegree() float64 {
	if c.N == 0 {
		return 0
	}
	return 2 * float64(c.EdgeCount) / float64(c.N)
}

// DegreeHistogram returns counts[d] = number of vertices with degree d.
func (c *CSR) DegreeHistogram() []int {
	h := make([]int, c.MaxDegree()+1)
	for u := 0; u < c.N; u++ {
		h[c.Degree(int32(u))]++
	}
	return h
}

// HasEdge reports whether {u, v} is an edge, via binary search on the sorted
// adjacency of the lower-degree endpoint.
func (c *CSR) HasEdge(u, v int32) bool {
	if c.Degree(u) > c.Degree(v) {
		u, v = v, u
	}
	a := c.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}
