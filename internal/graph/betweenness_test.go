package graph

import (
	"math"
	"testing"
)

func buildCSR(n int, edges [][2]int32) *CSR {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestBetweennessPath(t *testing.T) {
	// Path 0-1-2-3: interior vertices carry the pairs that pass them.
	g := buildCSR(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	bc := Betweenness(g)
	want := []float64{0, 2, 2, 0} // 1 carries (0,2),(0,3); 2 carries (0,3),(1,3)
	for i, w := range want {
		if math.Abs(bc[i]-w) > 1e-12 {
			t.Errorf("bc[%d] = %v, want %v (all: %v)", i, bc[i], w, bc)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star with center 0 and 5 leaves: the center carries every leaf pair.
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	bc := Betweenness(buildCSR(6, edges))
	if want := 10.0; math.Abs(bc[0]-want) > 1e-12 { // C(5,2)
		t.Errorf("center bc = %v, want %v", bc[0], want)
	}
	for i := 1; i < 6; i++ {
		if bc[i] != 0 {
			t.Errorf("leaf %d bc = %v, want 0", i, bc[i])
		}
	}
}

func TestBetweennessCycleUniform(t *testing.T) {
	// On a cycle every vertex is equivalent by symmetry.
	n := 7
	var edges [][2]int32
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int32{int32(i), int32((i + 1) % n)})
	}
	bc := Betweenness(buildCSR(n, edges))
	for i := 1; i < n; i++ {
		if math.Abs(bc[i]-bc[0]) > 1e-9 {
			t.Fatalf("cycle betweenness not uniform: %v", bc)
		}
	}
	if bc[0] <= 0 {
		t.Fatalf("cycle betweenness should be positive: %v", bc)
	}
}

func TestBetweennessDisconnected(t *testing.T) {
	// Two components: pairs in different components contribute nothing, and
	// isolated vertices score zero.
	g := buildCSR(5, [][2]int32{{0, 1}, {1, 2}})
	bc := Betweenness(g)
	if bc[1] != 1 { // carries only (0,2)
		t.Errorf("bc[1] = %v, want 1", bc[1])
	}
	if bc[3] != 0 || bc[4] != 0 {
		t.Errorf("isolated vertices scored: %v", bc)
	}
}

func TestBetweennessMatchesBruteForceCounts(t *testing.T) {
	// Diamond with a tail: 0-1, 0-2, 1-3, 2-3, 3-4. Two equal shortest
	// paths 0→3 split the credit between 1 and 2.
	g := buildCSR(5, [][2]int32{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}})
	bc := Betweenness(g)
	// Pair (0,3): two paths, 1 and 2 each get 1/2. Pair (0,4): two paths
	// through 3, 1 and 2 each get 1/2 and 3 gets 1. Pairs (1,4),(2,4): 3
	// gets 1 each. Pair (1,2): via 0 or 3, each 1/2.
	want := []float64{0.5, 1, 1, 3.5, 0}
	for i, w := range want {
		if math.Abs(bc[i]-w) > 1e-12 {
			t.Errorf("bc[%d] = %v, want %v (all: %v)", i, bc[i], w, bc)
		}
	}
}
