package graph

// Betweenness computes the unweighted betweenness centrality of every
// vertex with Brandes' algorithm (one BFS plus one dependency-accumulation
// pass per source, O(V·E) total). Scores are unnormalized shortest-path
// counts with each unordered pair counted once; vertices in different
// components never contribute to each other. The computation is fully
// serial and deterministic: identical inputs give bit-identical scores at
// any GOMAXPROCS — which is what lets targeted-attack victim orderings
// derived from these scores go through the scenario cache.
func Betweenness(g *CSR) []float64 {
	bc := make([]float64, g.N)
	sigma := make([]float64, g.N) // shortest-path counts from the source
	delta := make([]float64, g.N) // accumulated dependencies
	dist := make([]int32, g.N)
	order := make([]int32, 0, g.N) // vertices in BFS discovery order

	for s := 0; s < g.N; s++ {
		src := int32(s)
		for i := range dist {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
		}
		order = order[:0]
		dist[src] = 0
		sigma[src] = 1
		order = append(order, src)
		for head := 0; head < len(order); head++ {
			u := order[head]
			du := dist[u]
			for _, v := range g.Neighbors(u) {
				if dist[v] < 0 {
					dist[v] = du + 1
					order = append(order, v)
				}
				if dist[v] == du+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		// Dependency accumulation in reverse BFS order.
		for i := len(order) - 1; i > 0; i-- {
			w := order[i]
			coeff := (1 + delta[w]) / sigma[w]
			dw := dist[w]
			for _, v := range g.Neighbors(w) {
				if dist[v] == dw-1 {
					delta[v] += sigma[v] * coeff
				}
			}
			bc[w] += delta[w]
		}
	}
	// Each unordered pair was counted from both endpoints.
	for i := range bc {
		bc[i] /= 2
	}
	return bc
}
