package graph

import (
	"fmt"
	"sort"
)

// Delta is a mutable edge overlay over an immutable base CSR: localized
// structure repair records its edge changes here, and CSR consumers read
// through it without the base ever being rewritten. A vertex is either
// untouched — its adjacency comes straight from the base slab — or touched,
// in which case the overlay holds its full replacement adjacency (sorted,
// like the base). Repair around k moved nodes therefore costs O(k·degree)
// overlay entries while the other n−k vertices stay zero-cost views into
// the base.
//
// Mutators keep both endpoints' adjacencies in sync, so the overlay is an
// undirected graph at every point. Materialize freezes the current view
// into a standalone CSR — the form the equivalence gate compares
// edge-for-edge against a from-scratch rebuild.
type Delta struct {
	base    *CSR
	touched map[int32][]int32 // full replacement adjacency per touched vertex
	edges   int               // current undirected edge count
}

// NewDelta returns an empty overlay over base.
func NewDelta(base *CSR) *Delta {
	return &Delta{base: base, touched: make(map[int32][]int32), edges: base.EdgeCount}
}

// Base returns the underlying immutable CSR.
func (d *Delta) Base() *CSR { return d.base }

// NumVertices returns the vertex count (identical to the base).
func (d *Delta) NumVertices() int { return d.base.N }

// EdgeCount returns the current undirected edge count through the overlay.
func (d *Delta) EdgeCount() int { return d.edges }

// Touched returns the number of vertices with overlay adjacencies.
func (d *Delta) Touched() int { return len(d.touched) }

// Neighbors returns the current sorted adjacency of u. The slice aliases
// internal storage: valid until the next mutation of u.
func (d *Delta) Neighbors(u int32) []int32 {
	if adj, ok := d.touched[u]; ok {
		return adj
	}
	return d.base.Neighbors(u)
}

// Degree returns the current degree of u.
func (d *Delta) Degree(u int32) int { return len(d.Neighbors(u)) }

// HasEdge reports whether {u, v} is currently an edge.
func (d *Delta) HasEdge(u, v int32) bool {
	a := d.Neighbors(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// adj returns u's overlay adjacency, copying it out of the base on first
// touch.
func (d *Delta) adj(u int32) []int32 {
	if a, ok := d.touched[u]; ok {
		return a
	}
	base := d.base.Neighbors(u)
	a := make([]int32, len(base), len(base)+2)
	copy(a, base)
	d.touched[u] = a
	return a
}

// insertSorted adds v into u's overlay adjacency; reports whether it was
// absent.
func (d *Delta) insertSorted(u, v int32) bool {
	a := d.adj(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	if i < len(a) && a[i] == v {
		return false
	}
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	d.touched[u] = a
	return true
}

// deleteSorted removes v from u's overlay adjacency; reports whether it was
// present.
func (d *Delta) deleteSorted(u, v int32) bool {
	a := d.adj(u)
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	if i >= len(a) || a[i] != v {
		return false
	}
	copy(a[i:], a[i+1:])
	d.touched[u] = a[:len(a)-1]
	return true
}

// AddEdge inserts the undirected edge {u, v} (self loops ignored); reports
// whether the edge was new.
func (d *Delta) AddEdge(u, v int32) bool {
	if u == v {
		return false
	}
	if !d.insertSorted(u, v) {
		return false
	}
	d.insertSorted(v, u)
	d.edges++
	return true
}

// RemoveEdge deletes the undirected edge {u, v}; reports whether it existed.
func (d *Delta) RemoveEdge(u, v int32) bool {
	if u == v {
		return false
	}
	if !d.deleteSorted(u, v) {
		return false
	}
	d.deleteSorted(v, u)
	d.edges--
	return true
}

// DropVertex removes every edge incident to u — the overlay form of a node
// death. Returns the number of edges removed.
func (d *Delta) DropVertex(u int32) int {
	nbrs := d.Neighbors(u)
	if len(nbrs) == 0 {
		return 0
	}
	// Copy: RemoveEdge mutates the adjacency being iterated.
	tmp := append([]int32(nil), nbrs...)
	for _, v := range tmp {
		d.RemoveEdge(u, v)
	}
	return len(tmp)
}

// Materialize freezes the current overlay view into a standalone CSR with
// the same representation a from-scratch Builder.Build would produce —
// sorted adjacencies, exact EdgeCount — which is what the incremental-repair
// equivalence gates compare against.
func (d *Delta) Materialize() *CSR {
	n := d.base.N
	c := &CSR{N: n, Start: make([]int32, n+1), EdgeCount: d.edges}
	for u := int32(0); u < int32(n); u++ {
		c.Start[u+1] = c.Start[u] + int32(len(d.Neighbors(u)))
	}
	c.Adj = make([]int32, c.Start[n])
	for u := int32(0); u < int32(n); u++ {
		copy(c.Adj[c.Start[u]:c.Start[u+1]], d.Neighbors(u))
	}
	return c
}

// Equal reports whether two CSR graphs are identical edge-for-edge: same
// vertex count, same sorted adjacency everywhere. The incremental-repair
// equivalence gate in its comparison form.
func Equal(a, b *CSR) bool {
	if a.N != b.N || a.EdgeCount != b.EdgeCount {
		return false
	}
	for u := int32(0); u < int32(a.N); u++ {
		x, y := a.Neighbors(u), b.Neighbors(u)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
	}
	return true
}

// FirstDiff returns a human-readable description of the first adjacency
// difference between two CSRs, or "" when they are equal — the diagnostic
// companion of Equal for equivalence-gate failures.
func FirstDiff(a, b *CSR) string {
	if a.N != b.N {
		return fmt.Sprintf("vertex count %d != %d", a.N, b.N)
	}
	for u := int32(0); u < int32(a.N); u++ {
		x, y := a.Neighbors(u), b.Neighbors(u)
		if len(x) != len(y) {
			return fmt.Sprintf("vertex %d: degree %d != %d (%v vs %v)", u, len(x), len(y), x, y)
		}
		for i := range x {
			if x[i] != y[i] {
				return fmt.Sprintf("vertex %d: adjacency %v != %v", u, x, y)
			}
		}
	}
	if a.EdgeCount != b.EdgeCount {
		return fmt.Sprintf("edge count %d != %d", a.EdgeCount, b.EdgeCount)
	}
	return ""
}
