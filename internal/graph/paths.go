package graph

import (
	"math"

	"repro/internal/geom"
)

// BFS computes hop distances from src; unreachable vertices get −1.
// The dist slice is reused if non-nil and long enough.
func BFS(g *CSR, src int32, dist []int32) []int32 {
	return BFSInto(g, src, dist, nil)
}

// BFSInto is BFS with a reusable queue buffer held in scratch (which may be
// nil). Batch engines that sweep hop distances from many sources over the
// same graph (power.Measurer) reuse both dist and the queue across sources
// instead of re-growing an O(N) queue per call.
func BFSInto(g *CSR, src int32, dist []int32, scratch *PathScratch) []int32 {
	if cap(dist) < g.N {
		dist = make([]int32, g.N)
	}
	dist = dist[:g.N]
	for i := range dist {
		dist[i] = -1
	}
	if scratch == nil {
		scratch = &PathScratch{}
	}
	queue := scratch.queue[:0]
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	scratch.queue = queue
	return dist
}

// BFSPath returns a shortest hop path from src to dst (inclusive), or nil if
// unreachable.
func BFSPath(g *CSR, src, dst int32) []int32 {
	return BFSPathInto(g, src, dst, nil, nil)
}

// BFSPathInto is BFSPath with caller-owned buffers: scratch (parent array,
// resized to g.N) and dst-slice path (overwritten, returned extended from
// empty). Either may be nil. Hot loops that expand many short paths over the
// same graph — the Figure 8 lattice-hop expansion in routing — reuse both
// across calls instead of allocating O(N) per hop.
func BFSPathInto(g *CSR, src, dst int32, scratch *PathScratch, path []int32) []int32 {
	path = path[:0]
	if src == dst {
		return append(path, src)
	}
	if scratch == nil {
		scratch = &PathScratch{}
	}
	parent := scratch.parent
	if cap(parent) < g.N {
		parent = make([]int32, g.N)
	}
	parent = parent[:g.N]
	scratch.parent = parent
	for i := range parent {
		parent[i] = -1
	}
	queue := scratch.queue[:0]
	parent[src] = src
	queue = append(queue, src)
	found := false
	for head := 0; head < len(queue) && !found; head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if parent[v] < 0 {
				parent[v] = u
				if v == dst {
					found = true
					break
				}
				queue = append(queue, v)
			}
		}
	}
	scratch.queue = queue
	if !found {
		return nil
	}
	// Reconstruct dst → src into path, then reverse in place.
	for v := dst; ; v = parent[v] {
		path = append(path, v)
		if v == src {
			break
		}
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// PathScratch holds reusable buffers for BFSPathInto.
type PathScratch struct {
	parent []int32
	queue  []int32
}

// EuclideanWeight returns an edge-weight function measuring Euclidean length
// between the endpoints' positions.
func EuclideanWeight(pos []geom.Point) func(u, v int32) float64 {
	return func(u, v int32) float64 { return pos[u].Dist(pos[v]) }
}

// PowerWeight returns an edge-weight function d(u,v)^beta — the standard
// radio energy model used by Li–Wan–Wang for power stretch.
func PowerWeight(pos []geom.Point, beta float64) func(u, v int32) float64 {
	return func(u, v int32) float64 { return math.Pow(pos[u].Dist(pos[v]), beta) }
}

// Dijkstra computes weighted distances from src under the given edge weight
// function; unreachable vertices get +Inf.
func Dijkstra(g *CSR, src int32, weight func(u, v int32) float64) []float64 {
	return DijkstraInto(g, src, weight, nil, nil)
}

// DijkstraInto is Dijkstra with caller-owned buffers: dist (resized to g.N)
// and scratch (the priority queue). Either may be nil. Monte-Carlo loops
// that run many single-source computations over the same graph reuse both.
func DijkstraInto(g *CSR, src int32, weight func(u, v int32) float64, dist []float64, scratch *DijkstraScratch) []float64 {
	if cap(dist) < g.N {
		dist = make([]float64, g.N)
	}
	dist = dist[:g.N]
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	if scratch == nil {
		scratch = &DijkstraScratch{}
	}
	pq := &scratch.pq
	pq.items = append(pq.items[:0], distItem{src, 0})
	for len(pq.items) > 0 {
		it := pq.pop()
		if it.d > dist[it.v] {
			continue
		}
		for _, w := range g.Neighbors(it.v) {
			nd := it.d + weight(it.v, w)
			if nd < dist[w] {
				dist[w] = nd
				pq.push(distItem{w, nd})
			}
		}
	}
	return dist
}

// DijkstraEdgesInto is DijkstraInto with precomputed per-edge weights
// instead of a weight callback: w[i] is the weight of the directed edge
// stored at Adj[i]. Batch measurement engines that sweep the same graph
// from many sources (power.Measurer) fill w once and save a callback call
// plus the distance/power evaluation per edge relaxation on every sweep.
func DijkstraEdgesInto(g *CSR, src int32, w []float64, dist []float64, scratch *DijkstraScratch) []float64 {
	if cap(dist) < g.N {
		dist = make([]float64, g.N)
	}
	dist = dist[:g.N]
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	if scratch == nil {
		scratch = &DijkstraScratch{}
	}
	pq := &scratch.pq
	pq.items = append(pq.items[:0], distItem{src, 0})
	for len(pq.items) > 0 {
		it := pq.pop()
		if it.d > dist[it.v] {
			continue
		}
		for i := g.Start[it.v]; i < g.Start[it.v+1]; i++ {
			nd := it.d + w[i]
			if v := g.Adj[i]; nd < dist[v] {
				dist[v] = nd
				pq.push(distItem{v, nd})
			}
		}
	}
	return dist
}

// DijkstraTo computes the weighted distance from src to dst, stopping early
// once dst is settled. Returns +Inf if unreachable. Callers measuring many
// pairs from the same source should batch through DijkstraInto instead (see
// power.MeasurePairs); DijkstraTo is the simple reference form.
func DijkstraTo(g *CSR, src, dst int32, weight func(u, v int32) float64) float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{src, 0}}}
	for len(pq.items) > 0 {
		it := pq.pop()
		if it.v == dst {
			return it.d
		}
		if it.d > dist[it.v] {
			continue
		}
		for _, w := range g.Neighbors(it.v) {
			nd := it.d + weight(it.v, w)
			if nd < dist[w] {
				dist[w] = nd
				pq.push(distItem{w, nd})
			}
		}
	}
	return math.Inf(1)
}

// DijkstraScratch holds the reusable priority queue for DijkstraInto.
type DijkstraScratch struct {
	pq distHeap
}

type distItem struct {
	v int32
	d float64
}

// distHeap is a binary min-heap on d with concrete push/pop: container/heap
// would box every pushed item through interface{}, one allocation per edge
// relaxation — the dominant allocation source of the Monte-Carlo
// shortest-path loops before it was replaced.
type distHeap struct{ items []distItem }

func (h *distHeap) push(it distItem) {
	h.items = append(h.items, it)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.items[p].d <= h.items[i].d {
			break
		}
		h.items[p], h.items[i] = h.items[i], h.items[p]
		i = p
	}
}

func (h *distHeap) pop() distItem {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.items[r].d < h.items[c].d {
			c = r
		}
		if h.items[i].d <= h.items[c].d {
			break
		}
		h.items[i], h.items[c] = h.items[c], h.items[i]
		i = c
	}
	return top
}
