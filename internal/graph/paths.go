package graph

import (
	"container/heap"
	"math"

	"repro/internal/geom"
)

// BFS computes hop distances from src; unreachable vertices get −1.
// The dist slice is reused if non-nil and long enough.
func BFS(g *CSR, src int32, dist []int32) []int32 {
	if cap(dist) < g.N {
		dist = make([]int32, g.N)
	}
	dist = dist[:g.N]
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, 64)
	dist[src] = 0
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range g.Neighbors(u) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// BFSPath returns a shortest hop path from src to dst (inclusive), or nil if
// unreachable.
func BFSPath(g *CSR, src, dst int32) []int32 {
	if src == dst {
		return []int32{src}
	}
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = -1
	}
	parent[src] = src
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.Neighbors(u) {
			if parent[v] < 0 {
				parent[v] = u
				if v == dst {
					return reconstruct(parent, src, dst)
				}
				queue = append(queue, v)
			}
		}
	}
	return nil
}

func reconstruct(parent []int32, src, dst int32) []int32 {
	var rev []int32
	for v := dst; ; v = parent[v] {
		rev = append(rev, v)
		if v == src {
			break
		}
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// EuclideanWeight returns an edge-weight function measuring Euclidean length
// between the endpoints' positions.
func EuclideanWeight(pos []geom.Point) func(u, v int32) float64 {
	return func(u, v int32) float64 { return pos[u].Dist(pos[v]) }
}

// PowerWeight returns an edge-weight function d(u,v)^beta — the standard
// radio energy model used by Li–Wan–Wang for power stretch.
func PowerWeight(pos []geom.Point, beta float64) func(u, v int32) float64 {
	return func(u, v int32) float64 { return math.Pow(pos[u].Dist(pos[v]), beta) }
}

// Dijkstra computes weighted distances from src under the given edge weight
// function; unreachable vertices get +Inf.
func Dijkstra(g *CSR, src int32, weight func(u, v int32) float64) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{src, 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, w := range g.Neighbors(it.v) {
			nd := it.d + weight(it.v, w)
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, distItem{w, nd})
			}
		}
	}
	return dist
}

// DijkstraTo computes the weighted distance from src to dst, stopping early
// once dst is settled. Returns +Inf if unreachable.
func DijkstraTo(g *CSR, src, dst int32, weight func(u, v int32) float64) float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{items: []distItem{{src, 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(distItem)
		if it.v == dst {
			return it.d
		}
		if it.d > dist[it.v] {
			continue
		}
		for _, w := range g.Neighbors(it.v) {
			nd := it.d + weight(it.v, w)
			if nd < dist[w] {
				dist[w] = nd
				heap.Push(pq, distItem{w, nd})
			}
		}
	}
	return math.Inf(1)
}

type distItem struct {
	v int32
	d float64
}

type distHeap struct{ items []distItem }

func (h *distHeap) Len() int           { return len(h.items) }
func (h *distHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *distHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *distHeap) Push(x interface{}) { h.items = append(h.items, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}
