// Package spatial provides spatial indexes over 2D point sets: a uniform
// grid (cell list) and a kd-tree, both supporting range queries (all points
// within radius r) and k-nearest-neighbor queries.
//
// The unit-disk-graph builder wants radius queries at a fixed radius, for
// which the grid with cell size = radius is optimal (O(1) expected work per
// reported neighbor under a Poisson process). The k-NN graph builder wants
// kNN queries, for which both indexes are provided and benchmarked against
// each other; results are property-tested against brute force.
package spatial

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// Grid is a uniform-cell spatial index over a fixed point set.
type Grid struct {
	pts    []geom.Point
	bounds geom.Rect
	cell   float64
	nx, ny int
	cellOf []int32 // cell index per point
	start  []int32 // CSR offsets into order, len nx*ny+1
	order  []int32 // point indices grouped by cell
}

// NewGrid indexes pts with the given cell size. The bounds are computed from
// the data; cell must be positive.
func NewGrid(pts []geom.Point, cell float64) *Grid {
	if cell <= 0 {
		panic("spatial: non-positive cell size")
	}
	g := &Grid{pts: pts, cell: cell}
	if len(pts) == 0 {
		g.bounds = geom.Rect{}
		g.nx, g.ny = 1, 1
		g.start = make([]int32, 2)
		return g
	}
	b := geom.Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < b.Min.X {
			b.Min.X = p.X
		}
		if p.Y < b.Min.Y {
			b.Min.Y = p.Y
		}
		if p.X > b.Max.X {
			b.Max.X = p.X
		}
		if p.Y > b.Max.Y {
			b.Max.Y = p.Y
		}
	}
	g.bounds = b
	g.nx = int(b.Width()/cell) + 1
	g.ny = int(b.Height()/cell) + 1
	// Counting sort points into cells (CSR layout).
	g.cellOf = make([]int32, len(pts))
	counts := make([]int32, g.nx*g.ny+1)
	for i, p := range pts {
		c := int32(g.cellIndex(p))
		g.cellOf[i] = c
		counts[c+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	g.start = counts
	g.order = make([]int32, len(pts))
	fill := make([]int32, g.nx*g.ny)
	for i := range pts {
		c := g.cellOf[i]
		g.order[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Points returns the indexed point slice (not a copy).
func (g *Grid) Points() []geom.Point { return g.pts }

func (g *Grid) cellCoords(p geom.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *Grid) cellIndex(p geom.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

// Within appends to dst the indices of all points within distance r of q
// (including any indexed point equal to q) and returns the extended slice.
func (g *Grid) Within(q geom.Point, r float64, dst []int32) []int32 {
	if len(g.pts) == 0 {
		return dst
	}
	r2 := r * r
	cx0 := int(math.Floor((q.X - r - g.bounds.Min.X) / g.cell))
	cx1 := int(math.Floor((q.X + r - g.bounds.Min.X) / g.cell))
	cy0 := int(math.Floor((q.Y - r - g.bounds.Min.Y) / g.cell))
	cy1 := int(math.Floor((q.Y + r - g.bounds.Min.Y) / g.cell))
	cx0 = clampInt(cx0, 0, g.nx-1)
	cx1 = clampInt(cx1, 0, g.nx-1)
	cy0 = clampInt(cy0, 0, g.ny-1)
	cy1 = clampInt(cy1, 0, g.ny-1)
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			c := rowBase + cx
			for _, i := range g.order[g.start[c]:g.start[c+1]] {
				if g.pts[i].Dist2(q) <= r2 {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// KNearest returns the indices of the k points nearest to q, excluding any
// point whose index equals exclude (pass −1 to exclude nothing). Results are
// sorted by increasing distance. Fewer than k indices are returned if the
// index holds fewer eligible points.
func (g *Grid) KNearest(q geom.Point, k int, exclude int) []int32 {
	if k <= 0 || len(g.pts) == 0 {
		return nil
	}
	// Expanding ring search: examine cells in growing L∞ rings around q's
	// cell; once k candidates are found, expand until the ring's minimum
	// possible distance exceeds the current k-th distance.
	h := newMaxHeap(k)
	cx, cy := g.cellCoords(q)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if h.full() {
			// Minimum distance from q to any cell in this ring.
			minDist := (float64(ring - 1)) * g.cell
			if ring > 0 && minDist > 0 && minDist*minDist > h.top() {
				break
			}
		}
		g.visitRing(cx, cy, ring, func(c int) {
			for _, i := range g.order[g.start[c]:g.start[c+1]] {
				if int(i) == exclude {
					continue
				}
				h.push(g.pts[i].Dist2(q), i)
			}
		})
	}
	return h.sortedIndices()
}

// visitRing invokes f on each valid cell index at L∞ ring distance `ring`
// from (cx, cy).
func (g *Grid) visitRing(cx, cy, ring int, f func(cell int)) {
	if ring == 0 {
		if cx >= 0 && cx < g.nx && cy >= 0 && cy < g.ny {
			f(cy*g.nx + cx)
		}
		return
	}
	x0, x1 := cx-ring, cx+ring
	y0, y1 := cy-ring, cy+ring
	for x := x0; x <= x1; x++ {
		if x < 0 || x >= g.nx {
			continue
		}
		if y0 >= 0 && y0 < g.ny {
			f(y0*g.nx + x)
		}
		if y1 >= 0 && y1 < g.ny {
			f(y1*g.nx + x)
		}
	}
	for y := y0 + 1; y <= y1-1; y++ {
		if y < 0 || y >= g.ny {
			continue
		}
		if x0 >= 0 && x0 < g.nx {
			f(y*g.nx + x0)
		}
		if x1 >= 0 && x1 < g.nx {
			f(y*g.nx + x1)
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// maxHeap is a bounded max-heap on (dist2, index) keeping the k smallest.
type maxHeap struct {
	k   int
	d   []float64
	idx []int32
}

func newMaxHeap(k int) *maxHeap {
	return &maxHeap{k: k, d: make([]float64, 0, k), idx: make([]int32, 0, k)}
}

func (h *maxHeap) full() bool   { return len(h.d) >= h.k }
func (h *maxHeap) top() float64 { return h.d[0] }

func (h *maxHeap) push(d float64, i int32) {
	if len(h.d) < h.k {
		h.d = append(h.d, d)
		h.idx = append(h.idx, i)
		h.up(len(h.d) - 1)
		return
	}
	if d >= h.d[0] {
		return
	}
	h.d[0], h.idx[0] = d, i
	h.down(0)
}

func (h *maxHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if h.d[p] >= h.d[i] {
			break
		}
		h.d[p], h.d[i] = h.d[i], h.d[p]
		h.idx[p], h.idx[i] = h.idx[i], h.idx[p]
		i = p
	}
}

func (h *maxHeap) down(i int) {
	n := len(h.d)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.d[l] > h.d[big] {
			big = l
		}
		if r < n && h.d[r] > h.d[big] {
			big = r
		}
		if big == i {
			return
		}
		h.d[big], h.d[i] = h.d[i], h.d[big]
		h.idx[big], h.idx[i] = h.idx[i], h.idx[big]
		i = big
	}
}

// sortedIndices drains the heap, returning indices by increasing distance.
func (h *maxHeap) sortedIndices() []int32 {
	type pair struct {
		d float64
		i int32
	}
	ps := make([]pair, len(h.d))
	for j := range h.d {
		ps[j] = pair{h.d[j], h.idx[j]}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].d != ps[b].d {
			return ps[a].d < ps[b].d
		}
		return ps[a].i < ps[b].i
	})
	out := make([]int32, len(ps))
	for j, p := range ps {
		out[j] = p.i
	}
	return out
}
