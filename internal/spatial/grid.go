// Package spatial provides spatial indexes over 2D point sets: a uniform
// grid (cell list) and a kd-tree, both supporting range queries (all points
// within radius r) and k-nearest-neighbor queries.
//
// The unit-disk-graph builder wants radius queries at a fixed radius, for
// which the grid with cell size = radius is optimal (O(1) expected work per
// reported neighbor under a Poisson process). The k-NN graph builder wants
// kNN queries, for which both indexes are provided and benchmarked against
// each other; results are property-tested against brute force.
package spatial

import (
	"math"

	"repro/internal/geom"
)

// Grid is a uniform-cell spatial index over a fixed point set.
type Grid struct {
	pts    []geom.Point
	bounds geom.Rect
	cell   float64
	nx, ny int
	cellOf []int32 // cell index per point
	start  []int32 // CSR offsets into order, len nx*ny+1
	order  []int32 // point indices grouped by cell
}

// NewGrid indexes pts with the given cell size. The bounds are computed from
// the data; cell must be positive.
func NewGrid(pts []geom.Point, cell float64) *Grid {
	if cell <= 0 {
		panic("spatial: non-positive cell size")
	}
	g := &Grid{pts: pts, cell: cell}
	if len(pts) == 0 {
		g.bounds = geom.Rect{}
		g.nx, g.ny = 1, 1
		g.start = make([]int32, 2)
		return g
	}
	b := geom.Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < b.Min.X {
			b.Min.X = p.X
		}
		if p.Y < b.Min.Y {
			b.Min.Y = p.Y
		}
		if p.X > b.Max.X {
			b.Max.X = p.X
		}
		if p.Y > b.Max.Y {
			b.Max.Y = p.Y
		}
	}
	g.bounds = b
	g.nx = int(b.Width()/cell) + 1
	g.ny = int(b.Height()/cell) + 1
	// Counting sort points into cells (CSR layout).
	g.cellOf = make([]int32, len(pts))
	counts := make([]int32, g.nx*g.ny+1)
	for i, p := range pts {
		c := int32(g.cellIndex(p))
		g.cellOf[i] = c
		counts[c+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	g.start = counts
	g.order = make([]int32, len(pts))
	fill := make([]int32, g.nx*g.ny)
	for i := range pts {
		c := g.cellOf[i]
		g.order[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.pts) }

// Points returns the indexed point slice (not a copy).
func (g *Grid) Points() []geom.Point { return g.pts }

// Dims returns the cell-grid dimensions (nx columns × ny rows).
func (g *Grid) Dims() (nx, ny int) { return g.nx, g.ny }

// CellPoints returns the indices of the points in cell (cx, cy) — a
// subslice of the index's internal order slab, valid until the grid is
// garbage. Out-of-range cells return nil. This is the raw bucket access
// the pair-free fixed-radius enumeration in rgg is built on: iterating
// cells directly visits each candidate pair once, where per-point Within
// queries visit every pair twice.
func (g *Grid) CellPoints(cx, cy int) []int32 {
	if cx < 0 || cy < 0 || cx >= g.nx || cy >= g.ny {
		return nil
	}
	c := cy*g.nx + cx
	return g.order[g.start[c]:g.start[c+1]]
}

func (g *Grid) cellCoords(p geom.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	return cx, cy
}

func (g *Grid) cellIndex(p geom.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

// Within appends to dst the indices of all points within distance r of q
// (including any indexed point equal to q) and returns the extended slice.
func (g *Grid) Within(q geom.Point, r float64, dst []int32) []int32 {
	if len(g.pts) == 0 {
		return dst
	}
	r2 := r * r
	cx0 := int(math.Floor((q.X - r - g.bounds.Min.X) / g.cell))
	cx1 := int(math.Floor((q.X + r - g.bounds.Min.X) / g.cell))
	cy0 := int(math.Floor((q.Y - r - g.bounds.Min.Y) / g.cell))
	cy1 := int(math.Floor((q.Y + r - g.bounds.Min.Y) / g.cell))
	cx0 = clampInt(cx0, 0, g.nx-1)
	cx1 = clampInt(cx1, 0, g.nx-1)
	cy0 = clampInt(cy0, 0, g.ny-1)
	cy1 = clampInt(cy1, 0, g.ny-1)
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			c := rowBase + cx
			for _, i := range g.order[g.start[c]:g.start[c+1]] {
				if g.pts[i].Dist2(q) <= r2 {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// KNearest returns the indices of the k points nearest to q, excluding any
// point whose index equals exclude (pass −1 to exclude nothing). Results are
// sorted by increasing distance (ties by index). Fewer than k indices are
// returned if the index holds fewer eligible points. Allocates the result;
// hot loops use KNearestInto.
func (g *Grid) KNearest(q geom.Point, k int, exclude int) []int32 {
	if k <= 0 || len(g.pts) == 0 {
		return nil
	}
	var s KNNScratch
	return g.KNearestInto(q, k, exclude, &s, nil)
}

// KNearestInto appends to dst the indices of the k points nearest to q —
// excluding index exclude (−1 for none), sorted by increasing distance with
// ties broken by index — and returns the extended slice. scratch carries the
// candidate heap across calls; after warm-up the query performs no heap
// allocations beyond growth of dst.
func (g *Grid) KNearestInto(q geom.Point, k int, exclude int, scratch *KNNScratch, dst []int32) []int32 {
	if k <= 0 || len(g.pts) == 0 {
		return dst
	}
	if scratch == nil {
		scratch = &KNNScratch{}
	}
	h := &scratch.h
	h.reset(k)
	// Expanding ring search: examine cells in growing L∞ rings around q's
	// cell; once k candidates are found, expand until the ring's minimum
	// possible distance exceeds the current k-th distance.
	cx, cy := g.cellCoords(q)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if h.full() {
			// Minimum distance from q to any cell in this ring.
			minDist := (float64(ring - 1)) * g.cell
			if ring > 0 && minDist > 0 && minDist*minDist > h.top() {
				break
			}
		}
		cells := appendRingCells(scratch.cells[:0], cx, cy, ring, g.nx, g.ny)
		scratch.cells = cells
		for _, c := range cells {
			for _, i := range g.order[g.start[c]:g.start[c+1]] {
				if int(i) == exclude {
					continue
				}
				h.push(g.pts[i].Dist2(q), i)
			}
		}
	}
	return h.appendSorted(dst)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
