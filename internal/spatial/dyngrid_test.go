package spatial

import (
	"slices"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

// liveSubset returns the positions and original indices of the grid's live
// slots, for brute-force comparison.
func liveSubset(g *DynGrid) ([]geom.Point, []int32) {
	var pts []geom.Point
	var idx []int32
	for i := int32(0); i < int32(g.Cap()); i++ {
		if g.Alive(i) {
			pts = append(pts, g.Point(i))
			idx = append(idx, i)
		}
	}
	return pts, idx
}

// checkAgainstBrute compares Within and KNearestInto answers of the kinetic
// grid with brute force over its current live subset at several query points.
func checkAgainstBrute(t *testing.T, g *DynGrid, queries []geom.Point) {
	t.Helper()
	pts, idx := liveSubset(g)
	var scratch KNNScratch
	for qi, q := range queries {
		for _, r := range []float64{0.05, 0.2, 0.6} {
			got := g.Within(q, r, nil)
			slices.Sort(got)
			want := BruteWithin(pts, q, r)
			for i := range want {
				want[i] = idx[want[i]]
			}
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("query %d r=%v: Within=%v want %v", qi, r, got, want)
			}
		}
		for _, k := range []int{1, 3, 8} {
			got := g.KNearestInto(q, k, -1, &scratch, nil)
			want := BruteKNearest(pts, q, k, -1)
			for i := range want {
				want[i] = idx[want[i]]
			}
			if !slices.Equal(got, want) {
				t.Fatalf("query %d k=%d: KNearest=%v want %v", qi, k, got, want)
			}
		}
	}
}

func dgRandomPoints(n int, box geom.Rect, seed rng.Seed, stream uint64) []geom.Point {
	r := rng.Sub(seed, stream)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: box.Min.X + r.Float64()*box.Width(),
			Y: box.Min.Y + r.Float64()*box.Height(),
		}
	}
	return pts
}

func TestDynGridMatchesBruteForceUnderMutation(t *testing.T) {
	box := geom.Box(1, 1)
	pts := dgRandomPoints(300, box, 7, 0)
	g := NewDynGrid(pts, box, 0.1)
	queries := dgRandomPoints(8, box, 7, 1)
	checkAgainstBrute(t, g, queries)

	r := rng.Sub(7, 2)
	for round := 0; round < 40; round++ {
		// A batch of random moves, removals and re-insertions.
		for step := 0; step < 25; step++ {
			i := int32(r.IntN(len(pts)))
			switch {
			case !g.Alive(i):
				g.Insert(i, geom.Point{X: r.Float64(), Y: r.Float64()})
			case r.Float64() < 0.15:
				g.Remove(i)
			default:
				g.Move(i, geom.Point{X: r.Float64(), Y: r.Float64()})
			}
		}
		checkAgainstBrute(t, g, queries)
	}
}

func TestDynGridMatchesFreshIndex(t *testing.T) {
	// After arbitrary mutations, the kinetic grid must answer exactly like a
	// grid freshly built at the same live positions (same tie-breaks, same
	// order) — the query-level equivalence gate.
	box := geom.Box(1, 1)
	pts := dgRandomPoints(200, box, 11, 0)
	g := NewDynGrid(pts, box, 0.12)
	r := rng.Sub(11, 1)
	for i := 0; i < 500; i++ {
		g.Move(int32(r.IntN(len(pts))), geom.Point{X: r.Float64(), Y: r.Float64()})
	}
	cur := make([]geom.Point, len(pts))
	for i := range cur {
		cur[i] = g.Point(int32(i))
	}
	fresh := NewDynGrid(cur, box, 0.12)
	var s1, s2 KNNScratch
	for _, q := range dgRandomPoints(16, box, 11, 2) {
		a := g.KNearestInto(q, 5, -1, &s1, nil)
		b := fresh.KNearestInto(q, 5, -1, &s2, nil)
		if !slices.Equal(a, b) {
			t.Fatalf("kinetic %v != fresh %v at %v", a, b, q)
		}
	}
}

func TestDynGridNearestWhere(t *testing.T) {
	box := geom.Box(1, 1)
	pts := dgRandomPoints(250, box, 13, 0)
	g := NewDynGrid(pts, box, 0.1)
	ok := make([]bool, len(pts))
	r := rng.Sub(13, 1)
	for i := range ok {
		ok[i] = r.Float64() < 0.3
	}
	pred := func(i int32) bool { return ok[i] }
	var scratch KNNScratch
	for qi, q := range dgRandomPoints(12, box, 13, 2) {
		got := g.NearestWhere(q, &scratch, pred)
		// Brute force over live qualifying points.
		want, bestD := int32(-1), 0.0
		for i, p := range pts {
			if !ok[i] || !g.Alive(int32(i)) {
				continue
			}
			d := p.Dist2(q)
			if want < 0 || d < bestD || (d == bestD && int32(i) < want) {
				want, bestD = int32(i), d
			}
		}
		if got != want {
			t.Fatalf("query %d: NearestWhere=%d want %d", qi, got, want)
		}
	}
	// Remove every qualifying point: the search must report none.
	for i := range ok {
		if ok[i] {
			g.Remove(int32(i))
		}
	}
	if got := g.NearestWhere(geom.Pt(0.5, 0.5), &scratch, pred); got != -1 {
		t.Fatalf("NearestWhere over dead qualifiers = %d, want -1", got)
	}
}

func TestDynGridRemoveInsertRoundTrip(t *testing.T) {
	box := geom.Box(1, 1)
	pts := dgRandomPoints(50, box, 17, 0)
	g := NewDynGrid(pts, box, 0.25)
	if g.Len() != 50 {
		t.Fatalf("Len=%d want 50", g.Len())
	}
	g.Remove(7)
	g.Remove(7) // idempotent
	if g.Len() != 49 || g.Alive(7) {
		t.Fatalf("after Remove: Len=%d alive=%v", g.Len(), g.Alive(7))
	}
	if got := g.Within(pts[7], 1e-12, nil); len(got) != 0 {
		t.Fatalf("removed point still visible: %v", got)
	}
	g.Insert(7, pts[7])
	if g.Len() != 50 || !g.Alive(7) {
		t.Fatalf("after Insert: Len=%d alive=%v", g.Len(), g.Alive(7))
	}
	if got := g.Within(pts[7], 1e-12, nil); len(got) != 1 || got[0] != 7 {
		t.Fatalf("reinserted point not found: %v", got)
	}
}
