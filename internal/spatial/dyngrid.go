package spatial

import (
	"math"
	"sort"

	"repro/internal/geom"
)

// DynGrid is the kinetic counterpart of Grid: a uniform bucket grid whose
// point set can move, die and come back without a rebuild. The world bounds
// and cell size are fixed at construction (mobility models keep points inside
// a fixed deployment box, so the static extents cost nothing); each cell
// holds its live point indices in ascending order, which makes every query
// deterministic regardless of the mutation history — the same positions
// always produce the same answers as a freshly built index.
//
// Move and Remove are O(cell occupancy); Within / KNearestInto match Grid's
// query contracts (including the (distance, index) tie-break) so callers can
// switch between the static and kinetic index without behavioural change.
type DynGrid struct {
	pts    []geom.Point // slot positions (owned copy; stale for dead slots)
	bounds geom.Rect
	cell   float64
	nx, ny int
	cellOf []int32   // cell per slot, −1 while removed
	cells  [][]int32 // live slot indices per cell, each ascending
	live   int
}

// NewDynGrid indexes pts over the fixed world bounds with the given cell
// size. Positions outside bounds are clamped into the border cells, exactly
// as Grid clamps query coordinates. cell must be positive and bounds
// non-degenerate enough to hold at least one cell.
func NewDynGrid(pts []geom.Point, bounds geom.Rect, cell float64) *DynGrid {
	if cell <= 0 {
		panic("spatial: non-positive cell size")
	}
	g := &DynGrid{
		pts:    append([]geom.Point(nil), pts...),
		bounds: bounds,
		cell:   cell,
	}
	g.nx = int(bounds.Width()/cell) + 1
	g.ny = int(bounds.Height()/cell) + 1
	if g.nx < 1 {
		g.nx = 1
	}
	if g.ny < 1 {
		g.ny = 1
	}
	g.cells = make([][]int32, g.nx*g.ny)
	g.cellOf = make([]int32, len(pts))
	for i, p := range pts {
		c := int32(g.cellIndex(p))
		g.cellOf[i] = c
		g.cells[c] = append(g.cells[c], int32(i))
	}
	g.live = len(pts)
	return g
}

// Len returns the number of live points.
func (g *DynGrid) Len() int { return g.live }

// Cap returns the number of slots (live or removed).
func (g *DynGrid) Cap() int { return len(g.pts) }

// Point returns the current position of slot i (stale if i is removed).
func (g *DynGrid) Point(i int32) geom.Point { return g.pts[i] }

// Alive reports whether slot i is currently indexed.
func (g *DynGrid) Alive(i int32) bool { return g.cellOf[i] >= 0 }

// Bounds returns the fixed world bounds.
func (g *DynGrid) Bounds() geom.Rect { return g.bounds }

func (g *DynGrid) cellCoords(p geom.Point) (int, int) {
	cx := int((p.X - g.bounds.Min.X) / g.cell)
	cy := int((p.Y - g.bounds.Min.Y) / g.cell)
	return clampInt(cx, 0, g.nx-1), clampInt(cy, 0, g.ny-1)
}

func (g *DynGrid) cellIndex(p geom.Point) int {
	cx, cy := g.cellCoords(p)
	return cy*g.nx + cx
}

// cellInsert adds slot i to cell c keeping the list ascending.
func (g *DynGrid) cellInsert(c int32, i int32) {
	list := g.cells[c]
	at := sort.Search(len(list), func(k int) bool { return list[k] >= i })
	list = append(list, 0)
	copy(list[at+1:], list[at:])
	list[at] = i
	g.cells[c] = list
}

// cellDelete removes slot i from cell c (which must contain it).
func (g *DynGrid) cellDelete(c int32, i int32) {
	list := g.cells[c]
	at := sort.Search(len(list), func(k int) bool { return list[k] >= i })
	copy(list[at:], list[at+1:])
	g.cells[c] = list[:len(list)-1]
}

// Move updates slot i's position. A move within one cell only rewrites the
// stored coordinate; a boundary crossing transfers the slot between the two
// cell lists. i must be live.
func (g *DynGrid) Move(i int32, p geom.Point) {
	if g.cellOf[i] < 0 {
		panic("spatial: Move on removed slot")
	}
	g.pts[i] = p
	c := int32(g.cellIndex(p))
	if c == g.cellOf[i] {
		return
	}
	g.cellDelete(g.cellOf[i], i)
	g.cellInsert(c, i)
	g.cellOf[i] = c
}

// Remove deletes slot i from the index; its position is retained so a later
// Insert can resurrect it. Removing a removed slot is a no-op.
func (g *DynGrid) Remove(i int32) {
	if g.cellOf[i] < 0 {
		return
	}
	g.cellDelete(g.cellOf[i], i)
	g.cellOf[i] = -1
	g.live--
}

// Insert (re)activates slot i at position p. i must currently be removed.
func (g *DynGrid) Insert(i int32, p geom.Point) {
	if g.cellOf[i] >= 0 {
		panic("spatial: Insert on live slot")
	}
	g.pts[i] = p
	c := int32(g.cellIndex(p))
	g.cellInsert(c, i)
	g.cellOf[i] = c
	g.live++
}

// AppendAlive appends every live slot index to dst in ascending order and
// returns the extended slice.
func (g *DynGrid) AppendAlive(dst []int32) []int32 {
	at := len(dst)
	for _, list := range g.cells {
		dst = append(dst, list...)
	}
	// Cell-major collection; callers want index order.
	tail := dst[at:]
	sort.Slice(tail, func(i, j int) bool { return tail[i] < tail[j] })
	return dst
}

// Within appends to dst the indices of all live points within distance r of
// q and returns the extended slice. Results arrive in cell-major order with
// ascending indices inside each cell — a pure function of the current
// positions.
func (g *DynGrid) Within(q geom.Point, r float64, dst []int32) []int32 {
	if g.live == 0 {
		return dst
	}
	r2 := r * r
	cx0 := clampInt(int(math.Floor((q.X-r-g.bounds.Min.X)/g.cell)), 0, g.nx-1)
	cx1 := clampInt(int(math.Floor((q.X+r-g.bounds.Min.X)/g.cell)), 0, g.nx-1)
	cy0 := clampInt(int(math.Floor((q.Y-r-g.bounds.Min.Y)/g.cell)), 0, g.ny-1)
	cy1 := clampInt(int(math.Floor((q.Y+r-g.bounds.Min.Y)/g.cell)), 0, g.ny-1)
	for cy := cy0; cy <= cy1; cy++ {
		rowBase := cy * g.nx
		for cx := cx0; cx <= cx1; cx++ {
			for _, i := range g.cells[rowBase+cx] {
				if g.pts[i].Dist2(q) <= r2 {
					dst = append(dst, i)
				}
			}
		}
	}
	return dst
}

// KNearestInto appends to dst the indices of the k live points nearest to q —
// excluding index exclude (−1 for none), sorted by increasing distance with
// ties broken by index — and returns the extended slice. Identical contract
// to Grid.KNearestInto.
func (g *DynGrid) KNearestInto(q geom.Point, k int, exclude int, scratch *KNNScratch, dst []int32) []int32 {
	if k <= 0 || g.live == 0 {
		return dst
	}
	if scratch == nil {
		scratch = &KNNScratch{}
	}
	h := &scratch.h
	h.reset(k)
	cx, cy := g.cellCoords(q)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if h.full() {
			minDist := float64(ring-1) * g.cell
			if ring > 0 && minDist > 0 && minDist*minDist > h.top() {
				break
			}
		}
		cells := appendRingCells(scratch.cells[:0], cx, cy, ring, g.nx, g.ny)
		scratch.cells = cells
		for _, c := range cells {
			for _, i := range g.cells[c] {
				if int(i) == exclude {
					continue
				}
				h.push(g.pts[i].Dist2(q), i)
			}
		}
	}
	return h.appendSorted(dst)
}

// NearestWhere returns the live point nearest to q that satisfies pred,
// breaking distance ties by index, or −1 when no live point qualifies. The
// expanding-ring search stops as soon as no unexamined cell can beat the
// best match, so the cost is proportional to the local density around q, not
// to the index size. scratch carries the ring buffer; nil allocates one.
func (g *DynGrid) NearestWhere(q geom.Point, scratch *KNNScratch, pred func(int32) bool) int32 {
	if g.live == 0 {
		return -1
	}
	if scratch == nil {
		scratch = &KNNScratch{}
	}
	best := int32(-1)
	bestD := math.Inf(1)
	cx, cy := g.cellCoords(q)
	maxRing := g.nx
	if g.ny > maxRing {
		maxRing = g.ny
	}
	for ring := 0; ring <= maxRing; ring++ {
		if best >= 0 {
			minDist := float64(ring-1) * g.cell
			if ring > 0 && minDist > 0 && minDist*minDist > bestD {
				break
			}
		}
		cells := appendRingCells(scratch.cells[:0], cx, cy, ring, g.nx, g.ny)
		scratch.cells = cells
		for _, c := range cells {
			for _, i := range g.cells[c] {
				if !pred(i) {
					continue
				}
				d := g.pts[i].Dist2(q)
				if d < bestD || (d == bestD && i < best) {
					best, bestD = i, d
				}
			}
		}
	}
	return best
}

// appendRingCells appends each valid cell index at L∞ ring distance `ring`
// from (cx, cy) on an nx×ny grid to dst and returns the extended slice —
// the shared ring enumeration behind Grid and DynGrid searches.
func appendRingCells(dst []int32, cx, cy, ring, nx, ny int) []int32 {
	if ring == 0 {
		if cx >= 0 && cx < nx && cy >= 0 && cy < ny {
			dst = append(dst, int32(cy*nx+cx))
		}
		return dst
	}
	x0, x1 := cx-ring, cx+ring
	y0, y1 := cy-ring, cy+ring
	for x := x0; x <= x1; x++ {
		if x < 0 || x >= nx {
			continue
		}
		if y0 >= 0 && y0 < ny {
			dst = append(dst, int32(y0*nx+x))
		}
		if y1 >= 0 && y1 < ny {
			dst = append(dst, int32(y1*nx+x))
		}
	}
	for y := y0 + 1; y <= y1-1; y++ {
		if y < 0 || y >= ny {
			continue
		}
		if x0 >= 0 && x0 < nx {
			dst = append(dst, int32(y*nx+x0))
		}
		if x1 >= 0 && x1 < nx {
			dst = append(dst, int32(y*nx+x1))
		}
	}
	return dst
}
