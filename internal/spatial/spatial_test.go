package spatial

import (
	"math"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rng"
)

func sortedCopy(xs []int32) []int32 {
	out := append([]int32(nil), xs...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomPoints(n int, seed rng.Seed) []geom.Point {
	g := rng.New(seed)
	return pointprocess.Binomial(geom.Box(10, 10), n, g)
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 1)
	grid := NewGrid(pts, 1.0)
	g := rng.New(2)
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(g.Float64()*12-1, g.Float64()*12-1)
		r := g.Float64() * 3
		got := sortedCopy(grid.Within(q, r, nil))
		want := BruteWithin(pts, q, r)
		if !equalInt32(got, want) {
			t.Fatalf("grid Within(%v, %v) = %v want %v", q, r, got, want)
		}
	}
}

func TestKDTreeWithinMatchesBruteForce(t *testing.T) {
	pts := randomPoints(500, 3)
	tree := NewKDTree(pts)
	g := rng.New(4)
	for trial := 0; trial < 200; trial++ {
		q := geom.Pt(g.Float64()*12-1, g.Float64()*12-1)
		r := g.Float64() * 3
		got := sortedCopy(tree.Within(q, r, nil))
		want := BruteWithin(pts, q, r)
		if !equalInt32(got, want) {
			t.Fatalf("kdtree Within(%v, %v) = %v want %v", q, r, got, want)
		}
	}
}

func TestGridKNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(400, 5)
	grid := NewGrid(pts, 0.7)
	g := rng.New(6)
	for trial := 0; trial < 150; trial++ {
		q := pts[g.IntN(len(pts))]
		k := 1 + g.IntN(20)
		exclude := -1
		if trial%2 == 0 {
			// Exclude the query point itself, as the NN-graph builder does.
			for i, p := range pts {
				if p == q {
					exclude = i
					break
				}
			}
		}
		got := grid.KNearest(q, k, exclude)
		want := BruteKNearest(pts, q, k, exclude)
		if !sameDistances(pts, q, got, want) {
			t.Fatalf("grid KNearest(%v, %d, excl %d) = %v want %v", q, k, exclude, got, want)
		}
	}
}

func TestKDTreeKNearestMatchesBruteForce(t *testing.T) {
	pts := randomPoints(400, 7)
	tree := NewKDTree(pts)
	g := rng.New(8)
	for trial := 0; trial < 150; trial++ {
		q := geom.Pt(g.Float64()*10, g.Float64()*10)
		k := 1 + g.IntN(25)
		got := tree.KNearest(q, k, -1)
		want := BruteKNearest(pts, q, k, -1)
		if !sameDistances(pts, q, got, want) {
			t.Fatalf("kdtree KNearest(%v, %d) = %v want %v", q, k, got, want)
		}
	}
}

// sameDistances checks that two kNN results agree as multisets of distances
// (ties at the boundary may legitimately resolve to different indices).
func sameDistances(pts []geom.Point, q geom.Point, a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	da := make([]float64, len(a))
	db := make([]float64, len(b))
	for i := range a {
		da[i] = pts[a[i]].Dist2(q)
		db[i] = pts[b[i]].Dist2(q)
	}
	sort.Float64s(da)
	sort.Float64s(db)
	for i := range da {
		if math.Abs(da[i]-db[i]) > 1e-12 {
			return false
		}
	}
	return true
}

func TestKNearestSortedByDistance(t *testing.T) {
	pts := randomPoints(300, 9)
	grid := NewGrid(pts, 1.0)
	tree := NewKDTree(pts)
	q := geom.Pt(5, 5)
	for _, res := range [][]int32{grid.KNearest(q, 15, -1), tree.KNearest(q, 15, -1)} {
		prev := -1.0
		for _, i := range res {
			d := pts[i].Dist2(q)
			if d < prev {
				t.Fatalf("results not sorted by distance: %v", res)
			}
			prev = d
		}
	}
}

func TestEmptyAndDegenerateInputs(t *testing.T) {
	grid := NewGrid(nil, 1)
	if grid.Len() != 0 {
		t.Error("empty grid Len")
	}
	if got := grid.Within(geom.Pt(0, 0), 5, nil); len(got) != 0 {
		t.Error("empty grid Within should be empty")
	}
	if got := grid.KNearest(geom.Pt(0, 0), 3, -1); len(got) != 0 {
		t.Error("empty grid KNearest should be empty")
	}
	tree := NewKDTree(nil)
	if got := tree.Within(geom.Pt(0, 0), 5, nil); len(got) != 0 {
		t.Error("empty kdtree Within should be empty")
	}
	if got := tree.KNearest(geom.Pt(0, 0), 3, -1); len(got) != 0 {
		t.Error("empty kdtree KNearest should be empty")
	}

	// Single point.
	one := []geom.Point{geom.Pt(1, 1)}
	g1 := NewGrid(one, 1)
	if got := g1.KNearest(geom.Pt(0, 0), 3, -1); len(got) != 1 || got[0] != 0 {
		t.Errorf("single-point grid KNearest = %v", got)
	}
	if got := g1.KNearest(geom.Pt(0, 0), 3, 0); len(got) != 0 {
		t.Errorf("excluding the only point should yield nothing, got %v", got)
	}

	// All points identical.
	same := []geom.Point{geom.Pt(2, 2), geom.Pt(2, 2), geom.Pt(2, 2)}
	gs := NewGrid(same, 0.5)
	if got := gs.Within(geom.Pt(2, 2), 0.1, nil); len(got) != 3 {
		t.Errorf("identical points Within = %v", got)
	}
	ts := NewKDTree(same)
	if got := ts.KNearest(geom.Pt(2, 2), 2, -1); len(got) != 2 {
		t.Errorf("identical points KNearest = %v", got)
	}
}

func TestKNearestFewerThanK(t *testing.T) {
	pts := randomPoints(5, 10)
	grid := NewGrid(pts, 1)
	if got := grid.KNearest(geom.Pt(5, 5), 10, -1); len(got) != 5 {
		t.Errorf("k > n should return all points, got %d", len(got))
	}
	tree := NewKDTree(pts)
	if got := tree.KNearest(geom.Pt(5, 5), 10, -1); len(got) != 5 {
		t.Errorf("kdtree k > n should return all points, got %d", len(got))
	}
}

func TestWithinRadiusZero(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 1), geom.Pt(2, 2)}
	grid := NewGrid(pts, 1)
	got := grid.Within(geom.Pt(1, 1), 0, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("radius-0 Within should return the exact point: %v", got)
	}
}

func TestGridCellSizeVariations(t *testing.T) {
	pts := randomPoints(300, 11)
	q := geom.Pt(4, 6)
	want := BruteWithin(pts, q, 1.5)
	for _, cell := range []float64{0.1, 0.5, 1.0, 3.0, 20.0} {
		grid := NewGrid(pts, cell)
		got := sortedCopy(grid.Within(q, 1.5, nil))
		if !equalInt32(got, want) {
			t.Errorf("cell=%v: Within mismatch", cell)
		}
		gotK := grid.KNearest(q, 7, -1)
		wantK := BruteKNearest(pts, q, 7, -1)
		if !sameDistances(pts, q, gotK, wantK) {
			t.Errorf("cell=%v: KNearest mismatch", cell)
		}
	}
}

func TestGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive cell size")
		}
	}()
	NewGrid(nil, 0)
}

func BenchmarkGridWithin(b *testing.B) {
	pts := randomPoints(100000, 20)
	grid := NewGrid(pts, 1.0)
	g := rng.New(21)
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(g.Float64()*10, g.Float64()*10)
		buf = grid.Within(q, 1.0, buf[:0])
	}
}

func BenchmarkKDTreeWithin(b *testing.B) {
	pts := randomPoints(100000, 20)
	tree := NewKDTree(pts)
	g := rng.New(21)
	var buf []int32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(g.Float64()*10, g.Float64()*10)
		buf = tree.Within(q, 1.0, buf[:0])
	}
}

func BenchmarkGridKNearest(b *testing.B) {
	pts := randomPoints(100000, 22)
	grid := NewGrid(pts, 0.2)
	g := rng.New(23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(g.Float64()*10, g.Float64()*10)
		grid.KNearest(q, 10, -1)
	}
}

func BenchmarkKDTreeKNearest(b *testing.B) {
	pts := randomPoints(100000, 22)
	tree := NewKDTree(pts)
	g := rng.New(23)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := geom.Pt(g.Float64()*10, g.Float64()*10)
		tree.KNearest(q, 10, -1)
	}
}

// TestKNearestExactAgreementDegenerate checks index-exact agreement (not
// just distance multisets) between both indexes and BruteKNearest on
// clustered and degenerate inputs: duplicate points force distance ties that
// only resolve identically because all three break ties by index.
func TestKNearestExactAgreementDegenerate(t *testing.T) {
	cases := map[string][]geom.Point{
		"duplicates": {
			geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1, 1), geom.Pt(1, 1),
			geom.Pt(2, 2), geom.Pt(2, 2), geom.Pt(0, 3),
		},
		"collinear": {
			geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0),
			geom.Pt(4, 0), geom.Pt(5, 0), geom.Pt(6, 0), geom.Pt(7, 0),
		},
		"clustered": {
			geom.Pt(0, 0), geom.Pt(1e-9, 0), geom.Pt(0, 1e-9), geom.Pt(1e-9, 1e-9),
			geom.Pt(5, 5), geom.Pt(5+1e-9, 5), geom.Pt(5, 5+1e-9),
		},
		"symmetric-ties": {
			geom.Pt(1, 0), geom.Pt(-1, 0), geom.Pt(0, 1), geom.Pt(0, -1),
			geom.Pt(2, 0), geom.Pt(-2, 0), geom.Pt(0, 2), geom.Pt(0, -2),
		},
	}
	for name, pts := range cases {
		grid := NewGrid(pts, 0.8)
		tree := NewKDTree(pts)
		queries := append([]geom.Point{geom.Pt(0, 0), geom.Pt(1, 1), geom.Pt(2.5, 0.5)}, pts...)
		for _, q := range queries {
			// k sweeps through and beyond n to cover the k > n case.
			for k := 1; k <= len(pts)+2; k++ {
				for _, exclude := range []int{-1, 0, len(pts) - 1} {
					want := BruteKNearest(pts, q, k, exclude)
					if got := grid.KNearest(q, k, exclude); !equalInt32(got, want) {
						t.Fatalf("%s: grid KNearest(%v, %d, %d) = %v want %v", name, q, k, exclude, got, want)
					}
					if got := tree.KNearest(q, k, exclude); !equalInt32(got, want) {
						t.Fatalf("%s: kdtree KNearest(%v, %d, %d) = %v want %v", name, q, k, exclude, got, want)
					}
				}
			}
		}
	}
}

// TestKNearestIntoMatchesAllocating checks that the buffered variants with a
// shared scratch reproduce the allocating wrappers exactly, including when
// dst is reused across queries.
func TestKNearestIntoMatchesAllocating(t *testing.T) {
	pts := randomPoints(600, 31)
	grid := NewGrid(pts, 0.6)
	tree := NewKDTree(pts)
	g := rng.New(32)
	var scratch KNNScratch
	var buf []int32
	for trial := 0; trial < 300; trial++ {
		q := geom.Pt(g.Float64()*12-1, g.Float64()*12-1)
		k := 1 + g.IntN(12)
		exclude := -1
		if trial%3 == 0 {
			exclude = g.IntN(len(pts))
		}
		buf = grid.KNearestInto(q, k, exclude, &scratch, buf[:0])
		if want := grid.KNearest(q, k, exclude); !equalInt32(buf, want) {
			t.Fatalf("grid Into mismatch at trial %d: %v want %v", trial, buf, want)
		}
		buf = tree.KNearestInto(q, k, exclude, &scratch, buf[:0])
		if want := tree.KNearest(q, k, exclude); !equalInt32(buf, want) {
			t.Fatalf("kdtree Into mismatch at trial %d: %v want %v", trial, buf, want)
		}
	}
}

// TestQueryAllocationFree asserts the zero-alloc contract of the buffered
// queries once scratch and dst have reached steady state.
func TestQueryAllocationFree(t *testing.T) {
	pts := randomPoints(20000, 33)
	grid := NewGrid(pts, 0.3)
	tree := NewKDTree(pts)
	var scratch KNNScratch
	var buf []int32
	q := geom.Pt(5, 5)
	// Warm up buffers.
	buf = tree.KNearestInto(q, 16, -1, &scratch, buf[:0])
	buf = grid.KNearestInto(q, 16, -1, &scratch, buf[:0])
	buf = tree.Within(q, 0.5, buf[:0])
	buf = grid.Within(q, 0.5, buf[:0])

	if a := testing.AllocsPerRun(100, func() {
		buf = tree.KNearestInto(q, 16, -1, &scratch, buf[:0])
	}); a > 0 {
		t.Errorf("kdtree KNearestInto allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		buf = grid.KNearestInto(q, 16, -1, &scratch, buf[:0])
	}); a > 0 {
		t.Errorf("grid KNearestInto allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		buf = tree.Within(q, 0.5, buf[:0])
	}); a > 0 {
		t.Errorf("kdtree Within allocates %v/op", a)
	}
	if a := testing.AllocsPerRun(100, func() {
		buf = grid.Within(q, 0.5, buf[:0])
	}); a > 0 {
		t.Errorf("grid Within allocates %v/op", a)
	}
}

// TestKDTreeDeterministicBuild checks that two builds over the same points
// produce identical trees (quickselect pivots are deterministic).
func TestKDTreeDeterministicBuild(t *testing.T) {
	pts := randomPoints(1000, 34)
	a, b := NewKDTree(pts), NewKDTree(pts)
	if len(a.nodes) != len(b.nodes) || a.root != b.root {
		t.Fatal("tree shapes differ")
	}
	for i := range a.nodes {
		if a.nodes[i] != b.nodes[i] {
			t.Fatalf("node %d differs: %+v vs %+v", i, a.nodes[i], b.nodes[i])
		}
	}
}

func TestBruteKNearestNonPositiveK(t *testing.T) {
	pts := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if got := BruteKNearest(pts, geom.Pt(0, 0), 0, -1); len(got) != 0 {
		t.Errorf("k=0 should be empty, got %v", got)
	}
	if got := BruteKNearest(pts, geom.Pt(0, 0), -3, -1); len(got) != 0 {
		t.Errorf("k<0 should be empty, got %v", got)
	}
}
