package spatial

import (
	"repro/internal/geom"
)

// KDTree is a static 2D kd-tree over a point set, built once and queried
// many times. Nodes are stored in a flat array (implicit tree) for cache
// friendliness; construction is O(n log n) via quickselect median
// partitioning, and queries traverse iteratively with an explicit stack so
// the zero-alloc *Into variants never touch the heap.
type KDTree struct {
	pts   []geom.Point
	nodes []kdNode
	root  int32
}

type kdNode struct {
	point       int32 // index into pts
	left, right int32 // node indices, −1 for none
	axis        uint8 // 0 = X, 1 = Y
}

// kdStackDepth bounds the traversal stacks. The tree is median-balanced so
// its depth is ≤ ⌈log₂ n⌉ + 1 ≤ 32 for int32-indexed points; each visit
// pushes at most two children, hence 64 slots can never overflow.
const kdStackDepth = 64

// NewKDTree builds a kd-tree over pts.
func NewKDTree(pts []geom.Point) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(idx, 0)
	return t
}

// kdLess is the strict total order used for median selection: coordinate on
// the splitting axis, ties broken by point index so the tree shape — and
// therefore every downstream traversal — is deterministic.
func (t *KDTree) kdLess(a, b int32, axis uint8) bool {
	pa, pb := t.pts[a], t.pts[b]
	if axis == 0 {
		if pa.X != pb.X {
			return pa.X < pb.X
		}
	} else {
		if pa.Y != pb.Y {
			return pa.Y < pb.Y
		}
	}
	return a < b
}

// nthElement partially sorts idx so that idx[k] holds the element of rank k
// under kdLess and everything before/after it compares below/above —
// Hoare-partition quickselect with median-of-three pivots. Expected O(n)
// per call; pivots are deterministic, which keeps builds reproducible.
func (t *KDTree) nthElement(idx []int32, k int, axis uint8) {
	lo, hi := 0, len(idx)-1
	for hi > lo {
		if hi-lo < 8 {
			// Insertion sort for tiny ranges.
			for i := lo + 1; i <= hi; i++ {
				for j := i; j > lo && t.kdLess(idx[j], idx[j-1], axis); j-- {
					idx[j], idx[j-1] = idx[j-1], idx[j]
				}
			}
			return
		}
		// Median-of-three pivot, moved to lo.
		mid := lo + (hi-lo)/2
		if t.kdLess(idx[mid], idx[lo], axis) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if t.kdLess(idx[hi], idx[lo], axis) {
			idx[hi], idx[lo] = idx[lo], idx[hi]
		}
		if t.kdLess(idx[hi], idx[mid], axis) {
			idx[hi], idx[mid] = idx[mid], idx[hi]
		}
		idx[lo], idx[mid] = idx[mid], idx[lo]
		pivot := idx[lo]
		// Hoare partition.
		i, j := lo, hi+1
		for {
			for {
				i++
				if i > hi || !t.kdLess(idx[i], pivot, axis) {
					break
				}
			}
			for {
				j--
				if !t.kdLess(pivot, idx[j], axis) {
					break
				}
			}
			if i >= j {
				break
			}
			idx[i], idx[j] = idx[j], idx[i]
		}
		idx[lo], idx[j] = idx[j], idx[lo]
		switch {
		case j == k:
			return
		case j < k:
			lo = j + 1
		default:
			hi = j - 1
		}
	}
}

func (t *KDTree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := uint8(depth % 2)
	mid := len(idx) / 2
	t.nthElement(idx, mid, axis)
	n := kdNode{point: idx[mid], axis: axis, left: -1, right: -1}
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Within appends to dst the indices of all points within distance r of q and
// returns the extended slice. Allocation-free apart from growth of dst.
func (t *KDTree) Within(q geom.Point, r float64, dst []int32) []int32 {
	if t.root < 0 {
		return dst
	}
	r2 := r * r
	var stackArr [kdStackDepth]int32
	stack := stackArr[:0]
	stack = append(stack, t.root)
	for len(stack) > 0 {
		ni := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &t.nodes[ni]
		p := t.pts[n.point]
		if p.Dist2(q) <= r2 {
			dst = append(dst, n.point)
		}
		var delta float64
		if n.axis == 0 {
			delta = q.X - p.X
		} else {
			delta = q.Y - p.Y
		}
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		if far >= 0 && delta*delta <= r2 {
			stack = append(stack, far)
		}
		if near >= 0 {
			stack = append(stack, near)
		}
	}
	return dst
}

// kdVisit is a deferred far-subtree visit: the subtree is pruned at pop
// time if the k-th best distance has shrunk below the splitting distance.
type kdVisit struct {
	node  int32
	dist2 float64 // squared distance from q to the splitting plane
}

// KNearest returns the indices of the k points nearest to q, excluding any
// point whose index equals exclude (−1 to exclude nothing), sorted by
// increasing distance (ties by index). Allocates the result; hot loops use
// KNearestInto.
func (t *KDTree) KNearest(q geom.Point, k int, exclude int) []int32 {
	if k <= 0 || t.root < 0 {
		return nil
	}
	var s KNNScratch
	return t.KNearestInto(q, k, exclude, &s, nil)
}

// KNearestInto appends to dst the indices of the k points nearest to q —
// excluding index exclude (−1 for none), sorted by increasing distance with
// ties broken by index — and returns the extended slice. scratch carries the
// candidate heap across calls; after warm-up the query performs no heap
// allocations beyond growth of dst.
func (t *KDTree) KNearestInto(q geom.Point, k int, exclude int, scratch *KNNScratch, dst []int32) []int32 {
	if k <= 0 || t.root < 0 {
		return dst
	}
	if scratch == nil {
		scratch = &KNNScratch{}
	}
	h := &scratch.h
	h.reset(k)
	var stackArr [kdStackDepth]kdVisit
	stack := stackArr[:0]
	stack = append(stack, kdVisit{t.root, 0})
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if h.full() && v.dist2 > h.top() {
			continue // plane moved out of range since this visit was queued
		}
		ni := v.node
		for ni >= 0 {
			n := &t.nodes[ni]
			p := t.pts[n.point]
			if int(n.point) != exclude {
				h.push(p.Dist2(q), n.point)
			}
			var delta float64
			if n.axis == 0 {
				delta = q.X - p.X
			} else {
				delta = q.Y - p.Y
			}
			near, far := n.left, n.right
			if delta > 0 {
				near, far = far, near
			}
			if far >= 0 && (!h.full() || delta*delta <= h.top()) {
				stack = append(stack, kdVisit{far, delta * delta})
			}
			ni = near // descend the near side without a stack push
		}
	}
	return h.appendSorted(dst)
}

// BruteWithin returns (for testing and small inputs) the indices of points
// within r of q by exhaustive scan, in index order.
func BruteWithin(pts []geom.Point, q geom.Point, r float64) []int32 {
	r2 := r * r
	var out []int32
	for i, p := range pts {
		if p.Dist2(q) <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

// BruteKNearest returns the k nearest points to q by exhaustive scan,
// excluding index exclude, sorted by increasing distance (ties by index).
func BruteKNearest(pts []geom.Point, q geom.Point, k int, exclude int) []int32 {
	if k <= 0 {
		return nil
	}
	var h maxHeap
	h.reset(k)
	for i, p := range pts {
		if i == exclude {
			continue
		}
		h.push(p.Dist2(q), int32(i))
	}
	return h.appendSorted(nil)
}
