package spatial

import (
	"sort"

	"repro/internal/geom"
)

// KDTree is a static 2D kd-tree over a point set, built once and queried
// many times. Nodes are stored in a flat array (implicit tree) for cache
// friendliness; construction is O(n log n) via median partitioning.
type KDTree struct {
	pts   []geom.Point
	nodes []kdNode
	root  int32
}

type kdNode struct {
	point       int32 // index into pts
	left, right int32 // node indices, −1 for none
	axis        uint8 // 0 = X, 1 = Y
}

// NewKDTree builds a kd-tree over pts.
func NewKDTree(pts []geom.Point) *KDTree {
	t := &KDTree{pts: pts, root: -1}
	if len(pts) == 0 {
		return t
	}
	idx := make([]int32, len(pts))
	for i := range idx {
		idx[i] = int32(i)
	}
	t.nodes = make([]kdNode, 0, len(pts))
	t.root = t.build(idx, 0)
	return t
}

func (t *KDTree) build(idx []int32, depth int) int32 {
	if len(idx) == 0 {
		return -1
	}
	axis := uint8(depth % 2)
	mid := len(idx) / 2
	// nth_element-style partial sort: full sort is fine for construction
	// (O(n log² n) total) and keeps the code simple and allocation-light.
	if axis == 0 {
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := t.pts[idx[a]], t.pts[idx[b]]
			if pa.X != pb.X {
				return pa.X < pb.X
			}
			return idx[a] < idx[b]
		})
	} else {
		sort.Slice(idx, func(a, b int) bool {
			pa, pb := t.pts[idx[a]], t.pts[idx[b]]
			if pa.Y != pb.Y {
				return pa.Y < pb.Y
			}
			return idx[a] < idx[b]
		})
	}
	n := kdNode{point: idx[mid], axis: axis, left: -1, right: -1}
	self := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	left := t.build(idx[:mid], depth+1)
	right := t.build(idx[mid+1:], depth+1)
	t.nodes[self].left = left
	t.nodes[self].right = right
	return self
}

// Len returns the number of indexed points.
func (t *KDTree) Len() int { return len(t.pts) }

// Within appends to dst the indices of all points within distance r of q and
// returns the extended slice.
func (t *KDTree) Within(q geom.Point, r float64, dst []int32) []int32 {
	if t.root < 0 {
		return dst
	}
	r2 := r * r
	var rec func(ni int32)
	rec = func(ni int32) {
		if ni < 0 {
			return
		}
		n := &t.nodes[ni]
		p := t.pts[n.point]
		if p.Dist2(q) <= r2 {
			dst = append(dst, n.point)
		}
		var delta float64
		if n.axis == 0 {
			delta = q.X - p.X
		} else {
			delta = q.Y - p.Y
		}
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		rec(near)
		if delta*delta <= r2 {
			rec(far)
		}
	}
	rec(t.root)
	return dst
}

// KNearest returns the indices of the k points nearest to q, excluding any
// point whose index equals exclude (−1 to exclude nothing), sorted by
// increasing distance.
func (t *KDTree) KNearest(q geom.Point, k int, exclude int) []int32 {
	if k <= 0 || t.root < 0 {
		return nil
	}
	h := newMaxHeap(k)
	var rec func(ni int32)
	rec = func(ni int32) {
		if ni < 0 {
			return
		}
		n := &t.nodes[ni]
		p := t.pts[n.point]
		if int(n.point) != exclude {
			h.push(p.Dist2(q), n.point)
		}
		var delta float64
		if n.axis == 0 {
			delta = q.X - p.X
		} else {
			delta = q.Y - p.Y
		}
		near, far := n.left, n.right
		if delta > 0 {
			near, far = far, near
		}
		rec(near)
		if !h.full() || delta*delta <= h.top() {
			rec(far)
		}
	}
	rec(t.root)
	return h.sortedIndices()
}

// BruteWithin returns (for testing and small inputs) the indices of points
// within r of q by exhaustive scan, in index order.
func BruteWithin(pts []geom.Point, q geom.Point, r float64) []int32 {
	r2 := r * r
	var out []int32
	for i, p := range pts {
		if p.Dist2(q) <= r2 {
			out = append(out, int32(i))
		}
	}
	return out
}

// BruteKNearest returns the k nearest points to q by exhaustive scan,
// excluding index exclude, sorted by increasing distance (ties by index).
func BruteKNearest(pts []geom.Point, q geom.Point, k int, exclude int) []int32 {
	type pair struct {
		d float64
		i int32
	}
	ps := make([]pair, 0, len(pts))
	for i, p := range pts {
		if i == exclude {
			continue
		}
		ps = append(ps, pair{p.Dist2(q), int32(i)})
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].d != ps[b].d {
			return ps[a].d < ps[b].d
		}
		return ps[a].i < ps[b].i
	})
	if k > len(ps) {
		k = len(ps)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = ps[i].i
	}
	return out
}
