package spatial

// KNNScratch holds the reusable buffers of a KNearestInto query — the
// bounded candidate heap and, for the grid, the ring cell list. A zero
// KNNScratch is ready to use; reusing one across queries (one scratch per
// goroutine) makes the queries allocation-free once the buffers have grown
// to steady state. A scratch must not be shared between concurrent queries.
type KNNScratch struct {
	h     maxHeap
	cells []int32
}

// maxHeap is a bounded max-heap on (dist2, index) pairs keeping the k
// lexicographically smallest: ordering ties at equal distance by index makes
// every k-nearest result — and hence the NN graph built from it — fully
// deterministic, matching BruteKNearest exactly even on degenerate inputs
// with duplicate points. Buffers are retained across reset for reuse.
type maxHeap struct {
	k   int
	d   []float64
	idx []int32
}

// reset prepares the heap for a fresh query keeping the k smallest entries.
func (h *maxHeap) reset(k int) {
	h.k = k
	h.d = h.d[:0]
	h.idx = h.idx[:0]
}

func (h *maxHeap) full() bool   { return len(h.d) >= h.k }
func (h *maxHeap) top() float64 { return h.d[0] }

// greater reports whether entry i orders after entry j under (dist2, index).
func (h *maxHeap) greater(i, j int) bool {
	if h.d[i] != h.d[j] {
		return h.d[i] > h.d[j]
	}
	return h.idx[i] > h.idx[j]
}

func (h *maxHeap) push(d float64, i int32) {
	if len(h.d) < h.k {
		h.d = append(h.d, d)
		h.idx = append(h.idx, i)
		h.up(len(h.d) - 1)
		return
	}
	if d > h.d[0] || (d == h.d[0] && i > h.idx[0]) {
		return
	}
	h.d[0], h.idx[0] = d, i
	h.down(0, len(h.d))
}

func (h *maxHeap) swap(i, j int) {
	h.d[i], h.d[j] = h.d[j], h.d[i]
	h.idx[i], h.idx[j] = h.idx[j], h.idx[i]
}

func (h *maxHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.greater(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *maxHeap) down(i, n int) {
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && h.greater(l, big) {
			big = l
		}
		if r < n && h.greater(r, big) {
			big = r
		}
		if big == i {
			return
		}
		h.swap(i, big)
		i = big
	}
}

// appendSorted drains the heap into dst by increasing (distance, index) —
// an in-place heapsort, so it allocates nothing beyond growth of dst. The
// heap is consumed.
func (h *maxHeap) appendSorted(dst []int32) []int32 {
	// Repeatedly move the max to the end of the shrinking heap prefix, then
	// append the ascending result.
	for n := len(h.d); n > 1; n-- {
		h.swap(0, n-1)
		h.down(0, n-1)
	}
	dst = append(dst, h.idx...)
	h.d = h.d[:0]
	h.idx = h.idx[:0]
	return dst
}
