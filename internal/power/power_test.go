package power

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
)

func TestEdgeAndPathCost(t *testing.T) {
	if got := EdgeCost(2, 3); got != 8 {
		t.Errorf("EdgeCost = %v", got)
	}
	if got := EdgeCost(0, 2); got != 0 {
		t.Errorf("EdgeCost(0) = %v", got)
	}
	path := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(1, 2)}
	if got := PathCost(path, 2); got != 1+4 {
		t.Errorf("PathCost = %v", got)
	}
	if got := PathCost(path[:1], 2); got != 0 {
		t.Errorf("single-point path cost = %v", got)
	}
}

func TestMinPathPowerPrefersShortHops(t *testing.T) {
	// 0 —— 2 directly (length 2) or via 1 (two hops of length 1).
	// For β ≥ 2: two short hops cost 2 < 2^β, so relaying wins.
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	g := b.Build()
	got := MinPathPower(g, pos, 0, 2, 2)
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("min power = %v want 2", got)
	}
	// Disconnected pair.
	b2 := graph.NewBuilder(2)
	if !math.IsInf(MinPathPower(b2.Build(), pos[:2], 0, 1, 2), 1) {
		t.Error("disconnected pair should cost +Inf")
	}
}

func TestLiWanWangBoundHoldsOnUDGSubgraphs(t *testing.T) {
	// Build a UDG and a sparser sub-UDG (smaller radius); verify the valid
	// per-pair facts (see LiWanWangBound's doc comment):
	//  (a) min power ≤ (min path length)^β — power of the shortest path;
	//  (b) with δmax the sample's Euclidean stretch factor,
	//      p_sub(u,v) ≤ δmax^β · d(u,v)^β;
	//  (c) the geometric sanity chain Euclid ≤ BaseLen ≤ SubLen.
	g := rng.New(1)
	pts := pointprocess.Poisson(geom.Box(12, 12), 3, g)
	base := rgg.UDG(pts, 1.0)
	sub := rgg.UDG(pts, 0.6)
	members, _ := graph.LargestComponent(sub.CSR)
	if len(members) < 10 {
		t.Skip("sparse realization")
	}
	for _, beta := range []float64{2, 3, 5} {
		samples, err := MeasureStretch(sub.CSR, base.CSR, pts, members, beta, 40, 4000, g)
		if err != nil {
			t.Fatalf("beta=%v: %v", beta, err)
		}
		deltaMax := 0.0
		for _, s := range samples {
			if es := s.EuclidStretch(); es > deltaMax {
				deltaMax = es
			}
		}
		bound := LiWanWangBound(deltaMax, beta)
		for _, s := range samples {
			if s.PowerStretch < 1-1e-9 {
				t.Fatalf("beta=%v: power stretch %v below 1", beta, s.PowerStretch)
			}
			if s.PowerSub > EdgeCost(s.SubLen, beta)+1e-9 {
				t.Fatalf("beta=%v: min power %v exceeds shortest-path-length power %v",
					beta, s.PowerSub, EdgeCost(s.SubLen, beta))
			}
			if s.Euclid > 0 && s.PowerSub > bound*EdgeCost(s.Euclid, beta)+1e-9 {
				t.Fatalf("beta=%v: power %v exceeds δmax^β·d^β = %v",
					beta, s.PowerSub, bound*EdgeCost(s.Euclid, beta))
			}
			if s.Euclid > s.BaseLen+1e-9 || s.BaseLen > s.SubLen+1e-9 {
				t.Fatalf("length chain violated: euclid %v base %v sub %v",
					s.Euclid, s.BaseLen, s.SubLen)
			}
		}
	}
}

func TestMeasureStretchErrors(t *testing.T) {
	g := rng.New(2)
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0)}
	g2 := graph.NewBuilder(2).Build()
	g3 := graph.NewBuilder(3).Build()
	if _, err := MeasureStretch(g2, g3, pos, []int32{0, 1}, 2, 5, 100, g); err == nil {
		t.Error("mismatched graphs accepted")
	}
	if _, err := MeasureStretch(g2, g2, pos, []int32{0}, 2, 5, 100, g); err == nil {
		t.Error("single candidate accepted")
	}
	// Disconnected graph: no pairs can be sampled.
	if _, err := MeasureStretch(g2, g2, pos, []int32{0, 1}, 2, 5, 100, g); err == nil {
		t.Error("no-connected-pairs case should error")
	}
}

func TestTotalEdgePower(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(3, 0)}
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1) // length 1
	b.AddEdge(1, 2) // length 2
	g := b.Build()
	if got := TotalEdgePower(g, pos, 2); got != 1+4 {
		t.Errorf("TotalEdgePower = %v", got)
	}
	if got := TotalEdgePower(g, pos, 3); got != 1+8 {
		t.Errorf("TotalEdgePower β=3 = %v", got)
	}
}

func TestIdenticalGraphsHaveUnitStretch(t *testing.T) {
	g := rng.New(3)
	pts := pointprocess.Poisson(geom.Box(8, 8), 3, g)
	udg := rgg.UDG(pts, 1.0)
	members, _ := graph.LargestComponent(udg.CSR)
	if len(members) < 5 {
		t.Skip("sparse realization")
	}
	samples, err := MeasureStretch(udg.CSR, udg.CSR, pts, members, 2, 20, 2000, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if math.Abs(s.PowerStretch-1) > 1e-9 || math.Abs(s.DistStretch-1) > 1e-9 {
			t.Fatalf("self-comparison stretch != 1: %+v", s)
		}
	}
}
