package power

import (
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/parallel"
)

// Pair is one (source, target) measurement request for Measurer.Pairs.
// U and V index the position slice; U == V pairs are legal but degenerate
// (zero distances) — samplers filter them before batching.
type Pair struct{ U, V int32 }

// BatchSpec selects which quantities the engine computes per pair.
type BatchSpec struct {
	// Beta is the path-loss exponent for the power fields (PowerSub,
	// PowerBase, PowerStretch). Power runs are skipped when Beta <= 0 and
	// those fields stay zero.
	Beta float64
	// Hops additionally computes BFS hop counts in the subgraph
	// (StretchSample.Hops; −1 for unreachable targets).
	Hops bool
}

// Measurer is the batched stretch/power measurement engine. It precomputes
// per-edge weight slabs — Euclidean lengths and, when Beta > 0, d^β powers,
// aligned with each graph's CSR adjacency — once at construction, so every
// subsequent shortest-path sweep is a pure array-indexed traversal with no
// math.Pow or sqrt per edge relaxation. Samplers that measure in rounds
// (MeasureStretch, core.SampleRepStretch) build one Measurer and reuse it
// across rounds.
type Measurer struct {
	sub, base *graph.CSR
	pos       []geom.Point
	spec      BatchSpec
	// Per-Adj edge weights: [graph][kind] with kind 0 = Euclidean,
	// kind 1 = power (nil when Beta <= 0). base slots nil when base is nil.
	wSubD, wSubP, wBaseD, wBaseP []float64
}

// NewMeasurer builds the engine for a subgraph, an optional base graph
// (nil skips all base-side fields) and a measurement spec. base, when
// non-nil, must have the same vertex count as sub. The weight slabs are
// filled in parallel with deterministic content (a pure function of the
// graphs and positions).
func NewMeasurer(sub, base *graph.CSR, pos []geom.Point, spec BatchSpec) *Measurer {
	return NewMeasurerCached(sub, base, pos, spec, nil)
}

// NewMeasurerCached is NewMeasurer with weight-slab memoization: slabs
// (nil = no caching) serves each (graph, β) slab from cache, so measurers
// sharing a base graph — the topology baselines of E14, the β sweep of E11
// — fill the shared slabs once instead of once per measurer. The slabs are
// read-only to the Measurer, so sharing is safe.
func NewMeasurerCached(sub, base *graph.CSR, pos []geom.Point, spec BatchSpec, slabs *SlabCache) *Measurer {
	m := &Measurer{sub: sub, base: base, pos: pos, spec: spec}
	m.wSubD = slabs.weights(sub, pos, 0)
	if spec.Beta > 0 {
		m.wSubP = slabs.weights(sub, pos, spec.Beta)
	}
	if base != nil {
		m.wBaseD = slabs.weights(base, pos, 0)
		if spec.Beta > 0 {
			m.wBaseP = slabs.weights(base, pos, spec.Beta)
		}
	}
	return m
}

// edgeWeights fills the per-Adj weight slab for one graph: Euclidean edge
// length for beta <= 0, d^beta otherwise.
func edgeWeights(g *graph.CSR, pos []geom.Point, beta float64) []float64 {
	w := make([]float64, len(g.Adj))
	parallel.ForShard(g.N, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			for i := g.Start[u]; i < g.Start[u+1]; i++ {
				d := pos[u].Dist(pos[g.Adj[i]])
				if beta > 0 {
					w[i] = math.Pow(d, beta)
				} else {
					w[i] = d
				}
			}
		}
	})
	return w
}

// Pairs computes a StretchSample for every requested pair, in pair order,
// by grouping the pairs by source vertex and running ONE buffered Dijkstra
// per (source, weight slab) — instead of one point-to-point run per pair —
// so a source sampled with k targets costs a single sweep for all k.
// Sources fan out across cores via parallel.Collect with per-shard
// DijkstraScratch and distance buffers, so the result is deterministic at
// any GOMAXPROCS (the output depends only on the inputs, never on worker
// count or scheduling).
//
// Unreachable targets yield +Inf lengths (and Hops −1); callers filter
// them exactly as they would filter a +Inf DijkstraTo result.
func (m *Measurer) Pairs(pairs []Pair) []StretchSample {
	if len(pairs) == 0 {
		return nil
	}
	// Group pair indices by source: sort (U, index) keys so each source's
	// targets are contiguous, with original pair order preserved inside a
	// group (the index low bits make the sort total and stable).
	keys := make([]uint64, len(pairs))
	for i, p := range pairs {
		keys[i] = uint64(uint32(p.U))<<32 | uint64(uint32(i))
	}
	slices.Sort(keys)
	// groupStart[k] is the offset in keys of the k-th distinct source.
	groupStart := make([]int32, 0, len(pairs)+1)
	for i := range keys {
		if i == 0 || keys[i]>>32 != keys[i-1]>>32 {
			groupStart = append(groupStart, int32(i))
		}
	}
	groupStart = append(groupStart, int32(len(keys)))
	nGroups := len(groupStart) - 1

	type indexed struct {
		idx int32
		s   StretchSample
	}
	// Grain 1: every source group is a full Dijkstra sweep (or four), far
	// heavier than the per-shard scratch it allocates, so each source gets
	// its own shard and sources spread across all cores even for the small
	// group counts the samplers produce.
	results := parallel.CollectGrain(nGroups, 1, func(lo, hi int, out []indexed) []indexed {
		var scratch graph.DijkstraScratch
		var bfsScratch graph.PathScratch
		var dSub, dBase, pSub, pBase []float64
		var hop []int32
		for k := lo; k < hi; k++ {
			g0, g1 := groupStart[k], groupStart[k+1]
			src := int32(keys[g0] >> 32)
			dSub = graph.DijkstraEdgesInto(m.sub, src, m.wSubD, dSub, &scratch)
			if m.base != nil {
				dBase = graph.DijkstraEdgesInto(m.base, src, m.wBaseD, dBase, &scratch)
			}
			if m.wSubP != nil {
				pSub = graph.DijkstraEdgesInto(m.sub, src, m.wSubP, pSub, &scratch)
				if m.base != nil {
					pBase = graph.DijkstraEdgesInto(m.base, src, m.wBaseP, pBase, &scratch)
				}
			}
			if m.spec.Hops {
				hop = graph.BFSInto(m.sub, src, hop, &bfsScratch)
			}
			for g := g0; g < g1; g++ {
				idx := int32(uint32(keys[g]))
				dst := pairs[idx].V
				s := StretchSample{
					U:      src,
					V:      dst,
					Euclid: m.pos[src].Dist(m.pos[dst]),
					SubLen: dSub[dst],
				}
				if m.spec.Hops {
					s.Hops = int(hop[dst])
				}
				if m.wSubP != nil {
					s.PowerSub = pSub[dst]
				}
				if m.base != nil {
					s.BaseLen = dBase[dst]
					switch {
					case math.IsInf(s.SubLen, 1) || math.IsInf(s.BaseLen, 1):
						s.DistStretch = math.Inf(1)
					case s.BaseLen > 0:
						s.DistStretch = s.SubLen / s.BaseLen
					default:
						s.DistStretch = 1
					}
					if m.wSubP != nil {
						s.PowerBase = pBase[dst]
						if s.PowerBase > 0 && !math.IsInf(s.PowerBase, 1) &&
							!math.IsInf(s.PowerSub, 1) {
							s.PowerStretch = s.PowerSub / s.PowerBase
						} else if math.IsInf(s.PowerSub, 1) || math.IsInf(s.PowerBase, 1) {
							s.PowerStretch = math.Inf(1)
						}
					}
				}
				out = append(out, indexed{idx: idx, s: s})
			}
		}
		return out
	})

	out := make([]StretchSample, len(pairs))
	for _, r := range results {
		out[r.idx] = r.s
	}
	return out
}

// MeasurePairs is the one-shot form of the engine: build a Measurer, run a
// single batch. Callers measuring in rounds over the same graphs should
// hold a Measurer instead to reuse the precomputed weight slabs.
func MeasurePairs(sub, base *graph.CSR, pos []geom.Point, pairs []Pair, spec BatchSpec) []StretchSample {
	if len(pairs) == 0 {
		return nil
	}
	return NewMeasurer(sub, base, pos, spec).Pairs(pairs)
}
