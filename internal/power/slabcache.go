package power

import (
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/graph"
)

// SlabCache memoizes Measurer edge-weight slabs per (graph, β): the
// ROADMAP's measurement-side batching item. A weight slab is a pure
// function of a graph's CSR adjacency and the vertex positions it was built
// over, so baselines sharing a base graph — the seven E14 structures all
// measured against one UDG base, or the four E11 β sweeps over one SENS
// subgraph — reuse one Euclidean slab and one power slab per β instead of
// refilling len(Adj) floats per Measurer.
//
// Keys are graph identities (the *CSR pointer), not content hashes: the
// scenario cache already guarantees one CSR per logical graph, and a
// pointer key makes lookups free. Callers must pass the position slice the
// graph was built over — the cache trusts the (graph, positions) pairing.
//
// A cache built with NewSlabCacheLRU is size-bounded: when the entry count
// would exceed the bound, the least-recently-used slab is evicted. This is
// what lets long-lived processes — the serving daemon measuring many
// (snapshot, β) combinations over weeks — hold a slab cache without
// unbounded growth; batch suite runs keep the historical unbounded
// NewSlabCache. Eviction only drops the cache's reference: a Measurer
// already holding an evicted slab keeps using it safely (slabs are
// read-only by contract), and a later lookup simply rebuilds.
//
// A nil *SlabCache is valid and simply builds every slab fresh.
type SlabCache struct {
	mu    sync.Mutex
	limit int // max entries; 0 = unbounded
	slabs map[slabKey]*slabEntry
	// Intrusive LRU list over the entries, most-recent at head. Only
	// maintained when limit > 0.
	head, tail *slabEntry
	hits       int64
	misses     int64
	evictions  int64
}

type slabKey struct {
	g    *graph.CSR
	beta uint64 // Float64bits(β); 0-weight (Euclidean) slabs use β = 0
}

// slabEntry fills at most once even under concurrent first lookups.
type slabEntry struct {
	once sync.Once
	w    []float64
	// LRU bookkeeping (guarded by SlabCache.mu).
	key        slabKey
	prev, next *slabEntry
}

// NewSlabCache returns an empty, unbounded slab cache — the batch-suite
// configuration, where the working set is one suite run and bounded by
// construction.
func NewSlabCache() *SlabCache {
	return &SlabCache{slabs: make(map[slabKey]*slabEntry)}
}

// NewSlabCacheLRU returns an empty slab cache holding at most maxEntries
// slabs, evicting least-recently-used entries beyond that. maxEntries <= 0
// means unbounded (identical to NewSlabCache).
func NewSlabCacheLRU(maxEntries int) *SlabCache {
	c := NewSlabCache()
	if maxEntries > 0 {
		c.limit = maxEntries
	}
	return c
}

// Stats returns (hits, misses); misses count slab builds.
func (c *SlabCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// SlabCacheStats is a point-in-time snapshot of the cache counters.
type SlabCacheStats struct {
	Hits      int64 // lookups served from an existing entry
	Misses    int64 // lookups that created the entry (== slab builds)
	Evictions int64 // entries dropped by the LRU bound
	Entries   int   // entries currently held
	Limit     int   // configured bound (0 = unbounded)
}

// Counters returns the full counter snapshot, including evictions and the
// current entry count. A nil cache reports zeros.
func (c *SlabCache) Counters() SlabCacheStats {
	if c == nil {
		return SlabCacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return SlabCacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Entries: len(c.slabs), Limit: c.limit,
	}
}

// moveToFront makes e the most-recently-used entry. Caller holds mu.
func (c *SlabCache) moveToFront(e *slabEntry) {
	if c.head == e {
		return
	}
	c.unlink(e)
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list. Caller holds mu.
func (c *SlabCache) unlink(e *slabEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if c.head == e {
		c.head = e.next
	}
	if c.tail == e {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// weights returns the weight slab for (g, beta), building and caching it on
// first use. beta <= 0 selects the Euclidean slab. Safe for concurrent use;
// the slab is shared, so callers must treat it as read-only (Measurer
// does).
func (c *SlabCache) weights(g *graph.CSR, pos []geom.Point, beta float64) []float64 {
	if c == nil {
		return edgeWeights(g, pos, beta)
	}
	if beta < 0 {
		beta = 0
	}
	key := slabKey{g: g, beta: math.Float64bits(beta)}
	c.mu.Lock()
	e, ok := c.slabs[key]
	if !ok {
		e = &slabEntry{key: key}
		c.slabs[key] = e
		c.misses++
		if c.limit > 0 {
			c.moveToFront(e)
			// Evict from the cold end until the bound holds; the entry just
			// inserted is at the head and never the victim (limit >= 1).
			for len(c.slabs) > c.limit {
				victim := c.tail
				c.unlink(victim)
				delete(c.slabs, victim.key)
				c.evictions++
			}
		}
	} else {
		c.hits++
		if c.limit > 0 {
			c.moveToFront(e)
		}
	}
	c.mu.Unlock()
	// Fill outside the lock so distinct slabs build in parallel; the entry's
	// once guarantees each slab fills at most once even when concurrent
	// first lookups race. An entry evicted while filling still completes and
	// serves its waiters — eviction only forgets the cache's reference.
	e.once.Do(func() { e.w = edgeWeights(g, pos, beta) })
	return e.w
}
