package power

import (
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/graph"
)

// SlabCache memoizes Measurer edge-weight slabs per (graph, β): the
// ROADMAP's measurement-side batching item. A weight slab is a pure
// function of a graph's CSR adjacency and the vertex positions it was built
// over, so baselines sharing a base graph — the seven E14 structures all
// measured against one UDG base, or the four E11 β sweeps over one SENS
// subgraph — reuse one Euclidean slab and one power slab per β instead of
// refilling len(Adj) floats per Measurer.
//
// Keys are graph identities (the *CSR pointer), not content hashes: the
// scenario cache already guarantees one CSR per logical graph, and a
// pointer key makes lookups free. Callers must pass the position slice the
// graph was built over — the cache trusts the (graph, positions) pairing.
//
// A nil *SlabCache is valid and simply builds every slab fresh.
type SlabCache struct {
	mu     sync.Mutex
	slabs  map[slabKey]*slabEntry
	hits   int64
	misses int64
}

type slabKey struct {
	g    *graph.CSR
	beta uint64 // Float64bits(β); 0-weight (Euclidean) slabs use β = 0
}

// slabEntry fills at most once even under concurrent first lookups.
type slabEntry struct {
	once sync.Once
	w    []float64
}

// NewSlabCache returns an empty slab cache.
func NewSlabCache() *SlabCache {
	return &SlabCache{slabs: make(map[slabKey]*slabEntry)}
}

// Stats returns (hits, misses); misses count slab builds.
func (c *SlabCache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// weights returns the weight slab for (g, beta), building and caching it on
// first use. beta <= 0 selects the Euclidean slab. Safe for concurrent use;
// the slab is shared, so callers must treat it as read-only (Measurer
// does).
func (c *SlabCache) weights(g *graph.CSR, pos []geom.Point, beta float64) []float64 {
	if c == nil {
		return edgeWeights(g, pos, beta)
	}
	if beta < 0 {
		beta = 0
	}
	key := slabKey{g: g, beta: math.Float64bits(beta)}
	c.mu.Lock()
	e, ok := c.slabs[key]
	if !ok {
		e = &slabEntry{}
		c.slabs[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	// Fill outside the lock so distinct slabs build in parallel; the entry's
	// once guarantees each slab fills at most once even when concurrent
	// first lookups race.
	e.once.Do(func() { e.w = edgeWeights(g, pos, beta) })
	return e.w
}
