package power

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
)

// batchFixture builds a base UDG and a sparser sub-UDG with some
// disconnected vertex pairs, plus a deterministic pair sample over ALL
// vertices (connected or not) so every engine path is exercised.
func batchFixture(t *testing.T) (sub, base *rgg.Geometric, pts []geom.Point, pairs []Pair) {
	t.Helper()
	g := rng.New(7)
	pts = pointprocess.Poisson(geom.Box(10, 10), 4, g)
	if len(pts) < 50 {
		t.Skip("sparse realization")
	}
	base = rgg.UDG(pts, 1.0)
	sub = rgg.UDG(pts, 0.55)
	n := int32(len(pts))
	for i := 0; i < 80; i++ {
		u, v := g.Int32N(n), g.Int32N(n)
		if u == v {
			continue
		}
		pairs = append(pairs, Pair{U: u, V: v})
	}
	return sub, base, pts, pairs
}

// TestMeasurePairsMatchesNaive checks the batched source-grouped engine
// against the naive reference: four independent DijkstraTo runs and a BFS
// per pair, exactly what MeasureStretch did before batching.
func TestMeasurePairsMatchesNaive(t *testing.T) {
	sub, base, pts, pairs := batchFixture(t)
	const beta = 3.0
	out := MeasurePairs(sub.CSR, base.CSR, pts, pairs, BatchSpec{Beta: beta, Hops: true})
	if len(out) != len(pairs) {
		t.Fatalf("got %d samples for %d pairs", len(out), len(pairs))
	}
	dw := graph.EuclideanWeight(pts)
	pw := graph.PowerWeight(pts, beta)
	var hops []int32
	sawDisconnected := false
	for i, p := range pairs {
		s := out[i]
		if s.U != p.U || s.V != p.V {
			t.Fatalf("pair %d: sample is for (%d, %d), want (%d, %d)", i, s.U, s.V, p.U, p.V)
		}
		wantSub := graph.DijkstraTo(sub.CSR, p.U, p.V, dw)
		wantBase := graph.DijkstraTo(base.CSR, p.U, p.V, dw)
		wantPSub := graph.DijkstraTo(sub.CSR, p.U, p.V, pw)
		wantPBase := graph.DijkstraTo(base.CSR, p.U, p.V, pw)
		if !sameDist(s.SubLen, wantSub) || !sameDist(s.BaseLen, wantBase) ||
			!sameDist(s.PowerSub, wantPSub) || !sameDist(s.PowerBase, wantPBase) {
			t.Fatalf("pair (%d, %d): batched %+v vs naive sub=%v base=%v psub=%v pbase=%v",
				p.U, p.V, s, wantSub, wantBase, wantPSub, wantPBase)
		}
		hops = graph.BFS(sub.CSR, p.U, hops)
		if s.Hops != int(hops[p.V]) {
			t.Fatalf("pair (%d, %d): hops %d want %d", p.U, p.V, s.Hops, hops[p.V])
		}
		if math.IsInf(wantSub, 1) {
			sawDisconnected = true
			if !math.IsInf(s.DistStretch, 1) {
				t.Fatalf("disconnected pair should report +Inf stretch: %+v", s)
			}
		} else if wantBase > 0 && !sameDist(s.DistStretch, wantSub/wantBase) {
			t.Fatalf("pair (%d, %d): DistStretch %v want %v", p.U, p.V, s.DistStretch, wantSub/wantBase)
		}
		if !math.IsInf(wantPSub, 1) && wantPBase > 0 &&
			!sameDist(s.PowerStretch, wantPSub/wantPBase) {
			t.Fatalf("pair (%d, %d): PowerStretch %v want %v", p.U, p.V, s.PowerStretch, wantPSub/wantPBase)
		}
	}
	if !sawDisconnected {
		t.Log("fixture had no disconnected pair; +Inf path unexercised this seed")
	}
}

func sameDist(got, want float64) bool {
	if math.IsInf(got, 1) || math.IsInf(want, 1) {
		return math.IsInf(got, 1) && math.IsInf(want, 1)
	}
	return math.Abs(got-want) <= 1e-9*(1+math.Abs(want))
}

// TestMeasurePairsSubOnly covers the base == nil / Beta <= 0 half of the
// engine (the E08 configuration): base and power fields must stay zero.
func TestMeasurePairsSubOnly(t *testing.T) {
	sub, _, pts, pairs := batchFixture(t)
	dw := graph.EuclideanWeight(pts)
	out := MeasurePairs(sub.CSR, nil, pts, pairs, BatchSpec{Hops: true})
	for i, p := range pairs {
		s := out[i]
		if !sameDist(s.SubLen, graph.DijkstraTo(sub.CSR, p.U, p.V, dw)) {
			t.Fatalf("pair (%d, %d): SubLen %v", p.U, p.V, s.SubLen)
		}
		if s.BaseLen != 0 || s.PowerSub != 0 || s.PowerBase != 0 ||
			s.DistStretch != 0 || s.PowerStretch != 0 {
			t.Fatalf("sub-only sample has base/power fields set: %+v", s)
		}
	}
	if got := MeasurePairs(sub.CSR, nil, pts, nil, BatchSpec{}); got != nil {
		t.Errorf("empty pair list should yield nil, got %v", got)
	}
}

// TestMeasurePairsDeterministicAcrossGOMAXPROCS pins the engine's
// determinism contract: the fan-out over sources must produce identical
// samples at any worker count.
func TestMeasurePairsDeterministicAcrossGOMAXPROCS(t *testing.T) {
	sub, base, pts, pairs := batchFixture(t)
	spec := BatchSpec{Beta: 2, Hops: true}
	// 8 workers for the parallel leg even on a 1-CPU box: with grain-1
	// source shards this genuinely exercises the concurrent merge path.
	prev := runtime.GOMAXPROCS(8)
	parallelOut := MeasurePairs(sub.CSR, base.CSR, pts, pairs, spec)
	runtime.GOMAXPROCS(1)
	serialOut := MeasurePairs(sub.CSR, base.CSR, pts, pairs, spec)
	runtime.GOMAXPROCS(prev)
	if !reflect.DeepEqual(parallelOut, serialOut) {
		t.Fatal("MeasurePairs differs between GOMAXPROCS 1 and default")
	}
}

// TestMeasureStretchAllocsBounded is the allocation regression gate for the
// E11/E14 hot path: the batched engine with reused Dijkstra scratch must
// stay orders of magnitude below the per-pair DijkstraTo loop it replaced
// (which allocated a dist slab per call and boxed every heap push — ~2M
// allocs per E11 run at bench scale).
func TestMeasureStretchAllocsBounded(t *testing.T) {
	g := rng.New(9)
	pts := pointprocess.Poisson(geom.Box(12, 12), 8, g)
	base := rgg.UDG(pts, 1.0)
	sub := rgg.UDG(pts, 0.7)
	members, _ := graph.LargestComponent(sub.CSR)
	if len(members) < 100 {
		t.Skip("sparse realization")
	}
	const maxAllocs = 500
	if a := testing.AllocsPerRun(3, func() {
		if _, err := MeasureStretch(sub.CSR, base.CSR, pts, members, 3, 30, 1200, rng.New(5)); err != nil {
			t.Error(err)
		}
	}); a > maxAllocs {
		t.Errorf("MeasureStretch allocates %.0f/op for n=%d, want ≤ %d", a, len(pts), maxAllocs)
	}
}

// TestMeasureStretchDistanceOnly pins the beta <= 0 contract: distance
// stretch samples come back (power fields unset), not a spurious
// "no connected pairs" error from the power-side acceptance filter.
func TestMeasureStretchDistanceOnly(t *testing.T) {
	g := rng.New(11)
	pts := pointprocess.Poisson(geom.Box(8, 8), 4, g)
	base := rgg.UDG(pts, 1.0)
	sub := rgg.UDG(pts, 0.7)
	members, _ := graph.LargestComponent(sub.CSR)
	if len(members) < 20 {
		t.Skip("sparse realization")
	}
	samples, err := MeasureStretch(sub.CSR, base.CSR, pts, members, 0, 20, 800, rng.New(12))
	if err != nil {
		t.Fatalf("beta=0 measurement failed: %v", err)
	}
	for _, s := range samples {
		if s.DistStretch < 1-1e-9 || math.IsInf(s.DistStretch, 1) {
			t.Fatalf("bad distance stretch: %+v", s)
		}
		if s.PowerSub != 0 || s.PowerBase != 0 || s.PowerStretch != 0 {
			t.Fatalf("power fields set for beta=0: %+v", s)
		}
	}
}
