// Package power implements the radio energy model the paper uses to argue
// power efficiency: transmitting over an edge of Euclidean length d costs
// d^β with the path-loss exponent β ∈ [2, 5], and the power stretch of a
// subgraph H ⊆ G is the worst-case ratio of minimum path powers
// p_H(u, v) / p_G(u, v) (Li–Wan–Wang). Their Lemma 2 bounds the power
// stretch by δ^β where δ is the distance stretch — the relationship the E11
// experiment verifies empirically.
package power

import (
	"errors"
	"math"
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/graph"
)

// MinBeta and MaxBeta bound the path-loss exponent range of the model.
const (
	MinBeta = 2.0
	MaxBeta = 5.0
)

// EdgeCost returns d^β for one hop of length d.
func EdgeCost(d, beta float64) float64 { return math.Pow(d, beta) }

// PathCost returns the total power cost of a path given as vertex positions.
func PathCost(path []geom.Point, beta float64) float64 {
	var sum float64
	for i := 1; i < len(path); i++ {
		sum += EdgeCost(path[i-1].Dist(path[i]), beta)
	}
	return sum
}

// MinPathPower returns the minimum power to route from u to v in g under
// exponent beta (+Inf if disconnected).
func MinPathPower(g *graph.CSR, pos []geom.Point, u, v int32, beta float64) float64 {
	return graph.DijkstraTo(g, u, v, graph.PowerWeight(pos, beta))
}

// StretchSample is one (u, v) stretch/power measurement — the single sample
// shape shared by every stretch sampler in the repository (the E08 rep
// sampler in core wraps it with lattice data). Fields beyond U, V, Euclid
// and SubLen are populated only when the producing measurement asked for
// them (see BatchSpec).
type StretchSample struct {
	U, V         int32
	Euclid       float64 // straight-line distance d(u, v)
	SubLen       float64 // min path length in the subgraph
	BaseLen      float64 // min path length in the base graph
	PowerSub     float64 // min path power in the subgraph
	PowerBase    float64 // min path power in the base graph
	DistStretch  float64 // SubLen / BaseLen
	PowerStretch float64 // PowerSub / PowerBase
	Hops         int     // BFS hop count in the subgraph (−1 unreachable)
}

// EuclidStretch returns SubLen / Euclid — the paper's P2 stretch δ for this
// pair (the Euclidean distance lower-bounds any path).
func (s StretchSample) EuclidStretch() float64 {
	if s.Euclid == 0 {
		return 1
	}
	return s.SubLen / s.Euclid
}

// MeasureStretch samples vertex pairs (from the given candidate set, which
// must be connected in both graphs for a sample to count) and returns the
// power and distance stretch per pair. Pairs that are disconnected in
// either graph are skipped; sampling stops after maxAttempts regardless.
// beta <= 0 measures distance stretch only: the power fields of the
// returned samples stay zero (see BatchSpec.Beta).
//
// Measurement is batched: pairs are drawn with a source fanout (several
// random targets per random source, like the E08 rep sampler) and handed to
// a Measurer in rounds — one buffered Dijkstra sweep per source and weight
// covers all of that source's targets, instead of four point-to-point runs
// per pair — and connected pairs are accepted in draw order. All randomness
// is serial, so results are deterministic at any GOMAXPROCS.
func MeasureStretch(sub, base *graph.CSR, pos []geom.Point, candidates []int32,
	beta float64, pairs, maxAttempts int, rng *rand.Rand) ([]StretchSample, error) {
	return MeasureStretchCached(sub, base, pos, candidates, beta, pairs, maxAttempts, rng, nil)
}

// MeasureStretchCached is MeasureStretch with weight-slab memoization: the
// Measurer it builds pulls its per-edge weight slabs from slabs (nil = no
// caching), so repeated measurements against a shared graph — every E14
// baseline against one UDG base, every E11 β against one SENS subgraph —
// reuse the already-filled slabs.
func MeasureStretchCached(sub, base *graph.CSR, pos []geom.Point, candidates []int32,
	beta float64, pairs, maxAttempts int, rng *rand.Rand, slabs *SlabCache) ([]StretchSample, error) {
	if sub.N != base.N {
		return nil, errors.New("power: subgraph and base have different vertex counts")
	}
	if len(candidates) < 2 {
		return nil, errors.New("power: need at least two candidate vertices")
	}
	fanout := 8
	if pairs < fanout {
		fanout = pairs
	}
	var out []StretchSample
	var batch []Pair
	var m *Measurer
	for attempts := 0; attempts < maxAttempts && len(out) < pairs; {
		batch = batch[:0]
		for len(batch) < pairs-len(out) && attempts < maxAttempts {
			u := candidates[rng.IntN(len(candidates))]
			for f := 0; f < fanout && len(batch) < pairs-len(out) && attempts < maxAttempts; f++ {
				attempts++
				v := candidates[rng.IntN(len(candidates))]
				if u == v {
					continue
				}
				batch = append(batch, Pair{U: u, V: v})
			}
		}
		if m == nil {
			m = NewMeasurerCached(sub, base, pos, BatchSpec{Beta: beta}, slabs)
		}
		for _, s := range m.Pairs(batch) {
			if len(out) >= pairs {
				break
			}
			// Reject pairs disconnected in either graph (or degenerate,
			// zero-cost pairs); with beta <= 0 the power fields are unset, so
			// the equivalent distance-side filter applies.
			if beta > 0 {
				if math.IsInf(s.PowerSub, 1) || math.IsInf(s.PowerBase, 1) || s.PowerBase == 0 {
					continue
				}
			} else if math.IsInf(s.SubLen, 1) || math.IsInf(s.BaseLen, 1) || s.BaseLen == 0 {
				continue
			}
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, errors.New("power: no connected pairs sampled")
	}
	return out, nil
}

// LiWanWangBound returns the Lemma-2 style upper bound δ^β for a stretch
// factor δ.
//
// Scope note (matters for how experiments check it): the valid per-pair
// inequality for a subnetwork H with Euclidean stretch factor δ (the
// paper's P2: path length ≤ δ × straight-line distance) is
//
//	p_H(u, v) ≤ δ^β · d(u, v)^β,
//
// because the minimum-power path costs at most the power of the
// minimum-length path, which costs at most (its length)^β. The ratio
// against the dense base graph's optimal power p_G(u, v) is NOT bounded by
// the per-pair length-stretch^β: the base can split a route into many short
// hops whose power is far below length^β, so p_H/p_G can exceed
// (d_H/d_G)^β. Li–Wan–Wang's Lemma 2 applies to spanning subgraphs on the
// same vertex set via an edge-by-edge argument; SENS keeps only a subset of
// nodes, so the Euclidean form above is the one the paper's §1 claim
// reduces to.
func LiWanWangBound(distStretch, beta float64) float64 {
	return math.Pow(distStretch, beta)
}

// TotalEdgePower returns the sum of d^β over all edges of the graph — the
// network-wide maintenance cost of keeping every link up, a standard
// topology-control comparison metric.
func TotalEdgePower(g *graph.CSR, pos []geom.Point, beta float64) float64 {
	var sum float64
	for u := int32(0); int(u) < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				sum += EdgeCost(pos[u].Dist(pos[v]), beta)
			}
		}
	}
	return sum
}
