// Package power implements the radio energy model the paper uses to argue
// power efficiency: transmitting over an edge of Euclidean length d costs
// d^β with the path-loss exponent β ∈ [2, 5], and the power stretch of a
// subgraph H ⊆ G is the worst-case ratio of minimum path powers
// p_H(u, v) / p_G(u, v) (Li–Wan–Wang). Their Lemma 2 bounds the power
// stretch by δ^β where δ is the distance stretch — the relationship the E11
// experiment verifies empirically.
package power

import (
	"errors"
	"math"
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/graph"
)

// MinBeta and MaxBeta bound the path-loss exponent range of the model.
const (
	MinBeta = 2.0
	MaxBeta = 5.0
)

// EdgeCost returns d^β for one hop of length d.
func EdgeCost(d, beta float64) float64 { return math.Pow(d, beta) }

// PathCost returns the total power cost of a path given as vertex positions.
func PathCost(path []geom.Point, beta float64) float64 {
	var sum float64
	for i := 1; i < len(path); i++ {
		sum += EdgeCost(path[i-1].Dist(path[i]), beta)
	}
	return sum
}

// MinPathPower returns the minimum power to route from u to v in g under
// exponent beta (+Inf if disconnected).
func MinPathPower(g *graph.CSR, pos []geom.Point, u, v int32, beta float64) float64 {
	return graph.DijkstraTo(g, u, v, graph.PowerWeight(pos, beta))
}

// StretchSample is one (u, v) power-ratio measurement.
type StretchSample struct {
	U, V         int32
	Euclid       float64 // straight-line distance d(u, v)
	SubLen       float64 // min path length in the subgraph
	BaseLen      float64 // min path length in the base graph
	PowerSub     float64 // min path power in the subgraph
	PowerBase    float64 // min path power in the base graph
	DistStretch  float64 // SubLen / BaseLen
	PowerStretch float64 // PowerSub / PowerBase
}

// EuclidStretch returns SubLen / Euclid — the paper's P2 stretch δ for this
// pair (the Euclidean distance lower-bounds any path).
func (s StretchSample) EuclidStretch() float64 {
	if s.Euclid == 0 {
		return 1
	}
	return s.SubLen / s.Euclid
}

// MeasureStretch samples vertex pairs (from the given candidate set, which
// must be connected in both graphs for a sample to count) and returns the
// power and distance stretch per pair. Pairs that are disconnected in
// either graph are skipped; sampling stops after maxAttempts regardless.
func MeasureStretch(sub, base *graph.CSR, pos []geom.Point, candidates []int32,
	beta float64, pairs, maxAttempts int, rng *rand.Rand) ([]StretchSample, error) {
	if sub.N != base.N {
		return nil, errors.New("power: subgraph and base have different vertex counts")
	}
	if len(candidates) < 2 {
		return nil, errors.New("power: need at least two candidate vertices")
	}
	var out []StretchSample
	dw := graph.EuclideanWeight(pos)
	pw := graph.PowerWeight(pos, beta)
	for attempt := 0; attempt < maxAttempts && len(out) < pairs; attempt++ {
		u := candidates[rng.IntN(len(candidates))]
		v := candidates[rng.IntN(len(candidates))]
		if u == v {
			continue
		}
		pSub := graph.DijkstraTo(sub, u, v, pw)
		if math.IsInf(pSub, 1) {
			continue
		}
		pBase := graph.DijkstraTo(base, u, v, pw)
		if math.IsInf(pBase, 1) || pBase == 0 {
			continue
		}
		dSub := graph.DijkstraTo(sub, u, v, dw)
		dBase := graph.DijkstraTo(base, u, v, dw)
		s := StretchSample{
			U: u, V: v,
			Euclid:       pos[u].Dist(pos[v]),
			SubLen:       dSub,
			BaseLen:      dBase,
			PowerSub:     pSub,
			PowerBase:    pBase,
			PowerStretch: pSub / pBase,
		}
		if dBase > 0 {
			s.DistStretch = dSub / dBase
		} else {
			s.DistStretch = 1
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, errors.New("power: no connected pairs sampled")
	}
	return out, nil
}

// LiWanWangBound returns the Lemma-2 style upper bound δ^β for a stretch
// factor δ.
//
// Scope note (matters for how experiments check it): the valid per-pair
// inequality for a subnetwork H with Euclidean stretch factor δ (the
// paper's P2: path length ≤ δ × straight-line distance) is
//
//	p_H(u, v) ≤ δ^β · d(u, v)^β,
//
// because the minimum-power path costs at most the power of the
// minimum-length path, which costs at most (its length)^β. The ratio
// against the dense base graph's optimal power p_G(u, v) is NOT bounded by
// the per-pair length-stretch^β: the base can split a route into many short
// hops whose power is far below length^β, so p_H/p_G can exceed
// (d_H/d_G)^β. Li–Wan–Wang's Lemma 2 applies to spanning subgraphs on the
// same vertex set via an edge-by-edge argument; SENS keeps only a subset of
// nodes, so the Euclidean form above is the one the paper's §1 claim
// reduces to.
func LiWanWangBound(distStretch, beta float64) float64 {
	return math.Pow(distStretch, beta)
}

// TotalEdgePower returns the sum of d^β over all edges of the graph — the
// network-wide maintenance cost of keeping every link up, a standard
// topology-control comparison metric.
func TotalEdgePower(g *graph.CSR, pos []geom.Point, beta float64) float64 {
	var sum float64
	for u := int32(0); int(u) < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u {
				sum += EdgeCost(pos[u].Dist(pos[v]), beta)
			}
		}
	}
	return sum
}
