package power

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
)

// TestSlabCacheReuse pins the memoization contract: two measurers over the
// same graphs pull the SAME slab slices (pointer equality), each slab is
// built exactly once, and the cached measurer produces identical samples to
// an uncached one.
func TestSlabCacheReuse(t *testing.T) {
	sub, base, pts, pairs := batchFixture(t)
	cache := NewSlabCache()
	spec := BatchSpec{Beta: 2}

	m1 := NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	if _, misses := cache.Stats(); misses != 4 {
		t.Fatalf("first measurer built %d slabs, want 4 (subD, subP, baseD, baseP)", misses)
	}
	m2 := NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	hits, misses := cache.Stats()
	if misses != 4 {
		t.Errorf("second measurer rebuilt slabs: %d misses, want still 4", misses)
	}
	if hits != 4 {
		t.Errorf("second measurer hit %d slabs, want 4", hits)
	}
	if &m1.wSubD[0] != &m2.wSubD[0] || &m1.wBaseP[0] != &m2.wBaseP[0] {
		t.Error("cached measurers do not share slab storage")
	}

	// A different β shares the Euclidean slabs but builds new power slabs.
	m3 := NewMeasurerCached(sub.CSR, base.CSR, pts, BatchSpec{Beta: 4}, cache)
	if _, misses := cache.Stats(); misses != 6 {
		t.Errorf("β=4 measurer should add exactly 2 power slabs: %d misses, want 6", misses)
	}
	if &m3.wSubD[0] != &m1.wSubD[0] {
		t.Error("β=4 measurer rebuilt the shared Euclidean slab")
	}

	plain := MeasurePairs(sub.CSR, base.CSR, pts, pairs, spec)
	cached := m2.Pairs(pairs)
	if !reflect.DeepEqual(plain, cached) {
		t.Error("cached measurer produced different samples than uncached")
	}
}

// TestMeasurerWarmSlabAllocsBounded is the allocation gate for the slab
// memoization: once the cache is warm, constructing another Measurer over
// the same graphs must cost O(1) allocations (the struct and cache
// bookkeeping), not the four len(Adj)-sized slab fills an uncached
// construction pays.
func TestMeasurerWarmSlabAllocsBounded(t *testing.T) {
	sub, base, pts, _ := batchFixture(t)
	cache := NewSlabCache()
	spec := BatchSpec{Beta: 2}
	NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache) // warm
	const maxAllocs = 8
	if a := testing.AllocsPerRun(100, func() {
		NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	}); a > maxAllocs {
		t.Errorf("warm-cache measurer construction allocates %.1f/op, want ≤ %d", a, maxAllocs)
	}
}

// BenchmarkMeasurerWarmSlabs measures measurer construction against a warm
// slab cache — the per-baseline cost E14 pays after the first structure.
func BenchmarkMeasurerWarmSlabs(b *testing.B) {
	g := rng.New(7)
	pts := pointprocess.Poisson(geom.Box(10, 10), 4, g)
	base := rgg.UDG(pts, 1.0)
	sub := rgg.UDG(pts, 0.55)
	cache := NewSlabCache()
	spec := BatchSpec{Beta: 2}
	NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	}
}

// TestSlabCacheNilSafe: a nil cache builds fresh slabs and never panics —
// the compatibility path every pre-existing caller takes.
func TestSlabCacheNilSafe(t *testing.T) {
	sub, base, pts, pairs := batchFixture(t)
	var c *SlabCache
	m := NewMeasurerCached(sub.CSR, base.CSR, pts, BatchSpec{Beta: 2}, c)
	if len(m.Pairs(pairs)) != len(pairs) {
		t.Fatal("nil-cache measurer broken")
	}
	if h, ms := c.Stats(); h != 0 || ms != 0 {
		t.Errorf("nil cache reports stats %d/%d", h, ms)
	}
}

// TestSlabCacheLRUEviction pins the size-bounded mode end to end: a
// limit-2 cache holding slabs for three graphs evicts in strict
// least-recently-used order, the hit/miss/evict counters match the exact
// access history, and an evicted slab rebuilds (fresh storage) while a
// surviving slab keeps its storage across the eviction.
func TestSlabCacheLRUEviction(t *testing.T) {
	g := rng.New(11)
	pts := pointprocess.Poisson(geom.Box(6, 6), 4, g)
	g1 := rgg.UDG(pts, 1.0)
	g2 := rgg.UDG(pts, 0.8)
	g3 := rgg.UDG(pts, 0.6)

	cache := NewSlabCacheLRU(2)
	w1 := cache.weights(g1.CSR, pts, 0)  // miss: {g1}
	cache.weights(g2.CSR, pts, 0)        // miss: {g2, g1}
	w1b := cache.weights(g1.CSR, pts, 0) // hit, g1 to front: {g1, g2}
	if &w1[0] != &w1b[0] {
		t.Fatal("hit returned different slab storage")
	}
	cache.weights(g3.CSR, pts, 0) // miss, evicts LRU g2: {g3, g1}
	st := cache.Counters()
	if st.Hits != 1 || st.Misses != 3 || st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after first eviction: %+v, want 1 hit / 3 misses / 1 eviction / 2 entries", st)
	}

	// g2 was evicted: looking it up again is a miss that rebuilds (and
	// evicts g1, the new LRU). g3 — recently used — must survive both.
	w3 := cache.weights(g3.CSR, pts, 0)  // hit: {g3, g1}
	cache.weights(g2.CSR, pts, 0)        // miss, evicts g1: {g2, g3}
	w3b := cache.weights(g3.CSR, pts, 0) // hit
	if &w3[0] != &w3b[0] {
		t.Fatal("surviving entry lost its storage across evictions")
	}
	st = cache.Counters()
	if st.Hits != 3 || st.Misses != 4 || st.Evictions != 2 || st.Entries != 2 {
		t.Fatalf("final counters %+v, want 3 hits / 4 misses / 2 evictions / 2 entries", st)
	}
	if st.Limit != 2 {
		t.Errorf("Limit = %d, want 2", st.Limit)
	}

	// The unbounded constructors never evict.
	if got := NewSlabCache().Counters().Limit; got != 0 {
		t.Errorf("NewSlabCache limit = %d, want 0 (unbounded)", got)
	}
	if got := NewSlabCacheLRU(0).Counters().Limit; got != 0 {
		t.Errorf("NewSlabCacheLRU(0) limit = %d, want 0 (unbounded)", got)
	}
}

// TestSlabCacheLRUConcurrent hammers a tiny bounded cache from many
// goroutines over more keys than the bound: no panics, no lost updates
// (every return is a full slab), and the entry count respects the limit.
func TestSlabCacheLRUConcurrent(t *testing.T) {
	g := rng.New(12)
	pts := pointprocess.Poisson(geom.Box(6, 6), 4, g)
	graphs := []*rgg.Geometric{
		rgg.UDG(pts, 1.0), rgg.UDG(pts, 0.8), rgg.UDG(pts, 0.6), rgg.UDG(pts, 0.4),
	}
	cache := NewSlabCacheLRU(2)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				gr := graphs[(w+i)%len(graphs)]
				slab := cache.weights(gr.CSR, pts, 2)
				if len(slab) != len(gr.Adj) {
					t.Errorf("slab has %d weights, graph has %d edges slots", len(slab), len(gr.Adj))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if st := cache.Counters(); st.Entries > 2 {
		t.Errorf("bounded cache holds %d entries, limit 2", st.Entries)
	}
}

// TestSlabCacheConcurrentOnce: concurrent first lookups of one key build
// the slab exactly once and all callers see the same slice.
func TestSlabCacheConcurrentOnce(t *testing.T) {
	g := rng.New(3)
	pts := pointprocess.Poisson(geom.Box(8, 8), 4, g)
	udg := rgg.UDG(pts, 1.0)
	cache := NewSlabCache()
	const workers = 8
	out := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = cache.weights(udg.CSR, pts, 2)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if &out[w][0] != &out[0][0] {
			t.Fatal("concurrent lookups returned distinct slabs")
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != workers-1 {
		t.Errorf("stats %d hits / %d misses, want %d / 1", hits, misses, workers-1)
	}
}
