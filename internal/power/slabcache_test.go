package power

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
)

// TestSlabCacheReuse pins the memoization contract: two measurers over the
// same graphs pull the SAME slab slices (pointer equality), each slab is
// built exactly once, and the cached measurer produces identical samples to
// an uncached one.
func TestSlabCacheReuse(t *testing.T) {
	sub, base, pts, pairs := batchFixture(t)
	cache := NewSlabCache()
	spec := BatchSpec{Beta: 2}

	m1 := NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	if _, misses := cache.Stats(); misses != 4 {
		t.Fatalf("first measurer built %d slabs, want 4 (subD, subP, baseD, baseP)", misses)
	}
	m2 := NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	hits, misses := cache.Stats()
	if misses != 4 {
		t.Errorf("second measurer rebuilt slabs: %d misses, want still 4", misses)
	}
	if hits != 4 {
		t.Errorf("second measurer hit %d slabs, want 4", hits)
	}
	if &m1.wSubD[0] != &m2.wSubD[0] || &m1.wBaseP[0] != &m2.wBaseP[0] {
		t.Error("cached measurers do not share slab storage")
	}

	// A different β shares the Euclidean slabs but builds new power slabs.
	m3 := NewMeasurerCached(sub.CSR, base.CSR, pts, BatchSpec{Beta: 4}, cache)
	if _, misses := cache.Stats(); misses != 6 {
		t.Errorf("β=4 measurer should add exactly 2 power slabs: %d misses, want 6", misses)
	}
	if &m3.wSubD[0] != &m1.wSubD[0] {
		t.Error("β=4 measurer rebuilt the shared Euclidean slab")
	}

	plain := MeasurePairs(sub.CSR, base.CSR, pts, pairs, spec)
	cached := m2.Pairs(pairs)
	if !reflect.DeepEqual(plain, cached) {
		t.Error("cached measurer produced different samples than uncached")
	}
}

// TestMeasurerWarmSlabAllocsBounded is the allocation gate for the slab
// memoization: once the cache is warm, constructing another Measurer over
// the same graphs must cost O(1) allocations (the struct and cache
// bookkeeping), not the four len(Adj)-sized slab fills an uncached
// construction pays.
func TestMeasurerWarmSlabAllocsBounded(t *testing.T) {
	sub, base, pts, _ := batchFixture(t)
	cache := NewSlabCache()
	spec := BatchSpec{Beta: 2}
	NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache) // warm
	const maxAllocs = 8
	if a := testing.AllocsPerRun(100, func() {
		NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	}); a > maxAllocs {
		t.Errorf("warm-cache measurer construction allocates %.1f/op, want ≤ %d", a, maxAllocs)
	}
}

// BenchmarkMeasurerWarmSlabs measures measurer construction against a warm
// slab cache — the per-baseline cost E14 pays after the first structure.
func BenchmarkMeasurerWarmSlabs(b *testing.B) {
	g := rng.New(7)
	pts := pointprocess.Poisson(geom.Box(10, 10), 4, g)
	base := rgg.UDG(pts, 1.0)
	sub := rgg.UDG(pts, 0.55)
	cache := NewSlabCache()
	spec := BatchSpec{Beta: 2}
	NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewMeasurerCached(sub.CSR, base.CSR, pts, spec, cache)
	}
}

// TestSlabCacheNilSafe: a nil cache builds fresh slabs and never panics —
// the compatibility path every pre-existing caller takes.
func TestSlabCacheNilSafe(t *testing.T) {
	sub, base, pts, pairs := batchFixture(t)
	var c *SlabCache
	m := NewMeasurerCached(sub.CSR, base.CSR, pts, BatchSpec{Beta: 2}, c)
	if len(m.Pairs(pairs)) != len(pairs) {
		t.Fatal("nil-cache measurer broken")
	}
	if h, ms := c.Stats(); h != 0 || ms != 0 {
		t.Errorf("nil cache reports stats %d/%d", h, ms)
	}
}

// TestSlabCacheConcurrentOnce: concurrent first lookups of one key build
// the slab exactly once and all callers see the same slice.
func TestSlabCacheConcurrentOnce(t *testing.T) {
	g := rng.New(3)
	pts := pointprocess.Poisson(geom.Box(8, 8), 4, g)
	udg := rgg.UDG(pts, 1.0)
	cache := NewSlabCache()
	const workers = 8
	out := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out[w] = cache.weights(udg.CSR, pts, 2)
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if &out[w][0] != &out[0][0] {
			t.Fatal("concurrent lookups returned distinct slabs")
		}
	}
	hits, misses := cache.Stats()
	if misses != 1 || hits != workers-1 {
		t.Errorf("stats %d hits / %d misses, want %d / 1", hits, misses, workers-1)
	}
}
