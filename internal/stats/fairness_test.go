package stats

import (
	"math"
	"testing"
)

func TestJainFairnessEqualShares(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = 3.7
		}
		if got := JainFairness(xs); math.Abs(got-1) > 1e-12 {
			t.Errorf("n=%d equal shares: %v, want 1", n, got)
		}
	}
}

func TestJainFairnessSingleHolder(t *testing.T) {
	// One sample holds everything: index = 1/n.
	xs := make([]float64, 8)
	xs[3] = 5
	if got, want := JainFairness(xs), 1.0/8; math.Abs(got-want) > 1e-12 {
		t.Errorf("single holder: %v, want %v", got, want)
	}
}

func TestJainFairnessKnownValue(t *testing.T) {
	// (1+2+3)² / (3·(1+4+9)) = 36/42.
	xs := []float64{1, 2, 3}
	if got, want := JainFairness(xs), 36.0/42; math.Abs(got-want) > 1e-12 {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestJainFairnessEdgeCases(t *testing.T) {
	if got := JainFairness(nil); !math.IsNaN(got) {
		t.Errorf("empty: %v, want NaN", got)
	}
	if got := JainFairness([]float64{0, 0, 0}); got != 1 {
		t.Errorf("all-zero: %v, want 1", got)
	}
	// Scale invariance: Jain(c·x) == Jain(x).
	a := JainFairness([]float64{1, 5, 2, 0.5})
	b := JainFairness([]float64{10, 50, 20, 5})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("not scale invariant: %v vs %v", a, b)
	}
	// Bounds: 1/n ≤ J ≤ 1 for nonnegative samples.
	if a < 0.25 || a > 1 {
		t.Errorf("index %v outside [1/n, 1]", a)
	}
}
