// Package stats provides the descriptive statistics, fitting and threshold
// location routines used by the experiment harness: summaries with
// confidence intervals, histograms, least-squares fits (linear and
// log-linear for exponential decay), and bisection on empirical monotone
// curves.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Var, Std     float64
	Min, Max           float64
	Median, P90, P99   float64
	SE                 float64 // standard error of the mean
	CI95Low, CI95High  float64 // normal-approximation 95% CI for the mean
	Sum, SumOfSquares  float64
	CoefficientOfVar   float64 // Std/Mean (0 when Mean == 0)
	MeanAbsolute       float64
	SampleSizeWarnings bool // true when N < 2 (Var/SE are zero)
}

// Summarize computes a Summary of the sample. An empty sample yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		s.SumOfSquares += x * x
		s.MeanAbsolute += math.Abs(x)
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	n := float64(s.N)
	s.Mean = s.Sum / n
	s.MeanAbsolute /= n
	if s.N >= 2 {
		// Two-pass variance for numerical stability.
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Var = ss / (n - 1)
		s.Std = math.Sqrt(s.Var)
		s.SE = s.Std / math.Sqrt(n)
	} else {
		s.SampleSizeWarnings = true
	}
	s.CI95Low = s.Mean - 1.96*s.SE
	s.CI95High = s.Mean + 1.96*s.SE
	if s.Mean != 0 {
		s.CoefficientOfVar = s.Std / s.Mean
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted sample by
// linear interpolation. Empty input yields NaN.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders a compact one-line summary.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g±%.2g [%.4g, %.4g] med=%.4g p90=%.4g",
		s.N, s.Mean, 1.96*s.SE, s.Min, s.Max, s.Median, s.P90)
}

// Proportion summarizes a Bernoulli sample: k successes out of n, with a
// Wilson score 95% confidence interval (well behaved near 0 and 1).
type Proportion struct {
	K, N          int
	P             float64
	Low95, High95 float64
}

// NewProportion computes the estimate and the Wilson interval.
func NewProportion(k, n int) Proportion {
	pr := Proportion{K: k, N: n}
	if n == 0 {
		pr.P = math.NaN()
		pr.Low95, pr.High95 = math.NaN(), math.NaN()
		return pr
	}
	p := float64(k) / float64(n)
	pr.P = p
	const z = 1.96
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	pr.Low95 = math.Max(0, center-half)
	pr.High95 = math.Min(1, center+half)
	return pr
}

// String renders the proportion with its interval.
func (p Proportion) String() string {
	return fmt.Sprintf("%d/%d = %.4f [%.4f, %.4f]", p.K, p.N, p.P, p.Low95, p.High95)
}

// Mean returns the arithmetic mean (NaN for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MaxFloat returns the maximum value (−Inf for an empty sample).
func MaxFloat(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// MinFloat returns the minimum value (+Inf for an empty sample).
func MinFloat(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}
