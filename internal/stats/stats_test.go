package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Var-2.5) > 1e-12 {
		t.Errorf("Var = %v want 2.5", s.Var)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("Std = %v", s.Std)
	}
	if s.Sum != 15 || s.SumOfSquares != 55 {
		t.Errorf("sums: %v %v", s.Sum, s.SumOfSquares)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 {
		t.Errorf("empty summary N = %d", s.N)
	}
	s := Summarize([]float64{7})
	if s.N != 1 || s.Mean != 7 || !s.SampleSizeWarnings {
		t.Errorf("singleton summary = %+v", s)
	}
	if s.Var != 0 || s.SE != 0 {
		t.Errorf("singleton Var/SE should be 0: %+v", s)
	}
}

func TestSummaryCIContainsMeanOfNormalSample(t *testing.T) {
	g := rng.New(99)
	misses := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = g.NormFloat64()*2 + 10
		}
		s := Summarize(xs)
		if s.CI95Low > 10 || s.CI95High < 10 {
			misses++
		}
	}
	// 95% interval should miss ~5% of the time; allow up to 12%.
	if misses > trials*12/100 {
		t.Errorf("CI missed true mean %d/%d times", misses, trials)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := Quantile(sorted, 0); q != 0 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(sorted, 1); q != 10 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(sorted, 0.5); q != 5 {
		t.Errorf("q0.5 = %v", q)
	}
	if q := Quantile(sorted, 0.25); q != 2.5 {
		t.Errorf("q0.25 = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if q := Quantile([]float64{42}, 0.7); q != 42 {
		t.Errorf("singleton quantile = %v", q)
	}
}

func TestProportionWilson(t *testing.T) {
	p := NewProportion(50, 100)
	if p.P != 0.5 {
		t.Errorf("P = %v", p.P)
	}
	if p.Low95 >= 0.5 || p.High95 <= 0.5 {
		t.Errorf("interval does not contain estimate: %+v", p)
	}
	if p.Low95 < 0.39 || p.High95 > 0.61 {
		t.Errorf("interval too wide for n=100: %+v", p)
	}
	// Extreme cases stay in [0, 1].
	p0 := NewProportion(0, 20)
	if p0.Low95 < 0 || p0.P != 0 {
		t.Errorf("zero-successes proportion: %+v", p0)
	}
	p1 := NewProportion(20, 20)
	if p1.High95 > 1 || p1.P != 1 {
		t.Errorf("all-successes proportion: %+v", p1)
	}
	pe := NewProportion(0, 0)
	if !math.IsNaN(pe.P) {
		t.Errorf("empty proportion should be NaN: %+v", pe)
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v", fit.R2)
	}
	if got := fit.Predict(10); math.Abs(got-21) > 1e-12 {
		t.Errorf("Predict = %v", got)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate xs should error")
	}
}

func TestFitLinearNoisy(t *testing.T) {
	g := rng.New(5)
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i) / 50
		ys[i] = -1.5*xs[i] + 4 + g.NormFloat64()*0.1
	}
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope+1.5) > 0.05 || math.Abs(fit.Intercept-4) > 0.05 {
		t.Errorf("noisy fit = %+v", fit)
	}
	if fit.R2 < 0.98 {
		t.Errorf("R2 = %v", fit.R2)
	}
}

func TestFitExpDecay(t *testing.T) {
	// y = 3·exp(−0.7x), exact.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Exp(-0.7*x)
	}
	fit, err := FitExpDecay(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.A-3) > 1e-9 || math.Abs(fit.Rate-0.7) > 1e-9 {
		t.Errorf("fit = %+v", fit)
	}
	if got := fit.Predict(2); math.Abs(got-ys[2]) > 1e-9 {
		t.Errorf("Predict = %v want %v", got, ys[2])
	}
}

func TestFitExpDecaySkipsNonPositive(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, math.Exp(-1), 0, math.Exp(-3)} // zero at x=2 skipped
	fit, err := FitExpDecay(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.N != 3 {
		t.Errorf("N = %d want 3", fit.N)
	}
	if math.Abs(fit.Rate-1) > 1e-9 {
		t.Errorf("Rate = %v", fit.Rate)
	}
	if _, err := FitExpDecay([]float64{1, 2}, []float64{0, 0}); err == nil {
		t.Error("all-zero ys should error")
	}
}

func TestMonotoneThreshold(t *testing.T) {
	// Deterministic sigmoid crossing 0.5 at x = 3.
	f := func(x float64) float64 { return 1 / (1 + math.Exp(-(x-3)*4)) }
	got, ok := MonotoneThreshold(f, 0, 10, 0.5, 1e-4, 100)
	if !ok {
		t.Error("straddling bracket reported not found")
	}
	if math.Abs(got-3) > 1e-3 {
		t.Errorf("threshold = %v want 3", got)
	}
	// Bracket entirely above the target returns lo with ok false: the
	// crossing lies left of the bracket and was NOT located.
	if got, ok := MonotoneThreshold(f, 5, 10, 0.5, 1e-4, 100); got != 5 || ok {
		t.Errorf("above-target bracket = (%v, %v), want (5, false)", got, ok)
	}
	// Bracket entirely below the target returns hi with ok false.
	if got, ok := MonotoneThreshold(f, 0, 1, 0.9999999, 1e-4, 100); got != 1 || ok {
		t.Errorf("below-target bracket = (%v, %v), want (1, false)", got, ok)
	}
	// A converged bisection landing exactly on an endpoint is still found —
	// the ok signal is what distinguishes it from the non-straddle cases.
	step := func(x float64) float64 {
		if x > 0 {
			return 1
		}
		return 0
	}
	if got, ok := MonotoneThreshold(step, -1e-5, 1, 0.5, 1e-9, 1000); !ok || math.Abs(got) > 1e-4 {
		t.Errorf("near-endpoint crossing = (%v, %v), want (≈0, true)", got, ok)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i%10) + 0.5)
	}
	h.Add(-5) // under
	h.Add(15) // over
	if h.NSamples != 102 || h.Under != 1 || h.Over != 1 {
		t.Errorf("histogram counters: %+v", h)
	}
	for i := 0; i < 10; i++ {
		if h.Counts[i] != 10 {
			t.Errorf("bin %d = %d want 10", i, h.Counts[i])
		}
	}
	if c := h.BinCenter(0); c != 0.5 {
		t.Errorf("BinCenter = %v", c)
	}
	if f := h.Fraction(3); math.Abs(f-10.0/102) > 1e-12 {
		t.Errorf("Fraction = %v", f)
	}
	h.Add(3.3)
	if h.Mode() != 3 {
		t.Errorf("Mode = %d", h.Mode())
	}
}

func TestHistogramCCDF(t *testing.T) {
	h := NewHistogram(0, 4, 4)
	for _, v := range []float64{0.5, 1.5, 1.6, 2.5, 3.5, 3.6, 3.7} {
		h.Add(v)
	}
	bounds, ccdf := h.CCDF()
	if len(bounds) != 5 || len(ccdf) != 5 {
		t.Fatalf("CCDF lengths: %d %d", len(bounds), len(ccdf))
	}
	if ccdf[0] != 1 {
		t.Errorf("CCDF(0) = %v want 1", ccdf[0])
	}
	// P(X ≥ 3) = 3/7.
	if math.Abs(ccdf[3]-3.0/7) > 1e-12 {
		t.Errorf("CCDF(3) = %v", ccdf[3])
	}
	if ccdf[4] != 0 {
		t.Errorf("CCDF(4) = %v want 0", ccdf[4])
	}
	// CCDF must be non-increasing.
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i] > ccdf[i-1]+1e-12 {
			t.Errorf("CCDF increased at %d: %v > %v", i, ccdf[i], ccdf[i-1])
		}
	}
}

func TestMeanMinMaxHelpers(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if MaxFloat(xs) != 5 || MinFloat(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", MaxFloat(xs), MinFloat(xs))
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsInf(MaxFloat(nil), -1) || !math.IsInf(MinFloat(nil), 1) {
		t.Error("Max/Min of empty should be ∓Inf")
	}
}

func TestSummarizeMeanMatchesHelper(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, math.Mod(v, 1000))
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		m := Mean(xs)
		return math.Abs(s.Mean-m) < 1e-9*(1+math.Abs(m))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
