package stats

import (
	"errors"
	"math"
)

// LinearFit holds an ordinary-least-squares fit y ≈ Slope·x + Intercept.
type LinearFit struct {
	Slope, Intercept float64
	R2               float64 // coefficient of determination
	N                int
}

// FitLinear computes the least-squares line through (x, y) pairs.
func FitLinear(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, errors.New("stats: mismatched sample lengths")
	}
	n := len(xs)
	if n < 2 {
		return LinearFit{}, errors.New("stats: need at least 2 points for a linear fit")
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/float64(n), sy/float64(n)
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: degenerate x values")
	}
	slope := sxy / sxx
	fit := LinearFit{
		Slope:     slope,
		Intercept: my - slope*mx,
		N:         n,
	}
	if syy > 0 {
		fit.R2 = sxy * sxy / (sxx * syy)
	} else {
		fit.R2 = 1 // all ys equal and fitted exactly
	}
	return fit, nil
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 { return f.Slope*x + f.Intercept }

// ExpDecayFit holds a fit of the exponential-decay model y ≈ A·exp(−c·x),
// obtained by a log-linear least-squares fit on the positive observations.
// Rate is c (positive for genuine decay).
type ExpDecayFit struct {
	A, Rate float64
	R2      float64
	N       int // number of positive observations actually used
}

// FitExpDecay fits y ≈ A·exp(−Rate·x) to the pairs with y > 0.
// This is the model of the paper's coverage theorem (Theorem 3.3) and
// stretch-tail theorem (Theorem 3.2).
func FitExpDecay(xs, ys []float64) (ExpDecayFit, error) {
	if len(xs) != len(ys) {
		return ExpDecayFit{}, errors.New("stats: mismatched sample lengths")
	}
	var fx, fy []float64
	for i := range xs {
		if ys[i] > 0 {
			fx = append(fx, xs[i])
			fy = append(fy, math.Log(ys[i]))
		}
	}
	lin, err := FitLinear(fx, fy)
	if err != nil {
		return ExpDecayFit{}, err
	}
	return ExpDecayFit{
		A:    math.Exp(lin.Intercept),
		Rate: -lin.Slope,
		R2:   lin.R2,
		N:    lin.N,
	}, nil
}

// Predict evaluates the fitted decay curve at x.
func (f ExpDecayFit) Predict(x float64) float64 { return f.A * math.Exp(-f.Rate*x) }

// MonotoneThreshold locates, by bisection, the input x in [lo, hi] at which
// the (noisy, assumed increasing) function f crosses the level target.
// It evaluates f at most maxEval times and returns the bracketing midpoint
// with ok true. When the initial bracket does not straddle the target —
// f(lo) already at or above it, or f(hi) still below it — no crossing can
// be located: the nearer endpoint is returned with ok false, so callers can
// tell "the threshold is ≈ x" from "the threshold lies outside [lo, hi]"
// (the two were previously indistinguishable). f should return an empirical
// estimate in [0, 1]; tolX controls the termination width.
func MonotoneThreshold(f func(x float64) float64, lo, hi, target, tolX float64, maxEval int) (x float64, ok bool) {
	flo := f(lo)
	fhi := f(hi)
	evals := 2
	// A non-straddling bracket has no crossing to bisect toward: report the
	// nearer end, flagged.
	if flo >= target {
		return lo, false
	}
	if fhi < target {
		return hi, false
	}
	for hi-lo > tolX && evals < maxEval {
		mid := (lo + hi) / 2
		if f(mid) >= target {
			hi = mid
		} else {
			lo = mid
		}
		evals++
	}
	return (lo + hi) / 2, true
}

// Histogram is a fixed-bin histogram over [Lo, Hi).
type Histogram struct {
	Lo, Hi   float64
	Counts   []int
	Under    int // observations < Lo
	Over     int // observations ≥ Hi
	NSamples int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		n = 1
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records an observation.
func (h *Histogram) Add(x float64) {
	h.NSamples++
	if x < h.Lo {
		h.Under++
		return
	}
	if x >= h.Hi {
		h.Over++
		return
	}
	i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
}

// BinCenter returns the center of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Fraction returns the fraction of all samples landing in bin i.
func (h *Histogram) Fraction(i int) float64 {
	if h.NSamples == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.NSamples)
}

// Mode returns the index of the most populated bin.
func (h *Histogram) Mode() int {
	best, bi := -1, 0
	for i, c := range h.Counts {
		if c > best {
			best, bi = c, i
		}
	}
	return bi
}

// CCDF returns, for each bin boundary, the empirical complementary CDF
// P(X ≥ boundary), including Under/Over mass.
func (h *Histogram) CCDF() (boundaries, ccdf []float64) {
	n := len(h.Counts)
	w := (h.Hi - h.Lo) / float64(n)
	boundaries = make([]float64, n+1)
	ccdf = make([]float64, n+1)
	total := float64(h.NSamples)
	if total == 0 {
		total = 1
	}
	// Counts at or above each boundary.
	tail := h.Over
	for i := n; i >= 0; i-- {
		boundaries[i] = h.Lo + float64(i)*w
		ccdf[i] = float64(tail) / total
		if i > 0 {
			tail += h.Counts[i-1]
		}
	}
	return boundaries, ccdf
}
