package stats

import "math"

// JainFairness returns Jain's fairness index (Σx)² / (n·Σx²) over the
// samples: 1 when every share is equal, 1/n when one sample holds
// everything — the standard evenness-of-allocation metric, used by the
// lifetime scenarios to report how evenly residual energy is spread beside
// the first-death round. Returns NaN for an empty slice; an all-zero
// population is perfectly even and scores 1.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}
