package fault

import (
	"testing"

	"repro/internal/rng"
)

// FuzzSchedule drives the schedule builders with arbitrary inputs and pins
// two invariants: no builder panics on any input, and under a crash-only
// schedule the alive count is monotone non-increasing in round (nodes never
// resurrect). Wired into `make ci` as a 10s smoke.
func FuzzSchedule(f *testing.F) {
	f.Add(uint64(1), 10, 0.3, 2, 1, 0.05, 3, 7, 0.5)
	f.Add(uint64(2), 1, 1.0, 1, 0, 0.0, 1, 1, 0.0)
	f.Add(uint64(3), 100, -0.5, -4, 3, 0.99, -2, 5, 1.5)
	f.Fuzz(func(t *testing.T, seed uint64, n int, frac float64, start, perRound int, loss float64, from, to int, burst float64) {
		if n < 0 || n > 1<<12 {
			n = (n%(1<<12) + 1<<12) % (1 << 12)
		}
		nodes := make([]int32, n)
		for i := range nodes {
			nodes[i] = int32(i)
		}
		r := rng.New(rng.Seed(seed))
		// Victim shuffle must handle any slice without the graph (SelectRandom
		// never touches it).
		victims := Victims(nil, nodes, SelectRandom, r)
		s := CrashSchedule(victims, frac, start, perRound)
		if err := s.Validate(); err != nil {
			t.Fatalf("CrashSchedule built an invalid schedule: %v", err)
		}
		// Composition with loss and bursts must not panic, and LossAt must
		// stay a probability whenever the composed schedule validates.
		c := s.WithLoss(loss).WithBurst(from, to, burst)
		if c.Validate() == nil {
			for round := 0; round <= c.MaxRound()+1; round++ {
				if p := c.LossAt(round); p < 0 || p >= 1 {
					t.Fatalf("LossAt(%d) = %v outside [0, 1)", round, p)
				}
			}
		}
		// Alive-set monotonicity under the crash-only schedule.
		prev := n + 1
		for round := 0; round <= s.MaxRound()+1; round++ {
			alive := s.AliveSet(n, round)
			count := 0
			for _, a := range alive {
				if a {
					count++
				}
			}
			if count > prev {
				t.Fatalf("alive count rose from %d to %d at round %d", prev, count, round)
			}
			prev = count
			if got := s.CrashedBy(round); n-count != got && n >= len(victims) {
				t.Fatalf("round %d: alive %d of %d but CrashedBy = %d", round, count, n, got)
			}
		}
	})
}
