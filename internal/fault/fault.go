// Package fault builds deterministic fault schedules: pure-data plans of
// crash-stop node failures at round boundaries, per-link Bernoulli message
// loss, burst/partition loss windows, and targeted attacks (highest-degree
// and highest-betweenness victim selection) — the adversarial workload the
// scale-free WSN literature (arXiv:1405.3368) uses to discriminate
// topologies by their random-failure vs targeted-attack decay curves.
//
// A schedule is data, not behavior: the layers that *apply* one (the
// lifetime simulation in internal/energy, the simnet loss model, the
// routing retransmission loop) draw their own per-run randomness; the
// schedule itself is fully determined by its inputs. Builders that need
// randomness (random victim orders) consume their RNG substream entirely,
// so schedules satisfy the scenario cache's correctness rule and are
// cache-eligible — simulations applying them never are.
package fault

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/graph"
	"repro/internal/simnet"
)

// Event is one crash-stop failure: Node permanently stops at the boundary
// entering Round (1-based). Crash-stop is the classical model — the node
// sends nothing afterwards, and messages addressed to it are dropped with
// the sender's transmit energy already spent.
type Event struct {
	// Round is the 1-based round whose boundary the crash happens at.
	Round int
	// Node is the crashed vertex.
	Node int32
}

// Window is a burst/partition loss episode: during rounds From..To
// (inclusive) every link additionally loses messages with probability Rate.
// Overlapping windows and the schedule's base rate compose as independent
// loss sources.
type Window struct {
	// From and To bound the episode in rounds, inclusive.
	From, To int
	// Rate is the additional per-message loss probability inside the window.
	Rate float64
}

// Schedule is a composed fault plan: crash-stop failures, a base per-link
// Bernoulli message-loss rate, and burst loss windows. The zero value is
// the no-fault schedule. Schedules are immutable by convention — the
// With* helpers copy — so a cached schedule can be shared across scenario
// rows.
type Schedule struct {
	// Crashes lists the crash-stop failures, sorted by (Round, Node).
	Crashes []Event
	// Loss is the base per-link Bernoulli message-loss probability applied
	// every round.
	Loss float64
	// Bursts are additional loss windows composed on top of Loss.
	Bursts []Window
}

// Validate checks the schedule's invariants: probabilities in [0, 1),
// rounds ≥ 1, windows well-formed, crashes sorted.
func (s *Schedule) Validate() error {
	if s.Loss < 0 || s.Loss >= 1 {
		return fmt.Errorf("fault: base loss %v outside [0, 1)", s.Loss)
	}
	for i, w := range s.Bursts {
		if w.Rate < 0 || w.Rate >= 1 {
			return fmt.Errorf("fault: burst %d rate %v outside [0, 1)", i, w.Rate)
		}
		if w.From < 1 || w.To < w.From {
			return fmt.Errorf("fault: burst %d window [%d, %d] malformed", i, w.From, w.To)
		}
	}
	for i, e := range s.Crashes {
		if e.Round < 1 {
			return fmt.Errorf("fault: crash %d at round %d < 1", i, e.Round)
		}
		if i > 0 {
			p := s.Crashes[i-1]
			if e.Round < p.Round || (e.Round == p.Round && e.Node < p.Node) {
				return errors.New("fault: crashes not sorted by (round, node)")
			}
		}
	}
	return nil
}

// LossAt returns the effective per-link loss probability during the given
// round: the base rate and every active burst window compose as
// independent loss sources, 1 − Π(1 − rate).
func (s *Schedule) LossAt(round int) float64 {
	keep := 1 - s.Loss
	for _, w := range s.Bursts {
		if round >= w.From && round <= w.To {
			keep *= 1 - w.Rate
		}
	}
	return 1 - keep
}

// MaxRound returns the last round any crash or burst is scheduled for
// (0 for a loss-only or empty schedule).
func (s *Schedule) MaxRound() int {
	m := 0
	if n := len(s.Crashes); n > 0 {
		m = s.Crashes[n-1].Round
	}
	for _, w := range s.Bursts {
		if w.To > m {
			m = w.To
		}
	}
	return m
}

// AliveSet returns the alive mask over n vertices after every crash
// scheduled at rounds ≤ round has been applied. Under a crash-only
// schedule the alive count is monotone non-increasing in round — the
// invariant the fuzz target pins.
func (s *Schedule) AliveSet(n, round int) []bool {
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for _, e := range s.Crashes {
		if e.Round > round {
			break
		}
		if int(e.Node) < n {
			alive[e.Node] = false
		}
	}
	return alive
}

// CrashedBy counts the crashes scheduled at rounds ≤ round.
func (s *Schedule) CrashedBy(round int) int {
	n := 0
	for _, e := range s.Crashes {
		if e.Round > round {
			break
		}
		n++
	}
	return n
}

// WithLoss returns a copy of the schedule with the base loss rate set.
func (s *Schedule) WithLoss(rate float64) *Schedule {
	c := *s
	c.Loss = rate
	return &c
}

// WithBurst returns a copy of the schedule with an additional burst loss
// window for rounds from..to inclusive.
func (s *Schedule) WithBurst(from, to int, rate float64) *Schedule {
	c := *s
	c.Bursts = append(append([]Window(nil), s.Bursts...), Window{From: from, To: to, Rate: rate})
	return &c
}

// Merge composes schedules: crashes are concatenated and re-sorted, burst
// windows concatenated, and base loss rates combined as independent
// sources.
func Merge(schedules ...*Schedule) *Schedule {
	out := &Schedule{}
	keep := 1.0
	for _, s := range schedules {
		if s == nil {
			continue
		}
		out.Crashes = append(out.Crashes, s.Crashes...)
		out.Bursts = append(out.Bursts, s.Bursts...)
		keep *= 1 - s.Loss
	}
	out.Loss = 1 - keep
	sortEvents(out.Crashes)
	return out
}

// sortEvents sorts crashes by (Round, Node) — the canonical order Validate
// checks and AliveSet relies on.
func sortEvents(evs []Event) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Round != evs[j].Round {
			return evs[i].Round < evs[j].Round
		}
		return evs[i].Node < evs[j].Node
	})
}

// Selector picks the victim-ordering policy of an attack.
type Selector int

// Victim-selection policies: uniform-random failure and the two targeted
// attacks of the scale-free robustness literature.
const (
	// SelectRandom orders victims uniformly at random (random failure).
	SelectRandom Selector = iota
	// SelectDegree orders victims by descending degree (targeted attack on
	// hubs), ties broken by ascending vertex id.
	SelectDegree
	// SelectBetweenness orders victims by descending betweenness centrality
	// (targeted attack on bridges; Brandes pass in internal/graph), ties
	// broken by ascending vertex id.
	SelectBetweenness
)

// String names the selector ("random", "degree", "betweenness").
func (s Selector) String() string {
	switch s {
	case SelectRandom:
		return "random"
	case SelectDegree:
		return "degree"
	case SelectBetweenness:
		return "betweenness"
	}
	return fmt.Sprintf("Selector(%d)", int(s))
}

// Victims orders the candidate nodes for removal under the selection
// policy: a deterministic ranking for the targeted attacks, a uniform
// shuffle for random failure. The rng is consumed entirely by SelectRandom
// (one shuffle) and untouched by the targeted selectors (their ranking is
// a pure function of the graph), so victim orders satisfy the scenario
// cache's substream rule either way; rng may be nil for targeted
// selection. The input slice is not modified.
func Victims(g *graph.CSR, nodes []int32, sel Selector, rng *rand.Rand) []int32 {
	out := append([]int32(nil), nodes...)
	switch sel {
	case SelectRandom:
		rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	case SelectDegree:
		sort.SliceStable(out, func(i, j int) bool {
			di, dj := g.Degree(out[i]), g.Degree(out[j])
			if di != dj {
				return di > dj
			}
			return out[i] < out[j]
		})
	case SelectBetweenness:
		bc := graph.Betweenness(g)
		sort.SliceStable(out, func(i, j int) bool {
			if bc[out[i]] != bc[out[j]] {
				return bc[out[i]] > bc[out[j]]
			}
			return out[i] < out[j]
		})
	default:
		panic(fmt.Sprintf("fault: unknown selector %d", int(sel)))
	}
	return out
}

// CrashSchedule turns a victim ordering into a crash-stop schedule: the
// first ⌈frac·len(victims)⌉ victims crash, perRound per round, starting at
// the boundary entering round start. frac is clamped to [0, 1]; perRound
// ≤ 0 means all victims crash at the start round (a mass failure /
// partition event).
func CrashSchedule(victims []int32, frac float64, start, perRound int) *Schedule {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	if start < 1 {
		start = 1
	}
	n := int(frac*float64(len(victims)) + 0.999999)
	if n > len(victims) {
		n = len(victims)
	}
	s := &Schedule{}
	for i := 0; i < n; i++ {
		round := start
		if perRound > 0 {
			round = start + i/perRound
		}
		s.Crashes = append(s.Crashes, Event{Round: round, Node: victims[i]})
	}
	sortEvents(s.Crashes)
	return s
}

// Bernoulli adapts a constant per-message loss probability to the
// simnet.LossModel hook: every in-flight message is lost independently
// with probability P, drawn from Rng at delivery time. The sender's tx
// debit has already been charged at Send time; the receiver pays nothing —
// the same drop-accounting contract simnet pins for unregistered
// destinations.
type Bernoulli struct {
	// P is the per-message loss probability.
	P float64
	// Rng draws the loss decisions; the caller owns its determinism.
	Rng *rand.Rand
}

// Lose implements simnet.LossModel.
func (b *Bernoulli) Lose(from, to simnet.NodeID, now float64) bool {
	return b.P > 0 && b.Rng.Float64() < b.P
}

var _ simnet.LossModel = (*Bernoulli)(nil)
