package fault

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/simnet"
)

func buildCSR(n int, edges [][2]int32) *graph.CSR {
	b := graph.NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func TestValidate(t *testing.T) {
	good := &Schedule{
		Crashes: []Event{{Round: 1, Node: 2}, {Round: 1, Node: 5}, {Round: 3, Node: 0}},
		Loss:    0.1,
		Bursts:  []Window{{From: 2, To: 4, Rate: 0.5}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	bad := []*Schedule{
		{Loss: 1},
		{Loss: -0.1},
		{Bursts: []Window{{From: 0, To: 3, Rate: 0.1}}},
		{Bursts: []Window{{From: 5, To: 3, Rate: 0.1}}},
		{Bursts: []Window{{From: 1, To: 1, Rate: 1.5}}},
		{Crashes: []Event{{Round: 0, Node: 1}}},
		{Crashes: []Event{{Round: 3, Node: 1}, {Round: 2, Node: 0}}},
		{Crashes: []Event{{Round: 2, Node: 5}, {Round: 2, Node: 1}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted: %+v", i, s)
		}
	}
}

func TestLossAtComposesIndependentSources(t *testing.T) {
	s := (&Schedule{Loss: 0.1}).WithBurst(5, 10, 0.5)
	if got := s.LossAt(1); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("outside burst: %v, want 0.1", got)
	}
	want := 1 - 0.9*0.5 // independent composition
	if got := s.LossAt(7); math.Abs(got-want) > 1e-12 {
		t.Errorf("inside burst: %v, want %v", got, want)
	}
	// Overlapping bursts stack.
	s2 := s.WithBurst(7, 7, 0.5)
	want2 := 1 - 0.9*0.5*0.5
	if got := s2.LossAt(7); math.Abs(got-want2) > 1e-12 {
		t.Errorf("stacked bursts: %v, want %v", got, want2)
	}
}

func TestAliveSetAndCrashedBy(t *testing.T) {
	s := CrashSchedule([]int32{4, 1, 3}, 1.0, 2, 1) // one crash per round from round 2
	if got := s.MaxRound(); got != 4 {
		t.Fatalf("MaxRound = %d, want 4", got)
	}
	alive := s.AliveSet(5, 1)
	for i, a := range alive {
		if !a {
			t.Fatalf("node %d dead before any crash round", i)
		}
	}
	// Rounds 2 and 3 crash victims[0]=4 and victims[1]=1.
	alive = s.AliveSet(5, 3)
	if alive[4] || alive[1] {
		t.Fatalf("expected nodes 4 and 1 dead by round 3: %v", alive)
	}
	if !alive[3] {
		t.Fatalf("node 3 should still be alive at round 3: %v", alive)
	}
	if got := s.CrashedBy(3); got != 2 {
		t.Errorf("CrashedBy(3) = %d, want 2", got)
	}
	if got := s.CrashedBy(100); got != 3 {
		t.Errorf("CrashedBy(100) = %d, want 3", got)
	}
}

func TestCrashScheduleFracAndMass(t *testing.T) {
	victims := []int32{9, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	s := CrashSchedule(victims, 0.3, 1, 0) // mass failure: all at round 1
	if len(s.Crashes) != 3 {
		t.Fatalf("frac 0.3 of 10 victims: %d crashes, want 3", len(s.Crashes))
	}
	for _, e := range s.Crashes {
		if e.Round != 1 {
			t.Errorf("mass failure crash at round %d, want 1", e.Round)
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("built schedule invalid: %v", err)
	}
	if got := len(CrashSchedule(victims, 0, 1, 0).Crashes); got != 0 {
		t.Errorf("frac 0: %d crashes, want 0", got)
	}
	if got := len(CrashSchedule(victims, 2.0, 1, 0).Crashes); got != 10 {
		t.Errorf("frac clamped to 1: %d crashes, want 10", got)
	}
}

func TestMerge(t *testing.T) {
	a := CrashSchedule([]int32{2}, 1, 3, 0).WithLoss(0.1)
	b := CrashSchedule([]int32{7}, 1, 1, 0).WithLoss(0.2)
	m := Merge(a, nil, b)
	if err := m.Validate(); err != nil {
		t.Fatalf("merged schedule invalid: %v", err)
	}
	if len(m.Crashes) != 2 || m.Crashes[0].Node != 7 || m.Crashes[1].Node != 2 {
		t.Errorf("merge did not re-sort crashes: %+v", m.Crashes)
	}
	want := 1 - 0.9*0.8
	if math.Abs(m.Loss-want) > 1e-12 {
		t.Errorf("merged loss %v, want %v", m.Loss, want)
	}
}

func TestVictimsDegree(t *testing.T) {
	// Star: center 0 has max degree, leaves tie at 1 → ascending id.
	g := buildCSR(4, [][2]int32{{0, 1}, {0, 2}, {0, 3}})
	got := Victims(g, []int32{3, 1, 0, 2}, SelectDegree, nil)
	want := []int32{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("degree order %v, want %v", got, want)
		}
	}
}

func TestVictimsBetweenness(t *testing.T) {
	// Barbell: 0-1-2-3-4; interior vertex 2 bridges the most pairs.
	g := buildCSR(5, [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	got := Victims(g, []int32{0, 1, 2, 3, 4}, SelectBetweenness, nil)
	if got[0] != 2 {
		t.Fatalf("betweenness order %v, want center vertex 2 first", got)
	}
}

func TestVictimsRandomDeterministicAndNonMutating(t *testing.T) {
	g := buildCSR(6, [][2]int32{{0, 1}})
	in := []int32{0, 1, 2, 3, 4, 5}
	a := Victims(g, in, SelectRandom, rng.Sub(1, 99))
	b := Victims(g, in, SelectRandom, rng.Sub(1, 99))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same substream produced different orders: %v vs %v", a, b)
		}
	}
	for i, v := range in {
		if v != int32(i) {
			t.Fatalf("input slice mutated: %v", in)
		}
	}
}

func TestSelectorString(t *testing.T) {
	cases := map[Selector]string{SelectRandom: "random", SelectDegree: "degree", SelectBetweenness: "betweenness"}
	for sel, want := range cases {
		if got := sel.String(); got != want {
			t.Errorf("Selector(%d).String() = %q, want %q", int(sel), got, want)
		}
	}
}

func TestBernoulliLossModel(t *testing.T) {
	// P=0 never loses and draws nothing; P=1 always loses.
	never := &Bernoulli{P: 0, Rng: nil} // nil rng proves no draw happens
	if never.Lose(0, 1, 0) {
		t.Fatal("P=0 lost a message")
	}
	always := &Bernoulli{P: 1, Rng: rng.Sub(1, 0)}
	for i := 0; i < 10; i++ {
		if !always.Lose(0, 1, float64(i)) {
			t.Fatal("P=1 delivered a message")
		}
	}
	// Wired into a network: Lost counts, handlers starve, Dropped unaffected.
	net := simnet.New()
	net.Loss = &Bernoulli{P: 1, Rng: rng.Sub(1, 1)}
	delivered := 0
	net.Register(1, simnet.HandlerFunc(func(n *simnet.Network, m simnet.Message) { delivered++ }))
	for i := 0; i < 5; i++ {
		net.Send(0, 1, nil)
	}
	net.Run(0)
	if delivered != 0 || net.Lost != 5 || net.MessagesDelivered != 0 || net.Dropped != 0 {
		t.Fatalf("delivered=%d Lost=%d Delivered=%d Dropped=%d; want 0/5/0/0",
			delivered, net.Lost, net.MessagesDelivered, net.Dropped)
	}
}
