// Package rng provides deterministic, splittable random number streams for
// reproducible Monte-Carlo experiments.
//
// Every stochastic component in the repository takes an explicit seed, and
// parallel workers derive independent substreams via SplitMix64 hashing of
// (seed, stream index) pairs, so results are bit-identical regardless of
// goroutine scheduling. The underlying generator is the 128-bit PCG from
// math/rand/v2.
package rng

import "math/rand/v2"

// Seed identifies a reproducible random stream.
type Seed uint64

// splitMix64 is the SplitMix64 finalizer, a high-quality 64-bit mixer used
// to derive statistically independent seeds from correlated inputs.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// New returns a generator for the given seed.
func New(seed Seed) *rand.Rand {
	s := uint64(seed)
	return rand.New(rand.NewPCG(splitMix64(s), splitMix64(s^0xda3e39cb94b95bdb)))
}

// Derive deterministically derives a child seed for a named substream.
// Derive(s, i) and Derive(s, j) are independent for i ≠ j, and independent
// of the parent stream.
func Derive(seed Seed, stream uint64) Seed {
	return Seed(splitMix64(splitMix64(uint64(seed)) ^ splitMix64(stream+0x632be59bd9b4e019)))
}

// Sub returns a generator for substream i of the given seed; shorthand for
// New(Derive(seed, i)).
func Sub(seed Seed, stream uint64) *rand.Rand {
	return New(Derive(seed, stream))
}
