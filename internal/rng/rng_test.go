package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical values", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	// Child streams must differ from each other and from the parent.
	parent := New(7)
	c0 := Sub(7, 0)
	c1 := Sub(7, 1)
	collide := 0
	for i := 0; i < 200; i++ {
		p, a, b := parent.Uint64(), c0.Uint64(), c1.Uint64()
		if p == a || p == b || a == b {
			collide++
		}
	}
	if collide > 0 {
		t.Errorf("substreams collided %d times", collide)
	}
}

func TestDeriveDeterministic(t *testing.T) {
	if Derive(9, 3) != Derive(9, 3) {
		t.Error("Derive not deterministic")
	}
	if Derive(9, 3) == Derive(9, 4) {
		t.Error("Derive ignored the stream index")
	}
	if Derive(9, 3) == Derive(10, 3) {
		t.Error("Derive ignored the seed")
	}
}

func TestUniformityRough(t *testing.T) {
	// Chi-square-ish sanity check on 16 buckets of Float64.
	g := New(123)
	const n = 160000
	var buckets [16]int
	for i := 0; i < n; i++ {
		v := g.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		buckets[int(v*16)]++
	}
	want := float64(n) / 16
	for i, c := range buckets {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestSeedZeroUsable(t *testing.T) {
	g := New(0)
	v := g.Uint64()
	w := g.Uint64()
	if v == 0 && w == 0 {
		t.Error("seed 0 produced a degenerate stream")
	}
}
