package rgg

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/spatial"
)

func TestUDGEdgesRespectRadius(t *testing.T) {
	g := rng.New(1)
	pts := pointprocess.Poisson(geom.Box(10, 10), 2, g)
	udg := UDG(pts, 1)
	for u := int32(0); int(u) < udg.N; u++ {
		for _, v := range udg.Neighbors(u) {
			if d := udg.EdgeLength(u, v); d > 1+1e-12 {
				t.Fatalf("edge (%d,%d) length %v > 1", u, v, d)
			}
		}
	}
	// Completeness: every pair within distance 1 must be an edge.
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= 1 && !udg.HasEdge(int32(i), int32(j)) {
				t.Fatalf("missing UDG edge (%d, %d) at distance %v", i, j, pts[i].Dist(pts[j]))
			}
		}
	}
}

func TestUDGMeanDegreeMatchesTheory(t *testing.T) {
	// For a Poisson(λ) process and radius r, mean degree → λπr² (away from
	// the boundary). Use a torus-free box large enough that edge effects are
	// a few percent.
	g := rng.New(2)
	const lambda = 2.0
	const r = 1.0
	box := geom.Box(40, 40)
	pts := pointprocess.Poisson(box, lambda, g)
	udg := UDG(pts, r)
	// Average degree over interior vertices only.
	interior := box.Expand(-2)
	var sum, n float64
	for i, p := range pts {
		if interior.Contains(p) {
			sum += float64(udg.Degree(int32(i)))
			n++
		}
	}
	got := sum / n
	want := lambda * math.Pi * r * r
	if math.Abs(got-want) > 0.25 {
		t.Errorf("interior mean degree %v want %v", got, want)
	}
}

func TestUDGEmptyAndDegenerate(t *testing.T) {
	if g := UDG(nil, 1); g.N != 0 || g.EdgeCount != 0 {
		t.Error("empty UDG wrong")
	}
	one := []geom.Point{geom.Pt(0, 0)}
	if g := UDG(one, 1); g.N != 1 || g.EdgeCount != 0 {
		t.Error("singleton UDG wrong")
	}
	if g := UDG(one, 0); g.EdgeCount != 0 {
		t.Error("zero-radius UDG should have no edges")
	}
	two := []geom.Point{geom.Pt(0, 0), geom.Pt(0.5, 0)}
	if g := UDG(two, 1); g.EdgeCount != 1 {
		t.Error("pair within radius should connect")
	}
}

func TestNNDegreeBounds(t *testing.T) {
	g := rng.New(3)
	pts := pointprocess.Poisson(geom.Box(15, 15), 1.5, g)
	const k = 4
	nn := NN(pts, k)
	for u := 0; u < nn.N; u++ {
		d := nn.Degree(int32(u))
		if d < k {
			t.Fatalf("vertex %d degree %d < k=%d (every vertex picks k neighbors)", u, d, k)
		}
		// A classical planar-geometry bound: a point can be the nearest
		// neighbor of at most 6 points per "rank", so degree ≤ k + 6k = 7k
		// is a very loose sanity ceiling — in practice ≪.
		if d > 7*k {
			t.Fatalf("vertex %d degree %d implausibly high", u, d)
		}
	}
}

func TestNNIsSymmetrizedRelation(t *testing.T) {
	g := rng.New(4)
	pts := pointprocess.Binomial(geom.Box(5, 5), 200, g)
	const k = 3
	nn := NN(pts, k)
	out := OutNeighbors(pts, k)
	// Edge {u, v} exists iff v ∈ out(u) or u ∈ out(v).
	inOut := func(u, v int32) bool {
		for _, w := range out[u] {
			if w == v {
				return true
			}
		}
		return false
	}
	for u := int32(0); int(u) < nn.N; u++ {
		for v := u + 1; int(v) < nn.N; v++ {
			want := inOut(u, v) || inOut(v, u)
			if got := nn.HasEdge(u, v); got != want {
				t.Fatalf("edge (%d,%d): got %v want %v", u, v, got, want)
			}
		}
	}
}

func TestNNEdgeCases(t *testing.T) {
	if g := NN(nil, 3); g.N != 0 {
		t.Error("empty NN wrong")
	}
	one := []geom.Point{geom.Pt(0, 0)}
	if g := NN(one, 3); g.N != 1 || g.EdgeCount != 0 {
		t.Error("singleton NN wrong")
	}
	two := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if g := NN(two, 5); g.EdgeCount != 1 {
		t.Error("k larger than n should connect all pairs present")
	}
	if g := NN(two, 0); g.EdgeCount != 0 {
		t.Error("k=0 NN should be empty")
	}
}

func TestNNContainsNearestNeighborGraph(t *testing.T) {
	// NN(k) edges must be a superset of NN(1) edges.
	g := rng.New(5)
	pts := pointprocess.Binomial(geom.Box(5, 5), 150, g)
	nn1 := NN(pts, 1)
	nn4 := NN(pts, 4)
	for u := int32(0); int(u) < nn1.N; u++ {
		for _, v := range nn1.Neighbors(u) {
			if !nn4.HasEdge(u, v) {
				t.Fatalf("NN(4) missing NN(1) edge (%d, %d)", u, v)
			}
		}
	}
}

func TestNNConnectivityIncreasesWithK(t *testing.T) {
	g := rng.New(6)
	pts := pointprocess.Binomial(geom.Box(10, 10), 300, g)
	prevLargest := 0
	for _, k := range []int{1, 2, 4, 8} {
		nn := NN(pts, k)
		members, _ := graph.LargestComponent(nn.CSR)
		if len(members) < prevLargest {
			t.Errorf("largest component shrank at k=%d: %d < %d", k, len(members), prevLargest)
		}
		prevLargest = len(members)
	}
	if prevLargest < 290 {
		t.Errorf("NN(8) on n=300 should be nearly connected, largest=%d", prevLargest)
	}
}

func TestUDGSubgraphMonotoneInRadius(t *testing.T) {
	g := rng.New(7)
	pts := pointprocess.Binomial(geom.Box(8, 8), 200, g)
	small := UDG(pts, 0.7)
	big := UDG(pts, 1.2)
	for u := int32(0); int(u) < small.N; u++ {
		for _, v := range small.Neighbors(u) {
			if !big.HasEdge(u, v) {
				t.Fatalf("UDG(1.2) missing UDG(0.7) edge (%d,%d)", u, v)
			}
		}
	}
}

func BenchmarkUDGBuild(b *testing.B) {
	g := rng.New(8)
	pts := pointprocess.Poisson(geom.Box(100, 100), 2, g)
	b.ReportMetric(float64(len(pts)), "points")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		UDG(pts, 1)
	}
}

func BenchmarkNNBuild(b *testing.B) {
	g := rng.New(9)
	pts := pointprocess.Poisson(geom.Box(60, 60), 2, g)
	b.ReportMetric(float64(len(pts)), "points")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NN(pts, 8)
	}
}

// serialUDG is the O(n²) serial reference: every pair within r, inserted
// one edge at a time through the dedup-tolerant path.
func serialUDG(pts []geom.Point, r float64) *graph.CSR {
	b := graph.NewBuilder(len(pts))
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= r {
				b.AddEdge(int32(i), int32(j))
			}
		}
	}
	return b.Build()
}

// serialNN is the serial reference for the symmetrized k-NN relation, built
// from brute-force neighbor lists.
func serialNN(pts []geom.Point, k int) *graph.CSR {
	b := graph.NewBuilder(len(pts))
	for i := range pts {
		for _, j := range spatial.BruteKNearest(pts, pts[i], k, i) {
			b.AddEdge(int32(i), j)
		}
	}
	return b.Build()
}

func sameCSR(t *testing.T, label string, a, b *graph.CSR) {
	t.Helper()
	if a.N != b.N || a.EdgeCount != b.EdgeCount {
		t.Fatalf("%s: N/EdgeCount differ: (%d, %d) vs (%d, %d)", label, a.N, a.EdgeCount, b.N, b.EdgeCount)
	}
	for i := range a.Start {
		if a.Start[i] != b.Start[i] {
			t.Fatalf("%s: Start[%d] = %d vs %d", label, i, a.Start[i], b.Start[i])
		}
	}
	for i := range a.Adj {
		if a.Adj[i] != b.Adj[i] {
			t.Fatalf("%s: Adj[%d] = %d vs %d", label, i, a.Adj[i], b.Adj[i])
		}
	}
}

// TestParallelBuildersMatchSerialReference asserts the parallel pipelines
// produce CSRs byte-identical to the serial O(n²) references across several
// deployments, including sizes straddling the shard boundary.
func TestParallelBuildersMatchSerialReference(t *testing.T) {
	for _, n := range []int{0, 1, 2, 50, 700, 1500, 2500} {
		pts := pointprocess.Binomial(geom.Box(8, 8), n, rng.New(rng.Seed(40+n)))
		sameCSR(t, "UDG", UDG(pts, 1).CSR, serialUDG(pts, 1))
		sameCSR(t, "NN", NN(pts, 4).CSR, serialNN(pts, 4))
	}
	// Degenerate: duplicate points (distance ties everywhere).
	dup := make([]geom.Point, 40)
	for i := range dup {
		dup[i] = geom.Pt(float64(i%4), float64(i%4))
	}
	sameCSR(t, "UDG-dup", UDG(dup, 1.5).CSR, serialUDG(dup, 1.5))
	sameCSR(t, "NN-dup", NN(dup, 3).CSR, serialNN(dup, 3))
}

// TestBuildersDeterministicAcrossGOMAXPROCS is the acceptance-criterion
// test: same seed ⇒ identical CSR (Start and Adj equal) at worker count 1
// and at the full default.
func TestBuildersDeterministicAcrossGOMAXPROCS(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(20, 20), 8, rng.New(77))
	if len(pts) < 2000 {
		t.Fatalf("deployment too small (%d) to exercise multiple shards", len(pts))
	}
	// Pin 8 workers for the parallel leg: on a 1-CPU box the default would
	// also be 1 worker and the test would compare two serial runs.
	prev := runtime.GOMAXPROCS(8)
	parallelUDG := UDG(pts, 1).CSR
	parallelNN := NN(pts, 6).CSR

	runtime.GOMAXPROCS(1)
	serialUDG1 := UDG(pts, 1).CSR
	serialNN1 := NN(pts, 6).CSR
	runtime.GOMAXPROCS(prev)

	sameCSR(t, "UDG GOMAXPROCS 1 vs N", serialUDG1, parallelUDG)
	sameCSR(t, "NN GOMAXPROCS 1 vs N", serialNN1, parallelNN)
}
