package rgg

import (
	"math"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/spatial"
)

// gridCellGrain is the number of grid cells per enumeration shard. At cell
// size r under a Poisson(λ) process a cell holds λr² points, so a shard
// carries a few thousand points — enough to amortize the per-shard edge
// buffer, small enough to spread across cores.
const gridCellGrain = 256

// expectedUDGEdges estimates the undirected edge count of UDG(pts, r) from
// the empirical density over the bounding area: each point sees ~density·πr²
// neighbors, each edge is shared by two. Used to pre-size edge collectors;
// an overestimate costs slack capacity, an underestimate costs one growth
// step, so the margin leans high.
func expectedUDGEdges(nPts int, area, r float64) float64 {
	if area <= 0 || nPts == 0 {
		return 0
	}
	density := float64(nPts) / area
	return float64(nPts) * density * math.Pi * r * r / 2
}

// boundingArea returns the area of the bounding box of pts.
func boundingArea(pts []geom.Point) float64 {
	if len(pts) == 0 {
		return 0
	}
	b := geom.Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < b.Min.X {
			b.Min.X = p.X
		}
		if p.Y < b.Min.Y {
			b.Min.Y = p.Y
		}
		if p.X > b.Max.X {
			b.Max.X = p.X
		}
		if p.Y > b.Max.Y {
			b.Max.Y = p.Y
		}
	}
	return b.Width() * b.Height()
}

// UDGGrid builds the unit disk graph with connection radius r over pts by
// pair-free cell enumeration: points are bucketed into a uniform grid of
// cell size r, and each unordered candidate pair is visited exactly once by
// pairing every cell with itself and with its half-open neighborhood (the
// four cells east, north-west, north, north-east). Two points within
// distance r differ by at most one cell index per axis, so the half-open
// stencil is exhaustive — including pairs at distance exactly r landing on
// a cell boundary (property-tested).
//
// Compared to the per-point Within queries of UDG this does half the
// distance tests and never materializes a candidate neighbor list: surviving
// edges are appended straight into pre-sized per-shard packed-edge buffers
// (capacity from the n·πr²·density expected-degree estimate) whose
// deterministic concatenation feeds graph.FromPacked without a builder
// copy. Memory is O(n + m) in a handful of slabs; the result is the
// byte-identical CSR of UDG at any GOMAXPROCS (the counting-sort CSR build
// is insertion-order independent).
//
// This is the fixed-radius builder of the million-node scale tier; at the
// ~10⁴-point experiment scales either path is fine, and the two are
// equivalence-gated against each other at 10⁴.
func UDGGrid(pts []geom.Point, r float64) *Geometric {
	if len(pts) == 0 || r <= 0 {
		return &Geometric{CSR: graph.NewBuilder(len(pts)).Build(), Pos: pts}
	}
	grid := spatial.NewGrid(pts, r)
	nx, ny := grid.Dims()
	nc := nx * ny
	r2 := r * r

	perShard := expectedUDGEdges(len(pts), boundingArea(pts), r) / float64(nc) * gridCellGrain
	capHint := int(perShard*1.2) + 16

	// The half-open cell stencil: Self pairs within the cell, then the four
	// neighbor cells that see each unordered cell pair exactly once.
	type offset struct{ dx, dy int }
	stencil := [4]offset{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}

	edges := parallel.CollectCap(nc, gridCellGrain, capHint, func(lo, hi int, out []uint64) []uint64 {
		for c := lo; c < hi; c++ {
			cx, cy := c%nx, c/nx
			cell := grid.CellPoints(cx, cy)
			if len(cell) == 0 {
				continue
			}
			// Within-cell pairs (i < j by bucket position).
			for a := 0; a < len(cell); a++ {
				pa := pts[cell[a]]
				for b := a + 1; b < len(cell); b++ {
					if pa.Dist2(pts[cell[b]]) <= r2 {
						out = append(out, graph.Pack(cell[a], cell[b]))
					}
				}
			}
			// Cross-cell pairs with the half-open neighborhood.
			for _, o := range stencil {
				nb := grid.CellPoints(cx+o.dx, cy+o.dy)
				for _, i := range cell {
					pi := pts[i]
					for _, j := range nb {
						if pi.Dist2(pts[j]) <= r2 {
							out = append(out, graph.Pack(i, j))
						}
					}
				}
			}
		}
		return out
	})
	return &Geometric{CSR: graph.FromPacked(len(pts), edges, true), Pos: pts}
}

// UDGGridSoA is UDGGrid over a struct-of-arrays deployment: the slabs are
// materialized into an interleaved point slice once (the single conversion
// the scale tier performs — the distance loop reads both coordinates of a
// point per step, which favors the interleaved layout) and the graph is
// built over it. The returned Geometric owns that point slice.
func UDGGridSoA(s geom.SoA, r float64) *Geometric {
	return UDGGrid(s.Points(nil), r)
}
