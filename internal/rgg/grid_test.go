package rgg

import (
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/pointprocess"
	"repro/internal/rng"
)

// TestUDGGridMatchesBruteForce is the pair-free enumeration property test:
// across random deployments and radii the grid builder must be edge-for-edge
// identical to the O(n²) reference. Radii include values where many pairs sit
// at distance exactly r (lattice deployments), the boundary case the
// half-open stencil must not lose.
func TestUDGGridMatchesBruteForce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 64, 300, 900} {
		for _, r := range []float64{0.3, 1, 2.5} {
			pts := pointprocess.Binomial(geom.Box(6, 6), n, rng.New(rng.Seed(90+n)))
			sameCSR(t, "UDGGrid-random", UDGGrid(pts, r).CSR, serialUDG(pts, r))
		}
	}
	// Lattice at spacing exactly r: every axis-neighbor pair is at distance
	// exactly r AND on a cell boundary of the size-r grid.
	for _, r := range []float64{0.5, 1, 2} {
		var pts []geom.Point
		for i := 0; i < 12; i++ {
			for j := 0; j < 12; j++ {
				pts = append(pts, geom.Pt(float64(i)*r, float64(j)*r))
			}
		}
		sameCSR(t, "UDGGrid-lattice", UDGGrid(pts, r).CSR, serialUDG(pts, r))
		// Sanity: the lattice case really exercises distance == r edges.
		if g := UDGGrid(pts, r); g.EdgeCount != 2*12*11 {
			t.Fatalf("lattice UDG at spacing r: %d edges, want %d", g.EdgeCount, 2*12*11)
		}
	}
	// Duplicate points: zero distances, maximal within-cell pairing.
	dup := make([]geom.Point, 40)
	for i := range dup {
		dup[i] = geom.Pt(float64(i%4), float64(i%4))
	}
	sameCSR(t, "UDGGrid-dup", UDGGrid(dup, 1.5).CSR, serialUDG(dup, 1.5))
}

// TestUDGGridMatchesUDGAt10k is the acceptance-criterion equivalence gate:
// the grid builder and the per-point-query builder produce the identical CSR
// on a 10⁴-point deployment.
func TestUDGGridMatchesUDGAt10k(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(25, 25), 16, rng.New(91))
	if len(pts) < 9000 {
		t.Fatalf("deployment too small (%d) for the 10k gate", len(pts))
	}
	sameCSR(t, "UDGGrid vs UDG @10k", UDGGrid(pts, 1).CSR, UDG(pts, 1).CSR)
}

// TestUDGGridDeterministicAcrossGOMAXPROCS pins the scale-tier builder to
// the determinism contract: identical CSR at 1 worker and at 8.
func TestUDGGridDeterministicAcrossGOMAXPROCS(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(20, 20), 8, rng.New(92))
	prev := runtime.GOMAXPROCS(8)
	wide := UDGGrid(pts, 1).CSR
	runtime.GOMAXPROCS(1)
	narrow := UDGGrid(pts, 1).CSR
	runtime.GOMAXPROCS(prev)
	sameCSR(t, "UDGGrid GOMAXPROCS 1 vs 8", narrow, wide)
}

func TestUDGGridSoA(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(8, 8), 4, rng.New(93))
	s := geom.FromPoints(pts)
	sameCSR(t, "UDGGridSoA", UDGGridSoA(s, 1).CSR, UDGGrid(pts, 1).CSR)
}

// TestUDGBuildersAllocBudget asserts the pre-sized collectors hold: a 10⁵
// point build must stay within a small per-shard allocation budget — a
// handful of slabs per shard plus the CSR build — rather than walking the
// append growth ladder on every shard.
func TestUDGBuildersAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-point alloc gate skipped in -short")
	}
	pts := pointprocess.Poisson(geom.Box(80, 80), 16, rng.New(94))
	if len(pts) < 95000 {
		t.Fatalf("deployment too small (%d) for the 100k gate", len(pts))
	}
	shards := (len(pts) + parallel.DefaultGrain - 1) / parallel.DefaultGrain
	// Budget: per shard one edge buffer and a little scratch, plus a fixed
	// overhead for the grid, the merge, and the CSR slabs. A collector that
	// regrows its buffer instead of pre-sizing blows through this by ~10
	// reallocations per shard.
	budget := float64(4*shards + 64)

	got := testing.AllocsPerRun(3, func() { UDG(pts, 1) })
	if got > budget {
		t.Errorf("UDG(100k) allocs/op = %.0f, budget %.0f", got, budget)
	}
	got = testing.AllocsPerRun(3, func() { UDGGrid(pts, 1) })
	if got > budget {
		t.Errorf("UDGGrid(100k) allocs/op = %.0f, budget %.0f", got, budget)
	}
}
