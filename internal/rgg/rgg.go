// Package rgg builds the paper's two base interconnection structures on a
// point set: the unit disk graph UDG(2, λ) and the undirected
// k-nearest-neighbor graph NN(2, k).
//
// Following the paper's notation (§1.1):
//
//   - UDG(2, λ): an edge joins x and y iff d(x, y) ≤ r (r = 1 in the paper;
//     the radius is a parameter here so experiments can rescale).
//   - NN(2, k): each point establishes undirected edges to the k points
//     nearest to it; the graph is the union of these relations, so degrees
//     range from k up to ~6k (a point can be among the k nearest of many).
//
// Ties in the k-NN relation are measure-zero for Poisson inputs; they are
// broken deterministically by point index, matching the paper's "any
// tie-breaking mechanism we deem fit".
package rgg

import (
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/spatial"
)

// Geometric is a geometric graph: a CSR graph together with the vertex
// positions that induced it.
type Geometric struct {
	*graph.CSR
	Pos []geom.Point
}

// EdgeLength returns the Euclidean length of the edge {u, v}.
func (g *Geometric) EdgeLength(u, v int32) float64 { return g.Pos[u].Dist(g.Pos[v]) }

// UDG builds the unit disk graph with connection radius r over pts.
// Expected time O(n) for Poisson inputs via a grid with cell size r; the
// point loop runs sharded across all cores with per-shard edge buffers,
// pre-sized from the n·πr²·density expected-degree estimate so large
// builds skip the append-growth reallocation ladder (allocs/op is gated at
// 100k points). The result is deterministic: identical CSR at any
// GOMAXPROCS. The scale tier's UDGGrid builds the identical graph by
// pair-free cell enumeration.
func UDG(pts []geom.Point, r float64) *Geometric {
	b := graph.NewBuilder(len(pts))
	if len(pts) > 0 && r > 0 {
		grid := spatial.NewGrid(pts, r)
		// Per-shard capacity: the shard's slice of the expected edge total,
		// with margin so Poisson fluctuation rarely forces a growth step.
		expDegree := 2 * expectedUDGEdges(len(pts), boundingArea(pts), r) / float64(len(pts))
		perShard := expDegree / 2 * parallel.DefaultGrain
		capHint := int(perShard*1.2) + 16
		nbrCap := int(expDegree*2) + 16
		edges := parallel.CollectCap(len(pts), parallel.DefaultGrain, capHint, func(lo, hi int, out []uint64) []uint64 {
			// The neighbor buffer is pre-sized too: twice the expected degree
			// covers Poisson fluctuation for all but a vanishing fraction of
			// points, and the rare outlier grows it once per shard at most.
			buf := make([]int32, 0, nbrCap)
			for i := lo; i < hi; i++ {
				buf = grid.Within(pts[i], r, buf[:0])
				for _, j := range buf {
					// Emitting only j > i visits each pair once, so the edge
					// set satisfies the builder's uniqueness fast path.
					if j > int32(i) {
						out = append(out, graph.Pack(int32(i), j))
					}
				}
			}
			return out
		})
		b.AddPacked(edges, true)
	}
	return &Geometric{CSR: b.Build(), Pos: pts}
}

// NN builds the undirected k-nearest-neighbor graph over pts. Each vertex
// contributes edges to its k nearest distinct points (all points if fewer
// than k others exist). The query loop runs sharded across all cores, one
// reusable kNN scratch per shard; mutual-pair duplicates are removed during
// the CSR build. The result is deterministic: identical CSR at any
// GOMAXPROCS.
func NN(pts []geom.Point, k int) *Geometric {
	b := graph.NewBuilder(len(pts))
	if len(pts) > 1 && k > 0 {
		// The kd-tree wins over the grid for kNN at the densities the
		// experiments use (see the spatial package benchmarks).
		tree := spatial.NewKDTree(pts)
		edges := parallel.Collect(len(pts), func(lo, hi int, out []uint64) []uint64 {
			var scratch spatial.KNNScratch
			var nbrs []int32
			for i := lo; i < hi; i++ {
				nbrs = tree.KNearestInto(pts[i], k, i, &scratch, nbrs[:0])
				for _, j := range nbrs {
					out = append(out, graph.Pack(int32(i), j))
				}
			}
			return out
		})
		b.AddPacked(edges, false)
	}
	return &Geometric{CSR: b.Build(), Pos: pts}
}

// OutNeighbors returns, for each vertex, its k nearest neighbors (the
// directed k-NN relation) — used by tests to verify that NN is exactly the
// symmetrized relation.
func OutNeighbors(pts []geom.Point, k int) [][]int32 {
	tree := spatial.NewKDTree(pts)
	out := make([][]int32, len(pts))
	parallel.ForShard(len(pts), func(lo, hi int) {
		var scratch spatial.KNNScratch
		for i := lo; i < hi; i++ {
			out[i] = tree.KNearestInto(pts[i], k, i, &scratch, nil)
		}
	})
	return out
}
