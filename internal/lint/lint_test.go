package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture loads the fixture module under testdata/mod.
func loadFixture(t *testing.T) *Module {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root, "fixture")
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	return mod
}

var wantRe = regexp.MustCompile(`// want (\w+)`)

// fixtureWants scans the fixture's .go files for `// want <rule>` markers
// and returns the expected "<file>:<line>:<rule>" keys.
func fixtureWants(t *testing.T, mod *Module) map[string]bool {
	t.Helper()
	wants := make(map[string]bool)
	for _, pkg := range mod.Pkgs {
		for _, name := range pkg.Filenames {
			f, err := os.Open(name)
			if err != nil {
				t.Fatal(err)
			}
			sc := bufio.NewScanner(f)
			for line := 1; sc.Scan(); line++ {
				for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
					wants[fmt.Sprintf("%s:%d:%s", filepath.Base(name), line, m[1])] = true
				}
			}
			if err := sc.Err(); err != nil {
				t.Fatal(err)
			}
			f.Close()
		}
	}
	return wants
}

// TestFixtureDiagnostics runs all analyzers over the fixture module and
// matches the findings against the `// want <rule>` markers, exactly.
func TestFixtureDiagnostics(t *testing.T) {
	mod := loadFixture(t)
	diags := Run(mod, Options{})

	wants := fixtureWants(t, mod)
	if len(wants) == 0 {
		t.Fatal("fixture has no // want markers — corpus broken")
	}

	var mdDiags []Diagnostic
	got := make(map[string]int)
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, ".md") {
			mdDiags = append(mdDiags, d)
			continue
		}
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Rule)]++
	}
	for key := range wants {
		if got[key] == 0 {
			t.Errorf("expected a %s finding, got none", key)
		}
	}
	for key, n := range got {
		if !wants[key] {
			t.Errorf("unexpected finding %s (×%d)", key, n)
		}
	}

	// The registry side: exactly one stale-entry finding, for stream 9.
	if len(mdDiags) != 1 {
		t.Fatalf("registry findings = %d (%v), want exactly 1", len(mdDiags), mdDiags)
	}
	if !strings.Contains(mdDiags[0].Msg, "stale registry entry: stream 9") {
		t.Errorf("registry finding = %q, want stale entry for stream 9", mdDiags[0].Msg)
	}
}

// TestFixtureWaiverSuppression pins the waiver mechanics: the valid waiver
// in core suppresses its detrange finding without going stale.
func TestFixtureWaiverSuppression(t *testing.T) {
	mod := loadFixture(t)
	for _, d := range Run(mod, Options{}) {
		if filepath.Base(d.Pos.Filename) == "detrange.go" && d.Rule == "waiverlint" {
			t.Errorf("valid used waiver reported: %s", d)
		}
		if filepath.Base(d.Pos.Filename) == "detrange.go" && d.Rule == "detrange" {
			if strings.Contains(readLine(t, d.Pos.Filename, d.Pos.Line-1), "sensvet:allow") {
				t.Errorf("waived site still reported: %s", d)
			}
		}
	}
}

// readLine returns one line of a file (1-based), "" when out of range.
func readLine(t *testing.T, name string, line int) string {
	t.Helper()
	data, err := os.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(data), "\n")
	if line < 1 || line > len(lines) {
		return ""
	}
	return lines[line-1]
}

// TestMissingRegistry pins the bootstrap failure mode: no registry file is
// itself a finding, not a pass.
func TestMissingRegistry(t *testing.T) {
	mod := loadFixture(t)
	diags := Run(mod, Options{RegistryPath: filepath.Join(t.TempDir(), "none.md")})
	found := false
	for _, d := range diags {
		if d.Rule == "substreams" && strings.Contains(d.Msg, "registry unreadable") {
			found = true
		}
	}
	if !found {
		t.Error("missing registry produced no finding")
	}
}

// TestGenerateRegistry pins the skeleton generator: every constant stream
// in the fixture appears, wrapper-propagated and helper-position ones
// included, with owners.
func TestGenerateRegistry(t *testing.T) {
	mod := loadFixture(t)
	out := GenerateRegistry(mod)
	for _, want := range []string{
		"| 5 | exp.go |", "| 7 | exp.go |", "| 11 | exp.go |",
		"| 13 | exp.go |", "| 21 | exp.go |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("generated registry missing %q:\n%s", want, out)
		}
	}
}

// TestModuleClean is the whole-module smoke test: the repository itself
// must be sensvet-clean — every remaining exception is a reasoned waiver.
func TestModuleClean(t *testing.T) {
	root, modPath, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := LoadModule(root, modPath)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(mod, Options{})
	for _, d := range diags {
		t.Errorf("repository not sensvet-clean: %s", d)
	}
}
