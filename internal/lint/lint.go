// Package lint implements sensvet, the project-specific static-analysis
// suite that turns this repository's determinism conventions into a CI
// gate (the doclint move, applied to nondeterminism): every result table is
// pinned byte-identical at GOMAXPROCS 1 and 8, and the conventions that
// guarantee became checkable rules.
//
// Four analyzers ship (see their files for the precise rules):
//
//   - detrange: range over a map in a result-producing package is the
//     canonical GOMAXPROCS-independent nondeterminism leak — flagged unless
//     the loop body is provably order-insensitive or the keys are collected
//     and sorted before use.
//   - detclock: wall-clock reads (time.Now, time.Since) and global
//     math/rand state outside the measurement/reporting allowlist.
//   - substreams: constant RNG substream numbers cross-checked against the
//     docs/substreams.md registry (collisions, stale entries, missing
//     entries), turning the prose substream map into a checked artifact.
//   - waiverlint: every //sensvet:allow waiver must carry a rule and a
//     reason, and must still suppress something (the allowlist only
//     shrinks).
//
// A finding is suppressed by a waiver comment on the flagged line or the
// line above it:
//
//	//sensvet:allow <rule> — <reason>
//
// The package is stdlib-only (go/ast, go/token, go/types) and never shells
// out; see Module for the type-checking tradeoff that buys.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding.
	Pos token.Position
	// Rule names the analyzer that produced it (detrange, detclock,
	// substreams, waiverlint).
	Rule string
	// Msg describes the finding.
	Msg string
}

// String renders the finding in the file:line: rule: message shape the CLI
// prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Msg)
}

// Rules lists the analyzer names sensvet ships, the valid targets of a
// //sensvet:allow waiver.
func Rules() []string {
	return []string{"detrange", "detclock", "substreams", "waiverlint"}
}

// Options configures a Run.
type Options struct {
	// RegistryPath overrides the substream registry location (default
	// docs/substreams.md under the module root).
	RegistryPath string
}

// Run executes every analyzer over the module, applies //sensvet:allow
// waivers, and appends waiverlint's findings about the waivers themselves.
// The result is sorted by position then rule.
func Run(mod *Module, opt Options) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, detrange(mod)...)
	diags = append(diags, detclock(mod)...)
	diags = append(diags, substreams(mod, opt.RegistryPath)...)

	waivers := scanWaivers(mod)
	kept := applyWaivers(diags, waivers)
	kept = append(kept, waiverlint(waivers)...)
	sortDiagnostics(kept)
	return kept
}

// sortDiagnostics orders findings by file, line, column, rule, message —
// the deterministic output contract.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Msg < b.Msg
	})
}
