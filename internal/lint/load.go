package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, best-effort type-checked package of the module
// under analysis. Files holds the non-test sources in filename order; Info
// carries whatever type information the checker could establish (stdlib
// imports resolve shallowly — see the Module doc — so analyzers must treat
// a missing or invalid type as "unknown", never as proof).
type Package struct {
	// Dir is the package directory on disk.
	Dir string
	// Path is the import path within the module (module path for the root
	// package, module path + "/" + relative directory otherwise).
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Files holds the parsed non-test sources, sorted by filename.
	Files []*ast.File
	// Filenames holds the absolute source paths, parallel to Files.
	Filenames []string
	// Info is the (best-effort) type information for Files.
	Info *types.Info
	// Types is the checked package object; incomplete when imports
	// resolved shallowly.
	Types *types.Package

	imports []string
}

// Module is a loaded set of packages sharing one FileSet, the unit every
// analyzer runs over.
//
// Type checking is deliberately self-contained: packages belonging to the
// module are checked from source in dependency order, while every other
// import (the stdlib) resolves to an empty shim package. That keeps sensvet
// free of toolchain shell-outs and makes it fast and deterministic, at the
// cost of shallow stdlib types — a locally declared map[K]V still checks as
// a map (the analyzers' main need) even when K or V involves an unresolved
// import, but a stdlib named map type (http.Header) is invisible. Analyzers
// are written to fail open on unknown types.
type Module struct {
	// Root is the directory containing go.mod (or the fixture root).
	Root string
	// Path is the module path from go.mod (or the synthetic fixture path).
	Path string
	// Fset positions every file of every package.
	Fset *token.FileSet
	// Pkgs holds the loaded packages, sorted by import path.
	Pkgs []*Package
}

// Rel returns pkg's directory relative to the module root ("." for the
// root package) — the coordinate the analyzer scope tables use.
func (m *Module) Rel(pkg *Package) string {
	if pkg.Path == m.Path {
		return "."
	}
	return strings.TrimPrefix(pkg.Path, m.Path+"/")
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// LoadModule loads every package of the module rooted at root (the
// directory containing go.mod): all directories holding non-test Go files,
// skipping testdata and hidden directories.
func LoadModule(root, modPath string) (*Module, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || name == "testdata") {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return LoadDirs(root, modPath, dirs)
}

// LoadDirs loads the given package directories (absolute or relative to
// root) as one module with import paths derived from modPath, then
// type-checks them in dependency order. Directories without Go files are
// skipped silently.
func LoadDirs(root, modPath string, dirs []string) (*Module, error) {
	mod := &Module{Root: root, Path: modPath, Fset: token.NewFileSet()}
	seen := make(map[string]bool)
	for _, dir := range dirs {
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		dir = filepath.Clean(dir)
		if seen[dir] {
			continue
		}
		seen[dir] = true
		pkg, err := parseDir(mod, dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			mod.Pkgs = append(mod.Pkgs, pkg)
		}
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool { return mod.Pkgs[i].Path < mod.Pkgs[j].Path })
	typecheck(mod)
	return mod, nil
}

// parseDir parses the non-test Go files of dir into a Package, or nil when
// the directory holds none.
func parseDir(mod *Module, dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(mod.Root, dir)
	if err != nil {
		return nil, err
	}
	path := mod.Path
	if rel != "." {
		path = mod.Path + "/" + filepath.ToSlash(rel)
	}
	pkg := &Package{Dir: dir, Path: path}
	importSet := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		full := filepath.Join(dir, name)
		f, err := parser.ParseFile(mod.Fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.Filenames = append(pkg.Filenames, full)
		pkg.Name = f.Name.Name
		for _, imp := range f.Imports {
			importSet[strings.Trim(imp.Path.Value, `"`)] = true
		}
	}
	if len(pkg.Files) == 0 {
		return nil, nil
	}
	for p := range importSet {
		pkg.imports = append(pkg.imports, p)
	}
	sort.Strings(pkg.imports)
	return pkg, nil
}

// typecheck type-checks the module's packages in dependency order with the
// shim importer. Errors are swallowed by design: analyzers consume whatever
// type facts survive and fail open on the rest.
func typecheck(mod *Module) {
	byPath := make(map[string]*Package, len(mod.Pkgs))
	for _, p := range mod.Pkgs {
		byPath[p.Path] = p
	}
	imp := &shimImporter{byPath: byPath, shims: make(map[string]*types.Package)}
	for _, p := range topoOrder(mod.Pkgs, byPath) {
		info := &types.Info{
			Types:     make(map[ast.Expr]types.TypeAndValue),
			Defs:      make(map[*ast.Ident]types.Object),
			Uses:      make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{
			Importer: imp,
			Error:    func(error) {}, // best-effort: shim imports error freely
		}
		tpkg, _ := conf.Check(p.Path, mod.Fset, p.Files, info)
		p.Info, p.Types = info, tpkg
	}
}

// topoOrder orders packages so that module-internal imports are checked
// before their importers (unknown or cyclic imports are simply left to the
// shim importer).
func topoOrder(pkgs []*Package, byPath map[string]*Package) []*Package {
	order := make([]*Package, 0, len(pkgs))
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(*Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, imp := range p.imports {
			if dep, ok := byPath[imp]; ok && state[dep] == 0 {
				visit(dep)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return order
}

// shimImporter resolves module-internal imports to the packages checked so
// far and everything else to an empty, complete shim — references into a
// shim fail (swallowed), leaving the affected expressions untyped.
type shimImporter struct {
	byPath map[string]*Package
	shims  map[string]*types.Package
}

// Import implements types.Importer.
func (s *shimImporter) Import(path string) (*types.Package, error) {
	if p, ok := s.byPath[path]; ok && p.Types != nil {
		return p.Types, nil
	}
	if p, ok := s.shims[path]; ok {
		return p, nil
	}
	name := path[strings.LastIndex(path, "/")+1:]
	// Versioned import paths (math/rand/v2) keep the unversioned name.
	if len(name) > 1 && name[0] == 'v' && strings.TrimLeft(name[1:], "0123456789") == "" {
		trimmed := path[:strings.LastIndex(path, "/")]
		name = trimmed[strings.LastIndex(trimmed, "/")+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	s.shims[path] = p
	return p, nil
}
