package lint

import (
	"fmt"
	"go/token"
	"strings"
)

// waiverPrefix introduces a suppression comment:
//
//	//sensvet:allow <rule> — <reason>
//
// placed on the flagged line or the line immediately above it. The rule
// must be one of Rules() and the reason is mandatory — a waiver is a
// documented exception, not an off switch. "--" is accepted in place of
// the em dash.
const waiverPrefix = "//sensvet:allow"

// waiver is one parsed //sensvet:allow comment.
type waiver struct {
	Pos    token.Position
	Rule   string
	Reason string
	// Malformed carries the parse problem ("" when well-formed).
	Malformed string
	// used is set when the waiver suppressed at least one diagnostic.
	used bool
}

// scanWaivers collects every //sensvet:allow comment in the module.
func scanWaivers(mod *Module) []*waiver {
	var out []*waiver
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, waiverPrefix) {
						continue
					}
					w := parseWaiver(c.Text)
					w.Pos = mod.Fset.Position(c.Pos())
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// parseWaiver splits a waiver comment into rule and reason, recording what
// is wrong with it when malformed.
func parseWaiver(text string) *waiver {
	rest := strings.TrimSpace(strings.TrimPrefix(text, waiverPrefix))
	var sep string
	for _, s := range []string{"—", "--"} {
		if strings.Contains(rest, s) {
			sep = s
			break
		}
	}
	if sep == "" {
		return &waiver{Malformed: "missing ' — <reason>' (a waiver must say why)"}
	}
	rulePart, reason, _ := strings.Cut(rest, sep)
	rule := strings.TrimSpace(rulePart)
	reason = strings.TrimSpace(reason)
	w := &waiver{Rule: rule, Reason: reason}
	switch {
	case rule == "":
		w.Malformed = "missing rule name before the dash"
	case !validRule(rule):
		w.Malformed = fmt.Sprintf("unknown rule %q (want one of %s)", rule, strings.Join(Rules(), ", "))
	case reason == "":
		w.Malformed = "empty reason (a waiver must say why)"
	}
	return w
}

// validRule reports whether name is a shipped analyzer.
func validRule(name string) bool {
	for _, r := range Rules() {
		if r == name {
			return true
		}
	}
	return false
}

// applyWaivers drops every diagnostic covered by a well-formed waiver for
// its rule on the same line or the line above, marking those waivers used.
func applyWaivers(diags []Diagnostic, waivers []*waiver) []Diagnostic {
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, w := range waivers {
			if w.Malformed != "" || w.Rule != d.Rule || w.Pos.Filename != d.Pos.Filename {
				continue
			}
			if w.Pos.Line == d.Pos.Line || w.Pos.Line == d.Pos.Line-1 {
				w.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// waiverlint reports malformed waivers and stale ones — waivers whose rule
// no longer fires on the covered line, so the allowlist can only shrink.
func waiverlint(waivers []*waiver) []Diagnostic {
	var out []Diagnostic
	for _, w := range waivers {
		switch {
		case w.Malformed != "":
			out = append(out, Diagnostic{
				Pos:  w.Pos,
				Rule: "waiverlint",
				Msg:  "malformed waiver: " + w.Malformed,
			})
		case !w.used:
			out = append(out, Diagnostic{
				Pos:  w.Pos,
				Rule: "waiverlint",
				Msg:  fmt.Sprintf("stale waiver: %s no longer fires here — delete the comment", w.Rule),
			})
		}
	}
	return out
}
