package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// resultPkgs lists the result-producing packages whose non-test code must
// not iterate maps in native (scheduler-dependent) order: everything whose
// output lands in a golden table, a benchmark row, or a served response.
var resultPkgs = map[string]bool{
	"internal/core":     true,
	"internal/graph":    true,
	"internal/hng":      true,
	"internal/mobility": true,
	"internal/power":    true,
	"internal/scenario": true,
	"internal/serve":    true,
	"internal/fault":    true,
	"internal/energy":   true,
	"internal/routing":  true,
	"internal/topo":     true,
	"internal/rgg":      true,
}

// detrange flags `range` over a map in the result-producing packages. Map
// iteration order is deliberately randomized by the runtime, so any
// order-sensitive loop over one is a nondeterminism leak that no
// GOMAXPROCS pinning can hide. Two loop shapes are exempt because their
// effect provably does not depend on visit order:
//
//   - pure accumulation: counters (x++, x += e and the other commutative
//     compound assignments), x = max/min(x, e), stores keyed by the range
//     key (slot[k] = e: distinct keys hit distinct slots), delete,
//     mutation of iteration-local variables, nested loops over non-map
//     collections with order-insensitive bodies, and guards/locals around
//     those;
//   - collect-then-sort: the body only appends to outer slices, and every
//     such slice is passed to a sort.* / slices.* call later in the same
//     enclosing block.
//
// Everything else needs a sorted key slice — or a //sensvet:allow waiver
// stating why order cannot reach result bytes.
func detrange(mod *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range mod.Pkgs {
		if resultPkgs[mod.Rel(pkg)] {
			out = append(out, detrangePkg(mod.Fset, pkg)...)
		}
	}
	return out
}

// detrangePkg runs the map-range rule over one package.
func detrangePkg(fset *token.FileSet, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				out = append(out, detrangeStmts(fset, pkg, fn.Body.List)...)
			}
		}
	}
	return out
}

// detrangeStmts walks a statement list, checking each map-range against the
// exemptions; the list context is what lets collect-then-sort see the
// statements following a loop.
func detrangeStmts(fset *token.FileSet, pkg *Package, list []ast.Stmt) []Diagnostic {
	var out []Diagnostic
	var walk func(list []ast.Stmt)
	check := func(rs *ast.RangeStmt, list []ast.Stmt, i int) {
		if !isMapType(pkg, rs.X) {
			return
		}
		if orderInsensitiveStmts(pkg, rs.Body.List, rs.Key, bodyLocals(rs.Body)) {
			return
		}
		if collectThenSorted(pkg, rs, list, i) {
			return
		}
		out = append(out, Diagnostic{
			Pos:  fset.Position(rs.Range),
			Rule: "detrange",
			Msg:  "range over map: iteration order is nondeterministic; sort the keys first, restrict the body to order-insensitive accumulation, or waive with a reason",
		})
	}
	walk = func(list []ast.Stmt) {
		for i, st := range list {
			// Unwrap labels so a labeled map-range is still checked against
			// its enclosing list.
			if ls, ok := st.(*ast.LabeledStmt); ok {
				st = ls.Stmt
			}
			if rs, ok := st.(*ast.RangeStmt); ok {
				check(rs, list, i)
			}
			// Recurse into nested statement lists (blocks, and the bare
			// []ast.Stmt bodies of switch/select clauses). A range
			// statement's own body is walked too: inner map-ranges get
			// their own check with the body as enclosing block.
			ast.Inspect(st, func(n ast.Node) bool {
				switch b := n.(type) {
				case *ast.BlockStmt:
					walk(b.List)
					return false
				case *ast.CaseClause:
					walk(b.Body)
					return false
				case *ast.CommClause:
					walk(b.Body)
					return false
				}
				return true
			})
		}
	}
	walk(list)
	return out
}

// isMapType reports whether expr's type is known to be a map. Unknown or
// invalid types (shallow stdlib resolution) report false: detrange fails
// open rather than flagging on guesses.
func isMapType(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// bodyLocals collects the names bound inside a loop body at any depth —
// := definitions, var/const declarations, and the key/value variables of
// nested := loops. These are re-created every iteration, so mutating them
// cannot carry state across iterations; any escape of their values goes
// through the other (separately judged) statement forms.
func bodyLocals(body *ast.BlockStmt) map[string]bool {
	locals := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if s.Tok == token.DEFINE {
				for _, lhs := range s.Lhs {
					if name := identName(lhs); name != "" {
						locals[name] = true
					}
				}
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				locals[name.Name] = true
			}
		case *ast.RangeStmt:
			if s.Tok == token.DEFINE {
				for _, e := range []ast.Expr{s.Key, s.Value} {
					if name := identName(e); name != "" {
						locals[name] = true
					}
				}
			}
		case *ast.FuncLit:
			return false // its bindings are not the loop body's
		}
		return true
	})
	return locals
}

// orderInsensitiveStmts reports whether every statement in the loop body is
// one of the forms whose combined effect is independent of iteration order.
func orderInsensitiveStmts(pkg *Package, stmts []ast.Stmt, key ast.Expr, locals map[string]bool) bool {
	for _, st := range stmts {
		if !orderInsensitiveStmt(pkg, st, key, locals) {
			return false
		}
	}
	return true
}

// orderInsensitiveStmt is the per-statement case analysis behind
// orderInsensitiveStmts.
func orderInsensitiveStmt(pkg *Package, st ast.Stmt, key ast.Expr, locals map[string]bool) bool {
	switch s := st.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pkg, s, key, locals)
	case *ast.IfStmt:
		if s.Init != nil && !orderInsensitiveStmt(pkg, s.Init, key, locals) {
			return false
		}
		if hasNonBuiltinCall(pkg, s.Cond) {
			return false
		}
		if !orderInsensitiveStmts(pkg, s.Body.List, key, locals) {
			return false
		}
		return s.Else == nil || orderInsensitiveStmt(pkg, s.Else, key, locals)
	case *ast.BlockStmt:
		return orderInsensitiveStmts(pkg, s.List, key, locals)
	case *ast.RangeStmt:
		// A nested loop over a slice/array/channel visits in a deterministic
		// order within this iteration, so it inherits the outer judgement as
		// long as its own body qualifies. A nested map range is excluded here
		// (it gets its own diagnostic from the walk, and exempting it would
		// hide the inner nondeterminism behind the outer exemption).
		if isMapType(pkg, s.X) || hasNonBuiltinCall(pkg, s.X) {
			return false
		}
		return orderInsensitiveStmts(pkg, s.Body.List, key, locals)
	case *ast.ForStmt:
		if s.Init != nil && !orderInsensitiveStmt(pkg, s.Init, key, locals) {
			return false
		}
		if s.Cond != nil && hasNonBuiltinCall(pkg, s.Cond) {
			return false
		}
		if s.Post != nil && !orderInsensitiveStmt(pkg, s.Post, key, locals) {
			return false
		}
		return orderInsensitiveStmts(pkg, s.Body.List, key, locals)
	case *ast.BranchStmt:
		// continue skips one iteration (harmless); break would stop after a
		// nondeterministic subset of iterations, so it stays flagged.
		return s.Tok == token.CONTINUE
	case *ast.ExprStmt:
		// delete(m, k): removals commute with each other.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	case *ast.DeclStmt:
		// var/const declarations bind locals; only call-free initializers
		// qualify (var x = f() would run f in visit order).
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return false
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if hasNonBuiltinCall(pkg, v) {
						return false
					}
				}
			}
		}
		return true
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// commutativeAssignOps are the compound assignments whose repeated
// application commutes: sums, products, bit sets/clears/toggles and shift
// totals. Division truncation and remainders do not commute, and string +=
// is concatenation (order-sensitive) — handled separately.
var commutativeAssignOps = map[token.Token]bool{
	token.ADD_ASSIGN:     true,
	token.SUB_ASSIGN:     true,
	token.MUL_ASSIGN:     true,
	token.AND_ASSIGN:     true,
	token.OR_ASSIGN:      true,
	token.XOR_ASSIGN:     true,
	token.AND_NOT_ASSIGN: true,
	token.SHL_ASSIGN:     true,
	token.SHR_ASSIGN:     true,
}

// orderInsensitiveAssign classifies one assignment inside a map-range body.
func orderInsensitiveAssign(pkg *Package, s *ast.AssignStmt, key ast.Expr, locals map[string]bool) bool {
	if s.Tok == token.DEFINE {
		// Iteration-local definition; its uses are judged where they occur.
		// The RHS must still be call-free: x := f() runs f in visit order.
		for _, rhs := range s.Rhs {
			if hasNonBuiltinCall(pkg, rhs) && !isSelfAppend(pkg, s, rhs) {
				return false
			}
		}
		return true
	}
	// Mutation of iteration-local variables: the variable is re-created
	// every iteration, so nothing carries across. Any op qualifies (even
	// string +=) as long as the RHS is call-free or a self-append.
	if allLocalTargets(s.Lhs, locals) {
		for _, rhs := range s.Rhs {
			if hasNonBuiltinCall(pkg, rhs) && !isSelfAppend(pkg, s, rhs) {
				return false
			}
		}
		return true
	}
	if commutativeAssignOps[s.Tok] {
		if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isStringType(pkg, s.Lhs[0]) {
			return false // string += is concatenation in visit order
		}
		for _, rhs := range s.Rhs {
			if hasNonBuiltinCall(pkg, rhs) {
				return false
			}
		}
		return true
	}
	if s.Tok != token.ASSIGN {
		return false
	}
	// x = max(x, e) / x = min(x, e).
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if lhs, ok := s.Lhs[0].(*ast.Ident); ok {
			if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
				if fn, ok := call.Fun.(*ast.Ident); ok && (fn.Name == "max" || fn.Name == "min") {
					selfArg := false
					for _, a := range call.Args {
						if id, ok := a.(*ast.Ident); ok && id.Name == lhs.Name {
							selfArg = true
						} else if hasNonBuiltinCall(pkg, a) {
							return false
						}
					}
					return selfArg
				}
			}
		}
	}
	// Stores keyed by the range key: slot[k] = e hits a distinct slot per
	// iteration (map keys are distinct). The slot expression may be a
	// selector chain (nt.snaps[id] = s) as long as it is call-free; the
	// value must not read the stored container or call anything.
	keyName := identName(key)
	if keyName == "" || keyName == "_" {
		return false
	}
	for _, lhs := range s.Lhs {
		if identName(lhs) == "_" {
			continue
		}
		ix, ok := lhs.(*ast.IndexExpr)
		if !ok || identName(ix.Index) != keyName || hasNonBuiltinCall(pkg, ix.X) {
			return false
		}
		container := rootIdent(ix.X)
		for _, rhs := range s.Rhs {
			if hasNonBuiltinCall(pkg, rhs) || (container != "" && mentionsIdent(rhs, container)) {
				return false
			}
		}
	}
	return true
}

// allLocalTargets reports whether every assignment target is a bare ident
// bound inside the loop body.
func allLocalTargets(lhs []ast.Expr, locals map[string]bool) bool {
	for _, e := range lhs {
		name := identName(e)
		if name == "_" {
			continue
		}
		if name == "" || !locals[name] {
			return false
		}
	}
	return len(lhs) > 0
}

// isSelfAppend reports whether rhs is append(x, ...) growing the single
// assignment target x itself, with call-free appended values — the one
// call shape the accumulation forms admit, because the backing array it
// may write is reachable only through x (append never mutates a slice it
// fully reallocates, and when it writes in place the written region is
// x's own tail).
func isSelfAppend(pkg *Package, s *ast.AssignStmt, rhs ast.Expr) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	name := identName(s.Lhs[0])
	if name == "" || name == "_" || identName(call.Args[0]) != name {
		return false
	}
	for _, a := range call.Args[1:] {
		if hasNonBuiltinCall(pkg, a) {
			return false
		}
	}
	return true
}

// collectThenSorted recognizes the collect-keys-and-sort idiom: the body
// only appends to outer slices (possibly under guards), and every such
// slice reaches a sort.* / slices.* call in a later statement of the same
// enclosing block.
func collectThenSorted(pkg *Package, rs *ast.RangeStmt, list []ast.Stmt, i int) bool {
	targets := make(map[string]bool)
	if !collectOnly(pkg, rs.Body.List, targets) || len(targets) == 0 {
		return false
	}
	for _, after := range list[i+1:] {
		call, ok := sortCall(after)
		if !ok {
			continue
		}
		callText := types.ExprString(call)
		for name := range targets {
			if strings.Contains(callText, name) {
				delete(targets, name)
			}
		}
		if len(targets) == 0 {
			return true
		}
	}
	return false
}

// collectOnly reports whether every statement is an append into an outer
// target (x = append(x, ...), where x may be a call-free selector chain
// like t.order), a guard around such appends, or a continue — recording
// the append targets by their printed form.
func collectOnly(pkg *Package, stmts []ast.Stmt, targets map[string]bool) bool {
	for _, st := range stmts {
		switch s := st.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 || len(s.Rhs) != 1 || (s.Tok != token.ASSIGN && s.Tok != token.DEFINE) {
				return false
			}
			name := appendTarget(s.Lhs[0])
			call, ok := s.Rhs[0].(*ast.CallExpr)
			if name == "" || !ok {
				return false
			}
			if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
				return false
			}
			if len(call.Args) == 0 || appendTarget(call.Args[0]) != name {
				return false
			}
			targets[name] = true
		case *ast.IfStmt:
			if s.Else != nil || hasNonBuiltinCall(pkg, s.Cond) {
				return false
			}
			if s.Init != nil {
				// Only a call-free := (e.g. if nb, ok := m[k]; ok { ... }).
				init, ok := s.Init.(*ast.AssignStmt)
				if !ok || init.Tok != token.DEFINE {
					return false
				}
				for _, rhs := range init.Rhs {
					if hasNonBuiltinCall(pkg, rhs) {
						return false
					}
				}
			}
			if !collectOnly(pkg, s.Body.List, targets) {
				return false
			}
		case *ast.RangeStmt:
			// Nested loops around the appends are fine — whatever order the
			// appends happen in, the trailing sort canonicalizes it.
			if hasNonBuiltinCall(pkg, s.X) || !collectOnly(pkg, s.Body.List, targets) {
				return false
			}
		case *ast.ForStmt:
			if (s.Cond != nil && hasNonBuiltinCall(pkg, s.Cond)) || !collectOnly(pkg, s.Body.List, targets) {
				return false
			}
		case *ast.BranchStmt:
			if s.Tok != token.CONTINUE {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// appendTarget renders an append target for textual matching: a bare ident
// or a selector chain of idents (t.order); anything else (calls, indexes)
// yields "".
func appendTarget(expr ast.Expr) string {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := appendTarget(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	}
	return ""
}

// rootIdent returns the leftmost identifier of a selector/index chain, or
// "" when the chain bottoms out in something else.
func rootIdent(expr ast.Expr) string {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e.Name
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return ""
		}
	}
}

// sortCall extracts a sort.*/slices.* call expression from a statement, if
// that is what it is (an ExprStmt like sort.Strings(keys), or an assignment
// whose RHS is such a call, like keys = slices.Sorted(...)).
func sortCall(st ast.Stmt) (ast.Expr, bool) {
	var expr ast.Expr
	switch s := st.(type) {
	case *ast.ExprStmt:
		expr = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			expr = s.Rhs[0]
		}
	}
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	pkgName := identName(sel.X)
	if pkgName != "sort" && pkgName != "slices" {
		return nil, false
	}
	return call, true
}

// hasNonBuiltinCall reports whether expr contains a call that is neither a
// builtin (len, cap, min, max, abs-free arithmetic) nor a type conversion —
// the conservative bar for "no side effects, no order dependence".
func hasNonBuiltinCall(pkg *Package, expr ast.Expr) bool {
	if expr == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap", "min", "max", "make", "new":
				return true
			}
		}
		// A type conversion (float64(x)) is pure; detectable when the
		// checker resolved the operand as a type.
		if pkg.Info != nil {
			if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
				return true
			}
		}
		found = true
		return false
	})
	return found
}

// isStringType reports whether expr is known to be a string.
func isStringType(pkg *Package, expr ast.Expr) bool {
	if pkg.Info == nil {
		return false
	}
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// identName returns the name of an identifier expression, or "".
func identName(expr ast.Expr) string {
	if id, ok := expr.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// mentionsIdent reports whether name occurs as an identifier in expr.
func mentionsIdent(expr ast.Expr, name string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
