package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// substreamPkgs are the packages whose constant RNG substream numbers the
// registry governs: the scenario drivers, the engine's cache helpers and
// the energy workloads — everywhere a stream constant decides which random
// draws a cached structure or a simulation consumes.
var substreamPkgs = map[string]bool{
	"internal/experiments": true,
	"internal/scenario":    true,
	"internal/energy":      true,
}

// streamArgIndex maps the Ctx cache-helper methods to the position of
// their stream-number argument. rng.Sub's stream is argument 1 and is
// handled separately.
var streamArgIndex = map[string]int{
	"Deploy":         0,
	"DeployGradient": 0,
	"DeploySoA":      0,
	"HNG":            2,
	"Trajectory":     2,
}

// streamUse is one constant substream number observed in code.
type streamUse struct {
	Stream uint64
	File   string // basename, the registry's owner coordinate
	Pos    token.Position
}

// substreams extracts every constant-argument rng.Sub(seed, N) stream and
// every constant Ctx helper stream number from the governed packages and
// cross-checks them against the docs/substreams.md registry. Three failure
// modes, each fatal:
//
//   - missing entry: a stream constant in code that the registry does not
//     list — every stream must be claimed before use;
//   - collision: a stream used from a file the registry does not name as
//     an owner — deliberate sharing (H01 reusing E14's deployment) is
//     declared by listing both owners, anything else is two scenarios
//     silently drawing correlated randomness from one seed;
//   - stale entry: a registry stream no longer present in code — the
//     registry must shrink with the code so it stays trustworthy.
//
// Computed streams (base+i loops) are invisible to this analyzer; the
// registry documents their bases as prose rows the analyzer ignores
// (non-numeric Stream column).
func substreams(mod *Module, registryPath string) []Diagnostic {
	if registryPath == "" {
		registryPath = filepath.Join(mod.Root, "docs", "substreams.md")
	}
	uses := collectStreamUses(mod)
	reg, diags := parseRegistry(registryPath)
	if len(diags) > 0 {
		return diags
	}

	usedStreams := make(map[uint64]bool)
	for _, u := range uses {
		usedStreams[u.Stream] = true
		owners, ok := reg.owners[u.Stream]
		if !ok {
			diags = append(diags, Diagnostic{
				Pos:  u.Pos,
				Rule: "substreams",
				Msg:  fmt.Sprintf("stream %d is not in the registry (%s): add a row claiming it", u.Stream, reg.path),
			})
			continue
		}
		if !owners[u.File] {
			diags = append(diags, Diagnostic{
				Pos:  u.Pos,
				Rule: "substreams",
				Msg: fmt.Sprintf("stream %d used by %s but registered to %s: undeclared sharing collides on one seed (add the owner to the registry row if deliberate)",
					u.Stream, u.File, strings.Join(reg.ownerList[u.Stream], ", ")),
			})
		}
	}
	for _, s := range reg.streams {
		if !usedStreams[s] {
			diags = append(diags, Diagnostic{
				Pos:  token.Position{Filename: reg.path, Line: reg.line[s]},
				Rule: "substreams",
				Msg:  fmt.Sprintf("stale registry entry: stream %d no longer appears in code", s),
			})
		}
	}
	return diags
}

// collectStreamUses gathers the constant stream numbers of the governed
// packages, sorted by position. Besides the direct sinks (rng.Sub and the
// Ctx helpers), package-local wrapper functions are tracked by a small
// fixpoint: a function whose parameter reaches a stream position makes its
// own call sites stream sinks at that parameter, so idioms like
// udgNet(ctx, 800, …) register 800 too. Streams computed at a call site
// (base+i loops) stay invisible by design.
func collectStreamUses(mod *Module) []streamUse {
	var uses []streamUse
	for _, pkg := range mod.Pkgs {
		if !substreamPkgs[mod.Rel(pkg)] {
			continue
		}
		sinks := streamSinks(pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, idx := range streamArgPositions(call, sinks) {
					stream, ok := constStream(pkg, call.Args[idx])
					if !ok {
						continue
					}
					pos := mod.Fset.Position(call.Pos())
					uses = append(uses, streamUse{Stream: stream, File: filepath.Base(pos.Filename), Pos: pos})
				}
				return true
			})
		}
	}
	sort.Slice(uses, func(i, j int) bool {
		a, b := uses[i].Pos, uses[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return uses[i].Stream < uses[j].Stream
	})
	return uses
}

// streamSinks computes, per package-local function name, the parameter
// positions that flow into a stream argument (of a direct sink or of a
// previously discovered wrapper), iterated to a fixpoint.
func streamSinks(pkg *Package) map[string]map[int]bool {
	sinks := make(map[string]map[int]bool)
	for changed := true; changed; {
		changed = false
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil || fn.Type.Params == nil {
					continue
				}
				paramIdx := make(map[string]int)
				i := 0
				for _, field := range fn.Type.Params.List {
					for _, name := range field.Names {
						paramIdx[name.Name] = i
						i++
					}
				}
				if len(paramIdx) == 0 {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					for _, idx := range streamArgPositions(call, sinks) {
						name := identName(call.Args[idx])
						pi, isParam := paramIdx[name]
						if !isParam {
							continue
						}
						if sinks[fn.Name.Name] == nil {
							sinks[fn.Name.Name] = make(map[int]bool)
						}
						if !sinks[fn.Name.Name][pi] {
							sinks[fn.Name.Name][pi] = true
							changed = true
						}
					}
					return true
				})
			}
		}
	}
	return sinks
}

// streamArgPositions returns the argument indexes of call that are stream
// numbers: rng.Sub's second argument, the Ctx helpers' documented
// positions, and any wrapper positions discovered by streamSinks.
func streamArgPositions(call *ast.CallExpr, sinks map[string]map[int]bool) []int {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if name == "Sub" && identName(fun.X) == "rng" && len(call.Args) == 2 {
			return []int{1}
		}
	case *ast.Ident:
		name = fun.Name
	default:
		return nil
	}
	var out []int
	if idx, ok := streamArgIndex[name]; ok && len(call.Args) > idx {
		out = append(out, idx)
	}
	for idx := range sinks[name] {
		if len(call.Args) > idx {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	// A wrapper position may coincide with a documented helper position.
	out = dedupInts(out)
	return out
}

// dedupInts removes adjacent duplicates from a sorted slice.
func dedupInts(xs []int) []int {
	n := 0
	for i, x := range xs {
		if i == 0 || x != xs[n-1] {
			xs[n] = x
			n++
		}
	}
	return xs[:n]
}


// constStream evaluates a stream argument to a constant uint64 when
// possible: via the type checker's constant folding first (covers named
// constants), then a literal-int fallback for untyped fixture code.
func constStream(pkg *Package, expr ast.Expr) (uint64, bool) {
	if pkg.Info != nil {
		if tv, ok := pkg.Info.Types[expr]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
			if v, ok := constant.Uint64Val(tv.Value); ok {
				return v, true
			}
			return 0, false
		}
	}
	if lit, ok := expr.(*ast.BasicLit); ok && lit.Kind == token.INT {
		v, err := strconv.ParseUint(lit.Value, 0, 64)
		return v, err == nil
	}
	return 0, false
}

// registry is the parsed machine-readable half of docs/substreams.md.
type registry struct {
	path      string
	streams   []uint64 // registered constant streams, in file order
	owners    map[uint64]map[string]bool
	ownerList map[uint64][]string
	line      map[uint64]int
}

// parseRegistry reads the substream registry: every markdown table row
// whose first cell is a bare integer is an entry `| stream | owners |
// purpose |` with owners a comma-separated file list. Rows with
// non-numeric stream cells (range bases like "3000+") are documentation
// only. A missing or duplicate-entry registry is itself a finding.
func parseRegistry(path string) (*registry, []Diagnostic) {
	reg := &registry{
		path:      path,
		owners:    make(map[uint64]map[string]bool),
		ownerList: make(map[uint64][]string),
		line:      make(map[uint64]int),
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return reg, []Diagnostic{{
			Pos:  token.Position{Filename: path},
			Rule: "substreams",
			Msg:  fmt.Sprintf("registry unreadable: %v (generate one with sensvet -gen-substreams)", err),
		}}
	}
	var diags []Diagnostic
	for i, line := range strings.Split(string(data), "\n") {
		cells := tableRow(line)
		if len(cells) < 2 {
			continue
		}
		stream, err := strconv.ParseUint(cells[0], 10, 64)
		if err != nil {
			continue // header, separator, or a documentation-only range row
		}
		if _, dup := reg.owners[stream]; dup {
			diags = append(diags, Diagnostic{
				Pos:  token.Position{Filename: path, Line: i + 1},
				Rule: "substreams",
				Msg:  fmt.Sprintf("duplicate registry entry for stream %d", stream),
			})
			continue
		}
		owners := make(map[string]bool)
		var list []string
		for _, o := range strings.Split(cells[1], ",") {
			o = strings.TrimSpace(o)
			if o != "" {
				owners[o] = true
				list = append(list, o)
			}
		}
		if len(owners) == 0 {
			diags = append(diags, Diagnostic{
				Pos:  token.Position{Filename: path, Line: i + 1},
				Rule: "substreams",
				Msg:  fmt.Sprintf("registry entry for stream %d has no owners", stream),
			})
			continue
		}
		reg.streams = append(reg.streams, stream)
		reg.owners[stream] = owners
		reg.ownerList[stream] = list
		reg.line[stream] = i + 1
	}
	return reg, diags
}

// tableRow splits a markdown table line into trimmed cells, or nil when the
// line is not a table row.
func tableRow(line string) []string {
	line = strings.TrimSpace(line)
	if !strings.HasPrefix(line, "|") {
		return nil
	}
	parts := strings.Split(strings.Trim(line, "|"), "|")
	cells := make([]string, len(parts))
	for i, p := range parts {
		cells[i] = strings.TrimSpace(p)
	}
	return cells
}

// GenerateRegistry renders a registry table skeleton from the module's
// current constant stream uses — the bootstrap for docs/substreams.md (the
// purpose column starts as TODO; owners come from code). Output is
// deterministic: streams ascending, owners in first-use order.
func GenerateRegistry(mod *Module) string {
	uses := collectStreamUses(mod)
	owners := make(map[uint64][]string)
	var streams []uint64
	for _, u := range uses {
		if _, ok := owners[u.Stream]; !ok {
			streams = append(streams, u.Stream)
		}
		dup := false
		for _, o := range owners[u.Stream] {
			if o == u.File {
				dup = true
			}
		}
		if !dup {
			owners[u.Stream] = append(owners[u.Stream], u.File)
		}
	}
	sort.Slice(streams, func(i, j int) bool { return streams[i] < streams[j] })
	var b strings.Builder
	b.WriteString("| Stream | Owners | Purpose |\n| --- | --- | --- |\n")
	for _, s := range streams {
		fmt.Fprintf(&b, "| %d | %s | TODO |\n", s, strings.Join(owners[s], ", "))
	}
	return b.String()
}
