// Package rng is the fixture stand-in for the real substream helpers.
package rng

// Sub mimics the real substream derivation signature.
func Sub(seed, stream uint64) uint64 { return seed ^ stream }
