// The waiver fixtures: malformed, unknown-rule and stale waivers all
// produce waiverlint findings; the valid used waiver lives in core.
package experiments

//sensvet:allow detrange // want waiverlint (malformed: no reason separator)

//sensvet:allow nosuchrule — bogus rule name // want waiverlint

//sensvet:allow detclock — nothing on the next line reads a clock, so this is stale // want waiverlint
var quiet = 0
