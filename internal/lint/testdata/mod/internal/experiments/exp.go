// Package experiments is the fixture corpus for the substreams analyzer:
// registered, colliding, missing, wrapper-propagated and helper-position
// stream constants, checked against docs/substreams.md in this module.
package experiments

import (
	"fixture/internal/rng"
	"fixture/internal/scenario"
)

// run exercises every substream shape in one place.
func run(ctx *scenario.Ctx, seed uint64) {
	_ = rng.Sub(seed, 5)  // registered to exp.go
	_ = rng.Sub(seed, 7)  // want substreams — registered to other.go only
	_ = rng.Sub(seed, 11) // want substreams — not in the registry
	viaWrapper(seed, 13) // registered via the wrapper — proves propagation
	_ = ctx.Deploy(21, 1.0, 1.0)
}

// viaWrapper forwards its stream parameter into rng.Sub, so constant
// arguments at its call sites register as stream uses.
func viaWrapper(seed, stream uint64) {
	_ = rng.Sub(seed, stream)
}
