// Package scenario is the fixture stand-in for the real cache helpers.
package scenario

// Deployment mirrors the real cached-deployment handle.
type Deployment struct{ Key string }

// Ctx mirrors the real scenario context.
type Ctx struct{}

// Deploy mirrors the real helper: argument 0 is a substream number.
func (c *Ctx) Deploy(stream uint64, side, lambda float64) Deployment {
	return Deployment{}
}
