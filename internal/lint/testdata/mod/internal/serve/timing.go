// Package serve is allowlisted for wall-clock reads: its latency metrics
// are measurements about the serving process, not result bytes.
package serve

import "time"

// Latency reads the clock — allowed here.
func Latency(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp reads the clock — allowed here.
func Stamp() time.Time { return time.Now() }
