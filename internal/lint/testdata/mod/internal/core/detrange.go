// Package core is the fixture corpus for the detrange analyzer: each
// function is one loop shape, flagged or exempt.
package core

import "sort"

// flagStringConcat builds a string in map order — order-sensitive.
func flagStringConcat(m map[string]int) string {
	s := ""
	for k := range m { // want detrange
		s += k
	}
	return s
}

// flagCallInBody calls an arbitrary function per key — unprovable.
func flagCallInBody(m map[string]int) {
	for k := range m { // want detrange
		process(k)
	}
}

// flagAppendNoSort collects in map order and never sorts.
func flagAppendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want detrange
		keys = append(keys, k)
	}
	return keys
}

// flagBreak stops after a nondeterministic subset of iterations.
func flagBreak(m map[string]int) int {
	total := 0
	for _, v := range m { // want detrange
		total += v
		if total > 10 {
			break
		}
	}
	return total
}

// okCounter accumulates commutatively.
func okCounter(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// okMax folds with max.
func okMax(m map[string]int) int {
	best := 0
	for _, v := range m {
		best = max(best, v)
	}
	return best
}

// okKeyedStore writes distinct slots per key, through a selector chain.
func okKeyedStore(m map[string]int, dst *holder) {
	for k, v := range m {
		dst.out[k] = v * 2
	}
}

// okCollectSort collects then sorts in the same block.
func okCollectSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// okGuardedCollectSort collects under an if-init guard with a nested loop.
func okGuardedCollectSort(m map[string]map[string]bool) []string {
	var keys []string
	for k := range m {
		if inner, ok := m[k]; ok && len(inner) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// okDelete removes entries — removals commute.
func okDelete(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// okLocals mutates only iteration-local state plus a max fold.
func okLocals(m map[string][]int) int {
	best := 0
	for _, vs := range m {
		t := 0
		for _, v := range vs {
			t += v
		}
		best = max(best, t)
	}
	return best
}

// waivedCollect is order-sensitive but carries a reasoned waiver.
func waivedCollect(m map[string]int) []string {
	var keys []string
	//sensvet:allow detrange — fixture: callers treat the listing as a set
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

type holder struct{ out map[string]int }

func process(string) {}
