package core

import (
	"math/rand/v2"
	"time"
)

// flagClock reads the wall clock inside a result-producing package.
func flagClock() float64 {
	start := time.Now()    // want detclock
	d := time.Since(start) // want detclock
	return d.Seconds()
}

// flagGlobalRand draws from the global math/rand generator.
func flagGlobalRand() int {
	return rand.IntN(10) // want detclock
}

// okSeededRand builds an explicit generator — deterministic.
func okSeededRand() *rand.Rand {
	return rand.New(rand.NewPCG(1, 2))
}
