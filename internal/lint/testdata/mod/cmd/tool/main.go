// Command tool is the fixture CLI: wall-time reporting is allowed in
// cmd packages.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
