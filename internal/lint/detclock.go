package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// detclockAllowed reports whether a package may read wall clocks and global
// randomness: the serving layer's metrics/timing surface, its load
// generator, and the CLIs' wall-time reporting. Simulation and measurement
// paths are never allowed — a result byte must not depend on the clock or
// on unseeded randomness.
func detclockAllowed(rel string) bool {
	return rel == "internal/serve" || rel == "internal/serve/loadgen" ||
		rel == "cmd" || strings.HasPrefix(rel, "cmd/")
}

// clockFuncs are the time package's wall-clock reads that leak
// nondeterminism into anything derived from them.
var clockFuncs = map[string]bool{"Now": true, "Since": true}

// randAllowed are the math/rand selectors that do NOT touch the global
// generator: explicit-source constructors and type names. Everything else
// (Int, IntN, N, Float64, Shuffle, Perm, Seed, ...) draws from or reseeds
// global state and is flagged.
var randAllowed = map[string]bool{
	"New": true, "NewPCG": true, "NewChaCha8": true, "NewSource": true,
	"NewZipf": true, "Rand": true, "Source": true, "PCG": true,
	"ChaCha8": true, "Zipf": true,
}

// detclock flags time.Now / time.Since and global math/rand usage outside
// the allowlist. Resolution is by import: a file importing "time" or
// "math/rand"/"math/rand/v2" has the flagged selectors matched against the
// import's local name, with types.Info confirming the receiver is the
// package (not a shadowing local) when available.
func detclock(mod *Module) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range mod.Pkgs {
		if detclockAllowed(mod.Rel(pkg)) {
			continue
		}
		out = append(out, detclockPkg(mod, pkg)...)
	}
	return out
}

// detclockPkg runs the wall-clock/global-rand rule over one package.
func detclockPkg(mod *Module, pkg *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range pkg.Files {
		timeName := importLocalName(f, "time")
		randName := importLocalName(f, "math/rand")
		if randName == "" {
			randName = importLocalName(f, "math/rand/v2")
		}
		if timeName == "" && randName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !isPackageIdent(pkg, x) {
				return true
			}
			switch {
			case timeName != "" && x.Name == timeName && clockFuncs[sel.Sel.Name]:
				out = append(out, Diagnostic{
					Pos:  mod.Fset.Position(sel.Pos()),
					Rule: "detclock",
					Msg: fmt.Sprintf("wall-clock read %s.%s outside the measurement allowlist: results must not depend on real time",
						x.Name, sel.Sel.Name),
				})
			case randName != "" && x.Name == randName && !randAllowed[sel.Sel.Name]:
				out = append(out, Diagnostic{
					Pos:  mod.Fset.Position(sel.Pos()),
					Rule: "detclock",
					Msg: fmt.Sprintf("global math/rand use %s.%s: draw from an explicit rng.Sub substream instead",
						x.Name, sel.Sel.Name),
				})
			}
			return true
		})
	}
	return out
}

// importLocalName returns the name the file refers to the import path by
// ("" when not imported, the last path element — version suffix collapsed —
// when unnamed).
func importLocalName(f *ast.File, path string) string {
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return ""
			}
			return imp.Name.Name
		}
		name := path[strings.LastIndex(path, "/")+1:]
		if len(name) > 1 && name[0] == 'v' && strings.TrimLeft(name[1:], "0123456789") == "" {
			trimmed := path[:strings.LastIndex(path, "/")]
			name = trimmed[strings.LastIndex(trimmed, "/")+1:]
		}
		return name
	}
	return ""
}

// isPackageIdent reports whether id denotes an imported package (rather
// than a shadowing local). Without type information it errs on the side of
// flagging (returns true).
func isPackageIdent(pkg *Package, id *ast.Ident) bool {
	if pkg.Info == nil {
		return true
	}
	obj, ok := pkg.Info.Uses[id]
	if !ok || obj == nil {
		return true // unresolved (shim import): assume the package
	}
	_, isPkg := obj.(*types.PkgName)
	return isPkg
}
