// Package topo implements the classical topology-control baselines the
// paper positions itself against (§1.2): structures that keep EVERY node
// connected — the Gabriel graph, the relative neighborhood graph (RNG),
// the Yao graph, and the Euclidean minimum spanning tree — plus plain k-NN.
// The E14 experiment compares them with the SENS constructions on degree,
// stretch, power and active-node metrics.
//
// All four are computed as subgraphs of a unit disk graph (as a real radio
// network would), so "connected" means "as connected as UDG allows".
package topo

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rgg"
)

// The witness scans (Gabriel, RNG) and the cone scan (Yao) are embarrassingly
// parallel over the source vertex: each vertex decides its kept edges from
// base adjacency alone. They run sharded across all cores with per-shard
// packed-edge buffers merged in shard order, so the output CSR is identical
// at any GOMAXPROCS.

// Gabriel returns the Gabriel graph restricted to base edges: {u, v} is
// kept iff the disk with diameter uv contains no other point.
func Gabriel(base *rgg.Geometric) *rgg.Geometric {
	pts := base.Pos
	b := graph.NewBuilder(len(pts))
	edges := parallel.Collect(base.N, func(lo, hi int, out []uint64) []uint64 {
		for u := int32(lo); u < int32(hi); u++ {
			for _, v := range base.Neighbors(u) {
				if v <= u {
					continue
				}
				mid := geom.Midpoint(pts[u], pts[v])
				r2 := pts[u].Dist2(pts[v]) / 4
				ok := true
				// Any witness must be a UDG neighbor of u or v (it lies within
				// the uv-diameter disk, so within d(u,v) ≤ radius of both).
				for _, w := range base.Neighbors(u) {
					if w != v && mid.Dist2(pts[w]) < r2-1e-15 {
						ok = false
						break
					}
				}
				if ok {
					for _, w := range base.Neighbors(v) {
						if w != u && mid.Dist2(pts[w]) < r2-1e-15 {
							ok = false
							break
						}
					}
				}
				if ok {
					out = append(out, graph.Pack(u, v))
				}
			}
		}
		return out
	})
	b.AddPacked(edges, true)
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// RelativeNeighborhood returns the RNG restricted to base edges: {u, v} is
// kept iff no point w has max(d(u,w), d(v,w)) < d(u,v) (the "lune" is
// empty).
func RelativeNeighborhood(base *rgg.Geometric) *rgg.Geometric {
	pts := base.Pos
	b := graph.NewBuilder(len(pts))
	edges := parallel.Collect(base.N, func(lo, hi int, out []uint64) []uint64 {
		for u := int32(lo); u < int32(hi); u++ {
			for _, v := range base.Neighbors(u) {
				if v <= u {
					continue
				}
				duv := pts[u].Dist2(pts[v])
				ok := true
				// A lune witness is within d(u,v) of both u and v, hence a UDG
				// neighbor of u.
				for _, w := range base.Neighbors(u) {
					if w == v {
						continue
					}
					if pts[u].Dist2(pts[w]) < duv-1e-15 && pts[v].Dist2(pts[w]) < duv-1e-15 {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, graph.Pack(u, v))
				}
			}
		}
		return out
	})
	b.AddPacked(edges, true)
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// Yao returns the Yao graph with the given number of cones (≥ 6 for
// connectivity guarantees): each vertex keeps, per cone, its shortest base
// edge. The union is taken undirected.
func Yao(base *rgg.Geometric, cones int) *rgg.Geometric {
	if cones < 1 {
		cones = 1
	}
	pts := base.Pos
	b := graph.NewBuilder(len(pts))
	edges := parallel.Collect(base.N, func(lo, hi int, out []uint64) []uint64 {
		best := make([]int32, cones)
		bestD := make([]float64, cones)
		for u := int32(lo); u < int32(hi); u++ {
			for c := range best {
				best[c] = -1
				bestD[c] = math.Inf(1)
			}
			for _, v := range base.Neighbors(u) {
				dir := pts[v].Sub(pts[u])
				theta := dir.Angle() // (−π, π]
				c := int((theta + math.Pi) / (2 * math.Pi) * float64(cones))
				if c >= cones {
					c = cones - 1
				}
				if d := dir.Norm2(); d < bestD[c] {
					bestD[c] = d
					best[c] = v
				}
			}
			for _, v := range best {
				if v >= 0 {
					// Opposite cones of v may select the same pair; dedup at
					// build handles the double emission.
					out = append(out, graph.Pack(u, v))
				}
			}
		}
		return out
	})
	b.AddPacked(edges, false)
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// EMST returns the Euclidean minimum spanning forest of the base graph
// (Kruskal over base edges; a spanning tree per connected component).
func EMST(base *rgg.Geometric) *rgg.Geometric {
	pts := base.Pos
	type edge struct {
		u, v int32
		d2   float64
	}
	var edges []edge
	for u := int32(0); int(u) < base.N; u++ {
		for _, v := range base.Neighbors(u) {
			if v > u {
				edges = append(edges, edge{u, v, pts[u].Dist2(pts[v])})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].d2 < edges[j].d2 })
	uf := graph.NewUnionFind(base.N)
	b := graph.NewBuilder(base.N)
	for _, e := range edges {
		if uf.Union(e.u, e.v) {
			b.AddEdge(e.u, e.v)
		}
	}
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// KNN returns the undirected k-nearest-neighbor graph (re-exported from rgg
// for baseline symmetry).
func KNN(pts []geom.Point, k int) *rgg.Geometric { return rgg.NN(pts, k) }
