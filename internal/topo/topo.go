// Package topo implements the classical topology-control baselines the
// paper positions itself against (§1.2): structures that keep EVERY node
// connected — the Gabriel graph, the relative neighborhood graph (RNG),
// the Yao graph, and the Euclidean minimum spanning tree — plus plain k-NN.
// The E14 experiment compares them with the SENS constructions on degree,
// stretch, power and active-node metrics.
//
// All four are computed as subgraphs of a unit disk graph (as a real radio
// network would), so "connected" means "as connected as UDG allows".
package topo

import (
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rgg"
)

// The witness scans (Gabriel, RNG) and the cone scan (Yao) are embarrassingly
// parallel over the source vertex: each vertex decides its kept edges from
// base adjacency alone. They run sharded across all cores with per-shard
// packed-edge buffers merged in shard order, so the output CSR is identical
// at any GOMAXPROCS.

// Gabriel returns the Gabriel graph restricted to base edges: {u, v} is
// kept iff the disk with diameter uv contains no other point.
func Gabriel(base *rgg.Geometric) *rgg.Geometric {
	pts := base.Pos
	b := graph.NewBuilder(len(pts))
	edges := parallel.Collect(base.N, func(lo, hi int, out []uint64) []uint64 {
		for u := int32(lo); u < int32(hi); u++ {
			for _, v := range base.Neighbors(u) {
				if v <= u {
					continue
				}
				mid := geom.Midpoint(pts[u], pts[v])
				r2 := pts[u].Dist2(pts[v]) / 4
				ok := true
				// Any witness must be a UDG neighbor of u or v (it lies within
				// the uv-diameter disk, so within d(u,v) ≤ radius of both).
				for _, w := range base.Neighbors(u) {
					if w != v && mid.Dist2(pts[w]) < r2-1e-15 {
						ok = false
						break
					}
				}
				if ok {
					for _, w := range base.Neighbors(v) {
						if w != u && mid.Dist2(pts[w]) < r2-1e-15 {
							ok = false
							break
						}
					}
				}
				if ok {
					out = append(out, graph.Pack(u, v))
				}
			}
		}
		return out
	})
	b.AddPacked(edges, true)
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// RelativeNeighborhood returns the RNG restricted to base edges: {u, v} is
// kept iff no point w has max(d(u,w), d(v,w)) < d(u,v) (the "lune" is
// empty).
func RelativeNeighborhood(base *rgg.Geometric) *rgg.Geometric {
	pts := base.Pos
	b := graph.NewBuilder(len(pts))
	edges := parallel.Collect(base.N, func(lo, hi int, out []uint64) []uint64 {
		for u := int32(lo); u < int32(hi); u++ {
			for _, v := range base.Neighbors(u) {
				if v <= u {
					continue
				}
				duv := pts[u].Dist2(pts[v])
				ok := true
				// A lune witness is within d(u,v) of both u and v, hence a UDG
				// neighbor of u.
				for _, w := range base.Neighbors(u) {
					if w == v {
						continue
					}
					if pts[u].Dist2(pts[w]) < duv-1e-15 && pts[v].Dist2(pts[w]) < duv-1e-15 {
						ok = false
						break
					}
				}
				if ok {
					out = append(out, graph.Pack(u, v))
				}
			}
		}
		return out
	})
	b.AddPacked(edges, true)
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// Yao returns the Yao graph with the given number of cones (≥ 6 for
// connectivity guarantees): each vertex keeps, per cone, its shortest base
// edge. The union is taken undirected.
func Yao(base *rgg.Geometric, cones int) *rgg.Geometric {
	if cones < 1 {
		cones = 1
	}
	pts := base.Pos
	b := graph.NewBuilder(len(pts))
	edges := parallel.Collect(base.N, func(lo, hi int, out []uint64) []uint64 {
		best := make([]int32, cones)
		bestD := make([]float64, cones)
		for u := int32(lo); u < int32(hi); u++ {
			for c := range best {
				best[c] = -1
				bestD[c] = math.Inf(1)
			}
			for _, v := range base.Neighbors(u) {
				dir := pts[v].Sub(pts[u])
				theta := dir.Angle() // (−π, π]
				c := int((theta + math.Pi) / (2 * math.Pi) * float64(cones))
				if c >= cones {
					c = cones - 1
				}
				if d := dir.Norm2(); d < bestD[c] {
					bestD[c] = d
					best[c] = v
				}
			}
			for _, v := range best {
				if v >= 0 {
					// Opposite cones of v may select the same pair; dedup at
					// build handles the double emission.
					out = append(out, graph.Pack(u, v))
				}
			}
		}
		return out
	})
	b.AddPacked(edges, false)
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// EMST returns the Euclidean minimum spanning forest of the base graph
// (Kruskal over base edges; a spanning tree per connected component).
//
// The build is a filter-Kruskal-style pipeline instead of the classical
// sort-everything Kruskal: edges are extracted in parallel (packed pairs,
// deterministic shard merge), split around a sampled median weight, and the
// light half is radix-sorted (LSD counting sort on the IEEE-754 bit pattern
// of d², which orders like the float for non-negative values) and scanned
// first. The heavy half is then filtered through the union-find — any edge
// whose endpoints the light half already connected can never enter the
// forest — before being sorted and scanned itself. On a UDG with mean
// degree ~50 the light scan connects almost everything, so the filter
// discards most of the edge set without ever sorting it, and no
// sort.Slice interface boxing happens at any size.
func EMST(base *rgg.Geometric) *rgg.Geometric {
	pts := base.Pos
	packed := parallel.Collect(base.N, func(lo, hi int, out []uint64) []uint64 {
		for u := int32(lo); u < int32(hi); u++ {
			for _, v := range base.Neighbors(u) {
				if v > u {
					out = append(out, graph.Pack(u, v))
				}
			}
		}
		return out
	})
	recs := make([]emstEdge, len(packed))
	parallel.ForShard(len(packed), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			u, v := graph.Unpack(packed[i])
			recs[i] = emstEdge{key: math.Float64bits(pts[u].Dist2(pts[v])), e: packed[i]}
		}
	})

	uf := graph.NewUnionFind(base.N)
	b := graph.NewBuilder(base.N)
	scratch := &emstScratch{aux: make([]emstEdge, len(recs))}
	if len(recs) > emstFilterCutoff {
		pivot := emstPivot(recs)
		light, heavy := emstPartition(recs, scratch.aux, pivot)
		emstKruskal(light, uf, b, scratch)
		if uf.Count() > 1 {
			// Filter: drop heavy edges already connected by the light forest.
			kept := heavy[:0]
			for _, r := range heavy {
				if u, v := graph.Unpack(r.e); !uf.Connected(u, v) {
					kept = append(kept, r)
				}
			}
			emstKruskal(kept, uf, b, scratch)
		}
	} else {
		emstKruskal(recs, uf, b, scratch)
	}
	return &rgg.Geometric{CSR: b.Build(), Pos: pts}
}

// emstFilterCutoff is the edge count below which the light/heavy split is
// not worth the extra pass and a single sort+scan runs directly.
const emstFilterCutoff = 4096

// emstEdge carries one candidate edge: the Float64bits of its squared
// length (radix-sort key) and the packed (u, v) pair.
type emstEdge struct {
	key uint64
	e   uint64
}

type emstScratch struct {
	aux   []emstEdge
	count [1 << 16]int32
}

// emstPivot returns an approximate median key from a deterministic stride
// sample.
func emstPivot(recs []emstEdge) uint64 {
	const samples = 255
	stride := len(recs) / samples
	if stride < 1 {
		stride = 1
	}
	var keys []uint64
	for i := 0; i < len(recs); i += stride {
		keys = append(keys, recs[i].key)
	}
	slices.Sort(keys)
	return keys[len(keys)/2]
}

// emstPartition stably splits recs into (key <= pivot, key > pivot) using
// aux as the staging area for the heavy side; both returned slices alias
// recs and preserve relative order.
func emstPartition(recs, aux []emstEdge, pivot uint64) (light, heavy []emstEdge) {
	nl := 0
	nh := 0
	for _, r := range recs {
		if r.key <= pivot {
			recs[nl] = r
			nl++
		} else {
			aux[nh] = r
			nh++
		}
	}
	copy(recs[nl:], aux[:nh])
	return recs[:nl], recs[nl:]
}

// emstKruskal sorts the edges by key and runs the union-find scan, stopping
// as soon as the forest spans.
func emstKruskal(recs []emstEdge, uf *graph.UnionFind, b *graph.Builder, s *emstScratch) {
	emstRadixSort(recs, s)
	for _, r := range recs {
		u, v := graph.Unpack(r.e)
		if uf.Union(u, v) {
			b.AddEdgeUnique(u, v)
			if uf.Count() == 1 {
				return
			}
		}
	}
}

// emstSortCutoff is the edge count below which a comparison sort beats the
// radix passes (each pass clears and scans a 65536-entry counter array, so
// small inputs would pay ~256KB of memory traffic per pass for nothing).
const emstSortCutoff = 8192

// emstRadixSort sorts recs by key with an LSD counting sort over 16-bit
// digits. Passes whose digit is constant across all keys (common in the
// exponent-heavy high bits of clustered edge lengths) are skipped. The sort
// is stable, so ties keep the deterministic extraction order; the
// comparison-sort path for small inputs breaks key ties by the packed edge,
// which IS the extraction order (u then v, both ascending), so both paths
// produce the same permutation.
func emstRadixSort(recs []emstEdge, s *emstScratch) {
	if len(recs) < 2 {
		return
	}
	if len(recs) <= emstSortCutoff {
		slices.SortFunc(recs, func(a, b emstEdge) int {
			if a.key != b.key {
				if a.key < b.key {
					return -1
				}
				return 1
			}
			if a.e < b.e {
				return -1
			}
			if a.e > b.e {
				return 1
			}
			return 0
		})
		return
	}
	src, dst := recs, s.aux[:len(recs)]
	swapped := false
	for shift := 0; shift < 64; shift += 16 {
		count := &s.count
		for i := range count {
			count[i] = 0
		}
		first := uint16(src[0].key >> shift)
		uniform := true
		for _, r := range src {
			d := uint16(r.key >> shift)
			count[d]++
			uniform = uniform && d == first
		}
		if uniform {
			continue
		}
		sum := int32(0)
		for i := range count {
			c := count[i]
			count[i] = sum
			sum += c
		}
		for _, r := range src {
			d := uint16(r.key >> shift)
			dst[count[d]] = r
			count[d]++
		}
		src, dst = dst, src
		swapped = !swapped
	}
	if swapped {
		copy(recs, src)
	}
}

// KNN returns the undirected k-nearest-neighbor graph (re-exported from rgg
// for baseline symmetry).
func KNN(pts []geom.Point, k int) *rgg.Geometric { return rgg.NN(pts, k) }
