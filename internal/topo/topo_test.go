package topo

import (
	"runtime"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
)

func testUDG(t *testing.T, seed rng.Seed, lambda float64) *rgg.Geometric {
	t.Helper()
	g := rng.New(seed)
	pts := pointprocess.Poisson(geom.Box(12, 12), lambda, g)
	if len(pts) < 20 {
		t.Skip("sparse realization")
	}
	return rgg.UDG(pts, 1)
}

// subgraphOf asserts every edge of sub exists in base.
func subgraphOf(t *testing.T, name string, sub, base *rgg.Geometric) {
	t.Helper()
	for u := int32(0); int(u) < sub.N; u++ {
		for _, v := range sub.Neighbors(u) {
			if !base.HasEdge(u, v) {
				t.Fatalf("%s edge (%d,%d) not in base", name, u, v)
			}
		}
	}
}

func TestGabrielProperties(t *testing.T) {
	base := testUDG(t, 1, 3)
	gg := Gabriel(base)
	subgraphOf(t, "gabriel", gg, base)
	// Definition check by brute force.
	pts := base.Pos
	for u := int32(0); int(u) < base.N; u++ {
		for _, v := range base.Neighbors(u) {
			if v <= u {
				continue
			}
			mid := geom.Midpoint(pts[u], pts[v])
			r2 := pts[u].Dist2(pts[v]) / 4
			empty := true
			for w := range pts {
				if int32(w) == u || int32(w) == v {
					continue
				}
				if mid.Dist2(pts[w]) < r2-1e-15 {
					empty = false
					break
				}
			}
			if empty != gg.HasEdge(u, v) {
				t.Fatalf("gabriel membership wrong for (%d,%d): brute %v", u, v, empty)
			}
		}
	}
}

func TestRNGSubsetOfGabriel(t *testing.T) {
	// Classical hierarchy: EMST ⊆ RNG ⊆ Gabriel ⊆ UDG.
	base := testUDG(t, 2, 3)
	gg := Gabriel(base)
	rn := RelativeNeighborhood(base)
	mst := EMST(base)
	subgraphOf(t, "rng", rn, gg)
	subgraphOf(t, "emst", mst, rn)
}

func TestConnectivityPreserved(t *testing.T) {
	// Gabriel, RNG and EMST preserve UDG connectivity (per component).
	base := testUDG(t, 3, 3)
	_, baseSizes := graph.Components(base.CSR)
	for _, tc := range []struct {
		name string
		g    *rgg.Geometric
	}{
		{"gabriel", Gabriel(base)},
		{"rng", RelativeNeighborhood(base)},
		{"emst", EMST(base)},
		{"yao6", Yao(base, 6)},
	} {
		_, sizes := graph.Components(tc.g.CSR)
		if len(sizes) != len(baseSizes) {
			t.Errorf("%s changed component count: %d vs %d", tc.name, len(sizes), len(baseSizes))
		}
	}
}

func TestEMSTEdgeCount(t *testing.T) {
	base := testUDG(t, 4, 3)
	mst := EMST(base)
	_, sizes := graph.Components(base.CSR)
	want := base.N - len(sizes) // spanning forest
	if mst.EdgeCount != want {
		t.Errorf("EMST edges = %d want %d", mst.EdgeCount, want)
	}
}

func TestEMSTIsMinimal(t *testing.T) {
	// Removing any MST edge and reconnecting via the cheapest cut edge must
	// not find a cheaper edge (cut property spot check on a small instance).
	g := rng.New(5)
	pts := pointprocess.Binomial(geom.Box(3, 3), 30, g)
	base := rgg.UDG(pts, 3) // complete-ish
	mst := EMST(base)
	// Total weight must match a brute-force Prim run.
	var mstTotal float64
	for u := int32(0); int(u) < mst.N; u++ {
		for _, v := range mst.Neighbors(u) {
			if v > u {
				mstTotal += pts[u].Dist(pts[v])
			}
		}
	}
	primTotal := primWeight(pts)
	if diff := mstTotal - primTotal; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("Kruskal weight %v vs Prim %v", mstTotal, primTotal)
	}
}

func primWeight(pts []geom.Point) float64 {
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = 1e18
	}
	dist[0] = 0
	total := 0.0
	for iter := 0; iter < n; iter++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		total += dist[best]
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].Dist(pts[i]); d < dist[i] {
					dist[i] = d
				}
			}
		}
	}
	return total
}

func TestYaoDegreeAndCones(t *testing.T) {
	base := testUDG(t, 6, 4)
	yao := Yao(base, 6)
	subgraphOf(t, "yao", yao, base)
	// Out-degree per vertex ≤ cones, so total degree ≤ 2·cones-ish; at
	// minimum it must be well below the base degree.
	if yao.MeanDegree() >= base.MeanDegree() {
		t.Errorf("yao mean degree %v not below base %v", yao.MeanDegree(), base.MeanDegree())
	}
	// Yao keeps each vertex's shortest edge, so isolated-in-yao vertices
	// must be isolated in base.
	for u := int32(0); int(u) < base.N; u++ {
		if base.Degree(u) > 0 && yao.Degree(u) == 0 {
			t.Fatalf("vertex %d isolated in yao but not in base", u)
		}
	}
	if got := Yao(base, 0); got.N != base.N {
		t.Error("cones<1 should clamp, not crash")
	}
}

func TestSparsityOrdering(t *testing.T) {
	base := testUDG(t, 7, 4)
	gg := Gabriel(base)
	rn := RelativeNeighborhood(base)
	mst := EMST(base)
	if !(mst.EdgeCount <= rn.EdgeCount && rn.EdgeCount <= gg.EdgeCount && gg.EdgeCount <= base.EdgeCount) {
		t.Errorf("edge counts not ordered: mst %d rng %d gabriel %d base %d",
			mst.EdgeCount, rn.EdgeCount, gg.EdgeCount, base.EdgeCount)
	}
}

func TestKNNBaselineAlias(t *testing.T) {
	g := rng.New(8)
	pts := pointprocess.Binomial(geom.Box(5, 5), 100, g)
	if got := KNN(pts, 3); got.N != 100 {
		t.Errorf("KNN N = %d", got.N)
	}
}

func TestEmptyInputs(t *testing.T) {
	empty := rgg.UDG(nil, 1)
	if Gabriel(empty).N != 0 || RelativeNeighborhood(empty).N != 0 ||
		Yao(empty, 6).N != 0 || EMST(empty).N != 0 {
		t.Error("empty baselines wrong")
	}
}

// TestTopoDeterministicAcrossGOMAXPROCS checks the parallel witness scans
// produce identical CSRs at worker count 1 and the full default.
func TestTopoDeterministicAcrossGOMAXPROCS(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(15, 15), 8, rng.New(55))
	base := rgg.UDG(pts, 1)
	type build func() *rgg.Geometric
	builds := map[string]build{
		"gabriel": func() *rgg.Geometric { return Gabriel(base) },
		"rng":     func() *rgg.Geometric { return RelativeNeighborhood(base) },
		"yao":     func() *rgg.Geometric { return Yao(base, 6) },
		"emst":    func() *rgg.Geometric { return EMST(base) },
	}
	for name, f := range builds {
		// 8 workers for the parallel leg even on a 1-CPU box (see rgg's test).
		prev := runtime.GOMAXPROCS(8)
		parallelG := f().CSR
		runtime.GOMAXPROCS(1)
		serialG := f().CSR
		runtime.GOMAXPROCS(prev)
		if parallelG.EdgeCount != serialG.EdgeCount {
			t.Fatalf("%s: EdgeCount %d vs %d", name, parallelG.EdgeCount, serialG.EdgeCount)
		}
		for i := range parallelG.Start {
			if parallelG.Start[i] != serialG.Start[i] {
				t.Fatalf("%s: Start[%d] differs", name, i)
			}
		}
		for i := range parallelG.Adj {
			if parallelG.Adj[i] != serialG.Adj[i] {
				t.Fatalf("%s: Adj[%d] differs", name, i)
			}
		}
	}
}

// TestEMSTFilterPathMatchesReference pushes EMST over the filter cutoff
// (light/heavy split + heavy-edge filtering + radix sort) and checks the
// forest against a plain sort-everything Kruskal reference.
func TestEMSTFilterPathMatchesReference(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(10, 10), 20, rng.New(17))
	base := rgg.UDG(pts, 1)
	if base.EdgeCount <= 4096 {
		t.Fatalf("fixture too small to exercise the filter path: %d edges", base.EdgeCount)
	}
	mst := EMST(base)

	type edge struct {
		u, v int32
		d2   float64
	}
	var edges []edge
	for u := int32(0); int(u) < base.N; u++ {
		for _, v := range base.Neighbors(u) {
			if v > u {
				edges = append(edges, edge{u, v, pts[u].Dist2(pts[v])})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].d2 < edges[j].d2 })
	uf := graph.NewUnionFind(base.N)
	refCount := 0
	var refWeight float64
	for _, e := range edges {
		if uf.Union(e.u, e.v) {
			refCount++
			refWeight += pts[e.u].Dist(pts[e.v])
		}
	}
	if mst.EdgeCount != refCount {
		t.Fatalf("EMST edges = %d, reference Kruskal = %d", mst.EdgeCount, refCount)
	}
	var gotWeight float64
	for u := int32(0); int(u) < mst.N; u++ {
		for _, v := range mst.Neighbors(u) {
			if v > u {
				gotWeight += pts[u].Dist(pts[v])
			}
		}
	}
	if d := gotWeight - refWeight; d > 1e-7 || d < -1e-7 {
		t.Fatalf("EMST weight %v vs reference %v", gotWeight, refWeight)
	}
}
