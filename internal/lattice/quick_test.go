package lattice

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// TestClustersPartitionProperty: for arbitrary configurations, cluster
// labels must partition exactly the open sites, sizes must sum to the open
// count, and adjacent open sites must share a label.
func TestClustersPartitionProperty(t *testing.T) {
	f := func(seed uint64, pRaw uint8) bool {
		p := float64(pRaw%101) / 100
		l := Sample(12, 9, p, rng.New(rng.Seed(seed)))
		labels, sizes := l.Clusters()
		total := 0
		for _, s := range sizes {
			if s <= 0 {
				return false
			}
			total += s
		}
		if total != l.OpenCount() {
			return false
		}
		for y := 0; y < l.H; y++ {
			for x := 0; x < l.W; x++ {
				i := l.Idx(x, y)
				if l.IsOpen(x, y) != (labels[i] >= 0) {
					return false
				}
				if !l.IsOpen(x, y) {
					continue
				}
				if l.IsOpen(x+1, y) && labels[i] != labels[l.Idx(x+1, y)] {
					return false
				}
				if l.IsOpen(x, y+1) && labels[i] != labels[l.Idx(x, y+1)] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestChemicalDistanceSymmetryProperty: D_p(a, b) == D_p(b, a) and the
// triangle inequality holds through any open intermediate site.
func TestChemicalDistanceSymmetryProperty(t *testing.T) {
	f := func(seed uint64, coords [6]uint8) bool {
		l := Sample(10, 10, 0.75, rng.New(rng.Seed(seed)))
		ax, ay := int(coords[0])%10, int(coords[1])%10
		bx, by := int(coords[2])%10, int(coords[3])%10
		cx, cy := int(coords[4])%10, int(coords[5])%10
		dab := l.ChemicalDistance(ax, ay, bx, by)
		dba := l.ChemicalDistance(bx, by, ax, ay)
		if dab != dba {
			return false
		}
		dac := l.ChemicalDistance(ax, ay, cx, cy)
		dcb := l.ChemicalDistance(cx, cy, bx, by)
		if dab >= 0 && dac >= 0 && dcb >= 0 && dab > dac+dcb {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
