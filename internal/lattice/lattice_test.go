package lattice

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewAndBasics(t *testing.T) {
	l := New(4, 3)
	if l.W != 4 || l.H != 3 || len(l.Open) != 12 {
		t.Fatalf("lattice dims wrong: %+v", l)
	}
	if l.OpenCount() != 0 {
		t.Error("new lattice should be closed")
	}
	l.Set(2, 1, true)
	if !l.IsOpen(2, 1) || l.IsOpen(1, 2) {
		t.Error("Set/IsOpen wrong")
	}
	if l.IsOpen(-1, 0) || l.IsOpen(4, 0) || l.IsOpen(0, 3) {
		t.Error("out-of-range sites must read closed")
	}
	x, y := l.XY(l.Idx(3, 2))
	if x != 3 || y != 2 {
		t.Errorf("Idx/XY roundtrip: (%d,%d)", x, y)
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(0, 5)
}

func TestSampleDensity(t *testing.T) {
	g := rng.New(1)
	l := Sample(200, 200, 0.3, g)
	frac := float64(l.OpenCount()) / float64(200*200)
	if math.Abs(frac-0.3) > 0.01 {
		t.Errorf("open fraction = %v want 0.3", frac)
	}
}

func TestClustersManual(t *testing.T) {
	// Configuration (1 = open):
	//   y=2: 1 0 1
	//   y=1: 1 0 1
	//   y=0: 1 1 0
	l := New(3, 3)
	for _, s := range [][2]int{{0, 0}, {1, 0}, {0, 1}, {0, 2}, {2, 1}, {2, 2}} {
		l.Set(s[0], s[1], true)
	}
	labels, sizes := l.Clusters()
	if len(sizes) != 2 {
		t.Fatalf("cluster count = %d want 2 (sizes %v)", len(sizes), sizes)
	}
	// Left cluster has 4 sites, right has 2.
	a := labels[l.Idx(0, 0)]
	if labels[l.Idx(1, 0)] != a || labels[l.Idx(0, 1)] != a || labels[l.Idx(0, 2)] != a {
		t.Error("left cluster split")
	}
	b := labels[l.Idx(2, 1)]
	if labels[l.Idx(2, 2)] != b || a == b {
		t.Error("right cluster wrong")
	}
	if labels[l.Idx(1, 1)] != -1 {
		t.Error("closed site should be labeled -1")
	}
	lc := l.LargestCluster()
	if len(lc) != 4 {
		t.Errorf("largest cluster size = %d", len(lc))
	}
}

func TestLargestClusterEmpty(t *testing.T) {
	if lc := New(3, 3).LargestCluster(); lc != nil {
		t.Errorf("all-closed largest cluster = %v", lc)
	}
}

func TestDiagonalIsNotConnected(t *testing.T) {
	// Site percolation is 4-connected: diagonal neighbors are separate.
	l := New(2, 2)
	l.Set(0, 0, true)
	l.Set(1, 1, true)
	_, sizes := l.Clusters()
	if len(sizes) != 2 {
		t.Errorf("diagonal sites merged: sizes %v", sizes)
	}
}

func TestHorizontalCrossing(t *testing.T) {
	l := New(5, 3)
	if l.HasHorizontalCrossing() {
		t.Error("closed lattice cannot cross")
	}
	// Open a full row.
	for x := 0; x < 5; x++ {
		l.Set(x, 1, true)
	}
	if !l.HasHorizontalCrossing() {
		t.Error("full open row should cross")
	}
	// Break the row.
	l.Set(2, 1, false)
	if l.HasHorizontalCrossing() {
		t.Error("broken row should not cross")
	}
	// Detour around the break.
	l.Set(1, 2, true)
	l.Set(2, 2, true)
	l.Set(3, 2, true)
	if !l.HasHorizontalCrossing() {
		t.Error("detour should restore the crossing")
	}
}

func TestChemicalDistance(t *testing.T) {
	// L-shaped open path from (0,0) to (2,2).
	l := New(3, 3)
	for _, s := range [][2]int{{0, 0}, {1, 0}, {2, 0}, {2, 1}, {2, 2}} {
		l.Set(s[0], s[1], true)
	}
	if d := l.ChemicalDistance(0, 0, 2, 2); d != 4 {
		t.Errorf("chemical distance = %d want 4", d)
	}
	if d := l.ChemicalDistance(0, 0, 0, 0); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	// Unreachable open site.
	l.Set(0, 2, true)
	if d := l.ChemicalDistance(0, 0, 0, 2); d != -1 {
		t.Errorf("disconnected distance = %d want -1", d)
	}
	// Closed endpoints.
	if d := l.ChemicalDistance(1, 1, 0, 0); d != -1 {
		t.Errorf("closed source distance = %d want -1", d)
	}
}

func TestChemicalDistanceAtLeastL1(t *testing.T) {
	g := rng.New(2)
	l := Sample(40, 40, 0.7, g)
	pairs := 0
	for trial := 0; trial < 300 && pairs < 100; trial++ {
		ax, ay := g.IntN(40), g.IntN(40)
		bx, by := g.IntN(40), g.IntN(40)
		d := l.ChemicalDistance(ax, ay, bx, by)
		if d < 0 {
			continue
		}
		pairs++
		if d < L1(ax, ay, bx, by) {
			t.Fatalf("chemical distance %d below L1 %d", d, L1(ax, ay, bx, by))
		}
	}
	if pairs == 0 {
		t.Error("no connected pairs sampled at p=0.7 — suspicious")
	}
}

func TestL1(t *testing.T) {
	if L1(0, 0, 3, 4) != 7 || L1(3, 4, 0, 0) != 7 || L1(1, 1, 1, 1) != 0 {
		t.Error("L1 wrong")
	}
}

func TestToGraphMatchesClusterStructure(t *testing.T) {
	g := rng.New(3)
	l := Sample(20, 20, 0.55, g)
	csr := l.ToGraph()
	// Edge count: each open-open adjacent pair exactly once.
	want := 0
	for y := 0; y < l.H; y++ {
		for x := 0; x < l.W; x++ {
			if !l.IsOpen(x, y) {
				continue
			}
			if l.IsOpen(x+1, y) {
				want++
			}
			if l.IsOpen(x, y+1) {
				want++
			}
		}
	}
	if csr.EdgeCount != want {
		t.Errorf("graph edges = %d want %d", csr.EdgeCount, want)
	}
}

func TestCrossingProbabilityMonotoneInP(t *testing.T) {
	g := rng.New(4)
	low := CrossingProbability(24, 0.45, 200, g).P
	high := CrossingProbability(24, 0.75, 200, g).P
	if low >= high {
		t.Errorf("crossing prob not increasing: %v vs %v", low, high)
	}
	if high < 0.9 {
		t.Errorf("p=0.75 crossing prob should be near 1, got %v", high)
	}
	if low > 0.12 {
		t.Errorf("p=0.45 crossing prob should be near 0, got %v", low)
	}
}

func TestEstimatePcNearReference(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := rng.New(5)
	pc, ok := EstimatePc(48, 120, 16, g)
	if !ok {
		t.Fatal("crossing probability did not straddle 1/2 on [0.4, 0.8]")
	}
	// Finite-size estimate on a 48×48 box: allow a generous window.
	if math.Abs(pc-SitePcReference) > 0.03 {
		t.Errorf("estimated p_c = %v, reference %v", pc, SitePcReference)
	}
}

func TestThetaSupercriticalVsSubcritical(t *testing.T) {
	g := rng.New(6)
	sub := Theta(40, 0.45, 20, g)
	sup := Theta(40, 0.75, 20, g)
	if sub.Mean > 0.1 {
		t.Errorf("subcritical θ should be small: %v", sub.Mean)
	}
	if sup.Mean < 0.5 {
		t.Errorf("supercritical θ should be large: %v", sup.Mean)
	}
}

func BenchmarkClusters(b *testing.B) {
	g := rng.New(7)
	l := Sample(256, 256, 0.6, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Clusters()
	}
}

func BenchmarkCrossing(b *testing.B) {
	g := rng.New(8)
	l := Sample(256, 256, 0.6, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.HasHorizontalCrossing()
	}
}
