package lattice

import (
	"math/rand/v2"

	"repro/internal/stats"
)

// SitePcReference is the literature value for the site-percolation critical
// probability on Z², quoted by the paper as lying in (0.592, 0.593).
const SitePcReference = 0.592746

// CrossingProbability estimates the probability that an n×n box percolated
// at p has a horizontal open crossing, over the given number of trials.
func CrossingProbability(n int, p float64, trials int, rng *rand.Rand) stats.Proportion {
	k := 0
	for t := 0; t < trials; t++ {
		if Sample(n, n, p, rng).HasHorizontalCrossing() {
			k++
		}
	}
	return stats.NewProportion(k, trials)
}

// EstimatePc locates the p at which the n×n crossing probability equals 1/2
// — a standard finite-size estimator for p_c that converges to 0.5927… as
// n grows. trialsPerEval Monte-Carlo trials are run per bisection step.
// ok is false when the crossing probability does not straddle 1/2 over the
// [0.4, 0.8] bracket (possible for tiny boxes or trial counts, where the
// empirical estimate at an endpoint lands on the wrong side); the returned
// pc is then the nearer bracket endpoint, a bound rather than an estimate.
func EstimatePc(n, trialsPerEval, maxEval int, rng *rand.Rand) (pc float64, ok bool) {
	f := func(p float64) float64 {
		return CrossingProbability(n, p, trialsPerEval, rng).P
	}
	return stats.MonotoneThreshold(f, 0.4, 0.8, 0.5, 1e-4, maxEval)
}

// Theta estimates θ(p): the probability a given site belongs to the giant
// cluster, approximated on an n×n box by the largest-cluster fraction among
// all sites. In the subcritical phase this tends to 0 with n; supercritical
// it converges to the true θ(p) > 0.
func Theta(n int, p float64, trials int, rng *rand.Rand) stats.Summary {
	xs := make([]float64, trials)
	for t := 0; t < trials; t++ {
		l := Sample(n, n, p, rng)
		giant := len(l.LargestCluster())
		xs[t] = float64(giant) / float64(n*n)
	}
	return stats.Summarize(xs)
}
