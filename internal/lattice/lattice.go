// Package lattice implements site percolation on finite boxes of the square
// lattice Z², the discrete process the paper couples its tile constructions
// to (§2): each site is open independently with probability p; open sites
// joined by lattice edges form open clusters. For p above the critical
// probability p_c ≈ 0.5927 an "infinite" (here: giant/spanning) cluster
// exists.
//
// Provided here: configuration sampling, cluster labeling, largest-cluster
// and crossing detection, θ(p) estimation, the chemical distance D_p(x, y)
// (graph distance in the open cluster, per Antal–Pisztora / Lemma 1.1 of
// the paper), and a crossing-probability bisection estimator for p_c.
package lattice

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/graph"
)

// Lattice is a W×H site-percolation configuration. Site (x, y) with
// 0 ≤ x < W, 0 ≤ y < H is open iff Open[y*W+x].
type Lattice struct {
	W, H int
	Open []bool
}

// New creates a lattice with all sites closed.
func New(w, h int) *Lattice {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("lattice: non-positive dimensions %dx%d", w, h))
	}
	return &Lattice{W: w, H: h, Open: make([]bool, w*h)}
}

// Sample creates a lattice whose sites are open independently with
// probability p.
func Sample(w, h int, p float64, rng *rand.Rand) *Lattice {
	l := New(w, h)
	for i := range l.Open {
		l.Open[i] = rng.Float64() < p
	}
	return l
}

// Idx returns the flat index of site (x, y).
func (l *Lattice) Idx(x, y int) int32 { return int32(y*l.W + x) }

// XY returns the coordinates of flat index i.
func (l *Lattice) XY(i int32) (x, y int) { return int(i) % l.W, int(i) / l.W }

// IsOpen reports whether site (x, y) is open; out-of-range sites are closed.
func (l *Lattice) IsOpen(x, y int) bool {
	if x < 0 || x >= l.W || y < 0 || y >= l.H {
		return false
	}
	return l.Open[y*l.W+x]
}

// Set sets the state of site (x, y).
func (l *Lattice) Set(x, y int, open bool) { l.Open[y*l.W+x] = open }

// OpenCount returns the number of open sites.
func (l *Lattice) OpenCount() int {
	n := 0
	for _, o := range l.Open {
		if o {
			n++
		}
	}
	return n
}

// neighbor offsets (4-connectivity of Z²).
var dx4 = [4]int{1, -1, 0, 0}
var dy4 = [4]int{0, 0, 1, -1}

// Clusters labels the open clusters: labels[i] = cluster id for open site i,
// −1 for closed sites; sizes[id] = cluster population.
func (l *Lattice) Clusters() (labels []int32, sizes []int) {
	uf := graph.NewUnionFind(l.W * l.H)
	for y := 0; y < l.H; y++ {
		for x := 0; x < l.W; x++ {
			if !l.IsOpen(x, y) {
				continue
			}
			i := l.Idx(x, y)
			if l.IsOpen(x+1, y) {
				uf.Union(i, l.Idx(x+1, y))
			}
			if l.IsOpen(x, y+1) {
				uf.Union(i, l.Idx(x, y+1))
			}
		}
	}
	labels = make([]int32, l.W*l.H)
	remap := make(map[int32]int32)
	for i := range labels {
		if !l.Open[i] {
			labels[i] = -1
			continue
		}
		root := uf.Find(int32(i))
		id, ok := remap[root]
		if !ok {
			id = int32(len(remap))
			remap[root] = id
			sizes = append(sizes, 0)
		}
		labels[i] = id
		sizes[id]++
	}
	return labels, sizes
}

// LargestCluster returns the flat indices of the largest open cluster
// (empty for an all-closed lattice).
func (l *Lattice) LargestCluster() []int32 {
	labels, sizes := l.Clusters()
	if len(sizes) == 0 {
		return nil
	}
	best := 0
	for i, s := range sizes {
		if s > sizes[best] {
			best = i
		}
	}
	var out []int32
	for i, lab := range labels {
		if lab == int32(best) {
			out = append(out, int32(i))
		}
	}
	return out
}

// HasHorizontalCrossing reports whether some open cluster touches both the
// left (x = 0) and right (x = W−1) columns — the standard event whose
// probability jumps from 0 to 1 across p_c as the box grows.
func (l *Lattice) HasHorizontalCrossing() bool {
	// BFS from all open sites in the left column.
	visited := make([]bool, l.W*l.H)
	queue := make([]int32, 0, l.H)
	for y := 0; y < l.H; y++ {
		if l.IsOpen(0, y) {
			i := l.Idx(0, y)
			visited[i] = true
			queue = append(queue, i)
		}
	}
	for head := 0; head < len(queue); head++ {
		x, y := l.XY(queue[head])
		if x == l.W-1 {
			return true
		}
		for d := 0; d < 4; d++ {
			nx, ny := x+dx4[d], y+dy4[d]
			if !l.IsOpen(nx, ny) {
				continue
			}
			ni := l.Idx(nx, ny)
			if !visited[ni] {
				visited[ni] = true
				queue = append(queue, ni)
			}
		}
	}
	return false
}

// ChemicalDistance returns D_p(a, b): the hop distance between two open
// sites through open sites, or −1 if they are not connected (or not open).
// This is the distance Antal–Pisztora bound (paper Lemma 1.1).
func (l *Lattice) ChemicalDistance(ax, ay, bx, by int) int {
	if !l.IsOpen(ax, ay) || !l.IsOpen(bx, by) {
		return -1
	}
	src, dst := l.Idx(ax, ay), l.Idx(bx, by)
	if src == dst {
		return 0
	}
	dist := make([]int32, l.W*l.H)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{src}
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		if i == dst {
			return int(dist[i])
		}
		x, y := l.XY(i)
		for d := 0; d < 4; d++ {
			nx, ny := x+dx4[d], y+dy4[d]
			if !l.IsOpen(nx, ny) {
				continue
			}
			ni := l.Idx(nx, ny)
			if dist[ni] < 0 {
				dist[ni] = dist[i] + 1
				queue = append(queue, ni)
			}
		}
	}
	return -1
}

// L1 returns the lattice (Manhattan) distance D(a, b) between two sites.
func L1(ax, ay, bx, by int) int {
	dx := ax - bx
	if dx < 0 {
		dx = -dx
	}
	dy := ay - by
	if dy < 0 {
		dy = -dy
	}
	return dx + dy
}

// ToGraph converts the open-site adjacency into a CSR graph over flat site
// indices (closed sites become isolated vertices), for reuse of the generic
// graph algorithms.
func (l *Lattice) ToGraph() *graph.CSR {
	b := graph.NewBuilder(l.W * l.H)
	for y := 0; y < l.H; y++ {
		for x := 0; x < l.W; x++ {
			if !l.IsOpen(x, y) {
				continue
			}
			if l.IsOpen(x+1, y) {
				b.AddEdge(l.Idx(x, y), l.Idx(x+1, y))
			}
			if l.IsOpen(x, y+1) {
				b.AddEdge(l.Idx(x, y), l.Idx(x, y+1))
			}
		}
	}
	return b.Build()
}
