package hng

import (
	"math"
	"slices"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/spatial"
)

// KineticStats counts the work one or more repair operations performed —
// the deterministic cost signal the M01 scenario reports. All counters
// accumulate until Stats is read through ResetStats.
type KineticStats struct {
	// LinkRecomputes counts nearest-neighbor link re-queries (a node's
	// up-link and within-link recomputed together count once).
	LinkRecomputes int
	// GroupRecomputes counts pruning groups re-sorted and re-emitted.
	GroupRecomputes int
	// MSTRecomputes counts top-level spanning tree rebuilds.
	MSTRecomputes int
	// EdgeChanges counts undirected edges added or removed in the overlay.
	EdgeChanges int
}

// kGroup is the live state of one pruning group (parent, child level):
// its member set (unsorted) and the edges it currently emits.
type kGroup struct {
	members []int32
	edges   []uint64
}

// Kinetic maintains a hierarchical neighbor graph incrementally under node
// motion and death. It holds per-level kinetic spatial indexes, every node's
// current up-link and within-link, the pruning-group states, and the
// top-level MST, and repairs exactly the region a Move or Remove touches:
// links whose nearest neighbor may have changed (found by radius queries
// bounded by per-level maximum link lengths), the pruning groups those links
// feed, and the MST only when a top-level node is involved.
//
// The invariant — property-tested at GOMAXPROCS 1 and 8 — is that after any
// operation sequence, Materialize() equals Rebuild(positions, levels, alive)
// edge-for-edge. Levels are fixed at construction (promotion draws attach to
// nodes, not positions), which is what makes the equivalence exact: motion
// never re-rolls the hierarchy.
//
// Edge bookkeeping is refcounted: an up-link, chain, within-link or MST edge
// may coincide, and the overlay holds an edge while at least one source
// emits it — mirroring the duplicate-tolerant Builder in the static path.
type Kinetic struct {
	spec   Spec
	pts    []geom.Point
	levels []int32
	alive  []bool

	topAll   int32 // highest level present at construction (grid count)
	top      int32 // current highest alive level
	lvlCount []int // alive population per exact level, index 1..topAll

	grids []*spatial.DynGrid // grids[i] over V_{i+1} = {alive, ℓ ≥ i+1}

	parent     []int32   // up-link target, −1 for none
	parentDist []float64 // hypot distance to parent (group sort key)
	parentD2   []float64 // squared distance to parent (query-space bound)
	within     []int32   // within-level link target, −1 for none
	withinD2   []float64 // squared distance to within target

	// maxUpD2 / maxWithinD2 are per-exact-level monotone upper bounds on the
	// squared link lengths — the sound over-approximation bounding the
	// candidate radius of a repair. Index by level, 1..topAll.
	maxUpD2     []float64
	maxWithinD2 []float64

	groups map[uint64]*kGroup
	mst    []uint64

	ref   map[uint64]int32 // emission refcounts per packed edge
	delta *graph.Delta
	init  bool // during initial indexing, emissions skip the overlay

	stats KineticStats

	// Reusable scratch.
	scratch  spatial.KNNScratch
	nnBuf    []int32
	candBuf  []int32
	queryBuf []int32
	seen     []bool
	dirty    map[uint64]struct{}
	sortBuf  []int32
	keyBuf   []uint64
}

// groupKey packs a (parent, child level) pruning-group identity.
func groupKey(parent, level int32) uint64 {
	return uint64(uint32(parent))<<8 | uint64(uint32(level))
}

// NewKinetic wraps a built graph in an incremental maintainer. box is the
// fixed world the nodes move in (positions are clamped into it by the
// mobility models); h's positions, levels and edges seed the state, and
// h.CSR becomes the immutable base of the edge overlay.
func NewKinetic(h *Graph, box geom.Rect) *Kinetic {
	n := len(h.Pos)
	k := &Kinetic{
		spec:       h.Spec,
		pts:        append([]geom.Point(nil), h.Pos...),
		levels:     append([]int32(nil), h.Levels...),
		alive:      make([]bool, n),
		parent:     make([]int32, n),
		parentDist: make([]float64, n),
		parentD2:   make([]float64, n),
		within:     make([]int32, n),
		withinD2:   make([]float64, n),
		groups:     make(map[uint64]*kGroup),
		ref:        make(map[uint64]int32),
		delta:      graph.NewDelta(h.CSR),
		seen:       make([]bool, n),
		dirty:      make(map[uint64]struct{}),
	}
	for i := range k.alive {
		k.alive[i] = true
	}
	for u := range k.parent {
		k.parent[u], k.within[u] = -1, -1
	}
	for _, l := range k.levels {
		if l > k.topAll {
			k.topAll = l
		}
	}
	k.top = k.topAll
	k.lvlCount = make([]int, k.topAll+1)
	for _, l := range k.levels {
		k.lvlCount[l]++
	}
	k.maxUpD2 = make([]float64, k.topAll+1)
	k.maxWithinD2 = make([]float64, k.topAll+1)

	// Per-level kinetic grids: every slot exists in every grid, but only
	// V_{i+1} members stay live in grids[i]. Cell sizes track the thinning
	// populations so occupancy stays O(1) per cell.
	k.grids = make([]*spatial.DynGrid, k.topAll)
	levelPop := 0
	for i := int32(k.topAll); i >= 1; i-- {
		levelPop += k.lvlCount[i]
		g := spatial.NewDynGrid(k.pts, box, cellSizeFor(box, levelPop))
		for u := int32(0); u < int32(n); u++ {
			if k.levels[u] < i {
				g.Remove(u)
			}
		}
		k.grids[i-1] = g
	}

	// Initial link state, emitted without touching the overlay: the base CSR
	// already holds exactly these edges.
	k.init = true
	for u := int32(0); u < int32(n); u++ {
		k.relink(u, k.dirty)
	}
	clear(k.dirty)
	for key := range k.groups {
		k.dirty[key] = struct{}{}
	}
	k.flushDirty()
	k.rebuildMST()
	k.init = false
	k.stats = KineticStats{}
	return k
}

// cellSizeFor picks a grid cell size giving O(1) expected occupancy for pop
// points in box.
func cellSizeFor(box geom.Rect, pop int) float64 {
	side := math.Max(box.Width(), box.Height())
	if side <= 0 {
		side = 1
	}
	if pop < 1 {
		pop = 1
	}
	cells := math.Sqrt(float64(pop))
	if cells < 1 {
		cells = 1
	}
	return side / cells
}

// Positions returns the current position slice (live view, not a copy).
func (k *Kinetic) Positions() []geom.Point { return k.pts }

// Levels returns the fixed level assignment.
func (k *Kinetic) Levels() []int32 { return k.levels }

// AliveMask returns the current alive mask (live view, not a copy).
func (k *Kinetic) AliveMask() []bool { return k.alive }

// Delta returns the live edge overlay CSR consumers read through.
func (k *Kinetic) Delta() *graph.Delta { return k.delta }

// Materialize freezes the current graph into a standalone CSR — the object
// the equivalence gate compares against Rebuild.
func (k *Kinetic) Materialize() *graph.CSR { return k.delta.Materialize() }

// Stats returns the accumulated repair-cost counters.
func (k *Kinetic) Stats() KineticStats { return k.stats }

// ResetStats zeroes and returns the accumulated counters.
func (k *Kinetic) ResetStats() KineticStats {
	s := k.stats
	k.stats = KineticStats{}
	return s
}

// emit records one source for edge {u, v}; the overlay gains the edge on the
// 0→1 transition.
func (k *Kinetic) emit(u, v int32) {
	e := graph.Pack(u, v)
	k.ref[e]++
	if k.ref[e] == 1 && !k.init {
		k.delta.AddEdge(u, v)
		k.stats.EdgeChanges++
	}
}

// retract drops one source for edge {u, v}; the overlay loses the edge on
// the 1→0 transition.
func (k *Kinetic) retract(u, v int32) {
	e := graph.Pack(u, v)
	k.ref[e]--
	if k.ref[e] == 0 {
		delete(k.ref, e)
		if !k.init {
			k.delta.RemoveEdge(u, v)
			k.stats.EdgeChanges++
		}
	}
}

// queryParent returns u's current up-link: its nearest alive neighbor in
// V_{ℓ(u)+1}, or −1 when that set is empty (u is top-level).
func (k *Kinetic) queryParent(u int32) (int32, float64) {
	gi := int(k.levels[u]) // byLevel index of V_{ℓ(u)+1}
	if gi >= len(k.grids) || k.grids[gi].Len() == 0 {
		return -1, 0
	}
	k.nnBuf = k.grids[gi].KNearestInto(k.pts[u], 1, -1, &k.scratch, k.nnBuf[:0])
	if len(k.nnBuf) == 0 {
		return -1, 0
	}
	v := k.nnBuf[0]
	return v, k.pts[u].Dist2(k.pts[v])
}

// queryWithin returns u's current within-level link: its nearest alive
// neighbor in V_{ℓ(u)} other than itself, or −1 when alone in the set.
func (k *Kinetic) queryWithin(u int32) (int32, float64) {
	gi := int(k.levels[u]) - 1
	g := k.grids[gi]
	if g.Len() <= 1 {
		return -1, 0
	}
	k.nnBuf = g.KNearestInto(k.pts[u], 1, int(u), &k.scratch, k.nnBuf[:0])
	if len(k.nnBuf) == 0 {
		return -1, 0
	}
	v := k.nnBuf[0]
	return v, k.pts[u].Dist2(k.pts[v])
}

// groupAdd registers u as a child of p and marks the group dirty.
func (k *Kinetic) groupAdd(p, u int32, dirty map[uint64]struct{}) {
	key := groupKey(p, k.levels[u])
	g := k.groups[key]
	if g == nil {
		g = &kGroup{}
		k.groups[key] = g
	}
	g.members = append(g.members, u)
	dirty[key] = struct{}{}
}

// groupRemove unregisters child u from parent p and marks the group dirty.
func (k *Kinetic) groupRemove(p, u int32, dirty map[uint64]struct{}) {
	key := groupKey(p, k.levels[u])
	g := k.groups[key]
	for i, m := range g.members {
		if m == u {
			g.members[i] = g.members[len(g.members)-1]
			g.members = g.members[:len(g.members)-1]
			break
		}
	}
	dirty[key] = struct{}{}
}

// relink recomputes u's up-link and within-link from the current grids,
// updating group membership, the emitted within edge, and the per-level
// radius bounds. Group edge regeneration is deferred to the dirty set.
func (k *Kinetic) relink(u int32, dirty map[uint64]struct{}) {
	k.stats.LinkRecomputes++
	lvl := k.levels[u]

	np, nd2 := k.queryParent(u)
	if op := k.parent[u]; np != op {
		if op >= 0 {
			k.groupRemove(op, u, dirty)
		}
		k.parent[u] = np
		if np >= 0 {
			k.parentD2[u] = nd2
			k.parentDist[u] = k.pts[u].Dist(k.pts[np])
			k.groupAdd(np, u, dirty)
			if nd2 > k.maxUpD2[lvl] {
				k.maxUpD2[lvl] = nd2
			}
		}
	} else if np >= 0 && nd2 != k.parentD2[u] {
		k.parentD2[u] = nd2
		k.parentDist[u] = k.pts[u].Dist(k.pts[np])
		dirty[groupKey(np, lvl)] = struct{}{}
		if nd2 > k.maxUpD2[lvl] {
			k.maxUpD2[lvl] = nd2
		}
	}

	nw, wd2 := k.queryWithin(u)
	if ow := k.within[u]; nw != ow {
		if ow >= 0 {
			k.retract(u, ow)
		}
		k.within[u] = nw
		if nw >= 0 {
			k.withinD2[u] = wd2
			k.emit(u, nw)
			if wd2 > k.maxWithinD2[lvl] {
				k.maxWithinD2[lvl] = wd2
			}
		}
	} else if nw >= 0 {
		k.withinD2[u] = wd2
		if wd2 > k.maxWithinD2[lvl] {
			k.maxWithinD2[lvl] = wd2
		}
	}
}

// recomputeGroup re-sorts one pruning group by (distance-to-parent, child)
// and re-emits its direct and chain edges, exactly mirroring the static
// builder's per-group chaining.
func (k *Kinetic) recomputeGroup(key uint64, g *kGroup) {
	k.stats.GroupRecomputes++
	for _, e := range g.edges {
		u, v := graph.Unpack(e)
		k.retract(u, v)
	}
	g.edges = g.edges[:0]
	if len(g.members) == 0 {
		delete(k.groups, key)
		return
	}
	parent := int32(key >> 8)
	k.sortBuf = append(k.sortBuf[:0], g.members...)
	members := k.sortBuf
	slices.SortFunc(members, func(a, b int32) int {
		da, db := k.parentDist[a], k.parentDist[b]
		if da != db {
			if da < db {
				return -1
			}
			return 1
		}
		return int(a - b)
	})
	maxKids := k.spec.MaxChildren
	for i, child := range members {
		var e uint64
		if maxKids == 0 || i < maxKids {
			e = graph.Pack(parent, child)
		} else {
			e = graph.Pack(members[i-maxKids], child)
		}
		g.edges = append(g.edges, e)
		u, v := graph.Unpack(e)
		k.emit(u, v)
	}
}

// rebuildMST re-derives the top-level spanning tree from the current alive
// top set.
func (k *Kinetic) rebuildMST() {
	k.stats.MSTRecomputes++
	for _, e := range k.mst {
		u, v := graph.Unpack(e)
		k.retract(u, v)
	}
	k.mst = k.mst[:0]
	if k.top == 0 {
		return
	}
	ids := k.grids[k.top-1].AppendAlive(k.candBuf[:0])
	k.candBuf = ids[:0]
	if len(ids) <= 1 {
		return
	}
	pos := make([]geom.Point, len(ids))
	for i, u := range ids {
		pos[i] = k.pts[u]
	}
	k.mst = append(k.mst, mstEdges(ids, pos)...)
	for _, e := range k.mst {
		u, v := graph.Unpack(e)
		k.emit(u, v)
	}
}

// radiusFor converts a squared-distance bound into a query radius with a
// hair of slack, so boundary candidates (exact ties in squared space, which
// the NN ordering resolves by index) are never missed to rounding.
func radiusFor(d2 float64) float64 {
	if d2 <= 0 {
		return 0
	}
	return math.Sqrt(d2) * (1 + 1e-12)
}

// collectCandidates appends to k.candBuf every alive node (≠ u) whose
// up-link or within-link could be affected by node u (level l) appearing or
// disappearing at the query positions: for each exact level j, nodes of
// level j within the per-level maximum link length of a position, filtered
// by an exact query-space affect test against their current link distances.
func (k *Kinetic) collectCandidates(u int32, l int32, positions ...geom.Point) {
	for j := int32(1); j <= k.topAll; j++ {
		if k.lvlCount[j] == 0 {
			continue
		}
		// u sits in the up-link target set V_{j+1} of level-j nodes iff
		// l ≥ j+1, and in their within-link target set V_j iff l ≥ j.
		var r2 float64
		upRelevant := l >= j+1
		withinRelevant := l >= j
		if upRelevant {
			r2 = k.maxUpD2[j]
		}
		if withinRelevant && k.maxWithinD2[j] > r2 {
			r2 = k.maxWithinD2[j]
		}
		if r2 == 0 && !upRelevant && !withinRelevant {
			continue
		}
		r := radiusFor(r2)
		for _, q := range positions {
			k.queryBuf = k.grids[j-1].Within(q, r, k.queryBuf[:0])
			for _, y := range k.queryBuf {
				if y == u || k.levels[y] != j || k.seen[y] {
					continue
				}
				if !k.affected(y, u, q, upRelevant, withinRelevant) {
					continue
				}
				k.seen[y] = true
				k.candBuf = append(k.candBuf, y)
			}
		}
	}
}

// affected reports whether y's links could change because node u is now (or
// was) at q. Comparisons happen in squared-distance space — the exact metric
// the nearest-neighbor queries order by — so ties that flip on the index
// tie-break are included.
func (k *Kinetic) affected(y, u int32, q geom.Point, upRelevant, withinRelevant bool) bool {
	if k.parent[y] == u || k.within[y] == u {
		return true
	}
	d2 := k.pts[y].Dist2(q)
	if upRelevant && k.parent[y] >= 0 && d2 <= k.parentD2[y] {
		return true
	}
	if withinRelevant && k.within[y] >= 0 && d2 <= k.withinD2[y] {
		return true
	}
	return false
}

// flushCandidates relinks every collected candidate and clears the buffer.
func (k *Kinetic) flushCandidates(dirty map[uint64]struct{}) {
	for _, y := range k.candBuf {
		k.seen[y] = false
		k.relink(y, dirty)
	}
	k.candBuf = k.candBuf[:0]
}

// flushDirty regenerates every dirty pruning group, in sorted key order:
// overflow-chain edges can be shared across groups, so the refcounted
// EdgeChanges tally depends on flush order — sorting keeps it (and the
// golden tables built on it) identical across runs.
func (k *Kinetic) flushDirty() {
	k.keyBuf = k.keyBuf[:0]
	for key := range k.dirty {
		k.keyBuf = append(k.keyBuf, key)
	}
	slices.Sort(k.keyBuf)
	for _, key := range k.keyBuf {
		if g, ok := k.groups[key]; ok {
			k.recomputeGroup(key, g)
		}
		delete(k.dirty, key)
	}
}

// Move updates node u's position and repairs the structure around it: u's
// own links, the links of nodes that referenced (or now prefer) u near its
// old and new positions, the pruning groups those links feed, and — only
// when u is top-level — the top MST.
func (k *Kinetic) Move(u int32, p geom.Point) {
	if !k.alive[u] {
		panic("hng: Move on dead node")
	}
	old := k.pts[u]
	l := k.levels[u]
	k.pts[u] = p
	for i := int32(0); i < l; i++ {
		k.grids[i].Move(u, p)
	}
	k.collectCandidates(u, l, old, p)
	k.relink(u, k.dirty)
	k.flushCandidates(k.dirty)
	k.flushDirty()
	if l == k.top {
		k.rebuildMST()
	}
}

// Remove deletes node u (a death): every edge it touches dissolves, orphaned
// children re-attach to their next-nearest parents, within-links that
// pointed at u re-query, and the MST follows the top set. Removing a dead
// node is a no-op.
func (k *Kinetic) Remove(u int32) {
	if !k.alive[u] {
		return
	}
	l := k.levels[u]
	oldTop := k.top
	for i := int32(0); i < l; i++ {
		k.grids[i].Remove(u)
	}
	k.alive[u] = false
	k.lvlCount[l]--
	if l == k.top {
		for k.top > 0 && k.lvlCount[k.top] == 0 {
			k.top--
		}
	}

	// u's own outgoing state.
	if p := k.parent[u]; p >= 0 {
		k.groupRemove(p, u, k.dirty)
		k.parent[u] = -1
	}
	if w := k.within[u]; w >= 0 {
		k.retract(u, w)
		k.within[u] = -1
	}

	// Everyone whose links referenced u — including all of u's children,
	// whose groups under u dissolve as they re-attach elsewhere.
	k.collectCandidates(u, l, k.pts[u])
	k.flushCandidates(k.dirty)
	k.flushDirty()

	if l == oldTop || k.top != oldTop {
		k.rebuildMST()
	}
}
