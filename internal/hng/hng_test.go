package hng

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/spatial"
)

func deployment(t testing.TB, side, lambda float64, seed rng.Seed) []geom.Point {
	t.Helper()
	pts := pointprocess.Poisson(geom.Box(side, side), lambda, rng.New(seed))
	if len(pts) < 10 {
		t.Fatalf("deployment too small: %d points", len(pts))
	}
	return pts
}

func TestSpecValidate(t *testing.T) {
	for _, bad := range []Spec{
		{P: 0}, {P: 1}, {P: -0.5}, {P: 1.5}, {P: math.NaN()},
		{P: 0.5, MaxChildren: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("spec %+v should be invalid", bad)
		}
		if _, err := Build(nil, bad, rng.New(1)); err == nil {
			t.Errorf("Build(%+v) should fail", bad)
		}
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
}

func TestBuildEmptyAndSingleton(t *testing.T) {
	g, err := Build(nil, DefaultSpec(), rng.New(1))
	if err != nil || g.N != 0 || g.EdgeCount != 0 {
		t.Fatalf("empty build: %v %+v", err, g)
	}
	g, err = Build([]geom.Point{geom.Pt(1, 2)}, DefaultSpec(), rng.New(1))
	if err != nil || g.N != 1 || g.EdgeCount != 0 || g.Levels[0] < 1 {
		t.Fatalf("singleton build: %v %+v", err, g)
	}
}

// TestBuildConnected pins the construction's headline invariant: up-links
// plus the top-level MST connect every node, at any promotion probability
// and with or without pruning.
func TestBuildConnected(t *testing.T) {
	pts := deployment(t, 20, 8, 42)
	for _, spec := range []Spec{
		{P: 0.05, MaxChildren: 0},
		{P: 0.125, MaxChildren: 6},
		{P: 0.3, MaxChildren: 3},
		{P: 0.7, MaxChildren: 2},
	} {
		g, err := Build(pts, spec, rng.New(7))
		if err != nil {
			t.Fatalf("Build(%+v): %v", spec, err)
		}
		members, _ := graph.LargestComponent(g.CSR)
		if len(members) != len(pts) {
			t.Errorf("spec %+v: largest component %d of %d — not connected",
				spec, len(members), len(pts))
		}
		if g.Stats.Levels < 1 || g.Stats.LevelSizes[0] != len(pts) {
			t.Errorf("spec %+v: bad stats %+v", spec, g.Stats)
		}
	}
}

// TestBuildDeterministicAcrossGOMAXPROCS pins the pipeline contract: same
// seed ⇒ byte-identical CSR, levels and stats at any worker count.
func TestBuildDeterministicAcrossGOMAXPROCS(t *testing.T) {
	pts := deployment(t, 24, 10, 11)
	spec := Spec{P: 0.2, MaxChildren: 4}
	build := func(gmp int) *Graph {
		prev := runtime.GOMAXPROCS(gmp)
		defer runtime.GOMAXPROCS(prev)
		g, err := Build(pts, spec, rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	a, b := build(1), build(8)
	if fmt.Sprint(a.Levels) != fmt.Sprint(b.Levels) {
		t.Fatal("levels differ across GOMAXPROCS")
	}
	if fmt.Sprint(a.Start) != fmt.Sprint(b.Start) || fmt.Sprint(a.Adj) != fmt.Sprint(b.Adj) {
		t.Fatal("CSR differs across GOMAXPROCS")
	}
	if fmt.Sprintf("%+v", a.Stats) != fmt.Sprintf("%+v", b.Stats) {
		t.Fatalf("stats differ: %+v vs %+v", a.Stats, b.Stats)
	}
}

// TestPruningBoundsDegree checks the chaining scheme does its job: with a
// small promotion probability most level-2 parents attract far more than
// MaxChildren children, pruning reroutes the overflow, and the realized
// maximum degree drops strictly below the unpruned build's while the graph
// stays connected.
func TestPruningBoundsDegree(t *testing.T) {
	pts := deployment(t, 30, 8, 5)
	loose, err := Build(pts, Spec{P: 0.02, MaxChildren: 0}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Build(pts, Spec{P: 0.02, MaxChildren: 4}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if tight.Stats.PrunedParents == 0 || tight.Stats.ChainEdges == 0 {
		t.Fatalf("pruning never triggered: %+v", tight.Stats)
	}
	if tight.MaxDegree() >= loose.MaxDegree() {
		t.Errorf("pruned max degree %d not below unpruned %d",
			tight.MaxDegree(), loose.MaxDegree())
	}
	members, _ := graph.LargestComponent(tight.CSR)
	if len(members) != len(pts) {
		t.Errorf("pruned build disconnected: %d of %d", len(members), len(pts))
	}
	// Up + chain links together cover every attachment exactly once.
	if got, want := tight.Stats.UpEdges+tight.Stats.ChainEdges,
		loose.Stats.UpEdges+loose.Stats.ChainEdges; got != want {
		t.Errorf("attachment count changed under pruning: %d vs %d", got, want)
	}
}

// referenceEdges is an independent serial reimplementation of the
// construction: brute-force nearest neighbors (same (dist, index)
// tie-break as the kd-tree), the chaining scheme, and a Kruskal MST for
// the top level. Build must produce exactly this edge set.
func referenceEdges(pts []geom.Point, spec Spec, levels []int32) map[uint64]bool {
	n := len(pts)
	top := int32(1)
	for _, l := range levels {
		if l > top {
			top = l
		}
	}
	bySet := make([][]int32, top+1) // 1-based: bySet[i] = {u : ℓ(u) ≥ i}
	for i := int32(1); i <= top; i++ {
		for u := 0; u < n; u++ {
			if levels[u] >= i {
				bySet[i] = append(bySet[i], int32(u))
			}
		}
	}
	edges := map[uint64]bool{}
	subPts := func(ids []int32) []geom.Point {
		sp := make([]geom.Point, len(ids))
		for j, u := range ids {
			sp[j] = pts[u]
		}
		return sp
	}
	// Within-level links at each node's top level.
	for i := int32(1); i <= top; i++ {
		set := bySet[i]
		if len(set) < 2 {
			continue
		}
		sp := subPts(set)
		for j, u := range set {
			if levels[u] != i {
				continue
			}
			nb := spatial.BruteKNearest(sp, sp[j], 1, j)
			edges[graph.Pack(u, set[nb[0]])] = true
		}
	}
	// Up-links with chaining.
	type attach struct {
		child int32
		dist  float64
	}
	for i := int32(1); i < top; i++ {
		if len(bySet[i+1]) == 0 {
			continue
		}
		targets := bySet[i+1]
		tp := subPts(targets)
		byParent := map[int32][]attach{}
		for _, u := range bySet[i] {
			if levels[u] != i {
				continue
			}
			nb := spatial.BruteKNearest(tp, pts[u], 1, -1)
			p := targets[nb[0]]
			byParent[p] = append(byParent[p], attach{child: u, dist: pts[u].Dist(pts[p])})
		}
		var parents []int32
		for p := range byParent {
			parents = append(parents, p)
		}
		sort.Slice(parents, func(a, b int) bool { return parents[a] < parents[b] })
		for _, p := range parents {
			group := byParent[p]
			sort.Slice(group, func(a, b int) bool {
				if group[a].dist != group[b].dist {
					return group[a].dist < group[b].dist
				}
				return group[a].child < group[b].child
			})
			for k, a := range group {
				if spec.MaxChildren == 0 || k < spec.MaxChildren {
					edges[graph.Pack(p, a.child)] = true
				} else {
					edges[graph.Pack(group[k-spec.MaxChildren].child, a.child)] = true
				}
			}
		}
	}
	// Top-level MST via Kruskal (the implementation uses Prim — both yield
	// the unique MST for distinct edge lengths).
	if set := bySet[top]; len(set) > 1 {
		type e struct {
			u, v int32
			d    float64
		}
		var all []e
		for a := 0; a < len(set); a++ {
			for b := a + 1; b < len(set); b++ {
				all = append(all, e{set[a], set[b], pts[set[a]].Dist(pts[set[b]])})
			}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].d != all[j].d {
				return all[i].d < all[j].d
			}
			return graph.Pack(all[i].u, all[i].v) < graph.Pack(all[j].u, all[j].v)
		})
		root := map[int32]int32{}
		var find func(x int32) int32
		find = func(x int32) int32 {
			r, ok := root[x]
			if !ok || r == x {
				return x
			}
			r = find(r)
			root[x] = r
			return r
		}
		added := 0
		for _, ed := range all {
			ra, rb := find(ed.u), find(ed.v)
			if ra == rb {
				continue
			}
			root[ra] = rb
			edges[graph.Pack(ed.u, ed.v)] = true
			if added++; added == len(set)-1 {
				break
			}
		}
	}
	return edges
}

// TestBuildMatchesBruteForceReference cross-checks the full parallel
// construction against the independent serial reference on several small
// random deployments, with and without pruning.
func TestBuildMatchesBruteForceReference(t *testing.T) {
	for seed := rng.Seed(1); seed <= 6; seed++ {
		pts := pointprocess.Poisson(geom.Box(8, 8), 4, rng.New(seed))
		if len(pts) < 2 {
			continue
		}
		for _, spec := range []Spec{{P: 0.25, MaxChildren: 0}, {P: 0.25, MaxChildren: 2}} {
			g, err := Build(pts, spec, rng.New(seed+100))
			if err != nil {
				t.Fatal(err)
			}
			want := referenceEdges(pts, spec, g.Levels)
			got := map[uint64]bool{}
			for u := int32(0); int(u) < g.N; u++ {
				for _, v := range g.Neighbors(u) {
					if v > u {
						got[graph.Pack(u, v)] = true
					}
				}
			}
			if len(got) != len(want) {
				t.Errorf("seed %d spec %+v: %d edges, reference has %d",
					seed, spec, len(got), len(want))
			}
			for e := range got {
				if !want[e] {
					u, v := graph.Unpack(e)
					t.Errorf("seed %d spec %+v: unexpected edge {%d, %d}", seed, spec, u, v)
				}
			}
			for e := range want {
				if !got[e] {
					u, v := graph.Unpack(e)
					t.Errorf("seed %d spec %+v: missing edge {%d, %d}", seed, spec, u, v)
				}
			}
		}
	}
}

func TestVerticesAndString(t *testing.T) {
	pts := deployment(t, 10, 4, 8)
	g, err := Build(pts, DefaultSpec(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	vs := g.Vertices()
	if len(vs) != len(pts) || vs[0] != 0 || vs[len(vs)-1] != int32(len(pts)-1) {
		t.Errorf("Vertices() = %d entries", len(vs))
	}
	if s := g.String(); s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}
