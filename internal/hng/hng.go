// Package hng implements hierarchical neighbor graphs (Bagchi, Madan,
// Premi — arXiv:0903.0742), the bounded-degree low-stretch connected
// structure from the same research line as the source paper's SENS
// constructions, reproduced here as the head-to-head competing topology.
//
// The construction is a spatial skip list. Every node starts at level 1 and
// is promoted to the next level independently with probability p, giving a
// nested hierarchy V₁ ⊇ V₂ ⊇ … whose level populations thin geometrically.
// Edges come from nearest-neighbor attachment:
//
//   - up-links: every node whose top level is i attaches to its nearest
//     neighbor in V_{i+1} (its parent), for every non-top level i;
//   - within-level links: every node attaches to its nearest neighbor in
//     V_{ℓ(u)}, the level set of its own top level;
//   - the highest occupied level is tied together by its Euclidean minimum
//     spanning tree (the deterministic stand-in for the paper's
//     constant-size top cluster).
//
// Up-links alone make the structure connected — each node reaches V_{i+1}
// through its parent, by induction every node reaches the top level, and
// the top level is spanning-tree connected — while the within-level links
// supply the shortcuts behind the paper's low-stretch claim.
//
// Bounded-degree pruning (Spec.MaxChildren) applies the paper's chaining
// scheme per level: a popular parent keeps only its MaxChildren nearest
// children of each level as direct links, and each further child attaches
// to the sibling MaxChildren positions nearer the parent, so excess
// attachment fans out into chains and every node gains at most one chained
// child per slot.
//
// Construction is deterministic for a fixed RNG: level draws are serial,
// and every parallel phase (the per-level nearest-neighbor queries) writes
// results that depend only on the inputs, never on GOMAXPROCS or goroutine
// scheduling — the same contract as the rgg/topo builders. The RNG stream
// is consumed entirely by the level draws, which is what makes HNG builds
// eligible for the scenario build cache (see scenario.Cache).
package hng

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rgg"
	"repro/internal/spatial"
)

// MaxLevels caps the hierarchy height. Promotion past it is truncated; with
// any practical p the cap is never reached (expected height is
// log_{1/p} n + O(1)), it only bounds the work of adversarial specs.
const MaxLevels = 32

// Spec parameterizes a hierarchical neighbor graph.
type Spec struct {
	// P is the per-level promotion probability, 0 < P < 1. Smaller P makes
	// a flatter hierarchy with fewer long up-links; larger P adds levels
	// (and their shortcut structure) at the cost of more long edges.
	P float64
	// MaxChildren caps the direct down-links a node keeps per child level
	// under the chaining scheme; 0 disables pruning (unbounded parent
	// degree).
	MaxChildren int
}

// DefaultSpec returns the reference parameterization used by the H**
// scenarios: p = 1/8 with the chaining cap at 6.
func DefaultSpec() Spec { return Spec{P: 0.125, MaxChildren: 6} }

// Validate checks the spec's soundness.
func (s Spec) Validate() error {
	if math.IsNaN(s.P) || s.P <= 0 || s.P >= 1 {
		return fmt.Errorf("hng: promotion probability must be in (0, 1), got %v", s.P)
	}
	if s.MaxChildren < 0 {
		return fmt.Errorf("hng: negative MaxChildren %d", s.MaxChildren)
	}
	return nil
}

// Stats carries construction accounting for one build.
type Stats struct {
	// Levels is the highest occupied level.
	Levels int
	// LevelSizes[i] is |V_{i+1}|, the population of each nested level set
	// (LevelSizes[0] == n).
	LevelSizes []int
	// UpEdges counts direct parent links kept after pruning; ChainEdges
	// counts the links rerouted onto sibling chains; WithinEdges counts the
	// within-level nearest-neighbor links; MSTEdges counts the top-level
	// spanning tree edges. Totals are pre-deduplication (an up-link and a
	// within-level link may coincide).
	UpEdges, ChainEdges, WithinEdges, MSTEdges int
	// PrunedParents counts nodes whose child list exceeded MaxChildren.
	PrunedParents int
}

// Graph is a constructed hierarchical neighbor graph: the geometric graph
// plus the level assignment that produced it.
type Graph struct {
	*rgg.Geometric
	// Levels[u] is the top level of node u (≥ 1).
	Levels []int32
	// Spec records the parameters the graph was built with.
	Spec Spec
	// Stats carries construction accounting.
	Stats Stats
}

// Vertices returns all vertex indices [0, n) — the candidate set for
// stretch/power measurement (every deployed node joins an HNG, unlike the
// SENS constructions where only members participate).
func (g *Graph) Vertices() []int32 {
	out := make([]int32, g.N)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// String renders a one-line summary.
func (g *Graph) String() string {
	return fmt.Sprintf("HNG(p=%g): %d pts, %d levels, %d edges, maxdeg %d",
		g.Spec.P, len(g.Pos), g.Stats.Levels, g.EdgeCount, g.MaxDegree())
}

// Build constructs the hierarchical neighbor graph over pts. The generator
// drives only the level promotion draws (serially, one geometric draw
// sequence per node in index order) and is consumed entirely by the build;
// everything after the draws is a deterministic function of (pts, spec,
// levels), parallel-safe at any GOMAXPROCS.
func Build(pts []geom.Point, spec Spec, g *rand.Rand) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Level assignment: geometric promotion, capped at MaxLevels.
	levels := make([]int32, len(pts))
	for i := range levels {
		lvl := int32(1)
		for lvl < MaxLevels && g.Float64() < spec.P {
			lvl++
		}
		levels[i] = lvl
	}
	return construct(pts, levels, nil, spec), nil
}

// Rebuild constructs the graph from-scratch at a fixed level assignment,
// restricted to the alive nodes (nil alive means everyone). Dead vertices
// stay in the index space but end up isolated. This is the reference the
// incremental Kinetic maintainer is equivalence-gated against: Kinetic's
// materialized graph must match Rebuild edge-for-edge at the same positions,
// levels and alive set. Levels persist across motion — promotion draws
// attach to nodes, not positions — so Rebuild never consumes randomness.
func Rebuild(pts []geom.Point, levels []int32, alive []bool, spec Spec) (*Graph, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(levels) != len(pts) || (alive != nil && len(alive) != len(pts)) {
		return nil, fmt.Errorf("hng: Rebuild slice lengths disagree (%d pts, %d levels, %d alive)",
			len(pts), len(levels), len(alive))
	}
	return construct(pts, levels, alive, spec), nil
}

// construct is the deterministic post-draw construction shared by Build and
// Rebuild: everything is a pure function of (pts, levels, alive, spec),
// parallel-safe at any GOMAXPROCS.
func construct(pts []geom.Point, levels []int32, alive []bool, spec Spec) *Graph {
	n := len(pts)
	h := &Graph{Levels: levels, Spec: spec}
	isAlive := func(u int32) bool { return alive == nil || alive[u] }

	top := int32(0)
	for u, l := range levels {
		if isAlive(int32(u)) && l > top {
			top = l
		}
	}
	if top == 0 {
		h.Geometric = &rgg.Geometric{CSR: graph.NewBuilder(n).Build(), Pos: pts}
		h.Stats.Levels = 0
		return h
	}
	h.Stats.Levels = int(top)

	// byLevel[i] lists V_{i+1} = {u alive : ℓ(u) ≥ i+1} in ascending index
	// order (0-based: byLevel[0] is every alive node). atLevel[i] lists the
	// alive nodes whose top level is exactly i+1 — the up-link sources of
	// level i+1.
	byLevel := make([][]int32, top)
	atLevel := make([][]int32, top)
	counts := make([]int, top+1)
	for u, l := range levels {
		if isAlive(int32(u)) && l <= top {
			counts[l]++
		}
	}
	cum := 0
	for i := top; i >= 1; i-- {
		atLevel[i-1] = make([]int32, 0, counts[i])
		cum += counts[i]
		byLevel[i-1] = make([]int32, 0, cum)
	}
	for u, l := range levels {
		if !isAlive(int32(u)) || l > top {
			continue
		}
		atLevel[l-1] = append(atLevel[l-1], int32(u))
		for i := int32(0); i < l; i++ {
			byLevel[i] = append(byLevel[i], int32(u))
		}
	}
	h.Stats.LevelSizes = make([]int, top)
	for i := range byLevel {
		h.Stats.LevelSizes[i] = len(byLevel[i])
	}

	// One kd-tree per level set, built over the subset's positions. Shared
	// by the up-links of the level below and the within-level links of the
	// level itself.
	trees := make([]*spatial.KDTree, top)
	subPts := make([][]geom.Point, top)
	parallel.ForGrain(int(top), 1, func(i int) {
		sp := make([]geom.Point, len(byLevel[i]))
		for j, u := range byLevel[i] {
			sp[j] = pts[u]
		}
		subPts[i] = sp
		trees[i] = spatial.NewKDTree(sp)
	})

	var edges []uint64
	parent := make([]int32, n)
	parentDist := make([]float64, n)
	for i := range parent {
		parent[i] = -1
	}

	for i := int32(0); i < top; i++ {
		src := atLevel[i]
		if len(src) == 0 {
			continue
		}
		// Up-links: nearest neighbor in the next level set. The top level
		// has no next set; its connectivity comes from the MST below.
		if i+1 < top && len(byLevel[i+1]) > 0 {
			targets := byLevel[i+1]
			tree := trees[i+1]
			parallel.ForShard(len(src), func(lo, hi int) {
				var scratch spatial.KNNScratch
				var nb []int32
				for s := lo; s < hi; s++ {
					u := src[s]
					nb = tree.KNearestInto(pts[u], 1, -1, &scratch, nb[:0])
					if len(nb) == 0 {
						continue
					}
					v := targets[nb[0]]
					parent[u] = v
					parentDist[u] = pts[u].Dist(pts[v])
				}
			})
		}
		// Within-level links: nearest neighbor in the node's own level set,
		// excluding itself. src is a subsequence of byLevel[i] (both are in
		// ascending index order), so one merge walk yields each source's
		// position in the subset — the kd-tree's exclude index.
		if len(byLevel[i]) > 1 {
			members := byLevel[i]
			tree := trees[i]
			srcPos := make([]int32, len(src))
			for s, j := 0, 0; s < len(src); s++ {
				for members[j] != src[s] {
					j++
				}
				srcPos[s] = int32(j)
			}
			we := parallel.Collect(len(src), func(lo, hi int, out []uint64) []uint64 {
				var scratch spatial.KNNScratch
				var nb []int32
				for s := lo; s < hi; s++ {
					u := src[s]
					nb = tree.KNearestInto(pts[u], 1, int(srcPos[s]), &scratch, nb[:0])
					if len(nb) == 0 {
						continue
					}
					out = append(out, graph.Pack(u, members[nb[0]]))
				}
				return out
			})
			h.Stats.WithinEdges += len(we)
			edges = append(edges, we...)
		}
	}

	// Bounded-degree pruning: per (parent, child level) — a node in several
	// level sets parents each level's children independently — order the
	// attachments by (parent, level, distance, child) and chain the
	// overflow: child k of an overloaded group attaches to child
	// k − MaxChildren, so each child gains at most one chained dependant
	// per slot and the parent's down-degree per level is capped.
	type attach struct {
		parent, child, level int32
		dist                 float64
	}
	var attaches []attach
	for u, p := range parent {
		if p >= 0 {
			attaches = append(attaches, attach{
				parent: p, child: int32(u), level: h.Levels[u], dist: parentDist[u],
			})
		}
	}
	slices.SortFunc(attaches, func(a, b attach) int {
		if a.parent != b.parent {
			return int(a.parent - b.parent)
		}
		if a.level != b.level {
			return int(a.level - b.level)
		}
		if a.dist != b.dist {
			if a.dist < b.dist {
				return -1
			}
			return 1
		}
		return int(a.child - b.child)
	})
	maxKids := spec.MaxChildren
	lastPruned := int32(-1)
	for lo := 0; lo < len(attaches); {
		hi := lo
		for hi < len(attaches) && attaches[hi].parent == attaches[lo].parent &&
			attaches[hi].level == attaches[lo].level {
			hi++
		}
		group := attaches[lo:hi]
		// Count distinct pruned parents, not pruned groups: a parent in
		// several level sets can overflow at more than one level, and the
		// sort keeps its groups adjacent.
		if maxKids > 0 && len(group) > maxKids && group[0].parent != lastPruned {
			h.Stats.PrunedParents++
			lastPruned = group[0].parent
		}
		for k, a := range group {
			if maxKids == 0 || k < maxKids {
				edges = append(edges, graph.Pack(a.parent, a.child))
				h.Stats.UpEdges++
			} else {
				edges = append(edges, graph.Pack(group[k-maxKids].child, a.child))
				h.Stats.ChainEdges++
			}
		}
		lo = hi
	}

	// Top-level spanning tree: Prim over the (small) highest occupied level,
	// deterministic via smallest-index tie-breaks.
	if t := byLevel[top-1]; len(t) > 1 {
		edges = append(edges, mstEdges(t, subPts[top-1])...)
		h.Stats.MSTEdges += len(t) - 1
	}

	b := graph.NewBuilder(n)
	b.AddPacked(edges, false)
	h.Geometric = &rgg.Geometric{CSR: b.Build(), Pos: pts}
	return h
}

// mstEdges returns the packed Euclidean MST edges of the node subset via
// O(k²) Prim — the top level set is geometrically small (expected O(1/p)),
// so the dense sweep beats building another spatial index.
func mstEdges(ids []int32, pos []geom.Point) []uint64 {
	k := len(ids)
	out := make([]uint64, 0, k-1)
	inTree := make([]bool, k)
	best := make([]float64, k)
	from := make([]int32, k)
	for i := range best {
		best[i] = math.Inf(1)
		from[i] = 0
	}
	inTree[0] = true
	for j := 1; j < k; j++ {
		best[j] = pos[0].Dist2(pos[j])
	}
	for added := 1; added < k; added++ {
		pick := -1
		for j := 0; j < k; j++ {
			if inTree[j] {
				continue
			}
			if pick < 0 || best[j] < best[pick] {
				pick = j
			}
		}
		inTree[pick] = true
		out = append(out, graph.Pack(ids[from[pick]], ids[pick]))
		for j := 0; j < k; j++ {
			if inTree[j] {
				continue
			}
			if d := pos[pick].Dist2(pos[j]); d < best[j] {
				best[j] = d
				from[j] = int32(pick)
			}
		}
	}
	return out
}
