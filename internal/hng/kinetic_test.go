package hng

import (
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// checkEquivalence asserts the equivalence gate: the kinetic maintainer's
// materialized graph equals a from-scratch Rebuild at the same positions,
// levels and alive set, edge-for-edge.
func checkEquivalence(t *testing.T, k *Kinetic, spec Spec, step int) {
	t.Helper()
	ref, err := Rebuild(k.Positions(), k.Levels(), k.AliveMask(), spec)
	if err != nil {
		t.Fatalf("step %d: Rebuild: %v", step, err)
	}
	got := k.Materialize()
	if diff := graph.FirstDiff(got, ref.CSR); diff != "" {
		t.Fatalf("step %d: incremental != rebuild: %s", step, diff)
	}
}

// runKineticEquivalence drives random moves and deaths through a Kinetic
// and checks the gate after every batch.
func runKineticEquivalence(t *testing.T, spec Spec, seed rng.Seed) {
	t.Helper()
	box := geom.Box(20, 20)
	pts := deployment(t, 20, 2, seed)
	h, err := Build(pts, spec, rng.Sub(seed, 1))
	if err != nil {
		t.Fatal(err)
	}
	k := NewKinetic(h, box)
	checkEquivalence(t, k, spec, -1)

	gen := rng.Sub(seed, 2)
	n := len(pts)
	for step := 0; step < 25; step++ {
		for op := 0; op < 8; op++ {
			u := int32(gen.IntN(n))
			if !k.AliveMask()[u] {
				continue
			}
			if gen.Float64() < 0.12 {
				k.Remove(u)
				continue
			}
			// Mostly small displacements, occasionally a long jump.
			p := k.Positions()[u]
			if gen.Float64() < 0.2 {
				p = geom.Point{X: gen.Float64() * 20, Y: gen.Float64() * 20}
			} else {
				p.X += (gen.Float64() - 0.5) * 0.8
				p.Y += (gen.Float64() - 0.5) * 0.8
				p = box.Clamp(p)
			}
			k.Move(u, p)
		}
		checkEquivalence(t, k, spec, step)
	}
	if k.Stats().LinkRecomputes == 0 {
		t.Fatal("no link recomputes recorded — repairs are not happening")
	}
}

func TestKineticEquivalenceUnderMotion(t *testing.T) {
	for _, gmp := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(gmp)
		runKineticEquivalence(t, DefaultSpec(), 31)
		runtime.GOMAXPROCS(prev)
	}
}

func TestKineticEquivalenceUnprunedAndFlat(t *testing.T) {
	// No pruning (unbounded groups) and a taller hierarchy both exercise
	// different group/MST paths.
	runKineticEquivalence(t, Spec{P: 0.3, MaxChildren: 0}, 7)
	runKineticEquivalence(t, Spec{P: 0.45, MaxChildren: 2}, 13)
}

func TestKineticMassDeathReachesEmpty(t *testing.T) {
	// Killing every node one by one must keep the gate at every prefix and
	// end at the empty graph (top chases the survivors down).
	box := geom.Box(12, 12)
	pts := deployment(t, 12, 1.5, 3)
	spec := DefaultSpec()
	h, err := Build(pts, spec, rng.Sub(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	k := NewKinetic(h, box)
	order := rng.Sub(3, 2).Perm(len(pts))
	for i, u := range order {
		k.Remove(int32(u))
		if i%7 == 0 || i == len(order)-1 {
			checkEquivalence(t, k, spec, i)
		}
	}
	if got := k.Materialize(); got.EdgeCount != 0 {
		t.Fatalf("graph not empty after all deaths: %d edges", got.EdgeCount)
	}
}

func TestKineticCoincidentPoints(t *testing.T) {
	// Duplicate positions stress the (distance, index) tie-breaks: moves
	// landing exactly on occupied coordinates must still match the rebuild.
	box := geom.Box(4, 4)
	pts := []geom.Point{
		{X: 1, Y: 1}, {X: 1, Y: 1}, {X: 3, Y: 3}, {X: 3, Y: 3},
		{X: 1, Y: 3}, {X: 3, Y: 1}, {X: 2, Y: 2}, {X: 2, Y: 2},
		{X: 1, Y: 1}, {X: 3, Y: 3}, {X: 0.5, Y: 0.5}, {X: 3.5, Y: 0.5},
	}
	spec := Spec{P: 0.4, MaxChildren: 2}
	h, err := Build(pts, spec, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	k := NewKinetic(h, box)
	checkEquivalence(t, k, spec, -1)
	targets := []geom.Point{
		{X: 1, Y: 1}, {X: 3, Y: 3}, {X: 2, Y: 2}, {X: 1, Y: 3},
	}
	gen := rng.Sub(17, 5)
	for step := 0; step < 30; step++ {
		u := int32(gen.IntN(len(pts)))
		if !k.AliveMask()[u] {
			continue
		}
		if step%9 == 8 {
			k.Remove(u)
		} else {
			k.Move(u, targets[gen.IntN(len(targets))])
		}
		checkEquivalence(t, k, spec, step)
	}
}

func TestKineticStatsScaleWithRegion(t *testing.T) {
	// A small displacement must touch far fewer links than the node count —
	// the "repair cost ~ O(affected region), not O(n)" claim in its
	// cheapest testable form.
	box := geom.Box(30, 30)
	pts := deployment(t, 30, 4, 23)
	h, err := Build(pts, DefaultSpec(), rng.Sub(23, 1))
	if err != nil {
		t.Fatal(err)
	}
	k := NewKinetic(h, box)
	n := len(pts)
	gen := rng.Sub(23, 2)
	const trials = 50
	k.ResetStats()
	for i := 0; i < trials; i++ {
		u := int32(gen.IntN(n))
		p := k.Positions()[u]
		p.X += (gen.Float64() - 0.5) * 0.2
		p.Y += (gen.Float64() - 0.5) * 0.2
		k.Move(u, box.Clamp(p))
	}
	s := k.ResetStats()
	perMove := float64(s.LinkRecomputes) / trials
	if perMove > float64(n)/10 {
		t.Fatalf("small moves relink %.1f nodes on average (n=%d) — repair is not localized", perMove, n)
	}
}
