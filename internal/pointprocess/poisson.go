// Package pointprocess generates the random point sets underlying the
// paper's models: homogeneous Poisson point processes in rectangles (the
// node deployments of UDG(2, λ) and NN(2, k)), binomial processes with a
// fixed count, and independent thinning.
//
// The standard conditional construction is used: the number of points in a
// rectangle A is Poisson(λ·area(A)), and given the count the points are
// i.i.d. uniform on A. Disjoint rectangles therefore receive independent
// point sets, which is exactly the independence the paper's tile-goodness
// coupling relies on.
package pointprocess

import (
	"math"
	"math/rand/v2"

	"repro/internal/geom"
)

// PoissonCount samples a Poisson random variable with the given mean.
// For small means it uses Knuth's product-of-uniforms method; for large
// means (> 30) it uses the PTRS transformed-rejection sampler of Hörmann,
// which is exact and O(1).
func PoissonCount(mean float64, rng *rand.Rand) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		// Knuth: count uniforms until their product drops below e^−mean.
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	return poissonPTRS(mean, rng)
}

// poissonPTRS implements Hörmann's PTRS rejection sampler for Poisson
// variates with mean ≥ 10 (used here for ≥ 30).
func poissonPTRS(mu float64, rng *rand.Rand) int {
	b := 0.931 + 2.53*math.Sqrt(mu)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	for {
		u := rng.Float64() - 0.5
		v := rng.Float64()
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mu + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*math.Log(mu)-mu-logGamma(k+1) {
			return int(k)
		}
	}
}

func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Poisson samples a homogeneous Poisson point process of intensity lambda
// on the rectangle box.
func Poisson(box geom.Rect, lambda float64, rng *rand.Rand) []geom.Point {
	n := PoissonCount(lambda*box.Area(), rng)
	return Binomial(box, n, rng)
}

// Binomial samples n i.i.d. uniform points on the rectangle box (the
// "binomial point process"). Conditioning a Poisson process on its count
// yields exactly this distribution.
func Binomial(box geom.Rect, n int, rng *rand.Rand) []geom.Point {
	pts := make([]geom.Point, n)
	w, h := box.Width(), box.Height()
	for i := range pts {
		pts[i] = geom.Point{
			X: box.Min.X + rng.Float64()*w,
			Y: box.Min.Y + rng.Float64()*h,
		}
	}
	return pts
}

// Thin returns an independent p-thinning of the point set: each point is
// retained independently with probability p. Thinning a Poisson(λ) process
// yields a Poisson(pλ) process.
func Thin(pts []geom.Point, p float64, rng *rand.Rand) []geom.Point {
	out := make([]geom.Point, 0, int(float64(len(pts))*p)+1)
	for _, pt := range pts {
		if rng.Float64() < p {
			out = append(out, pt)
		}
	}
	return out
}

// CountIn returns the number of points lying in the region r.
func CountIn(pts []geom.Point, r geom.Region) int {
	n := 0
	for _, p := range pts {
		if r.Contains(p) {
			n++
		}
	}
	return n
}

// FilterIn returns the points lying in the region r.
func FilterIn(pts []geom.Point, r geom.Region) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if r.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// VoidProbability returns the exact probability that a region of the given
// area contains no point of a Poisson(λ) process: e^{−λ·area}.
func VoidProbability(lambda, area float64) float64 {
	return math.Exp(-lambda * area)
}

// OccupancyProbability returns 1 − e^{−λ·area}, the probability that a
// region of the given area contains at least one point.
func OccupancyProbability(lambda, area float64) float64 {
	return -math.Expm1(-lambda * area)
}

// PoissonCDF returns P(N ≤ k) for N ~ Poisson(mean), computed by direct
// summation of the pmf (adequate for the tile-population checks, where
// mean ≤ a few hundred).
func PoissonCDF(k int, mean float64) float64 {
	if k < 0 {
		return 0
	}
	if mean <= 0 {
		return 1
	}
	term := math.Exp(-mean)
	sum := term
	for i := 1; i <= k; i++ {
		term *= mean / float64(i)
		sum += term
	}
	if sum > 1 {
		return 1
	}
	return sum
}
