package pointprocess

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestInhomogeneousCountMatchesIntegral(t *testing.T) {
	g := rng.New(1)
	box := geom.Box(20, 10)
	grad := LinearGradient(box, 2, 10)
	// Expected count = ∫ intensity = mean(2, 10) · area = 6 · 200 = 1200.
	const trials = 30
	var total float64
	for i := 0; i < trials; i++ {
		total += float64(len(Inhomogeneous(box, grad, 10, g)))
	}
	mean := total / trials
	if math.Abs(mean-1200) > 60 {
		t.Errorf("mean count %v want ≈1200", mean)
	}
}

func TestInhomogeneousGradientShape(t *testing.T) {
	g := rng.New(2)
	box := geom.Box(20, 10)
	pts := Inhomogeneous(box, LinearGradient(box, 1, 9), 9, g)
	// Quartile counts should be increasing left to right ≈ 2:4:6:8.
	var q [4]int
	for _, p := range pts {
		i := int(p.X / 5)
		if i > 3 {
			i = 3
		}
		q[i]++
	}
	for i := 1; i < 4; i++ {
		if q[i] <= q[i-1] {
			t.Errorf("quartiles not increasing: %v", q)
		}
	}
	// Rough ratio check on the extreme quartiles (expected 2:8 = 0.25).
	ratio := float64(q[0]) / float64(q[3])
	if ratio < 0.15 || ratio > 0.4 {
		t.Errorf("extreme quartile ratio %v want ≈0.25", ratio)
	}
}

func TestInhomogeneousDegenerate(t *testing.T) {
	g := rng.New(3)
	box := geom.Box(5, 5)
	if got := Inhomogeneous(box, func(geom.Point) float64 { return 1 }, 0, g); got != nil {
		t.Error("maxLambda=0 should yield nil")
	}
	if got := Inhomogeneous(box, func(geom.Point) float64 { return 0 }, 5, g); len(got) != 0 {
		t.Errorf("zero intensity should yield no points, got %d", len(got))
	}
	// Intensity above maxLambda is clamped — behaves like homogeneous(max).
	over := Inhomogeneous(box, func(geom.Point) float64 { return 100 }, 4, g)
	if math.Abs(float64(len(over))-100) > 40 {
		t.Errorf("clamped intensity count = %d want ≈100", len(over))
	}
}

func TestLinearGradientClamping(t *testing.T) {
	box := geom.Box(10, 10)
	f := LinearGradient(box, 2, 6)
	if f(geom.Pt(0, 5)) != 2 || f(geom.Pt(10, 5)) != 6 {
		t.Error("endpoints wrong")
	}
	if f(geom.Pt(5, 0)) != 4 {
		t.Errorf("midpoint = %v", f(geom.Pt(5, 0)))
	}
	// Out-of-box queries clamp rather than extrapolate.
	if f(geom.Pt(-5, 0)) != 2 || f(geom.Pt(25, 0)) != 6 {
		t.Error("clamping failed")
	}
	// Degenerate zero-width box.
	z := LinearGradient(geom.Rect{}, 3, 7)
	if z(geom.Pt(0, 0)) != 3 {
		t.Error("zero-width box should return lambda0")
	}
}

func TestRadialHotspotShape(t *testing.T) {
	f := RadialHotspot(geom.Pt(0, 0), 10, 2, 4)
	if f(geom.Pt(0, 0)) != 10 {
		t.Error("peak wrong")
	}
	if f(geom.Pt(4, 0)) != 2 || f(geom.Pt(100, 0)) != 2 {
		t.Error("edge wrong")
	}
	if v := f(geom.Pt(2, 0)); math.Abs(v-6) > 1e-12 {
		t.Errorf("midpoint = %v want 6", v)
	}
}
