package pointprocess

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/geom"
)

func soaEqual(t *testing.T, label string, a, b geom.SoA) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("%s: length %d vs %d", label, a.Len(), b.Len())
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatalf("%s: point %d is (%v, %v) vs (%v, %v)", label, i, a.X[i], a.Y[i], b.X[i], b.Y[i])
		}
	}
}

// TestStreamConcatEqualsSoA pins the documented contract: concatenating
// StreamPoisson's row-major tile emissions reproduces PoissonSoA's slabs
// byte for byte.
func TestStreamConcatEqualsSoA(t *testing.T) {
	box := geom.Box(13, 7)
	for _, genSide := range []float64{0, 1.7, 3, 100} {
		var cat geom.SoA
		n := StreamPoisson(box, 5, 42, genSide, func(tile geom.Rect, xs, ys []float64) {
			for i := range xs {
				if !tile.Contains(geom.Pt(xs[i], ys[i])) {
					t.Fatalf("genSide %v: point (%v, %v) outside its tile %v", genSide, xs[i], ys[i], tile)
				}
			}
			cat.X = append(cat.X, xs...)
			cat.Y = append(cat.Y, ys...)
		})
		if n != cat.Len() {
			t.Fatalf("genSide %v: StreamPoisson returned %d, emitted %d", genSide, n, cat.Len())
		}
		soaEqual(t, "stream vs SoA", cat, PoissonSoA(box, 5, 42, genSide))
	}
}

// TestPoissonSoADeterministicAcrossGOMAXPROCS: the two-pass parallel fill
// must produce identical slabs at any worker count — each tile's substream
// is re-derived, never shared.
func TestPoissonSoADeterministicAcrossGOMAXPROCS(t *testing.T) {
	box := geom.Box(40, 40)
	prev := runtime.GOMAXPROCS(8)
	wide := PoissonSoA(box, 10, 7, 0.5) // 80×80 = 6400 tiles, multiple shards
	runtime.GOMAXPROCS(1)
	narrow := PoissonSoA(box, 10, 7, 0.5)
	runtime.GOMAXPROCS(prev)
	if wide.Len() < 10000 {
		t.Fatalf("deployment too small (%d) to exercise parallelism", wide.Len())
	}
	soaEqual(t, "GOMAXPROCS 1 vs 8", narrow, wide)
}

// TestPoissonSoAStatistics: points land in the box and the count matches
// λ·area within Poisson fluctuation; different seeds give different
// realizations, different tilings of the same seed give different but
// equally valid ones.
func TestPoissonSoAStatistics(t *testing.T) {
	box := geom.NewRect(geom.Pt(-3, 2), geom.Pt(9, 11)) // offset box, area 108
	const lambda = 20.0
	mean := lambda * box.Area()
	s := PoissonSoA(box, lambda, 11, 2)
	for i := 0; i < s.Len(); i++ {
		if !box.Contains(s.At(i)) {
			t.Fatalf("point %d = %v outside box", i, s.At(i))
		}
	}
	if dev := math.Abs(float64(s.Len()) - mean); dev > 6*math.Sqrt(mean) {
		t.Errorf("count %d deviates from mean %v by %v (> 6σ)", s.Len(), mean, dev)
	}
	if other := PoissonSoA(box, lambda, 12, 2); other.Len() == s.Len() {
		same := true
		for i := range s.X {
			if s.X[i] != other.X[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced the identical realization")
		}
	}
}

func TestPoissonSoAEdgeCases(t *testing.T) {
	if s := PoissonSoA(geom.Box(5, 5), 0, 1, 1); s.Len() != 0 {
		t.Error("lambda 0 should be empty")
	}
	if s := PoissonSoA(geom.NewRect(geom.Pt(2, 2), geom.Pt(2, 5)), 10, 1, 1); s.Len() != 0 {
		t.Error("degenerate box should be empty")
	}
	if n := StreamPoisson(geom.Box(5, 5), -1, 1, 1, func(geom.Rect, []float64, []float64) {}); n != 0 {
		t.Error("negative lambda should be empty")
	}
	// genSide larger than the box degrades to a single tile.
	a := PoissonSoA(geom.Box(3, 3), 4, 9, 50)
	b := PoissonSoA(geom.Box(3, 3), 4, 9, 0)
	soaEqual(t, "oversized genSide vs single tile", a, b)
}
