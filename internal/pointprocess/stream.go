package pointprocess

import (
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rng"
)

// Streaming deployment generation for the million-node scale tier.
//
// Poisson deployments at 10⁶ points and beyond must not be produced by one
// generator appending into one growing slice: the append ladder copies the
// whole set log(n) times, and a single sequential RNG stream forces serial
// generation. Instead the deployment box is sharded into square generation
// tiles; each tile draws its own point count and coordinates from a
// dedicated RNG substream (rng.Derive of the deployment seed and the tile
// index), which makes tiles independent Poisson restrictions — exactly the
// restriction property of the process — and makes generation deterministic
// at any GOMAXPROCS, parallelizable, and resumable per tile.
//
// Substream discipline: the deployment consumes the substreams Derive(seed,
// 0..tiles-1) entirely and nothing else; a caller handing a dedicated
// scenario substream's derived seed to these generators therefore stays
// cache-eligible under the scenario engine's rule (the build consumes its
// stream exclusively — see docs/scenarios.md).

// genTiles returns the generation-tile grid for box: gw×gh square tiles of
// side genSide, the last row/column clipped to the box. A non-positive
// genSide means one tile covering the whole box.
func genTiles(box geom.Rect, genSide float64) (gw, gh int, side float64) {
	w, h := box.Width(), box.Height()
	if genSide <= 0 || genSide >= math.Max(w, h) {
		return 1, 1, math.Max(w, h)
	}
	gw = int(math.Ceil(w / genSide))
	gh = int(math.Ceil(h / genSide))
	if gw < 1 {
		gw = 1
	}
	if gh < 1 {
		gh = 1
	}
	return gw, gh, genSide
}

// genTileRect returns the clipped rectangle of tile (tx, ty).
func genTileRect(box geom.Rect, side float64, tx, ty int) geom.Rect {
	r := geom.Rect{
		Min: geom.Point{X: box.Min.X + float64(tx)*side, Y: box.Min.Y + float64(ty)*side},
		Max: geom.Point{X: box.Min.X + float64(tx+1)*side, Y: box.Min.Y + float64(ty+1)*side},
	}
	if r.Max.X > box.Max.X {
		r.Max.X = box.Max.X
	}
	if r.Max.Y > box.Max.Y {
		r.Max.Y = box.Max.Y
	}
	return r
}

// fillTile draws tile t's realization from its substream: the Poisson count
// first, then the uniform coordinates (x before y per point), appending to
// xs/ys. Both passes of PoissonSoA and every StreamPoisson call replay this
// exact draw order, which is what makes the count pass and the fill pass
// agree.
func fillTile(box geom.Rect, side float64, lambda float64, seed rng.Seed, gw, tx, ty int, xs, ys []float64) ([]float64, []float64) {
	r := genTileRect(box, side, tx, ty)
	g := rng.Sub(seed, uint64(ty*gw+tx))
	k := PoissonCount(lambda*r.Area(), g)
	w, h := r.Width(), r.Height()
	for i := 0; i < k; i++ {
		xs = append(xs, r.Min.X+g.Float64()*w)
		ys = append(ys, r.Min.Y+g.Float64()*h)
	}
	return xs, ys
}

// StreamPoisson generates a Poisson(λ) deployment on box tile by tile,
// calling emit once per generation tile with the tile's rectangle and its
// points' coordinate slices. The slices are scratch reused across calls —
// emit must copy anything it keeps. Tiles are emitted in row-major order;
// the concatenation of all emissions is exactly PoissonSoA's output for the
// same arguments (property-tested). Returns the total point count.
//
// This is the constant-memory form: a consumer that reduces tiles on the
// fly (occupancy statistics, per-tile graph construction, sharded file
// output) never holds more than one tile's points.
func StreamPoisson(box geom.Rect, lambda float64, seed rng.Seed, genSide float64, emit func(tile geom.Rect, xs, ys []float64)) int {
	if lambda <= 0 || box.Area() <= 0 {
		return 0
	}
	gw, gh, side := genTiles(box, genSide)
	var xs, ys []float64
	total := 0
	for ty := 0; ty < gh; ty++ {
		for tx := 0; tx < gw; tx++ {
			xs, ys = fillTile(box, side, lambda, seed, gw, tx, ty, xs[:0], ys[:0])
			total += len(xs)
			emit(genTileRect(box, side, tx, ty), xs, ys)
		}
	}
	return total
}

// PoissonSoA generates a Poisson(λ) deployment on box into struct-of-arrays
// coordinate slabs, sized exactly and filled tile by tile in parallel: a
// first pass draws only the per-tile Poisson counts (a handful of uniforms
// per tile), a prefix sum fixes every tile's slab offset, and a second pass
// re-derives each tile's substream and writes the coordinates straight into
// place. No intermediate slab, no append growth, identical output at any
// GOMAXPROCS, and byte-identical to concatenating StreamPoisson's tiles.
func PoissonSoA(box geom.Rect, lambda float64, seed rng.Seed, genSide float64) geom.SoA {
	if lambda <= 0 || box.Area() <= 0 {
		return geom.SoA{}
	}
	gw, gh, side := genTiles(box, genSide)
	nt := gw * gh

	// Pass 1: counts. Each tile's count draw is the prefix of the exact
	// same substream the fill pass replays.
	counts := make([]int64, nt+1)
	parallel.ForShard(nt, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			r := genTileRect(box, side, t%gw, t/gw)
			counts[t+1] = int64(PoissonCount(lambda*r.Area(), rng.Sub(seed, uint64(t))))
		}
	})
	for t := 0; t < nt; t++ {
		counts[t+1] += counts[t]
	}
	total := counts[nt]

	// Pass 2: fill. Tiles scatter into disjoint slab windows, so the
	// parallel write is race-free and the layout is scheduling-independent.
	s := geom.SoA{X: make([]float64, total), Y: make([]float64, total)}
	parallel.ForShard(nt, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			off := counts[t]
			xs, ys := fillTile(box, side, lambda, seed, gw, t%gw, t/gw,
				s.X[off:off:counts[t+1]], s.Y[off:off:counts[t+1]])
			if int64(len(xs))+off != counts[t+1] || int64(len(ys))+off != counts[t+1] {
				panic("pointprocess: tile count drifted between passes")
			}
		}
	})
	return s
}
