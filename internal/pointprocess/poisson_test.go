package pointprocess

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/stats"
)

func TestPoissonCountMeanVariance(t *testing.T) {
	g := rng.New(1)
	for _, mean := range []float64{0.5, 3, 12, 30, 75, 400} {
		const n = 20000
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(PoissonCount(mean, g))
		}
		s := stats.Summarize(xs)
		// Poisson: mean == variance. Allow 5 standard errors.
		seMean := math.Sqrt(mean / n)
		if math.Abs(s.Mean-mean) > 5*seMean {
			t.Errorf("mean %v: sample mean %v", mean, s.Mean)
		}
		if math.Abs(s.Var-mean) > 0.1*mean {
			t.Errorf("mean %v: sample var %v", mean, s.Var)
		}
	}
}

func TestPoissonCountEdge(t *testing.T) {
	g := rng.New(2)
	if PoissonCount(0, g) != 0 || PoissonCount(-1, g) != 0 {
		t.Error("non-positive mean should give 0")
	}
}

func TestPoissonProcessCountDistribution(t *testing.T) {
	g := rng.New(3)
	box := geom.Box(4, 2.5) // area 10
	const lambda = 2.0
	const trials = 5000
	var total float64
	for i := 0; i < trials; i++ {
		pts := Poisson(box, lambda, g)
		total += float64(len(pts))
		for _, p := range pts {
			if !box.Contains(p) {
				t.Fatalf("point %v outside box", p)
			}
		}
	}
	mean := total / trials
	want := lambda * box.Area()
	if math.Abs(mean-want) > 0.2 {
		t.Errorf("mean count %v want %v", mean, want)
	}
}

func TestPoissonIndependenceAcrossDisjointRegions(t *testing.T) {
	// Counts in disjoint halves must be (nearly) uncorrelated.
	g := rng.New(4)
	box := geom.Box(2, 1)
	left := geom.NewRect(geom.Pt(0, 0), geom.Pt(1, 1))
	right := geom.NewRect(geom.Pt(1, 0), geom.Pt(2, 1))
	const trials = 4000
	var sl, sr, slr, sl2, sr2 float64
	for i := 0; i < trials; i++ {
		pts := Poisson(box, 5, g)
		l := float64(CountIn(pts, left))
		r := float64(CountIn(pts, right))
		sl += l
		sr += r
		slr += l * r
		sl2 += l * l
		sr2 += r * r
	}
	n := float64(trials)
	cov := slr/n - (sl/n)*(sr/n)
	varL := sl2/n - (sl/n)*(sl/n)
	varR := sr2/n - (sr/n)*(sr/n)
	corr := cov / math.Sqrt(varL*varR)
	if math.Abs(corr) > 0.06 {
		t.Errorf("counts in disjoint halves correlated: r = %v", corr)
	}
}

func TestBinomialExactCount(t *testing.T) {
	g := rng.New(5)
	box := geom.Box(1, 1)
	pts := Binomial(box, 137, g)
	if len(pts) != 137 {
		t.Fatalf("count = %d", len(pts))
	}
	for _, p := range pts {
		if !box.Contains(p) {
			t.Fatalf("point outside box: %v", p)
		}
	}
	if len(Binomial(box, 0, g)) != 0 {
		t.Error("zero count should give empty slice")
	}
}

func TestBinomialUniformity(t *testing.T) {
	g := rng.New(6)
	box := geom.Box(1, 1)
	pts := Binomial(box, 40000, g)
	// Quadrant counts should be ~10000 each.
	var q [4]int
	for _, p := range pts {
		i := 0
		if p.X >= 0.5 {
			i |= 1
		}
		if p.Y >= 0.5 {
			i |= 2
		}
		q[i]++
	}
	for i, c := range q {
		if math.Abs(float64(c)-10000) > 400 {
			t.Errorf("quadrant %d count %d", i, c)
		}
	}
}

func TestThin(t *testing.T) {
	g := rng.New(7)
	box := geom.Box(10, 10)
	pts := Binomial(box, 20000, g)
	kept := Thin(pts, 0.3, g)
	frac := float64(len(kept)) / float64(len(pts))
	if math.Abs(frac-0.3) > 0.02 {
		t.Errorf("thinning fraction = %v", frac)
	}
	if len(Thin(pts, 0, g)) != 0 {
		t.Error("p=0 thinning should drop everything")
	}
	if got := Thin(pts, 1.01, g); len(got) != len(pts) {
		t.Error("p≥1 thinning should keep everything")
	}
}

func TestCountInFilterIn(t *testing.T) {
	pts := []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(2, 2), geom.Pt(0.1, 0.9)}
	r := geom.Box(1, 1)
	if CountIn(pts, r) != 2 {
		t.Errorf("CountIn = %d", CountIn(pts, r))
	}
	f := FilterIn(pts, r)
	if len(f) != 2 {
		t.Errorf("FilterIn = %v", f)
	}
}

func TestVoidOccupancyProbability(t *testing.T) {
	if v := VoidProbability(2, 3); math.Abs(v-math.Exp(-6)) > 1e-15 {
		t.Errorf("VoidProbability = %v", v)
	}
	if o := OccupancyProbability(2, 3); math.Abs(o-(1-math.Exp(-6))) > 1e-15 {
		t.Errorf("OccupancyProbability = %v", o)
	}
	if v := VoidProbability(0, 5); v != 1 {
		t.Errorf("void with λ=0 should be certain, got %v", v)
	}
	// Empirical check: void probability of a sub-square.
	g := rng.New(8)
	box := geom.Box(3, 3)
	sub := geom.Square(geom.Pt(1.5, 1.5), 1)
	const lambda = 1.2
	const trials = 20000
	empty := 0
	for i := 0; i < trials; i++ {
		if CountIn(Poisson(box, lambda, g), sub) == 0 {
			empty++
		}
	}
	want := VoidProbability(lambda, 1)
	got := float64(empty) / trials
	if math.Abs(got-want) > 0.015 {
		t.Errorf("empirical void prob %v want %v", got, want)
	}
}

func TestPoissonCDF(t *testing.T) {
	if got := PoissonCDF(-1, 5); got != 0 {
		t.Errorf("CDF(-1) = %v", got)
	}
	if got := PoissonCDF(3, 0); got != 1 {
		t.Errorf("CDF with mean 0 = %v", got)
	}
	// P(N ≤ 0) = e^−mean.
	if got := PoissonCDF(0, 2); math.Abs(got-math.Exp(-2)) > 1e-12 {
		t.Errorf("CDF(0) = %v", got)
	}
	// CDF must be nondecreasing in k and reach ~1.
	prev := 0.0
	for k := 0; k <= 60; k++ {
		v := PoissonCDF(k, 20)
		if v < prev-1e-12 {
			t.Fatalf("CDF decreasing at k=%d", k)
		}
		prev = v
	}
	if prev < 0.999999 {
		t.Errorf("CDF(60; 20) = %v, should be ≈1", prev)
	}
	// Agreement with sampler.
	g := rng.New(9)
	const trials = 30000
	le10 := 0
	for i := 0; i < trials; i++ {
		if PoissonCount(12, g) <= 10 {
			le10++
		}
	}
	want := PoissonCDF(10, 12)
	got := float64(le10) / trials
	if math.Abs(got-want) > 0.015 {
		t.Errorf("sampler vs CDF: %v vs %v", got, want)
	}
}
