package pointprocess

import (
	"math/rand/v2"

	"repro/internal/geom"
)

// Inhomogeneous samples an inhomogeneous Poisson point process on box with
// the given intensity function, by thinning a homogeneous Poisson(maxLambda)
// process: a candidate at p survives with probability intensity(p)/maxLambda.
// intensity must satisfy 0 ≤ intensity(p) ≤ maxLambda on the box; values
// above maxLambda are clamped (the result is then an approximation).
//
// The paper assumes a homogeneous process; real deployments (air-dropped
// sensors, terrain effects) are not. The E18 experiment uses this to probe
// how UDG-SENS degrades under density gradients.
func Inhomogeneous(box geom.Rect, intensity func(geom.Point) float64, maxLambda float64, rng *rand.Rand) []geom.Point {
	if maxLambda <= 0 {
		return nil
	}
	candidates := Poisson(box, maxLambda, rng)
	out := make([]geom.Point, 0, len(candidates)/2)
	for _, p := range candidates {
		v := intensity(p) / maxLambda
		if v > 1 {
			v = 1
		}
		if v > 0 && rng.Float64() < v {
			out = append(out, p)
		}
	}
	return out
}

// LinearGradient returns an intensity function that ramps linearly from
// lambda0 at the left edge of box to lambda1 at the right edge.
func LinearGradient(box geom.Rect, lambda0, lambda1 float64) func(geom.Point) float64 {
	w := box.Width()
	return func(p geom.Point) float64 {
		if w <= 0 {
			return lambda0
		}
		f := (p.X - box.Min.X) / w
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return lambda0 + f*(lambda1-lambda0)
	}
}

// RadialHotspot returns an intensity function with peak density at center
// decaying linearly to edge density at radius r and beyond.
func RadialHotspot(center geom.Point, peak, edge, r float64) func(geom.Point) float64 {
	return func(p geom.Point) float64 {
		d := center.Dist(p)
		if d >= r {
			return edge
		}
		return peak + (edge-peak)*d/r
	}
}
