package routing

import (
	"testing"
	"testing/quick"

	"repro/internal/lattice"
	"repro/internal/rng"
)

// TestComputeNextProgressProperty: each x–y step reduces the L1 distance to
// the target by exactly 1 and stays on the canonical path.
func TestComputeNextProgressProperty(t *testing.T) {
	f := func(raw [4]int16) bool {
		cx, cy := int(raw[0])%50, int(raw[1])%50
		tx, ty := int(raw[2])%50, int(raw[3])%50
		if cx == tx && cy == ty {
			return true
		}
		nx, ny := computeNext(cx, cy, tx, ty)
		if lattice.L1(nx, ny, tx, ty) != lattice.L1(cx, cy, tx, ty)-1 {
			return false
		}
		return onXYPathBeyond(cx, cy, tx, ty, nx, ny)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRouteXYTrajectoryProperty: on random supercritical lattices, a
// delivered trajectory is a lattice walk over open sites from source to
// target with Hops == len−1, and hops are never below the chemical
// distance.
func TestRouteXYTrajectoryProperty(t *testing.T) {
	f := func(seed uint64, coords [4]uint8) bool {
		l := lattice.Sample(14, 14, 0.8, rng.New(rng.Seed(seed)))
		ax, ay := int(coords[0])%14, int(coords[1])%14
		bx, by := int(coords[2])%14, int(coords[3])%14
		res := RouteXY(l, ax, ay, bx, by, 0)
		opt := l.ChemicalDistance(ax, ay, bx, by)
		if !res.Delivered {
			// Must only fail when genuinely disconnected/closed.
			return opt < 0
		}
		if opt < 0 || res.Hops < opt {
			return false
		}
		if len(res.Trajectory) != res.Hops+1 {
			return false
		}
		if res.Trajectory[0] != l.Idx(ax, ay) ||
			res.Trajectory[len(res.Trajectory)-1] != l.Idx(bx, by) {
			return false
		}
		for i := 1; i < len(res.Trajectory); i++ {
			px, py := l.XY(res.Trajectory[i-1])
			qx, qy := l.XY(res.Trajectory[i])
			if lattice.L1(px, py, qx, qy) != 1 || !l.IsOpen(qx, qy) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
