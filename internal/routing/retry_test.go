package routing

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/rng"
)

// openLattice returns a fully open w×h lattice.
func openLattice(w, h int) *lattice.Lattice {
	l := lattice.New(w, h)
	for i := range l.Open {
		l.Open[i] = true
	}
	return l
}

// TestLossZeroBitIdentical pins the compatibility guarantee: with Loss == 0
// the retry machinery is inert — no RNG is consulted (Rng stays nil), every
// hop is one attempt, and the result matches the historical router field
// for field.
func TestLossZeroBitIdentical(t *testing.T) {
	g := rng.New(11)
	l := lattice.Sample(30, 30, 0.7, g)
	giant := l.LargestCluster()
	if len(giant) < 20 {
		t.Skip("subcritical realization")
	}
	a, b := giant[0], giant[len(giant)-1]
	ax, ay := l.XY(a)
	bx, by := l.XY(b)
	base := RouteXYWith(l, ax, ay, bx, by, Options{})
	withRetry := RouteXYWith(l, ax, ay, bx, by, Options{
		Retry: Retry{Attempts: 5, Backoff: 1, AltPath: true}, // policy set, loss zero
	})
	if base.Delivered != withRetry.Delivered || base.Hops != withRetry.Hops ||
		base.Probes != withRetry.Probes {
		t.Fatalf("loss-free routing diverged: %+v vs %+v", base, withRetry)
	}
	if withRetry.Attempts != withRetry.Hops || withRetry.Lost != 0 || withRetry.Backoff != 0 {
		t.Fatalf("loss-free retry accounting: %+v", withRetry)
	}
}

// TestLossOneFailsFast: a certainly-dead link must fail after a single
// attempt even under an unbounded retry policy.
func TestLossOneFailsFast(t *testing.T) {
	l := openLattice(5, 1)
	res := RouteXYWith(l, 0, 0, 4, 0, Options{
		Loss: 1, Rng: rng.Sub(1, 0),
		Retry: Retry{Attempts: -1, Backoff: 1},
	})
	if res.Delivered {
		t.Fatal("delivered across a loss-1 channel")
	}
	if res.Attempts != 1 || res.Lost != 1 {
		t.Fatalf("attempts=%d lost=%d, want 1/1 (fail fast)", res.Attempts, res.Lost)
	}
}

// TestRetryOffLossyLinkDrops: with the zero retry policy a single lost
// transmission kills the delivery — the baseline R03 contrasts against.
func TestRetryOffLossyLinkDrops(t *testing.T) {
	l := openLattice(10, 1)
	delivered := 0
	trials := 200
	for i := 0; i < trials; i++ {
		res := RouteXYWith(l, 0, 0, 9, 0, Options{Loss: 0.3, Rng: rng.Sub(7, uint64(i))})
		if res.Delivered {
			delivered++
		}
	}
	// Per-hop success 0.7 over 9 hops ≈ 4% — retries off must lose most.
	if delivered > trials/2 {
		t.Fatalf("retry-off delivered %d/%d on a 30%% lossy path", delivered, trials)
	}
}

// TestCappedRetryRestoresDelivery: the same lossy path with a capped
// jittered backoff policy recovers nearly all deliveries, and the recovery
// is paid for — Charge.Hop fires once per attempt, not per hop.
func TestCappedRetryRestoresDelivery(t *testing.T) {
	l := openLattice(10, 1)
	delivered, attempts, hops := 0, 0, 0
	trials := 200
	for i := 0; i < trials; i++ {
		hooks := &countingHooks{}
		res := RouteXYWith(l, 0, 0, 9, 0, Options{
			Loss: 0.3, Rng: rng.Sub(7, uint64(i)), Charge: hooks,
			Retry: Retry{Attempts: 6, Backoff: 1, MaxBackoff: 8, Jitter: 0.5},
		})
		if hooks.hops != res.Attempts {
			t.Fatalf("Charge.Hop fired %d times, Attempts = %d: retries must cost battery",
				hooks.hops, res.Attempts)
		}
		if res.Delivered {
			delivered++
		}
		attempts += res.Attempts
		hops += res.Hops
	}
	if delivered < trials*9/10 {
		t.Fatalf("capped retry delivered only %d/%d", delivered, trials)
	}
	if attempts <= hops {
		t.Fatalf("attempts %d ≤ hops %d under 30%% loss: retransmissions missing", attempts, hops)
	}
}

// TestBackoffAccumulatesCappedJittered checks the wait arithmetic: attempt
// i waits base·2^(i−1), capped at MaxBackoff, jitter only shrinks waits.
func TestBackoffAccumulatesCappedJittered(t *testing.T) {
	l := openLattice(2, 1)
	// Force several losses then a success by scanning substreams for a run
	// with retransmissions.
	for i := 0; i < 50; i++ {
		res := RouteXYWith(l, 0, 0, 1, 0, Options{
			Loss: 0.6, Rng: rng.Sub(13, uint64(i)),
			Retry: Retry{Attempts: 10, Backoff: 2, MaxBackoff: 5},
		})
		if res.Lost == 0 {
			continue
		}
		// Without jitter the waits are exactly min(2·2^(k−1), 5).
		want := 0.0
		for k := 1; k <= res.Lost; k++ {
			w := 2.0 * float64(int(1)<<uint(k-1))
			if w > 5 {
				w = 5
			}
			want += w
		}
		if res.Backoff != want {
			t.Fatalf("substream %d: backoff %v after %d losses, want %v", i, res.Backoff, res.Lost, want)
		}
		// Jittered variant never waits longer.
		j := RouteXYWith(l, 0, 0, 1, 0, Options{
			Loss: 0.6, Rng: rng.Sub(13, uint64(i)),
			Retry: Retry{Attempts: 10, Backoff: 2, MaxBackoff: 5, Jitter: 0.5},
		})
		if j.Lost == res.Lost && j.Backoff > res.Backoff {
			t.Fatalf("jitter grew backoff: %v > %v", j.Backoff, res.Backoff)
		}
		return
	}
	t.Skip("no substream produced retransmissions")
}

// TestAltPathRoutesAroundExhaustedLink: on a 2-D lattice with alternate
// paths, AltPath turns terminal per-link failures into detours instead of
// undelivered packets.
func TestAltPathRoutesAroundExhaustedLink(t *testing.T) {
	l := openLattice(8, 8) // fully open: plenty of detours
	noAlt, alt := 0, 0
	trials := 150
	for i := 0; i < trials; i++ {
		r1 := RouteXYWith(l, 0, 0, 7, 7, Options{
			Loss: 0.45, Rng: rng.Sub(21, uint64(i)),
			Retry: Retry{Attempts: 2, Backoff: 1},
		})
		if r1.Delivered {
			noAlt++
		}
		r2 := RouteXYWith(l, 0, 0, 7, 7, Options{
			Loss: 0.45, Rng: rng.Sub(21, uint64(i)),
			Retry: Retry{Attempts: 2, Backoff: 1, AltPath: true},
		})
		if r2.Delivered {
			alt++
		}
	}
	if alt <= noAlt {
		t.Fatalf("alternate-path fallback did not improve delivery: %d vs %d over %d trials",
			alt, noAlt, trials)
	}
}

// TestRetryDeterministicPerSubstream: identical options and substream give
// identical results — the property that lets R03 pin golden tables.
func TestRetryDeterministicPerSubstream(t *testing.T) {
	g := rng.New(31)
	l := lattice.Sample(25, 25, 0.75, g)
	opt := func(i uint64) Options {
		return Options{
			Loss: 0.2, Rng: rng.Sub(31, i),
			Retry: Retry{Attempts: 4, Backoff: 1, MaxBackoff: 8, Jitter: 0.5, AltPath: true},
		}
	}
	for i := uint64(0); i < 20; i++ {
		a := RouteXYWith(l, 1, 1, 20, 20, opt(i))
		b := RouteXYWith(l, 1, 1, 20, 20, opt(i))
		if a.Delivered != b.Delivered || a.Attempts != b.Attempts ||
			a.Hops != b.Hops || a.Backoff != b.Backoff {
			t.Fatalf("substream %d: %+v vs %+v", i, a, b)
		}
	}
}
