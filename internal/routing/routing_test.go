package routing

import (
	"testing"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tiling"
)

func fullLattice(w, h int) *lattice.Lattice {
	l := lattice.New(w, h)
	for i := range l.Open {
		l.Open[i] = true
	}
	return l
}

func TestRouteXYOnFullLattice(t *testing.T) {
	l := fullLattice(10, 10)
	res := RouteXY(l, 1, 1, 7, 4, 0)
	if !res.Delivered {
		t.Fatal("not delivered on full lattice")
	}
	// The x–y path is optimal here: |Δx| + |Δy| hops.
	if res.Hops != 9 {
		t.Errorf("hops = %d want 9", res.Hops)
	}
	if len(res.Trajectory) != res.Hops+1 {
		t.Errorf("trajectory length %d vs hops %d", len(res.Trajectory), res.Hops)
	}
	// Probes = one isOpen per step on the happy path.
	if res.Probes != res.Hops {
		t.Errorf("probes = %d want %d", res.Probes, res.Hops)
	}
	// Trajectory follows x first, then y.
	x, y := l.XY(res.Trajectory[1])
	if x != 2 || y != 1 {
		t.Errorf("first move = (%d,%d) want (2,1)", x, y)
	}
}

func TestRouteXYSelf(t *testing.T) {
	l := fullLattice(5, 5)
	res := RouteXY(l, 2, 2, 2, 2, 0)
	if !res.Delivered || res.Hops != 0 || res.Probes != 0 {
		t.Errorf("self route = %+v", res)
	}
}

func TestRouteXYClosedEndpoints(t *testing.T) {
	l := fullLattice(5, 5)
	l.Set(0, 0, false)
	if res := RouteXY(l, 0, 0, 3, 3, 0); res.Delivered {
		t.Error("closed source delivered")
	}
	if res := RouteXY(l, 3, 3, 0, 0, 0); res.Delivered {
		t.Error("closed target delivered")
	}
}

func TestRouteXYDetoursAroundWall(t *testing.T) {
	// A vertical wall with one gap forces a detour.
	l := fullLattice(9, 9)
	for y := 0; y < 9; y++ {
		if y != 7 {
			l.Set(4, y, false)
		}
	}
	res := RouteXY(l, 1, 1, 7, 1, 0)
	if !res.Delivered {
		t.Fatal("not delivered around wall")
	}
	// Optimal path must climb to y=7 and back: BFS distance.
	want := lattice.New(1, 1) // placeholder to use ChemicalDistance below
	_ = want
	opt := l.ChemicalDistance(1, 1, 7, 1)
	if res.Hops < opt {
		t.Errorf("hops %d below optimal %d", res.Hops, opt)
	}
	// Every consecutive trajectory pair must be lattice-adjacent and open.
	for i := 1; i < len(res.Trajectory); i++ {
		ax, ay := l.XY(res.Trajectory[i-1])
		bx, by := l.XY(res.Trajectory[i])
		if lattice.L1(ax, ay, bx, by) != 1 {
			t.Fatalf("non-adjacent trajectory step (%d,%d)→(%d,%d)", ax, ay, bx, by)
		}
		if !l.IsOpen(bx, by) {
			t.Fatalf("trajectory enters closed site (%d,%d)", bx, by)
		}
	}
}

func TestRouteXYUnreachable(t *testing.T) {
	// Separate the lattice into two halves with a full closed column.
	l := fullLattice(9, 9)
	for y := 0; y < 9; y++ {
		l.Set(4, y, false)
	}
	res := RouteXY(l, 1, 1, 7, 1, 0)
	if res.Delivered {
		t.Error("delivered across a full wall")
	}
}

func TestRouteXYProbeBudget(t *testing.T) {
	l := fullLattice(50, 50)
	res := RouteXY(l, 0, 0, 49, 49, 5)
	if res.Delivered {
		t.Error("delivered with a 5-probe budget over a 98-hop route")
	}
	if res.Probes > 5 {
		t.Errorf("probes %d exceeded budget", res.Probes)
	}
}

func TestRouteXYOnSupercriticalPercolation(t *testing.T) {
	g := rng.New(1)
	const p = 0.75
	const n = 60
	delivered := 0
	var ratio []float64
	for trial := 0; trial < 40; trial++ {
		l := lattice.Sample(n, n, p, g)
		giant := l.LargestCluster()
		if len(giant) < 100 {
			continue
		}
		// Pick two random giant-cluster sites.
		a := giant[g.IntN(len(giant))]
		b := giant[g.IntN(len(giant))]
		ax, ay := l.XY(a)
		bx, by := l.XY(b)
		opt := l.ChemicalDistance(ax, ay, bx, by)
		if opt <= 0 {
			continue
		}
		res := RouteXY(l, ax, ay, bx, by, 0)
		if !res.Delivered {
			t.Fatalf("giant-cluster pair not delivered (trial %d)", trial)
		}
		delivered++
		if res.Hops < opt {
			t.Fatalf("hops %d < optimal %d", res.Hops, opt)
		}
		ratio = append(ratio, float64(res.Probes)/float64(opt))
	}
	if delivered < 20 {
		t.Fatalf("too few successful trials: %d", delivered)
	}
	// Angel et al.: expected probes = O(optimal). The constant at p=0.75 is
	// small; guard against quadratic blowups with a generous ceiling.
	if m := stats.Mean(ratio); m > 12 {
		t.Errorf("mean probe/optimal ratio %v implausibly high", m)
	}
}

func TestRouteOnSens(t *testing.T) {
	g := rng.New(2)
	box := geom.Box(30, 30)
	pts := pointprocess.Poisson(box, 16, g)
	n, err := core.BuildUDG(pts, box, tiling.DefaultUDGSpec(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	reps, coords := n.GoodReps()
	if len(reps) < 4 {
		t.Skip("too few good reps in realization")
	}
	okCount := 0
	for trial := 0; trial < 20; trial++ {
		a := coords[g.IntN(len(coords))]
		b := coords[g.IntN(len(coords))]
		res, err := RouteOnSens(n, a, b, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			continue // different lattice clusters are possible
		}
		okCount++
		// Node path must be a real walk in the SENS graph ending at reps.
		if res.NodePath[0] != n.Tiles[a].Rep || res.NodePath[len(res.NodePath)-1] != n.Tiles[b].Rep {
			t.Fatalf("node path endpoints wrong")
		}
		for i := 1; i < len(res.NodePath); i++ {
			if !n.Graph.HasEdge(res.NodePath[i-1], res.NodePath[i]) {
				t.Fatalf("node path uses a non-edge (%d,%d)",
					res.NodePath[i-1], res.NodePath[i])
			}
		}
		if res.NodeHops != len(res.NodePath)-1 {
			t.Fatalf("NodeHops %d vs path len %d", res.NodeHops, len(res.NodePath))
		}
		// Each lattice hop expands to between 1 and 3 SENS edges (UDG).
		if res.LatticeHops > 0 && (res.NodeHops < res.LatticeHops || res.NodeHops > 3*res.LatticeHops) {
			t.Fatalf("expansion out of range: %d lattice vs %d node hops",
				res.LatticeHops, res.NodeHops)
		}
	}
	if okCount == 0 {
		t.Error("no successful SENS routes")
	}
}

// countingHooks tallies ChargeHooks callbacks and records the hop walk.
type countingHooks struct {
	probes, hops int
	walk         []int32
}

func (c *countingHooks) Probe(from, to int32) { c.probes++ }
func (c *countingHooks) Hop(from, to int32) {
	if len(c.walk) == 0 {
		c.walk = append(c.walk, from)
	}
	c.hops++
	c.walk = append(c.walk, to)
}

// TestChargeHooksMatchResult pins the hook contract on a percolated
// lattice: Probe fires exactly Result.Probes times, Hop exactly
// Result.Hops times, and the hop walk reproduces the trajectory.
func TestChargeHooksMatchResult(t *testing.T) {
	g := rng.New(4)
	l := lattice.Sample(40, 40, 0.72, g)
	giant := l.LargestCluster()
	if len(giant) < 50 {
		t.Skip("subcritical realization")
	}
	checked := 0
	for trial := 0; trial < 30; trial++ {
		a, b := giant[g.IntN(len(giant))], giant[g.IntN(len(giant))]
		ax, ay := l.XY(a)
		bx, by := l.XY(b)
		hooks := &countingHooks{}
		res := RouteXYWith(l, ax, ay, bx, by, Options{Charge: hooks})
		if hooks.probes != res.Probes {
			t.Fatalf("Probe fired %d times, Result.Probes = %d", hooks.probes, res.Probes)
		}
		if hooks.hops != res.Hops {
			t.Fatalf("Hop fired %d times, Result.Hops = %d", hooks.hops, res.Hops)
		}
		if res.Hops > 0 {
			if len(hooks.walk) != len(res.Trajectory) {
				t.Fatalf("hop walk length %d vs trajectory %d", len(hooks.walk), len(res.Trajectory))
			}
			for i := range hooks.walk {
				if hooks.walk[i] != res.Trajectory[i] {
					t.Fatalf("hop walk diverges from trajectory at %d", i)
				}
			}
		}
		checked++
	}
	if checked == 0 {
		t.Error("no routes checked")
	}
}

// TestChargeHooksMemoized: with memoization on, the Probe hook fires only
// for charged (first-time) probes — identical to the Probes counter.
func TestChargeHooksMemoized(t *testing.T) {
	g := rng.New(5)
	l := lattice.Sample(40, 40, 0.68, g)
	giant := l.LargestCluster()
	if len(giant) < 50 {
		t.Skip("subcritical realization")
	}
	a, b := giant[0], giant[len(giant)-1]
	ax, ay := l.XY(a)
	bx, by := l.XY(b)
	plain := &countingHooks{}
	RouteXYWith(l, ax, ay, bx, by, Options{Charge: plain})
	memo := &countingHooks{}
	res := RouteXYWith(l, ax, ay, bx, by, Options{Memoize: true, Charge: memo})
	if memo.probes != res.Probes {
		t.Fatalf("memoized Probe fired %d times, Result.Probes = %d", memo.probes, res.Probes)
	}
	if memo.probes > plain.probes {
		t.Errorf("memoization increased probes: %d > %d", memo.probes, plain.probes)
	}
}

// TestRouteOnSensChargedDebits runs the charged SENS routing variant and
// checks the bank arithmetic: members spend energy, non-members and
// unpowered nodes do not, and disabling the debits (zero bits) spends
// nothing.
func TestRouteOnSensChargedDebits(t *testing.T) {
	g := rng.New(2)
	box := geom.Box(30, 30)
	pts := pointprocess.Poisson(box, 16, g)
	n, err := core.BuildUDG(pts, box, tiling.DefaultUDGSpec(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, coords := n.GoodReps()
	if len(coords) < 4 {
		t.Skip("too few good reps in realization")
	}
	bank := energy.NewBank(energy.DefaultModel(), pts, 1e9)
	bank.SetPowered(n.Members)
	delivered := false
	for trial := 0; trial < 20 && !delivered; trial++ {
		a := coords[g.IntN(len(coords))]
		b := coords[g.IntN(len(coords))]
		if a == b {
			continue
		}
		res, err := RouteOnSensWith(n, a, b, SensOptions{
			Bank: bank, PacketBits: 4, ProbeBits: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		delivered = res.Delivered && res.NodeHops > 0
	}
	if !delivered {
		t.Skip("no multi-hop route found")
	}
	spent := bank.TotalSpent()
	if spent <= 0 {
		t.Fatal("charged routing spent nothing")
	}
	inNet := make(map[int32]bool)
	for _, v := range n.Members {
		inNet[v] = true
	}
	for i := range bank.Batteries {
		if bank.Batteries[i].Spent > 0 && !inNet[int32(i)] {
			t.Fatalf("non-member %d was charged", i)
		}
	}
	// Zero bits = free routing, bank untouched.
	free := energy.NewBank(energy.DefaultModel(), pts, 1e9)
	free.SetPowered(n.Members)
	if _, err := RouteOnSensWith(n, coords[0], coords[len(coords)-1],
		SensOptions{Bank: free}); err != nil {
		t.Fatal(err)
	}
	if free.TotalSpent() != 0 {
		t.Errorf("zero-bit routing spent %v", free.TotalSpent())
	}
}

func TestRouteOnSensErrors(t *testing.T) {
	g := rng.New(3)
	box := geom.Box(12, 12)
	pts := pointprocess.Poisson(box, 16, g)
	n, err := core.BuildUDG(pts, box, tiling.DefaultUDGSpec(), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, coords := n.GoodReps()
	if len(coords) == 0 {
		t.Skip("no good tiles")
	}
	if _, err := RouteOnSens(n, tiling.Coord{I: -99, J: 0}, coords[0], 0); err == nil {
		t.Error("out-of-window source accepted")
	}
	// A bad tile endpoint must be rejected.
	var bad tiling.Coord
	found := false
	for c, tn := range n.Tiles {
		if !tn.Good {
			bad, found = c, true
			break
		}
	}
	if found {
		if _, err := RouteOnSens(n, bad, coords[0], 0); err == nil {
			t.Error("bad source tile accepted")
		}
	}
}

func TestComputeNextAndPathPredicate(t *testing.T) {
	// x leg first.
	if x, y := computeNext(0, 0, 3, 3); x != 1 || y != 0 {
		t.Errorf("computeNext = (%d,%d)", x, y)
	}
	if x, y := computeNext(3, 0, 3, 3); x != 3 || y != 1 {
		t.Errorf("computeNext y-leg = (%d,%d)", x, y)
	}
	if x, y := computeNext(5, 5, 3, 3); x != 4 || y != 5 {
		t.Errorf("computeNext negative = (%d,%d)", x, y)
	}
	// Path predicate.
	if !onXYPathBeyond(0, 0, 3, 3, 2, 0) {
		t.Error("(2,0) should be on path")
	}
	if !onXYPathBeyond(0, 0, 3, 3, 3, 2) {
		t.Error("(3,2) should be on path")
	}
	if onXYPathBeyond(0, 0, 3, 3, 0, 0) {
		t.Error("current site is not beyond")
	}
	if onXYPathBeyond(0, 0, 3, 3, 1, 1) {
		t.Error("(1,1) is off the x–y path")
	}
	if !between(3, 0, 1) || between(0, 3, 4) {
		t.Error("between wrong")
	}
}

func TestRouteXYMemoizeNeverWorse(t *testing.T) {
	g := rng.New(9)
	l := lattice.Sample(50, 50, 0.7, g)
	giant := l.LargestCluster()
	if len(giant) < 100 {
		t.Skip("sparse realization")
	}
	tested := 0
	for trial := 0; trial < 60 && tested < 30; trial++ {
		a := giant[g.IntN(len(giant))]
		b := giant[g.IntN(len(giant))]
		ax, ay := l.XY(a)
		bx, by := l.XY(b)
		plain := RouteXY(l, ax, ay, bx, by, 0)
		memo := RouteXYWith(l, ax, ay, bx, by, Options{Memoize: true})
		if !plain.Delivered || !memo.Delivered {
			continue
		}
		tested++
		// Identical trajectory (memoization changes accounting, not control).
		if len(plain.Trajectory) != len(memo.Trajectory) {
			t.Fatalf("memoization changed the route: %d vs %d sites",
				len(plain.Trajectory), len(memo.Trajectory))
		}
		if memo.Probes > plain.Probes {
			t.Fatalf("memoized probes %d exceed stateless %d", memo.Probes, plain.Probes)
		}
	}
	if tested == 0 {
		t.Fatal("no routable pairs tested")
	}
}

func TestRouteXYMemoizeChargesOncePerSite(t *testing.T) {
	// A comb of closed columns forces repeated recoveries over shared
	// territory; memoized probes must be bounded by the number of sites.
	l := fullLattice(30, 30)
	for x := 3; x < 28; x += 4 {
		for y := 0; y < 29; y++ {
			l.Set(x, y, false)
		}
	}
	res := RouteXYWith(l, 0, 0, 29, 0, Options{Memoize: true})
	if !res.Delivered {
		t.Fatal("comb route failed")
	}
	if res.Probes > 30*30 {
		t.Errorf("memoized probes %d exceed site count", res.Probes)
	}
	plain := RouteXY(l, 0, 0, 29, 0, 0)
	if plain.Probes <= res.Probes {
		t.Errorf("comb should show memoization savings: plain %d vs memo %d",
			plain.Probes, res.Probes)
	}
}
