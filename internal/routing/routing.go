// Package routing implements the paper's §4.2 routing layer: the Angel–
// Benjamini–Ofek–Wieder algorithm for the giant component of a percolated
// mesh (Figure 9), and the adapter that runs it over a SENS network by
// mapping tiles to lattice sites through φ and expanding each lattice hop
// into the rep–relay–…–rep subpath (Figure 8).
//
// The algorithm follows the canonical x–y path (fix the x coordinate first,
// then y). When the next site is closed it launches a distributed BFS
// through the open cluster to find the nearest open site lying further
// along the x–y path, ships the packet along the BFS tree, and resumes.
// Angel et al. prove the expected number of probes is O(shortest path);
// experiment E12 reproduces that linear relationship.
package routing

import (
	"math/rand/v2"

	"repro/internal/lattice"
)

// Result reports one routing attempt on the lattice.
type Result struct {
	// Delivered is true when the packet reached the target site.
	Delivered bool
	// Hops is the number of lattice edges the packet traversed.
	Hops int
	// Probes counts site queries: each isOpen check on a prospective next
	// site and each site explored by recovery BFS rounds.
	Probes int
	// Attempts counts transmissions, including retransmissions; with no
	// link loss every hop is exactly one attempt, so Attempts == Hops.
	Attempts int
	// Lost counts failed transmission attempts (Attempts − Hops on a
	// delivered packet).
	Lost int
	// Backoff is the total simulated time spent waiting between
	// retransmissions under the retry policy.
	Backoff float64
	// Trajectory is the sequence of open sites visited by the packet,
	// starting at the source (inclusive).
	Trajectory []int32
}

// ChargeHooks receives the energy-bearing events of a routing attempt.
// Implementations translate them into battery debits (energy.Bank behind
// RouteOnSensWith) or plain accounting; a nil hook set costs nothing.
type ChargeHooks interface {
	// Probe fires once per charged site query: the node at site from asked
	// whether site to is open. Memoized re-probes (Options.Memoize) fire no
	// Probe, matching the free re-probe accounting of Result.Probes.
	Probe(from, to int32)
	// Hop fires once per transmission attempt on the edge from → to,
	// including retransmissions after link loss: retries spend real battery.
	// Without loss every traversed edge is a single attempt, so Hop fires
	// exactly once per lattice edge the packet crosses — the historical
	// contract.
	Hop(from, to int32)
}

// Retry is the retransmission policy applied per hop when link loss is
// enabled (Options.Loss > 0).
type Retry struct {
	// Attempts caps transmissions per hop: 0 or 1 means a single attempt
	// (retries off), n > 1 allows n transmissions, negative means unbounded.
	// A link with Loss ≥ 1 always fails after one attempt regardless — an
	// unbounded policy must not spin on a certainly-dead link.
	Attempts int
	// Backoff is the base wait after the first failed attempt; attempt i
	// waits Backoff·2^(i−1) (capped jittered exponential backoff).
	Backoff float64
	// MaxBackoff caps each individual wait (0 means uncapped).
	MaxBackoff float64
	// Jitter in [0, 1] randomly shaves each wait: wait ×= 1 − Jitter·U.
	Jitter float64
	// AltPath, when true, routes around a link whose attempts are exhausted:
	// the recovery BFS runs with the bad next site excluded. When false the
	// packet is simply undelivered — the retry-off baseline R03 measures.
	AltPath bool
}

// Options tunes RouteXYWith.
type Options struct {
	// ProbeBudget caps the number of probes (≤ 0 means unlimited); routing
	// fails once exhausted.
	ProbeBudget int
	// Memoize lets nodes cache probe answers: re-probing a site already
	// probed earlier in the same routing attempt is free. This models relays
	// remembering "is the tile over there good" answers — an ablation of
	// the stateless Angel et al. algorithm whose savings E12 quantifies.
	Memoize bool
	// Charge, when non-nil, observes every charged probe and every hop —
	// the per-hop/per-probe debit surface the energy layer hangs off.
	Charge ChargeHooks
	// Loss is the per-transmission link-loss probability. Zero keeps the
	// historical deterministic behavior bit-identical: no RNG is consulted
	// and every hop succeeds on its first attempt.
	Loss float64
	// Rng draws loss outcomes and backoff jitter; required when Loss > 0.
	Rng *rand.Rand
	// Retry is the per-hop retransmission policy; the zero value means a
	// single attempt per hop with no fallback.
	Retry Retry
}

// RouteXY routes a packet from (sx, sy) to (tx, ty) on the percolated
// lattice l with the stateless algorithm. Both endpoints must be open;
// routing fails (Delivered false) when the endpoints are in different open
// clusters or when probeBudget (≤ 0 means unlimited) is exhausted.
func RouteXY(l *lattice.Lattice, sx, sy, tx, ty int, probeBudget int) Result {
	return RouteXYWith(l, sx, sy, tx, ty, Options{ProbeBudget: probeBudget})
}

// RouteXYWith is RouteXY with explicit options.
func RouteXYWith(l *lattice.Lattice, sx, sy, tx, ty int, opt Options) Result {
	return RouteXYInto(l, sx, sy, tx, ty, opt, nil)
}

// Scratch holds the reusable buffers of RouteXYInto: the recovery-BFS
// visited/parent arrays and the probe-memo table, all round-stamped so reuse
// needs no clearing. One scratch per goroutine; Monte-Carlo loops that route
// many packets over same-sized lattices allocate nothing per route beyond
// the returned trajectory.
type Scratch struct {
	visited  []int32 // recovery-BFS stamp per site
	parent   []int32
	probedAt []int32 // attempt stamp per site (memoization)
	queue    []int32
	rev      []int32
	round    int32 // recovery-BFS stamp, monotonic across calls
	attempt  int32 // per-call stamp for probedAt
}

// resize readies the scratch for an n-site lattice, preserving stamps when
// the size is unchanged and guarding the stamp counters against wraparound.
func (sc *Scratch) resize(n int) {
	if len(sc.visited) != n || sc.round > 1<<30 || sc.attempt > 1<<30 {
		sc.visited = make([]int32, n)
		sc.parent = make([]int32, n)
		sc.probedAt = make([]int32, n)
		sc.round, sc.attempt = 0, 0
	}
}

// RouteXYInto is RouteXYWith with caller-owned scratch buffers (nil falls
// back to allocating fresh ones).
func RouteXYInto(l *lattice.Lattice, sx, sy, tx, ty int, opt Options, sc *Scratch) Result {
	res := Result{}
	if !l.IsOpen(sx, sy) || !l.IsOpen(tx, ty) {
		return res
	}
	if sc == nil {
		sc = &Scratch{}
	}
	sc.resize(l.W * l.H)
	sc.attempt++
	cx, cy := sx, sy
	res.Trajectory = append(res.Trajectory, l.Idx(cx, cy))
	visited, parent := sc.visited, sc.parent
	charge := func(from, to int32) {
		if opt.Memoize {
			if sc.probedAt[to] == sc.attempt {
				return
			}
			sc.probedAt[to] = sc.attempt
		}
		res.Probes++
		if opt.Charge != nil {
			opt.Charge.Probe(from, to)
		}
	}
	// transmit attempts the edge from → to under the loss model and retry
	// policy. Every attempt fires Charge.Hop (retries spend battery); a
	// successful attempt advances the trajectory. Returns false when the
	// policy's attempts are exhausted (or immediately on a Loss ≥ 1 link,
	// which an unbounded policy must not spin on). With Loss == 0 this is
	// the historical single-attempt hop and consults no RNG.
	transmit := func(from, to int32) bool {
		for attempt := 1; ; attempt++ {
			res.Attempts++
			if opt.Charge != nil {
				opt.Charge.Hop(from, to)
			}
			if opt.Loss <= 0 || opt.Rng.Float64() >= opt.Loss {
				res.Hops++
				res.Trajectory = append(res.Trajectory, to)
				return true
			}
			res.Lost++
			if opt.Loss >= 1 {
				return false
			}
			maxAttempts := opt.Retry.Attempts
			if maxAttempts == 0 {
				maxAttempts = 1
			}
			if maxAttempts > 0 && attempt >= maxAttempts {
				return false
			}
			shift := attempt - 1
			if shift > 30 {
				shift = 30
			}
			wait := opt.Retry.Backoff * float64(int64(1)<<uint(shift))
			if opt.Retry.MaxBackoff > 0 && wait > opt.Retry.MaxBackoff {
				wait = opt.Retry.MaxBackoff
			}
			if opt.Retry.Jitter > 0 {
				wait *= 1 - opt.Retry.Jitter*opt.Rng.Float64()
			}
			res.Backoff += wait
		}
	}

	budgetLeft := func() bool {
		return opt.ProbeBudget <= 0 || res.Probes < opt.ProbeBudget
	}

	for cx != tx || cy != ty {
		if !budgetLeft() {
			return res
		}
		nx, ny := computeNext(cx, cy, tx, ty)
		cur := l.Idx(cx, cy)
		charge(cur, l.Idx(nx, ny)) // isOpen(next)
		avoid := int32(-1)
		if l.IsOpen(nx, ny) {
			next := l.Idx(nx, ny)
			if transmit(cur, next) {
				cx, cy = nx, ny
				continue
			}
			// Link exhausted its attempts. Without alternate-path fallback the
			// packet is undelivered; with it, the recovery BFS below routes
			// around the suspect site.
			if !opt.Retry.AltPath {
				return res
			}
			avoid = next
		}
		// Recovery: distributed BFS from curr through the open cluster for
		// an open site strictly further along the x–y path.
		sc.round++
		round := sc.round
		src := l.Idx(cx, cy)
		visited[src] = round
		parent[src] = -1
		queue := append(sc.queue[:0], src)
		found := int32(-1)
		for head := 0; head < len(queue) && found < 0; head++ {
			i := queue[head]
			x, y := l.XY(i)
			for d := 0; d < 4; d++ {
				nx, ny := x+dx4[d], y+dy4[d]
				if nx < 0 || nx >= l.W || ny < 0 || ny >= l.H {
					continue
				}
				ni := l.Idx(nx, ny)
				if visited[ni] == round {
					continue
				}
				visited[ni] = round
				if ni == avoid {
					// The site behind the exhausted link is treated as suspect
					// for this recovery round: not probed, not entered.
					continue
				}
				charge(i, ni) // probing this site costs a message
				if !budgetLeft() {
					sc.queue = queue
					return res
				}
				if !l.IsOpen(nx, ny) {
					continue
				}
				parent[ni] = i
				if ni != src && onXYPathBeyond(cx, cy, tx, ty, nx, ny) {
					found = ni
					break
				}
				queue = append(queue, ni)
			}
		}
		sc.queue = queue
		if found < 0 {
			// Open cluster exhausted: target unreachable.
			return res
		}
		// Ship the packet along the BFS tree path curr → found. A terminal
		// transmit failure mid-ship strands the packet at prev: with AltPath
		// the outer loop re-plans from there, otherwise it is undelivered.
		rev := sc.rev[:0]
		for i := found; i != src; i = parent[i] {
			rev = append(rev, i)
		}
		sc.rev = rev
		prev := src
		shipped := true
		for j := len(rev) - 1; j >= 0; j-- {
			if !transmit(prev, rev[j]) {
				if !opt.Retry.AltPath {
					return res
				}
				shipped = false
				break
			}
			prev = rev[j]
		}
		if shipped {
			cx, cy = l.XY(found)
		} else {
			cx, cy = l.XY(prev)
		}
	}
	res.Delivered = true
	return res
}

var dx4 = [4]int{1, -1, 0, 0}
var dy4 = [4]int{0, 0, 1, -1}

// computeNext returns the next site along the canonical x–y path from
// (cx, cy) to (tx, ty): fix x first, then y.
func computeNext(cx, cy, tx, ty int) (int, int) {
	if cx < tx {
		return cx + 1, cy
	}
	if cx > tx {
		return cx - 1, cy
	}
	if cy < ty {
		return cx, cy + 1
	}
	return cx, cy - 1
}

// onXYPathBeyond reports whether site (x, y) lies on the x–y path from
// (cx, cy) to (tx, ty) strictly beyond (cx, cy). The path is the horizontal
// segment (cx..tx, cy) followed by the vertical segment (tx, cy..ty).
func onXYPathBeyond(cx, cy, tx, ty, x, y int) bool {
	if x == cx && y == cy {
		return false
	}
	// Horizontal leg.
	if y == cy && between(cx, tx, x) {
		return true
	}
	// Vertical leg.
	if x == tx && between(cy, ty, y) {
		return true
	}
	return false
}

// between reports a ≤ v ≤ b or b ≤ v ≤ a.
func between(a, b, v int) bool {
	if a <= b {
		return v >= a && v <= b
	}
	return v >= b && v <= a
}

// ShortestOpenPath returns the optimal (BFS) hop count between two open
// sites, or −1 if disconnected — the baseline the probe bound is measured
// against.
func ShortestOpenPath(l *lattice.Lattice, sx, sy, tx, ty int) int {
	return l.ChemicalDistance(sx, sy, tx, ty)
}
