package routing

import (
	"errors"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/graph"
	"repro/internal/tiling"
)

// SensResult reports one routing attempt over a SENS network.
type SensResult struct {
	// Delivered is true when the packet reached the destination
	// representative.
	Delivered bool
	// LatticeHops is the number of tile-to-tile moves (the Figure 9 level).
	LatticeHops int
	// Probes is the lattice-level probe count (tile goodness queries).
	Probes int
	// NodeHops is the number of SENS edges traversed once each lattice hop
	// is expanded into its rep–relay–…–rep subpath (Figure 8).
	NodeHops int
	// NodePath is the full node trajectory, starting at the source rep.
	NodePath []int32
}

// SensOptions tunes RouteOnSensWith.
type SensOptions struct {
	// ProbeBudget caps lattice-level probes (≤ 0 means unlimited).
	ProbeBudget int
	// Memoize enables lattice probe memoization (see Options.Memoize).
	Memoize bool
	// Bank, when non-nil, is debited for the energy the attempt spends:
	// every SENS edge the packet traverses costs the sending node
	// PacketBits tx (distance-priced) and the receiving node PacketBits rx;
	// every lattice probe costs the probing tile's representative ProbeBits
	// tx toward the probed tile (with the probed rep, if one exists, paying
	// ProbeBits rx). Mains-powered or non-member nodes are exempt per the
	// bank's Powered set.
	Bank *energy.Bank
	// PacketBits is the payload size per data hop (0 disables data debits).
	PacketBits float64
	// ProbeBits is the query size per lattice probe (0 disables probe
	// debits).
	ProbeBits float64
}

// sensCharger implements ChargeHooks over a SENS network's tile map,
// debiting lattice probes against the probing tile's representative.
type sensCharger struct {
	n   *core.Network
	opt *SensOptions
}

// rep returns the elected representative of the tile mapped to lattice
// site idx, or −1.
func (c *sensCharger) rep(idx int32) int32 {
	tn := c.n.Tiles[c.n.Map.PhiInv(c.n.Lat.XY(idx))]
	if tn == nil {
		return -1
	}
	return tn.Rep
}

// Probe implements ChargeHooks: the probing rep transmits a ProbeBits query
// over the rep-to-rep distance; the probed rep (when the tile elected one)
// receives it.
func (c *sensCharger) Probe(from, to int32) {
	if c.opt.ProbeBits <= 0 {
		return
	}
	rf, rt := c.rep(from), c.rep(to)
	if rf < 0 {
		return
	}
	if rt >= 0 {
		c.opt.Bank.ChargeTx(rf, rt, c.opt.ProbeBits)
		c.opt.Bank.ChargeRx(rt, c.opt.ProbeBits)
	} else {
		// Nobody answers a bad tile; the query still costs the sender.
		c.opt.Bank.ChargeTx(rf, rf, c.opt.ProbeBits)
	}
}

// Hop implements ChargeHooks. Lattice-level hops are priced at expansion
// time, per SENS edge, so nothing is debited here.
func (c *sensCharger) Hop(from, to int32) {}

// RouteOnSens routes a packet between the representatives of two good tiles
// of a SENS network: lattice-level decisions follow Figure 9 on the coupled
// percolation configuration, and every lattice hop is realized by the
// rep-to-rep relay subpath of Figure 8.
func RouteOnSens(n *core.Network, from, to tiling.Coord, probeBudget int) (SensResult, error) {
	return RouteOnSensWith(n, from, to, SensOptions{ProbeBudget: probeBudget})
}

// RouteOnSensWith is RouteOnSens with explicit options, including the
// per-hop/per-probe energy debits of the energy layer.
func RouteOnSensWith(n *core.Network, from, to tiling.Coord, sopt SensOptions) (SensResult, error) {
	var out SensResult
	if n.Lat == nil {
		return out, errors.New("routing: network has no lattice window")
	}
	fx, fy, ok := n.Map.Phi(from)
	if !ok {
		return out, errors.New("routing: source tile outside mapped window")
	}
	tx, ty, ok := n.Map.Phi(to)
	if !ok {
		return out, errors.New("routing: target tile outside mapped window")
	}
	ft, tt := n.Tiles[from], n.Tiles[to]
	if ft == nil || !ft.Good || tt == nil || !tt.Good {
		return out, errors.New("routing: endpoints must be good tiles")
	}

	opt := Options{ProbeBudget: sopt.ProbeBudget, Memoize: sopt.Memoize}
	if sopt.Bank != nil {
		opt.Charge = &sensCharger{n: n, opt: &sopt}
	}
	lat := RouteXYWith(n.Lat, fx, fy, tx, ty, opt)
	out.LatticeHops = lat.Hops
	out.Probes = lat.Probes
	out.NodePath = append(out.NodePath, ft.Rep)
	if !lat.Delivered {
		return out, nil
	}

	// Expand consecutive trajectory sites into rep-to-rep SENS subpaths,
	// reusing one BFS scratch across hops: the seed allocated an O(N) parent
	// array per lattice hop, which dominated the routing benchmark's bytes.
	var scratch graph.PathScratch
	var seg []int32
	for i := 1; i < len(lat.Trajectory); i++ {
		pa := n.Map.PhiInv(n.Lat.XY(lat.Trajectory[i-1]))
		pb := n.Map.PhiInv(n.Lat.XY(lat.Trajectory[i]))
		ra, rb := n.Tiles[pa].Rep, n.Tiles[pb].Rep
		seg = graph.BFSPathInto(n.Graph, ra, rb, &scratch, seg[:0])
		if seg == nil {
			// The coupling guarantees adjacent good tiles connect; a miss
			// here means the caller's network violates the invariant.
			return out, errors.New("routing: adjacent good tiles disconnected in SENS graph")
		}
		if sopt.Bank != nil && sopt.PacketBits > 0 {
			for j := 1; j < len(seg); j++ {
				sopt.Bank.ChargeTx(seg[j-1], seg[j], sopt.PacketBits)
				sopt.Bank.ChargeRx(seg[j], sopt.PacketBits)
			}
		}
		out.NodeHops += len(seg) - 1
		out.NodePath = append(out.NodePath, seg[1:]...)
	}
	out.Delivered = true
	return out, nil
}
