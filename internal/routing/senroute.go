package routing

import (
	"errors"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tiling"
)

// SensResult reports one routing attempt over a SENS network.
type SensResult struct {
	// Delivered is true when the packet reached the destination
	// representative.
	Delivered bool
	// LatticeHops is the number of tile-to-tile moves (the Figure 9 level).
	LatticeHops int
	// Probes is the lattice-level probe count (tile goodness queries).
	Probes int
	// NodeHops is the number of SENS edges traversed once each lattice hop
	// is expanded into its rep–relay–…–rep subpath (Figure 8).
	NodeHops int
	// NodePath is the full node trajectory, starting at the source rep.
	NodePath []int32
}

// RouteOnSens routes a packet between the representatives of two good tiles
// of a SENS network: lattice-level decisions follow Figure 9 on the coupled
// percolation configuration, and every lattice hop is realized by the
// rep-to-rep relay subpath of Figure 8.
func RouteOnSens(n *core.Network, from, to tiling.Coord, probeBudget int) (SensResult, error) {
	var out SensResult
	if n.Lat == nil {
		return out, errors.New("routing: network has no lattice window")
	}
	fx, fy, ok := n.Map.Phi(from)
	if !ok {
		return out, errors.New("routing: source tile outside mapped window")
	}
	tx, ty, ok := n.Map.Phi(to)
	if !ok {
		return out, errors.New("routing: target tile outside mapped window")
	}
	ft, tt := n.Tiles[from], n.Tiles[to]
	if ft == nil || !ft.Good || tt == nil || !tt.Good {
		return out, errors.New("routing: endpoints must be good tiles")
	}

	lat := RouteXY(n.Lat, fx, fy, tx, ty, probeBudget)
	out.LatticeHops = lat.Hops
	out.Probes = lat.Probes
	out.NodePath = append(out.NodePath, ft.Rep)
	if !lat.Delivered {
		return out, nil
	}

	// Expand consecutive trajectory sites into rep-to-rep SENS subpaths,
	// reusing one BFS scratch across hops: the seed allocated an O(N) parent
	// array per lattice hop, which dominated the routing benchmark's bytes.
	var scratch graph.PathScratch
	var seg []int32
	for i := 1; i < len(lat.Trajectory); i++ {
		pa := n.Map.PhiInv(n.Lat.XY(lat.Trajectory[i-1]))
		pb := n.Map.PhiInv(n.Lat.XY(lat.Trajectory[i]))
		ra, rb := n.Tiles[pa].Rep, n.Tiles[pb].Rep
		seg = graph.BFSPathInto(n.Graph, ra, rb, &scratch, seg[:0])
		if seg == nil {
			// The coupling guarantees adjacent good tiles connect; a miss
			// here means the caller's network violates the invariant.
			return out, errors.New("routing: adjacent good tiles disconnected in SENS graph")
		}
		out.NodeHops += len(seg) - 1
		out.NodePath = append(out.NodePath, seg[1:]...)
	}
	out.Delivered = true
	return out, nil
}
