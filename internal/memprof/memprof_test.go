package memprof

import (
	"runtime"
	"testing"
)

func TestHeapDeltaSeesRetainedAllocation(t *testing.T) {
	const size = 8 << 20
	before := ReadHeap()
	slab := make([]byte, size)
	for i := range slab {
		slab[i] = byte(i)
	}
	after := ReadHeap()
	d := Delta(before, after)
	// Unrelated objects may be collected between the samples, so allow a
	// little slack below the slab size.
	if d.LiveBytes < size-64<<10 {
		t.Errorf("LiveBytes = %d, want ~%d (slab retained across the delta)", d.LiveBytes, size)
	}
	if d.TotalBytes < size {
		t.Errorf("TotalBytes = %d, want >= %d", d.TotalBytes, size)
	}
	if d.Mallocs == 0 {
		t.Error("Mallocs = 0, want > 0")
	}
	runtime.KeepAlive(slab)
}

func TestPeakRSS(t *testing.T) {
	rss, ok := PeakRSS()
	if runtime.GOOS != "linux" {
		t.Skipf("no procfs on %s", runtime.GOOS)
	}
	if !ok {
		t.Fatal("PeakRSS failed on linux")
	}
	// Any real Go process has megabytes of peak RSS; guard against
	// unit confusion (kB vs bytes) with loose bounds.
	if rss < 1<<20 || rss > 1<<46 {
		t.Errorf("PeakRSS = %d bytes, outside plausible range", rss)
	}
}

func TestParseVmHWM(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
		ok   bool
	}{
		{"VmPeak:\t  100 kB\nVmHWM:\t   4096 kB\nVmRSS:\t 50 kB\n", 4096 * 1024, true},
		{"VmHWM:  7 kB", 7 * 1024, true},
		{"VmRSS:  7 kB\n", 0, false},
		{"VmHWM:\n", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		got, ok := parseVmHWM([]byte(c.in))
		if got != c.want || ok != c.ok {
			t.Errorf("parseVmHWM(%q) = (%d, %v), want (%d, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}
