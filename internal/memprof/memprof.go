// Package memprof provides the memory-budget instrumentation of the scale
// tier: Go-heap snapshots via runtime.ReadMemStats and the process
// high-water mark (peak RSS) from the kernel, so the million-node
// benchmarks can report bytes-per-build and peak resident memory alongside
// time and allocs. The numbers answer the scale tier's budget question —
// "does a 10⁶-node build fit the box?" — which allocs/op alone cannot,
// because it misses slab reuse and non-heap mappings.
package memprof

import (
	"bytes"
	"os"
	"runtime"
	"strconv"
)

// HeapSample is a point-in-time snapshot of the Go heap.
type HeapSample struct {
	// HeapAlloc is the live heap in bytes (runtime.MemStats.HeapAlloc).
	HeapAlloc uint64
	// TotalAlloc is the cumulative bytes allocated (monotone; never falls).
	TotalAlloc uint64
	// Mallocs is the cumulative count of heap objects allocated.
	Mallocs uint64
}

// ReadHeap captures the current heap state. It runs a GC first so HeapAlloc
// reflects live data rather than float garbage; callers measuring a delta
// take one sample before and one after the region of interest.
func ReadHeap() HeapSample {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return HeapSample{HeapAlloc: ms.HeapAlloc, TotalAlloc: ms.TotalAlloc, Mallocs: ms.Mallocs}
}

// HeapDelta reports the memory cost of the region between two samples:
// live growth (bytes retained, e.g. the built structure itself) and churn
// (total bytes allocated while building it, including scratch).
type HeapDelta struct {
	LiveBytes  int64  // HeapAlloc after − before (retained by the result)
	TotalBytes uint64 // bytes allocated during the region
	Mallocs    uint64 // objects allocated during the region
}

// Delta computes the heap cost from sample before to sample after.
func Delta(before, after HeapSample) HeapDelta {
	return HeapDelta{
		LiveBytes:  int64(after.HeapAlloc) - int64(before.HeapAlloc),
		TotalBytes: after.TotalAlloc - before.TotalAlloc,
		Mallocs:    after.Mallocs - before.Mallocs,
	}
}

// PeakRSS returns the process's peak resident set size in bytes (VmHWM from
// /proc/self/status) and true on success. The high-water mark is
// process-lifetime (the kernel never lowers it), so a benchmark that wants
// the peak of one build reports it as an upper bound; it is exact when the
// measured build is the largest thing the process has done. Returns false on
// platforms without procfs.
func PeakRSS() (bytes uint64, ok bool) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	return parseVmHWM(data)
}

// parseVmHWM extracts the VmHWM line ("VmHWM:    123456 kB") from a
// /proc/self/status payload.
func parseVmHWM(data []byte) (uint64, bool) {
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseUint(string(fields[0]), 10, 64)
		if err != nil {
			return 0, false
		}
		return kb * 1024, true
	}
	return 0, false
}
