package mobility

import (
	"slices"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
	"repro/internal/spatial"
)

// FuzzTrajectory checks two invariants for arbitrary motion parameters:
// every sampled position stays inside the unit square, and a kinetic spatial
// index replaying the move sequence stays consistent with brute force over
// the current positions after every step.
func FuzzTrajectory(f *testing.F) {
	f.Add(uint64(1), uint8(0), 0.05, 2, 12, 40)
	f.Add(uint64(2), uint8(1), 0.4, 0, 25, 15)
	f.Add(uint64(3), uint8(0), 1e-6, 7, 3, 5)
	f.Add(uint64(4), uint8(1), 3.5, 1, 60, 30)
	f.Fuzz(func(t *testing.T, seed uint64, model uint8, speed float64, pause, n, steps int) {
		spec := Spec{
			Model: Model(model % 2),
			Speed: speed,
			Pause: pause,
			Steps: steps,
		}
		// Fold out-of-range fuzz inputs into the valid domain instead of
		// rejecting: Sample must behave for every spec Validate accepts.
		if !(spec.Speed > 0) || spec.Speed > 10 {
			spec.Speed = 0.05
		}
		if spec.Pause < 0 {
			spec.Pause = -spec.Pause % 8
		}
		if spec.Steps < 0 || spec.Steps > 64 {
			spec.Steps = (spec.Steps%64 + 64) % 64
		}
		if n < 1 || n > 128 {
			n = (n%128+128)%128 + 1
		}
		box := geom.Box(1, 1)
		init := deployment(n, box, rng.Seed(seed))
		traj := Sample(init, box, spec, rng.Seed(seed), 4400)

		pos := append([]geom.Point(nil), init...)
		idx := spatial.NewDynGrid(init, box, 0.125)
		gen := rng.Sub(rng.Seed(seed), 1)
		for step, moves := range traj.Steps {
			for _, m := range moves {
				if !box.Contains(m.To) {
					t.Fatalf("step %d: node %d left the unit square: %v", step, m.Node, m.To)
				}
				idx.Move(m.Node, m.To)
			}
			Apply(pos, moves)
			// One radius query and one kNN query per step against brute force.
			q := geom.Point{X: gen.Float64(), Y: gen.Float64()}
			r := 0.05 + 0.3*gen.Float64()
			got := idx.Within(q, r, nil)
			slices.Sort(got)
			want := spatial.BruteWithin(pos, q, r)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("step %d: Within(%v, %v) = %v, brute = %v", step, q, r, got, want)
			}
			k := 1 + gen.IntN(5)
			gotK := idx.KNearestInto(q, k, -1, nil, nil)
			wantK := spatial.BruteKNearest(pos, q, k, -1)
			if !slices.Equal(gotK, wantK) {
				t.Fatalf("step %d: KNearest(%v, %d) = %v, brute = %v", step, q, k, gotK, wantK)
			}
		}
	})
}
