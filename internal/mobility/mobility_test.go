package mobility

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func deployment(n int, box geom.Rect, seed rng.Seed) []geom.Point {
	gen := rng.Sub(seed, 0)
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{
			X: box.Min.X + gen.Float64()*box.Width(),
			Y: box.Min.Y + gen.Float64()*box.Height(),
		}
	}
	return pts
}

func TestSampleDeterministicAndInBounds(t *testing.T) {
	box := geom.Box(1, 1)
	init := deployment(100, box, 5)
	for _, model := range []Model{ModelWaypoint, ModelDirection} {
		spec := Spec{Model: model, Speed: 0.05, Pause: 2, Steps: 40}
		a := Sample(init, box, spec, 2026, 4400)
		b := Sample(init, box, spec, 2026, 4400)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: Sample not deterministic", model)
		}
		c := Sample(init, box, spec, 2026, 4401)
		if reflect.DeepEqual(a.Steps, c.Steps) {
			t.Fatalf("%v: different streams produced identical trajectories", model)
		}
		for step, moves := range a.Steps {
			last := int32(-1)
			for _, m := range moves {
				if m.Node <= last {
					t.Fatalf("%v step %d: nodes out of order (%d after %d)", model, step, m.Node, last)
				}
				last = m.Node
				if !box.Contains(m.To) {
					t.Fatalf("%v step %d: node %d left the box: %v", model, step, m.Node, m.To)
				}
			}
		}
		if a.TotalMoves() == 0 {
			t.Fatalf("%v: trajectory is static", model)
		}
	}
}

func TestWaypointSpeedBound(t *testing.T) {
	box := geom.Box(1, 1)
	init := deployment(60, box, 9)
	spec := Spec{Model: ModelWaypoint, Speed: 0.03, Pause: 1, Steps: 60}
	traj := Sample(init, box, spec, 7, 4400)
	pos := append([]geom.Point(nil), init...)
	for step, moves := range traj.Steps {
		for _, m := range moves {
			d := pos[m.Node].Dist(m.To)
			if d > spec.Speed*(1+1e-9) {
				t.Fatalf("step %d node %d moved %v > speed %v", step, m.Node, d, spec.Speed)
			}
		}
		Apply(pos, moves)
	}
}

func TestDirectionReflectsOffWalls(t *testing.T) {
	// A node starting near a wall with a large speed must stay inside via
	// reflection, not clamping-in-place (positions keep changing).
	box := geom.Box(1, 1)
	init := []geom.Point{geom.Pt(0.01, 0.5)}
	spec := Spec{Model: ModelDirection, Speed: 0.3, Pause: 0, Steps: 30}
	traj := Sample(init, box, spec, 3, 4400)
	moves := traj.TotalMoves()
	if moves != 30 {
		t.Fatalf("direction model paused unexpectedly: %d moves of 30", moves)
	}
	for _, stepMoves := range traj.Steps {
		for _, m := range stepMoves {
			if !box.Contains(m.To) {
				t.Fatalf("reflection left the box: %v", m.To)
			}
		}
	}
}

func TestSpecValidate(t *testing.T) {
	cases := []Spec{
		{Model: ModelWaypoint, Speed: 0, Pause: 0, Steps: 1},
		{Model: ModelWaypoint, Speed: math.NaN(), Pause: 0, Steps: 1},
		{Model: ModelWaypoint, Speed: 0.1, Pause: -1, Steps: 1},
		{Model: ModelWaypoint, Speed: 0.1, Pause: 0, Steps: -1},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, s)
		}
	}
	if err := DefaultSpec().Validate(); err != nil {
		t.Errorf("DefaultSpec invalid: %v", err)
	}
}

func TestParseModel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Model
		ok   bool
	}{
		{"waypoint", ModelWaypoint, true},
		{"direction", ModelDirection, true},
		{"teleport", 0, false},
		{"", 0, false},
	} {
		got, err := ParseModel(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseModel(%q) = %v, %v", tc.in, got, err)
		}
	}
	if ModelWaypoint.String() != "waypoint" || ModelDirection.String() != "direction" {
		t.Error("Model.String mismatch")
	}
}
