// Package mobility generates deterministic node-motion trajectories for the
// live-network scenarios: random-waypoint and random-direction models over a
// fixed deployment box.
//
// A trajectory is pure data — the full schedule of per-step position updates
// — sampled up front from per-node RNG substreams (rng.Derive of the
// trajectory stream by node index), so Sample consumes its substream
// entirely and trajectories are cache-eligible under the scenario engine's
// RNG-substream rule, exactly like fault schedules. Simulations then replay
// the schedule against a kinetic structure without touching any generator.
package mobility

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/rng"
)

// Model selects the motion law.
type Model uint8

const (
	// ModelWaypoint is random waypoint: pick a uniform target in the box,
	// travel toward it at constant speed, pause on arrival, repeat.
	ModelWaypoint Model = iota
	// ModelDirection is random direction: travel at constant speed along a
	// uniform heading for a drawn leg duration, reflecting specularly off
	// the box walls, pause between legs, redraw.
	ModelDirection
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case ModelWaypoint:
		return "waypoint"
	case ModelDirection:
		return "direction"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// ParseModel parses a model name as used by the -mobility CLI flag.
func ParseModel(s string) (Model, error) {
	switch s {
	case "waypoint":
		return ModelWaypoint, nil
	case "direction":
		return ModelDirection, nil
	}
	return 0, fmt.Errorf("unknown mobility model %q (want waypoint | direction)", s)
}

// Spec parameterizes a trajectory sample.
type Spec struct {
	Model Model
	Speed float64 // travel distance per step, in box units
	Pause int     // steps spent paused at each waypoint / between legs
	Steps int     // number of steps to sample
}

// DefaultSpec returns a gentle waypoint motion: 2% of a unit box per step,
// 3-step pauses, 50 steps.
func DefaultSpec() Spec {
	return Spec{Model: ModelWaypoint, Speed: 0.02, Pause: 3, Steps: 50}
}

// Validate checks the spec's parameter ranges.
func (s Spec) Validate() error {
	if s.Speed <= 0 || math.IsNaN(s.Speed) || math.IsInf(s.Speed, 0) {
		return fmt.Errorf("mobility: speed %v out of range (want > 0)", s.Speed)
	}
	if s.Pause < 0 {
		return fmt.Errorf("mobility: negative pause %d", s.Pause)
	}
	if s.Steps < 0 {
		return fmt.Errorf("mobility: negative steps %d", s.Steps)
	}
	return nil
}

// Move is one node's position update within a step.
type Move struct {
	Node int32
	To   geom.Point
}

// Trajectory is a sampled motion schedule: for each step, the sparse list of
// nodes that moved (ascending by node index) with their new positions.
// Paused nodes emit nothing. A Trajectory is immutable pure data.
type Trajectory struct {
	Box   geom.Rect
	Spec  Spec
	Steps [][]Move
}

// NumSteps returns the number of sampled steps.
func (t *Trajectory) NumSteps() int { return len(t.Steps) }

// TotalMoves returns the total number of position updates across all steps.
func (t *Trajectory) TotalMoves() int {
	n := 0
	for _, s := range t.Steps {
		n += len(s)
	}
	return n
}

// Apply replays step moves onto a position slice.
func Apply(pts []geom.Point, step []Move) {
	for _, m := range step {
		pts[m.Node] = m.To
	}
}

// walker is the per-node motion state shared by both models.
type walker struct {
	pos    geom.Point
	target geom.Point // waypoint model
	vel    geom.Point // direction model: per-step displacement
	legs   int        // direction model: steps left on the current leg
	pause  int        // steps left paused
}

// Sample draws a trajectory for the nodes initially at init inside box.
// Node i's motion comes entirely from substream Derive(Derive(seed, stream),
// i), so the sample is independent of iteration order, reproducible, and —
// because nothing reads those substreams afterwards — cache-eligible.
func Sample(init []geom.Point, box geom.Rect, spec Spec, seed rng.Seed, stream uint64) *Trajectory {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	t := &Trajectory{Box: box, Spec: spec, Steps: make([][]Move, spec.Steps)}
	base := rng.Derive(seed, stream)
	// The leg-duration scale for the direction model: roughly the steps
	// needed to cross the box.
	diag := math.Hypot(box.Width(), box.Height())
	maxLeg := int(diag / spec.Speed)
	if maxLeg < 1 {
		maxLeg = 1
	}
	for i := range init {
		gen := rng.New(rng.Derive(base, uint64(i)))
		w := walker{pos: box.Clamp(init[i])}
		switch spec.Model {
		case ModelWaypoint:
			w.target = uniformPoint(box, gen)
		case ModelDirection:
			w.redraw(spec, maxLeg, gen)
		}
		for step := 0; step < spec.Steps; step++ {
			if w.pause > 0 {
				w.pause--
				continue
			}
			var moved bool
			switch spec.Model {
			case ModelWaypoint:
				moved = w.stepWaypoint(box, spec, gen)
			case ModelDirection:
				moved = w.stepDirection(box, spec, maxLeg, gen)
			}
			if moved {
				t.Steps[step] = append(t.Steps[step], Move{Node: int32(i), To: w.pos})
			}
		}
	}
	return t
}

// stepWaypoint advances one step of random-waypoint motion; reports whether
// the position changed.
func (w *walker) stepWaypoint(box geom.Rect, spec Spec, gen rngSource) bool {
	d := w.target.Sub(w.pos)
	dist := d.Norm()
	if dist <= spec.Speed {
		// Arrive exactly, pause, then pick the next waypoint.
		w.pos = w.target
		w.pause = spec.Pause
		w.target = uniformPoint(box, gen)
		return dist > 0
	}
	w.pos = w.pos.Add(d.Scale(spec.Speed / dist))
	return true
}

// stepDirection advances one step of random-direction motion with specular
// wall reflection; reports whether the position changed (always true: legs
// never have zero velocity).
func (w *walker) stepDirection(box geom.Rect, spec Spec, maxLeg int, gen rngSource) bool {
	w.pos = reflectInto(w.pos.Add(w.vel), box, &w.vel)
	w.legs--
	if w.legs <= 0 {
		w.pause = spec.Pause
		w.redraw(spec, maxLeg, gen)
	}
	return true
}

// redraw samples a fresh heading and leg duration.
func (w *walker) redraw(spec Spec, maxLeg int, gen rngSource) {
	theta := 2 * math.Pi * gen.Float64()
	s, c := math.Sincos(theta)
	w.vel = geom.Point{X: c * spec.Speed, Y: s * spec.Speed}
	w.legs = 1 + gen.IntN(maxLeg)
}

// rngSource is the subset of *rand.Rand the samplers draw from.
type rngSource interface {
	Float64() float64
	IntN(int) int
}

// uniformPoint draws a uniform point in box.
func uniformPoint(box geom.Rect, gen rngSource) geom.Point {
	return geom.Point{
		X: box.Min.X + gen.Float64()*box.Width(),
		Y: box.Min.Y + gen.Float64()*box.Height(),
	}
}

// reflectInto folds p back into box by specular reflection, flipping the
// corresponding velocity component each time a wall is crossed. Degenerate
// boxes fall back to clamping.
func reflectInto(p geom.Point, box geom.Rect, vel *geom.Point) geom.Point {
	w, h := box.Width(), box.Height()
	if w <= 0 || h <= 0 {
		return box.Clamp(p)
	}
	for p.X < box.Min.X || p.X > box.Max.X {
		if p.X < box.Min.X {
			p.X = 2*box.Min.X - p.X
		} else {
			p.X = 2*box.Max.X - p.X
		}
		vel.X = -vel.X
	}
	for p.Y < box.Min.Y || p.Y > box.Max.Y {
		if p.Y < box.Min.Y {
			p.Y = 2*box.Min.Y - p.Y
		} else {
			p.Y = 2*box.Max.Y - p.Y
		}
		vel.Y = -vel.Y
	}
	return p
}
