package serve

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/power"
)

// Batcher groups in-flight route/stretch queries by (snapshot, β, base)
// and answers each group with ONE power.Measurer batch — which internally
// runs one buffered Dijkstra sweep per (source, weight), so k concurrent
// queries sharing a source cost a single sweep, exactly the E11/E14
// amortization. A group flushes when its accumulated pair count reaches
// MaxPairs or when MaxWait has elapsed since its first enqueue, whichever
// comes first.
//
// Correctness does not depend on grouping: every per-pair sample is a pure
// function of (snapshot, β, pair), so a query's response is byte-identical
// whether it flushed alone or shared a sweep with a hundred others — the
// batcher determinism test pins this at GOMAXPROCS 1 and 8. Grouping is
// purely an amortization, which the occupancy counters make observable.
type Batcher struct {
	// MaxPairs is the pair count that triggers an immediate flush (≥ 1).
	MaxPairs int
	// MaxWait bounds the latency cost of waiting for co-batched queries; a
	// group older than this flushes regardless of occupancy.
	MaxWait time.Duration

	mu     sync.Mutex
	groups map[groupKey]*batchGroup

	// Occupancy counters (atomic; exposed via Stats).
	flushes      atomic.Int64
	queries      atomic.Int64
	pairs        atomic.Int64
	multiFlushes atomic.Int64
	maxOccupancy atomic.Int64
}

// groupKey identifies one batchable measurement family: the snapshot
// (pointer identity — snapshots are immutable and interned by the store),
// the weight (β), and whether the base graph participates.
type groupKey struct {
	snap *Snapshot
	beta uint64 // math.Float64bits(β): exact identity, no float map keys
	base bool
}

// batchGroup accumulates the in-flight queries of one key until flush.
type batchGroup struct {
	key     groupKey
	beta    float64
	reqs    []*batchReq
	npairs  int
	timer   *time.Timer
	flushed bool
}

// batchReq is one enqueued query: its pairs and the channel its slice of
// the group result arrives on.
type batchReq struct {
	pairs []power.Pair
	done  chan []power.StretchSample
}

// NewBatcher returns a batcher with the given flush bounds. maxPairs < 1
// is treated as 1 (every query flushes immediately — batching off).
func NewBatcher(maxPairs int, maxWait time.Duration) *Batcher {
	if maxPairs < 1 {
		maxPairs = 1
	}
	if maxWait <= 0 {
		maxWait = time.Millisecond
	}
	return &Batcher{MaxPairs: maxPairs, MaxWait: maxWait, groups: make(map[groupKey]*batchGroup)}
}

// BatcherStats is the occupancy counter snapshot served by /metrics: the
// proof that grouping happens (MultiQueryFlushes > 0) and how dense it
// runs (QueriesPerFlush).
type BatcherStats struct {
	// Flushes counts measurement sweeps executed; Queries and Pairs count
	// what they carried.
	Flushes int64 `json:"flushes"`
	Queries int64 `json:"queries"`
	Pairs   int64 `json:"pairs"`
	// MultiQueryFlushes counts flushes that amortized ≥ 2 queries into one
	// sweep; MaxOccupancy is the densest flush observed.
	MultiQueryFlushes int64 `json:"multiQueryFlushes"`
	MaxOccupancy      int64 `json:"maxOccupancy"`
	// QueriesPerFlush is the mean occupancy (0 when nothing flushed).
	QueriesPerFlush float64 `json:"queriesPerFlush"`
}

// Stats returns the current occupancy counters.
func (b *Batcher) Stats() BatcherStats {
	st := BatcherStats{
		Flushes:           b.flushes.Load(),
		Queries:           b.queries.Load(),
		Pairs:             b.pairs.Load(),
		MultiQueryFlushes: b.multiFlushes.Load(),
		MaxOccupancy:      b.maxOccupancy.Load(),
	}
	if st.Flushes > 0 {
		st.QueriesPerFlush = float64(st.Queries) / float64(st.Flushes)
	}
	return st
}

// Measure enqueues the query's pairs into the (snap, beta, withBase) group
// and blocks until the group's sweep delivers the samples, in pair order.
// The caller must hold a drain reference on snap across the call (the
// server's query path does, and Measure blocks until the sweep finishes,
// so the reference outlives every use of the snapshot's slabs).
func (b *Batcher) Measure(snap *Snapshot, beta float64, withBase bool, pairs []power.Pair) []power.StretchSample {
	if len(pairs) == 0 {
		return nil
	}
	req := &batchReq{pairs: pairs, done: make(chan []power.StretchSample, 1)}
	key := groupKey{snap: snap, beta: math.Float64bits(beta), base: withBase}

	b.mu.Lock()
	g := b.groups[key]
	if g == nil {
		g = &batchGroup{key: key, beta: beta}
		b.groups[key] = g
		g.timer = time.AfterFunc(b.MaxWait, func() { b.flush(g) })
	}
	g.reqs = append(g.reqs, req)
	g.npairs += len(pairs)
	if g.npairs >= b.MaxPairs {
		b.detachLocked(g)
		b.mu.Unlock()
		b.run(g)
	} else {
		b.mu.Unlock()
	}
	return <-req.done
}

// detachLocked removes g from the pending map and stops its timer; the
// caller (holding mu) then owns the group exclusively.
func (b *Batcher) detachLocked(g *batchGroup) {
	g.flushed = true
	g.timer.Stop()
	delete(b.groups, g.key)
}

// flush is the timer path: detach the group if it is still pending and run
// its sweep.
func (b *Batcher) flush(g *batchGroup) {
	b.mu.Lock()
	if g.flushed {
		b.mu.Unlock()
		return
	}
	b.detachLocked(g)
	b.mu.Unlock()
	b.run(g)
}

// run executes one detached group: a single Measurer batch over the
// concatenated pairs, split back per query in enqueue order. Runs on the
// goroutine that triggered the flush (the size-threshold enqueuer or the
// timer); the Measurer parallelizes the per-source sweeps internally.
func (b *Batcher) run(g *batchGroup) {
	occ := int64(len(g.reqs))
	b.flushes.Add(1)
	b.queries.Add(occ)
	b.pairs.Add(int64(g.npairs))
	if occ > 1 {
		b.multiFlushes.Add(1)
	}
	for {
		cur := b.maxOccupancy.Load()
		if occ <= cur || b.maxOccupancy.CompareAndSwap(cur, occ) {
			break
		}
	}

	all := make([]power.Pair, 0, g.npairs)
	for _, r := range g.reqs {
		all = append(all, r.pairs...)
	}
	m := g.key.snap.measurer(g.beta, g.key.base)
	samples := m.Pairs(all)
	off := 0
	for _, r := range g.reqs {
		r.done <- samples[off : off+len(r.pairs)]
		off += len(r.pairs)
	}
}
