package serve

import "sync/atomic"

// Pool is the daemon's bounded worker pool: a counting semaphore capping
// the number of queries computing at once. Admission is non-blocking —
// when the pool is full the server answers 429 with Retry-After instead
// of queueing unboundedly, so overload degrades by shedding rather than
// by latency collapse.
type Pool struct {
	sem      chan struct{}
	rejected atomic.Int64
}

// NewPool returns a pool admitting up to n concurrent workers (n < 1 is
// treated as 1).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// TryAcquire claims a worker slot without blocking; false means the pool
// is saturated (counted in Rejected).
func (p *Pool) TryAcquire() bool {
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		p.rejected.Add(1)
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (p *Pool) Release() { <-p.sem }

// Cap returns the pool capacity; InUse the currently claimed slots.
func (p *Pool) Cap() int { return cap(p.sem) }

// InUse returns the number of currently claimed slots.
func (p *Pool) InUse() int { return len(p.sem) }

// Rejected returns the number of admissions refused so far.
func (p *Pool) Rejected() int64 { return p.rejected.Load() }

// PoolStats is the /metrics snapshot of the pool.
type PoolStats struct {
	// Cap is the worker bound; InUse the slots claimed at snapshot time.
	Cap   int `json:"cap"`
	InUse int `json:"inUse"`
	// Rejected counts 429 responses issued for pool saturation.
	Rejected int64 `json:"rejected"`
}

// Stats returns the current pool counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{Cap: p.Cap(), InUse: p.InUse(), Rejected: p.Rejected()}
}
