package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/memprof"
)

// TestSnapshotRolloverRace is the rollover-race satellite: query traffic
// hammers the current snapshot while the writer swaps it via POST
// /snapshots with replace:true. Run under -race this proves the atomic
// table rollover publishes no torn state; the assertions prove every
// response came from exactly one coherent snapshot.
func TestSnapshotRolloverRace(t *testing.T) {
	s := New(Config{Workers: 8, MaxBatchPairs: 8, BatchWait: 200 * time.Microsecond})

	// Two alternating snapshot generations (distinct seeds → distinct ids).
	specA := `{"kind":"udg","seed":10,"side":8,"lambda":8,"replace":true}`
	specB := `{"kind":"udg","seed":11,"side":8,"lambda":8,"replace":true}`
	idA := loadSpec(t, s, specA)
	snapA, relA, ok := s.Store().Acquire(idA)
	if !ok {
		t.Fatal("snapshot A not acquirable after build")
	}
	relA()
	idB := loadSpec(t, s, specB)
	snapB, relB, ok := s.Store().Acquire(idB)
	if !ok {
		t.Fatal("snapshot B not acquirable after build")
	}
	relB()
	valid := map[string]bool{idA: true, idB: true}

	var stop atomic.Bool
	var queries atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				rec := doReq(t, s, http.MethodPost, "/query/route", `{"pairs":[{"u":0,"v":1},{"u":2,"v":3}]}`)
				switch rec.Code {
				case http.StatusOK:
					var resp RouteResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
						t.Errorf("torn response body: %v (%s)", err, rec.Body.String())
						return
					}
					if !valid[resp.Snapshot] {
						t.Errorf("response from unknown snapshot %q", resp.Snapshot)
						return
					}
					if len(resp.Results) != 2 {
						t.Errorf("torn result set: %d results", len(resp.Results))
						return
					}
				case http.StatusTooManyRequests, http.StatusNotFound:
					// Load shedding and the instant between swaps are fine.
				default:
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
					return
				}
				queries.Add(1)
			}
		}()
	}

	// Writer: alternate the two generations with replace rollovers. The
	// builds are cache hits after the first round (idempotent POST), so
	// this loop stresses the swap path, not the builder.
	for i := 0; i < 40; i++ {
		spec := specA
		if i%2 == 0 {
			spec = specB
		}
		rec := doReq(t, s, http.MethodPost, "/snapshots", spec)
		if rec.Code != http.StatusOK && rec.Code != http.StatusCreated {
			t.Fatalf("rollover %d: status %d body %s", i, rec.Code, rec.Body.String())
		}
	}
	stop.Store(true)
	wg.Wait()

	if queries.Load() == 0 {
		t.Fatal("no queries completed during the rollover storm")
	}
	// Exactly one generation survives; the other is retired and — with all
	// query goroutines joined — fully drained.
	if n := s.Store().Len(); n != 1 {
		t.Fatalf("%d live snapshots after rollovers, want 1", n)
	}
	cur := s.Store().Current()
	if cur == nil {
		t.Fatal("no current snapshot after rollovers")
	}
	retiredSnap := snapA
	if cur == snapA {
		retiredSnap = snapB
	}
	if !retiredSnap.Retired() {
		t.Fatal("replaced snapshot not marked retired")
	}
	if !retiredSnap.Drained() {
		t.Fatal("replaced snapshot still holds references after all queries finished")
	}
	if cur.Retired() {
		t.Fatal("current snapshot is marked retired")
	}
}

// loadSpec POSTs a snapshot spec and returns the resulting id.
func loadSpec(t *testing.T, s *Server, spec string) string {
	t.Helper()
	rec := doReq(t, s, http.MethodPost, "/snapshots", spec)
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		t.Fatalf("snapshot build: status %d body %s", rec.Code, rec.Body.String())
	}
	var resp SnapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode snapshot response: %v", err)
	}
	return resp.Snapshot.ID
}

// TestRolloverReleasesMemory is the drain-release satellite: after K
// replace rollovers only the final generation may stay live, so the heap
// growth across the rollovers must stay well under K snapshot footprints.
func TestRolloverReleasesMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("memory accounting is noisy in -short aggregate runs")
	}
	s := New(Config{})

	// First generation, measured: one snapshot's live footprint.
	before := memprof.ReadHeap()
	loadSpec(t, s, `{"kind":"udg","seed":20,"side":16,"lambda":16,"replace":true}`)
	afterFirst := memprof.ReadHeap()
	one := memprof.Delta(before, afterFirst).LiveBytes
	if one <= 0 {
		t.Skipf("snapshot footprint unmeasurable (delta %d)", one)
	}

	// Five more generations, each replacing its predecessor. Touch each
	// with a query so slabs populate (they must be released too).
	const rollovers = 5
	for i := 0; i < rollovers; i++ {
		loadSpec(t, s, fmt.Sprintf(`{"kind":"udg","seed":%d,"side":16,"lambda":16,"replace":true}`, 21+i))
		if rec := doReq(t, s, http.MethodPost, "/query/route", `{"beta":3,"pairs":[{"u":0,"v":1}]}`); rec.Code != http.StatusOK {
			t.Fatalf("rollover %d query: status %d", i, rec.Code)
		}
	}
	runtime.GC()
	afterAll := memprof.ReadHeap()
	growth := memprof.Delta(afterFirst, afterAll).LiveBytes

	// If drained snapshots leaked, growth would be ≈ rollovers × one. The
	// bound allows the final generation plus generous allocator noise.
	limit := 2*one + 1<<20
	if growth > limit {
		t.Fatalf("live heap grew %d bytes across %d rollovers (one snapshot ≈ %d, limit %d) — drained snapshots not released",
			growth, rollovers, one, limit)
	}
}
