package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/serve/loadgen"
)

// TestE2EDaemonFlow is the acceptance e2e: start the daemon in-process,
// load a 10k-point UDG-SENS snapshot over HTTP, drive 1k mixed
// route/stretch queries through the load generator, and verify every
// response body is byte-identical to the answer computed directly by the
// power measurement engine for the same pairs — at GOMAXPROCS 1 and 8.
// Run under -race (make test-race / make e2e) this also covers the
// concurrent serving path.
func TestE2EDaemonFlow(t *testing.T) {
	queries := 1000
	if testing.Short() {
		// The full stream takes minutes under -race on a 1-CPU box; short
		// mode keeps the same snapshot and mix at a quarter of the volume.
		queries = 250
	}
	const beta = 3.0

	s := New(Config{Workers: 8, MaxBatchPairs: 64, BatchWait: 500 * time.Microsecond})

	// Load the snapshot through the HTTP surface, exactly as a client
	// would. side 25 × λ16 ⇒ E[points] = 10000.
	rec := doReq(t, s, http.MethodPost, "/snapshots", `{"kind":"udg","seed":42,"side":25,"lambda":16}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("snapshot build: status %d body %s", rec.Code, rec.Body.String())
	}
	var built SnapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &built); err != nil {
		t.Fatalf("decode build response: %v", err)
	}
	info := built.Snapshot
	if info.Points < 9000 || info.Points > 11000 {
		t.Fatalf("deployment size %d not ≈10k", info.Points)
	}
	snap, release, ok := s.Store().Acquire(info.ID)
	if !ok {
		t.Fatal("built snapshot not acquirable")
	}
	defer release()

	// The deterministic query stream: 1k queries, 2 pairs each, every 5th
	// a stretch query at β=3.
	stream := loadgen.Generate(snap.Members, loadgen.Spec{
		Seed:            42,
		Queries:         queries,
		PairsPerQuery:   2,
		StretchFraction: 0.2,
		Beta:            beta,
	})

	// Independently computed expected bodies: the same pairs through
	// power.MeasurePairs (no daemon, no batcher, no slab cache) encoded
	// with the daemon's wire conversion.
	expected := expectedBodies(t, snap, info.ID, stream, beta)

	for _, procs := range []int{1, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			res := loadgen.Run(s, stream, 8)
			if res.Failed != 0 {
				t.Fatalf("%d/%d queries failed", res.Failed, res.Queries)
			}
			for i, r := range res.Responses {
				if !bytes.Equal(r.Body, expected[i]) {
					t.Fatalf("query %d body diverged from the direct measurement:\n got %s\nwant %s",
						i, r.Body, expected[i])
				}
			}
			if res.QPS <= 0 || res.P99 < res.P50 {
				t.Fatalf("implausible load report: %+v", res)
			}
		})
	}

	// The concurrent stream must have amortized at least one sweep.
	if st := s.Batcher().Stats(); st.MultiQueryFlushes < 1 {
		t.Fatalf("e2e load produced no multi-query sweeps: %+v", st)
	}
}

// expectedBodies computes, for every generated query, the exact response
// body the daemon must produce — via the measurement engine directly.
func expectedBodies(t *testing.T, snap *Snapshot, id string, stream []loadgen.Query, beta float64) [][]byte {
	t.Helper()
	// One measurer per (path, β) family with its own slab cache — the same
	// engine the daemon batches through, but bypassing the daemon, the
	// batcher and the snapshot's cache entirely. Weight slabs are identical
	// either way (pure function of graph × β), so sharing a measurer across
	// queries changes nothing but the test's runtime.
	slabs := power.NewSlabCache()
	measurers := map[string]*power.Measurer{}
	measurerFor := func(path string, b float64) *power.Measurer {
		k := fmt.Sprintf("%s|%v", path, b)
		if m, ok := measurers[k]; ok {
			return m
		}
		base := snap.Base
		if path == "/query/route" {
			base = nil
		}
		m := power.NewMeasurerCached(snap.Graph, base, snap.Pts, power.BatchSpec{Beta: b, Hops: true}, slabs)
		measurers[k] = m
		return m
	}
	out := make([][]byte, len(stream))
	for i, q := range stream {
		var req QueryRequest
		if err := json.Unmarshal(q.Body, &req); err != nil {
			t.Fatalf("loadgen body %d does not decode as a daemon query: %v", i, err)
		}
		samples := measurerFor(q.Path, req.Beta).Pairs(pairsOf(req.Pairs))
		var body []byte
		switch q.Path {
		case "/query/route":
			resp := RouteResponse{Snapshot: id, Beta: req.Beta, Results: make([]RouteResult, len(samples))}
			for j, smp := range samples {
				resp.Results[j] = routeResult(smp)
			}
			body = mustMarshal(t, resp)
		case "/query/stretch":
			resp := StretchResponse{Snapshot: id, Beta: req.Beta, Results: make([]StretchResult, len(samples))}
			for j, smp := range samples {
				resp.Results[j] = stretchResult(smp)
			}
			body = mustMarshal(t, resp)
		default:
			t.Fatalf("unexpected loadgen path %q", q.Path)
		}
		out[i] = body
	}
	return out
}

// mustMarshal encodes v exactly as writeJSON does (marshal + newline).
func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal expected body: %v", err)
	}
	return append(b, '\n')
}
