package serve

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the bucket count of the latency histograms: bucket i
// counts observations with ceil(log2(µs)) == i, so the range spans 1 µs to
// ~2⁴⁸ µs with one atomic increment per observation and no allocation.
const histBuckets = 48

// Histogram is a lock-free log₂-bucketed latency histogram. Quantiles are
// answered from the bucket counts as the upper bound of the covering
// bucket — a ≤2× overestimate by construction, which is the right
// direction for an SLO readout and costs nothing on the hot path.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumUs   atomic.Int64
}

// bucketOf maps a microsecond latency to its bucket index.
func bucketOf(us int64) int {
	if us < 1 {
		us = 1
	}
	b := bits.Len64(uint64(us)) - 1
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	h.buckets[bucketOf(us)].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
}

// quantileUs returns the q-quantile in microseconds (upper bucket bound).
func (h *Histogram) quantileUs(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total-1)) + 1
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			return int64(1) << uint(i+1) // upper bound of bucket i
		}
	}
	return int64(1) << histBuckets
}

// HistogramStats is one endpoint's latency summary in /metrics.
type HistogramStats struct {
	// Count is the number of requests observed; MeanUs their mean latency.
	Count  int64   `json:"count"`
	MeanUs float64 `json:"meanUs"`
	// P50Us and P99Us are bucketed quantiles (upper bucket bounds).
	P50Us int64 `json:"p50Us"`
	P99Us int64 `json:"p99Us"`
}

// Stats summarizes the histogram.
func (h *Histogram) Stats() HistogramStats {
	st := HistogramStats{Count: h.count.Load(), P50Us: h.quantileUs(0.50), P99Us: h.quantileUs(0.99)}
	if st.Count > 0 {
		st.MeanUs = float64(h.sumUs.Load()) / float64(st.Count)
	}
	return st
}

// Metrics aggregates the daemon's observability state: one latency
// histogram per endpoint family plus whatever the batcher, pool and store
// report at snapshot time.
type Metrics struct {
	start time.Time
	// Route, Stretch, Coverage, Lifetime and Snapshots are the per-endpoint
	// latency histograms.
	Route     Histogram
	Stretch   Histogram
	Coverage  Histogram
	Lifetime  Histogram
	Snapshots Histogram
}

// NewMetrics returns a metrics registry anchored at now.
func NewMetrics() *Metrics { return &Metrics{start: time.Now()} }

// MetricsSnapshot is the JSON body of GET /metrics.
type MetricsSnapshot struct {
	// UptimeMs is the time since daemon start.
	UptimeMs int64 `json:"uptimeMs"`
	// Endpoints maps endpoint family → latency summary (encoding/json
	// sorts the keys, so the body is deterministic).
	Endpoints map[string]HistogramStats `json:"endpoints"`
	// Batcher carries the batch-occupancy counters; Pool the worker pool
	// state.
	Batcher BatcherStats `json:"batcher"`
	Pool    PoolStats    `json:"pool"`
	// SnapshotCount is the number of live snapshots; SlabCaches sums the
	// per-snapshot weight-slab cache counters over them.
	SnapshotCount int   `json:"snapshotCount"`
	SlabHits      int64 `json:"slabHits"`
	SlabMisses    int64 `json:"slabMisses"`
	SlabEvictions int64 `json:"slabEvictions"`
}

// Snapshot collects the current metrics across all subsystems.
func (m *Metrics) Snapshot(b *Batcher, p *Pool, st *Store) MetricsSnapshot {
	ms := MetricsSnapshot{
		UptimeMs: time.Since(m.start).Milliseconds(),
		Endpoints: map[string]HistogramStats{
			"route":     m.Route.Stats(),
			"stretch":   m.Stretch.Stats(),
			"coverage":  m.Coverage.Stats(),
			"lifetime":  m.Lifetime.Stats(),
			"snapshots": m.Snapshots.Stats(),
		},
		Batcher:       b.Stats(),
		Pool:          p.Stats(),
		SnapshotCount: st.Len(),
	}
	for _, s := range st.List() {
		c := s.SlabStats()
		ms.SlabHits += c.Hits
		ms.SlabMisses += c.Misses
		ms.SlabEvictions += c.Evictions
	}
	return ms
}
