package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"testing"
	"time"
)

// runConcurrentIdentical issues n identical route queries concurrently
// against a batcher sized so the n-th enqueue (and nothing earlier)
// triggers the flush — a barrier that guarantees all n queries share one
// measurement sweep. Returns the n response bodies.
func runConcurrentIdentical(t *testing.T, s *Server, n int, body string) [][]byte {
	t.Helper()
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := doReq(t, s, http.MethodPost, "/query/route", body)
			if rec.Code != http.StatusOK {
				t.Errorf("query %d: status %d body %s", i, rec.Code, rec.Body.String())
				return
			}
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	wg.Wait()
	return bodies
}

// TestBatcherDeterminism is the batcher-determinism satellite: N
// concurrent identical route queries return byte-identical bodies at
// GOMAXPROCS 1 and 8, and the occupancy counters prove they were answered
// by one multi-query sweep rather than N independent ones.
func TestBatcherDeterminism(t *testing.T) {
	const n = 16
	const pairsPerQuery = 3
	body := `{"beta":3,"pairs":[{"u":0,"v":1},{"u":2,"v":3},{"u":4,"v":5}]}`

	// Serial baseline: the body a lone, unbatched query produces.
	ref := New(Config{MaxBatchPairs: 1, BatchWait: time.Microsecond})
	loadSmall(t, ref)
	refRec := doReq(t, ref, http.MethodPost, "/query/route", body)
	if refRec.Code != http.StatusOK {
		t.Fatalf("baseline query: status %d", refRec.Code)
	}
	want := refRec.Body.Bytes()

	for _, procs := range []int{1, 8} {
		t.Run(fmt.Sprintf("gomaxprocs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			// MaxBatchPairs = n*pairsPerQuery means the flush fires exactly
			// when the last query arrives; MaxWait is long enough that the
			// timer never wins the race.
			s := New(Config{Workers: n, MaxBatchPairs: n * pairsPerQuery, BatchWait: 10 * time.Second})
			loadSmall(t, s)
			bodies := runConcurrentIdentical(t, s, n, body)
			for i, b := range bodies {
				if !bytes.Equal(b, want) {
					t.Fatalf("query %d body diverged from the serial baseline:\n got %s\nwant %s", i, b, want)
				}
			}

			st := s.Batcher().Stats()
			if st.MultiQueryFlushes < 1 {
				t.Fatalf("no multi-query sweep recorded: %+v", st)
			}
			if st.MaxOccupancy != n {
				t.Fatalf("max occupancy %d, want %d (all queries in one sweep)", st.MaxOccupancy, n)
			}
			if st.Queries != n || st.Flushes != 1 {
				t.Fatalf("expected one flush carrying %d queries: %+v", n, st)
			}
		})
	}
}

// TestBatcherGroupsByBeta verifies queries with different β never share a
// sweep: the weight is part of the group key, so mixing them would poison
// the shared Dijkstra.
func TestBatcherGroupsByBeta(t *testing.T) {
	s := New(Config{Workers: 4, MaxBatchPairs: 1 << 20, BatchWait: 20 * time.Millisecond})
	loadSmall(t, s)

	var wg sync.WaitGroup
	for _, body := range []string{
		`{"beta":2.5,"pairs":[{"u":0,"v":1}]}`,
		`{"beta":3.5,"pairs":[{"u":0,"v":1}]}`,
	} {
		wg.Add(1)
		go func(body string) {
			defer wg.Done()
			if rec := doReq(t, s, http.MethodPost, "/query/route", body); rec.Code != http.StatusOK {
				t.Errorf("status %d", rec.Code)
			}
		}(body)
	}
	wg.Wait()

	st := s.Batcher().Stats()
	if st.Flushes != 2 || st.MultiQueryFlushes != 0 {
		t.Fatalf("distinct betas must flush separately: %+v", st)
	}
}

// TestBatcherTimerFlush verifies the latency bound: a lone query under the
// size threshold still flushes once MaxWait elapses.
func TestBatcherTimerFlush(t *testing.T) {
	s := New(Config{MaxBatchPairs: 1 << 20, BatchWait: 5 * time.Millisecond})
	loadSmall(t, s)
	start := time.Now()
	rec := doReq(t, s, http.MethodPost, "/query/route", `{"pairs":[{"u":0,"v":1}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timer flush took %v — latency bound not honored", elapsed)
	}
	if st := s.Batcher().Stats(); st.Flushes != 1 || st.Queries != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}
