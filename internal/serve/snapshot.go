// Package serve implements the topology-as-a-service daemon behind
// cmd/sensnetd: a long-running HTTP/JSON service that holds immutable
// built-network snapshots (deployment + SENS/HNG CSR + weight slabs,
// identified by the scenario engine's content-shaped cache keys) and
// answers route, stretch, coverage and lifetime-summary queries against
// them.
//
// The production machinery is the point of the package:
//
//   - Snapshots are immutable after construction and reached through one
//     atomic table pointer, so the query hot path takes no locks — a reader
//     resolves the table once and can never observe a half-swapped state.
//   - Rollover is copy-on-write: POST /snapshots builds off the request
//     path's table, then atomically publishes a fresh table. Replaced
//     snapshots are retired and drain gracefully — in-flight queries hold
//     reference counts, and the last release makes the snapshot's memory
//     collectable.
//   - Route and stretch queries are batched (see Batcher): concurrent
//     queries against one (snapshot, β, base) group are answered by a
//     single buffered Dijkstra sweep per (source, weight) through
//     power.Measurer, exactly the amortization the E11/E14 experiment
//     pipeline uses.
//   - A bounded worker pool (Pool) backpressures with 429 + Retry-After
//     instead of queueing unboundedly; /healthz and /metrics expose latency
//     histograms and batch-occupancy counters.
package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/power"
)

// SnapshotInfo is the JSON-facing summary of a snapshot — everything the
// coverage query and the snapshot listing report.
type SnapshotInfo struct {
	// ID is the short content digest (fnv64a of Key, hex) used in URLs.
	ID string `json:"id"`
	// Key is the full content-shaped identity: the scenario engine's cache
	// key scheme, a pure function of (kind, seed, stream, box, parameters).
	// Two snapshots with equal keys are byte-identical structures, which is
	// what makes POST /snapshots idempotent.
	Key string `json:"key"`
	// Kind names the construction ("udg-sens" or "hng").
	Kind string `json:"kind"`
	// Points counts the deployed nodes; Members the vertices of the served
	// structure (the SENS largest component, or every node for HNG).
	Points  int `json:"points"`
	Members int `json:"members"`
	// Edges and MaxDegree describe the serving graph.
	Edges     int `json:"edges"`
	MaxDegree int `json:"maxDegree"`
	// GoodFraction is the fraction of good tiles (0 for HNG, which has no
	// tile coupling); ActiveFraction is Members / Points.
	GoodFraction   float64 `json:"goodFraction"`
	ActiveFraction float64 `json:"activeFraction"`
	// HasBase reports whether the snapshot carries a base graph — the
	// prerequisite for stretch queries.
	HasBase bool `json:"hasBase"`
	// BuildMillis is the wall-clock build cost observed at POST time.
	BuildMillis float64 `json:"buildMillis"`
	// Current marks the snapshot queries resolve to when no id is given.
	Current bool `json:"current,omitempty"`
}

// Snapshot is one immutable built network held by the daemon. All fields
// are written once during Build and never mutated afterwards; the only
// mutable state is the reference count and the retired flag, both atomic.
// That immutability is the torn-read defense: a query that resolved a
// snapshot works against a frozen structure no rollover can alter.
type Snapshot struct {
	// Info is the static summary (Current is filled in per response).
	Info SnapshotInfo
	// Pts are the deployment positions (vertex index = position index).
	Pts []geom.Point
	// Graph is the served structure over all deployment points.
	Graph *graph.CSR
	// Base is the dense base graph stretch queries compare against (nil
	// when the snapshot was built without one).
	Base *graph.CSR
	// Members lists the queryable vertices — the load generator's candidate
	// set and the lifetime simulation's participant set.
	Members []int32
	// slabs memoizes the per-(graph, β) edge-weight slabs of this
	// snapshot's measurers, LRU-bounded so a snapshot queried at many β
	// values over a long uptime cannot grow without bound.
	slabs *power.SlabCache

	refs    atomic.Int64
	retired atomic.Bool
}

// acquire takes a drain reference; release drops it. Queries hold a
// reference for exactly the duration of their computation.
func (s *Snapshot) acquire() { s.refs.Add(1) }

func (s *Snapshot) release() { s.refs.Add(-1) }

// Retired reports whether the snapshot has been removed from the store (by
// rollover replacement or DELETE).
func (s *Snapshot) Retired() bool { return s.retired.Load() }

// Drained reports whether the snapshot is retired with no in-flight
// queries — the point at which the store holds no reference and the
// snapshot's slabs, CSRs and positions become garbage.
func (s *Snapshot) Drained() bool { return s.retired.Load() && s.refs.Load() == 0 }

// SlabStats exposes the snapshot's weight-slab cache counters (hits,
// misses, evictions) for /metrics.
func (s *Snapshot) SlabStats() power.SlabCacheStats { return s.slabs.Counters() }

// measurer builds the batched measurement engine for this snapshot at the
// given β, against the base graph when withBase is set. Warm calls cost
// O(1) allocations: the per-(graph, β) weight slabs come from the
// snapshot's LRU cache.
func (s *Snapshot) measurer(beta float64, withBase bool) *power.Measurer {
	base := s.Base
	if !withBase {
		base = nil
	}
	return power.NewMeasurerCached(s.Graph, base, s.Pts, power.BatchSpec{Beta: beta, Hops: true}, s.slabs)
}

// snapshotID derives the URL-safe snapshot id from the content-shaped key:
// the fnv64a digest in hex. The full key stays in SnapshotInfo.Key.
func snapshotID(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmt.Sprintf("%016x", h.Sum64())
}

// Store holds the daemon's snapshot set behind one atomic pointer to an
// immutable table. Readers (the query path) do a single atomic load and
// then work on a frozen map — no locks, no torn state. Writers (snapshot
// add / retire / activate) serialize on a mutex, build a fresh table and
// publish it atomically; the previous table remains valid for readers that
// already hold it.
type Store struct {
	mu  sync.Mutex // writers only
	tab atomic.Pointer[storeTable]
}

// storeTable is one immutable generation of the snapshot set.
type storeTable struct {
	snaps   map[string]*Snapshot
	order   []string // sorted ids, for deterministic listings
	current *Snapshot
}

// NewStore returns an empty store.
func NewStore() *Store {
	st := &Store{}
	st.tab.Store(&storeTable{snaps: map[string]*Snapshot{}})
	return st
}

// Len returns the number of live snapshots.
func (st *Store) Len() int { return len(st.tab.Load().snaps) }

// Current returns the snapshot unnamed queries resolve to (nil when none
// has been activated).
func (st *Store) Current() *Snapshot { return st.tab.Load().current }

// List returns the live snapshots in sorted-id order.
func (st *Store) List() []*Snapshot {
	t := st.tab.Load()
	out := make([]*Snapshot, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.snaps[id])
	}
	return out
}

// Acquire resolves id ("" = current) against the present table and takes a
// drain reference on the resolved snapshot. The caller must invoke the
// returned release exactly once. ok is false when the id is unknown or no
// current snapshot exists; the release is then a no-op.
func (st *Store) Acquire(id string) (s *Snapshot, release func(), ok bool) {
	t := st.tab.Load()
	if id == "" {
		s = t.current
	} else {
		s = t.snaps[id]
	}
	if s == nil {
		return nil, func() {}, false
	}
	s.acquire()
	return s, s.release, true
}

// clone copies the table for copy-on-write mutation. Caller holds mu.
func (t *storeTable) clone() *storeTable {
	nt := &storeTable{
		snaps:   make(map[string]*Snapshot, len(t.snaps)+1),
		current: t.current,
	}
	for id, s := range t.snaps {
		nt.snaps[id] = s
	}
	return nt
}

// reindex rebuilds the sorted id listing. Caller holds mu.
func (t *storeTable) reindex() {
	t.order = t.order[:0]
	for id := range t.snaps {
		t.order = append(t.order, id)
	}
	sort.Strings(t.order)
}

// Add inserts s (idempotently: an existing snapshot with the same id wins
// and is returned with added == false). When activate is set the resulting
// snapshot becomes current; when replace is also set, the previously
// current snapshot — if different — is retired in the same atomic
// publication, so readers switch from old to new in one step with no
// window where neither is visible.
func (st *Store) Add(s *Snapshot, activate, replace bool) (live *Snapshot, added bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t := st.tab.Load().clone()
	live, added = t.snaps[s.Info.ID], false
	if live == nil {
		live, added = s, true
		t.snaps[s.Info.ID] = s
	}
	if activate {
		if prev := t.current; replace && prev != nil && prev != live {
			delete(t.snaps, prev.Info.ID)
			defer prev.retired.Store(true)
		}
		t.current = live
	}
	t.reindex()
	st.tab.Store(t)
	return live, added
}

// Remove retires the snapshot with the given id. ok is false when the id
// is unknown. A removed snapshot that was current leaves the store with no
// current snapshot.
func (st *Store) Remove(id string) (s *Snapshot, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	t := st.tab.Load().clone()
	s, ok = t.snaps[id]
	if !ok {
		return nil, false
	}
	delete(t.snaps, id)
	if t.current == s {
		t.current = nil
	}
	t.reindex()
	st.tab.Store(t)
	s.retired.Store(true)
	return s, true
}
