package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve/loadgen"
)

// benchServer builds a daemon with the small benchmark snapshot loaded
// and returns it plus the snapshot's members.
func benchServer(b *testing.B, cfg Config) (*Server, []int32) {
	b.Helper()
	s := New(cfg)
	snap, err := Build(BuildSpec{Kind: "udg", Seed: 1, Side: 8, Lambda: 8})
	if err != nil {
		b.Fatalf("build snapshot: %v", err)
	}
	live, _ := s.Store().Add(snap, true, false)
	return s, live.Members
}

// BenchmarkServeRoute is the per-query hot path: one route query per
// iteration through the full HTTP stack with batching disabled
// (MaxBatchPairs=1 flushes inline), so allocs/op is the per-query
// allocation bill the ALLOC-REGRESSION gate pins.
func BenchmarkServeRoute(b *testing.B) {
	s, _ := benchServer(b, Config{MaxBatchPairs: 1, BatchWait: time.Microsecond})
	body := []byte(`{"beta":3,"pairs":[{"u":0,"v":1},{"u":2,"v":3}]}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/query/route", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// BenchmarkServeLoadgen drives the deterministic load generator against
// the daemon and reports the serving throughput and latency quantiles —
// the qps/p50/p99 rows of the benchmark trajectory.
func BenchmarkServeLoadgen(b *testing.B) {
	s, members := benchServer(b, Config{Workers: 8, MaxBatchPairs: 64, BatchWait: 200 * time.Microsecond})
	stream := loadgen.Generate(members, loadgen.Spec{
		Seed: 7, Queries: 200, PairsPerQuery: 2, StretchFraction: 0.2, Beta: 3,
	})
	b.ReportAllocs()
	b.ResetTimer()
	var qps, p50, p99 float64
	for i := 0; i < b.N; i++ {
		res := loadgen.Run(s, stream, 4)
		if res.Failed != 0 {
			b.Fatalf("%d queries failed", res.Failed)
		}
		qps += res.QPS
		p50 += float64(res.P50.Microseconds())
		p99 += float64(res.P99.Microseconds())
	}
	n := float64(b.N)
	b.ReportMetric(qps/n, "qps")
	b.ReportMetric(p50/n, "p50-us")
	b.ReportMetric(p99/n, "p99-us")
}

// BenchmarkSnapshotBuild is the snapshot construction cost the POST
// /snapshots path pays (cache misses only).
func BenchmarkSnapshotBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Build(BuildSpec{Kind: "udg", Seed: uint64(i + 1), Side: 8, Lambda: 8}); err != nil {
			b.Fatalf("build: %v", err)
		}
	}
}
