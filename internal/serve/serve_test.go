package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// doReq drives one request through the server and returns the recorder.
func doReq(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

// decodeErr asserts the pinned error body shape and returns it.
func decodeErr(t *testing.T, rec *httptest.ResponseRecorder) errorBody {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil {
		t.Fatalf("error body is not the pinned shape: %v (body %q)", err, rec.Body.String())
	}
	if eb.Status != rec.Code {
		t.Fatalf("error body status %d != HTTP status %d", eb.Status, rec.Code)
	}
	if eb.Error == "" {
		t.Fatalf("error body has empty message: %q", rec.Body.String())
	}
	return eb
}

// smallSpec is a fast-to-build UDG snapshot spec shared by handler tests.
const smallSpec = `{"kind":"udg","seed":1,"side":8,"lambda":8}`

// loadSmall builds and activates the small snapshot, returning its id.
func loadSmall(t *testing.T, s *Server) string {
	t.Helper()
	rec := doReq(t, s, http.MethodPost, "/snapshots", smallSpec)
	if rec.Code != http.StatusCreated && rec.Code != http.StatusOK {
		t.Fatalf("snapshot build: status %d body %s", rec.Code, rec.Body.String())
	}
	var resp SnapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode snapshot response: %v", err)
	}
	return resp.Snapshot.ID
}

func TestHealthz(t *testing.T) {
	s := New(Config{})
	rec := doReq(t, s, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: status %d", rec.Code)
	}
	var h HealthResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		t.Fatalf("decode healthz: %v", err)
	}
	if h.Status != "ok" || h.Snapshots != 0 || h.Current != "" {
		t.Fatalf("unexpected healthz: %+v", h)
	}
}

func TestSnapshotLifecycle(t *testing.T) {
	s := New(Config{})
	id := loadSmall(t, s)

	// Re-POST of the same spec is idempotent: 200, created=false, same id.
	rec := doReq(t, s, http.MethodPost, "/snapshots", smallSpec)
	if rec.Code != http.StatusOK {
		t.Fatalf("idempotent re-POST: status %d", rec.Code)
	}
	var resp SnapshotResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.Created || resp.Snapshot.ID != id {
		t.Fatalf("re-POST not idempotent: %+v", resp)
	}

	// List shows it as current.
	rec = doReq(t, s, http.MethodGet, "/snapshots", "")
	var list SnapshotListResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if list.Count != 1 || list.Current != id || !list.Snapshots[0].Current {
		t.Fatalf("unexpected list: %+v", list)
	}

	// Direct GET by id.
	rec = doReq(t, s, http.MethodGet, "/snapshots/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("get by id: status %d", rec.Code)
	}
	var info SnapshotInfo
	if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
		t.Fatalf("decode info: %v", err)
	}
	if info.ID != id || info.Points == 0 || info.Edges == 0 || !info.HasBase {
		t.Fatalf("unexpected info: %+v", info)
	}

	// Delete retires it; a later GET is 404.
	rec = doReq(t, s, http.MethodDelete, "/snapshots/"+id, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("delete: status %d body %s", rec.Code, rec.Body.String())
	}
	rec = doReq(t, s, http.MethodGet, "/snapshots/"+id, "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("get after delete: status %d", rec.Code)
	}
	decodeErr(t, rec)
}

func TestSnapshotStagedBuild(t *testing.T) {
	s := New(Config{})
	// activate:false stages the snapshot without making it current.
	rec := doReq(t, s, http.MethodPost, "/snapshots",
		`{"kind":"udg","seed":1,"side":8,"lambda":8,"activate":false}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("staged build: status %d body %s", rec.Code, rec.Body.String())
	}
	if cur := s.Store().Current(); cur != nil {
		t.Fatalf("staged build became current: %v", cur.Info.ID)
	}
	// A current-snapshot query has nothing to answer with.
	rec = doReq(t, s, http.MethodPost, "/query/route", `{"pairs":[{"u":0,"v":1}]}`)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("query with no current snapshot: status %d", rec.Code)
	}
	decodeErr(t, rec)
}

func TestErrorPaths(t *testing.T) {
	s := New(Config{})
	id := loadSmall(t, s)

	cases := []struct {
		name, method, path, body string
		status                   int
		wantErr                  string // substring of the pinned error message
	}{
		{"unknown snapshot get", http.MethodGet, "/snapshots/deadbeef", "", http.StatusNotFound, `unknown snapshot "deadbeef"`},
		{"unknown snapshot delete", http.MethodDelete, "/snapshots/deadbeef", "", http.StatusNotFound, `unknown snapshot "deadbeef"`},
		{"unknown snapshot query", http.MethodPost, "/query/route", `{"snapshot":"deadbeef","pairs":[{"u":0,"v":1}]}`, http.StatusNotFound, `unknown snapshot "deadbeef"`},
		{"malformed JSON", http.MethodPost, "/query/route", `{"pairs":[`, http.StatusBadRequest, "invalid JSON body"},
		{"unknown field", http.MethodPost, "/query/route", `{"pares":[{"u":0,"v":1}]}`, http.StatusBadRequest, "invalid JSON body"},
		{"trailing garbage", http.MethodPost, "/query/route", `{"pairs":[{"u":0,"v":1}]}{"x":1}`, http.StatusBadRequest, "invalid JSON body"},
		{"empty pairs", http.MethodPost, "/query/route", `{"pairs":[]}`, http.StatusBadRequest, "at least one pair"},
		{"pair out of range", http.MethodPost, "/query/route", `{"pairs":[{"u":0,"v":1000000}]}`, http.StatusBadRequest, "out of vertex range"},
		{"negative pair", http.MethodPost, "/query/route", `{"pairs":[{"u":-1,"v":0}]}`, http.StatusBadRequest, "out of vertex range"},
		{"beta below range", http.MethodPost, "/query/route", `{"beta":1.5,"pairs":[{"u":0,"v":1}]}`, http.StatusBadRequest, "out of range"},
		{"beta above range", http.MethodPost, "/query/stretch", `{"beta":9,"pairs":[{"u":0,"v":1}]}`, http.StatusBadRequest, "out of range"},
		{"bad build kind", http.MethodPost, "/snapshots", `{"kind":"mesh"}`, http.StatusBadRequest, "unknown kind"},
		{"bad build mode", http.MethodPost, "/snapshots", `{"kind":"udg","mode":"wild"}`, http.StatusBadRequest, "unknown mode"},
		{"bad build JSON", http.MethodPost, "/snapshots", `kind=udg`, http.StatusBadRequest, "invalid JSON body"},
		{"lifetime rounds cap", http.MethodPost, "/query/lifetime", `{"rounds":5000}`, http.StatusBadRequest, "out of range"},
		{"lifetime negative rate", http.MethodPost, "/query/lifetime", `{"rate":-1}`, http.StatusBadRequest, "rate must be positive"},
		{"coverage unknown snapshot", http.MethodPost, "/query/coverage", `{"snapshot":"deadbeef"}`, http.StatusNotFound, `unknown snapshot "deadbeef"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doReq(t, s, tc.method, tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d (body %s)", rec.Code, tc.status, rec.Body.String())
			}
			eb := decodeErr(t, rec)
			if !strings.Contains(eb.Error, tc.wantErr) {
				t.Fatalf("error %q does not mention %q", eb.Error, tc.wantErr)
			}
		})
	}
	_ = id
}

// TestMalformedJSONPinnedBody pins the exact 400 body bytes for an empty
// pair list — the wire contract the issue requires.
func TestMalformedJSONPinnedBody(t *testing.T) {
	s := New(Config{})
	loadSmall(t, s)
	rec := doReq(t, s, http.MethodPost, "/query/route", `{"pairs":[]}`)
	want := `{"error":"query needs at least one pair","status":400}` + "\n"
	if rec.Body.String() != want {
		t.Fatalf("pinned 400 body changed:\n got %q\nwant %q", rec.Body.String(), want)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("error content type %q", ct)
	}
}

// TestPoolSaturation429 pre-occupies the single worker slot and verifies
// the shed response: 429, Retry-After, pinned body shape, counted in
// /metrics.
func TestPoolSaturation429(t *testing.T) {
	s := New(Config{Workers: 1})
	loadSmall(t, s)
	if !s.Pool().TryAcquire() {
		t.Fatal("could not occupy the pool")
	}
	defer s.Pool().Release()

	rec := doReq(t, s, http.MethodPost, "/query/route", `{"pairs":[{"u":0,"v":1}]}`)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated pool: status %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want \"1\"", ra)
	}
	decodeErr(t, rec)
	if got := s.Pool().Rejected(); got != 1 {
		t.Fatalf("rejected counter %d, want 1", got)
	}
}

func TestRouteQuery(t *testing.T) {
	s := New(Config{})
	id := loadSmall(t, s)
	rec := doReq(t, s, http.MethodPost, "/query/route", `{"beta":3,"pairs":[{"u":0,"v":0},{"u":0,"v":1}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("route: status %d body %s", rec.Code, rec.Body.String())
	}
	var resp RouteResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode route: %v", err)
	}
	if resp.Snapshot != id || resp.Beta != 3 || len(resp.Results) != 2 {
		t.Fatalf("unexpected route response: %+v", resp)
	}
	self := resp.Results[0]
	if !self.Reachable || self.Len != 0 || self.Hops != 0 || self.U != 0 || self.V != 0 {
		t.Fatalf("self pair should be trivially reachable: %+v", self)
	}
}

func TestStretchQuery(t *testing.T) {
	s := New(Config{})
	loadSmall(t, s)
	rec := doReq(t, s, http.MethodPost, "/query/stretch", `{"beta":3,"pairs":[{"u":0,"v":1}]}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("stretch: status %d body %s", rec.Code, rec.Body.String())
	}
	var resp StretchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode stretch: %v", err)
	}
	r := resp.Results[0]
	if r.Reachable {
		// A reachable pair must satisfy the stretch invariants.
		if r.Len < r.BaseLen || r.DistStretch < 1 || r.BaseLen < r.Euclid-1e-9 {
			t.Fatalf("stretch invariants violated: %+v", r)
		}
	}
}

// TestStretchWithoutBase verifies the 400 on a snapshot with no base
// graph (HNG built without baseRadius).
func TestStretchWithoutBase(t *testing.T) {
	s := New(Config{})
	rec := doReq(t, s, http.MethodPost, "/snapshots", `{"kind":"hng","seed":2,"side":6,"lambda":6}`)
	if rec.Code != http.StatusCreated {
		t.Fatalf("hng build: status %d body %s", rec.Code, rec.Body.String())
	}
	rec = doReq(t, s, http.MethodPost, "/query/stretch", `{"beta":3,"pairs":[{"u":0,"v":1}]}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("stretch without base: status %d, want 400", rec.Code)
	}
	eb := decodeErr(t, rec)
	if !strings.Contains(eb.Error, "no base graph") {
		t.Fatalf("error %q does not mention the missing base", eb.Error)
	}
}

func TestCoverageQuery(t *testing.T) {
	s := New(Config{})
	loadSmall(t, s)
	rec := doReq(t, s, http.MethodPost, "/query/coverage", `{}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("coverage: status %d body %s", rec.Code, rec.Body.String())
	}
	var resp CoverageResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode coverage: %v", err)
	}
	if resp.Snapshot.Points == 0 || len(resp.DegreeHistogram) == 0 {
		t.Fatalf("empty coverage: %+v", resp)
	}
	total := 0
	for _, c := range resp.DegreeHistogram {
		total += c
	}
	if total != resp.Snapshot.Points {
		t.Fatalf("degree histogram sums to %d, want %d points", total, resp.Snapshot.Points)
	}
}

// TestLifetimeQueryDeterministic verifies the lifetime endpoint answers
// and that the same (snapshot, seed) yields byte-identical summaries.
func TestLifetimeQueryDeterministic(t *testing.T) {
	s := New(Config{})
	loadSmall(t, s)
	body := `{"seed":7,"rounds":64}`
	rec1 := doReq(t, s, http.MethodPost, "/query/lifetime", body)
	if rec1.Code != http.StatusOK {
		t.Fatalf("lifetime: status %d body %s", rec1.Code, rec1.Body.String())
	}
	rec2 := doReq(t, s, http.MethodPost, "/query/lifetime", body)
	if !bytes.Equal(rec1.Body.Bytes(), rec2.Body.Bytes()) {
		t.Fatalf("lifetime not deterministic:\n%s\n%s", rec1.Body.String(), rec2.Body.String())
	}
	var resp LifetimeResponse
	if err := json.Unmarshal(rec1.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode lifetime: %v", err)
	}
	if resp.Rounds <= 0 || resp.DeliveryRatio < 0 || resp.DeliveryRatio > 1 {
		t.Fatalf("implausible lifetime summary: %+v", resp)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := New(Config{})
	loadSmall(t, s)
	doReq(t, s, http.MethodPost, "/query/route", `{"pairs":[{"u":0,"v":1}]}`)
	rec := doReq(t, s, http.MethodGet, "/metrics", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: status %d", rec.Code)
	}
	var ms MetricsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &ms); err != nil {
		t.Fatalf("decode metrics: %v", err)
	}
	if ms.SnapshotCount != 1 {
		t.Fatalf("snapshot count %d, want 1", ms.SnapshotCount)
	}
	if ms.Endpoints["route"].Count != 1 {
		t.Fatalf("route histogram count %d, want 1", ms.Endpoints["route"].Count)
	}
	if ms.Endpoints["route"].P50Us == 0 || ms.Endpoints["route"].P99Us < ms.Endpoints["route"].P50Us {
		t.Fatalf("implausible latency quantiles: %+v", ms.Endpoints["route"])
	}
	if ms.Batcher.Flushes == 0 || ms.Batcher.Queries == 0 {
		t.Fatalf("batcher counters empty: %+v", ms.Batcher)
	}
	if ms.SlabMisses == 0 {
		t.Fatalf("slab cache never missed: %+v", ms)
	}
}
