package serve

import (
	"strings"
	"testing"
)

// TestBuildSpecGenSideKey pins the snapshot identity: GenSide switches the
// deployment key to the streamed shape and distinguishes realizations,
// while GenSide=0 keeps the historical serial key.
func TestBuildSpecGenSideKey(t *testing.T) {
	base := BuildSpec{Kind: "udg", Seed: 5, Stream: 9, Side: 10, Lambda: 8, Mode: "repaired", SlabCap: 1}
	serial := base
	a, b := base, base
	a.GenSide = 2.5
	b.GenSide = 5.0

	if k := serial.Key(); strings.Contains(k, "poissonsoa") {
		t.Errorf("GenSide=0 must keep the serial key shape, got %q", k)
	}
	ka, kb := a.Key(), b.Key()
	if !strings.Contains(ka, "poissonsoa") || !strings.Contains(ka, "g=2.5") {
		t.Errorf("streamed key missing genSide identity: %q", ka)
	}
	if ka == kb {
		t.Errorf("two GenSide values share one snapshot key %q", ka)
	}
	if ka == serial.Key() {
		t.Error("streamed and serial specs share one snapshot key")
	}
}

// TestBuildGenSideStreamedDeployment smoke-tests the streamed build path
// end to end and pins its determinism.
func TestBuildGenSideStreamedDeployment(t *testing.T) {
	sp := BuildSpec{Kind: "udg", Seed: 5, Stream: 9, Side: 10, Lambda: 8, GenSide: 4}
	s1, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Pts) == 0 {
		t.Fatal("streamed build produced no points")
	}
	s2, err := Build(sp)
	if err != nil {
		t.Fatal(err)
	}
	if len(s1.Pts) != len(s2.Pts) || s1.Info.Edges != s2.Info.Edges {
		t.Fatalf("streamed build not deterministic: %d/%d points, %d/%d edges",
			len(s1.Pts), len(s2.Pts), s1.Info.Edges, s2.Info.Edges)
	}
	serial, err := Build(BuildSpec{Kind: "udg", Seed: 5, Stream: 9, Side: 10, Lambda: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Pts) == len(s1.Pts) {
		t.Log("serial and streamed builds coincidentally equal in count; keys still differ")
	}
	if serial.Info.Key == s1.Info.Key {
		t.Fatal("serial and streamed snapshots share one identity key")
	}
	if sp2 := (BuildSpec{Kind: "udg", GenSide: -1}); func() error { return sp2.normalize() }() == nil {
		t.Error("negative genSide accepted")
	}
}
