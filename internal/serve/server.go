package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"repro/internal/energy"
	"repro/internal/power"
	"repro/internal/rng"
)

// Config tunes the daemon.
type Config struct {
	// Workers bounds the concurrently computing queries (default 8); the
	// pool full answer is 429 + Retry-After.
	Workers int
	// MaxBatchPairs is the batcher's size flush threshold (default 64) and
	// BatchWait its latency bound (default 2ms).
	MaxBatchPairs int
	BatchWait     time.Duration
	// MaxPairsPerRequest caps a single query body (default 4096).
	MaxPairsPerRequest int
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.MaxBatchPairs == 0 {
		c.MaxBatchPairs = 64
	}
	if c.BatchWait == 0 {
		c.BatchWait = 2 * time.Millisecond
	}
	if c.MaxPairsPerRequest == 0 {
		c.MaxPairsPerRequest = 4096
	}
	return c
}

// Server is the topology-as-a-service daemon: snapshot store, query
// batcher, bounded worker pool and metrics behind an http.Handler.
//
// Endpoints:
//
//	GET    /healthz              liveness + snapshot count
//	GET    /metrics              latency histograms, batch occupancy, pool
//	GET    /snapshots            list snapshots
//	POST   /snapshots            build + (optionally) activate a snapshot
//	GET    /snapshots/{id}       one snapshot's info
//	DELETE /snapshots/{id}       retire a snapshot
//	POST   /query/route          batched shortest-path queries
//	POST   /query/stretch        batched stretch queries against the base
//	POST   /query/coverage       structure summary of a snapshot
//	POST   /query/lifetime       deterministic lifetime simulation summary
type Server struct {
	cfg     Config
	store   *Store
	pool    *Pool
	batcher *Batcher
	metrics *Metrics
	buildMu sync.Mutex // serializes snapshot builds (memory bound)
	mux     *http.ServeMux
}

// New constructs a daemon with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   NewStore(),
		pool:    NewPool(cfg.Workers),
		batcher: NewBatcher(cfg.MaxBatchPairs, cfg.BatchWait),
		metrics: NewMetrics(),
		mux:     http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /snapshots", s.handleSnapshotList)
	s.mux.HandleFunc("POST /snapshots", s.timed(&s.metrics.Snapshots, s.handleSnapshotBuild))
	s.mux.HandleFunc("GET /snapshots/{id}", s.handleSnapshotGet)
	s.mux.HandleFunc("DELETE /snapshots/{id}", s.handleSnapshotDelete)
	s.mux.HandleFunc("POST /query/route", s.timed(&s.metrics.Route, s.pooled(s.handleRoute)))
	s.mux.HandleFunc("POST /query/stretch", s.timed(&s.metrics.Stretch, s.pooled(s.handleStretch)))
	s.mux.HandleFunc("POST /query/coverage", s.timed(&s.metrics.Coverage, s.pooled(s.handleCoverage)))
	s.mux.HandleFunc("POST /query/lifetime", s.timed(&s.metrics.Lifetime, s.pooled(s.handleLifetime)))
	return s
}

// Store exposes the snapshot store (tests and the CLI preload path).
func (s *Server) Store() *Store { return s.store }

// Batcher exposes the query batcher (tests read its occupancy counters).
func (s *Server) Batcher() *Batcher { return s.batcher }

// Pool exposes the worker pool.
func (s *Server) Pool() *Pool { return s.pool }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// timed wraps a handler with latency observation into h.
func (s *Server) timed(h *Histogram, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		fn(w, r)
		h.Observe(time.Since(start))
	}
}

// pooled wraps a query handler with worker-pool admission: a saturated
// pool sheds the request with 429 and a Retry-After hint.
func (s *Server) pooled(fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.pool.TryAcquire() {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "worker pool saturated (%d in flight)", s.pool.Cap())
			return
		}
		defer s.pool.Release()
		fn(w, r)
	}
}

// errorBody is the pinned error shape: every non-2xx response decodes to
// exactly {"error": "...", "status": N}.
type errorBody struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeError emits the pinned JSON error body.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...), Status: status})
}

// writeJSON marshals v deterministically (struct field order; maps sorted
// by encoding/json) and writes it with a trailing newline.
func writeJSON(w http.ResponseWriter, status int, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode failure","status":500}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// decodeJSON strictly decodes the request body into v; unknown fields and
// trailing garbage are errors so malformed queries fail loudly at the
// edge.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "invalid JSON body: trailing data")
		return false
	}
	return true
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" whenever the daemon answers.
	Status string `json:"status"`
	// Snapshots counts live snapshots; Current names the active one ("" if
	// none).
	Snapshots int    `json:"snapshots"`
	Current   string `json:"current"`
	// UptimeMs is the time since daemon start.
	UptimeMs int64 `json:"uptimeMs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:    "ok",
		Snapshots: s.store.Len(),
		UptimeMs:  time.Since(s.metrics.start).Milliseconds(),
	}
	if cur := s.store.Current(); cur != nil {
		resp.Current = cur.Info.ID
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.metrics.Snapshot(s.batcher, s.pool, s.store))
}

// SnapshotRequest is the body of POST /snapshots: a BuildSpec plus
// rollover directives.
type SnapshotRequest struct {
	BuildSpec
	// Activate makes the snapshot current (default true — omit for a
	// staged build that queries must name explicitly).
	Activate *bool `json:"activate"`
	// Replace additionally retires the previously current snapshot in the
	// same atomic table swap — the rollover protocol. Ignored unless the
	// snapshot activates.
	Replace bool `json:"replace"`
}

// SnapshotResponse is the body of POST /snapshots.
type SnapshotResponse struct {
	// Created is false when the content-shaped key matched a live snapshot
	// and the build was skipped (idempotent POST).
	Created bool `json:"created"`
	// Snapshot describes the (possibly pre-existing) snapshot.
	Snapshot SnapshotInfo `json:"snapshot"`
}

func (s *Server) handleSnapshotBuild(w http.ResponseWriter, r *http.Request) {
	var req SnapshotRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sp := req.BuildSpec
	if err := sp.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, "invalid snapshot spec: %v", err)
		return
	}
	activate := req.Activate == nil || *req.Activate

	s.buildMu.Lock()
	defer s.buildMu.Unlock()
	id := snapshotID(sp.Key())
	var snap *Snapshot
	if existing, release, ok := s.store.Acquire(id); ok {
		release()
		snap = existing
	} else {
		built, err := Build(sp)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "snapshot build failed: %v", err)
			return
		}
		snap = built
	}
	live, added := s.store.Add(snap, activate, req.Replace)
	status := http.StatusOK
	if added {
		status = http.StatusCreated
	}
	info := live.Info
	info.Current = s.store.Current() == live
	writeJSON(w, status, SnapshotResponse{Created: added, Snapshot: info})
}

// SnapshotListResponse is the body of GET /snapshots.
type SnapshotListResponse struct {
	// Count is the number of live snapshots; Current the active id ("" if
	// none); Snapshots the infos in sorted-id order.
	Count     int            `json:"count"`
	Current   string         `json:"current"`
	Snapshots []SnapshotInfo `json:"snapshots"`
}

func (s *Server) handleSnapshotList(w http.ResponseWriter, r *http.Request) {
	cur := s.store.Current()
	resp := SnapshotListResponse{Snapshots: []SnapshotInfo{}}
	if cur != nil {
		resp.Current = cur.Info.ID
	}
	for _, snap := range s.store.List() {
		info := snap.Info
		info.Current = snap == cur
		resp.Snapshots = append(resp.Snapshots, info)
	}
	resp.Count = len(resp.Snapshots)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, release, ok := s.store.Acquire(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown snapshot %q", id)
		return
	}
	defer release()
	info := snap.Info
	info.Current = s.store.Current() == snap
	writeJSON(w, http.StatusOK, info)
}

// SnapshotDeleteResponse is the body of DELETE /snapshots/{id}.
type SnapshotDeleteResponse struct {
	// Retired echoes the retired snapshot id.
	Retired string `json:"retired"`
}

func (s *Server) handleSnapshotDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.store.Remove(id); !ok {
		writeError(w, http.StatusNotFound, "unknown snapshot %q", id)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotDeleteResponse{Retired: id})
}

// PairSpec is one (source, target) vertex pair of a query body.
type PairSpec struct {
	// U and V index the snapshot's deployment points.
	U int32 `json:"u"`
	V int32 `json:"v"`
}

// QueryRequest is the shared body of POST /query/route and /query/stretch.
type QueryRequest struct {
	// Snapshot selects the snapshot by id; empty means the current one.
	Snapshot string `json:"snapshot"`
	// Beta is the path-loss exponent for the power fields: 0 (distance
	// only) or a value in [power.MinBeta, power.MaxBeta].
	Beta float64 `json:"beta"`
	// Pairs are the measurement requests, answered in order.
	Pairs []PairSpec `json:"pairs"`
}

// resolveQuery decodes, validates and resolves the common query preamble.
// On success the caller owns the release func.
func (s *Server) resolveQuery(w http.ResponseWriter, r *http.Request) (req QueryRequest, snap *Snapshot, release func(), ok bool) {
	if !decodeJSON(w, r, &req) {
		return req, nil, nil, false
	}
	if req.Beta != 0 && (req.Beta < power.MinBeta || req.Beta > power.MaxBeta) {
		writeError(w, http.StatusBadRequest, "beta %v out of range (0 or [%g, %g])", req.Beta, power.MinBeta, power.MaxBeta)
		return req, nil, nil, false
	}
	if len(req.Pairs) == 0 {
		writeError(w, http.StatusBadRequest, "query needs at least one pair")
		return req, nil, nil, false
	}
	if len(req.Pairs) > s.cfg.MaxPairsPerRequest {
		writeError(w, http.StatusBadRequest, "%d pairs exceed the per-request cap %d", len(req.Pairs), s.cfg.MaxPairsPerRequest)
		return req, nil, nil, false
	}
	snap, release, found := s.store.Acquire(req.Snapshot)
	if !found {
		if req.Snapshot == "" {
			writeError(w, http.StatusNotFound, "no current snapshot (POST /snapshots first)")
		} else {
			writeError(w, http.StatusNotFound, "unknown snapshot %q", req.Snapshot)
		}
		return req, nil, nil, false
	}
	n := int32(snap.Graph.N)
	for _, p := range req.Pairs {
		if p.U < 0 || p.V < 0 || p.U >= n || p.V >= n {
			release()
			writeError(w, http.StatusBadRequest, "pair (%d, %d) out of vertex range [0, %d)", p.U, p.V, n)
			return req, nil, nil, false
		}
	}
	return req, snap, release, true
}

// pairsOf converts the wire pairs to the measurement engine's form.
func pairsOf(ps []PairSpec) []power.Pair {
	out := make([]power.Pair, len(ps))
	for i, p := range ps {
		out[i] = power.Pair{U: p.U, V: p.V}
	}
	return out
}

// RouteResult is one pair's answer in a route response. Unreachable pairs
// report Reachable false with zeroed costs and Hops −1 (JSON cannot carry
// +Inf).
type RouteResult struct {
	// U and V echo the queried pair.
	U int32 `json:"u"`
	V int32 `json:"v"`
	// Reachable reports whether V is reachable from U in the snapshot's
	// serving graph.
	Reachable bool `json:"reachable"`
	// Euclid is the straight-line distance; Len the shortest-path length.
	Euclid float64 `json:"euclid"`
	Len    float64 `json:"len"`
	// Power is the minimum path power at the request β (0 when β was 0).
	Power float64 `json:"power"`
	// Hops is the BFS hop count (−1 when unreachable).
	Hops int `json:"hops"`
}

// RouteResponse is the body of POST /query/route.
type RouteResponse struct {
	// Snapshot is the id of the snapshot that answered; Beta echoes the
	// request.
	Snapshot string  `json:"snapshot"`
	Beta     float64 `json:"beta"`
	// Results answer the pairs in request order.
	Results []RouteResult `json:"results"`
}

// routeResult converts one measurement sample to the wire form.
func routeResult(s power.StretchSample) RouteResult {
	r := RouteResult{U: s.U, V: s.V, Euclid: s.Euclid, Hops: s.Hops}
	if math.IsInf(s.SubLen, 1) {
		r.Hops = -1
		return r
	}
	r.Reachable = true
	r.Len = s.SubLen
	if !math.IsInf(s.PowerSub, 1) {
		r.Power = s.PowerSub
	}
	return r
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	req, snap, release, ok := s.resolveQuery(w, r)
	if !ok {
		return
	}
	defer release()
	samples := s.batcher.Measure(snap, req.Beta, false, pairsOf(req.Pairs))
	resp := RouteResponse{Snapshot: snap.Info.ID, Beta: req.Beta, Results: make([]RouteResult, len(samples))}
	for i, smp := range samples {
		resp.Results[i] = routeResult(smp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// StretchResult extends RouteResult with the base-graph comparison.
// Reachable is true only when the pair connects in BOTH graphs; otherwise
// every ratio is zeroed.
type StretchResult struct {
	RouteResult
	// BaseLen and BasePower are the base graph's optima.
	BaseLen   float64 `json:"baseLen"`
	BasePower float64 `json:"basePower"`
	// DistStretch is Len/BaseLen, PowerStretch Power/BasePower (β > 0),
	// EuclidStretch Len/Euclid — the paper's P2 δ.
	DistStretch   float64 `json:"distStretch"`
	PowerStretch  float64 `json:"powerStretch"`
	EuclidStretch float64 `json:"euclidStretch"`
}

// StretchResponse is the body of POST /query/stretch.
type StretchResponse struct {
	// Snapshot and Beta echo the resolution; Results answer in order.
	Snapshot string          `json:"snapshot"`
	Beta     float64         `json:"beta"`
	Results  []StretchResult `json:"results"`
}

// stretchResult converts one sample to the wire form.
func stretchResult(s power.StretchSample) StretchResult {
	r := StretchResult{RouteResult: routeResult(s)}
	if math.IsInf(s.SubLen, 1) || math.IsInf(s.BaseLen, 1) {
		r.Reachable = false
		r.Len, r.Power = 0, 0
		return r
	}
	r.BaseLen = s.BaseLen
	if !math.IsInf(s.PowerBase, 1) {
		r.BasePower = s.PowerBase
	}
	if !math.IsInf(s.DistStretch, 1) {
		r.DistStretch = s.DistStretch
	}
	if !math.IsInf(s.PowerStretch, 1) {
		r.PowerStretch = s.PowerStretch
	}
	r.EuclidStretch = s.EuclidStretch()
	return r
}

func (s *Server) handleStretch(w http.ResponseWriter, r *http.Request) {
	req, snap, release, ok := s.resolveQuery(w, r)
	if !ok {
		return
	}
	defer release()
	if snap.Base == nil {
		writeError(w, http.StatusBadRequest, "snapshot %s has no base graph (build with baseRadius or kind udg)", snap.Info.ID)
		return
	}
	samples := s.batcher.Measure(snap, req.Beta, true, pairsOf(req.Pairs))
	resp := StretchResponse{Snapshot: snap.Info.ID, Beta: req.Beta, Results: make([]StretchResult, len(samples))}
	for i, smp := range samples {
		resp.Results[i] = stretchResult(smp)
	}
	writeJSON(w, http.StatusOK, resp)
}

// CoverageRequest is the body of POST /query/coverage.
type CoverageRequest struct {
	// Snapshot selects the snapshot by id; empty means the current one.
	Snapshot string `json:"snapshot"`
}

// CoverageResponse is the body of POST /query/coverage: the snapshot's
// structural summary.
type CoverageResponse struct {
	// Snapshot describes the structure (coverage is precomputed at build).
	Snapshot SnapshotInfo `json:"snapshot"`
	// DegreeHistogram is counts[d] = members with degree d in the serving
	// graph.
	DegreeHistogram []int `json:"degreeHistogram"`
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	var req CoverageRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	snap, release, ok := s.store.Acquire(req.Snapshot)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown snapshot %q", req.Snapshot)
		return
	}
	defer release()
	info := snap.Info
	info.Current = s.store.Current() == snap
	writeJSON(w, http.StatusOK, CoverageResponse{Snapshot: info, DegreeHistogram: snap.Graph.DegreeHistogram()})
}

// lifetimeStream is the RNG substream lifetime queries draw traffic from —
// disjoint from every build substream at the same seed.
const lifetimeStream = 7001

// LifetimeRequest is the body of POST /query/lifetime: a deterministic
// lifetime simulation over the snapshot's members.
type LifetimeRequest struct {
	// Snapshot selects the snapshot by id; empty means the current one.
	Snapshot string `json:"snapshot"`
	// Seed drives the traffic randomness; the same (snapshot, seed,
	// rounds, rate) always returns the same summary.
	Seed uint64 `json:"seed"`
	// Rounds caps the simulation (default 512, max 4096); Rate is the
	// per-source report rate (default 0.5).
	Rounds int     `json:"rounds"`
	Rate   float64 `json:"rate"`
}

// LifetimeResponse is the body of POST /query/lifetime.
type LifetimeResponse struct {
	// Snapshot is the answering snapshot id; Seed echoes the request.
	Snapshot string `json:"snapshot"`
	Seed     uint64 `json:"seed"`
	// Rounds is the number of simulated rounds; FirstDeath the round of
	// the first role death (−1 if none); CoverageLifetime the rounds above
	// the coverage target.
	Rounds           int `json:"rounds"`
	FirstDeath       int `json:"firstDeath"`
	CoverageLifetime int `json:"coverageLifetime"`
	// DeliveryRatio, AliveAtEnd and ResidualJain summarize delivery and
	// energy evenness (see energy.Report).
	DeliveryRatio float64 `json:"deliveryRatio"`
	AliveAtEnd    float64 `json:"aliveAtEnd"`
	ResidualJain  float64 `json:"residualJain"`
}

func (s *Server) handleLifetime(w http.ResponseWriter, r *http.Request) {
	var req LifetimeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Rounds < 0 || req.Rounds > 4096 {
		writeError(w, http.StatusBadRequest, "rounds %d out of range [0, 4096]", req.Rounds)
		return
	}
	if req.Rounds == 0 {
		req.Rounds = 512
	}
	if req.Rate == 0 {
		req.Rate = 0.5
	}
	if req.Rate < 0 {
		writeError(w, http.StatusBadRequest, "rate must be positive (got %v)", req.Rate)
		return
	}
	snap, release, ok := s.store.Acquire(req.Snapshot)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown snapshot %q", req.Snapshot)
		return
	}
	defer release()
	if len(snap.Members) == 0 {
		writeError(w, http.StatusBadRequest, "snapshot %s has no members to simulate", snap.Info.ID)
		return
	}
	spec := energy.DefaultSpec()
	spec.MaxRounds = req.Rounds
	spec.Rate = req.Rate
	sinks := energy.QuadrantSinks(snap.Pts, snap.Members)
	rep, err := energy.SimulateLifetime(snap.Graph, snap.Pts, snap.Members, sinks,
		spec, rng.Sub(rng.Seed(req.Seed), lifetimeStream))
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "lifetime simulation failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, LifetimeResponse{
		Snapshot:         snap.Info.ID,
		Seed:             req.Seed,
		Rounds:           rep.Rounds,
		FirstDeath:       rep.FirstDeath,
		CoverageLifetime: rep.CoverageLifetime,
		DeliveryRatio:    rep.DeliveryRatio(),
		AliveAtEnd:       rep.AliveAtEnd(),
		ResidualJain:     rep.ResidualJain,
	})
}
