package serve

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/hng"
	"repro/internal/pointprocess"
	"repro/internal/power"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/tiling"
)

// BuildSpec is the JSON body of POST /snapshots: the semantic parameters
// of one snapshot build. The zero value of every optional field selects
// the documented default, so {"kind":"udg","seed":1} is a complete spec.
type BuildSpec struct {
	// Kind selects the construction: "udg" (UDG-SENS via the tile-sharded
	// scale-tier build) or "hng" (hierarchical neighbor graph).
	Kind string `json:"kind"`
	// Seed and Stream locate the deployment's RNG substream (rng.Sub(Seed,
	// Stream)); an HNG's level draws use Stream+1, the adjacent substream.
	Seed   uint64 `json:"seed"`
	Stream uint64 `json:"stream"`
	// Side is the deployment box side (default 30); Lambda the Poisson
	// intensity (default 16).
	Side   float64 `json:"side"`
	Lambda float64 `json:"lambda"`
	// GenSide, when positive, switches the deployment to the streamed
	// tile-generated Poisson path (pointprocess.PoissonSoA) with generation
	// tiles of this side. It is part of the snapshot identity: tile
	// boundaries decide which derived substream each point is drawn from,
	// so two GenSide values are different point sets. 0 (default) keeps
	// the serial single-stream deployment and the historical key shape.
	GenSide float64 `json:"genSide"`
	// Mode picks the UDG-SENS tile geometry: "literal", "repaired"
	// (default) or "relaxed". Ignored for HNG.
	Mode string `json:"mode"`
	// P and MaxChildren parameterize the HNG (defaults hng.DefaultSpec).
	// Ignored for UDG.
	P           float64 `json:"p"`
	MaxChildren int     `json:"maxChildren"`
	// BaseRadius, for HNG only, additionally builds the UDG base graph at
	// this radius so the snapshot can serve stretch queries; 0 (default)
	// skips it. UDG-SENS snapshots always carry their UDG base.
	BaseRadius float64 `json:"baseRadius"`
	// SlabCap bounds the snapshot's weight-slab LRU cache in entries
	// (default 8: two β values measured against sub and base).
	SlabCap int `json:"slabCap"`
}

// normalize applies defaults and validates the spec.
func (sp *BuildSpec) normalize() error {
	if sp.Kind != "udg" && sp.Kind != "hng" {
		return fmt.Errorf("unknown kind %q (want udg | hng)", sp.Kind)
	}
	if sp.Side == 0 {
		sp.Side = 30
	}
	if sp.Lambda == 0 {
		sp.Lambda = 16
	}
	if sp.Side < 0 || sp.Lambda < 0 {
		return fmt.Errorf("side and lambda must be positive (side=%v, lambda=%v)", sp.Side, sp.Lambda)
	}
	if sp.GenSide < 0 {
		return fmt.Errorf("genSide must be >= 0 (got %v)", sp.GenSide)
	}
	if sp.Mode == "" {
		sp.Mode = "repaired"
	}
	if _, err := udgSpecFor(sp.Mode); sp.Kind == "udg" && err != nil {
		return err
	}
	if sp.P == 0 {
		sp.P = hng.DefaultSpec().P
	}
	if sp.MaxChildren == 0 {
		sp.MaxChildren = hng.DefaultSpec().MaxChildren
	}
	if sp.BaseRadius < 0 {
		return fmt.Errorf("baseRadius must be >= 0 (got %v)", sp.BaseRadius)
	}
	if sp.SlabCap == 0 {
		sp.SlabCap = 8
	}
	return nil
}

// udgSpecFor maps a geometry mode name to its tile spec.
func udgSpecFor(mode string) (tiling.UDGSpec, error) {
	switch mode {
	case "literal":
		return tiling.PaperUDGSpec(), nil
	case "repaired":
		return tiling.DefaultUDGSpec(), nil
	case "relaxed":
		return tiling.RelaxedUDGSpec(), nil
	}
	return tiling.UDGSpec{}, fmt.Errorf("unknown mode %q (want literal | repaired | relaxed)", mode)
}

// Key returns the snapshot's content-shaped identity, in the scenario
// engine's cache-key scheme: the deployment key ("poisson|s=…|st=…|box=…|
// l=…") extended by the structure key ("udgsens|…|spec=…|opt=…" /
// "hng|…|spec=…|st=…"), a pure function of everything the build consumes.
// The spec must be normalized; Build guarantees that.
func (sp *BuildSpec) Key() string {
	box := geom.Box(sp.Side, sp.Side)
	dep := fmt.Sprintf("poisson|s=%d|st=%d|box=%v|l=%v", sp.Seed, sp.Stream, box, sp.Lambda)
	if sp.GenSide > 0 {
		// The streamed deployment is a different point process realization:
		// genSide joins the key (same shape as scenario.Ctx.DeploySoA).
		dep = fmt.Sprintf("poissonsoa|s=%d|st=%d|box=%v|l=%v|g=%v", sp.Seed, sp.Stream, box, sp.Lambda, sp.GenSide)
	}
	switch sp.Kind {
	case "udg":
		spec, _ := udgSpecFor(sp.Mode)
		opt := struct {
			Election election.Algorithm
			SkipBase bool
		}{}
		return fmt.Sprintf("udgsens|%s|spec=%+v|opt=%+v", dep, spec, opt)
	default:
		spec := hng.Spec{P: sp.P, MaxChildren: sp.MaxChildren}
		key := fmt.Sprintf("hng|%s|spec=%+v|st=%d", dep, spec, sp.Stream+1)
		if sp.BaseRadius > 0 {
			key += fmt.Sprintf("|base=udg|r=%v", sp.BaseRadius)
		}
		return key
	}
}

// Build constructs the immutable snapshot the spec describes: the Poisson
// deployment from the spec's substream, then the UDG-SENS network via the
// tile-sharded scale-tier pipeline (core.BuildUDGSharded, base included)
// or the hierarchical neighbor graph (hng.Build, optional UDG base). The
// result is deterministic — a pure function of the normalized spec — which
// is what makes the content-shaped key an identity.
func Build(sp BuildSpec) (*Snapshot, error) {
	if err := sp.normalize(); err != nil {
		return nil, err
	}
	start := time.Now()
	box := geom.Box(sp.Side, sp.Side)
	var pts []geom.Point
	if sp.GenSide > 0 {
		// Streamed tile-generated deployment: the SoA seed is derived from
		// (seed, stream) so per-tile substreams cannot collide with scenario
		// stream numbers of the same seed.
		pts = pointprocess.PoissonSoA(box, sp.Lambda, rng.Derive(rng.Seed(sp.Seed), sp.Stream), sp.GenSide).Points(nil)
	} else {
		pts = pointprocess.Poisson(box, sp.Lambda, rng.Sub(rng.Seed(sp.Seed), sp.Stream))
	}

	s := &Snapshot{Pts: pts, slabs: power.NewSlabCacheLRU(sp.SlabCap)}
	key := sp.Key()
	s.Info = SnapshotInfo{ID: snapshotID(key), Key: key, Points: len(pts)}

	switch sp.Kind {
	case "udg":
		spec, _ := udgSpecFor(sp.Mode)
		net, err := core.BuildUDGSharded(pts, box, spec, core.Options{})
		if err != nil {
			return nil, err
		}
		s.Graph = net.Graph
		if net.Base != nil {
			s.Base = net.Base.CSR
		}
		s.Members = net.Members
		s.Info.Kind = "udg-sens"
		s.Info.GoodFraction = net.GoodFraction()
	default:
		spec := hng.Spec{P: sp.P, MaxChildren: sp.MaxChildren}
		g, err := hng.Build(pts, spec, rng.Sub(rng.Seed(sp.Seed), sp.Stream+1))
		if err != nil {
			return nil, err
		}
		s.Graph = g.CSR
		s.Members = g.Vertices()
		if sp.BaseRadius > 0 {
			s.Base = rgg.UDGGrid(pts, sp.BaseRadius).CSR
		}
		s.Info.Kind = "hng"
	}

	s.Info.Members = len(s.Members)
	s.Info.Edges = s.Graph.EdgeCount
	s.Info.MaxDegree = s.Graph.MaxDegree()
	if len(pts) > 0 {
		s.Info.ActiveFraction = float64(len(s.Members)) / float64(len(pts))
	}
	s.Info.HasBase = s.Base != nil
	s.Info.BuildMillis = float64(time.Since(start).Microseconds()) / 1e3
	return s, nil
}
