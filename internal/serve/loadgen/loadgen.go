// Package loadgen is the deterministic load generator for the sensnetd
// serving layer: it synthesizes a reproducible stream of route/stretch
// query bodies from a seed and drives them through any http.Handler
// in-process, reporting qps and latency quantiles. The generator owns its
// wire structs (a hand-rolled copy of the daemon's request shape) so it
// can be imported by the serve package's own tests without a cycle.
package loadgen

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"time"

	"repro/internal/rng"
)

// Spec parameterizes one deterministic load run. The same Spec over the
// same member set always generates the same query bodies in the same
// order.
type Spec struct {
	// Seed drives pair selection; Queries is the number of requests to
	// generate (default 100) and PairsPerQuery the pairs in each body
	// (default 4).
	Seed          uint64
	Queries       int
	PairsPerQuery int
	// StretchFraction in [0, 1] is the fraction of queries sent to
	// /query/stretch (the rest go to /query/route); Beta is the path-loss
	// exponent those stretch queries carry.
	StretchFraction float64
	Beta            float64
	// Snapshot names the snapshot id to query ("" = current).
	Snapshot string
	// Concurrency is the number of client workers in Run (default 1).
	Concurrency int
}

// withDefaults fills unset fields.
func (sp Spec) withDefaults() Spec {
	if sp.Queries == 0 {
		sp.Queries = 100
	}
	if sp.PairsPerQuery == 0 {
		sp.PairsPerQuery = 4
	}
	if sp.Concurrency == 0 {
		sp.Concurrency = 1
	}
	return sp
}

// Query is one pre-encoded request: the target path and the JSON body the
// daemon will see.
type Query struct {
	// Path is "/query/route" or "/query/stretch"; Body the encoded JSON.
	Path string
	Body []byte
}

// pairSpec mirrors the daemon's pair wire shape.
type pairSpec struct {
	U int32 `json:"u"`
	V int32 `json:"v"`
}

// loadgenStream is the RNG substream the generator draws from, disjoint
// from the build and lifetime substreams.
const loadgenStream = 9001

// Generate synthesizes the deterministic query stream: pairs are drawn
// uniformly from members (both endpoints always members, so route queries
// exercise real structure paths), and every ⌈1/StretchFraction⌉-th query
// is a stretch query. Bodies are encoded once here so Run does zero
// marshaling on the timed path.
func Generate(members []int32, sp Spec) []Query {
	sp = sp.withDefaults()
	r := rng.Sub(rng.Seed(sp.Seed), loadgenStream)
	queries := make([]Query, sp.Queries)
	stretchEvery := 0
	if sp.StretchFraction > 0 {
		stretchEvery = int(1 / sp.StretchFraction)
		if stretchEvery < 1 {
			stretchEvery = 1
		}
	}
	for i := range queries {
		pairs := make([]pairSpec, sp.PairsPerQuery)
		for j := range pairs {
			pairs[j] = pairSpec{
				U: members[r.IntN(len(members))],
				V: members[r.IntN(len(members))],
			}
		}
		stretch := stretchEvery > 0 && i%stretchEvery == 0
		path := "/query/route"
		beta := 0.0
		if stretch {
			path = "/query/stretch"
			beta = sp.Beta
		}
		queries[i] = Query{Path: path, Body: encodeBody(sp.Snapshot, beta, pairs)}
	}
	return queries
}

// encodeBody hand-encodes the query JSON in the daemon's field order —
// deterministic bytes without importing the daemon's types.
func encodeBody(snapshot string, beta float64, pairs []pairSpec) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, `{"snapshot":%q,"beta":%v,"pairs":[`, snapshot, beta)
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"u":%d,"v":%d}`, p.U, p.V)
	}
	b.WriteString("]}")
	return b.Bytes()
}

// Response is one query's outcome: the HTTP status and the exact response
// body, indexed like the Generate stream so callers can byte-compare
// against independently computed answers.
type Response struct {
	Status int
	Body   []byte
}

// Result summarizes one Run.
type Result struct {
	// Queries is the number of requests issued; Failed counts non-200
	// responses.
	Queries int
	Failed  int
	// Elapsed is the wall-clock span of the run; QPS Queries/Elapsed.
	Elapsed time.Duration
	QPS     float64
	// P50 and P99 are per-request latency quantiles (nearest-rank).
	P50 time.Duration
	P99 time.Duration
	// Responses holds every response in query order.
	Responses []Response
}

// Run drives the queries through h in-process (httptest request /
// recorder — no sockets, so the numbers measure the serving stack, not
// the kernel). Workers claim queries by atomic index; responses land at
// the query's own index, so Result.Responses is deterministic even though
// completion order is not.
func Run(h http.Handler, queries []Query, concurrency int) Result {
	if concurrency < 1 {
		concurrency = 1
	}
	res := Result{Queries: len(queries), Responses: make([]Response, len(queries))}
	latencies := make([]time.Duration, len(queries))

	var wg sync.WaitGroup
	next := make(chan int)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := queries[i]
				req := httptest.NewRequest(http.MethodPost, q.Path, bytes.NewReader(q.Body))
				rec := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, req)
				latencies[i] = time.Since(t0)
				res.Responses[i] = Response{Status: rec.Code, Body: rec.Body.Bytes()}
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	res.Elapsed = time.Since(start)

	for _, r := range res.Responses {
		if r.Status != http.StatusOK {
			res.Failed++
		}
	}
	if res.Elapsed > 0 {
		res.QPS = float64(res.Queries) / res.Elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		res.P50 = latencies[n/2]
		res.P99 = latencies[n*99/100]
	}
	return res
}
