package loadgen

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
)

func members(n int) []int32 {
	m := make([]int32, n)
	for i := range m {
		m[i] = int32(i)
	}
	return m
}

// TestGenerateDeterministic pins that the same spec over the same members
// yields byte-identical query streams — the property the e2e and bench
// comparisons stand on.
func TestGenerateDeterministic(t *testing.T) {
	sp := Spec{Seed: 9, Queries: 50, PairsPerQuery: 3, StretchFraction: 0.25, Beta: 3}
	a := Generate(members(100), sp)
	b := Generate(members(100), sp)
	if len(a) != 50 {
		t.Fatalf("generated %d queries, want 50", len(a))
	}
	for i := range a {
		if a[i].Path != b[i].Path || !bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatalf("query %d differs between identical runs", i)
		}
	}
}

// TestGenerateMix verifies the stretch fraction and that bodies decode
// with in-range member pairs.
func TestGenerateMix(t *testing.T) {
	qs := Generate(members(40), Spec{Seed: 1, Queries: 100, PairsPerQuery: 2, StretchFraction: 0.25, Beta: 2.5})
	stretch := 0
	for i, q := range qs {
		var body struct {
			Snapshot string  `json:"snapshot"`
			Beta     float64 `json:"beta"`
			Pairs    []struct {
				U int32 `json:"u"`
				V int32 `json:"v"`
			} `json:"pairs"`
		}
		if err := json.Unmarshal(q.Body, &body); err != nil {
			t.Fatalf("query %d body does not decode: %v", i, err)
		}
		if len(body.Pairs) != 2 {
			t.Fatalf("query %d has %d pairs, want 2", i, len(body.Pairs))
		}
		for _, p := range body.Pairs {
			if p.U < 0 || p.U >= 40 || p.V < 0 || p.V >= 40 {
				t.Fatalf("query %d pair (%d,%d) outside the member range", i, p.U, p.V)
			}
		}
		switch q.Path {
		case "/query/stretch":
			stretch++
			if body.Beta != 2.5 {
				t.Fatalf("stretch query %d carries beta %v, want 2.5", i, body.Beta)
			}
		case "/query/route":
			if body.Beta != 0 {
				t.Fatalf("route query %d carries beta %v, want 0", i, body.Beta)
			}
		default:
			t.Fatalf("query %d has unexpected path %q", i, q.Path)
		}
	}
	if stretch != 25 {
		t.Fatalf("%d stretch queries of 100, want 25", stretch)
	}
}

// TestRunAccounting drives the generator against a canned handler and
// checks the result bookkeeping: per-query response placement, failure
// counting and sane latency quantiles.
func TestRunAccounting(t *testing.T) {
	qs := Generate(members(10), Spec{Seed: 3, Queries: 20, PairsPerQuery: 1})
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.URL.Path == "/query/stretch" {
			w.WriteHeader(http.StatusBadRequest)
		}
		w.Write(body) // echo, so responses are per-query distinguishable
	})
	res := Run(h, qs, 4)
	if res.Queries != 20 || len(res.Responses) != 20 {
		t.Fatalf("accounting: %+v", res)
	}
	for i, r := range res.Responses {
		if !bytes.Equal(r.Body, qs[i].Body) {
			t.Fatalf("response %d landed at the wrong index", i)
		}
	}
	if res.Failed != 0 {
		t.Fatalf("route-only stream reported %d failures", res.Failed)
	}
	if res.QPS <= 0 || res.P99 < res.P50 {
		t.Fatalf("implausible rates: %+v", res)
	}

	// A stream with stretch queries sees the canned 400s counted as failed.
	qs = Generate(members(10), Spec{Seed: 3, Queries: 20, PairsPerQuery: 1, StretchFraction: 0.5, Beta: 3})
	res = Run(h, qs, 2)
	if res.Failed != 10 {
		t.Fatalf("failed %d, want 10", res.Failed)
	}
}
