package energy

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// gridInstance builds a k×k unit grid (4-neighborhood) — enough path
// diversity for local repair to have alternatives.
func gridInstance(k int) (*graph.CSR, []geom.Point) {
	b := graph.NewBuilder(k * k)
	pos := make([]geom.Point, k*k)
	for y := 0; y < k; y++ {
		for x := 0; x < k; x++ {
			i := int32(y*k + x)
			pos[i] = geom.Pt(float64(x), float64(y))
			if x+1 < k {
				b.AddEdgeUnique(i, i+1)
			}
			if y+1 < k {
				b.AddEdgeUnique(i, i+int32(k))
			}
		}
	}
	return b.Build(), pos
}

// TestNilFaultsBitIdentical pins the compatibility guarantee: a Spec with
// Faults nil (and either repair policy's zero value) produces exactly the
// same report as the pre-fault simulator, draw for draw.
func TestNilFaultsBitIdentical(t *testing.T) {
	g, pos := gridInstance(6)
	spec := lineSpec()
	spec.Rate = 0.5 // exercise the stochastic traffic path
	a, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	spec2 := spec
	spec2.Faults = nil
	spec2.Repair = RepairRebuild
	b, err := SimulateLifetime(g, pos, nil, []int32{0}, spec2, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.FirstDeath != b.FirstDeath ||
		a.Delivered != b.Delivered || a.TotalSpent != b.TotalSpent {
		t.Fatalf("fault-free runs diverged: %+v vs %+v", a, b)
	}
	// An empty (but non-nil) schedule must also change nothing: LossAt is 0
	// every round, so no extra draws happen.
	spec3 := spec
	spec3.Faults = &fault.Schedule{}
	c, err := SimulateLifetime(g, pos, nil, []int32{0}, spec3, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != c.Rounds || a.Delivered != c.Delivered || a.TotalSpent != c.TotalSpent {
		t.Fatalf("empty schedule diverged: rounds %d vs %d, delivered %d vs %d",
			a.Rounds, c.Rounds, a.Delivered, c.Delivered)
	}
}

// TestCrashStopAtRoundBoundary: a scheduled crash kills the victim at the
// boundary entering its round, regardless of battery charge, counts in
// Crashed, and sets FirstDeath.
func TestCrashStopAtRoundBoundary(t *testing.T) {
	g, pos := lineInstance()
	spec := lineSpec()
	spec.Faults = &fault.Schedule{Crashes: []fault.Event{{Round: 5, Node: 2}}}
	rep, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed != 1 {
		t.Fatalf("Crashed = %d, want 1", rep.Crashed)
	}
	if rep.FirstDeath != 5 {
		t.Fatalf("FirstDeath = %d, want the crash round 5", rep.FirstDeath)
	}
	// Node 2's crash severs node 3: rounds 1–4 deliver 3 reports each, from
	// round 5 on only node 1 reports (node 3 is alive but routeless under
	// full rebuild — its packets drop).
	if rep.Alive[3] != 1.0 || rep.Alive[4] == 1.0 {
		t.Fatalf("alive curve around the crash: %v", rep.Alive[:6])
	}
	if rep.Dropped == 0 {
		t.Fatal("severed node's reports were not dropped")
	}
}

// TestCrashedSinkStopsCollecting: crashing the only sink routing-kills the
// simulation — the forest seeds only from alive sinks.
func TestCrashedSinkStopsCollecting(t *testing.T) {
	g, pos := lineInstance()
	spec := lineSpec()
	spec.Faults = &fault.Schedule{Crashes: []fault.Event{{Round: 3, Node: 0}}}
	rep, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds > 3 {
		t.Fatalf("simulation ran %d rounds past the sink's crash at round 3", rep.Rounds)
	}
}

// TestMessageLossShiftsDeliveryRatio: per-hop Bernoulli loss turns
// delivered packets into Lost ones without touching Attempted, and the
// delivery ratio drops accordingly.
func TestMessageLossShiftsDeliveryRatio(t *testing.T) {
	g, pos := gridInstance(6)
	spec := lineSpec()
	spec.MaxRounds = 50
	base, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	spec.Faults = (&fault.Schedule{}).WithLoss(0.2)
	lossy, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if lossy.Lost == 0 {
		t.Fatal("20% loss produced no lost packets")
	}
	if lossy.Attempted != lossy.Delivered+lossy.Dropped+lossy.Lost {
		t.Fatalf("accounting: %d != %d + %d + %d",
			lossy.Attempted, lossy.Delivered, lossy.Dropped, lossy.Lost)
	}
	if lossy.DeliveryRatio() >= base.DeliveryRatio() {
		t.Fatalf("loss did not reduce delivery ratio: %v vs %v",
			lossy.DeliveryRatio(), base.DeliveryRatio())
	}
	// Burst windows push loss higher still inside the window.
	spec.Faults = spec.Faults.WithBurst(1, 50, 0.5)
	burst, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if burst.DeliveryRatio() >= lossy.DeliveryRatio() {
		t.Fatalf("burst window did not reduce delivery further: %v vs %v",
			burst.DeliveryRatio(), lossy.DeliveryRatio())
	}
}

// TestRepairLocalKeepsServing: after an interior crash on a grid, local
// repair re-attaches the orphaned subtree and keeps packets flowing —
// delivery continues (graceful degradation), matching full rebuild on
// served fraction direction.
func TestRepairLocalKeepsServing(t *testing.T) {
	g, pos := gridInstance(6)
	spec := lineSpec()
	spec.MaxRounds = 30
	spec.Capacity = 50000 // batteries must outlive the crash schedule
	// Crash two nodes near the sink's corner at round 5; sink neighbor 6
	// survives, so every orphan has a detour.
	sched := &fault.Schedule{Crashes: []fault.Event{{Round: 5, Node: 1}, {Round: 5, Node: 7}}}
	for _, repair := range []RepairPolicy{RepairRebuild, RepairLocal} {
		spec.Faults = sched
		spec.Repair = repair
		rep, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		if rep.Crashed != 2 {
			t.Fatalf("repair=%d: Crashed = %d, want 2", repair, rep.Crashed)
		}
		// Nodes 1 and 6 dead: the rest of the grid still reaches sink 0 via
		// the diagonal neighbors' detours — both policies must keep serving.
		if got := rep.Served[len(rep.Served)-1]; got < 0.8 {
			t.Fatalf("repair=%d: served fell to %v after a repairable crash", repair, got)
		}
		if rep.Rounds < 30 {
			t.Fatalf("repair=%d: simulation ended early at round %d", repair, rep.Rounds)
		}
	}
}

// TestRepairLocalDeterministic: local repair is a pure function of the
// alive set and the prior forest — identical seeds give identical reports.
func TestRepairLocalDeterministic(t *testing.T) {
	g, pos := gridInstance(8)
	spec := lineSpec()
	spec.MaxRounds = 60
	spec.Capacity = 50000 // outlive the crash schedule
	spec.Repair = RepairLocal
	victims := []int32{9, 18, 27, 36, 45}
	spec.Faults = fault.CrashSchedule(victims, 1.0, 4, 1)
	a, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Delivered != b.Delivered || a.Dropped != b.Dropped ||
		a.TotalSpent != b.TotalSpent || a.Crashed != b.Crashed {
		t.Fatalf("local repair nondeterministic: %+v vs %+v", a, b)
	}
	if a.Crashed != len(victims) {
		t.Fatalf("Crashed = %d, want %d", a.Crashed, len(victims))
	}
}

// TestResidualJainReported: the report carries Jain's index over residual
// energy, in (0, 1], and equal to ~1 before any asymmetric drain.
func TestResidualJainReported(t *testing.T) {
	g, pos := gridInstance(4)
	spec := lineSpec()
	spec.MaxRounds = 3
	rep, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(rep.ResidualJain) || rep.ResidualJain <= 0 || rep.ResidualJain > 1 {
		t.Fatalf("ResidualJain = %v, want in (0, 1]", rep.ResidualJain)
	}
	// Relays near the sink drain faster even in 3 rounds, but consumption is
	// a small fraction of capacity, so the index stays high.
	if rep.ResidualJain < 0.7 {
		t.Fatalf("ResidualJain = %v after 3 rounds, want near 1", rep.ResidualJain)
	}
}
