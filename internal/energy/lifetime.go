package energy

import (
	"errors"
	"math"
	"math/rand/v2"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/spatial"
	"repro/internal/stats"
)

// Spec configures a lifetime simulation.
type Spec struct {
	// Model prices every debit.
	Model Model
	// Capacity is the initial charge of every battery-powered node.
	Capacity float64
	// PacketBits is the payload size of one sensor report.
	PacketBits float64
	// Rate is the expected number of reports per source per round. The
	// integer part sends unconditionally; the fractional part is a Bernoulli
	// draw, so Rate 0.5 means each source reports every other round on
	// average and Rate 2 means two reports every round.
	Rate float64
	// MaxRounds caps the simulation (≤ 0 means 4096).
	MaxRounds int
	// CoverageTarget is the served-fraction level defining CoverageLifetime
	// (≤ 0 means 0.5): a round counts as covered while at least this
	// fraction of the original sources is alive with a live route to a sink.
	CoverageTarget float64
	// Rotation enables member rotation, the paper's expendable-members
	// story: when a role's battery empties and it has spares left, a
	// co-located standby node with a fresh battery takes the role over
	// instead of the role dying.
	Rotation bool
	// Spares gives each node's standby pool size (indexed like the position
	// slice); nil means no spares anywhere. Only consulted when Rotation is
	// set.
	Spares []int
	// Faults, when non-nil, injects the fault schedule: crash-stop failures
	// are applied at the round boundary entering their scheduled round,
	// before traffic, and every forwarding hop is additionally lost with the
	// schedule's per-round loss rate (tx energy spent, rx not — the simnet
	// drop-accounting contract). A nil schedule changes nothing, draws
	// nothing from the generator, and keeps results bit-identical.
	Faults *fault.Schedule
	// Repair selects how routes are fixed after deaths (battery or crash);
	// the zero value is the historical full rebuild.
	Repair RepairPolicy
}

// RepairPolicy selects how the uplink forest is fixed after the alive set
// shrinks.
type RepairPolicy int

const (
	// RepairRebuild recomputes every route with a full multi-source BFS from
	// the alive sinks — globally hop-optimal, the historical behavior and
	// the default.
	RepairRebuild RepairPolicy = iota
	// RepairLocal patches only the broken region — graceful degradation:
	// nodes whose uplink chain still reaches an alive sink keep their
	// routes untouched; each orphaned node re-attaches by a fresh radio
	// link to the geometrically nearest intact node (found through the
	// kinetic spatial index, distance ties broken by index), and orphans
	// stay routeless only when no intact node is left at all. Routes may
	// drift off hop-optimal and attachment links can exceed the original
	// edge lengths, which is the price of locality the R02 scenario
	// quantifies through the energy model's d^β tx pricing.
	RepairLocal
)

// DefaultSpec returns the reference lifetime configuration used by the Q**
// scenarios: the default radio model, unit packets at rate 1/2, and a
// battery sized so that mid-size member graphs live for a few hundred
// rounds.
func DefaultSpec() Spec {
	return Spec{
		Model:      DefaultModel(),
		Capacity:   2000,
		PacketBits: 1,
		Rate:       0.5,
		MaxRounds:  2000,
	}
}

// Report is the outcome of a lifetime simulation. Curves are indexed by
// round (starting at round 1) and truncated at Rounds.
type Report struct {
	// Rounds is the number of simulated rounds.
	Rounds int
	// FirstDeath is the round of the first permanent role death (time to
	// first death, the classical lifetime metric), or −1 if nothing died.
	FirstDeath int
	// CoverageLifetime counts the rounds before the served fraction first
	// fell below the coverage target — the QoS lifetime.
	CoverageLifetime int
	// Attempted, Delivered and Dropped count report packets over the whole
	// run; Dropped are reports by sources with no live route to any sink.
	Attempted, Delivered, Dropped int
	// Lost counts report packets eaten in flight by the fault schedule's
	// message loss (attempted, not delivered, tx spent on the lossy hop).
	Lost int
	// Crashed counts nodes killed by the fault schedule's crash-stop events
	// (battery deaths are not included).
	Crashed int
	// Rotations counts spare take-overs (0 unless Spec.Rotation).
	Rotations int
	// Alive holds the per-round fraction of battery-powered roles still
	// alive.
	Alive []float64
	// Largest holds the per-round largest-surviving-component fraction over
	// all participants.
	Largest []float64
	// Served holds the per-round fraction of original sources alive with a
	// route to a sink.
	Served []float64
	// ResidualMean, ResidualMin and ResidualSpread summarize the residual
	// energy fraction of every role at the end of the run (spares included:
	// a role's budget is (1+spares)·Capacity under rotation). Spread is the
	// population standard deviation — the evenness-of-consumption metric.
	ResidualMean, ResidualMin, ResidualSpread float64
	// SpreadAtFirstDeath is the residual spread captured the round the first
	// role died (NaN if nothing died): low spread means consumption was
	// distributed evenly up to the first loss.
	SpreadAtFirstDeath float64
	// ResidualJain is Jain's fairness index over the end-of-run residual
	// energy fractions: 1 means perfectly even consumption.
	ResidualJain float64
	// TotalSpent is the total energy demanded of all batteries.
	TotalSpent float64
}

// AliveAtEnd returns the final alive fraction (1 if no rounds ran).
func (r *Report) AliveAtEnd() float64 {
	if len(r.Alive) == 0 {
		return 1
	}
	return r.Alive[len(r.Alive)-1]
}

// LargestAtEnd returns the final largest-component fraction (1 if no rounds
// ran).
func (r *Report) LargestAtEnd() float64 {
	if len(r.Largest) == 0 {
		return 1
	}
	return r.Largest[len(r.Largest)-1]
}

// DeliveryRatio returns Delivered / Attempted (1 if nothing was attempted).
func (r *Report) DeliveryRatio() float64 {
	if r.Attempted == 0 {
		return 1
	}
	return float64(r.Delivered) / float64(r.Attempted)
}

// SimulateLifetime runs the round-based data-gathering simulation on the
// structure: every round each alive source reports Spec.Rate packets on
// average toward its nearest sink along hop-shortest paths, each hop
// debiting the sender's tx cost (PacketBits·(c + d^β)) and the receiver's
// rx cost; every powered node pays the idle drain; batteries that empty die
// at the round boundary (or rotate in a spare), and routes are recomputed
// whenever the alive set changes. nodes lists the participating vertices
// (nil means all of g); sinks are the data collectors, modeled as
// mains-powered (no battery). The simulation is fully serial and
// deterministic in the generator: the same seed gives the same report at
// any GOMAXPROCS.
//
// Relays that run dry mid-round keep forwarding until the round boundary —
// batteries clamp at empty and the node dies at end of round — so within a
// round the traffic pattern depends only on the alive set at the round
// start, not on the order sources are drained in.
func SimulateLifetime(g *graph.CSR, pos []geom.Point, nodes, sinks []int32,
	spec Spec, rng *rand.Rand) (*Report, error) {
	s, err := newSim(g, pos, nodes, sinks, spec)
	if err != nil {
		return nil, err
	}
	for s.step(rng) {
	}
	return s.report(), nil
}

// MobileNetwork is a live structure a lifetime simulation can drain over:
// node positions move and edges are repaired while batteries deplete.
// Implementations typically wrap an incremental maintainer (core.Kinetic or
// hng.Kinetic) replaying a mobility trajectory. The vertex count must stay
// constant across Steps; motion and repair only change positions and edges.
type MobileNetwork interface {
	// Step advances the structure to the given 1-based round and reports
	// whether anything observable changed (positions or edges). It is
	// called exactly once per round, in increasing round order.
	Step(round int) bool
	// Died informs the structure of a permanent node death — battery
	// exhaustion or crash — so subsequent repairs route around the node.
	Died(u int32)
	// Graph returns the current topology. Only consulted after a Step that
	// reported a change (and once at start).
	Graph() *graph.CSR
	// Positions returns the current node positions, valid until the next
	// Step.
	Positions() []geom.Point
}

// SimulateMobileLifetime runs the lifetime simulation over a live mobile
// structure: entering every round the network steps its trajectory and
// repairs itself, and whenever it reports a change the routing forest is
// rebuilt over the fresh edges and positions before traffic flows. Deaths
// discovered by the simulation are reported back through Died, closing the
// motion → repair → drain → death loop the M03 scenario measures. As with
// the static entry point, the run is serial and deterministic in the
// generator.
func SimulateMobileLifetime(net MobileNetwork, nodes, sinks []int32,
	spec Spec, rng *rand.Rand) (*Report, error) {
	s, err := newSim(net.Graph(), net.Positions(), nodes, sinks, spec)
	if err != nil {
		return nil, err
	}
	s.mobile = net
	for s.step(rng) {
	}
	return s.report(), nil
}

// sim is the preallocated simulation state: after newSim, rounds in which
// nothing dies allocate nothing (the allocation gate in lifetime_test.go
// pins this), and rounds with deaths allocate only inside the
// largest-component recount.
type sim struct {
	g     *graph.CSR
	pos   []geom.Point
	spec  Spec
	nodes []int32 // participants (sinks included)

	isSink  []bool
	powered []bool // battery-powered participant (participant and not sink)
	alive   []bool
	spares  []int32 // remaining spare take-overs per node
	bats    []Battery

	// Routing state: per-node uplink toward the nearest alive sink.
	next     []int32   // parent toward sink; −1 = no route
	nextCost []float64 // tx cost of one PacketBits packet along the uplink
	queue    []int32
	dirty    bool // alive set changed since the last route build

	// Fault state: cursor into the schedule's sorted crashes, counters, and
	// the local-repair scratch (allocated on first repair).
	crashCursor  int
	crashed      int
	lost         int
	routesBuilt  bool
	repairStatus []int8 // 0 unknown, 1 chain intact, 2 chain broken
	repairWalk   []int32

	// Mobility state: the live structure (nil for static runs), the kinetic
	// index local repair re-attaches through, and staleness flags. The grid
	// is built on first local repair and kept in sync with deaths; motion
	// invalidates it wholesale (motionDirty also forces the next route fix
	// to be a full rebuild — every link length changed, so there is nothing
	// local to preserve).
	mobile      MobileNetwork
	grid        *spatial.DynGrid
	knn         spatial.KNNScratch
	gridStale   bool
	motionDirty bool

	nPowered    int // battery-powered roles
	nAlive      int // alive battery-powered roles
	largestFrac float64

	round                         int
	firstDeath                    int
	rotations                     int
	attempted, delivered, dropped int
	spreadAtFirstDeath            float64

	aliveCurve, largestCurve, servedCurve []float64

	rxCost   float64
	maxHops  int
	coverage float64 // target
	ended    bool
}

func newSim(g *graph.CSR, pos []geom.Point, nodes, sinks []int32, spec Spec) (*sim, error) {
	if g.N != len(pos) {
		return nil, errors.New("energy: graph and position counts differ")
	}
	if len(sinks) == 0 {
		return nil, errors.New("energy: need at least one sink")
	}
	if spec.Capacity <= 0 {
		return nil, errors.New("energy: battery capacity must be positive")
	}
	if spec.PacketBits <= 0 {
		return nil, errors.New("energy: packet size must be positive")
	}
	if spec.Rate < 0 {
		return nil, errors.New("energy: negative report rate")
	}
	if spec.MaxRounds <= 0 {
		spec.MaxRounds = 4096
	}
	if spec.CoverageTarget <= 0 {
		spec.CoverageTarget = 0.5
	}
	if nodes == nil {
		nodes = make([]int32, g.N)
		for i := range nodes {
			nodes[i] = int32(i)
		}
	}
	s := &sim{
		g: g, pos: pos, spec: spec, nodes: nodes,
		isSink:             make([]bool, g.N),
		powered:            make([]bool, g.N),
		alive:              make([]bool, g.N),
		spares:             make([]int32, g.N),
		bats:               make([]Battery, g.N),
		next:               make([]int32, g.N),
		nextCost:           make([]float64, g.N),
		firstDeath:         -1,
		spreadAtFirstDeath: math.NaN(),
		rxCost:             spec.Model.RxCost(spec.PacketBits),
		maxHops:            g.N + 1,
		coverage:           spec.CoverageTarget,
	}
	inNodes := make([]bool, g.N)
	for _, v := range nodes {
		inNodes[v] = true
	}
	for _, v := range sinks {
		if v < 0 || int(v) >= g.N || !inNodes[v] {
			return nil, errors.New("energy: sink outside the participant set")
		}
		s.isSink[v] = true
	}
	for _, v := range nodes {
		s.alive[v] = true
		if !s.isSink[v] {
			s.powered[v] = true
			s.nPowered++
			s.bats[v] = NewBattery(spec.Capacity)
			if spec.Rotation && spec.Spares != nil {
				s.spares[v] = int32(spec.Spares[v])
			}
		}
	}
	if s.nPowered == 0 {
		return nil, errors.New("energy: no battery-powered nodes to simulate")
	}
	s.nAlive = s.nPowered
	s.aliveCurve = make([]float64, 0, spec.MaxRounds)
	s.largestCurve = make([]float64, 0, spec.MaxRounds)
	s.servedCurve = make([]float64, 0, spec.MaxRounds)
	s.dirty = true
	return s, nil
}

// rebuildRoutes recomputes the uplink forest by a multi-source BFS from the
// sinks over the alive participant subgraph: next[u] is u's parent toward
// its nearest sink, nextCost[u] the precomputed tx cost of forwarding one
// packet along that edge (symmetric in the endpoints, so the parent-side
// edge scan prices the child's uplink).
func (s *sim) rebuildRoutes() {
	m := s.spec.Model
	bits := s.spec.PacketBits
	for _, v := range s.nodes {
		s.next[v] = -1
	}
	q := s.queue[:0]
	for _, v := range s.nodes {
		// A crashed sink stops collecting: only alive sinks seed the forest.
		if s.isSink[v] && s.alive[v] {
			s.next[v] = v
			q = append(q, v)
		}
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		for _, v := range s.g.Neighbors(u) {
			if !s.alive[v] || s.next[v] >= 0 {
				continue
			}
			s.next[v] = u
			s.nextCost[v] = m.TxCost(bits, s.pos[u].Dist(s.pos[v]))
			q = append(q, v)
		}
	}
	s.queue = q
	s.dirty = false
	s.routesBuilt = true
}

// applyCrashes executes every crash-stop event scheduled at the boundary
// entering the upcoming round (s.round+1): the victim's battery state is
// irrelevant — the node simply stops. Crashes count toward FirstDeath and
// trigger the same route invalidation and component recount as battery
// deaths.
func (s *sim) applyCrashes() {
	evs := s.spec.Faults.Crashes
	killed := 0
	for s.crashCursor < len(evs) && evs[s.crashCursor].Round <= s.round+1 {
		u := evs[s.crashCursor].Node
		s.crashCursor++
		if u < 0 || int(u) >= s.g.N || !s.alive[u] {
			continue
		}
		s.alive[u] = false
		s.noteDeath(u)
		if s.powered[u] {
			s.nAlive--
		}
		s.crashed++
		killed++
	}
	if killed == 0 {
		return
	}
	s.dirty = true
	if s.firstDeath < 0 {
		s.firstDeath = s.round + 1
		s.spreadAtFirstDeath = s.residualSpread()
	}
	s.largestFrac = float64(graph.LargestComponentWhere(s.g, s.nodes,
		func(u int32) bool { return s.alive[u] })) / float64(len(s.nodes))
}

// repairRoutes is the RepairLocal alternative to rebuildRoutes: it walks
// each alive node's uplink chain once (memoized per invocation), keeps
// every route that still reaches an alive sink, orphans the rest, and
// re-attaches each orphan to the geometrically nearest intact node through
// the kinetic spatial index (distance ties broken by index — the index's
// deterministic contract). Fully deterministic: the orphan scan follows
// participant order and each attachment is a pure function of the
// positions and the intact set. Orphans stay routeless only when nothing
// intact is left. The attachment forest stays acyclic because orphans only
// ever point at already-intact nodes.
func (s *sim) repairRoutes() {
	if s.repairStatus == nil {
		s.repairStatus = make([]int8, s.g.N)
	}
	if s.grid == nil || s.gridStale {
		s.buildGrid()
	}
	status := s.repairStatus
	for _, v := range s.nodes {
		status[v] = 0
	}
	// Phase 1: classify every alive non-sink node's chain; orphan the broken.
	for _, v := range s.nodes {
		if !s.alive[v] {
			s.next[v] = -1
			continue
		}
		if s.isSink[v] {
			continue
		}
		if !s.chainIntact(v, status) {
			s.next[v] = -1
		}
	}
	m := s.spec.Model
	bits := s.spec.PacketBits
	// Phase 2: each orphan re-attaches to the nearest intact node. The
	// expanding-ring search costs O(local density), not O(intact nodes) —
	// the locality the repair policy promises.
	intact := func(w int32) bool {
		return s.alive[w] && (status[w] == 1 || s.isSink[w])
	}
	for _, v := range s.nodes {
		if !s.alive[v] || s.isSink[v] || s.next[v] >= 0 {
			continue
		}
		w := s.grid.NearestWhere(s.pos[v], &s.knn, intact)
		if w < 0 {
			continue
		}
		s.next[v] = w
		s.nextCost[v] = m.TxCost(bits, s.pos[w].Dist(s.pos[v]))
	}
	s.dirty = false
}

// buildGrid (re)indexes the current participant positions for the local
// repair's nearest-intact search. Dead and non-participant slots are
// removed up front; later deaths are pruned incrementally by noteDeath.
func (s *sim) buildGrid() {
	lo := geom.Pt(math.Inf(1), math.Inf(1))
	hi := geom.Pt(math.Inf(-1), math.Inf(-1))
	for _, v := range s.nodes {
		lo.X = math.Min(lo.X, s.pos[v].X)
		lo.Y = math.Min(lo.Y, s.pos[v].Y)
		hi.X = math.Max(hi.X, s.pos[v].X)
		hi.Y = math.Max(hi.Y, s.pos[v].Y)
	}
	side := math.Max(hi.X-lo.X, hi.Y-lo.Y)
	cell := side / math.Sqrt(float64(len(s.nodes)))
	if cell <= 0 {
		cell = 1
	}
	s.grid = spatial.NewDynGrid(s.pos, geom.Rect{Min: lo, Max: hi}, cell)
	for i := 0; i < s.g.N; i++ {
		if !s.alive[int32(i)] {
			s.grid.Remove(int32(i))
		}
	}
	s.gridStale = false
}

// noteDeath keeps the auxiliary structures in sync with a permanent death:
// the repair index drops the slot and a live mobile structure is told to
// route around it.
func (s *sim) noteDeath(u int32) {
	if s.grid != nil {
		s.grid.Remove(u)
	}
	if s.mobile != nil {
		s.mobile.Died(u)
	}
}

// chainIntact reports whether v's uplink chain reaches an alive sink,
// memoizing the verdict for every node on the walked prefix. The forest is
// acyclic (orphans only ever attach to already-intact nodes), so the walk
// terminates.
func (s *sim) chainIntact(v int32, status []int8) bool {
	walk := s.repairWalk[:0]
	cur := v
	intact := false
	for {
		if status[cur] != 0 {
			intact = status[cur] == 1
			break
		}
		walk = append(walk, cur)
		if !s.alive[cur] {
			break
		}
		if s.isSink[cur] {
			intact = true
			break
		}
		w := s.next[cur]
		if w < 0 || !s.alive[w] {
			break
		}
		cur = w
	}
	verdict := int8(2)
	if intact {
		verdict = 1
	}
	for _, u := range walk {
		status[u] = verdict
	}
	s.repairWalk = walk
	return intact
}

// served returns the fraction of original (powered) sources currently alive
// with a route to a sink.
func (s *sim) served() float64 {
	n := 0
	for _, v := range s.nodes {
		if s.powered[v] && s.alive[v] && s.next[v] >= 0 {
			n++
		}
	}
	return float64(n) / float64(s.nPowered)
}

// step simulates one round; it returns false once the simulation is over
// (round cap, total death, or no source can reach a sink anymore).
func (s *sim) step(rng *rand.Rand) bool {
	if s.ended || s.round >= s.spec.MaxRounds {
		return false
	}
	if s.mobile != nil && s.mobile.Step(s.round+1) {
		s.g = s.mobile.Graph()
		s.pos = s.mobile.Positions()
		s.dirty = true
		s.gridStale = true
		s.motionDirty = true
	}
	if s.spec.Faults != nil {
		s.applyCrashes()
	}
	if s.dirty {
		if s.spec.Repair == RepairLocal && s.routesBuilt && !s.motionDirty {
			s.repairRoutes()
		} else {
			s.rebuildRoutes()
			s.motionDirty = false
		}
	}
	srv := s.served()
	if srv == 0 {
		// Routing-dead: no source can reach a sink; further rounds would only
		// replay the idle drain.
		s.ended = true
		return false
	}
	s.round++

	// Per-hop loss rate for this round. A nil schedule (and a zero rate)
	// draws nothing extra from the generator, keeping fault-free runs
	// bit-identical to the historical simulation.
	lossRate := 0.0
	if s.spec.Faults != nil {
		lossRate = s.spec.Faults.LossAt(s.round)
	}

	// Traffic: serial over sources in index order, all randomness from the
	// one generator — deterministic at any GOMAXPROCS.
	for _, u := range s.nodes {
		if !s.powered[u] || !s.alive[u] {
			continue
		}
		reports := int(s.spec.Rate)
		if frac := s.spec.Rate - float64(reports); frac > 0 && rng.Float64() < frac {
			reports++
		}
		for r := 0; r < reports; r++ {
			s.attempted++
			if s.next[u] < 0 {
				s.dropped++
				continue
			}
			v := u
			arrived := true
			for hops := 0; !s.isSink[v] && hops < s.maxHops; hops++ {
				w := s.next[v]
				s.bats[v].Drain(s.nextCost[v])
				if lossRate > 0 && rng.Float64() < lossRate {
					// Lost in flight: the sender's tx is spent, the receiver
					// pays nothing — the simnet drop-accounting contract.
					s.lost++
					arrived = false
					break
				}
				if s.powered[w] {
					s.bats[w].Drain(s.rxCost)
				}
				v = w
			}
			if arrived {
				s.delivered++
			}
		}
	}

	// Idle drain, then the round-boundary death/rotation scan.
	idle := s.spec.Model.Idle
	deaths := 0
	for _, u := range s.nodes {
		if !s.powered[u] || !s.alive[u] {
			continue
		}
		if idle > 0 {
			s.bats[u].Drain(idle)
		}
		if !s.bats[u].Dead() {
			continue
		}
		if s.spec.Rotation && s.spares[u] > 0 {
			// A standby neighbor with a fresh battery takes the role over.
			s.spares[u]--
			s.rotations++
			spent := s.bats[u].Spent
			s.bats[u] = NewBattery(s.spec.Capacity)
			s.bats[u].Spent = spent
			continue
		}
		s.alive[u] = false
		s.noteDeath(u)
		s.nAlive--
		deaths++
	}
	if deaths > 0 {
		s.dirty = true
		if s.firstDeath < 0 {
			s.firstDeath = s.round
			s.spreadAtFirstDeath = s.residualSpread()
		}
		s.largestFrac = float64(graph.LargestComponentWhere(s.g, s.nodes,
			func(u int32) bool { return s.alive[u] })) / float64(len(s.nodes))
	} else if s.round == 1 {
		s.largestFrac = float64(graph.LargestComponentWhere(s.g, s.nodes,
			func(u int32) bool { return s.alive[u] })) / float64(len(s.nodes))
	}

	s.aliveCurve = append(s.aliveCurve, float64(s.nAlive)/float64(s.nPowered))
	s.largestCurve = append(s.largestCurve, s.largestFrac)
	s.servedCurve = append(s.servedCurve, srv)
	if s.nAlive == 0 {
		s.ended = true
	}
	return !s.ended
}

// residual returns role u's remaining energy fraction: current charge plus
// unused spare batteries over the role's total budget.
func (s *sim) residual(u int32) float64 {
	budget := s.spec.Capacity
	if s.spec.Rotation && s.spec.Spares != nil {
		budget *= float64(1 + s.spec.Spares[u])
	}
	return (s.bats[u].Charge + float64(s.spares[u])*s.spec.Capacity) / budget
}

// residualSpread returns the population standard deviation of the residual
// fractions over all powered roles.
func (s *sim) residualSpread() float64 {
	var sum, sumsq float64
	for _, u := range s.nodes {
		if !s.powered[u] {
			continue
		}
		r := s.residual(u)
		sum += r
		sumsq += r * r
	}
	n := float64(s.nPowered)
	mean := sum / n
	v := sumsq/n - mean*mean
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

func (s *sim) report() *Report {
	rep := &Report{
		Rounds:             s.round,
		FirstDeath:         s.firstDeath,
		Attempted:          s.attempted,
		Delivered:          s.delivered,
		Dropped:            s.dropped,
		Lost:               s.lost,
		Crashed:            s.crashed,
		Rotations:          s.rotations,
		Alive:              s.aliveCurve,
		Largest:            s.largestCurve,
		Served:             s.servedCurve,
		SpreadAtFirstDeath: s.spreadAtFirstDeath,
	}
	rep.CoverageLifetime = s.round
	for i, f := range s.servedCurve {
		if f < s.coverage {
			rep.CoverageLifetime = i
			break
		}
	}
	var sum float64
	min := math.Inf(1)
	residuals := make([]float64, 0, s.nPowered)
	for _, u := range s.nodes {
		if !s.powered[u] {
			continue
		}
		r := s.residual(u)
		sum += r
		if r < min {
			min = r
		}
		residuals = append(residuals, r)
	}
	rep.ResidualMean = sum / float64(s.nPowered)
	rep.ResidualMin = min
	rep.ResidualSpread = s.residualSpread()
	rep.ResidualJain = stats.JainFairness(residuals)
	for _, u := range s.nodes {
		if s.powered[u] {
			rep.TotalSpent += s.bats[u].Spent
		}
	}
	return rep
}

// UniformSpares builds the uniform spare allocation the SENS expendable-
// members story implies: total deployed nodes minus active members, divided
// evenly over the members. It returns a per-node slice (indexed 0..n-1,
// nonzero only at members) for Spec.Spares, or nil when there is nothing to
// spare.
func UniformSpares(n int, members []int32) []int {
	if len(members) == 0 || n <= len(members) {
		return nil
	}
	per := (n - len(members)) / len(members)
	if per == 0 {
		return nil
	}
	out := make([]int, n)
	for _, v := range members {
		out[v] = per
	}
	return out
}

// QuadrantSinks returns up to four distinct participants, each nearest the
// centroid of one quadrant of the participants' bounding box — the
// deterministic multi-gateway choice the Q** scenarios use. Spreading the
// gateways breaks the single-funnel energy hole a lone central sink
// creates (every packet squeezing through its ≤ 4 neighbors under the
// degree bound P1). nodes nil means all vertices.
func QuadrantSinks(pos []geom.Point, nodes []int32) []int32 {
	if nodes == nil {
		nodes = make([]int32, len(pos))
		for i := range nodes {
			nodes[i] = int32(i)
		}
	}
	if len(nodes) == 0 {
		return nil
	}
	lo := geom.Pt(math.Inf(1), math.Inf(1))
	hi := geom.Pt(math.Inf(-1), math.Inf(-1))
	for _, v := range nodes {
		lo.X = math.Min(lo.X, pos[v].X)
		lo.Y = math.Min(lo.Y, pos[v].Y)
		hi.X = math.Max(hi.X, pos[v].X)
		hi.Y = math.Max(hi.Y, pos[v].Y)
	}
	var sinks []int32
	for _, fx := range [2]float64{0.25, 0.75} {
		for _, fy := range [2]float64{0.25, 0.75} {
			c := geom.Pt(lo.X+fx*(hi.X-lo.X), lo.Y+fy*(hi.Y-lo.Y))
			best, bestD := int32(-1), math.Inf(1)
			for _, v := range nodes {
				if d := pos[v].Dist(c); d < bestD {
					best, bestD = v, d
				}
			}
			dup := false
			for _, s := range sinks {
				if s == best {
					dup = true
				}
			}
			if !dup {
				sinks = append(sinks, best)
			}
		}
	}
	return sinks
}

// NearestSink returns the participant nearest the centroid of the
// participant positions — the deterministic single-gateway choice (a
// gateway in the middle of the field) — or −1 for an empty participant
// set. nodes nil means all vertices.
func NearestSink(pos []geom.Point, nodes []int32) int32 {
	if nodes == nil {
		nodes = make([]int32, len(pos))
		for i := range nodes {
			nodes[i] = int32(i)
		}
	}
	if len(nodes) == 0 {
		return -1
	}
	var cx, cy float64
	for _, v := range nodes {
		cx += pos[v].X
		cy += pos[v].Y
	}
	c := geom.Pt(cx/float64(len(nodes)), cy/float64(len(nodes)))
	best, bestD := nodes[0], math.Inf(1)
	for _, v := range nodes {
		if d := pos[v].Dist(c); d < bestD {
			best, bestD = v, d
		}
	}
	return best
}
