package energy

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/simnet"
)

func TestModelCosts(t *testing.T) {
	m := Model{TxElec: 2, TxAmp: 3, RxElec: 5, Beta: 2, Idle: 0.5}
	if got, want := m.TxCost(4, 2), 4*(2+3*4.0); got != want {
		t.Errorf("TxCost = %v, want %v", got, want)
	}
	if got, want := m.RxCost(4), 20.0; got != want {
		t.Errorf("RxCost = %v, want %v", got, want)
	}
	// β applies to the distance, not the bits.
	m.Beta = 3
	if got, want := m.TxCost(1, 2), 1*(2+3*8.0); got != want {
		t.Errorf("TxCost(β=3) = %v, want %v", got, want)
	}
}

func TestBatteryDrainClampsAtEmpty(t *testing.T) {
	b := NewBattery(10)
	if !b.Drain(4) || b.Dead() {
		t.Fatal("battery died early")
	}
	if b.Drain(7) {
		t.Fatal("overdrain reported alive")
	}
	if b.Charge != 0 || !b.Dead() {
		t.Errorf("charge = %v, dead = %v; want clamped empty", b.Charge, b.Dead())
	}
	// Spent keeps the full demanded total, including the overshoot.
	if b.Spent != 11 {
		t.Errorf("spent = %v, want 11", b.Spent)
	}
}

func TestBankPoweredExemption(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0)}
	bk := NewBank(DefaultModel(), pos, 100)
	bk.SetPowered([]int32{1})
	bk.ChargeTx(0, 1, 1) // node 0 unpowered: free
	bk.ChargeRx(2, 1)    // node 2 unpowered: free
	bk.ChargeTx(1, 2, 1) // node 1 pays 1·(1 + 1·1²) = 2
	bk.ChargeIdle(1, 1)  // plus the idle trickle
	if bk.Batteries[0].Spent != 0 || bk.Batteries[2].Spent != 0 {
		t.Errorf("unpowered nodes were charged: %+v", bk.Batteries)
	}
	want := 2 + bk.Model.Idle
	if got := bk.Batteries[1].Spent; math.Abs(got-want) > 1e-12 {
		t.Errorf("powered node spent %v, want %v", got, want)
	}
	if got := bk.TotalSpent(); math.Abs(got-want) > 1e-12 {
		t.Errorf("TotalSpent = %v, want %v", got, want)
	}
	if !bk.Alive(0) || !bk.Alive(1) {
		t.Error("nodes should be alive")
	}
	bk.Batteries[1].Drain(1000)
	if bk.Alive(1) {
		t.Error("drained powered node should be dead")
	}
	if !bk.Alive(0) {
		t.Error("unpowered nodes never die")
	}
}

// TestSimnetChargerDebits pins the energy side of simnet's drop accounting:
// a Send debits tx at the sender immediately, delivery debits rx at the
// receiver, and a message to an unregistered node costs the sender tx while
// charging nobody rx.
func TestSimnetChargerDebits(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(3, 4), geom.Pt(9, 9)}
	bk := NewBank(DefaultModel(), pos, 1000)
	net := simnet.New()
	net.Energy = &SimnetCharger{Bank: bk, Bits: 2}
	net.Register(1, simnet.HandlerFunc(func(n *simnet.Network, m simnet.Message) {}))

	net.Send(0, 1, "hello") // distance 5
	txWant := bk.Model.TxCost(2, 5)
	if got := bk.Batteries[0].Spent; math.Abs(got-txWant) > 1e-12 {
		t.Errorf("tx debit at Send = %v, want %v", got, txWant)
	}
	if bk.Batteries[1].Spent != 0 {
		t.Error("rx debited before delivery")
	}
	net.Run(0)
	if got, want := bk.Batteries[1].Spent, bk.Model.RxCost(2); math.Abs(got-want) > 1e-12 {
		t.Errorf("rx debit at delivery = %v, want %v", got, want)
	}

	// Message to an unregistered node: tx charged, no rx anywhere.
	before := bk.TotalSpent()
	net.Send(0, 2, "void")
	txOnly := bk.Model.TxCost(2, pos[0].Dist(pos[2]))
	net.Run(0)
	if got := bk.TotalSpent() - before; math.Abs(got-txOnly) > 1e-12 {
		t.Errorf("dropped message cost %v, want tx-only %v", got, txOnly)
	}
	if net.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", net.Dropped)
	}
}
