package energy

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
)

// lineInstance builds the 0–1–2–3 unit-spaced path with node 0 the sink:
// node 1 relays everything, so it must die first.
func lineInstance() (*graph.CSR, []geom.Point) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(3, 0)}
	return b.Build(), pos
}

func lineSpec() Spec {
	s := DefaultSpec()
	s.Capacity = 100
	s.Rate = 1 // deterministic traffic
	s.MaxRounds = 500
	return s
}

func TestLifetimeRelayDiesFirst(t *testing.T) {
	g, pos := lineInstance()
	rep, err := SimulateLifetime(g, pos, nil, []int32{0}, lineSpec(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Per round: node 1 pays tx(1 hop) + rx of two transit packets = 2 + 2·2·1
	// = 6 plus idle; nodes 2 and 3 pay less. First death must be node 1's,
	// at ~100/6.05 ≈ 16 rounds, and it disconnects 2 and 3 from the sink.
	if rep.FirstDeath < 10 || rep.FirstDeath > 20 {
		t.Errorf("FirstDeath = %d, want ≈16", rep.FirstDeath)
	}
	if rep.CoverageLifetime != rep.FirstDeath {
		// Node 1's death drops the served fraction to 0 < 1/2.
		t.Errorf("CoverageLifetime = %d, want %d", rep.CoverageLifetime, rep.FirstDeath)
	}
	if rep.Rounds != len(rep.Alive) || rep.Rounds != len(rep.Served) || rep.Rounds != len(rep.Largest) {
		t.Errorf("curve lengths %d/%d/%d disagree with Rounds %d",
			len(rep.Alive), len(rep.Served), len(rep.Largest), rep.Rounds)
	}
	if rep.Attempted != rep.Delivered+rep.Dropped {
		t.Errorf("attempted %d != delivered %d + dropped %d",
			rep.Attempted, rep.Delivered, rep.Dropped)
	}
	// After node 1 dies the simulation is routing-dead and must stop.
	if last := rep.Served[rep.Rounds-1]; last != 0 && rep.Rounds >= lineSpec().MaxRounds {
		t.Errorf("simulation did not stop after disconnection (served %v at round %d)",
			last, rep.Rounds)
	}
	if rep.AliveAtEnd() >= 1 {
		t.Errorf("AliveAtEnd = %v, want < 1", rep.AliveAtEnd())
	}
	if rep.LargestAtEnd() >= 1 {
		t.Errorf("LargestAtEnd = %v, want < 1 after the relay died", rep.LargestAtEnd())
	}
	if math.IsNaN(rep.SpreadAtFirstDeath) || rep.SpreadAtFirstDeath <= 0 {
		t.Errorf("SpreadAtFirstDeath = %v, want > 0 (uneven relay load)", rep.SpreadAtFirstDeath)
	}
	if rep.TotalSpent <= 0 {
		t.Error("no energy spent")
	}
}

// TestLifetimeRotationExtendsFirstDeath is the Q03 contrast in miniature:
// with two spares per role, the relay rotates through three batteries and
// the first permanent death arrives ≈3× later.
func TestLifetimeRotationExtendsFirstDeath(t *testing.T) {
	g, pos := lineInstance()
	base, err := SimulateLifetime(g, pos, nil, []int32{0}, lineSpec(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	spec := lineSpec()
	spec.Rotation = true
	spec.Spares = []int{0, 2, 2, 2}
	rot, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if rot.Rotations == 0 {
		t.Fatal("rotation never happened")
	}
	lo, hi := 2*base.FirstDeath, 4*base.FirstDeath
	if rot.FirstDeath < lo || rot.FirstDeath > hi {
		t.Errorf("rotated FirstDeath = %d, want within [%d, %d] (base %d)",
			rot.FirstDeath, lo, hi, base.FirstDeath)
	}
}

func TestLifetimeDeterministic(t *testing.T) {
	box := geom.Box(8, 8)
	pts := pointprocess.Poisson(box, 8, rng.New(3))
	udg := rgg.UDG(pts, 1)
	members, _ := graph.LargestComponent(udg.CSR)
	if len(members) < 20 {
		t.Skip("deployment too sparse")
	}
	sink := NearestSink(pts, members)
	spec := DefaultSpec()
	spec.Capacity = 300
	spec.MaxRounds = 200
	run := func() *Report {
		rep, err := SimulateLifetime(udg.CSR, pts, members, []int32{sink}, spec, rng.New(77))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed produced different reports:\n%+v\nvs\n%+v", a, b)
	}
	if a.FirstDeath < 0 || a.Rounds == 0 {
		t.Errorf("degenerate run: %+v", a)
	}
}

func TestLifetimeInputValidation(t *testing.T) {
	g, pos := lineInstance()
	cases := map[string]func() error{
		"no sinks": func() error {
			_, err := SimulateLifetime(g, pos, nil, nil, lineSpec(), rng.New(1))
			return err
		},
		"sink outside participants": func() error {
			_, err := SimulateLifetime(g, pos, []int32{0, 1}, []int32{3}, lineSpec(), rng.New(1))
			return err
		},
		"zero capacity": func() error {
			s := lineSpec()
			s.Capacity = 0
			_, err := SimulateLifetime(g, pos, nil, []int32{0}, s, rng.New(1))
			return err
		},
		"zero packet": func() error {
			s := lineSpec()
			s.PacketBits = 0
			_, err := SimulateLifetime(g, pos, nil, []int32{0}, s, rng.New(1))
			return err
		},
		"negative rate": func() error {
			s := lineSpec()
			s.Rate = -1
			_, err := SimulateLifetime(g, pos, nil, []int32{0}, s, rng.New(1))
			return err
		},
		"position mismatch": func() error {
			_, err := SimulateLifetime(g, pos[:3], nil, []int32{0}, lineSpec(), rng.New(1))
			return err
		},
		"only sinks": func() error {
			_, err := SimulateLifetime(g, pos, []int32{0}, []int32{0}, lineSpec(), rng.New(1))
			return err
		},
		"out-of-range sink": func() error {
			_, err := SimulateLifetime(g, pos, nil, []int32{-1}, lineSpec(), rng.New(1))
			return err
		},
	}
	for name, fn := range cases {
		if fn() == nil {
			t.Errorf("%s: expected an error", name)
		}
	}
}

// TestSinkChoiceEmptyParticipants: the deterministic sink pickers must
// degrade to "no sink" on an empty participant set (a SENS build can
// legally produce zero members) instead of returning a poisoned index.
func TestSinkChoiceEmptyParticipants(t *testing.T) {
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 1)}
	if got := QuadrantSinks(pos, []int32{}); got != nil {
		t.Errorf("QuadrantSinks(empty) = %v, want nil", got)
	}
	if got := NearestSink(pos, []int32{}); got != -1 {
		t.Errorf("NearestSink(empty) = %d, want -1", got)
	}
	if got := QuadrantSinks(nil, nil); got != nil {
		t.Errorf("QuadrantSinks(no positions) = %v, want nil", got)
	}
}

func TestUniformSpares(t *testing.T) {
	sp := UniformSpares(10, []int32{2, 5})
	if sp[2] != 4 || sp[5] != 4 || sp[0] != 0 {
		t.Errorf("spares = %v", sp)
	}
	if UniformSpares(3, []int32{0, 1, 2}) != nil {
		t.Error("no surplus should mean nil spares")
	}
	if UniformSpares(0, nil) != nil {
		t.Error("empty membership should mean nil spares")
	}
}

// TestLifetimeStepAllocsSteadyState is the allocation gate: once the sim is
// built, rounds in which nothing dies allocate nothing — buffers, curves
// and route state are all preallocated.
func TestLifetimeStepAllocsSteadyState(t *testing.T) {
	box := geom.Box(8, 8)
	pts := pointprocess.Poisson(box, 8, rng.New(3))
	udg := rgg.UDG(pts, 1)
	members, _ := graph.LargestComponent(udg.CSR)
	spec := DefaultSpec()
	spec.Capacity = 1e12 // nobody dies
	spec.MaxRounds = 100000
	s, err := newSim(udg.CSR, pts, members, []int32{NearestSink(pts, members)}, spec)
	if err != nil {
		t.Fatal(err)
	}
	g := rng.New(5)
	s.step(g) // warm-up: builds routes and the initial component count
	if a := testing.AllocsPerRun(50, func() {
		if !s.step(g) {
			t.Fatal("sim ended unexpectedly")
		}
	}); a != 0 {
		t.Errorf("steady-state round allocates %.2f, want 0", a)
	}
}

// BenchmarkSimulateLifetime runs the full lifetime simulation (UDG members
// over a λ=8 deployment, default spec) end to end — the component-level
// cost of one Q-scenario cell.
func BenchmarkSimulateLifetime(b *testing.B) {
	box := geom.Box(10, 10)
	pts := pointprocess.Poisson(box, 8, rng.New(3))
	udg := rgg.UDG(pts, 1)
	members, _ := graph.LargestComponent(udg.CSR)
	sink := []int32{NearestSink(pts, members)}
	spec := DefaultSpec()
	spec.Capacity = 500
	spec.MaxRounds = 400
	b.ReportMetric(float64(len(members)), "members")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := SimulateLifetime(udg.CSR, pts, members, sink, spec, rng.New(rng.Seed(i)))
		if err != nil || rep.Rounds == 0 {
			b.Fatalf("bad run: %v", err)
		}
	}
}
