// Package energy models the resource the paper's title promises to save:
// per-node battery state under a configurable first-order radio model
// (transmitting b bits over distance d costs b·(c + d^β), receiving costs
// b·r, idling drains a trickle), plus the round-based network-lifetime
// simulation that turns the repository's structural measurements (degree,
// stretch, d^β path cost) into the operational question the QoS literature
// asks: how long does each topology actually live? (arXiv:2001.02761 for
// the lifetime/QoS metrics, arXiv:cs/0411040 for the even-power-
// distribution rotation story.)
//
// The package is deliberately topology-agnostic: everything operates on a
// CSR graph plus vertex positions, so UDG-SENS, NN-SENS, HNG and the dense
// base graphs all flow through the same simulation. Hook types in simnet
// (EnergySink) and routing (charge hooks in Options) let the discrete-event
// and routing layers debit the same batteries.
package energy

import (
	"math"

	"repro/internal/geom"
	"repro/internal/simnet"
)

// Model is the first-order radio energy model. All quantities are in
// normalized energy units: one unit is the electronics cost of moving one
// bit (the standard nJ/bit scale of Heinzelman et al., with the absolute
// scale divided out — only ratios matter to lifetime comparisons).
type Model struct {
	// TxElec is the per-bit electronics cost of transmitting (the c in
	// bits·(c + d^β)).
	TxElec float64
	// TxAmp is the per-bit amplifier coefficient multiplying d^β.
	TxAmp float64
	// RxElec is the per-bit cost of receiving.
	RxElec float64
	// Beta is the path-loss exponent of the amplifier term (the paper's
	// β ∈ [2, 5]).
	Beta float64
	// Idle is the per-round drain every powered node pays regardless of
	// traffic (listening, sensing, clock).
	Idle float64
}

// DefaultModel returns the reference parameterization used by the Q**
// scenarios: symmetric per-bit electronics (c = r = 1), unit amplifier
// coefficient, β = 2, and an idle trickle two orders of magnitude below the
// per-bit cost.
func DefaultModel() Model {
	return Model{TxElec: 1, TxAmp: 1, RxElec: 1, Beta: 2, Idle: 0.05}
}

// TxCost returns the energy to transmit bits over distance d:
// bits·(TxElec + TxAmp·d^β).
func (m Model) TxCost(bits, d float64) float64 {
	return bits * (m.TxElec + m.TxAmp*math.Pow(d, m.Beta))
}

// RxCost returns the energy to receive bits: bits·RxElec.
func (m Model) RxCost(bits float64) float64 { return bits * m.RxElec }

// Battery is one node's energy store. The zero value is an empty (dead)
// battery.
type Battery struct {
	// Charge is the remaining energy; the node is dead once it reaches 0.
	Charge float64
	// Spent accumulates every debit ever applied, including the overshoot
	// of the final draining debit — total energy demanded of the node.
	Spent float64
}

// NewBattery returns a battery holding the given initial charge.
func NewBattery(capacity float64) Battery { return Battery{Charge: capacity} }

// Drain debits e from the battery (clamping at empty) and reports whether
// the battery still holds charge afterwards.
func (b *Battery) Drain(e float64) bool {
	b.Spent += e
	b.Charge -= e
	if b.Charge <= 0 {
		b.Charge = 0
		return false
	}
	return true
}

// Dead reports whether the battery is empty.
func (b *Battery) Dead() bool { return b.Charge <= 0 }

// Bank is per-node battery state for a positioned node set: the shared
// debit surface behind the simnet energy sink, the routing charge hooks and
// the lifetime simulation. Nodes outside the powered set (Powered nil ==
// everyone powered) are ignored by the charge methods, which is how mains-
// powered sinks and non-member deployment points are modeled.
type Bank struct {
	// Model prices every debit.
	Model Model
	// Pos supplies hop distances for tx debits.
	Pos []geom.Point
	// Batteries holds one battery per node (indexed like Pos).
	Batteries []Battery
	// Powered flags the battery-powered nodes; nil means all nodes are.
	// Unpowered nodes accept any debit for free (infinite energy).
	Powered []bool
}

// NewBank returns a bank over the positioned nodes, every battery holding
// capacity. All nodes are powered; restrict with SetPowered.
func NewBank(model Model, pos []geom.Point, capacity float64) *Bank {
	bk := &Bank{Model: model, Pos: pos, Batteries: make([]Battery, len(pos))}
	for i := range bk.Batteries {
		bk.Batteries[i] = NewBattery(capacity)
	}
	return bk
}

// SetPowered restricts battery accounting to the given nodes (e.g. the SENS
// members); everything else — sleeping deployment points, mains-powered
// sinks — draws energy for free.
func (bk *Bank) SetPowered(nodes []int32) {
	bk.Powered = make([]bool, len(bk.Pos))
	for _, v := range nodes {
		bk.Powered[v] = true
	}
}

func (bk *Bank) powered(u int32) bool {
	return bk.Powered == nil || (int(u) < len(bk.Powered) && bk.Powered[u])
}

// Alive reports whether node u can still spend energy: unpowered nodes are
// always alive; powered nodes die with their battery.
func (bk *Bank) Alive(u int32) bool {
	return !bk.powered(u) || !bk.Batteries[u].Dead()
}

// ChargeTx debits the cost of transmitting bits from u to v (distance from
// positions) against u's battery.
func (bk *Bank) ChargeTx(u, v int32, bits float64) {
	if bk.powered(u) {
		bk.Batteries[u].Drain(bk.Model.TxCost(bits, bk.Pos[u].Dist(bk.Pos[v])))
	}
}

// ChargeRx debits the cost of receiving bits against v's battery.
func (bk *Bank) ChargeRx(v int32, bits float64) {
	if bk.powered(v) {
		bk.Batteries[v].Drain(bk.Model.RxCost(bits))
	}
}

// ChargeIdle debits rounds' worth of idle drain against u's battery.
func (bk *Bank) ChargeIdle(u int32, rounds float64) {
	if bk.powered(u) {
		bk.Batteries[u].Drain(bk.Model.Idle * rounds)
	}
}

// TotalSpent sums the energy demanded of all batteries so far.
func (bk *Bank) TotalSpent() float64 {
	var s float64
	for i := range bk.Batteries {
		s += bk.Batteries[i].Spent
	}
	return s
}

// SimnetCharger adapts a Bank to the simnet.EnergySink hook: every Send
// debits the tx cost of Bits at the sender, every delivery debits the rx
// cost at the receiver. Messages to unregistered nodes therefore cost the
// sender tx energy but charge no one rx energy — matching simnet's
// documented drop accounting (MessagesSent at Send, Dropped at delivery
// time).
type SimnetCharger struct {
	// Bank receives the debits.
	Bank *Bank
	// Bits is the modeled payload size of one simulator message.
	Bits float64
}

// MessageSent implements simnet.EnergySink.
func (c *SimnetCharger) MessageSent(from, to simnet.NodeID) {
	c.Bank.ChargeTx(int32(from), int32(to), c.Bits)
}

// MessageDelivered implements simnet.EnergySink.
func (c *SimnetCharger) MessageDelivered(from, to simnet.NodeID) {
	c.Bank.ChargeRx(int32(to), c.Bits)
}

var _ simnet.EnergySink = (*SimnetCharger)(nil)
