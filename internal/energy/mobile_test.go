package energy

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rng"
)

// staticMobile wraps a fixed graph as a MobileNetwork that never changes —
// the degenerate case that must reproduce the static simulation exactly.
type staticMobile struct {
	g     *graph.CSR
	pos   []geom.Point
	died  []int32
	steps int
}

func (m *staticMobile) Step(round int) bool     { m.steps++; return false }
func (m *staticMobile) Died(u int32)            { m.died = append(m.died, u) }
func (m *staticMobile) Graph() *graph.CSR       { return m.g }
func (m *staticMobile) Positions() []geom.Point { return m.pos }

// jitterMobile drifts every node a tiny deterministic amount each round and
// rebuilds no edges — motion without structural change.
type jitterMobile struct {
	g   *graph.CSR
	pos []geom.Point
}

func (m *jitterMobile) Step(round int) bool {
	for i := range m.pos {
		m.pos[i].X += 0.001
	}
	return true
}
func (m *jitterMobile) Died(u int32)            {}
func (m *jitterMobile) Graph() *graph.CSR       { return m.g }
func (m *jitterMobile) Positions() []geom.Point { return m.pos }

// TestMobileStaticMatchesStatic pins the compatibility guarantee: a mobile
// run over a structure that never changes is bit-identical to the static
// entry point, and battery deaths are reported back through Died.
func TestMobileStaticMatchesStatic(t *testing.T) {
	g, pos := gridInstance(6)
	spec := lineSpec()
	spec.Rate = 0.5
	spec.MaxRounds = 120
	want, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	m := &staticMobile{g: g, pos: pos}
	got, err := SimulateMobileLifetime(m, nil, []int32{0}, spec, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	if got.Rounds != want.Rounds || got.Delivered != want.Delivered ||
		got.Dropped != want.Dropped || got.TotalSpent != want.TotalSpent {
		t.Fatalf("mobile(static) != static: %+v vs %+v", got, want)
	}
	// Step fires entering every round, including the final boundary at
	// which the simulation discovers it is over.
	if m.steps < got.Rounds || m.steps > got.Rounds+1 {
		t.Fatalf("Step called %d times over %d rounds", m.steps, got.Rounds)
	}
	if want.FirstDeath >= 0 && len(m.died) == 0 {
		t.Fatal("battery deaths were not reported to the mobile structure")
	}
}

// TestMobileJitterDeterministic: motion every round forces per-round route
// rebuilds; the run must stay deterministic and the drifting positions must
// raise tx costs relative to the static run (links stretch eastward).
func TestMobileJitterDeterministic(t *testing.T) {
	g, pos := gridInstance(6)
	spec := lineSpec()
	spec.MaxRounds = 50
	run := func() *Report {
		cp := append([]geom.Point(nil), pos...)
		rep, err := SimulateMobileLifetime(&jitterMobile{g: g, pos: cp}, nil, []int32{0}, spec, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Rounds != b.Rounds || a.TotalSpent != b.TotalSpent || a.Delivered != b.Delivered {
		t.Fatalf("mobile run nondeterministic: %+v vs %+v", a, b)
	}
	if a.Rounds == 0 || a.Delivered == 0 {
		t.Fatalf("mobile run did nothing: %+v", a)
	}
}

// TestRepairLocalNearestAttachment: an orphan with no intact graph
// neighbor still re-attaches — to the geometrically nearest intact node —
// so serving continues where adjacency-bound repair would strand it. The
// instance is a two-arm star: killing an arm's hub orphans its leaf, whose
// only graph neighbor was the hub.
func TestRepairLocalNearestAttachment(t *testing.T) {
	//  0 (sink) — 1 — 2   and   0 — 3 — 4, with 4 placed nearest to 1.
	b := graph.NewBuilder(5)
	b.AddEdgeUnique(0, 1)
	b.AddEdgeUnique(1, 2)
	b.AddEdgeUnique(0, 3)
	b.AddEdgeUnique(3, 4)
	g := b.Build()
	pos := []geom.Point{geom.Pt(0, 0), geom.Pt(1, 0), geom.Pt(2, 0), geom.Pt(0, 1), geom.Pt(1, 0.5)}
	spec := lineSpec()
	spec.MaxRounds = 20
	spec.Capacity = 50000
	spec.Repair = RepairLocal
	spec.Faults = &fault.Schedule{Crashes: []fault.Event{{Round: 5, Node: 3}}}
	rep, err := SimulateLifetime(g, pos, nil, []int32{0}, spec, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashed != 1 {
		t.Fatalf("Crashed = %d, want 1", rep.Crashed)
	}
	// Node 4 must keep serving through its nearest intact node (1), so all
	// three surviving sources stay served after the crash.
	if got := rep.Served[len(rep.Served)-1]; got < 0.75 {
		t.Fatalf("served = %v after crash; orphan 4 was not re-attached", got)
	}
	if rep.Rounds < 20 {
		t.Fatalf("simulation ended early at round %d", rep.Rounds)
	}
}

// TestRepairLocalAllocsSteadyState is the local-repair allocation gate:
// once the grid index exists, a repair pass allocates nothing — the orphan
// search runs entirely in preallocated scratch.
func TestRepairLocalAllocsSteadyState(t *testing.T) {
	g, pos := gridInstance(12)
	spec := lineSpec()
	spec.Capacity = 1e12
	spec.Repair = RepairLocal
	s, err := newSim(g, pos, nil, []int32{0}, spec)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.New(3)
	s.step(gen) // builds the initial routes
	s.alive[77] = false
	s.noteDeath(77)
	s.nAlive--
	s.dirty = true
	s.step(gen) // first repair: builds the grid and scratch
	kill := int32(40)
	if a := testing.AllocsPerRun(30, func() {
		if s.alive[kill] {
			s.alive[kill] = false
			s.noteDeath(kill)
			s.nAlive--
			kill++
		}
		s.dirty = true
		s.repairRoutes()
	}); a != 0 {
		t.Errorf("steady-state local repair allocates %.2f, want 0", a)
	}
}
