package tiling

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestTileOfAndCenter(t *testing.T) {
	tl := Tiling{Side: 2}
	if c := tl.TileOf(geom.Pt(0.5, 0.5)); c != (Coord{0, 0}) {
		t.Errorf("TileOf = %v", c)
	}
	if c := tl.TileOf(geom.Pt(-0.5, 3.5)); c != (Coord{-1, 1}) {
		t.Errorf("TileOf negative = %v", c)
	}
	if p := tl.Center(Coord{0, 0}); p != geom.Pt(1, 1) {
		t.Errorf("Center = %v", p)
	}
	r := tl.Rect(Coord{1, 2})
	if r.Min != geom.Pt(2, 4) || r.Max != geom.Pt(4, 6) {
		t.Errorf("Rect = %v", r)
	}
	// Local coordinates of a tile corner are (±side/2, ±side/2).
	l := tl.Local(Coord{1, 2}, geom.Pt(2, 4))
	if l != geom.Pt(-1, -1) {
		t.Errorf("Local = %v", l)
	}
}

func TestTileOfConsistentWithRect(t *testing.T) {
	tl := Tiling{Side: 1.5}
	g := rng.New(1)
	for i := 0; i < 1000; i++ {
		p := geom.Pt(g.Float64()*20-10, g.Float64()*20-10)
		c := tl.TileOf(p)
		if !tl.Rect(c).Contains(p) {
			t.Fatalf("point %v not in its tile rect %v", p, tl.Rect(c))
		}
	}
}

func TestNeighborAndDirections(t *testing.T) {
	c := Coord{3, 4}
	if c.Neighbor(Right) != (Coord{4, 4}) || c.Neighbor(Left) != (Coord{2, 4}) ||
		c.Neighbor(Top) != (Coord{3, 5}) || c.Neighbor(Bottom) != (Coord{3, 3}) {
		t.Error("Neighbor wrong")
	}
	for _, d := range Directions {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite not involutive for %v", d)
		}
		dx, dy := d.Vec()
		ox, oy := d.Opposite().Vec()
		if dx+ox != 0 || dy+oy != 0 {
			t.Errorf("Opposite vec not negated for %v", d)
		}
	}
	if Right.String() != "right" || Bottom.String() != "bottom" {
		t.Error("Direction String wrong")
	}
}

func TestMapPhiRoundtrip(t *testing.T) {
	m := NewMap(geom.Box(10, 8), 1.5)
	// Full tiles: floor(10/1.5)=6 → i ∈ [0, 5]; floor(8/1.5)=5 → j ∈ [0, 4].
	if m.W != 6 || m.H != 5 {
		t.Fatalf("map dims %dx%d", m.W, m.H)
	}
	if m.Tiles() != 30 {
		t.Errorf("Tiles = %d", m.Tiles())
	}
	for x := 0; x < m.W; x++ {
		for y := 0; y < m.H; y++ {
			c := m.PhiInv(x, y)
			gx, gy, ok := m.Phi(c)
			if !ok || gx != x || gy != y {
				t.Fatalf("roundtrip failed at (%d,%d)", x, y)
			}
		}
	}
	// Out-of-window tiles map to ok=false.
	if _, _, ok := m.Phi(Coord{-1, 0}); ok {
		t.Error("tile left of window should not map")
	}
	if _, _, ok := m.Phi(Coord{6, 0}); ok {
		t.Error("tile right of window should not map")
	}
}

func TestMapOffsetBox(t *testing.T) {
	// Box not anchored at the origin.
	box := geom.NewRect(geom.Pt(3.1, -2.9), geom.Pt(9.1, 4.1))
	m := NewMap(box, 1.0)
	if m.Tiles() == 0 {
		t.Fatal("no tiles mapped")
	}
	// Every mapped tile must lie fully inside the box.
	for x := 0; x < m.W; x++ {
		for y := 0; y < m.H; y++ {
			r := m.Tiling.Rect(m.PhiInv(x, y))
			if !box.ContainsRect(r) {
				t.Fatalf("tile %v rect %v leaves box %v", m.PhiInv(x, y), r, box)
			}
		}
	}
}

func TestMapEmptyBox(t *testing.T) {
	m := NewMap(geom.Box(0.5, 0.5), 1.0)
	if m.Tiles() != 0 {
		t.Errorf("tiny box should map no tiles, got %d", m.Tiles())
	}
}

func TestUDGSpecValidate(t *testing.T) {
	if err := DefaultUDGSpec().Validate(); err != nil {
		t.Errorf("default spec invalid: %v", err)
	}
	if err := PaperUDGSpec().Validate(); err != nil {
		t.Errorf("paper literal spec should pass basic validation: %v", err)
	}
	if err := RelaxedUDGSpec().Validate(); err != nil {
		t.Errorf("relaxed spec invalid: %v", err)
	}
	bad := DefaultUDGSpec()
	bad.Xe = 0.7 // violates rep↔relay reach (0.7+0.25+0.25 = 1.2 > 1)
	if bad.Validate() == nil {
		t.Error("reach violation not caught")
	}
	bad = DefaultUDGSpec()
	bad.Re = 0.3 // overlaps C0 (Xe−Re = 0.2 < 0.25)
	if bad.Validate() == nil {
		t.Error("overlap violation not caught")
	}
	bad = DefaultUDGSpec()
	bad.Side = 3 // cross-boundary reach: 3−1+0.5 = 2.5 > 1
	if bad.Validate() == nil {
		t.Error("cross-boundary violation not caught")
	}
	if (UDGSpec{}).Validate() == nil {
		t.Error("zero spec should fail")
	}
}

// TestLiteralRelayRegionsAreEmpty pins down the paper's geometric defect
// (DESIGN.md §2): with C0 of radius 1/2 and unit disks, the §2.1 relay
// regions are empty.
func TestLiteralRelayRegionsAreEmpty(t *testing.T) {
	s := PaperUDGSpec()
	g := rng.New(2)
	for _, d := range Directions {
		region := s.RelayRegion(d)
		for i := 0; i < 20000; i++ {
			p := geom.Pt(g.Float64()*s.Side-s.Side/2, g.Float64()*s.Side-s.Side/2)
			if region.Contains(p) {
				t.Fatalf("literal relay region %v contains %v — should be empty", d, p)
			}
		}
	}
	// Consequently no tile can ever be good.
	pts := make([]geom.Point, 500)
	for i := range pts {
		pts[i] = geom.Pt(g.Float64()*s.Side-s.Side/2, g.Float64()*s.Side-s.Side/2)
	}
	if s.TileGood(pts) {
		t.Error("literal-geometry tile reported good")
	}
}

// TestRepairedReachability verifies Claim 2.1's per-hop guarantee for the
// repaired geometry: any representative can reach any same-tile relay, and
// any relay can reach the facing relay of the neighboring tile, within the
// connection radius.
func TestRepairedReachability(t *testing.T) {
	s := DefaultUDGSpec()
	g := rng.New(3)
	c0 := s.CenterRegion()
	sampleIn := func(r geom.Region) geom.Point {
		b := r.Bounds()
		for {
			p := geom.Pt(b.Min.X+g.Float64()*b.Width(), b.Min.Y+g.Float64()*b.Height())
			if r.Contains(p) {
				return p
			}
		}
	}
	for _, d := range Directions {
		relay := s.RelayRegion(d)
		dx, dy := d.Vec()
		shift := geom.Pt(float64(dx)*s.Side, float64(dy)*s.Side)
		// The facing relay region of the neighbor tile, in this tile's
		// local coordinates.
		facing := geom.Translate(s.RelayRegion(d.Opposite()), shift)
		for i := 0; i < 2000; i++ {
			rep := sampleIn(c0)
			rel := sampleIn(relay)
			far := sampleIn(facing)
			if rep.Dist(rel) > s.Radius+1e-9 {
				t.Fatalf("dir %v: rep %v cannot reach relay %v (d = %v)", d, rep, rel, rep.Dist(rel))
			}
			if rel.Dist(far) > s.Radius+1e-9 {
				t.Fatalf("dir %v: relay %v cannot reach facing relay %v (d = %v)", d, rel, far, rel.Dist(far))
			}
		}
	}
}

func TestUDGClassify(t *testing.T) {
	s := DefaultUDGSpec()
	if r := s.Classify(geom.Pt(0, 0)); r != UC0 {
		t.Errorf("center = %v", r)
	}
	if r := s.Classify(geom.Pt(0.5, 0)); r != URelayRight {
		t.Errorf("right relay center = %v", r)
	}
	if r := s.Classify(geom.Pt(-0.5, 0)); r != URelayLeft {
		t.Errorf("left relay center = %v", r)
	}
	if r := s.Classify(geom.Pt(0, 0.5)); r != URelayTop {
		t.Errorf("top relay center = %v", r)
	}
	if r := s.Classify(geom.Pt(0, -0.5)); r != URelayBottom {
		t.Errorf("bottom relay center = %v", r)
	}
	if r := s.Classify(geom.Pt(0.7, 0.7)); r != UNone {
		t.Errorf("corner = %v", r)
	}
	if r := s.Classify(geom.Pt(0.3, 0.3)); r != UNone {
		t.Errorf("gap point = %v", r)
	}
}

func TestUDGTileGood(t *testing.T) {
	s := DefaultUDGSpec()
	full := []geom.Point{
		{X: 0, Y: 0}, {X: 0.5, Y: 0}, {X: -0.5, Y: 0}, {X: 0, Y: 0.5}, {X: 0, Y: -0.5},
	}
	if !s.TileGood(full) {
		t.Error("fully-occupied tile not good")
	}
	if s.TileGood(full[:4]) {
		t.Error("tile missing bottom relay reported good")
	}
	if s.TileGood(nil) {
		t.Error("empty tile reported good")
	}
	// Duplicate occupancy doesn't help.
	if s.TileGood([]geom.Point{{X: 0, Y: 0}, {X: 0.01, Y: 0}, {X: 0.5, Y: 0}}) {
		t.Error("tile with only C0+right reported good")
	}
}

func TestUDGGoodProbabilityFormulaVsMonteCarlo(t *testing.T) {
	s := DefaultUDGSpec()
	g := rng.New(4)
	for _, lambda := range []float64{5, 12} {
		want := s.GoodProbability(lambda)
		got := MonteCarloGoodProbability(s.Side, lambda, s.TileGood, 6000, g)
		if math.Abs(got.P-want) > 0.025 {
			t.Errorf("λ=%v: MC %v vs analytic %v", lambda, got.P, want)
		}
	}
	if !math.IsNaN(PaperUDGSpec().GoodProbability(2)) {
		t.Error("literal-mode analytic probability should be NaN")
	}
}

func TestUDGGoodProbabilityMonotone(t *testing.T) {
	s := DefaultUDGSpec()
	prev := -1.0
	for lambda := 0.5; lambda <= 30; lambda += 0.5 {
		p := s.GoodProbability(lambda)
		if p < prev {
			t.Fatalf("good probability not monotone at λ=%v", lambda)
		}
		prev = p
	}
}

func TestLambdaS(t *testing.T) {
	s := DefaultUDGSpec()
	const pc = 0.592746
	ls := s.LambdaS(pc)
	// At λs the probability equals pc.
	if math.Abs(s.GoodProbability(ls)-pc) > 1e-6 {
		t.Errorf("P(good)(λs) = %v want %v", s.GoodProbability(ls), pc)
	}
	// Expected ballpark from the analytic formula: (1−e^{−λπ/16})⁵ = pc
	// → λ = −16·ln(1−pc^{1/5})/π ≈ 11.7.
	want := -16 * math.Log(1-math.Pow(pc, 0.2)) / math.Pi
	if math.Abs(ls-want) > 0.01 {
		t.Errorf("λs = %v want %v", ls, want)
	}
	if !math.IsNaN(PaperUDGSpec().LambdaS(pc)) {
		t.Error("literal-mode λs should be NaN")
	}
}

func TestRelaxedRegions(t *testing.T) {
	s := RelaxedUDGSpec()
	// Band between C0 and right edge.
	if r := s.Classify(geom.Pt(0.6, 0)); r != URelayRight {
		t.Errorf("band point = %v", r)
	}
	// Inside C0 wins.
	if r := s.Classify(geom.Pt(0.45, 0)); r != UC0 {
		t.Errorf("C0 point = %v", r)
	}
	// Outside everything.
	if r := s.Classify(geom.Pt(0.66, 0.62)); r != URelayRight && r != URelayTop {
		// Corner bands can overlap in relaxed mode — either is acceptable,
		// but it must not be UNone given BandH = 0.5... actually (0.66, 0.62)
		// has |y| > BandH for the right band and |x| > BandH for the top
		// band, so it is UNone.
		if r != UNone {
			t.Errorf("corner point = %v", r)
		}
	}
}

func TestAssignTilesAndLocalPoints(t *testing.T) {
	m := NewMap(geom.Box(6, 6), 1.5)
	pts := []geom.Point{
		{X: 0.1, Y: 0.1},  // tile (0,0)
		{X: 1.0, Y: 0.2},  // tile (0,0)
		{X: 2.0, Y: 0.5},  // tile (1,0)
		{X: 5.9, Y: 5.9},  // tile (3,3)
		{X: -0.5, Y: 0.5}, // outside window
	}
	groups := AssignTiles(m, pts)
	if len(groups[Coord{0, 0}]) != 2 {
		t.Errorf("tile (0,0) group = %v", groups[Coord{0, 0}])
	}
	if len(groups[Coord{1, 0}]) != 1 || len(groups[Coord{3, 3}]) != 1 {
		t.Error("tile groups wrong")
	}
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 4 {
		t.Errorf("total grouped = %d want 4 (outside point dropped)", total)
	}
	loc := LocalPoints(m, Coord{0, 0}, pts, groups[Coord{0, 0}], nil)
	if len(loc) != 2 {
		t.Fatalf("local points = %v", loc)
	}
	// Tile (0,0) center is (0.75, 0.75).
	if loc[0] != geom.Pt(0.1-0.75, 0.1-0.75) {
		t.Errorf("local[0] = %v", loc[0])
	}
	for _, l := range loc {
		if math.Abs(l.X) > 0.75 || math.Abs(l.Y) > 0.75 {
			t.Errorf("local point outside tile: %v", l)
		}
	}
}
