package tiling

import (
	"fmt"
	"math"

	"repro/internal/geom"
	"repro/internal/pointprocess"
)

// GeometryMode selects how the UDG-SENS tile regions are realized.
type GeometryMode int

const (
	// GeometryLiteral evaluates the paper's §2.1 definition verbatim: C0 is
	// the radius-1/2 disk at the tile center and each relay region is the
	// intersection, within the tile, of all unit disks centered at points of
	// C0 (and of the facing neighbor relay region), minus C0. As shown in
	// DESIGN.md §2 this set is empty, so literal tiles are never good; the
	// mode exists to pin the negative result down in code.
	GeometryLiteral GeometryMode = iota
	// GeometryRepaired is the default feasible parameterization: C0 is a
	// disk of radius R0 < 1/2 and each relay region is a disk of radius Re
	// centered Xe from the tile center toward the edge, with the constraints
	// that make Claim 2.1 hold for every choice of representatives and
	// relays (validated by Spec.Validate).
	GeometryRepaired
	// GeometryRelaxed is the closest operational reading of the paper's
	// Figure 7 algorithm: relay regions are the rectangular bands between C0
	// and each tile edge (the blob drawn in the paper's Figure 3), and
	// connection handshakes are allowed to fail at runtime when elected
	// leaders are farther than the connection radius apart.
	GeometryRelaxed
)

// String implements fmt.Stringer.
func (m GeometryMode) String() string {
	switch m {
	case GeometryLiteral:
		return "literal"
	case GeometryRepaired:
		return "repaired"
	case GeometryRelaxed:
		return "relaxed"
	}
	return fmt.Sprintf("GeometryMode(%d)", int(m))
}

// UDGSpec parameterizes the UDG-SENS(2, λ) tile geometry.
type UDGSpec struct {
	Mode   GeometryMode
	Side   float64 // tile side a_u
	R0     float64 // radius of the center region C0
	Re     float64 // relay-disk radius (repaired mode)
	Xe     float64 // relay-disk center offset from tile center (repaired)
	BandH  float64 // relay-band half height (relaxed mode)
	Radius float64 // UDG connection radius (1 in the paper)
}

// PaperUDGSpec returns the paper's literal parameters: tile side 4/3 and
// C0 radius 1/2 (Theorem 2.2's λs = 1.568 was claimed for this geometry).
func PaperUDGSpec() UDGSpec {
	return UDGSpec{
		Mode:   GeometryLiteral,
		Side:   4.0 / 3.0,
		R0:     0.5,
		Radius: 1,
	}
}

// DefaultUDGSpec returns the repaired feasible geometry with the
// probability-optimal clean parameters a = 3/2, R0 = Re = 1/4, Xe = 1/2:
// all three reachability constraints hold with equality, the four relay
// disks are disjoint from C0 and from each other, and the five region areas
// are equal (which maximizes the good-tile probability for a product of
// occupancy events at fixed total constraint budget).
func DefaultUDGSpec() UDGSpec {
	return UDGSpec{
		Mode:   GeometryRepaired,
		Side:   1.5,
		R0:     0.25,
		Re:     0.25,
		Xe:     0.5,
		Radius: 1,
	}
}

// RelaxedUDGSpec returns the operational variant on the paper's original
// tile: side 4/3, C0 radius 1/2, relay bands of half-height 1/2 filling the
// gap between C0 and each edge.
func RelaxedUDGSpec() UDGSpec {
	return UDGSpec{
		Mode:   GeometryRelaxed,
		Side:   4.0 / 3.0,
		R0:     0.5,
		BandH:  0.5,
		Radius: 1,
	}
}

// Validate checks the geometric soundness of the spec. For GeometryRepaired
// it verifies the three reachability constraints of DESIGN.md §2 plus
// region disjointness; for the other modes it checks basic positivity.
func (s UDGSpec) Validate() error {
	if s.Side <= 0 || s.R0 <= 0 || s.Radius <= 0 {
		return fmt.Errorf("tiling: non-positive UDG spec dimensions: %+v", s)
	}
	if 2*s.R0 > s.Side {
		return fmt.Errorf("tiling: C0 (r=%v) does not fit in tile (side %v)", s.R0, s.Side)
	}
	if s.Mode != GeometryRepaired {
		return nil
	}
	if s.Re <= 0 || s.Xe <= 0 {
		return fmt.Errorf("tiling: repaired mode needs positive Re, Xe: %+v", s)
	}
	const eps = 1e-9
	if s.Xe+s.Re > s.Side/2+eps {
		return fmt.Errorf("tiling: relay disk leaves the tile: Xe+Re = %v > side/2 = %v",
			s.Xe+s.Re, s.Side/2)
	}
	if s.Xe+s.Re+s.R0 > s.Radius+eps {
		return fmt.Errorf("tiling: rep↔relay reach violated: Xe+Re+R0 = %v > radius %v",
			s.Xe+s.Re+s.R0, s.Radius)
	}
	if s.Side-2*s.Xe+2*s.Re > s.Radius+eps {
		return fmt.Errorf("tiling: relay↔relay cross-boundary reach violated: a−2Xe+2Re = %v > radius %v",
			s.Side-2*s.Xe+2*s.Re, s.Radius)
	}
	if s.Xe-s.Re < s.R0-eps {
		return fmt.Errorf("tiling: relay disk overlaps C0: Xe−Re = %v < R0 = %v",
			s.Xe-s.Re, s.R0)
	}
	if s.Xe*math.Sqrt2 < 2*s.Re-eps {
		return fmt.Errorf("tiling: adjacent relay disks overlap: Xe·√2 = %v < 2·Re = %v",
			s.Xe*math.Sqrt2, 2*s.Re)
	}
	return nil
}

// CenterRegion returns C0 in tile-local coordinates.
func (s UDGSpec) CenterRegion() geom.Region {
	return geom.NewCircle(geom.Pt(0, 0), s.R0)
}

// RelayRegion returns the relay region for direction d in tile-local
// coordinates.
func (s UDGSpec) RelayRegion(d Direction) geom.Region {
	dx, dy := d.Vec()
	dir := geom.Pt(float64(dx), float64(dy))
	switch s.Mode {
	case GeometryRepaired:
		return geom.NewCircle(dir.Scale(s.Xe), s.Re)
	case GeometryRelaxed:
		// Band between C0 and the tile edge, clipped to the tile.
		lo, hi := s.R0, s.Side/2
		var band geom.Rect
		if dy == 0 {
			band = geom.NewRect(
				geom.Pt(float64(dx)*lo, -s.BandH),
				geom.Pt(float64(dx)*hi, s.BandH),
			)
		} else {
			band = geom.NewRect(
				geom.Pt(-s.BandH, float64(dy)*lo),
				geom.Pt(s.BandH, float64(dy)*hi),
			)
		}
		return geom.Difference{A: band, B: s.CenterRegion()}
	default: // GeometryLiteral
		// The intersection within the tile of all unit disks centered at
		// points of C0 (the facing neighbor relay region can only shrink
		// this further), minus C0. Empty for R0 = 1/2 — the paper's defect.
		tile := geom.Square(geom.Pt(0, 0), s.Side)
		hull := geom.DiskIntersectionHull{
			Bases: []geom.Region{s.CenterRegion()},
			R:     s.Radius,
		}
		return geom.Difference{A: geom.Intersection{hull, tile}, B: s.CenterRegion()}
	}
}

// URegion identifies the region of a UDG-SENS tile a point belongs to.
type URegion int8

// UDG tile region identifiers. Relay regions are URelayBase + Direction.
const (
	UNone URegion = iota
	UC0
	URelayRight
	URelayLeft
	URelayTop
	URelayBottom
)

// URelay returns the region id of the relay region in direction d.
func URelay(d Direction) URegion { return URelayRight + URegion(d) }

// UDGGeometry is a compiled UDGSpec: C0 and the four relay regions are
// materialized once so per-point classification allocates nothing.
// (UDGSpec.RelayRegion builds a fresh Region value per call, which boxes
// into an interface on every membership test — that allocation dominated
// the whole UDG-SENS construction before classification was compiled.)
type UDGGeometry struct {
	Spec  UDGSpec
	c0    geom.Circle
	relay [4]geom.Region
	// Repaired-mode fast path: the relay regions are plain circles, tested
	// directly instead of through the Region interface.
	relayCircle [4]geom.Circle
	circles     bool
}

// Compile precomputes the region values for per-point classification.
func (s UDGSpec) Compile() *UDGGeometry {
	g := &UDGGeometry{Spec: s, c0: geom.NewCircle(geom.Pt(0, 0), s.R0)}
	g.circles = s.Mode == GeometryRepaired
	for _, d := range Directions {
		g.relay[d] = s.RelayRegion(d)
		if c, ok := g.relay[d].(geom.Circle); ok {
			g.relayCircle[d] = c
		} else {
			g.circles = false
		}
	}
	return g
}

// Classify returns the region containing the tile-local point p. When
// relay regions overlap (relaxed mode corners), the first direction in
// Directions order wins; C0 always takes precedence.
func (g *UDGGeometry) Classify(p geom.Point) URegion {
	if g.c0.Contains(p) {
		return UC0
	}
	if g.circles {
		for d, c := range g.relayCircle {
			if c.Contains(p) {
				return URelay(Direction(d))
			}
		}
		return UNone
	}
	for _, d := range Directions {
		if g.relay[d].Contains(p) {
			return URelay(d)
		}
	}
	return UNone
}

// Classify is the uncompiled form: convenient for one-off queries, but it
// rebuilds the region values per call — point loops should Compile first.
func (s UDGSpec) Classify(p geom.Point) URegion {
	if s.CenterRegion().Contains(p) {
		return UC0
	}
	for _, d := range Directions {
		if s.RelayRegion(d).Contains(p) {
			return URelay(d)
		}
	}
	return UNone
}

// TileGood reports whether a tile whose local points are given is good:
// C0 and all four relay regions are occupied. Monte-Carlo loops should
// Compile once and use UDGGeometry.TileGood instead.
func (s UDGSpec) TileGood(localPts []geom.Point) bool {
	return s.Compile().TileGood(localPts)
}

// TileGood reports whether a tile whose local points are given is good:
// C0 and all four relay regions are occupied.
func (g *UDGGeometry) TileGood(localPts []geom.Point) bool {
	var have [5]bool
	need := 5
	for _, p := range localPts {
		r := g.Classify(p)
		if r == UNone || have[r-1] {
			continue
		}
		have[r-1] = true
		need--
		if need == 0 {
			return true
		}
	}
	return false
}

// GoodProbability returns the exact probability that a tile is good under a
// Poisson process of density lambda, valid for GeometryRepaired (disjoint
// disk regions ⇒ independent occupancy events). For other modes it returns
// NaN; use Monte Carlo estimation instead.
func (s UDGSpec) GoodProbability(lambda float64) float64 {
	if s.Mode != GeometryRepaired {
		return math.NaN()
	}
	p0 := pointprocess.OccupancyProbability(lambda, math.Pi*s.R0*s.R0)
	pe := pointprocess.OccupancyProbability(lambda, math.Pi*s.Re*s.Re)
	return p0 * pe * pe * pe * pe
}

// LambdaS returns the smallest density at which GoodProbability exceeds the
// given site-percolation threshold (use lattice.SitePcReference), found by
// bisection on the exact formula. Only meaningful for GeometryRepaired.
func (s UDGSpec) LambdaS(pc float64) float64 {
	if s.Mode != GeometryRepaired {
		return math.NaN()
	}
	lo, hi := 0.0, 1.0
	for s.GoodProbability(hi) < pc {
		hi *= 2
		if hi > 1e6 {
			return math.Inf(1)
		}
	}
	for hi-lo > 1e-9 {
		mid := (lo + hi) / 2
		if s.GoodProbability(mid) >= pc {
			hi = mid
		} else {
			lo = mid
		}
	}
	return (lo + hi) / 2
}
