package tiling

import (
	"strings"

	"repro/internal/geom"
)

// RenderUDGTile draws the UDG-SENS tile regions (the paper's Figure 3) as
// ASCII, cols characters wide: 'C' = C0, 'r/l/t/b' = the four relay
// regions, '.' = unclassified tile interior. The rendering evaluates the
// actual region geometry, so literal-mode output visibly has no relay
// cells — the Figure 3 that the paper should have drawn.
func RenderUDGTile(s UDGSpec, cols int) string {
	gm := s.Compile()
	return renderTile(s.Side, cols, func(p geom.Point) byte {
		switch gm.Classify(p) {
		case UC0:
			return 'C'
		case URelayRight:
			return 'r'
		case URelayLeft:
			return 'l'
		case URelayTop:
			return 't'
		case URelayBottom:
			return 'b'
		}
		return '.'
	})
}

// RenderNNTile draws the NN-SENS tile regions (the paper's Figure 5) as
// ASCII: 'C' = C0, 'R/L/T/B' = the outer disks, 'r/l/t/b' = the bridge
// regions, '.' = unclassified.
func RenderNNTile(g *NNGeometry, cols int) string {
	return renderTile(g.Spec.TileSide(), cols, func(p geom.Point) byte {
		switch r := g.Classify(p); {
		case r == NC0:
			return 'C'
		case r == NDiskRight:
			return 'R'
		case r == NDiskLeft:
			return 'L'
		case r == NDiskTop:
			return 'T'
		case r == NDiskBottom:
			return 'B'
		case r == NBridgeRight:
			return 'r'
		case r == NBridgeLeft:
			return 'l'
		case r == NBridgeTop:
			return 't'
		case r == NBridgeBottom:
			return 'b'
		}
		return '.'
	})
}

// renderTile rasterizes a side×side tile centered at the origin with the
// given cell classifier; rows shrink by half to roughly correct for
// character aspect ratio.
func renderTile(side float64, cols int, classify func(geom.Point) byte) string {
	if cols < 8 {
		cols = 8
	}
	rows := cols / 2
	var b strings.Builder
	for row := 0; row < rows; row++ {
		// Top row first (largest y).
		y := side * (0.5 - (float64(row)+0.5)/float64(rows))
		for col := 0; col < cols; col++ {
			x := side * ((float64(col)+0.5)/float64(cols) - 0.5)
			b.WriteByte(classify(geom.Pt(x, y)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
