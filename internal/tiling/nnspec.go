package tiling

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// NNSpec parameterizes the NN-SENS(2, k) tile geometry of §2.2: a square
// tile of side 10·A containing nine regions — the center disk C0 (radius A),
// four outer disks Cl/Cr/Ct/Cb (radius A, centered 4A from the center), and
// four bridge regions El/Er/Et/Eb.
//
// A bridge region E_d is the locus of points contained in every "largest
// circle centred at any point in C0 or C_d that lies wholly within the two
// tiles t and t_d" (the paper's definition, implemented exactly up to
// boundary discretization; see NNGeometry).
type NNSpec struct {
	A       float64 // scale parameter; tile side = 10·A
	K       int     // the NN(2, k) parameter; goodness caps tile population at K/2
	Samples int     // boundary discretization for bridge membership (default 96)
}

// PaperNNSpec returns the paper's Theorem 2.4 parameters: k = 188 and
// a = 0.893 (for unit density λ = 1).
func PaperNNSpec() NNSpec { return NNSpec{A: 0.893, K: 188} }

// TileSide returns the tile side length 10·A.
func (s NNSpec) TileSide() float64 { return 10 * s.A }

// Validate checks basic soundness.
func (s NNSpec) Validate() error {
	if s.A <= 0 {
		return fmt.Errorf("tiling: non-positive NN scale A = %v", s.A)
	}
	if s.K < 2 {
		return fmt.Errorf("tiling: NN spec needs K ≥ 2, got %d", s.K)
	}
	return nil
}

// NRegion identifies the region of an NN-SENS tile a point belongs to.
type NRegion int8

// NN tile region identifiers. Disk regions are NDiskBase + Direction and
// bridge regions are NBridgeBase + Direction.
const (
	NNone NRegion = iota
	NC0
	NDiskRight
	NDiskLeft
	NDiskTop
	NDiskBottom
	NBridgeRight
	NBridgeLeft
	NBridgeTop
	NBridgeBottom
	numNRegions
)

// NDisk returns the region id of the outer disk in direction d.
func NDisk(d Direction) NRegion { return NDiskRight + NRegion(d) }

// NBridge returns the region id of the bridge region in direction d.
func NBridge(d Direction) NRegion { return NBridgeRight + NRegion(d) }

// String implements fmt.Stringer.
func (r NRegion) String() string {
	switch {
	case r == NNone:
		return "none"
	case r == NC0:
		return "C0"
	case r >= NDiskRight && r <= NDiskBottom:
		return "C-" + Direction(r-NDiskRight).String()
	case r >= NBridgeRight && r <= NBridgeBottom:
		return "E-" + Direction(r-NBridgeRight).String()
	}
	return fmt.Sprintf("NRegion(%d)", int8(r))
}

// NNGeometry is a compiled NNSpec: the bridge-region membership test needs
// the supremum of d(p, q) − rmax(q) over q in the boundary circles of C0
// and C_d (the supremum of a convex function over a disk is attained on its
// boundary), which is discretized once here and reused for every point.
type NNGeometry struct {
	Spec    NNSpec
	tile    geom.Rect
	c0      geom.Circle
	disks   [4]geom.Circle
	samples [4][]boundarySample // per direction: q and its largest-circle radius
	// bridgeBox conservatively bounds bridge region E_d: the tile clipped to
	// every sampled circle's bounding box. Points outside it skip the sample
	// scan entirely, which is the common case for the construction loop.
	bridgeBox [4]geom.Rect
}

type boundarySample struct {
	q     geom.Point
	rmax  float64
	rmax2 float64 // rmax² — membership compares squared distances
}

// Compile precomputes the boundary samples for the four bridge regions.
func (s NNSpec) Compile() *NNGeometry {
	if s.Samples <= 0 {
		s.Samples = 96
	}
	a := s.A
	g := &NNGeometry{
		Spec: s,
		tile: geom.Square(geom.Pt(0, 0), 10*a),
		c0:   geom.NewCircle(geom.Pt(0, 0), a),
	}
	for _, d := range Directions {
		dx, dy := d.Vec()
		dir := geom.Pt(float64(dx), float64(dy))
		g.disks[d] = geom.NewCircle(dir.Scale(4*a), a)
		// Union of tile t and neighbor t_d is a 20a×10a rectangle.
		u := g.tile.Union(geom.Square(dir.Scale(10*a), 10*a))
		var samp []boundarySample
		box := g.tile
		empty := false
		for _, c := range []geom.Circle{g.c0, g.disks[d]} {
			for i := 0; i < s.Samples; i++ {
				theta := 2 * math.Pi * float64(i) / float64(s.Samples)
				q := c.Center.Add(geom.Pt(c.R*math.Cos(theta), c.R*math.Sin(theta)))
				rmax := insetDistance(u, q)
				// Signed square: a negative inset (sample outside the union
				// rect) must keep rejecting every point, as d > rmax did.
				samp = append(samp, boundarySample{q: q, rmax: rmax, rmax2: rmax * math.Abs(rmax)})
				if rmax < 0 {
					// NewRect would normalize the inverted corners into a
					// non-empty box, so detect the empty bridge directly.
					empty = true
					break
				}
				var ok bool
				box, ok = box.Intersect(geom.NewRect(
					geom.Pt(q.X-rmax, q.Y-rmax), geom.Pt(q.X+rmax, q.Y+rmax)))
				if !ok {
					empty = true
					break
				}
			}
			if empty {
				break
			}
		}
		g.samples[d] = samp
		if empty {
			// Inverted rect: contains no point.
			box = geom.Rect{Min: geom.Pt(1, 1), Max: geom.Pt(0, 0)}
		}
		g.bridgeBox[d] = box
	}
	return g
}

// insetDistance returns the distance from an interior point q to the
// boundary of rect — the radius of the largest disk at q inside rect.
func insetDistance(r geom.Rect, q geom.Point) float64 {
	return math.Min(
		math.Min(q.X-r.Min.X, r.Max.X-q.X),
		math.Min(q.Y-r.Min.Y, r.Max.Y-q.Y),
	)
}

// BridgeContains reports whether the tile-local point p lies in the bridge
// region E_d: inside the tile, inside every sampled largest circle, and
// outside the five disks (the disks take classification precedence, and
// keeping the regions disjoint matches the paper's Figure 5).
func (g *NNGeometry) BridgeContains(d Direction, p geom.Point) bool {
	if !g.bridgeBox[d].Contains(p) {
		// Covers the tile test: bridgeBox is the tile clipped to the
		// sampled circles' boxes.
		return false
	}
	if g.c0.Contains(p) {
		return false
	}
	for _, disk := range g.disks {
		if disk.Contains(p) {
			return false
		}
	}
	for _, s := range g.samples[d] {
		if p.Dist2(s.q) > s.rmax2 {
			return false
		}
	}
	return true
}

// Classify returns the region containing the tile-local point p. Disks take
// precedence over bridges; overlapping bridge regions resolve in Directions
// order (the paper notes only the E regions can overlap).
func (g *NNGeometry) Classify(p geom.Point) NRegion {
	if g.c0.Contains(p) {
		return NC0
	}
	for _, d := range Directions {
		if g.disks[d].Contains(p) {
			return NDisk(d)
		}
	}
	for _, d := range Directions {
		if g.BridgeContains(d, p) {
			return NBridge(d)
		}
	}
	return NNone
}

// TileGood reports whether a tile with the given local points is good
// (§2.2): population at most K/2 and all nine regions occupied.
func (g *NNGeometry) TileGood(localPts []geom.Point) bool {
	if len(localPts) > g.Spec.K/2 {
		return false
	}
	var have [numNRegions]bool
	need := int(numNRegions) - 1 // all but NNone
	for _, p := range localPts {
		r := g.Classify(p)
		if r == NNone || have[r] {
			continue
		}
		have[r] = true
		need--
		if need == 0 {
			return true
		}
	}
	return false
}

// Occupied returns which regions contain at least one of the local points,
// plus the population count — the per-region diagnostic used by the
// construction pipeline and the experiments.
func (g *NNGeometry) Occupied(localPts []geom.Point) (have [numNRegions]bool, count int) {
	for _, p := range localPts {
		have[g.Classify(p)] = true
		count++
	}
	return have, count
}

// BridgeArea estimates the area of a bridge region by grid evaluation
// (n×n probes over the region's bounding box, here the tile).
func (g *NNGeometry) BridgeArea(d Direction, n int) float64 {
	return geom.GridArea(bridgeRegion{g, d}, n)
}

// bridgeRegion adapts a compiled bridge to geom.Region.
type bridgeRegion struct {
	g *NNGeometry
	d Direction
}

func (b bridgeRegion) Contains(p geom.Point) bool { return b.g.BridgeContains(b.d, p) }
func (b bridgeRegion) Bounds() geom.Rect          { return b.g.tile }

// Region returns region r as a geom.Region in tile-local coordinates.
func (g *NNGeometry) Region(r NRegion) geom.Region {
	switch {
	case r == NC0:
		return g.c0
	case r >= NDiskRight && r <= NDiskBottom:
		return g.disks[Direction(r-NDiskRight)]
	case r >= NBridgeRight && r <= NBridgeBottom:
		return bridgeRegion{g, Direction(r - NBridgeRight)}
	default:
		return geom.EmptyRegion{}
	}
}
