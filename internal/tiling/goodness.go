package tiling

import (
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/stats"
)

// MonteCarloGoodProbability estimates the probability that a single tile of
// the given side is good under a Poisson process of intensity lambda, for an
// arbitrary goodness predicate over tile-local points. Each trial draws an
// independent tile realization — exactly the i.i.d. tile structure the
// site-percolation coupling requires.
func MonteCarloGoodProbability(side, lambda float64, good func([]geom.Point) bool, trials int, rng *rand.Rand) stats.Proportion {
	half := side / 2
	tile := geom.NewRect(geom.Pt(-half, -half), geom.Pt(half, half))
	k := 0
	for t := 0; t < trials; t++ {
		pts := pointprocess.Poisson(tile, lambda, rng)
		if good(pts) {
			k++
		}
	}
	return stats.NewProportion(k, trials)
}

// AssignTiles groups point indices by the tile containing them under the
// given map, returning only tiles inside the mapped window. The returned
// slices index into pts; they are subslices of one shared slab, built by
// counting sort over the window's linear tile ids — two O(n) passes and a
// handful of allocations instead of per-tile append growth.
func AssignTiles(m Map, pts []geom.Point) map[Coord][]int32 {
	out := make(map[Coord][]int32)
	nt := m.W * m.H
	if nt <= 0 || len(pts) == 0 {
		return out
	}
	// Pass 1: linear tile id per point (−1 for unmapped), counts per tile.
	cell := make([]int32, len(pts))
	counts := make([]int32, nt+1)
	for i, p := range pts {
		c := m.Tiling.TileOf(p)
		x, y, ok := m.Phi(c)
		if !ok {
			cell[i] = -1
			continue
		}
		id := int32(y*m.W + x)
		cell[i] = id
		counts[id+1]++
	}
	for t := 0; t < nt; t++ {
		counts[t+1] += counts[t]
	}
	// Pass 2: scatter into the slab; counts[t] becomes the running cursor
	// and ends at the start of tile t+1.
	order := make([]int32, counts[nt])
	for i := range pts {
		if c := cell[i]; c >= 0 {
			order[counts[c]] = int32(i)
			counts[c]++
		}
	}
	start := int32(0)
	for t := 0; t < nt; t++ {
		end := counts[t]
		if end > start {
			out[m.PhiInv(t%m.W, t/m.W)] = order[start:end]
		}
		start = end
	}
	return out
}

// LocalPoints converts the given point indices into tile-local coordinates.
func LocalPoints(m Map, c Coord, pts []geom.Point, idx []int32, dst []geom.Point) []geom.Point {
	center := m.Tiling.Center(c)
	dst = dst[:0]
	for _, i := range idx {
		dst = append(dst, pts[i].Sub(center))
	}
	return dst
}
