package tiling

import (
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/stats"
)

// MonteCarloGoodProbability estimates the probability that a single tile of
// the given side is good under a Poisson process of intensity lambda, for an
// arbitrary goodness predicate over tile-local points. Each trial draws an
// independent tile realization — exactly the i.i.d. tile structure the
// site-percolation coupling requires.
func MonteCarloGoodProbability(side, lambda float64, good func([]geom.Point) bool, trials int, rng *rand.Rand) stats.Proportion {
	half := side / 2
	tile := geom.NewRect(geom.Pt(-half, -half), geom.Pt(half, half))
	k := 0
	for t := 0; t < trials; t++ {
		pts := pointprocess.Poisson(tile, lambda, rng)
		if good(pts) {
			k++
		}
	}
	return stats.NewProportion(k, trials)
}

// AssignTiles groups point indices by the tile containing them under the
// given map, returning only tiles inside the mapped window. The returned
// slices index into pts.
func AssignTiles(m Map, pts []geom.Point) map[Coord][]int32 {
	out := make(map[Coord][]int32)
	for i, p := range pts {
		c := m.Tiling.TileOf(p)
		if _, _, ok := m.Phi(c); !ok {
			continue
		}
		out[c] = append(out[c], int32(i))
	}
	return out
}

// LocalPoints converts the given point indices into tile-local coordinates.
func LocalPoints(m Map, c Coord, pts []geom.Point, idx []int32, dst []geom.Point) []geom.Point {
	center := m.Tiling.Center(c)
	dst = dst[:0]
	for _, i := range idx {
		dst = append(dst, pts[i].Sub(center))
	}
	return dst
}
