package tiling

import (
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/pointprocess"
	"repro/internal/stats"
)

// MonteCarloGoodProbability estimates the probability that a single tile of
// the given side is good under a Poisson process of intensity lambda, for an
// arbitrary goodness predicate over tile-local points. Each trial draws an
// independent tile realization — exactly the i.i.d. tile structure the
// site-percolation coupling requires.
func MonteCarloGoodProbability(side, lambda float64, good func([]geom.Point) bool, trials int, rng *rand.Rand) stats.Proportion {
	half := side / 2
	tile := geom.NewRect(geom.Pt(-half, -half), geom.Pt(half, half))
	k := 0
	for t := 0; t < trials; t++ {
		pts := pointprocess.Poisson(tile, lambda, rng)
		if good(pts) {
			k++
		}
	}
	return stats.NewProportion(k, trials)
}

// AssignTilesCSR groups point indices by the tile containing them under the
// given map in dense CSR form: tile t = y·W + x of the mapped window holds
// the point indices order[start[t]:start[t+1]]. Points outside the window
// are dropped. Built by counting sort over the window's linear tile ids —
// the tile-id pass runs sharded across all cores (each point's id is a pure
// function of its position), the scatter is one serial O(n) pass — so the
// layout is identical at any GOMAXPROCS. This is the tile-sharded SENS
// build's input: a dense slab the per-tile workers index directly, with no
// map iteration order to launder.
func AssignTilesCSR(m Map, pts []geom.Point) (start, order []int32) {
	nt := m.W * m.H
	if nt <= 0 || len(pts) == 0 {
		return make([]int32, nt+1), nil
	}
	// Pass 1 (parallel): linear tile id per point (−1 for unmapped).
	cell := make([]int32, len(pts))
	parallel.ForShard(len(pts), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := m.Tiling.TileOf(pts[i])
			if x, y, ok := m.Phi(c); ok {
				cell[i] = int32(y*m.W + x)
			} else {
				cell[i] = -1
			}
		}
	})
	// Counts + prefix sum.
	counts := make([]int32, nt+1)
	for _, c := range cell {
		if c >= 0 {
			counts[c+1]++
		}
	}
	for t := 0; t < nt; t++ {
		counts[t+1] += counts[t]
	}
	// Pass 2: scatter into the slab; the cursor copy keeps counts usable as
	// the start offsets.
	order = make([]int32, counts[nt])
	cursor := make([]int32, nt)
	copy(cursor, counts[:nt])
	for i := range pts {
		if c := cell[i]; c >= 0 {
			order[cursor[c]] = int32(i)
			cursor[c]++
		}
	}
	return counts, order
}

// AssignTiles groups point indices by the tile containing them under the
// given map, returning only occupied tiles inside the mapped window. The
// returned slices index into pts; they are subslices of the one shared slab
// AssignTilesCSR builds.
func AssignTiles(m Map, pts []geom.Point) map[Coord][]int32 {
	out := make(map[Coord][]int32)
	nt := m.W * m.H
	if nt <= 0 || len(pts) == 0 {
		return out
	}
	start, order := AssignTilesCSR(m, pts)
	for t := 0; t < nt; t++ {
		if start[t+1] > start[t] {
			out[m.PhiInv(t%m.W, t/m.W)] = order[start[t]:start[t+1]]
		}
	}
	return out
}

// LocalPoints converts the given point indices into tile-local coordinates.
func LocalPoints(m Map, c Coord, pts []geom.Point, idx []int32, dst []geom.Point) []geom.Point {
	center := m.Tiling.Center(c)
	dst = dst[:0]
	for _, i := range idx {
		dst = append(dst, pts[i].Sub(center))
	}
	return dst
}
