package tiling

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rng"
)

func TestNNSpecValidate(t *testing.T) {
	if err := PaperNNSpec().Validate(); err != nil {
		t.Errorf("paper spec invalid: %v", err)
	}
	if (NNSpec{A: 0, K: 10}).Validate() == nil {
		t.Error("zero A should fail")
	}
	if (NNSpec{A: 1, K: 1}).Validate() == nil {
		t.Error("K=1 should fail")
	}
	if PaperNNSpec().TileSide() != 8.93 {
		t.Errorf("TileSide = %v", PaperNNSpec().TileSide())
	}
}

func TestNNRegionString(t *testing.T) {
	if NC0.String() != "C0" || NDisk(Right).String() != "C-right" ||
		NBridge(Top).String() != "E-top" || NNone.String() != "none" {
		t.Error("NRegion String wrong")
	}
}

func TestNNClassifyDisks(t *testing.T) {
	g := (NNSpec{A: 1, K: 100}).Compile()
	if r := g.Classify(geom.Pt(0, 0)); r != NC0 {
		t.Errorf("center = %v", r)
	}
	if r := g.Classify(geom.Pt(4, 0)); r != NDiskRight {
		t.Errorf("right disk = %v", r)
	}
	if r := g.Classify(geom.Pt(-4, 0)); r != NDiskLeft {
		t.Errorf("left disk = %v", r)
	}
	if r := g.Classify(geom.Pt(0, 4)); r != NDiskTop {
		t.Errorf("top disk = %v", r)
	}
	if r := g.Classify(geom.Pt(0, -4)); r != NDiskBottom {
		t.Errorf("bottom disk = %v", r)
	}
	// Far corner of the tile is in no region.
	if r := g.Classify(geom.Pt(4.9, 4.9)); r != NNone {
		t.Errorf("corner = %v", r)
	}
	// Outside the tile is in no region.
	if r := g.Classify(geom.Pt(6, 0)); r != NNone {
		t.Errorf("outside = %v", r)
	}
}

func TestNNBridgeBetweenDisks(t *testing.T) {
	// The bridge E-right must contain the midpoint between C0 and Cr
	// (verified analytically in DESIGN.md-era analysis: (2a, 0) works).
	g := (NNSpec{A: 1, K: 100}).Compile()
	if !g.BridgeContains(Right, geom.Pt(2, 0)) {
		t.Error("E-right should contain (2a, 0)")
	}
	if got := g.Classify(geom.Pt(2, 0)); got != NBridgeRight {
		t.Errorf("Classify(2a, 0) = %v", got)
	}
	// By symmetry for the other directions.
	if !g.BridgeContains(Left, geom.Pt(-2, 0)) ||
		!g.BridgeContains(Top, geom.Pt(0, 2)) ||
		!g.BridgeContains(Bottom, geom.Pt(0, -2)) {
		t.Error("symmetric bridge points missing")
	}
	// E-right excludes points inside the disks.
	if g.BridgeContains(Right, geom.Pt(0.5, 0)) {
		t.Error("bridge should exclude C0 interior")
	}
	if g.BridgeContains(Right, geom.Pt(4, 0.5)) {
		t.Error("bridge should exclude Cr interior")
	}
	// E-right excludes points near the tile boundary toward the neighbor.
	if g.BridgeContains(Right, geom.Pt(4.95, 0)) {
		t.Error("bridge should not reach the tile edge")
	}
}

// TestNNBridgeDefiningProperty checks the region's defining property on a
// sample of member points: a member must lie inside every largest circle
// centered on the C0/Cd boundary circles (up to discretization tolerance).
func TestNNBridgeDefiningProperty(t *testing.T) {
	const a = 1.0
	g := (NNSpec{A: a, K: 100, Samples: 192}).Compile()
	r := rng.New(5)
	union := geom.NewRect(geom.Pt(-5*a, -5*a), geom.Pt(15*a, 5*a))
	members := 0
	for i := 0; i < 30000 && members < 300; i++ {
		p := geom.Pt(r.Float64()*10*a-5*a, r.Float64()*10*a-5*a)
		if !g.BridgeContains(Right, p) {
			continue
		}
		members++
		// Check against fresh random boundary points of both circles.
		for j := 0; j < 100; j++ {
			theta := r.Float64() * 2 * math.Pi
			var q geom.Point
			if j%2 == 0 {
				q = geom.Pt(a*math.Cos(theta), a*math.Sin(theta))
			} else {
				q = geom.Pt(4*a+a*math.Cos(theta), a*math.Sin(theta))
			}
			rmax := insetDistance(union, q)
			if p.Dist(q) > rmax+0.05*a {
				t.Fatalf("bridge member %v violates defining property at q=%v: d=%v rmax=%v",
					p, q, p.Dist(q), rmax)
			}
		}
	}
	if members < 50 {
		t.Fatalf("too few bridge members sampled: %d", members)
	}
}

// TestNNPathGuarantee is the geometric core of Claim 2.3: for any positions
// of the elected points, consecutive hops of the rep(t) → Er → Cr → Cl(tr)
// → El(tr) → rep(tr) path are guaranteed edges of NN(2, k) when both tiles
// are good. Geometrically: (i) every ball around a C0 point staying within
// t∪tr contains Er; (ii) every ball around a Cr point staying within t∪tr
// contains Er and the neighbor's Cl disk.
func TestNNPathGuarantee(t *testing.T) {
	const a = 1.0
	g := (NNSpec{A: a, K: 100}).Compile()
	r := rng.New(6)
	union := geom.NewRect(geom.Pt(-5*a, -5*a), geom.Pt(15*a, 5*a))
	clNeighbor := geom.NewCircle(geom.Pt(6*a, 0), a) // Cl of tr in local coords

	// Sample bridge members once.
	var bridge []geom.Point
	for i := 0; i < 50000 && len(bridge) < 200; i++ {
		p := geom.Pt(r.Float64()*10*a-5*a, r.Float64()*10*a-5*a)
		if g.BridgeContains(Right, p) {
			bridge = append(bridge, p)
		}
	}
	if len(bridge) < 50 {
		t.Fatalf("too few bridge samples: %d", len(bridge))
	}

	sampleDisk := func(c geom.Circle) geom.Point {
		for {
			p := geom.Pt(
				c.Center.X+(r.Float64()*2-1)*c.R,
				c.Center.Y+(r.Float64()*2-1)*c.R,
			)
			if c.Contains(p) {
				return p
			}
		}
	}

	for i := 0; i < 500; i++ {
		rep := sampleDisk(g.c0)
		cr := sampleDisk(g.disks[Right])
		// (i) ball at rep within t∪tr contains each bridge member.
		rRep := insetDistance(union, rep)
		for _, b := range bridge {
			if rep.Dist(b) > rRep+1e-9 {
				t.Fatalf("ball at rep %v (r=%v) misses bridge point %v", rep, rRep, b)
			}
		}
		// (ii) ball at cr within t∪tr contains bridge and neighbor Cl disk.
		rCr := insetDistance(union, cr)
		for _, b := range bridge {
			if cr.Dist(b) > rCr+1e-9 {
				t.Fatalf("ball at Cr point %v (r=%v) misses bridge point %v", cr, rCr, b)
			}
		}
		if cr.Dist(clNeighbor.Center)+clNeighbor.R > rCr+1e-9 {
			t.Fatalf("ball at Cr point %v (r=%v) does not contain neighbor Cl", cr, rCr)
		}
	}
}

func TestNNTileGood(t *testing.T) {
	g := (NNSpec{A: 1, K: 40}).Compile()
	occupied := []geom.Point{
		{X: 0, Y: 0},                // C0
		{X: 4, Y: 0}, {X: -4, Y: 0}, // Cr, Cl
		{X: 0, Y: 4}, {X: 0, Y: -4}, // Ct, Cb
		{X: 2, Y: 0}, {X: -2, Y: 0}, // Er, El
		{X: 0, Y: 2}, {X: 0, Y: -2}, // Et, Eb
	}
	if !g.TileGood(occupied) {
		t.Error("fully-occupied tile not good")
	}
	if g.TileGood(occupied[:8]) {
		t.Error("tile missing E-bottom reported good")
	}
	// Population cap: more than K/2 points → bad even if occupied.
	crowded := append([]geom.Point{}, occupied...)
	for i := 0; i < 15; i++ { // 9 + 15 = 24 > 40/2
		crowded = append(crowded, geom.Pt(3.5+0.01*float64(i), 3.5))
	}
	if g.TileGood(crowded) {
		t.Error("overcrowded tile reported good")
	}
	if g.TileGood(nil) {
		t.Error("empty tile reported good")
	}
}

func TestNNOccupied(t *testing.T) {
	g := (NNSpec{A: 1, K: 40}).Compile()
	have, count := g.Occupied([]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 4.9, Y: 4.9}})
	if count != 3 {
		t.Errorf("count = %d", count)
	}
	if !have[NC0] || !have[NBridgeRight] || !have[NNone] {
		t.Errorf("occupancy = %v", have)
	}
	if have[NDiskRight] {
		t.Error("spurious disk occupancy")
	}
}

func TestNNBridgeAreaPositive(t *testing.T) {
	g := (NNSpec{A: 0.893, K: 188}).Compile()
	for _, d := range Directions {
		area := g.BridgeArea(d, 150)
		if area <= 0 {
			t.Errorf("bridge %v area = %v", d, area)
		}
		// Bridges are larger than the disks for this geometry.
		if area < g.c0.Area() {
			t.Errorf("bridge %v area %v unexpectedly below disk area %v", d, area, g.c0.Area())
		}
	}
	// Region accessor sanity.
	if geom.Area(g.Region(NC0)) <= 0 {
		t.Error("C0 region area")
	}
	if _, ok := g.Region(NNone).(geom.EmptyRegion); !ok {
		t.Error("NNone region should be empty")
	}
}

func TestNNGoodProbabilityReasonableAtPaperParams(t *testing.T) {
	// At the paper's k = 188, a = 0.893, λ = 1 the tile-good probability
	// should be well above zero (the paper claims > 0.5927; we verify the
	// order of magnitude here and measure precisely in the experiments).
	spec := PaperNNSpec()
	gm := spec.Compile()
	g := rng.New(7)
	pr := MonteCarloGoodProbability(spec.TileSide(), 1.0, gm.TileGood, 400, g)
	if pr.P < 0.3 {
		t.Errorf("P(good) at paper params = %v — implausibly low", pr.P)
	}
}

func TestMonteCarloGoodProbabilityDegenerate(t *testing.T) {
	g := rng.New(8)
	always := func([]geom.Point) bool { return true }
	never := func([]geom.Point) bool { return false }
	if p := MonteCarloGoodProbability(1, 1, always, 50, g); p.P != 1 {
		t.Errorf("always-good P = %v", p.P)
	}
	if p := MonteCarloGoodProbability(1, 1, never, 50, g); p.P != 0 {
		t.Errorf("never-good P = %v", p.P)
	}
}

func TestNNPopulationMatchesPoisson(t *testing.T) {
	// Tile population under the MC sampler should match Poisson(λ·side²).
	spec := NNSpec{A: 0.5, K: 1000}
	gm := spec.Compile()
	g := rng.New(9)
	var total int
	const trials = 2000
	counts := func(pts []geom.Point) bool {
		_, c := gm.Occupied(pts)
		total += c
		return true
	}
	MonteCarloGoodProbability(spec.TileSide(), 2.0, counts, trials, g)
	mean := float64(total) / trials
	want := 2.0 * spec.TileSide() * spec.TileSide()
	if math.Abs(mean-want) > 0.05*want {
		t.Errorf("mean population %v want %v", mean, want)
	}
}
