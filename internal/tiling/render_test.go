package tiling

import (
	"strings"
	"testing"
)

func TestRenderUDGTileRepaired(t *testing.T) {
	out := RenderUDGTile(DefaultUDGSpec(), 48)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 24 {
		t.Fatalf("rows = %d", len(lines))
	}
	for _, ch := range []string{"C", "r", "l", "t", "b"} {
		if !strings.Contains(out, ch) {
			t.Errorf("repaired tile rendering missing %q:\n%s", ch, out)
		}
	}
	// C0 is centered: middle row should contain l … C … r in order.
	mid := lines[len(lines)/2]
	li := strings.Index(mid, "l")
	ci := strings.Index(mid, "C")
	ri := strings.Index(mid, "r")
	if li < 0 || ci < 0 || ri < 0 || !(li < ci && ci < ri) {
		t.Errorf("middle row layout wrong: %q", mid)
	}
}

func TestRenderUDGTileLiteralHasNoRelays(t *testing.T) {
	out := RenderUDGTile(PaperUDGSpec(), 48)
	for _, ch := range []string{"r", "l", "t", "b"} {
		if strings.Contains(out, ch) {
			t.Errorf("literal tile rendering shows relay region %q — should be empty", ch)
		}
	}
	if !strings.Contains(out, "C") {
		t.Error("literal tile rendering missing C0")
	}
}

func TestRenderNNTile(t *testing.T) {
	g := PaperNNSpec().Compile()
	out := RenderNNTile(g, 64)
	for _, ch := range []string{"C", "R", "L", "T", "B", "r", "l", "t", "b"} {
		if !strings.Contains(out, ch) {
			t.Errorf("NN tile rendering missing %q", ch)
		}
	}
	// Bridge 'r' must appear between C and R on the middle row.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	mid := lines[len(lines)/2]
	ci := strings.Index(mid, "C")
	bi := strings.Index(mid, "r")
	di := strings.Index(mid, "R")
	if ci < 0 || bi < 0 || di < 0 || !(ci < bi && bi < di) {
		t.Errorf("middle row layout wrong: %q", mid)
	}
}

func TestRenderTileMinimumSize(t *testing.T) {
	out := RenderUDGTile(DefaultUDGSpec(), 2) // clamped to 8
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("clamped rows = %d", len(lines))
	}
}
