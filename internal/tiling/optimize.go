package tiling

import "math"

// OptimizeUDGSpec searches the feasible repaired-geometry family for the
// parameters minimizing the percolation threshold λs — the paper's stated
// future-work direction of bringing λs closer to the true λc.
//
// The family (DESIGN.md §2): center radius r0, relay radius re, relay
// offset xe, tile side a, subject to
//
//	xe ≥ r0 + re           (relay disjoint from C0)
//	xe ≤ radius − r0 − re  (rep ↔ relay reach)
//	2(xe + re) ≤ a ≤ radius + 2xe − 2re  (inside tile; cross-boundary reach)
//
// P(good) = occ(πr0²)·occ(πre²)⁴ depends only on (r0, re), and is maximized
// at fixed re by the largest feasible r0 = 1/2 − re (taking xe = 1/2, which
// then forces a ∈ [1 + 2re, 2 − 2re], nonempty iff re ≤ 1/4). So the search
// is one-dimensional over re ∈ (0, 1/4]; λs(re) is strictly unimodal and a
// golden-section search converges fast.
//
// Returns the optimal spec (with a set to its smallest feasible value,
// which maximizes tiles per unit area and hence coverage resolution) and
// its λs.
func OptimizeUDGSpec(pc float64) (UDGSpec, float64) {
	lambdaSFor := func(re float64) float64 {
		s := specForRe(re)
		return s.LambdaS(pc)
	}
	// Golden-section search on re ∈ [0.02, 0.25].
	const (
		lo0 = 0.02
		hi0 = 0.25
		phi = 0.6180339887498949
	)
	lo, hi := lo0, hi0
	x1 := hi - phi*(hi-lo)
	x2 := lo + phi*(hi-lo)
	f1, f2 := lambdaSFor(x1), lambdaSFor(x2)
	for hi-lo > 1e-6 {
		if f1 < f2 {
			hi, x2, f2 = x2, x1, f1
			x1 = hi - phi*(hi-lo)
			f1 = lambdaSFor(x1)
		} else {
			lo, x1, f1 = x1, x2, f2
			x2 = lo + phi*(hi-lo)
			f2 = lambdaSFor(x2)
		}
	}
	re := (lo + hi) / 2
	spec := specForRe(re)
	return spec, spec.LambdaS(pc)
}

// specForRe builds the re-parameterized feasible spec: r0 = 1/2 − re,
// xe = 1/2, a = 1 + 2re (the smallest feasible side).
func specForRe(re float64) UDGSpec {
	return UDGSpec{
		Mode:   GeometryRepaired,
		Side:   1 + 2*re,
		R0:     0.5 - re,
		Re:     re,
		Xe:     0.5,
		Radius: 1,
	}
}

// LambdaSForParams returns the threshold λs for an arbitrary feasible
// (r0, re) pair with xe = radius − r0 − re and the smallest feasible side,
// or +Inf when the pair is infeasible. Used by the E15 ablation table.
func LambdaSForParams(r0, re, pc float64) (UDGSpec, float64) {
	spec := UDGSpec{
		Mode:   GeometryRepaired,
		R0:     r0,
		Re:     re,
		Xe:     1 - r0 - re,
		Radius: 1,
	}
	spec.Side = 2 * (spec.Xe + re)
	if spec.Validate() != nil {
		return spec, math.Inf(1)
	}
	return spec, spec.LambdaS(pc)
}
