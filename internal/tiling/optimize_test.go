package tiling

import (
	"math"
	"testing"
)

const pcRef = 0.592746

func TestSpecForReFeasible(t *testing.T) {
	for _, re := range []float64{0.05, 0.1, 0.15, 0.2, 0.25} {
		s := specForRe(re)
		if err := s.Validate(); err != nil {
			t.Errorf("re=%v: %v", re, err)
		}
	}
}

func TestOptimizeUDGSpec(t *testing.T) {
	best, ls := OptimizeUDGSpec(pcRef)
	if err := best.Validate(); err != nil {
		t.Fatalf("optimizer returned invalid spec: %v", err)
	}
	if math.IsInf(ls, 1) || ls <= 0 {
		t.Fatalf("λs = %v", ls)
	}
	// The optimum cannot be meaningfully worse than the default clean spec
	// (golden-section terminates at 1e-6 in re, worth ~1e-4 in λs).
	def := DefaultUDGSpec().LambdaS(pcRef)
	if ls > def+1e-3 {
		t.Errorf("optimized λs %v worse than default %v", ls, def)
	}
	// It must beat obviously bad parameter choices.
	if _, bad := LambdaSForParams(0.45, 0.05, pcRef); bad < ls {
		t.Errorf("lopsided spec should be worse: %v < %v", bad, ls)
	}
	// The known near-optimal region is re ≈ 0.25 with equal areas... the
	// optimizer may trade a touch of r0 for re; sanity-bound the answer.
	if best.Re < 0.15 || best.Re > 0.25+1e-9 {
		t.Errorf("optimal re = %v outside plausible range", best.Re)
	}
	if ls > 13 || ls < 9 {
		t.Errorf("optimal λs = %v outside plausible range [9, 13]", ls)
	}
}

func TestLambdaSForParams(t *testing.T) {
	// Default-equivalent parameters reproduce the default λs.
	spec, ls := LambdaSForParams(0.25, 0.25, pcRef)
	if err := spec.Validate(); err != nil {
		t.Fatalf("spec invalid: %v", err)
	}
	want := DefaultUDGSpec().LambdaS(pcRef)
	if math.Abs(ls-want) > 1e-6 {
		t.Errorf("λs = %v want %v", ls, want)
	}
	// Infeasible pair (r0 + 2re > reach budget) yields +Inf.
	if _, bad := LambdaSForParams(0.45, 0.3, pcRef); !math.IsInf(bad, 1) {
		t.Errorf("infeasible params gave λs = %v", bad)
	}
}

func TestLambdaSMonotoneInRegionAreas(t *testing.T) {
	// Shrinking both regions must raise the threshold.
	_, big := LambdaSForParams(0.25, 0.25, pcRef)
	_, small := LambdaSForParams(0.15, 0.15, pcRef)
	if small <= big {
		t.Errorf("smaller regions should need higher λ: %v vs %v", small, big)
	}
}
