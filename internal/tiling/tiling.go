// Package tiling implements the square tilings of R² and the tile-region
// families at the heart of the paper's constructions (§2): the UDG-SENS
// 5-region tile (center disk C0 plus four edge relay regions) and the
// NN-SENS 9-region tile (center disk C0, four outer disks Cl/Cr/Ct/Cb, four
// bridge regions El/Er/Et/Eb), together with the good-tile predicates and
// the bijection φ between tiles and sites of Z² used for the site
// percolation coupling.
//
// Geometry modes: the paper's literal UDG relay-region definition is empty
// (see DESIGN.md §2); this package provides the literal regions (for the
// negative result), a repaired feasible parameterization (the default), and
// a relaxed operational variant.
package tiling

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Coord identifies a tile by its integer grid coordinates: tile (I, J)
// covers [I·side, (I+1)·side] × [J·side, (J+1)·side].
type Coord struct {
	I, J int
}

// Direction indexes the four tile neighbors.
type Direction int

// The four axis directions, in the paper's l/r/t/b naming.
const (
	Right Direction = iota
	Left
	Top
	Bottom
	numDirections
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Right:
		return "right"
	case Left:
		return "left"
	case Top:
		return "top"
	case Bottom:
		return "bottom"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Vec returns the unit lattice vector of the direction.
func (d Direction) Vec() (dx, dy int) {
	switch d {
	case Right:
		return 1, 0
	case Left:
		return -1, 0
	case Top:
		return 0, 1
	default:
		return 0, -1
	}
}

// Opposite returns the reverse direction.
func (d Direction) Opposite() Direction {
	switch d {
	case Right:
		return Left
	case Left:
		return Right
	case Top:
		return Bottom
	default:
		return Top
	}
}

// Directions lists all four directions for range loops.
var Directions = [4]Direction{Right, Left, Top, Bottom}

// Tiling is a square tiling of the plane with the given side length.
type Tiling struct {
	Side float64
}

// TileOf returns the coordinates of the tile containing p (points exactly
// on a boundary belong to the tile to their upper right).
func (t Tiling) TileOf(p geom.Point) Coord {
	return Coord{
		I: int(math.Floor(p.X / t.Side)),
		J: int(math.Floor(p.Y / t.Side)),
	}
}

// Center returns the center point of tile c.
func (t Tiling) Center(c Coord) geom.Point {
	return geom.Point{
		X: (float64(c.I) + 0.5) * t.Side,
		Y: (float64(c.J) + 0.5) * t.Side,
	}
}

// Rect returns the closed square of tile c.
func (t Tiling) Rect(c Coord) geom.Rect {
	return geom.Rect{
		Min: geom.Point{X: float64(c.I) * t.Side, Y: float64(c.J) * t.Side},
		Max: geom.Point{X: float64(c.I+1) * t.Side, Y: float64(c.J+1) * t.Side},
	}
}

// Local converts p into tile-local coordinates (origin at the tile center).
func (t Tiling) Local(c Coord, p geom.Point) geom.Point {
	return p.Sub(t.Center(c))
}

// Neighbor returns the adjacent tile in direction d.
func (c Coord) Neighbor(d Direction) Coord {
	dx, dy := d.Vec()
	return Coord{I: c.I + dx, J: c.J + dy}
}

// Map is the bijection φ between the tiles covering a W×H tile grid and the
// sites of a W×H box of Z²: tile (I0+i, J0+j) ↔ site (i, j). It realizes
// the paper's coupling between tile goodness and site openness.
type Map struct {
	Tiling Tiling
	I0, J0 int // tile coordinates of lattice site (0, 0)
	W, H   int // lattice extent
}

// NewMap builds the φ map for the tiles covering box with the given tile
// side: all tiles fully contained in the box (partial boundary tiles are
// excluded so every mapped tile sees the full Poisson process restricted to
// it).
func NewMap(box geom.Rect, side float64) Map {
	i0 := int(math.Ceil(box.Min.X / side))
	j0 := int(math.Ceil(box.Min.Y / side))
	i1 := int(math.Floor(box.Max.X/side)) - 1 // last full tile index
	j1 := int(math.Floor(box.Max.Y/side)) - 1
	w, h := i1-i0+1, j1-j0+1
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	return Map{Tiling: Tiling{Side: side}, I0: i0, J0: j0, W: w, H: h}
}

// Phi maps a tile to its lattice site; ok is false for tiles outside the
// mapped window.
func (m Map) Phi(c Coord) (x, y int, ok bool) {
	x, y = c.I-m.I0, c.J-m.J0
	return x, y, x >= 0 && x < m.W && y >= 0 && y < m.H
}

// PhiInv maps a lattice site back to its tile.
func (m Map) PhiInv(x, y int) Coord {
	return Coord{I: x + m.I0, J: y + m.J0}
}

// Tiles returns the number of mapped tiles.
func (m Map) Tiles() int { return m.W * m.H }
