package experiments

import (
	"math"
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/tiling"
)

func registerE04E07() {
	scenario.Register(scenario.Scenario{
		ID: "E04", Name: "udg-claim",
		Title: "UDG-SENS tile goodness and Claim 2.1 path bound",
		Tags:  []string{"sens", "udg", "geometry"},
		Grid: []scenario.Param{
			grid("geometry", "literal", "repaired", "relaxed"),
		},
		Needs: []string{"deployment", "udg-base", "udg-sens"},
		Run:   e04UDGClaim,
	})
	scenario.Register(scenario.Scenario{
		ID: "E05", Name: "lambda-s",
		Title: "Theorem 2.2: λs threshold for UDG-SENS vs direct λc estimate",
		Tags:  []string{"threshold", "udg", "montecarlo"},
		Grid: []scenario.Param{
			grid("λ", "6", "8", "10", "11", "11.7", "12", "13", "14", "16"),
		},
		Run: e05LambdaS,
	})
	scenario.Register(scenario.Scenario{
		ID: "E06", Name: "nn-claim",
		Title: "NN-SENS tile goodness and Claim 2.3 path bound",
		Tags:  []string{"sens", "nn", "geometry"},
		Needs: []string{"deployment", "nn-base", "nn-sens"},
		Run:   e06NNClaim,
	})
	scenario.Register(scenario.Scenario{
		ID: "E07", Name: "ks-threshold",
		Title: "Theorem 2.4: ks threshold for NN-SENS vs direct kc estimate",
		Tags:  []string{"threshold", "nn", "montecarlo"},
		Grid: []scenario.Param{
			grid("k", "80", "120", "150", "170", "188", "210", "240"),
			grid("a", "0.75", "0.80", "0.85", "0.893", "0.95", "1.0", "1.05"),
		},
		Run: e07KS,
	})
}

// e04UDGClaim builds UDG-SENS in all three geometry modes and verifies the
// Figure 4 / Claim 2.1 structure: literal tiles are never good (the paper's
// defect), repaired tiles connect adjacent representatives in ≤ 3 unit hops,
// and relaxed-mode handshakes fail at a measurable rate.
func e04UDGClaim(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E04",
		"UDG-SENS goodness and Claim 2.1 (adjacent reps ≤ 3 hops of length ≤ 1)",
		"geometry", "λ", "good tiles", "adj good pairs",
		"paths ok", "max hops", "max cu", "handshake fails")
	side := cfg.Size(30, 12)
	box := geom.Box(side, side)

	type modeRun struct {
		name   string
		spec   tiling.UDGSpec
		lambda float64
	}
	runs := []modeRun{
		{"literal (paper §2.1)", tiling.PaperUDGSpec(), 16},
		{"repaired (default)", tiling.DefaultUDGSpec(), 16},
		{"relaxed (Fig. 7 as-is)", tiling.RelaxedUDGSpec(), 4},
	}
	for i, r := range runs {
		dep := ctx.Deploy(uint64(300+i), box, r.lambda)
		n, err := ctx.UDGNet(dep, r.spec, scenario.NetOptions{})
		if err != nil {
			t.AddRow(r.name, f2(r.lambda), "ERR: "+err.Error(), "", "", "", "", "")
			continue
		}
		pairs := n.AdjacentGoodPairs()
		ok, maxHops := 0, 0
		maxCu := 0.0
		for _, pr := range pairs {
			hops, within := n.RepPathWithinBound(pr[0], pr[1], r.spec.Radius)
			if hops >= 0 && within && hops <= 3 {
				ok++
			}
			if hops > maxHops {
				maxHops = hops
			}
			ra, rb := n.Tiles[pr[0]].Rep, n.Tiles[pr[1]].Rep
			if ra >= 0 && rb >= 0 {
				plen := graph.DijkstraTo(n.Graph, ra, rb, graph.EuclideanWeight(n.Pts))
				if e := n.Pts[ra].Dist(n.Pts[rb]); e > 0 && !math.IsInf(plen, 1) {
					if cu := plen / e; cu > maxCu {
						maxCu = cu
					}
				}
			}
		}
		t.AddRow(r.name, f2(r.lambda), d(n.Stats.GoodTiles), d(len(pairs)),
			d(ok)+"/"+d(len(pairs)), d(maxHops), f4(maxCu), d(n.Stats.HandshakeFailures))
	}
	t.AddNote("the literal geometry's relay regions are empty (DESIGN.md §2), so it " +
		"can never produce a good tile; the repaired geometry satisfies Claim 2.1 " +
		"for every adjacent good pair")
	return t
}

// e05LambdaS reproduces Theorem 2.2's threshold computation for the
// feasible geometry and compares with a direct estimate of the true λc for
// UDG(2, λ): good-tile probability versus λ (analytic + Monte Carlo), the
// resulting λs, and a crossing-based λc estimate.
func e05LambdaS(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E05",
		"Theorem 2.2: λs for UDG-SENS (repaired geometry) vs direct λc",
		"λ", "P(good) analytic", "P(good) MC", "95% CI")
	spec := tiling.DefaultUDGSpec()
	lambdas := []float64{6, 8, 10, 11, 11.7, 12, 13, 14, 16}
	results := make([]stats.Proportion, len(lambdas))
	trials := cfg.Trials(3000, 300)
	gm := spec.Compile()
	parallelFor(len(lambdas), func(i int) {
		g := rng.Sub(cfg.Seed, uint64(400+i))
		results[i] = tiling.MonteCarloGoodProbability(spec.Side, lambdas[i], gm.TileGood, trials, g)
	})
	for i, l := range lambdas {
		t.AddRow(f4(l), f4(spec.GoodProbability(l)), f4(results[i].P),
			"["+f4(results[i].Low95)+", "+f4(results[i].High95)+"]")
	}
	lambdaS := spec.LambdaS(lattice.SitePcReference)
	t.AddNote("λs(repaired) = %s: smallest λ with P(good) > p_c = %.4f "+
		"(paper claims 1.568 for the literal geometry, which is infeasible)",
		f4(lambdaS), lattice.SitePcReference)

	// Direct λc estimate for UDG(2, λ): left-right crossing of the giant
	// component on an L×L box.
	L := cfg.Size(28, 14)
	crossTrials := cfg.Trials(60, 12)
	cross := func(lam float64) float64 {
		k := 0
		results := make([]bool, crossTrials)
		parallelFor(crossTrials, func(i int) {
			g := rng.Sub(cfg.Seed, uint64(500)+uint64(i)*1000+uint64(lam*64))
			results[i] = udgCrosses(geom.Box(L, L), lam, g)
		})
		for _, r := range results {
			if r {
				k++
			}
		}
		return float64(k) / float64(crossTrials)
	}
	lc, lcOK := stats.MonotoneThreshold(cross, 0.8, 2.4, 0.5, 0.02, 14)
	lcQual := ""
	if !lcOK {
		// Crossing probability did not straddle 1/2 over [0.8, 2.4]: lc is the
		// nearer endpoint, i.e. only a bound on λc.
		lcQual = " (bracket endpoint)"
	}
	t.AddNote("direct λc(UDG) estimate on %sx%s box: ≈ %s%s — consistent with the "+
		"paper's claimed bound λc < 1.568 (their number is below Hall's 3.372 and "+
		"above the truth ≈ 1.44), while the feasible construction only certifies "+
		"λc ≤ %s", f4(L), f4(L), f4(lc), lcQual, f4(lambdaS))
	return t
}

// udgCrosses reports whether a UDG(2, λ) realization on box has a component
// touching both the left and right margin strips (width 1).
func udgCrosses(box geom.Rect, lambda float64, g *rand.Rand) bool {
	pts := pointprocess.Poisson(box, lambda, g)
	if len(pts) == 0 {
		return false
	}
	udg := rgg.UDG(pts, 1)
	labels, _ := graph.Components(udg.CSR)
	leftHit := map[int32]bool{}
	for i, p := range pts {
		if p.X <= box.Min.X+1 {
			leftHit[labels[i]] = true
		}
	}
	for i, p := range pts {
		if p.X >= box.Max.X-1 && leftHit[labels[i]] {
			return true
		}
	}
	return false
}

// e06NNClaim builds NN-SENS at the paper's parameters and verifies the
// Figure 6 / Claim 2.3 structure: every SENS edge exists in NN(2, k)
// (validated during construction), adjacent representatives connect within
// 5 hops, and the stretch constant ck is bounded.
func e06NNClaim(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E06", "NN-SENS goodness and Claim 2.3 (paper k=188, a=0.893)",
		"tiles", "good", "good frac", "adj pairs", "paths ≤5 hops",
		"max ck", "SENS edges in NN base")
	spec := tiling.PaperNNSpec()
	tilesPerSide := int(cfg.Size(6, 4))
	side := float64(tilesPerSide) * spec.TileSide()
	box := geom.Box(side, side)
	dep := ctx.Deploy(600, box, 1.0)
	n, err := ctx.NNNet(dep, spec, scenario.NetOptions{})
	if err != nil {
		t.AddRow("ERR: " + err.Error())
		return t
	}
	pairs := n.AdjacentGoodPairs()
	ok := 0
	maxCk := 0.0
	for _, pr := range pairs {
		hops, _ := n.RepPathWithinBound(pr[0], pr[1], math.Inf(1))
		if hops >= 0 && hops <= 5 {
			ok++
		}
		ra, rb := n.Tiles[pr[0]].Rep, n.Tiles[pr[1]].Rep
		plen := graph.DijkstraTo(n.Graph, ra, rb, graph.EuclideanWeight(n.Pts))
		if e := n.Pts[ra].Dist(n.Pts[rb]); e > 0 && !math.IsInf(plen, 1) {
			if ck := plen / e; ck > maxCk {
				maxCk = ck
			}
		}
	}
	validated := "yes (0 missing)"
	if n.Stats.MissingBaseEdges > 0 {
		validated = d(n.Stats.MissingBaseEdges) + " missing"
	}
	t.AddRow(d(n.Stats.Tiles), d(n.Stats.GoodTiles), f4(n.GoodFraction()),
		d(len(pairs)), d(ok)+"/"+d(len(pairs)), f4(maxCk), validated)
	t.AddNote("construction fails loudly if any SENS edge is absent from NN(2, 188); " +
		"a clean build is the executable proof of Claim 2.3 on this realization")
	return t
}

// e07KS reproduces Theorem 2.4's threshold search: for each k, the tile
// scale a is tuned to maximize the good-tile probability, and ks is the
// smallest k whose optimum exceeds p_c. A direct kc estimate for NN(2, k)
// is reported for contrast.
func e07KS(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E07",
		"Theorem 2.4: P(good) vs k with tuned a (λ=1); paper: ks=188, a=0.893",
		"k", "best a", "P(good) at best a", "95% CI", "exceeds p_c?")
	ks := []int{80, 120, 150, 170, 188, 210, 240}
	aGrid := []float64{0.75, 0.80, 0.85, 0.893, 0.95, 1.0, 1.05}
	scanTrials := cfg.Trials(250, 60)
	refineTrials := cfg.Trials(1500, 200)

	type kResult struct {
		bestA float64
		prop  stats.Proportion
	}
	results := make([]kResult, len(ks))
	parallelFor(len(ks), func(i int) {
		k := ks[i]
		// Scan pass ranks the grid; the top two candidates are re-measured
		// at the refine budget so scan noise cannot settle on a bad a.
		type cand struct {
			a float64
			p float64
		}
		best, second := cand{p: -1}, cand{p: -1}
		for ai, a := range aGrid {
			spec := tiling.NNSpec{A: a, K: k}
			gm := spec.Compile()
			g := rng.Sub(cfg.Seed, uint64(700+i*100+ai))
			p := tiling.MonteCarloGoodProbability(spec.TileSide(), 1.0, gm.TileGood, scanTrials, g).P
			switch {
			case p > best.p:
				second, best = best, cand{a, p}
			case p > second.p:
				second = cand{a, p}
			}
		}
		for ci, a := range []float64{best.a, second.a} {
			if a <= 0 {
				continue
			}
			spec := tiling.NNSpec{A: a, K: k}
			gm := spec.Compile()
			g := rng.Sub(cfg.Seed, uint64(780+i*10+ci))
			p := tiling.MonteCarloGoodProbability(spec.TileSide(), 1.0, gm.TileGood, refineTrials, g)
			if ci == 0 || p.P > results[i].prop.P {
				results[i] = kResult{bestA: a, prop: p}
			}
		}
	})
	measuredKs := -1
	for i, k := range ks {
		r := results[i]
		exceeds := "no"
		if r.prop.Low95 > lattice.SitePcReference {
			exceeds = "yes"
			if measuredKs < 0 {
				measuredKs = k
			}
		}
		t.AddRow(d(k), f4(r.bestA), f4(r.prop.P),
			"["+f4(r.prop.Low95)+", "+f4(r.prop.High95)+"]", exceeds)
	}
	if measuredKs > 0 {
		t.AddNote("measured ks ≈ %d (smallest k on the grid whose CI clears p_c); "+
			"paper's Theorem 2.4 claims 188", measuredKs)
	} else {
		t.AddNote("no k on the grid cleared p_c at this trial budget")
	}

	// The paper's exact operating point, at a larger budget.
	paperSpec := tiling.PaperNNSpec()
	paperGM := paperSpec.Compile()
	gp := rng.Sub(cfg.Seed, 798)
	paperP := tiling.MonteCarloGoodProbability(paperSpec.TileSide(), 1.0,
		paperGM.TileGood, cfg.Trials(4000, 400), gp)
	verdict := "below"
	if paperP.P > lattice.SitePcReference {
		verdict = "above"
	}
	t.AddNote("paper's exact (k=188, a=0.893): P(good) = %s [%s, %s] — %s "+
		"p_c = %.4f", f4(paperP.P), f4(paperP.Low95), f4(paperP.High95), verdict,
		lattice.SitePcReference)

	// Direct kc estimate: smallest k whose NN graph spans a box.
	g := rng.Sub(cfg.Seed, 799)
	L := cfg.Size(30, 15)
	box := geom.Box(L, L)
	kTrials := cfg.Trials(30, 8)
	for k := 1; k <= 5; k++ {
		crossed := 0
		for tr := 0; tr < kTrials; tr++ {
			pts := pointprocess.Poisson(box, 1.0, g)
			if len(pts) == 0 {
				continue
			}
			nn := rgg.NN(pts, k)
			if geomCrosses(nn, box) {
				crossed++
			}
		}
		t.AddNote("direct: NN(2, %d) box-crossing fraction = %s", k,
			f4(float64(crossed)/float64(kTrials)))
	}
	return t
}

// geomCrosses reports whether a geometric graph has a component touching
// both vertical margin strips of width 1.
func geomCrosses(g *rgg.Geometric, box geom.Rect) bool {
	labels, _ := graph.Components(g.CSR)
	leftHit := map[int32]bool{}
	for i, p := range g.Pos {
		if p.X <= box.Min.X+1 {
			leftHit[labels[i]] = true
		}
	}
	for i, p := range g.Pos {
		if p.X >= box.Max.X-1 && leftHit[labels[i]] {
			return true
		}
	}
	return false
}
