package experiments

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/tiling"
)

func registerE08E11() {
	scenario.Register(scenario.Scenario{
		ID: "E08", Name: "stretch",
		Title: "Theorem 3.2: constant distance stretch of the SENS networks",
		Tags:  []string{"sens", "stretch", "udg", "nn"},
		Grid: []scenario.Param{
			grid("network", "UDG-SENS(λ=16)", "NN-SENS(k=188)"),
			grid("distance bucket", "8", "16", "32", "64", "128"),
		},
		Needs: []string{"deployment", "udg-sens", "nn-sens"},
		Run:   e08Stretch,
	})
	scenario.Register(scenario.Scenario{
		ID: "E09", Name: "coverage",
		Title: "Theorem 3.3: exponential coverage decay",
		Tags:  []string{"sens", "coverage", "udg"},
		Grid: []scenario.Param{
			grid("λ", "13", "16", "20"),
			grid("ℓ", "0.5", "1.0", "1.5", "2.0", "2.5", "3.0", "3.5"),
		},
		Needs: []string{"deployment", "udg-sens"},
		Run:   e09Coverage,
	})
	scenario.Register(scenario.Scenario{
		ID: "E10", Name: "sparsity",
		Title: "Property P1: sparsity (degree distribution)",
		Tags:  []string{"sens", "degree", "udg", "nn"},
		Needs: []string{"deployment", "udg-base", "nn-base", "udg-sens", "nn-sens"},
		Run:   e10Sparsity,
	})
	scenario.Register(scenario.Scenario{
		ID: "E11", Name: "power-stretch",
		Title: "Power stretch ≤ δ^β (Li–Wan–Wang)",
		Tags:  []string{"sens", "power", "udg"},
		Grid: []scenario.Param{
			grid("β", "2", "3", "4", "5"),
		},
		Needs: []string{"deployment", "udg-base", "udg-sens", "measurer-slabs"},
		Run:   e11Power,
	})
}

// udgNet pulls a supercritical UDG-SENS network for the property
// experiments (λ = 16 > λs ≈ 11.7) through the scenario cache: the
// deployment, the base graph (when withBase) and the construction are all
// memoized per (seed, stream, side, lambda).
func udgNet(ctx *scenario.Ctx, stream uint64, side, lambda float64, withBase bool) (*core.Network, error) {
	box := geom.Box(side, side)
	dep := ctx.Deploy(stream, box, lambda)
	return ctx.UDGNet(dep, tiling.DefaultUDGSpec(), scenario.NetOptions{SkipBase: !withBase})
}

// e08Stretch measures Theorem 3.2: the distance stretch of rep-to-rep paths
// stays bounded by a constant independent of distance, and its upper tail
// thins with distance.
func e08Stretch(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E08",
		"Theorem 3.2: distance stretch of SENS paths (UDG-SENS λ=16; NN-SENS k=188)",
		"network", "distance bucket", "pairs", "mean stretch", "p99", "max")
	// UDG-SENS.
	n, err := udgNet(ctx, 800, cfg.Size(48, 20), 16, false)
	if err != nil {
		t.AddRow("UDG-SENS", "ERR: "+err.Error(), "", "", "", "")
		return t
	}
	g := rng.Sub(cfg.Seed, 801)
	samples := n.SampleRepStretch(cfg.Trials(800, 100), g)
	addStretchRows(t, "UDG-SENS", samples)

	// NN-SENS.
	spec := tiling.PaperNNSpec()
	tilesPerSide := int(cfg.Size(7, 4))
	side := float64(tilesPerSide) * spec.TileSide()
	box := geom.Box(side, side)
	dep := ctx.Deploy(802, box, 1.0)
	nn, err := ctx.NNNet(dep, spec, scenario.NetOptions{SkipBase: true})
	if err != nil {
		t.AddRow("NN-SENS", "ERR: "+err.Error(), "", "", "", "")
		return t
	}
	// Sampling gets its own substream (like the UDG branch's 801): reusing
	// the deployment stream here would correlate the sampled pairs with the
	// Poisson deployment it just generated (and would break cacheability of
	// the deployment).
	g3 := rng.Sub(cfg.Seed, 803)
	nnSamples := nn.SampleRepStretch(cfg.Trials(300, 60), g3)
	// NN distances are in units of the tile scale; normalize buckets by
	// tile side so the two networks share a table shape.
	for i := range nnSamples {
		nnSamples[i].Euclid /= spec.TileSide()
		nnSamples[i].SubLen /= spec.TileSide()
	}
	addStretchRows(t, "NN-SENS", nnSamples)
	t.AddNote("mean stretch per bucket is flat in distance — the constant-stretch " +
		"property; the p99/mean gap narrows with distance (the exponential tail of " +
		"Theorem 3.2)")
	return t
}

func addStretchRows(t *Table, name string, samples []core.StretchSample) {
	buckets := map[int][]float64{}
	for _, s := range samples {
		if s.Euclid <= 0 {
			continue
		}
		buckets[bucketOf(int(s.Euclid))] = append(buckets[bucketOf(int(s.Euclid))], s.Stretch())
	}
	for _, b := range []int{8, 16, 32, 64, 128} {
		rs := buckets[b]
		if len(rs) < 5 {
			continue
		}
		s := stats.Summarize(rs)
		t.AddRow(name, d(b), d(s.N), f4(s.Mean), f4(s.P99), f4(s.Max))
	}
}

// e09Coverage measures Theorem 3.3: the probability that an ℓ×ℓ box misses
// the SENS network decays exponentially in ℓ, with a sharper rate at higher
// density.
func e09Coverage(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E09", "Theorem 3.3: P(ℓ×ℓ box empty of UDG-SENS) vs ℓ",
		"λ", "ℓ", "P(empty)", "trials")
	lambdas := []float64{13, 16, 20}
	ells := []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5}
	trials := cfg.Trials(4000, 400)
	const realizations = 3 // average over independent deployments
	type run struct {
		lambda float64
		ps     []float64
	}
	runs := make([]run, len(lambdas))
	parallelFor(len(lambdas), func(i int) {
		runs[i] = run{lambda: lambdas[i], ps: make([]float64, len(ells))}
		built := 0
		for r := 0; r < realizations; r++ {
			n, err := udgNet(ctx, uint64(820+i*10+r), cfg.Size(40, 20), lambdas[i], false)
			if err != nil {
				continue
			}
			built++
			g := rng.Sub(cfg.Seed, uint64(860+i*10+r))
			for j, ell := range ells {
				runs[i].ps[j] += n.EmptyBoxProbability(ell, trials, g).P
			}
		}
		if built > 0 {
			for j := range runs[i].ps {
				runs[i].ps[j] /= float64(built)
			}
		}
	})
	for _, r := range runs {
		for j, ell := range ells {
			t.AddRow(f4(r.lambda), f4(ell), f4(r.ps[j]), d(trials*realizations))
		}
		if fit, err := stats.FitExpDecay(ells, r.ps); err == nil {
			t.AddNote("λ=%s: fitted P(empty) ≈ %s·exp(−%s·ℓ), R²=%s — decay rate "+
				"grows with λ as Theorem 3.3's discussion predicts",
				f4(r.lambda), f4(fit.A), f4(fit.Rate), f4(fit.R2))
		}
	}
	t.AddNote("λ=13 sits just above the repaired λs ≈ 11.76: the good-tile process " +
		"is barely supercritical, so large vacant regions persist and the decay is " +
		"shallow — increasing λ sharpens it, which is §3.2's argument verbatim")
	return t
}

// e10Sparsity reports property P1: the degree distribution of both SENS
// networks (max degree 4) against their dense base graphs.
func e10Sparsity(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E10", "P1 sparsity: SENS degree distribution vs base graph",
		"network", "members", "active frac", "mean deg", "max deg", "base mean deg",
		"deg histogram 0..4")
	n, err := udgNet(ctx, 840, cfg.Size(30, 15), 16, true)
	if err == nil {
		h := n.DegreeHistogram()
		t.AddRow("UDG-SENS(λ=16)", d(len(n.Members)), f4(n.ActiveFraction()),
			f4(memberMeanDegree(n)), d(n.MaxDegree()), f4(n.Base.MeanDegree()), histString(h))
	}
	spec := tiling.PaperNNSpec()
	tilesPerSide := int(cfg.Size(5, 3))
	side := float64(tilesPerSide) * spec.TileSide()
	box := geom.Box(side, side)
	dep := ctx.Deploy(841, box, 1.0)
	nn, err := ctx.NNNet(dep, spec, scenario.NetOptions{})
	if err == nil {
		h := nn.DegreeHistogram()
		t.AddRow("NN-SENS(k=188)", d(len(nn.Members)), f4(nn.ActiveFraction()),
			f4(memberMeanDegree(nn)), d(nn.MaxDegree()), f4(nn.Base.MeanDegree()), histString(h))
	}
	t.AddNote("representatives have degree ≤ 4, relays ≤ 2; the base graphs carry " +
		"mean degree λπ ≈ 50 (UDG) and ≥ k = 188 (NN) — the headline sparsity win")
	return t
}

func memberMeanDegree(n *core.Network) float64 {
	if len(n.Members) == 0 {
		return 0
	}
	var sum float64
	for _, v := range n.Members {
		sum += float64(n.Graph.Degree(v))
	}
	return sum / float64(len(n.Members))
}

func histString(h []int) string {
	out := ""
	for i, c := range h {
		if i > 0 {
			out += "/"
		}
		out += d(c)
	}
	return out
}

// e11Power verifies the paper's §1 power-efficiency claim in the form that
// is actually implied by Li–Wan–Wang for a node-subset network (see
// power.LiWanWangBound): with δ the measured Euclidean stretch factor of
// the sample (P2), every pair satisfies p_SENS(u, v) ≤ δ^β · d(u, v)^β.
// The ratio against the dense base's optimal power is reported as the
// empirical price of sparsity (it is not bounded by the per-pair
// stretch^β — the base can exploit many short hops).
func e11Power(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E11",
		"Power of UDG-SENS routes vs δ^β·d^β bound and vs UDG-base optimum",
		"β", "pairs", "max p/(d^β) (≤ δmax^β)", "δmax^β", "violations",
		"mean p_SENS/p_base", "max")
	n, err := udgNet(ctx, 850, cfg.Size(26, 14), 16, true)
	if err != nil {
		t.AddRow("ERR: " + err.Error())
		return t
	}
	reps, _ := n.GoodReps()
	pairs := cfg.Trials(60, 15)
	for _, beta := range []float64{2, 3, 4, 5} {
		g := rng.Sub(cfg.Seed, uint64(851+int(beta)))
		// The slab cache shares the Euclidean weight slabs across the four β
		// measurements (and with any other scenario measuring these graphs).
		samples, err := power.MeasureStretchCached(n.Graph, n.Base.CSR, n.Pts, reps,
			beta, pairs, pairs*40, g, ctx.Slabs)
		if err != nil {
			t.AddRow(f2(beta), "0", "ERR", "", "", "", "")
			continue
		}
		deltaMax := 0.0
		for _, s := range samples {
			if es := s.EuclidStretch(); es > deltaMax {
				deltaMax = es
			}
		}
		bound := power.LiWanWangBound(deltaMax, beta)
		var ratios []float64
		maxNorm := 0.0
		violations := 0
		for _, s := range samples {
			ratios = append(ratios, s.PowerStretch)
			if s.Euclid <= 0 {
				continue
			}
			norm := s.PowerSub / power.EdgeCost(s.Euclid, beta)
			if norm > maxNorm {
				maxNorm = norm
			}
			if norm > bound+1e-9 {
				violations++
			}
		}
		sum := stats.Summarize(ratios)
		t.AddRow(f2(beta), d(sum.N), f4(maxNorm), f4(bound), d(violations),
			f4(sum.Mean), f4(sum.Max))
	}
	t.AddNote("violations must be 0: P2's constant stretch δ caps per-route power " +
		"at δ^β × (straight-line)^β — the paper's power-efficiency claim; the " +
		"p_SENS/p_base columns show the finite price vs a fully-powered dense UDG")
	return t
}
