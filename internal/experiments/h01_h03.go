package experiments

import (
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hng"
	"repro/internal/power"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/tiling"
)

// The H** scenarios evaluate hierarchical neighbor graphs (internal/hng,
// arXiv:0903.0742) as the competing topology the ROADMAP names: the same
// deployments the SENS experiments use (pulled through the engine cache, so
// a suite run builds them once), measured with the same batched
// stretch/power engine.
// h01Ps is the promotion-probability sweep of H01 — the single source for
// both the declarative grid and the driver's loop.
var h01Ps = []float64{0.05, 0.1, 0.2, 0.3, 0.5}

func registerHNG() {
	pVals := make([]string, len(h01Ps))
	for i, p := range h01Ps {
		pVals[i] = f4(p)
	}
	scenario.Register(scenario.Scenario{
		ID: "H01", Name: "hng-sweep",
		Title: "HNG: hierarchy shape, degree and stretch vs promotion probability p",
		Tags:  []string{"hng", "topology:hng", "degree", "stretch"},
		Grid: []scenario.Param{
			{Name: "p", Values: pVals},
		},
		Needs: []string{"deployment", "udg-base", "hng", "measurer-slabs"},
		Run:   h01Sweep,
	})
	scenario.Register(scenario.Scenario{
		ID: "H02", Name: "hng-baselines",
		Title: "HNG vs UDG-SENS vs NN-SENS: sparsity, stretch and power head-to-head",
		Tags:  []string{"hng", "topology:hng", "power", "baseline"},
		Grid: []scenario.Param{
			grid("deployment", "UDG(λ=16)", "NN(λ=1)"),
			grid("structure", "base", "SENS", "HNG(p=1/8)"),
		},
		Needs: []string{"deployment", "udg-base", "udg-sens", "nn-base", "nn-sens",
			"hng", "measurer-slabs"},
		Run: h02Baselines,
	})
	scenario.Register(scenario.Scenario{
		ID: "H03", Name: "hng-churn",
		Title: "HNG: node churn — degradation without rebuild, reconstruction after",
		Tags:  []string{"hng", "topology:hng", "resilience", "extension"},
		Grid: []scenario.Param{
			grid("fail rate q", "0.0", "0.1", "0.2", "0.3", "0.4", "0.5", "0.6"),
			grid("method", "rebuild", "repair"),
		},
		Needs: []string{"deployment", "hng"},
		Run:   h03Churn,
	})
}

// hngDeployment pulls the λ=16 deployment the UDG-side comparisons run on.
// It is E14's deployment (same stream, box and density), so a suite run
// shares one Poisson draw — and its UDG base, SENS network and weight
// slabs — between the baseline table and every HNG scenario.
func hngDeployment(ctx *scenario.Ctx) scenario.Deployment {
	side := ctx.Cfg.Size(22, 12)
	return ctx.Deploy(930, geom.Box(side, side), 16)
}

// nnDeployment pulls the λ=1 paper-parameter deployment the NN-side
// comparisons run on (E10's stream 841 box, sized in PaperNNSpec tiles).
// Every consumer — H02's baselines, the Q** lifetime scenarios — must come
// through here: deployment sharing rides on the cache key, which this
// single recipe keeps identical.
func nnDeployment(ctx *scenario.Ctx) scenario.Deployment {
	spec := tiling.PaperNNSpec()
	tilesPerSide := int(ctx.Cfg.Size(5, 3))
	side := float64(tilesPerSide) * spec.TileSide()
	return ctx.Deploy(841, geom.Box(side, side), 1.0)
}

// h01Sweep sweeps the promotion probability p: how the hierarchy height,
// level populations, degree profile and distance stretch respond to the
// single parameter of the construction.
func h01Sweep(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("H01",
		"HNG hierarchy and stretch vs promotion probability p (λ=16 deployment)",
		"p", "levels", "top size", "edges", "mean deg", "max deg",
		"pruned parents", "mean stretch", "p99 stretch")
	dep := hngDeployment(ctx)
	base := ctx.UDG(dep, 1)
	baseMembers, _ := graph.LargestComponent(base.CSR)
	pairs := cfg.Trials(60, 15)
	rows := make([][]string, len(h01Ps))
	parallelFor(len(h01Ps), func(i int) {
		spec := hng.DefaultSpec()
		spec.P = h01Ps[i]
		h, err := ctx.HNG(dep, spec, uint64(2000+i))
		if err != nil {
			rows[i] = []string{f4(h01Ps[i]), "ERR: " + err.Error(), "", "", "", "", "", "", ""}
			return
		}
		meanStretch, p99Stretch := "n/a", "n/a"
		g := rng.Sub(cfg.Seed, uint64(2050+i))
		if samples, err := power.MeasureStretchCached(h.CSR, base.CSR, dep.Pts,
			baseMembers, 0, pairs, pairs*40, g, ctx.Slabs); err == nil {
			var ds []float64
			for _, s := range samples {
				ds = append(ds, s.DistStretch)
			}
			sum := stats.Summarize(ds)
			meanStretch, p99Stretch = f4(sum.Mean), f4(sum.P99)
		}
		top := h.Stats.LevelSizes[len(h.Stats.LevelSizes)-1]
		rows[i] = []string{
			f4(h01Ps[i]), d(h.Stats.Levels), d(top), d(h.EdgeCount),
			f4(h.MeanDegree()), d(h.MaxDegree()), d(h.Stats.PrunedParents),
			meanStretch, p99Stretch,
		}
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("stretch is the shortest-path ratio against the dense UDG base on the " +
		"same deployment; larger p adds levels whose long up-links act as shortcuts " +
		"(stretch falls) at the cost of more edges and longer links")
	return t
}

// h02Baselines is the head-to-head the ROADMAP asks for: on each family's
// deployment, compare the dense base graph, the paper's SENS construction
// and the hierarchical neighbor graph on sparsity, stretch and power. All
// six structures and both weight-slab sets come from the engine cache.
func h02Baselines(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("H02",
		"HNG vs SENS vs dense base: sparsity, stretch and power (β=2)",
		"deployment", "structure", "active frac", "edges", "mean deg", "max deg",
		"mean stretch", "mean power stretch", "edge power")

	type entry struct {
		deployment, name string
		g                *graph.CSR
		base             *graph.CSR
		pts              []geom.Point
		candidates       []int32
		activeFrac       float64
		err              string
	}
	var entries []entry

	// UDG family: E14's deployment, base and SENS network.
	dep := hngDeployment(ctx)
	base := ctx.UDG(dep, 1)
	baseMembers, _ := graph.LargestComponent(base.CSR)
	entries = append(entries, entry{
		deployment: "UDG(λ=16)", name: "UDG base", g: base.CSR, base: base.CSR,
		pts: dep.Pts, candidates: baseMembers, activeFrac: 1,
	})
	if net, err := ctx.UDGNet(dep, tiling.DefaultUDGSpec(), scenario.NetOptions{}); err == nil {
		entries = append(entries, entry{
			deployment: "UDG(λ=16)", name: "UDG-SENS", g: net.Graph, base: base.CSR,
			pts: dep.Pts, candidates: net.Members, activeFrac: net.ActiveFraction(),
		})
	} else {
		entries = append(entries, entry{deployment: "UDG(λ=16)", name: "UDG-SENS",
			err: err.Error()})
	}
	if h, err := ctx.HNG(dep, hng.DefaultSpec(), 2010); err == nil {
		entries = append(entries, entry{
			deployment: "UDG(λ=16)", name: "HNG(p=1/8)", g: h.CSR, base: base.CSR,
			pts: dep.Pts, candidates: h.Vertices(), activeFrac: 1,
		})
	} else {
		entries = append(entries, entry{deployment: "UDG(λ=16)", name: "HNG(p=1/8)",
			err: err.Error()})
	}

	// NN family: E10's paper-parameter deployment (λ=1, k=188), its NN base
	// and SENS network, and an HNG over the same points.
	spec := tiling.PaperNNSpec()
	nnDep := nnDeployment(ctx)
	nnBase := ctx.NN(nnDep, spec.K)
	nnMembers, _ := graph.LargestComponent(nnBase.CSR)
	entries = append(entries, entry{
		deployment: "NN(λ=1)", name: "NN base", g: nnBase.CSR, base: nnBase.CSR,
		pts: nnDep.Pts, candidates: nnMembers, activeFrac: 1,
	})
	if net, err := ctx.NNNet(nnDep, spec, scenario.NetOptions{}); err == nil {
		entries = append(entries, entry{
			deployment: "NN(λ=1)", name: "NN-SENS", g: net.Graph, base: nnBase.CSR,
			pts: nnDep.Pts, candidates: net.Members, activeFrac: net.ActiveFraction(),
		})
	} else {
		entries = append(entries, entry{deployment: "NN(λ=1)", name: "NN-SENS",
			err: err.Error()})
	}
	if h, err := ctx.HNG(nnDep, hng.DefaultSpec(), 2011); err == nil {
		entries = append(entries, entry{
			deployment: "NN(λ=1)", name: "HNG(p=1/8)", g: h.CSR, base: nnBase.CSR,
			pts: nnDep.Pts, candidates: h.Vertices(), activeFrac: 1,
		})
	} else {
		entries = append(entries, entry{deployment: "NN(λ=1)", name: "HNG(p=1/8)",
			err: err.Error()})
	}

	pairs := cfg.Trials(40, 10)
	rows := make([][]string, len(entries))
	parallelFor(len(entries), func(i int) {
		e := entries[i]
		if e.err != "" {
			rows[i] = []string{e.deployment, e.name, "ERR: " + e.err, "", "", "", "", "", ""}
			return
		}
		g := rng.Sub(cfg.Seed, uint64(2060+i))
		meanStretch, meanPower := "n/a", "n/a"
		if samples, err := power.MeasureStretchCached(e.g, e.base, e.pts, e.candidates,
			2, pairs, pairs*40, g, ctx.Slabs); err == nil {
			var ds, pws []float64
			for _, s := range samples {
				ds = append(ds, s.DistStretch)
				pws = append(pws, s.PowerStretch)
			}
			meanStretch = f4(stats.Mean(ds))
			meanPower = f4(stats.Mean(pws))
		}
		rows[i] = []string{
			e.deployment, e.name, f4(e.activeFrac), d(e.g.EdgeCount),
			f4(e.g.MeanDegree()), d(e.g.MaxDegree()), meanStretch, meanPower,
			f4(power.TotalEdgePower(e.g, e.pts, 2)),
		}
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("HNG keeps every node active at bounded expected degree and needs no " +
		"density threshold, where SENS buys its sparsity by deactivating most " +
		"nodes above λs; HNG's up-links span level gaps, so its edge-power total " +
		"carries a few long hops the unit-disk structures cannot express")
	return t
}

// h03Churn measures churn resilience: nodes fail at rate q; the standing
// HNG fragments (how badly?), and restoring a healthy structure on the
// survivors can go two ways. "rebuild" reruns the construction from scratch
// (fresh promotion draws, survivor indices); "repair" feeds the same deaths
// one by one through the incremental maintainer (hng.Kinetic) and
// cross-checks the result edge-for-edge against a same-levels from-scratch
// Rebuild — the equivalence gate, surfaced in the golden table. The
// deployment is shared through the cache (the failure draws use their own
// substreams, keyed by q so both methods see the same victims).
func h03Churn(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("H03",
		"HNG node churn: no-rebuild degradation, reconstruction and incremental repair",
		"fail rate q", "method", "survivors", "no-rebuild frac", "edges",
		"mean deg", "max deg", "connected", "matches rebuild")
	dep := hngDeployment(ctx)
	h, err := ctx.HNG(dep, hng.DefaultSpec(), 2010)
	if err != nil {
		t.AddRow("ERR: " + err.Error())
		return t
	}
	qs := []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	methods := []string{"rebuild", "repair"}
	rows := make([][]string, len(qs)*len(methods))
	parallelFor(len(rows), func(row int) {
		qi, method := row/len(methods), methods[row%len(methods)]
		g := rng.Sub(cfg.Seed, uint64(2070+qi))
		alive := make([]bool, len(dep.Pts))
		var survivors []geom.Point
		for j := range dep.Pts {
			if g.Float64() >= qs[qi] {
				alive[j] = true
				survivors = append(survivors, dep.Pts[j])
			}
		}
		noRebuild := 0.0
		if len(survivors) > 0 {
			noRebuild = float64(graph.LargestComponentWhere(h.CSR, nil,
				func(u int32) bool { return alive[u] })) / float64(len(survivors))
		}
		prefix := []string{f4(qs[qi]), method, d(len(survivors)), f4(noRebuild)}
		if method == "rebuild" {
			rb, err := hng.Build(survivors, hng.DefaultSpec(), rng.Sub(cfg.Seed, uint64(2080+qi)))
			if err != nil {
				rows[row] = append(prefix, "ERR: "+err.Error(), "", "", "", "")
				return
			}
			members, _ := graph.LargestComponent(rb.CSR)
			connected := "no"
			if len(members) == len(survivors) || len(survivors) <= 1 {
				connected = "yes"
			}
			rows[row] = append(prefix, d(rb.EdgeCount), f4(rb.MeanDegree()),
				d(rb.MaxDegree()), connected, "—")
			return
		}
		k := hng.NewKinetic(h, dep.Box)
		for j := range alive {
			if !alive[j] {
				k.Remove(int32(j))
			}
		}
		got := k.Materialize()
		matches := "yes"
		if ref, err := hng.Rebuild(k.Positions(), k.Levels(), alive, h.Spec); err != nil {
			matches = "ERR: " + err.Error()
		} else if diff := graph.FirstDiff(got, ref.CSR); diff != "" {
			matches = "DIFF: " + diff
		}
		lcc := graph.LargestComponentWhere(got, nil,
			func(u int32) bool { return alive[u] })
		connected := "no"
		if lcc == len(survivors) || len(survivors) <= 1 {
			connected = "yes"
		}
		meanDeg := 0.0
		if len(survivors) > 0 {
			meanDeg = 2 * float64(got.EdgeCount) / float64(len(survivors))
		}
		rows[row] = append(prefix, d(got.EdgeCount), f4(meanDeg),
			d(got.MaxDegree()), connected, matches)
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("the standing hierarchy fragments fast — every up-link is a cut edge " +
		"below the top levels — but both restorations are connected at EVERY q: " +
		"unlike UDG-SENS (E17), whose rebuild health crosses at λ·(1−q) ≈ λs, the " +
		"HNG construction has no percolation threshold to clear. The repair rows " +
		"keep the original promotion draws (levels are sticky), so their graphs " +
		"differ from the re-rolled rebuild rows but match a same-levels rebuild " +
		"exactly — the maintained-structure equivalence gate, in the golden")
	return t
}
