package experiments

import (
	"math"

	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
)

func registerE01E03() {
	scenario.Register(scenario.Scenario{
		ID: "E01", Name: "base-models",
		Title: "Base model sanity: Poisson process, UDG and NN degree laws",
		Tags:  []string{"model", "sanity"},
		Grid: []scenario.Param{
			grid("model", "Poisson(2)", "UDG(2,λ)", "NN(2,4)"),
			grid("λ", "1.5", "2.0"),
		},
		Run: e01BaseModels,
	})
	scenario.Register(scenario.Scenario{
		ID: "E02", Name: "site-pc",
		Title: "Site percolation critical probability (paper §2: p_c ∈ (0.592, 0.593))",
		Tags:  []string{"percolation", "lattice"},
		Grid: []scenario.Param{
			grid("box n", "16", "32", "64"),
			grid("p", "0.55", "0.5927", "0.65"),
		},
		Run: e02SitePc,
	})
	scenario.Register(scenario.Scenario{
		ID: "E03", Name: "chemical-distance",
		Title: "Chemical distance concentration (Lemma 1.1, Antal–Pisztora)",
		Tags:  []string{"percolation", "lattice"},
		Grid: []scenario.Param{
			grid("p", "0.65", "0.75", "0.85"),
			grid("D bucket", "8", "16", "32", "64", "128"),
		},
		Run: e03ChemicalDistance,
	})
}

// e01BaseModels validates the three base stochastic models against their
// exact laws: Poisson counts, the UDG mean-degree law λπr², and the NN
// degree bounds (every vertex has degree ≥ k; mean ≈ 1.3–2k). The RNG
// substream is consumed sequentially across all three models, so nothing
// here is cacheable (see the scenario.Cache correctness rule).
func e01BaseModels(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E01", "Base model sanity",
		"model", "metric", "theory", "measured")
	g := rng.Sub(cfg.Seed, 1)

	// Poisson counts.
	box := geom.Box(cfg.Size(20, 8), cfg.Size(20, 8))
	const lambda = 2.0
	trials := cfg.Trials(300, 40)
	var counts []float64
	for i := 0; i < trials; i++ {
		counts = append(counts, float64(len(pointprocess.Poisson(box, lambda, g))))
	}
	cs := stats.Summarize(counts)
	wantMean := lambda * box.Area()
	t.AddRow("Poisson(2)", "mean count", f4(wantMean), f4(cs.Mean))
	t.AddRow("Poisson(2)", "var/mean (≈1)", "1", f4(cs.Var/cs.Mean))

	// UDG interior mean degree = λπr².
	for _, l := range []float64{1.5, 2.0} {
		pts := pointprocess.Poisson(box, l, g)
		udg := rgg.UDG(pts, 1)
		interior := box.Expand(-1.5)
		var sum, n float64
		for i, p := range pts {
			if interior.Contains(p) {
				sum += float64(udg.Degree(int32(i)))
				n++
			}
		}
		t.AddRow("UDG(2,λ="+f2(l)+")", "interior mean degree", f4(l*math.Pi), f4(sum/n))
	}

	// NN degree law.
	const k = 4
	pts := pointprocess.Poisson(box, 1.5, g)
	nn := rgg.NN(pts, k)
	minDeg := nn.N
	var sumDeg float64
	for u := 0; u < nn.N; u++ {
		deg := nn.Degree(int32(u))
		if deg < minDeg {
			minDeg = deg
		}
		sumDeg += float64(deg)
	}
	t.AddRow("NN(2,k=4)", "min degree (≥ k)", "4", d(minDeg))
	t.AddRow("NN(2,k=4)", "mean degree (k..2k)", "[4, 8]", f4(sumDeg/float64(nn.N)))
	return t
}

// e02SitePc reproduces the site-percolation critical probability the paper
// quotes from [13]: crossing probabilities across p for growing boxes, and
// the bisection estimate of p_c.
func e02SitePc(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E02", "Site percolation p_c (reference 0.5927)",
		"box n", "p", "P(horizontal crossing)", "95% CI")
	type cell struct {
		n      int
		p      float64
		result stats.Proportion
	}
	ns := []int{16, 32, 64}
	ps := []float64{0.55, 0.5927, 0.65}
	cells := make([]cell, 0, len(ns)*len(ps))
	for _, n := range ns {
		for _, p := range ps {
			cells = append(cells, cell{n: n, p: p})
		}
	}
	trials := cfg.Trials(400, 60)
	parallelFor(len(cells), func(i int) {
		g := rng.Sub(cfg.Seed, uint64(100+i))
		cells[i].result = lattice.CrossingProbability(cells[i].n, cells[i].p, trials, g)
	})
	for _, c := range cells {
		t.AddRow(d(c.n), f4(c.p), f4(c.result.P),
			"["+f4(c.result.Low95)+", "+f4(c.result.High95)+"]")
	}
	g := rng.Sub(cfg.Seed, 2)
	pc, ok := lattice.EstimatePc(48, cfg.Trials(150, 40), 18, g)
	qual := ""
	if !ok {
		// The bracket did not straddle 1/2: pc is an endpoint bound, not a
		// located crossing (cannot happen at this box size in practice).
		qual = " (bracket endpoint — no crossing located)"
	}
	t.AddNote("bisection estimate on 48×48: p_c ≈ %s%s (reference %.6g); crossing "+
		"probability sharpens around p_c as the box grows — the phase transition "+
		"the tile coupling rides on", f4(pc), qual, lattice.SitePcReference)
	return t
}

// e03ChemicalDistance reproduces Lemma 1.1 (Antal–Pisztora): in the
// supercritical phase the chemical distance D_p(x, y) is at most a constant
// ρ(p) times the lattice distance, with exponentially decaying tail.
func e03ChemicalDistance(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E03", "Chemical distance D_p/D concentration (Lemma 1.1)",
		"p", "D bucket", "pairs", "mean Dp/D", "p99 Dp/D", "max Dp/D")
	n := int(cfg.Size(120, 48))
	type job struct {
		p      float64
		ratios map[int][]float64 // bucket → ratios
	}
	ps := []float64{0.65, 0.75, 0.85}
	jobs := make([]job, len(ps))
	pairsPer := cfg.Trials(400, 60)
	parallelFor(len(ps), func(pi int) {
		g := rng.Sub(cfg.Seed, uint64(200+pi))
		jobs[pi] = job{p: ps[pi], ratios: map[int][]float64{}}
		l := lattice.Sample(n, n, ps[pi], g)
		giant := l.LargestCluster()
		if len(giant) < 10 {
			return
		}
		for tr := 0; tr < pairsPer; tr++ {
			a := giant[g.IntN(len(giant))]
			b := giant[g.IntN(len(giant))]
			ax, ay := l.XY(a)
			bx, by := l.XY(b)
			dl1 := lattice.L1(ax, ay, bx, by)
			if dl1 < 4 {
				continue
			}
			dp := l.ChemicalDistance(ax, ay, bx, by)
			if dp < 0 {
				continue
			}
			bucket := bucketOf(dl1)
			jobs[pi].ratios[bucket] = append(jobs[pi].ratios[bucket], float64(dp)/float64(dl1))
		}
	})
	for _, j := range jobs {
		for _, bucket := range []int{8, 16, 32, 64, 128} {
			rs := j.ratios[bucket]
			if len(rs) < 5 {
				continue
			}
			s := stats.Summarize(rs)
			t.AddRow(f4(j.p), d(bucket), d(s.N), f4(s.Mean), f4(s.P99), f4(s.Max))
		}
	}
	t.AddNote("ratios stay bounded by a p-dependent constant ρ(p) that decreases " +
		"toward 1 as p → 1, and the p99/mean gap narrows with D — the " +
		"concentration Theorem 3.2 inherits")
	return t
}

// bucketOf maps a distance to the largest power-of-two bucket ≤ it,
// capped at 128.
func bucketOf(dl1 int) int {
	b := 8
	for b*2 <= dl1 && b < 128 {
		b *= 2
	}
	return b
}
