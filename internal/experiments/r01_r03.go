package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/scenario"
)

// The R** scenarios are the adversarial-robustness family: instead of
// draining a healthy network they attack it — crash-stop failures (random
// and targeted, the random-failure vs targeted-attack contrast of
// arXiv:1405.3368), per-link message loss, and the retry/backoff recovery
// machinery of arXiv:2001.02761. Fault schedules are pure data built from
// dedicated RNG substreams, so they ride the scenario cache (Ctx.Faults)
// like deployments do; the simulations applying them never cache.
//
// Substream map: 4200+ R01 random victim orders, 4150+ R02 random victim
// orders, 4100+ R02 traffic, 4300+ R03 lattice/pairs and per-cell loss.

// r01Fractions is the removed-fraction axis of the decay curves.
var r01Fractions = []float64{0.1, 0.2, 0.3, 0.4, 0.5}

// r03Losses and r03Policies are the R03 sweep axes.
var (
	r03Losses   = []float64{0, 0.05, 0.1, 0.2}
	r03Policies = []string{"off", "capped", "unbounded"}
)

func registerRobustness() {
	fracVals := make([]string, len(r01Fractions))
	for i, f := range r01Fractions {
		fracVals[i] = f4(f)
	}
	lossVals := make([]string, len(r03Losses))
	for i, l := range r03Losses {
		lossVals[i] = f4(l)
	}
	scenario.Register(scenario.Scenario{
		ID: "R01", Name: "attack-decay",
		Title: "Giant-component decay: random failure vs targeted attack, per topology",
		Tags:  []string{"robustness", "attack", "fault"},
		Grid: []scenario.Param{
			grid("structure", "UDG-SENS", "NN-SENS", "HNG(p=1/8)"),
			grid("attack", "random", "degree", "betweenness"),
			{Name: "removed", Values: fracVals},
		},
		Needs: []string{"deployment", "udg-sens", "nn-sens", "hng", "fault-schedule"},
		Run:   r01Decay,
	})
	scenario.Register(scenario.Scenario{
		ID: "R02", Name: "lifetime-under-attack",
		Title: "Network lifetime under crash-stop attack vs the no-fault baseline",
		Tags:  []string{"robustness", "attack", "energy", "lifetime"},
		Grid: []scenario.Param{
			grid("structure", "UDG-SENS", "NN-SENS", "HNG(p=1/8)"),
			grid("fault", "none", "random 10%", "degree 10%"),
		},
		Needs: []string{"deployment", "udg-sens", "nn-sens", "hng",
			"lifetime-instance", "fault-schedule"},
		Run: r02LifetimeUnderAttack,
	})
	scenario.Register(scenario.Scenario{
		ID: "R03", Name: "loss-retry",
		Title: "Delivery and energy per delivered packet: loss rate × retry policy",
		Tags:  []string{"robustness", "loss", "retry", "routing"},
		Grid: []scenario.Param{
			{Name: "loss", Values: lossVals},
			grid("policy", r03Policies...),
		},
		Run: r03LossRetry,
	})
}

// robustnessInstance is one structure under attack: its cached lifetime
// instance (graph, members, sinks) plus the naming needed for cache keys.
type robustnessInstance struct {
	name string
	key  string // cache-key stem identifying the structure instance
	inst *scenario.EnergyInstance
}

// robustnessInstances prepares the three structures the R scenarios
// compare, mirroring Q01's topology head-to-head (UDG-SENS and HNG on the
// λ=16 deployment, NN-SENS on the λ=1 paper deployment).
func robustnessInstances(ctx *scenario.Ctx) ([]robustnessInstance, error) {
	udg, err := udgSensInstance(ctx)
	if err != nil {
		return nil, err
	}
	nn, err := nnSensInstance(ctx)
	if err != nil {
		return nil, err
	}
	hngDep := hngDeployment(ctx)
	h, err := hngInstance(ctx, hngDep, 2010)
	if err != nil {
		return nil, err
	}
	return []robustnessInstance{
		{"UDG-SENS", "udgsens|" + hngDeployment(ctx).Key, udg},
		{"NN-SENS", "nnsens|" + nnDeployment(ctx).Key, nn},
		{"HNG(p=1/8)", fmt.Sprintf("hng|%s|st=2010", hngDep.Key), h},
	}, nil
}

// poweredNodes returns the instance's battery-powered participants — the
// attack surface (sinks are mains-powered infrastructure, not sensors an
// adversary picks off).
func poweredNodes(inst *scenario.EnergyInstance) []int32 {
	out := make([]int32, 0, len(inst.Nodes))
	for _, v := range inst.Nodes {
		if !contains(inst.Sinks, v) {
			out = append(out, v)
		}
	}
	return out
}

// victimOrder returns the cached victim ordering for the structure under
// the selector, wrapped in a one-crash-per-round schedule so the ordering
// itself rides the fault cache: AliveSet(n, k) is then exactly "the first
// k victims removed". Random orderings consume substream stream entirely;
// targeted orderings are pure functions of the graph.
func victimOrder(ctx *scenario.Ctx, ri robustnessInstance, sel fault.Selector,
	stream uint64) *fault.Schedule {
	key := fmt.Sprintf("r01|%s|sel=%s|st=%d", ri.key, sel, stream)
	return ctx.Faults(key, func() *fault.Schedule {
		victims := fault.Victims(ri.inst.Graph, poweredNodes(ri.inst), sel,
			rng.Sub(ctx.Cfg.Seed, stream))
		return fault.CrashSchedule(victims, 1.0, 1, 1)
	})
}

// lccFrac returns the largest-connected-component fraction over the
// instance's participants restricted to the alive mask.
func lccFrac(inst *scenario.EnergyInstance, alive []bool) float64 {
	lcc := graph.LargestComponentWhere(inst.Graph, inst.Nodes,
		func(u int32) bool { return alive[u] })
	return float64(lcc) / float64(len(inst.Nodes))
}

// r01Decay removes a growing fraction of each structure's nodes — uniformly
// at random vs targeted at the highest-degree / highest-betweenness
// vertices — and tracks the giant-component fraction: the discriminating
// robustness measurement of the scale-free WSN literature. Victim orderings
// are cached fault schedules; the decay evaluation is pure arithmetic on
// AliveSet masks.
func r01Decay(ctx *scenario.Ctx) *Table {
	cols := []string{"structure", "attack", "roles", "lcc@0"}
	for _, f := range r01Fractions {
		cols = append(cols, "lcc@"+f4(f))
	}
	t := scenario.NewTable("R01",
		"Giant-component decay under random failure vs targeted attack", cols...)
	instances, err := robustnessInstances(ctx)
	if err != nil {
		t.AddRow("ERR: " + err.Error())
		return t
	}
	selectors := []fault.Selector{fault.SelectRandom, fault.SelectDegree, fault.SelectBetweenness}
	type job struct {
		ri  robustnessInstance
		sel fault.Selector
		idx int
	}
	var jobs []job
	for si, ri := range instances {
		for _, sel := range selectors {
			jobs = append(jobs, job{ri, sel, si})
		}
	}
	rows := make([][]string, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		sched := victimOrder(ctx, j.ri, j.sel, uint64(4200+j.idx))
		n := j.ri.inst.Graph.N
		roles := len(sched.Crashes)
		row := []string{j.ri.name, j.sel.String(), d(roles),
			f4(lccFrac(j.ri.inst, sched.AliveSet(n, 0)))}
		for _, f := range r01Fractions {
			removed := int(f * float64(roles))
			row = append(row, f4(lccFrac(j.ri.inst, sched.AliveSet(n, removed))))
		}
		rows[i] = row
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("lcc@f = largest surviving component fraction after removing the first " +
		"f·roles victims (sinks excluded from the attack surface); the random row is a " +
		"uniform shuffle, degree/betweenness rows remove hubs/bridges first. Targeted " +
		"removal collapsing the giant component faster than random is the " +
		"arXiv:1405.3368 signature; bounded-degree SENS structures have no hubs to " +
		"decapitate, which is exactly the robustness the paper's P1 buys")
	return t
}

// r02LifetimeUnderAttack reruns the Q01 lifetime head-to-head with a
// crash-stop attack landing mid-run: 10% of each structure's roles, chosen
// uniformly vs by descending degree, crash at a scale-aware round. Fault
// variants of a structure share the traffic substream, so every shift vs
// the none row is pure fault effect. Routes heal via localized repair
// (graceful degradation), not full rebuild.
func r02LifetimeUnderAttack(ctx *scenario.Ctx) *Table {
	t := scenario.NewTable("R02",
		"Lifetime under crash-stop attack (10% of roles, localized route repair)",
		"structure", "fault", "crashed", "first death", "coverage life", "rounds",
		"delivery", "Δdelivery", "lcc@end", "resid jain")
	instances, err := robustnessInstances(ctx)
	if err != nil {
		t.AddRow("ERR: " + err.Error())
		return t
	}
	spec := qSpec(ctx.Cfg)
	spec.Repair = energy.RepairLocal
	crashRound := spec.MaxRounds / 10
	faults := []string{"none", "random 10%", "degree 10%"}
	type result struct {
		rep *energy.Report
		err error
	}
	results := make([]result, len(instances)*len(faults))
	parallelFor(len(results), func(i int) {
		si, fi := i/len(faults), i%len(faults)
		ri := instances[si]
		s := spec
		switch fi {
		case 1:
			key := fmt.Sprintf("r02|%s|sel=random|frac=0.1|round=%d|st=%d",
				ri.key, crashRound, 4150+si)
			s.Faults = ctx.Faults(key, func() *fault.Schedule {
				victims := fault.Victims(ri.inst.Graph, poweredNodes(ri.inst),
					fault.SelectRandom, rng.Sub(ctx.Cfg.Seed, uint64(4150+si)))
				return fault.CrashSchedule(victims, 0.1, crashRound, 0)
			})
		case 2:
			key := fmt.Sprintf("r02|%s|sel=degree|frac=0.1|round=%d", ri.key, crashRound)
			s.Faults = ctx.Faults(key, func() *fault.Schedule {
				victims := fault.Victims(ri.inst.Graph, poweredNodes(ri.inst),
					fault.SelectDegree, nil)
				return fault.CrashSchedule(victims, 0.1, crashRound, 0)
			})
		}
		rep, err := simulate(ctx, ri.inst, s, uint64(4100+si))
		results[i] = result{rep, err}
	})
	for i, res := range results {
		si, fi := i/len(faults), i%len(faults)
		if res.err != nil {
			t.AddRow(instances[si].name, faults[fi], "ERR: "+res.err.Error(),
				"", "", "", "", "", "", "")
			continue
		}
		rep := res.rep
		delta := "—"
		if base := results[si*len(faults)].rep; fi > 0 && base != nil {
			delta = f4(rep.DeliveryRatio() - base.DeliveryRatio())
		}
		t.AddRow(instances[si].name, faults[fi], d(rep.Crashed),
			d(rep.FirstDeath), d(rep.CoverageLifetime), d(rep.Rounds),
			f4(rep.DeliveryRatio()), delta, f4(rep.LargestAtEnd()), f4(rep.ResidualJain))
	}
	t.AddNote("the attack crashes ⌈10%%·roles⌉ nodes at round %d (battery state "+
		"irrelevant); fault variants share their structure's traffic substream, so "+
		"Δdelivery is the pure fault effect. Repair is localized (RepairLocal): intact "+
		"routes survive, orphans re-attach to the nearest intact neighbor. resid jain = "+
		"Jain fairness of residual energy (1 = perfectly even)", crashRound)
	return t
}

// r03EnergyUnits prices a routing attempt like the simnet contract: every
// transmission attempt costs tx+rx (2 units; the rx is spent even on a lost
// packet's last hop in expectation, keeping the comparison simple) and
// every probe costs one message.
func r03EnergyUnits(res routing.Result) float64 {
	return 2*float64(res.Attempts) + float64(res.Probes)
}

// r03LossRetry sweeps per-link loss against the retry policy on the
// percolated-lattice router: delivery ratio and the energy cost of each
// delivered packet. The recovery question of arXiv:2001.02761 — retries
// restore QoS, but every retransmission spends battery; the energy per
// *delivered* packet is the honest price.
func r03LossRetry(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("R03",
		"Loss rate × retry policy: delivery ratio and energy per delivered packet",
		"loss", "policy", "routes", "delivered", "delivery", "attempts/route",
		"backoff/route", "energy/delivered")
	n := int(cfg.Size(60, 24))
	g := rng.Sub(cfg.Seed, 4300)
	l := lattice.Sample(n, n, 0.75, g)
	giant := l.LargestCluster()
	if len(giant) < 50 {
		t.AddRow("ERR: subcritical lattice realization")
		return t
	}
	// Pre-draw the route endpoints once (continuing the lattice substream,
	// E17-style direct build): every cell routes the same pairs, so the
	// policy axis is a paired comparison.
	routes := cfg.Trials(150, 40)
	type pair struct{ ax, ay, bx, by int }
	var pairs []pair
	for len(pairs) < routes {
		a := giant[g.IntN(len(giant))]
		b := giant[g.IntN(len(giant))]
		ax, ay := l.XY(a)
		bx, by := l.XY(b)
		if l.ChemicalDistance(ax, ay, bx, by) < 2 {
			continue
		}
		pairs = append(pairs, pair{ax, ay, bx, by})
	}
	policies := map[string]routing.Retry{
		"off":       {},
		"capped":    {Attempts: 4, Backoff: 1, MaxBackoff: 8, Jitter: 0.5, AltPath: true},
		"unbounded": {Attempts: -1, Backoff: 1, MaxBackoff: 8, Jitter: 0.5, AltPath: true},
	}
	type cell struct {
		loss   float64
		policy string
	}
	var cells []cell
	for _, loss := range r03Losses {
		for _, p := range r03Policies {
			cells = append(cells, cell{loss, p})
		}
	}
	rows := make([][]string, len(cells))
	parallelFor(len(cells), func(i int) {
		c := cells[i]
		opt := routing.Options{
			Loss:  c.loss,
			Rng:   rng.Sub(cfg.Seed, uint64(4310+i)),
			Retry: policies[c.policy],
		}
		var scratch routing.Scratch
		delivered := 0
		var attempts, backoff, energy float64
		for _, p := range pairs {
			res := routing.RouteXYInto(l, p.ax, p.ay, p.bx, p.by, opt, &scratch)
			attempts += float64(res.Attempts)
			backoff += res.Backoff
			energy += r03EnergyUnits(res)
			if res.Delivered {
				delivered++
			}
		}
		perDelivered := "n/a"
		if delivered > 0 {
			perDelivered = f4(energy / float64(delivered))
		}
		rows[i] = []string{f4(c.loss), c.policy, d(len(pairs)), d(delivered),
			f4(float64(delivered) / float64(len(pairs))),
			f4(attempts / float64(len(pairs))),
			f4(backoff / float64(len(pairs))), perDelivered}
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("all cells route the same endpoint pairs on one p=0.75 lattice; each cell " +
		"draws its loss/jitter from its own substream. off = single attempt per hop; " +
		"capped = ≤4 attempts, backoff 1·2^k capped at 8, jitter 0.5, alternate-path " +
		"fallback; unbounded = unlimited attempts. energy/delivered prices every " +
		"attempt at tx+rx=2 plus 1 per probe — retries buy delivery back at a " +
		"measurable energy premium, and unbounded pays more for little over capped")
	return t
}
