package experiments

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/scenario"
)

// TestR01TargetedBeatsRandom pins the robustness acceptance criterion: on
// at least one topology the degree-targeted attack collapses the giant
// component strictly faster than random failure, never slower on average.
func TestR01TargetedBeatsRandom(t *testing.T) {
	ctx := scenario.NewCtx(goldenCfg)
	instances, err := robustnessInstances(ctx)
	if err != nil {
		t.Fatal(err)
	}
	anyStrict := false
	for _, ri := range instances {
		random := victimOrder(ctx, ri, fault.SelectRandom, 4200)
		degree := victimOrder(ctx, ri, fault.SelectDegree, 4200)
		n := ri.inst.Graph.N
		roles := len(degree.Crashes)
		var sumRand, sumDeg float64
		for _, f := range r01Fractions {
			k := int(f * float64(roles))
			sumRand += lccFrac(ri.inst, random.AliveSet(n, k))
			sumDeg += lccFrac(ri.inst, degree.AliveSet(n, k))
		}
		if sumDeg < sumRand-1e-12 {
			anyStrict = true
		}
		t.Logf("%s: mean lcc random=%.4f degree=%.4f", ri.name,
			sumRand/float64(len(r01Fractions)), sumDeg/float64(len(r01Fractions)))
	}
	if !anyStrict {
		t.Error("degree-targeted attack never decayed the giant component strictly faster than random failure on any topology")
	}
}

// TestR01VictimOrdersDeterministic: the cached fault schedules are pure
// functions of (seed, structure, selector, stream) — two fresh contexts
// produce identical orderings.
func TestR01VictimOrdersDeterministic(t *testing.T) {
	a := scenario.NewCtx(goldenCfg)
	b := scenario.NewCtx(goldenCfg)
	ia, err := robustnessInstances(a)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := robustnessInstances(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ia {
		for _, sel := range []fault.Selector{fault.SelectRandom, fault.SelectDegree, fault.SelectBetweenness} {
			sa := victimOrder(a, ia[i], sel, 4200)
			sb := victimOrder(b, ib[i], sel, 4200)
			if len(sa.Crashes) != len(sb.Crashes) {
				t.Fatalf("%s/%s: schedule lengths differ", ia[i].name, sel)
			}
			for j := range sa.Crashes {
				if sa.Crashes[j] != sb.Crashes[j] {
					t.Fatalf("%s/%s: crash %d differs: %+v vs %+v",
						ia[i].name, sel, j, sa.Crashes[j], sb.Crashes[j])
				}
			}
		}
	}
}
