package experiments

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/scenario"
)

// goldenCfg matches the configuration the checked-in testdata/golden_*.txt
// files were generated with — by the pre-refactor drivers (hand-rolled
// loops, no cache, no engine) at the default CLI seed.
var goldenCfg = Config{Seed: 2026, Scale: 0.15}

func readGolden(t *testing.T, id string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden_"+id+".txt"))
	if err != nil {
		t.Fatalf("missing golden for %s: %v", id, err)
	}
	return string(b)
}

// TestScenarioTablesMatchPreRefactorGolden is the refactor's equivalence
// gate: every registered scenario, executed through the engine with shared
// caches and concurrent scenario runs, must reproduce the pre-refactor
// table byte-for-byte at the fixed seed — at GOMAXPROCS 8 (concurrent
// scenarios + parallel inner loops + cache sharing) and GOMAXPROCS 1
// (fully serial).
func TestScenarioTablesMatchPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if len(scenario.All()) != len(All) {
		t.Fatalf("registry has %d scenarios, runner shim has %d", len(scenario.All()), len(All))
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		// Regeneration mode: write testdata/golden_<ID>.txt for every
		// registered scenario and fail, so a forgotten env var can't turn the
		// gate green vacuously. Existing goldens must come out byte-identical
		// (they are pinned by normal runs); only genuinely new scenarios gain
		// files.
		eng := scenario.NewEngine(nil)
		tables, err := eng.RunAll(goldenCfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tab := range tables {
			p := filepath.Join("testdata", "golden_"+tab.ID+".txt")
			if err := os.WriteFile(p, []byte(tab.String()), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Fatalf("UPDATE_GOLDEN: regenerated %d golden tables; rerun without the env var", len(tables))
	}
	for _, gmp := range []int{8, 1} {
		prev := runtime.GOMAXPROCS(gmp)
		eng := scenario.NewEngine(nil)
		if gmp > 1 {
			eng.Jobs = 4 // exercise concurrent scenario execution + shared cache
		}
		tables, err := eng.RunAll(goldenCfg)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatalf("GOMAXPROCS %d: engine run failed: %v", gmp, err)
		}
		for _, tab := range tables {
			if got, want := tab.String(), readGolden(t, tab.ID); got != want {
				t.Errorf("GOMAXPROCS %d: %s differs from pre-refactor golden:\n--- got ---\n%s\n--- want ---\n%s",
					gmp, tab.ID, got, want)
			}
		}
		if gmp > 1 {
			// The concurrent run must have shared structures across scenarios
			// (E13's two protocol runs share a deployment, E14's baselines
			// share a deployment and base graph, ...).
			if st := eng.Cache.Stats(); st.Hits == 0 {
				t.Errorf("full-suite run recorded no cache hits: %+v", st)
			}
		}
	}
}

// TestSuiteRebuildsSharedStructuresAtMostOnce is the cache-hit counter
// gate from the acceptance criteria: after a full-suite engine run, every
// cached structure exists exactly once (misses == entries, by
// construction), and re-running the structure-heavy scenarios against the
// same engine performs ZERO new builds — deployments, base graphs, SENS
// networks and baselines all come back as hits. The weight-slab cache is
// held to the same standard.
func TestSuiteRebuildsSharedStructuresAtMostOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	eng := scenario.NewEngine(nil)
	eng.Jobs = 2
	if _, err := eng.RunAll(goldenCfg); err != nil {
		t.Fatal(err)
	}
	first := eng.Cache.Stats()
	if first.Misses != int64(first.Entries) {
		t.Errorf("builds (%d) != distinct structures (%d): some key was built twice",
			first.Misses, first.Entries)
	}
	if first.Hits == 0 {
		t.Error("no structure sharing observed across the suite")
	}
	_, slabMisses := eng.Slabs.Stats()

	// Re-running the structure-heavy scenarios must rebuild nothing.
	var rerun []scenario.Scenario
	for _, id := range []string{"E04", "E08", "E13", "E14", "R01", "R02"} {
		rerun = append(rerun, *scenario.Find(id))
	}
	if _, err := eng.Run(goldenCfg, rerun); err != nil {
		t.Fatal(err)
	}
	second := eng.Cache.Stats()
	if second.Misses != first.Misses {
		t.Errorf("re-run rebuilt %d structures, want 0", second.Misses-first.Misses)
	}
	if second.Hits <= first.Hits {
		t.Error("re-run recorded no cache hits")
	}
	if _, after := eng.Slabs.Stats(); after != slabMisses {
		t.Errorf("re-run refilled %d weight slabs, want 0", after-slabMisses)
	}
}
