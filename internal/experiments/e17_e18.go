package experiments

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/tiling"
)

func registerE17E18() {
	scenario.Register(scenario.Scenario{
		ID: "E17", Name: "fault-tolerance",
		Title: "Extension: fault tolerance — failures, degradation, local rebuild",
		Tags:  []string{"extension", "resilience", "udg"},
		Grid: []scenario.Param{
			grid("fail rate q", "0.0", "0.1", "0.2", "0.3", "0.4", "0.5", "0.6"),
		},
		Run: e17FaultTolerance,
	})
	scenario.Register(scenario.Scenario{
		ID: "E18", Name: "density-gradient",
		Title: "Extension: robustness to inhomogeneous deployment density",
		Tags:  []string{"extension", "robustness", "udg"},
		Grid: []scenario.Param{
			grid("λ0→λ1", "6→20", "10→16"),
		},
		Needs: []string{"deployment", "udg-sens"},
		Run:   e18DensityGradient,
	})
}

// e17FaultTolerance probes the redundancy story from the paper's §1: nodes
// fail at rate q; the existing subnetwork fragments, but re-running the
// local construction on the survivors restores it as long as the thinned
// density (1−q)·λ stays above λs — the threshold crossover is visible in
// the rebuilt good fraction.
//
// The deployment is NOT pulled through the scenario cache: each job's RNG
// substream continues past the Poisson draw into the failure sampling, so
// serving the deployment from cache would leave the stream in the wrong
// state (the cache correctness rule in scenario.Cache).
func e17FaultTolerance(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E17",
		"Fault tolerance: node failures, degradation and local rebuild (λ=16)",
		"fail rate q", "λ·(1−q)", "failed members", "surviving frac (no rebuild)",
		"rebuilt good frac", "rebuilt members", "rebuilt healthy?")
	const lambda = 16.0
	qs := []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	type out struct{ row []string }
	outs := make([]out, len(qs))
	side := cfg.Size(30, 15)
	parallelFor(len(qs), func(i int) {
		g := rng.Sub(cfg.Seed, uint64(1700+i))
		box := geom.Box(side, side)
		pts := pointprocess.Poisson(box, lambda, g)
		n, err := core.BuildUDG(pts, box, tiling.DefaultUDGSpec(), core.Options{SkipBase: true})
		if err != nil {
			outs[i].row = []string{f4(qs[i]), "", "ERR: " + err.Error(), "", "", "", ""}
			return
		}
		rep, err := core.SimulateFailures(n, qs[i], g)
		if err != nil {
			outs[i].row = []string{f4(qs[i]), "", "ERR: " + err.Error(), "", "", "", ""}
			return
		}
		healthy := "no"
		if rep.Rebuilt.GoodFraction() > 0.5927 {
			healthy = "yes"
		}
		outs[i].row = []string{
			f4(qs[i]), f4(lambda * (1 - qs[i])), d(rep.FailedMembers),
			f4(rep.SurvivingFraction), f4(rep.Rebuilt.GoodFraction()),
			d(len(rep.Rebuilt.Members)), healthy,
		}
	})
	for _, o := range outs {
		t.Rows = append(t.Rows, o.row)
	}
	t.AddNote("the rebuild stays supercritical until λ·(1−q) falls below " +
		"λs ≈ 11.76 (q ≈ 0.27) — redundancy buys exactly the failure budget " +
		"the density margin pays for; the un-rebuilt network fragments much " +
		"earlier because every member matters once elected")
	return t
}

// e18DensityGradient drops the paper's homogeneity assumption: deployment
// intensity ramps linearly across the field. The construction keeps working
// wherever the LOCAL density clears λs, and the good-tile map tracks the
// gradient — evidence that the theory degrades gracefully and locally.
func e18DensityGradient(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E18",
		"Robustness: linear density gradient λ(x) from λ0 to λ1 (UDG-SENS)",
		"λ0→λ1", "band x-range", "local λ (mid)", "band good frac",
		"P(good) analytic at local λ")
	spec := tiling.DefaultUDGSpec()
	side := cfg.Size(36, 18)
	box := geom.Box(side, side)
	type gradCase struct{ l0, l1 float64 }
	cases := []gradCase{{6, 20}, {10, 16}}
	for ci, gc := range cases {
		dep := ctx.DeployGradient(uint64(1800+ci), box, gc.l0, gc.l1)
		n, err := ctx.UDGNet(dep, spec, scenario.NetOptions{SkipBase: true})
		if err != nil {
			t.AddRow(f4(gc.l0)+"→"+f4(gc.l1), "ERR: "+err.Error(), "", "", "")
			continue
		}
		// Bucket tiles into four vertical bands and measure goodness per band.
		const bands = 4
		good := make([]int, bands)
		total := make([]int, bands)
		for c, tn := range n.Tiles {
			x, _, ok := n.Map.Phi(c)
			if !ok {
				continue
			}
			band := x * bands / n.Map.W
			if band >= bands {
				band = bands - 1
			}
			total[band]++
			if tn.Good {
				good[band]++
			}
		}
		for bIdx := 0; bIdx < bands; bIdx++ {
			if total[bIdx] == 0 {
				continue
			}
			fLo := float64(bIdx) / bands
			fHi := float64(bIdx+1) / bands
			mid := gc.l0 + (gc.l1-gc.l0)*(fLo+fHi)/2
			t.AddRow(
				f4(gc.l0)+"→"+f4(gc.l1),
				f4(fLo*side)+"–"+f4(fHi*side),
				f4(mid),
				f4(float64(good[bIdx])/float64(total[bIdx])),
				f4(spec.GoodProbability(mid)),
			)
		}
	}
	t.AddNote("band-wise good fractions track the analytic P(good) at the band's " +
		"local density: goodness is a local property (each tile sees only its own " +
		"points), so the homogeneity assumption is needed only for the global " +
		"percolation statement, not for the construction itself")
	return t
}
