package experiments

import (
	"repro/internal/core"
	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/tiling"
)

// E17FaultTolerance probes the redundancy story from the paper's §1: nodes
// fail at rate q; the existing subnetwork fragments, but re-running the
// local construction on the survivors restores it as long as the thinned
// density (1−q)·λ stays above λs — the threshold crossover is visible in
// the rebuilt good fraction.
func E17FaultTolerance(cfg Config) *Table {
	t := &Table{
		ID:    "E17",
		Title: "Fault tolerance: node failures, degradation and local rebuild (λ=16)",
		Columns: []string{"fail rate q", "λ·(1−q)", "failed members", "surviving frac (no rebuild)",
			"rebuilt good frac", "rebuilt members", "rebuilt healthy?"},
	}
	const lambda = 16.0
	qs := []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6}
	type out struct{ row []string }
	outs := make([]out, len(qs))
	side := cfg.size(30, 15)
	parallelFor(len(qs), func(i int) {
		g := rng.Sub(cfg.Seed, uint64(1700+i))
		box := geom.Box(side, side)
		pts := pointprocess.Poisson(box, lambda, g)
		n, err := core.BuildUDG(pts, box, tiling.DefaultUDGSpec(), core.Options{SkipBase: true})
		if err != nil {
			outs[i].row = []string{f4(qs[i]), "", "ERR: " + err.Error(), "", "", "", ""}
			return
		}
		rep, err := core.SimulateFailures(n, qs[i], g)
		if err != nil {
			outs[i].row = []string{f4(qs[i]), "", "ERR: " + err.Error(), "", "", "", ""}
			return
		}
		healthy := "no"
		if rep.Rebuilt.GoodFraction() > 0.5927 {
			healthy = "yes"
		}
		outs[i].row = []string{
			f4(qs[i]), f4(lambda * (1 - qs[i])), d(rep.FailedMembers),
			f4(rep.SurvivingFraction), f4(rep.Rebuilt.GoodFraction()),
			d(len(rep.Rebuilt.Members)), healthy,
		}
	})
	for _, o := range outs {
		t.Rows = append(t.Rows, o.row)
	}
	t.AddNote("the rebuild stays supercritical until λ·(1−q) falls below " +
		"λs ≈ 11.76 (q ≈ 0.27) — redundancy buys exactly the failure budget " +
		"the density margin pays for; the un-rebuilt network fragments much " +
		"earlier because every member matters once elected")
	return t
}

// E18DensityGradient drops the paper's homogeneity assumption: deployment
// intensity ramps linearly across the field. The construction keeps working
// wherever the LOCAL density clears λs, and the good-tile map tracks the
// gradient — evidence that the theory degrades gracefully and locally.
func E18DensityGradient(cfg Config) *Table {
	t := &Table{
		ID:    "E18",
		Title: "Robustness: linear density gradient λ(x) from λ0 to λ1 (UDG-SENS)",
		Columns: []string{"λ0→λ1", "band x-range", "local λ (mid)", "band good frac",
			"P(good) analytic at local λ"},
	}
	spec := tiling.DefaultUDGSpec()
	side := cfg.size(36, 18)
	box := geom.Box(side, side)
	type gradCase struct{ l0, l1 float64 }
	cases := []gradCase{{6, 20}, {10, 16}}
	for ci, gc := range cases {
		g := rng.Sub(cfg.Seed, uint64(1800+ci))
		grad := pointprocess.LinearGradient(box, gc.l0, gc.l1)
		pts := pointprocess.Inhomogeneous(box, grad, gc.l1, g)
		n, err := core.BuildUDG(pts, box, spec, core.Options{SkipBase: true})
		if err != nil {
			t.AddRow(f4(gc.l0)+"→"+f4(gc.l1), "ERR: "+err.Error(), "", "", "")
			continue
		}
		// Bucket tiles into four vertical bands and measure goodness per band.
		const bands = 4
		good := make([]int, bands)
		total := make([]int, bands)
		for c, tn := range n.Tiles {
			x, _, ok := n.Map.Phi(c)
			if !ok {
				continue
			}
			band := x * bands / n.Map.W
			if band >= bands {
				band = bands - 1
			}
			total[band]++
			if tn.Good {
				good[band]++
			}
		}
		for bIdx := 0; bIdx < bands; bIdx++ {
			if total[bIdx] == 0 {
				continue
			}
			fLo := float64(bIdx) / bands
			fHi := float64(bIdx+1) / bands
			mid := gc.l0 + (gc.l1-gc.l0)*(fLo+fHi)/2
			t.AddRow(
				f4(gc.l0)+"→"+f4(gc.l1),
				f4(fLo*side)+"–"+f4(fHi*side),
				f4(mid),
				f4(float64(good[bIdx])/float64(total[bIdx])),
				f4(spec.GoodProbability(mid)),
			)
		}
	}
	t.AddNote("band-wise good fractions track the analytic P(good) at the band's " +
		"local density: goodness is a local property (each tile sees only its own " +
		"points), so the homogeneity assumption is needed only for the global " +
		"percolation statement, not for the construction itself")
	return t
}
