package experiments

import (
	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/power"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/routing"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/tiling"
	"repro/internal/topo"
)

func registerE12E14() {
	scenario.Register(scenario.Scenario{
		ID: "E12", Name: "routing",
		Title: "§4.2 routing: probes vs optimal path (Angel et al.)",
		Tags:  []string{"routing", "percolation", "sens"},
		Grid: []scenario.Param{
			grid("p", "0.65", "0.75", "0.85"),
			grid("substrate", "lattice", "lattice (memoized)", "UDG-SENS"),
		},
		Needs: []string{"deployment", "udg-sens"},
		Run:   e12Routing,
	})
	scenario.Register(scenario.Scenario{
		ID: "E13", Name: "construction-cost",
		Title: "§4.1 construction cost: election messages and rounds (P4)",
		Tags:  []string{"sens", "election", "udg", "nn"},
		Grid: []scenario.Param{
			grid("protocol", "tournament", "broadcast"),
		},
		Needs: []string{"deployment", "udg-sens", "nn-sens"},
		Run:   e13Construction,
	})
	scenario.Register(scenario.Scenario{
		ID: "E14", Name: "baselines",
		Title: "Baseline comparison: SENS vs Gabriel/RNG/Yao/EMST/k-NN",
		Tags:  []string{"sens", "power", "baseline", "udg"},
		Grid: []scenario.Param{
			grid("structure", "UDG base", "UDG-SENS", "Gabriel", "RNG", "Yao(6)",
				"EMST", "NN(6)"),
		},
		Needs: []string{"deployment", "udg-base", "udg-sens", "baselines", "measurer-slabs"},
		Run:   e14Baselines,
	})
}

// e12Routing reproduces §4.2 / Angel et al.: routing probes grow linearly
// with the optimal path length on the percolated mesh, and routing over an
// actual SENS network expands each lattice hop into a bounded relay
// subpath.
func e12Routing(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E12",
		"Routing on the percolated mesh (Fig. 9) and over UDG-SENS (Fig. 8)",
		"substrate", "p/λ", "routes", "delivered", "mean probes/opt", "fit probes≈c·opt (R²)")
	n := int(cfg.Size(80, 32))
	for _, p := range []float64{0.65, 0.75, 0.85} {
		g := rng.Sub(cfg.Seed, uint64(900+int(p*100)))
		l := lattice.Sample(n, n, p, g)
		giant := l.LargestCluster()
		if len(giant) < 50 {
			continue
		}
		var opts, probes, memoProbes []float64
		delivered, total := 0, 0
		routes := cfg.Trials(200, 40)
		var scratch routing.Scratch
		for tr := 0; tr < routes; tr++ {
			a := giant[g.IntN(len(giant))]
			b := giant[g.IntN(len(giant))]
			ax, ay := l.XY(a)
			bx, by := l.XY(b)
			opt := l.ChemicalDistance(ax, ay, bx, by)
			if opt < 2 {
				continue
			}
			total++
			res := routing.RouteXYInto(l, ax, ay, bx, by, routing.Options{}, &scratch)
			if !res.Delivered {
				continue
			}
			delivered++
			opts = append(opts, float64(opt))
			probes = append(probes, float64(res.Probes))
			memo := routing.RouteXYInto(l, ax, ay, bx, by, routing.Options{Memoize: true}, &scratch)
			memoProbes = append(memoProbes, float64(memo.Probes))
		}
		var ratios, memoRatios []float64
		for i := range opts {
			ratios = append(ratios, probes[i]/opts[i])
			memoRatios = append(memoRatios, memoProbes[i]/opts[i])
		}
		fitStr := "n/a"
		if fit, err := stats.FitLinear(opts, probes); err == nil {
			fitStr = f4(fit.Slope) + "·opt (R²=" + f4(fit.R2) + ")"
		}
		// When nothing was delivered the ratio samples are empty and the
		// means render "n/a" (f4 maps NaN); the delivery count still shows.
		t.AddRow("lattice", f4(p), d(total), d(delivered),
			f4(stats.Mean(ratios)), fitStr)
		t.AddRow("lattice (memoized)", f4(p), d(total), d(delivered),
			f4(stats.Mean(memoRatios)), "probe-cache ablation")
	}

	// SENS-level routing.
	net, err := udgNet(ctx, 910, cfg.Size(36, 18), 16, false)
	if err == nil {
		g := rng.Sub(cfg.Seed, 911)
		_, coords := net.GoodReps()
		delivered, total := 0, 0
		var expansion []float64
		routes := cfg.Trials(120, 30)
		for tr := 0; tr < routes && len(coords) >= 2; tr++ {
			a := coords[g.IntN(len(coords))]
			b := coords[g.IntN(len(coords))]
			if a == b {
				continue
			}
			total++
			res, err := routing.RouteOnSens(net, a, b, 0)
			if err != nil || !res.Delivered {
				continue
			}
			delivered++
			if res.LatticeHops > 0 {
				expansion = append(expansion, float64(res.NodeHops)/float64(res.LatticeHops))
			}
		}
		t.AddRow("UDG-SENS", "16", d(total), d(delivered),
			// "n/a" when no route delivered (or none crossed a lattice hop).
			"node/lattice hops = "+f4(stats.Mean(expansion)), "≤ 3 by Claim 2.1")
	}
	t.AddNote("probes scale linearly with the optimal path (Angel et al. Theorem); " +
		"the constant shrinks toward 1 as p → 1")
	return t
}

// e13Construction charges the §4.1 distributed construction: leader
// election messages and rounds per tile and per node, for both protocols.
// The two protocol runs share one cached deployment per network family —
// the first structure-sharing case the ROADMAP called out.
func e13Construction(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E13",
		"P4 construction cost: election messages/rounds (Fig. 7 pipeline)",
		"network", "protocol", "nodes", "tiles", "msgs", "msgs/node", "max rounds")
	side := cfg.Size(30, 12)
	box := geom.Box(side, side)
	dep := ctx.Deploy(920, box, 16)
	for _, alg := range []struct {
		name string
		alg  election.Algorithm
	}{{"tournament", election.AlgorithmTournament}, {"broadcast", election.AlgorithmBroadcast}} {
		n, err := ctx.UDGNet(dep, tiling.DefaultUDGSpec(), scenario.NetOptions{
			Election: alg.alg, SkipBase: true,
		})
		if err != nil {
			continue
		}
		t.AddRow("UDG-SENS(λ=16)", alg.name, d(len(dep.Pts)), d(n.Stats.Tiles),
			d(n.Stats.ElectionMessages),
			f4(float64(n.Stats.ElectionMessages)/float64(len(dep.Pts))),
			d(n.Stats.ElectionRounds))
	}
	spec := tiling.PaperNNSpec()
	tilesPerSide := int(cfg.Size(5, 3))
	nnSide := float64(tilesPerSide) * spec.TileSide()
	nnBox := geom.Box(nnSide, nnSide)
	nnDep := ctx.Deploy(921, nnBox, 1.0)
	for _, alg := range []struct {
		name string
		alg  election.Algorithm
	}{{"tournament", election.AlgorithmTournament}, {"broadcast", election.AlgorithmBroadcast}} {
		n, err := ctx.NNNet(nnDep, spec, scenario.NetOptions{
			Election: alg.alg, SkipBase: true,
		})
		if err != nil {
			continue
		}
		t.AddRow("NN-SENS(k=188)", alg.name, d(len(nnDep.Pts)), d(n.Stats.Tiles),
			d(n.Stats.ElectionMessages),
			f4(float64(n.Stats.ElectionMessages)/float64(len(nnDep.Pts))),
			d(n.Stats.ElectionRounds))
	}
	t.AddNote("messages per node are O(1) for the tournament protocol — the local " +
		"computability property P4: construction cost does not grow with the " +
		"deployment size")
	return t
}

// e14Baselines compares UDG-SENS against the classical full-connectivity
// topology-control structures on one deployment: who uses how many nodes,
// at what degree, with what stretch and power cost. Every structure is
// pulled through the cache and all seven stretch measurements share the
// base graph's weight slabs via the engine slab cache.
func e14Baselines(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E14",
		"UDG-SENS vs topology-control baselines (same deployment, λ=16)",
		"structure", "active frac", "edges", "mean deg", "max deg",
		"mean stretch", "mean power stretch (β=2)", "edge power (β=2)")
	side := cfg.Size(22, 12)
	box := geom.Box(side, side)
	dep := ctx.Deploy(930, box, 16)
	pts := dep.Pts
	base := ctx.UDG(dep, 1)
	net, err := ctx.UDGNet(dep, tiling.DefaultUDGSpec(), scenario.NetOptions{})
	if err != nil {
		t.AddRow("ERR: " + err.Error())
		return t
	}

	type entry struct {
		name       string
		g          *graph.CSR
		candidates []int32
		activeFrac float64
	}
	baseKey := dep.Key + "|udg-r1"
	baseMembers, _ := graph.LargestComponent(base.CSR)
	entries := []entry{
		{"UDG base", base.CSR, baseMembers, 1},
		{"UDG-SENS", net.Graph, net.Members, net.ActiveFraction()},
		{"Gabriel", ctx.Baseline("gabriel", baseKey, func() *rgg.Geometric {
			return topo.Gabriel(base)
		}).CSR, baseMembers, 1},
		{"RNG", ctx.Baseline("rng", baseKey, func() *rgg.Geometric {
			return topo.RelativeNeighborhood(base)
		}).CSR, baseMembers, 1},
		{"Yao(6)", ctx.Baseline("yao6", baseKey, func() *rgg.Geometric {
			return topo.Yao(base, 6)
		}).CSR, baseMembers, 1},
		{"EMST", ctx.Baseline("emst", baseKey, func() *rgg.Geometric {
			return topo.EMST(base)
		}).CSR, baseMembers, 1},
		{"NN(6)", ctx.Baseline("knn6", dep.Key, func() *rgg.Geometric {
			return topo.KNN(pts, 6)
		}).CSR, baseMembers, 1},
	}
	pairs := cfg.Trials(40, 10)
	rows := make([][]string, len(entries))
	parallelFor(len(entries), func(i int) {
		e := entries[i]
		gg := rng.Sub(cfg.Seed, uint64(940+i))
		meanStretch, meanPower := "n/a", "n/a"
		if samples, err := power.MeasureStretchCached(e.g, base.CSR, pts, e.candidates, 2,
			pairs, pairs*40, gg, ctx.Slabs); err == nil {
			var ds, ps []float64
			for _, s := range samples {
				ds = append(ds, s.DistStretch)
				ps = append(ps, s.PowerStretch)
			}
			meanStretch = f4(stats.Mean(ds))
			meanPower = f4(stats.Mean(ps))
		}
		// Mean degree over the structure's active nodes (for SENS the
		// members; for the baselines every node is active).
		var degSum float64
		for _, v := range e.candidates {
			degSum += float64(e.g.Degree(v))
		}
		meanDeg := 0.0
		if len(e.candidates) > 0 {
			meanDeg = degSum / float64(len(e.candidates))
		}
		rows[i] = []string{
			e.name, f4(e.activeFrac), d(e.g.EdgeCount), f4(meanDeg),
			d(e.g.MaxDegree()), meanStretch, meanPower,
			f4(power.TotalEdgePower(e.g, pts, 2)),
		}
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("the baselines keep every node active (fraction 1) to serve " +
		"per-node connectivity; UDG-SENS spends a small active fraction and " +
		"bounded degree for the same coverage task — the paper's §1 insight")
	return t
}
