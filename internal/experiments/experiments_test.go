package experiments

import (
	"strings"
	"testing"
)

// smoke runs every experiment at a small scale and sanity-checks the table.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 42, Scale: 0.15}
	for _, r := range All {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			table := r.Run(cfg)
			if table == nil {
				t.Fatal("nil table")
			}
			if table.ID != r.ID {
				t.Errorf("table ID %q != runner ID %q", table.ID, r.ID)
			}
			if len(table.Rows) == 0 {
				t.Error("no rows")
			}
			out := table.String()
			if !strings.Contains(out, r.ID) {
				t.Error("render missing ID")
			}
			for _, row := range table.Rows {
				for _, cell := range row {
					if strings.Contains(cell, "ERR") {
						t.Errorf("row reports error: %v", row)
					}
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if ByID("E05") == nil || ByID("E05").ID != "E05" {
		t.Error("ByID lookup failed")
	}
	if ByID("nope") != nil {
		t.Error("ByID should return nil for unknown")
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.25}
	if got := c.trials(100, 10); got != 25 {
		t.Errorf("trials = %d", got)
	}
	if got := c.trials(100, 60); got != 60 {
		t.Errorf("trials floor = %d", got)
	}
	if got := (Config{}).trials(100, 10); got != 100 {
		t.Errorf("zero scale should mean full: %d", got)
	}
	// size shrinks linearly with sqrt(scale): 0.25 → half.
	if got := c.size(40, 5); got < 19 || got > 21 {
		t.Errorf("size = %v", got)
	}
	if got := c.size(40, 30); got != 30 {
		t.Errorf("size floor = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("hello %d", 5)
	out := tab.String()
	if !strings.Contains(out, "X — demo") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "note: hello 5") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header, columns, rule, 2 rows, note
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int]int{4: 8, 8: 8, 15: 8, 16: 16, 64: 64, 500: 128}
	for in, want := range cases {
		if got := bucketOf(in); got != want {
			t.Errorf("bucketOf(%d) = %d want %d", in, got, want)
		}
	}
}

func TestParallelForCoversAll(t *testing.T) {
	hits := make([]int32, 100)
	parallelFor(100, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// n smaller than workers.
	small := make([]int32, 2)
	parallelFor(2, func(i int) { small[i]++ })
	if small[0] != 1 || small[1] != 1 {
		t.Error("small parallelFor wrong")
	}
	parallelFor(0, func(i int) { t.Error("fn called for n=0") })
}
