package experiments

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/stats"
)

// smoke runs every experiment at a small scale and sanity-checks the table.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 42, Scale: 0.15}
	for _, r := range All {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			t.Parallel()
			table := r.Run(cfg)
			if table == nil {
				t.Fatal("nil table")
			}
			if table.ID != r.ID {
				t.Errorf("table ID %q != runner ID %q", table.ID, r.ID)
			}
			if len(table.Rows) == 0 {
				t.Error("no rows")
			}
			out := table.String()
			if !strings.Contains(out, r.ID) {
				t.Error("render missing ID")
			}
			for _, row := range table.Rows {
				for _, cell := range row {
					if strings.Contains(cell, "ERR") {
						t.Errorf("row reports error: %v", row)
					}
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if ByID("E05") == nil || ByID("E05").ID != "E05" {
		t.Error("ByID lookup failed")
	}
	if ByID("nope") != nil {
		t.Error("ByID should return nil for unknown")
	}
}

func TestConfigScaling(t *testing.T) {
	c := Config{Scale: 0.25}
	if got := c.Trials(100, 10); got != 25 {
		t.Errorf("trials = %d", got)
	}
	if got := c.Trials(100, 60); got != 60 {
		t.Errorf("trials floor = %d", got)
	}
	if got := (Config{}).Trials(100, 10); got != 100 {
		t.Errorf("zero scale should mean full: %d", got)
	}
	// size shrinks linearly with sqrt(scale): 0.25 → half.
	if got := c.Size(40, 5); got < 19 || got > 21 {
		t.Errorf("size = %v", got)
	}
	if got := c.Size(40, 30); got != 30 {
		t.Errorf("size floor = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "X", Title: "demo", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("hello %d", 5)
	out := tab.String()
	if !strings.Contains(out, "X — demo") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "note: hello 5") {
		t.Error("missing note")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // header, columns, rule, 2 rows, note
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestBucketOf(t *testing.T) {
	cases := map[int]int{4: 8, 8: 8, 15: 8, 16: 16, 64: 64, 500: 128}
	for in, want := range cases {
		if got := bucketOf(in); got != want {
			t.Errorf("bucketOf(%d) = %d want %d", in, got, want)
		}
	}
}

func TestParallelForCoversAll(t *testing.T) {
	hits := make([]int32, 100)
	parallelFor(100, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
	// n smaller than workers.
	small := make([]int32, 2)
	parallelFor(2, func(i int) { small[i]++ })
	if small[0] != 1 || small[1] != 1 {
		t.Error("small parallelFor wrong")
	}
	parallelFor(0, func(i int) { t.Error("fn called for n=0") })
}

func TestTableStringEdgeCases(t *testing.T) {
	// A zero-column table must render, not index widths[-1].
	empty := &Table{ID: "Z", Title: "no columns"}
	if out := empty.String(); !strings.Contains(out, "Z — no columns") {
		t.Errorf("zero-column render wrong:\n%s", out)
	}
	empty.AddRow()
	_ = empty.String() // zero-width row on a zero-column table

	// Rows wider than the header get their own aligned columns instead of
	// silently sharing the last header width.
	wide := &Table{ID: "W", Title: "wide", Columns: []string{"a"}}
	wide.AddRow("x", "longcell", "z")
	wide.AddRow("1", "2", "3")
	out := wide.String()
	if !strings.Contains(out, "longcell  z") {
		t.Errorf("wide row misaligned:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "1") && line != "1  2         3" {
			t.Errorf("overflow columns not padded: %q", line)
		}
	}
}

func TestFormattersNeverRenderNaN(t *testing.T) {
	if got := f4(math.NaN()); got != "n/a" {
		t.Errorf("f4(NaN) = %q", got)
	}
	if got := f2(math.NaN()); got != "n/a" {
		t.Errorf("f2(NaN) = %q", got)
	}
	// The E12 failure shape: a mean over zero delivered routes.
	if got := f4(stats.Mean(nil)); got != "n/a" {
		t.Errorf("mean of empty sample renders %q", got)
	}
	if got := f4(1.25); got != "1.25" {
		t.Errorf("f4(1.25) = %q", got)
	}
}

// TestPowerTablesDeterministicAcrossGOMAXPROCS pins the acceptance contract
// for the batched measurement engine: the E11 and E14 tables (whose hot
// loops now fan out over cores) must be byte-identical at any worker count
// for a fixed seed.
func TestPowerTablesDeterministicAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := Config{Seed: 7, Scale: 0.15}
	for _, id := range []string{"E11", "E14"} {
		// 8 workers for the parallel leg even on a 1-CPU box (workers =
		// min(GOMAXPROCS, shards); the default there would also be serial).
		prev := runtime.GOMAXPROCS(8)
		parallelOut := ByID(id).Run(cfg).String()
		runtime.GOMAXPROCS(1)
		serialOut := ByID(id).Run(cfg).String()
		runtime.GOMAXPROCS(prev)
		if parallelOut != serialOut {
			t.Errorf("%s differs between GOMAXPROCS 1 and default:\n%s\n---\n%s",
				id, serialOut, parallelOut)
		}
	}
}
