package experiments

import (
	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/hng"
	"repro/internal/mobility"
	"repro/internal/power"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/tiling"
)

// The M** scenarios exercise the mobility tentpole: trajectory-driven node
// motion (internal/mobility) over incrementally maintained structures
// (core.Kinetic for UDG-SENS, hng.Kinetic for HNG), whose equivalence to
// from-scratch rebuilds is the property the package tests pin. Substream
// map: 4400+ M01 displacement draws, 4420+ M02 trajectories, 4440+ M02
// stretch pair sampling, 4460+ M03 trajectories, 4480+ M03 traffic (keyed
// by structure, so a structure's static and mobile rows see the identical
// offered load and differ only in motion).
// Trajectories are cacheable pure data (Ctx.Trajectory, like Ctx.Faults);
// the kinetic maintainers are mutable and always built fresh per row from
// the cached static structures.

// m01Deltas is the displacement axis of M01, in box units (the λ=16
// deployment's tile side is 1.5, its radio radius 1).
var m01Deltas = []float64{0.1, 0.25, 0.5, 1, 2}

// m02Speeds and m03Speeds are the motion-speed axes, in box units per
// motion step.
var (
	m02Speeds = []float64{0.05, 0.2, 0.6}
	m03Speeds = []float64{0, 0.1, 0.3}
)

func registerMobility() {
	dVals := make([]string, len(m01Deltas))
	for i, v := range m01Deltas {
		dVals[i] = f4(v)
	}
	scenario.Register(scenario.Scenario{
		ID: "M01", Name: "mobility-repair-cost",
		Title: "Incremental repair cost vs displacement: dirty-region work, not O(n)",
		Tags:  []string{"mobility", "kinetic", "extension"},
		Grid: []scenario.Param{
			grid("structure", "UDG-SENS", "HNG(p=1/8)"),
			{Name: "δ", Values: dVals},
		},
		Needs: []string{"deployment", "udg-base", "udg-sens", "hng"},
		Run:   m01RepairCost,
	})
	sVals := make([]string, len(m02Speeds))
	for i, v := range m02Speeds {
		sVals[i] = f4(v)
	}
	scenario.Register(scenario.Scenario{
		ID: "M02", Name: "mobility-drift",
		Title: "Structure drift under sustained motion: connectivity and stretch",
		Tags:  []string{"mobility", "kinetic", "stretch", "extension"},
		Grid: []scenario.Param{
			grid("structure", "UDG-SENS", "HNG(p=1/8)"),
			{Name: "speed", Values: sVals},
		},
		Needs: []string{"deployment", "udg-base", "udg-sens", "hng"},
		Run:   m02Drift,
	})
	scenario.Register(scenario.Scenario{
		ID: "M03", Name: "mobility-lifetime",
		Title: "Network lifetime on a mobile network (Q01 on moving nodes)",
		Tags:  []string{"mobility", "kinetic", "energy", "lifetime", "extension"},
		Grid: []scenario.Param{
			grid("structure", "UDG-SENS", "HNG(p=1/8)"),
			grid("motion", "static", "v=0.1", "v=0.3"),
		},
		Needs: []string{"deployment", "udg-base", "udg-sens", "hng"},
		Run:   m03MobileLifetime,
	})
}

// kineticStructure is the operation surface the two incremental maintainers
// share; the M scenarios and the mobile-lifetime adapter drive either
// through it.
type kineticStructure interface {
	Move(u int32, p geom.Point)
	Remove(u int32)
	Materialize() *graph.CSR
	Positions() []geom.Point
	AliveMask() []bool
}

// kineticCost is one normalized repair-cost sample: the maintainer-specific
// counters mapped onto a shared shape. For UDG-SENS, recomputes counts tile
// re-elections and swaps counts contribution-list swaps; for HNG,
// recomputes counts nearest-neighbor link re-queries and swaps counts
// pruning-group plus MST rebuilds. rebuildUnits is what a from-scratch
// rebuild pays in the same currency (all tiles / all links).
type kineticCost struct {
	recomputes, swaps, edgeChanges int
	rebuildUnits                   int
}

// sensKinetic builds a fresh UDG-SENS maintainer over the shared λ=16
// network. The cost snapshot closure drains the maintainer's counters.
func sensKinetic(ctx *scenario.Ctx) (kineticStructure, func() kineticCost, error) {
	dep := hngDeployment(ctx)
	net, err := ctx.UDGNet(dep, tiling.DefaultUDGSpec(), scenario.NetOptions{})
	if err != nil {
		return nil, nil, err
	}
	k, err := core.NewKinetic(net, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	tiles := net.Stats.Tiles
	return k, func() kineticCost {
		s := k.ResetStats()
		return kineticCost{s.TileRecomputes, s.ContribRecomputes, s.EdgeChanges, tiles}
	}, nil
}

// hngKinetic builds a fresh HNG maintainer over H02's cached p=1/8 graph
// (stream 2010) on the same deployment.
func hngKinetic(ctx *scenario.Ctx) (kineticStructure, func() kineticCost, error) {
	dep := hngDeployment(ctx)
	h, err := ctx.HNG(dep, hng.DefaultSpec(), 2010)
	if err != nil {
		return nil, nil, err
	}
	k := hng.NewKinetic(h, dep.Box)
	n := len(dep.Pts)
	return k, func() kineticCost {
		s := k.ResetStats()
		return kineticCost{s.LinkRecomputes, s.GroupRecomputes + s.MSTRecomputes,
			s.EdgeChanges, n}
	}, nil
}

// mKinetics is the structure axis shared by all three M scenarios.
var mKinetics = []struct {
	name  string
	build func(*scenario.Ctx) (kineticStructure, func() kineticCost, error)
}{
	{"UDG-SENS", sensKinetic},
	{"HNG(p=1/8)", hngKinetic},
}

// m01RepairCost measures what one node displacement costs the incremental
// maintainers, against what a from-scratch rebuild pays: the dirty-region
// claim, as a table. Each row drives K uniform displacements of magnitude
// ≤ δ through a fresh maintainer and reports per-move averages of the
// deterministic work counters (wall time is measured by the paired
// benchmarks, not here — counters keep the golden table exact).
func m01RepairCost(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("M01",
		"Incremental repair cost per move vs displacement δ (λ=16 deployment)",
		"structure", "δ", "moves", "recomputes/move", "swaps/move",
		"edge Δ/move", "rebuild units", "locality ×")
	box := hngDeployment(ctx).Box
	moves := cfg.Trials(300, 60)
	type rowKey struct{ s, d int }
	var keys []rowKey
	for s := range mKinetics {
		for d := range m01Deltas {
			keys = append(keys, rowKey{s, d})
		}
	}
	rows := make([][]string, len(keys))
	parallelFor(len(keys), func(i int) {
		key := keys[i]
		name, delta := mKinetics[key.s].name, m01Deltas[key.d]
		k, cost, err := mKinetics[key.s].build(ctx)
		if err != nil {
			rows[i] = []string{name, f4(delta), "ERR: " + err.Error(), "", "", "", "", ""}
			return
		}
		gen := rng.Sub(cfg.Seed, uint64(4400+i))
		cost() // drop any construction-time counters
		done := 0
		for done < moves {
			u := int32(gen.IntN(len(k.Positions())))
			if !k.AliveMask()[u] {
				continue
			}
			p := k.Positions()[u]
			p.X += (gen.Float64()*2 - 1) * delta
			p.Y += (gen.Float64()*2 - 1) * delta
			k.Move(u, box.Clamp(p))
			done++
		}
		c := cost()
		perMove := float64(c.recomputes) / float64(moves)
		locality := "n/a"
		if perMove > 0 {
			locality = f2(float64(c.rebuildUnits) / perMove)
		}
		rows[i] = []string{
			name, f4(delta), d(moves), f4(perMove),
			f4(float64(c.swaps) / float64(moves)),
			f4(float64(c.edgeChanges) / float64(moves)),
			d(c.rebuildUnits), locality,
		}
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("recomputes are tile re-elections (UDG-SENS) or nearest-neighbor link " +
		"re-queries (HNG); rebuild units is the same counter for a from-scratch " +
		"rebuild (all mapped tiles / all links) and locality × their ratio — the " +
		"per-move work stays O(1)-ish in the displacement while the rebuild pays " +
		"the whole field, which is the dirty-region claim the equivalence-gated " +
		"package tests make exact")
	return t
}

// lccFraction returns the largest-component fraction over the graph's
// non-isolated vertices (sleeping and dead nodes are isolated by
// construction, so this measures the connectivity of the active structure).
func lccFraction(g *graph.CSR) float64 {
	active := 0
	for u := 0; u < g.N; u++ {
		if g.Start[u+1] > g.Start[u] {
			active++
		}
	}
	if active == 0 {
		return 0
	}
	lcc := graph.LargestComponentWhere(g, nil, func(u int32) bool {
		return g.Start[u+1] > g.Start[u]
	})
	return float64(lcc) / float64(active)
}

// meanStretchAt measures the maintained structure's mean distance stretch
// against a fresh unit-disk base at the given positions — the yardstick
// motion cannot stale, since it is rebuilt from the positions themselves.
func meanStretchAt(g *graph.CSR, pts []geom.Point, pairs int, stream uint64, seed rng.Seed) string {
	base := rgg.UDG(pts, tiling.DefaultUDGSpec().Radius)
	members, _ := graph.LargestComponent(base.CSR)
	samples, err := power.MeasureStretch(g, base.CSR, pts, members, 0,
		pairs, pairs*40, rng.Sub(seed, stream))
	if err != nil {
		return "n/a"
	}
	ds := make([]float64, len(samples))
	for i, s := range samples {
		ds[i] = s.DistStretch
	}
	return f4(stats.Mean(ds))
}

// m02Drift replays a sustained random-waypoint trajectory through each
// maintainer and reports how the structure drifts: edge count, active-part
// connectivity and distance stretch before and after, plus the per-step
// repair cost that kept it current the whole way.
func m02Drift(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("M02",
		"Structure drift under sustained waypoint motion (λ=16 deployment)",
		"structure", "speed", "steps", "edges 0", "edges end", "lcc 0", "lcc end",
		"stretch 0", "stretch end", "recomputes/step")
	steps := cfg.Trials(40, 12)
	pairs := cfg.Trials(40, 10)
	dep := hngDeployment(ctx)
	type rowKey struct{ s, v int }
	var keys []rowKey
	for s := range mKinetics {
		for v := range m02Speeds {
			keys = append(keys, rowKey{s, v})
		}
	}
	rows := make([][]string, len(keys))
	parallelFor(len(keys), func(i int) {
		key := keys[i]
		name, speed := mKinetics[key.s].name, m02Speeds[key.v]
		k, cost, err := mKinetics[key.s].build(ctx)
		if err != nil {
			rows[i] = []string{name, f4(speed), "ERR: " + err.Error(),
				"", "", "", "", "", "", ""}
			return
		}
		spec := mobility.Spec{Model: mobility.ModelWaypoint, Speed: speed,
			Pause: 2, Steps: steps}
		traj := ctx.Trajectory(dep, spec, uint64(4420+i))
		g0 := k.Materialize()
		stretch0 := meanStretchAt(g0, dep.Pts, pairs, uint64(4440+i), cfg.Seed)
		cost()
		for _, step := range traj.Steps {
			for _, mv := range step {
				k.Move(mv.Node, mv.To)
			}
		}
		c := cost()
		gN := k.Materialize()
		stretchN := meanStretchAt(gN, k.Positions(), pairs, uint64(4440+i), cfg.Seed)
		rows[i] = []string{
			name, f4(speed), d(steps), d(g0.EdgeCount), d(gN.EdgeCount),
			f4(lccFraction(g0)), f4(lccFraction(gN)), stretch0, stretchN,
			f4(float64(c.recomputes) / float64(steps)),
		}
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("lcc is the largest-component fraction of the non-isolated vertices; " +
		"stretch is mean shortest-path distance stretch against a fresh unit-disk " +
		"base at the SAME positions (start vs end), sampled on the base's largest " +
		"component. UDG-SENS re-elects as nodes cross tiles, so its structure " +
		"tracks motion; HNG's fixed hierarchy re-links but keeps its levels, and " +
		"faster motion mostly raises the repair bill, not the stretch")
	return t
}

// mobileStructure adapts a kinetic maintainer replaying a cached trajectory
// to energy.MobileNetwork: every `every` rounds it applies the next
// trajectory step to the surviving nodes, and battery deaths flow back into
// the maintainer so the structure sheds the dead as it moves.
type mobileStructure struct {
	k     kineticStructure
	traj  *mobility.Trajectory
	every int
	next  int
	g     *graph.CSR
}

func (m *mobileStructure) Step(round int) bool {
	if m.next >= len(m.traj.Steps) || round%m.every != 0 {
		return false
	}
	alive := m.k.AliveMask()
	moved := false
	for _, mv := range m.traj.Steps[m.next] {
		if alive[mv.Node] {
			m.k.Move(mv.Node, mv.To)
			moved = true
		}
	}
	m.next++
	if moved {
		m.g = nil
	}
	return moved
}

func (m *mobileStructure) Died(u int32) {
	m.k.Remove(u)
	m.g = nil
}

func (m *mobileStructure) Graph() *graph.CSR {
	if m.g == nil {
		m.g = m.k.Materialize()
	}
	return m.g
}

func (m *mobileStructure) Positions() []geom.Point { return m.k.Positions() }

// m03MobileLifetime is Q01 on a moving network: the same lifetime engine,
// sinks and traffic model, but the structure underneath tracks waypoint
// motion through the incremental maintainers while batteries drain. The
// static rows are the Q01 baseline on the same traffic substreams.
func m03MobileLifetime(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("M03",
		"Network lifetime on a mobile network (waypoint motion, rate 1/2)",
		"structure", "motion", "roles", "first death", "coverage life",
		"rounds", "delivery", "alive@end", "lcc@end", "resid spread")
	dep := hngDeployment(ctx)
	spec := qSpec(cfg)
	motionSteps := cfg.Trials(100, 30)
	every := max(1, spec.MaxRounds/motionSteps)
	insts := []func(*scenario.Ctx) (*scenario.EnergyInstance, error){
		udgSensInstance,
		func(c *scenario.Ctx) (*scenario.EnergyInstance, error) {
			return hngInstance(c, hngDeployment(c), 2010)
		},
	}
	type rowKey struct{ s, v int }
	var keys []rowKey
	for s := range mKinetics {
		for v := range m03Speeds {
			keys = append(keys, rowKey{s, v})
		}
	}
	rows := make([][]string, len(keys))
	parallelFor(len(keys), func(i int) {
		key := keys[i]
		name, speed := mKinetics[key.s].name, m03Speeds[key.v]
		motion := "static"
		if speed > 0 {
			motion = "v=" + f4(speed)
		}
		fail := func(err error) {
			rows[i] = []string{name, motion, "ERR: " + err.Error(),
				"", "", "", "", "", "", ""}
		}
		inst, err := insts[key.s](ctx)
		if err != nil {
			fail(err)
			return
		}
		var rep *energy.Report
		if speed == 0 {
			rep, err = simulate(ctx, inst, spec, uint64(4480+key.s))
		} else {
			var k kineticStructure
			k, _, err = mKinetics[key.s].build(ctx)
			if err != nil {
				fail(err)
				return
			}
			mspec := mobility.Spec{Model: mobility.ModelWaypoint, Speed: speed,
				Pause: 2, Steps: motionSteps}
			traj := ctx.Trajectory(dep, mspec, uint64(4460+i))
			mob := &mobileStructure{k: k, traj: traj, every: every}
			rep, err = energy.SimulateMobileLifetime(mob, inst.Nodes, inst.Sinks,
				spec, rng.Sub(cfg.Seed, uint64(4480+key.s)))
		}
		if err != nil {
			fail(err)
			return
		}
		rows[i] = append([]string{name, motion,
			d(len(inst.Nodes) - len(inst.Sinks))}, lifetimeCells(rep)...)
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("motion applies one waypoint trajectory step every %d "+
		"rounds (speed in box units per step); the structure is maintained "+
		"incrementally and every motion round forces a route rebuild, while "+
		"death-only rounds use local repair. Members keep their sensing role as "+
		"they move — a member drifting out of its elected tile may go unserved "+
		"until a later election or repair re-attaches it, which is the coverage "+
		"cost of mobility the static rows don't pay", every)
	return t
}
