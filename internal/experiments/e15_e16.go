package experiments

import (
	"repro/internal/geom"
	"repro/internal/lattice"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/tiling"
)

func registerE15E16() {
	scenario.Register(scenario.Scenario{
		ID: "E15", Name: "ablation-geometry",
		Title: "Ablation: repaired geometry parameters → λs (+ optimizer)",
		Tags:  []string{"ablation", "threshold", "udg", "montecarlo"},
		Grid: []scenario.Param{
			grid("(r0, re)", "(0.40,0.10)", "(0.35,0.15)", "(0.30,0.20)", "(0.25,0.25)",
				"(0.20,0.25)", "(0.20,0.20)", "(0.30,0.15)", "(0.45,0.05)"),
		},
		Run: e15AblationGeometry,
	})
	scenario.Register(scenario.Scenario{
		ID: "E16", Name: "ablation-relaxed",
		Title: "Ablation: relaxed-mode handshake failures on the paper's tile",
		Tags:  []string{"ablation", "udg", "geometry"},
		Grid: []scenario.Param{
			grid("band half-height", "0.25", "0.5", "2/3"),
			grid("λ", "4", "8"),
		},
		Needs: []string{"deployment", "udg-base", "udg-sens"},
		Run:   e16AblationRelaxed,
	})
}

// e15AblationGeometry sweeps the repaired-geometry parameter family and
// reports the resulting threshold λs, then runs the one-dimensional
// optimizer — implementing the paper's conclusion's future-work item of
// bringing λs closer to the true λc. The sweep shows the trade-off the
// default spec resolves: a bigger center region helps until the four relay
// regions become the bottleneck.
func e15AblationGeometry(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E15",
		"Ablation: repaired UDG-SENS geometry (r0, re) → threshold λs",
		"r0", "re", "tile side", "λs analytic", "P(good)@λs MC", "feasible")
	pc := lattice.SitePcReference
	type row struct {
		r0, re float64
	}
	rows := []row{
		{0.40, 0.10}, {0.35, 0.15}, {0.30, 0.20}, {0.25, 0.25},
		{0.20, 0.25}, {0.20, 0.20}, {0.30, 0.15}, {0.45, 0.05},
	}
	trials := cfg.Trials(2500, 300)
	type result struct {
		spec     tiling.UDGSpec
		lambdaS  float64
		mc       float64
		feasible bool
	}
	results := make([]result, len(rows))
	parallelFor(len(rows), func(i int) {
		spec, ls := tiling.LambdaSForParams(rows[i].r0, rows[i].re, pc)
		results[i] = result{spec: spec, lambdaS: ls, feasible: spec.Validate() == nil}
		if !results[i].feasible {
			return
		}
		g := rng.Sub(cfg.Seed, uint64(1500+i))
		results[i].mc = tiling.MonteCarloGoodProbability(spec.Side, ls, spec.Compile().TileGood, trials, g).P
	})
	for i, r := range rows {
		res := results[i]
		if !res.feasible {
			t.AddRow(f4(r.r0), f4(r.re), "-", "infeasible", "-", "no")
			continue
		}
		t.AddRow(f4(r.r0), f4(r.re), f4(res.spec.Side), f4(res.lambdaS), f4(res.mc), "yes")
	}
	best, bestLS := tiling.OptimizeUDGSpec(pc)
	t.AddNote("optimizer (golden-section over re, r0 = 1/2−re): best λs = %s at "+
		"r0 = %s, re = %s — the default spec's clean (1/4, 1/4) is within %s of "+
		"optimal; the true λc ≈ 1.44 remains far below, quantifying how lossy the "+
		"tile-coupling proof technique is (the paper's conjecture that the "+
		"subgraph exists whenever the infinite cluster does would close the gap)",
		f4(bestLS), f4(best.R0), f4(best.Re),
		f4(bestLS-tiling.DefaultUDGSpec().LambdaS(pc)))
	t.AddNote("MC column evaluates P(good) exactly at the analytic λs: values ≈ "+
		"p_c = %s confirm the closed-form threshold", f4(pc))
	return t
}

// e16AblationRelaxed measures what the paper's as-written Figure 7
// algorithm actually does on the original 4/3-tile: how often the
// connect() handshakes fail for different relay-band heights, and what
// fraction of "good" tiles survive into the network.
func e16AblationRelaxed(ctx *scenario.Ctx) *Table {
	cfg := ctx.Cfg
	t := scenario.NewTable("E16",
		"Ablation: relaxed (as-written) UDG-SENS on the 4/3 tile — handshake failures",
		"band half-height", "λ", "good tiles", "handshakes",
		"failures", "fail %", "members", "max degree")
	side := cfg.Size(24, 12)
	box := geom.Box(side, side)
	bands := []float64{0.25, 0.5, 2.0 / 3.0}
	lambdas := []float64{4, 8}
	type job struct {
		band, lambda float64
		row          []string
	}
	var jobs []job
	for _, b := range bands {
		for _, l := range lambdas {
			jobs = append(jobs, job{band: b, lambda: l})
		}
	}
	parallelFor(len(jobs), func(i int) {
		spec := tiling.RelaxedUDGSpec()
		spec.BandH = jobs[i].band
		dep := ctx.Deploy(uint64(1600+i), box, jobs[i].lambda)
		n, err := ctx.UDGNet(dep, spec, scenario.NetOptions{})
		if err != nil {
			jobs[i].row = []string{f4(jobs[i].band), f4(jobs[i].lambda), "ERR: " + err.Error(), "", "", "", "", ""}
			return
		}
		failPct := 0.0
		if n.Stats.HandshakeAttempts > 0 {
			failPct = 100 * float64(n.Stats.HandshakeFailures) / float64(n.Stats.HandshakeAttempts)
		}
		jobs[i].row = []string{
			f4(jobs[i].band), f4(jobs[i].lambda), d(n.Stats.GoodTiles),
			d(n.Stats.HandshakeAttempts), d(n.Stats.HandshakeFailures),
			f2(failPct), d(len(n.Members)), d(n.MaxDegree()),
		}
	})
	for _, j := range jobs {
		t.Rows = append(t.Rows, j.row)
	}
	t.AddNote("wider bands make tiles 'good' more often but put relays out of " +
		"radio reach more often — the failure mode the literal §2.1 regions were " +
		"meant to exclude and cannot (they are empty); the repaired geometry has " +
		"0 failures by construction (E04)")
	return t
}
