// Package experiments contains one driver per reproduced paper artifact
// (see DESIGN.md §4): each E** function regenerates the table backing a
// theorem, claim or numeric bound of the paper and returns it as a Table.
// The drivers are callable from cmd/experiments, from the root-level
// benchmark suite (one testing.B per experiment) and from tests.
package experiments

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/parallel"
	"repro/internal/rng"
)

// Config tunes an experiment run.
type Config struct {
	// Seed makes the run reproducible; every experiment derives independent
	// substreams from it.
	Seed rng.Seed
	// Scale multiplies trial counts and shrinks boxes for quick runs:
	// 1 = full (EXPERIMENTS.md numbers), 0.2 = smoke test. Values ≤ 0 are
	// treated as 1.
	Scale float64
}

// trials scales a trial count, keeping at least min.
func (c Config) trials(base, min int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	n := int(float64(base) * s)
	if n < min {
		n = min
	}
	return n
}

// size scales a linear dimension, keeping at least min.
func (c Config) size(base, min float64) float64 {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	// Linear dimensions shrink with sqrt(scale) so areas shrink with scale;
	// scales above 1 do not grow the box.
	if s > 1 {
		s = 1
	}
	v := base * math.Sqrt(s)
	if v < min {
		v = min
	}
	return v
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row (cell count should match Columns).
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned monospace text. Width accounting
// covers every cell — including rows wider than the header, which get their
// own column widths instead of inheriting (and misaligning under) the last
// header column — and a table with no columns renders without panicking.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	ncols := len(t.Columns)
	for _, row := range t.Rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", max(total-2, 4)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// f4 formats a float at 4 significant digits. NaN — the mean of an empty
// sample, a 0/0 ratio — renders as "n/a" so no experiment table can show a
// bare NaN cell.
func f4(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.4g", v)
}

// f2 formats a float at 2 decimal places (NaN as "n/a", like f4).
func f2(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }

// Runner is a registered experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) *Table
}

// All lists every experiment in DESIGN.md order.
var All = []Runner{
	{"E01", "Base model sanity: Poisson process, UDG and NN degree laws", E01BaseModels},
	{"E02", "Site percolation critical probability (paper §2: p_c ∈ (0.592, 0.593))", E02SitePc},
	{"E03", "Chemical distance concentration (Lemma 1.1, Antal–Pisztora)", E03ChemicalDistance},
	{"E04", "UDG-SENS tile goodness and Claim 2.1 path bound", E04UDGClaim},
	{"E05", "Theorem 2.2: λs threshold for UDG-SENS vs direct λc estimate", E05LambdaS},
	{"E06", "NN-SENS tile goodness and Claim 2.3 path bound", E06NNClaim},
	{"E07", "Theorem 2.4: ks threshold for NN-SENS vs direct kc estimate", E07KS},
	{"E08", "Theorem 3.2: constant distance stretch of the SENS networks", E08Stretch},
	{"E09", "Theorem 3.3: exponential coverage decay", E09Coverage},
	{"E10", "Property P1: sparsity (degree distribution)", E10Sparsity},
	{"E11", "Power stretch ≤ δ^β (Li–Wan–Wang)", E11Power},
	{"E12", "§4.2 routing: probes vs optimal path (Angel et al.)", E12Routing},
	{"E13", "§4.1 construction cost: election messages and rounds (P4)", E13Construction},
	{"E14", "Baseline comparison: SENS vs Gabriel/RNG/Yao/EMST/k-NN", E14Baselines},
	{"E15", "Ablation: repaired geometry parameters → λs (+ optimizer)", E15AblationGeometry},
	{"E16", "Ablation: relaxed-mode handshake failures on the paper's tile", E16AblationRelaxed},
	{"E17", "Extension: fault tolerance — failures, degradation, local rebuild", E17FaultTolerance},
	{"E18", "Extension: robustness to inhomogeneous deployment density", E18DensityGradient},
}

// ByID returns the runner with the given ID, or nil.
func ByID(id string) *Runner {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// parallelFor runs fn(i) for i in [0, n) on all cores and waits; it is the
// shared primitive from internal/parallel, kept under its historical name
// because every driver uses it. Grain 1: each experiment row/realization is
// heavyweight, so every index gets its own shard instead of serializing
// under the default bulk shard size.
func parallelFor(n int, fn func(i int)) { parallel.ForGrain(n, 1, fn) }
