// Package experiments contains one driver per reproduced paper artifact
// (see DESIGN.md §4): each E** driver regenerates the table backing a
// theorem, claim or numeric bound of the paper. The drivers are registered
// as scenarios in internal/scenario — with tags, a declarative parameter
// grid and the shared structures they need — and execute through a
// scenario.Ctx, whose keyed cache shares deployments, base graphs, SENS
// structures, topology baselines and power.Measurer weight slabs across
// every driver in a suite run. They remain callable one-off from
// cmd/experiments, the root benchmark suite and tests via the Runner shim.
package experiments

import (
	"fmt"
	"math"

	"repro/internal/parallel"
	"repro/internal/scenario"
)

// Config tunes an experiment run: seed plus trial/size scale. It is the
// scenario engine's Config (Trials and Size are its scaling helpers).
type Config = scenario.Config

// Table is a rendered experiment result — the scenario engine's typed row
// payload.
type Table = scenario.Table

// f4 formats a float at 4 significant digits. NaN — the mean of an empty
// sample, a 0/0 ratio — renders as "n/a" so no experiment table can show a
// bare NaN cell.
func f4(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.4g", v)
}

// f2 formats a float at 2 decimal places (NaN as "n/a", like f4).
func f2(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// d formats an int.
func d(v int) string { return fmt.Sprintf("%d", v) }

// Runner is the historical per-experiment handle, kept for the library
// surface (sensnet.RunExperiment), the benchmark suite and tests. Run
// executes the registered scenario against fresh caches; suite runs that
// want structure sharing go through scenario.Engine instead.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) *Table
}

// All lists every experiment in DESIGN.md order (the scenario registration
// order).
var All []Runner

func init() {
	registerE01E03()
	registerE04E07()
	registerE08E11()
	registerE12E14()
	registerE15E16()
	registerE17E18()
	registerHNG()
	registerEnergy()
	registerRobustness()
	registerMobility()
	for _, s := range scenario.All() {
		run := s.Run
		All = append(All, Runner{ID: s.ID, Title: s.Title, Run: func(cfg Config) *Table {
			return run(scenario.NewCtx(cfg))
		}})
	}
}

// ByID returns the runner with the given ID, or nil.
func ByID(id string) *Runner {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// parallelFor runs fn(i) for i in [0, n) on all cores and waits; it is the
// shared primitive from internal/parallel, kept under its historical name
// because every driver uses it. Grain 1: each experiment row/realization is
// heavyweight, so every index gets its own shard instead of serializing
// under the default bulk shard size.
func parallelFor(n int, fn func(i int)) { parallel.ForGrain(n, 1, fn) }

// grid builds a one-axis scenario.Param.
func grid(name string, values ...string) scenario.Param {
	return scenario.Param{Name: name, Values: values}
}
