package experiments

import (
	"fmt"

	"repro/internal/energy"
	"repro/internal/hng"
	"repro/internal/rng"
	"repro/internal/scenario"
	"repro/internal/tiling"
)

// The Q** scenarios open the energy/QoS family: instead of measuring
// structure (degree, stretch, d^β path cost) they run internal/energy's
// round-based data-gathering simulation — batteries drain, nodes die, the
// network's service degrades — and report the lifetime metrics of the QoS
// literature (arXiv:2001.02761: time to first death, coverage lifetime;
// arXiv:cs/0411040: evenness of power consumption under member rotation).
// Deployments, SENS networks and HNGs are shared with E14/E10/H01–H03
// through the engine cache; the prepared lifetime instances (sink choice,
// spare pools) are cached too (Ctx.Lifetime), while every simulation draws
// its traffic from a fresh per-row substream.

// q02Rates and q02Betas are the Q02 sweep axes — single source for grid and
// driver.
var (
	q02Rates = []float64{0.2, 0.5, 1, 2}
	q02Betas = []float64{2, 3, 4}
)

func registerEnergy() {
	rateVals := make([]string, len(q02Rates))
	for i, r := range q02Rates {
		rateVals[i] = f4(r)
	}
	betaVals := make([]string, len(q02Betas))
	for i, b := range q02Betas {
		betaVals[i] = f4(b)
	}
	scenario.Register(scenario.Scenario{
		ID: "Q01", Name: "lifetime",
		Title: "Network lifetime by topology: UDG-SENS vs NN-SENS vs HNG",
		Tags:  []string{"energy", "lifetime", "qos"},
		Grid: []scenario.Param{
			grid("deployment", "UDG(λ=16)", "NN(λ=1)"),
			grid("structure", "SENS", "HNG(p=1/8)"),
		},
		Needs: []string{"deployment", "udg-sens", "nn-sens", "hng", "lifetime-instance"},
		Run:   q01Lifetime,
	})
	scenario.Register(scenario.Scenario{
		ID: "Q02", Name: "lifetime-qos",
		Title: "QoS sweep: report rate × path-loss β vs lifetime and delivery (UDG-SENS)",
		Tags:  []string{"energy", "lifetime", "qos"},
		Grid: []scenario.Param{
			{Name: "rate", Values: rateVals},
			{Name: "β", Values: betaVals},
		},
		Needs: []string{"deployment", "udg-sens", "lifetime-instance"},
		Run:   q02QoS,
	})
	scenario.Register(scenario.Scenario{
		ID: "Q03", Name: "lifetime-rotation",
		Title: "Member rotation on vs off: spending the redundant nodes evens the drain",
		Tags:  []string{"energy", "lifetime", "rotation"},
		Grid: []scenario.Param{
			grid("structure", "UDG-SENS", "NN-SENS"),
			grid("rotation", "off", "on"),
		},
		Needs: []string{"deployment", "udg-sens", "nn-sens", "lifetime-instance"},
		Run:   q03Rotation,
	})
}

// qSpec is the shared lifetime configuration: the default radio model and
// battery, with the round cap scale-aware so smoke runs stay quick.
func qSpec(cfg Config) energy.Spec {
	spec := energy.DefaultSpec()
	spec.MaxRounds = cfg.Trials(1500, 250)
	return spec
}

// maxSparesPerRole caps the uniform spare allocation so Q03's rotated
// lifetimes stay within the round budget (NN-SENS at λ=1 activates so few
// nodes that the raw surplus would be tens of spares per role).
const maxSparesPerRole = 5

// capSpares clamps a UniformSpares allocation in place and returns it.
func capSpares(sp []int) []int {
	for i, v := range sp {
		if v > maxSparesPerRole {
			sp[i] = maxSparesPerRole
		}
	}
	return sp
}

// udgSensInstance returns the cached lifetime instance over the shared
// λ=16 deployment's UDG-SENS network (E14/H02's structure), with the
// member nearest the field centroid as the mains-powered sink and the
// sleeping deployment points pooled into uniform spares.
func udgSensInstance(ctx *scenario.Ctx) (*scenario.EnergyInstance, error) {
	dep := hngDeployment(ctx)
	net, err := ctx.UDGNet(dep, tiling.DefaultUDGSpec(), scenario.NetOptions{})
	if err != nil {
		return nil, err
	}
	if len(net.Members) < 2 {
		return nil, fmt.Errorf("UDG-SENS network too small (%d members)", len(net.Members))
	}
	return ctx.Lifetime("udgsens|"+dep.Key, func() *scenario.EnergyInstance {
		return &scenario.EnergyInstance{
			Graph:  net.Graph,
			Pos:    dep.Pts,
			Nodes:  net.Members,
			Sinks:  energy.QuadrantSinks(dep.Pts, net.Members),
			Spares: capSpares(energy.UniformSpares(len(dep.Pts), net.Members)),
		}
	}), nil
}

// nnSensInstance is udgSensInstance for the NN family: H02's λ=1
// paper-parameter deployment and its NN-SENS network.
func nnSensInstance(ctx *scenario.Ctx) (*scenario.EnergyInstance, error) {
	dep := nnDeployment(ctx)
	net, err := ctx.NNNet(dep, tiling.PaperNNSpec(), scenario.NetOptions{})
	if err != nil {
		return nil, err
	}
	if len(net.Members) < 2 {
		return nil, fmt.Errorf("NN-SENS network too small (%d members)", len(net.Members))
	}
	return ctx.Lifetime("nnsens|"+dep.Key, func() *scenario.EnergyInstance {
		return &scenario.EnergyInstance{
			Graph:  net.Graph,
			Pos:    dep.Pts,
			Nodes:  net.Members,
			Sinks:  energy.QuadrantSinks(dep.Pts, net.Members),
			Spares: capSpares(energy.UniformSpares(len(dep.Pts), net.Members)),
		}
	}), nil
}

// hngInstance prepares the HNG lifetime instance over the given shared
// deployment (stream matches H02's builds, so the graph is shared). Every
// node is active in an HNG, so there are no spares to rotate in.
func hngInstance(ctx *scenario.Ctx, dep scenario.Deployment, stream uint64) (*scenario.EnergyInstance, error) {
	h, err := ctx.HNG(dep, hng.DefaultSpec(), stream)
	if err != nil {
		return nil, err
	}
	return ctx.Lifetime(fmt.Sprintf("hng|%s|st=%d", dep.Key, stream), func() *scenario.EnergyInstance {
		nodes := h.Vertices()
		return &scenario.EnergyInstance{
			Graph: h.CSR,
			Pos:   dep.Pts,
			Nodes: nodes,
			Sinks: energy.QuadrantSinks(dep.Pts, nodes),
		}
	}), nil
}

// simulate runs one lifetime simulation on a cached instance with a fresh
// traffic substream.
func simulate(ctx *scenario.Ctx, inst *scenario.EnergyInstance, spec energy.Spec,
	stream uint64) (*energy.Report, error) {
	if spec.Rotation {
		spec.Spares = inst.Spares
	}
	return energy.SimulateLifetime(inst.Graph, inst.Pos, inst.Nodes, inst.Sinks,
		spec, rng.Sub(ctx.Cfg.Seed, stream))
}

// lifetimeCells renders the shared metric columns of a lifetime report.
func lifetimeCells(rep *energy.Report) []string {
	return []string{
		d(rep.FirstDeath), d(rep.CoverageLifetime), d(rep.Rounds),
		f4(rep.DeliveryRatio()), f4(rep.AliveAtEnd()), f4(rep.LargestAtEnd()),
		f4(rep.ResidualSpread),
	}
}

// q01Lifetime is the head-to-head the tentpole asks for: on the same shared
// deployments the structural comparisons use, which topology keeps sensing
// longest? SENS pays for its sparsity with relay hot spots near the sink;
// HNG keeps every node busy (no sleeping majority) but spreads rx load over
// bounded degrees.
func q01Lifetime(ctx *scenario.Ctx) *Table {
	t := scenario.NewTable("Q01",
		"Network lifetime by topology (default radio model, rate 1/2)",
		"deployment", "structure", "roles", "first death", "coverage life",
		"rounds", "delivery", "alive@end", "lcc@end", "resid spread")

	type job struct {
		deployment, structure string
		inst                  func(*scenario.Ctx) (*scenario.EnergyInstance, error)
	}
	jobs := []job{
		{"UDG(λ=16)", "UDG-SENS", udgSensInstance},
		{"UDG(λ=16)", "HNG(p=1/8)", func(c *scenario.Ctx) (*scenario.EnergyInstance, error) {
			return hngInstance(c, hngDeployment(c), 2010)
		}},
		{"NN(λ=1)", "NN-SENS", nnSensInstance},
		{"NN(λ=1)", "HNG(p=1/8)", func(c *scenario.Ctx) (*scenario.EnergyInstance, error) {
			return hngInstance(c, nnDeployment(c), 2011)
		}},
	}
	rows := make([][]string, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		inst, err := j.inst(ctx)
		if err != nil {
			rows[i] = []string{j.deployment, j.structure, "ERR: " + err.Error(),
				"", "", "", "", "", "", ""}
			return
		}
		rep, err := simulate(ctx, inst, qSpec(ctx.Cfg), uint64(3000+i))
		if err != nil {
			rows[i] = []string{j.deployment, j.structure, "ERR: " + err.Error(),
				"", "", "", "", "", "", ""}
			return
		}
		rows[i] = append([]string{j.deployment, j.structure,
			d(len(inst.Nodes) - len(inst.Sinks))}, lifetimeCells(rep)...)
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("first death = round the first role dies; coverage life = rounds with " +
		"≥50%% of sources alive and routed; delivery = packets delivered/attempted; " +
		"resid spread = stddev of residual energy fractions (evenness of drain). " +
		"SENS powers only its members, so the sleeping majority costs nothing but " +
		"relays near the sink concentrate drain; HNG powers every node")
	return t
}

// q02QoS sweeps offered load (report rate) against the radio's path-loss
// exponent on the UDG-SENS instance: the QoS question of how much traffic
// the topology can carry for how long, and how brutally β punishes the
// same geometry.
func q02QoS(ctx *scenario.Ctx) *Table {
	t := scenario.NewTable("Q02",
		"QoS sweep on UDG-SENS: rate × β vs lifetime and delivery",
		"rate", "β", "first death", "coverage life", "rounds", "delivery",
		"alive@end", "lcc@end", "resid spread")
	inst, err := udgSensInstance(ctx)
	if err != nil {
		t.AddRow("ERR: " + err.Error())
		return t
	}
	type cell struct{ rate, beta float64 }
	var cells []cell
	for _, r := range q02Rates {
		for _, b := range q02Betas {
			cells = append(cells, cell{r, b})
		}
	}
	rows := make([][]string, len(cells))
	parallelFor(len(cells), func(i int) {
		spec := qSpec(ctx.Cfg)
		spec.Rate = cells[i].rate
		spec.Model.Beta = cells[i].beta
		rep, err := simulate(ctx, inst, spec, uint64(3100+i))
		if err != nil {
			rows[i] = []string{f4(cells[i].rate), f4(cells[i].beta),
				"ERR: " + err.Error(), "", "", "", "", "", ""}
			return
		}
		rows[i] = append([]string{f4(cells[i].rate), f4(cells[i].beta)},
			lifetimeCells(rep)...)
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("the load axis dominates: first death shortens roughly in proportion " +
		"to the rate. The β axis barely moves — every UDG-SENS hop is at most unit " +
		"length, so raising β *discounts* the amplifier term d^β and the paper's " +
		"short-hops-only discipline is exactly what makes the topology robust to " +
		"harsh path-loss environments")
	return t
}

// q03Rotation is the even-power-distribution contrast (arXiv:cs/0411040):
// the same instances with and without member rotation. SENS deactivates
// most deployed nodes, so each role has sleeping spares; rotating them in
// as batteries empty multiplies the role's budget and defers first death by
// about the spare count.
func q03Rotation(ctx *scenario.Ctx) *Table {
	t := scenario.NewTable("Q03",
		"Member rotation: expendable spares vs network lifetime",
		"structure", "rotation", "spares/role", "first death", "coverage life",
		"rounds", "delivery", "alive@end", "lcc@end", "resid spread", "rotations")

	type job struct {
		structure string
		rotation  bool
		inst      func(*scenario.Ctx) (*scenario.EnergyInstance, error)
	}
	jobs := []job{
		{"UDG-SENS", false, udgSensInstance},
		{"UDG-SENS", true, udgSensInstance},
		{"NN-SENS", false, nnSensInstance},
		{"NN-SENS", true, nnSensInstance},
	}
	rows := make([][]string, len(jobs))
	parallelFor(len(jobs), func(i int) {
		j := jobs[i]
		onOff := "off"
		if j.rotation {
			onOff = "on"
		}
		inst, err := j.inst(ctx)
		if err != nil {
			rows[i] = []string{j.structure, onOff, "ERR: " + err.Error(),
				"", "", "", "", "", "", "", ""}
			return
		}
		spares := 0
		if len(inst.Spares) > 0 {
			// The allocation is uniform over members: read it off the first
			// non-sink participant.
			for _, v := range inst.Nodes {
				if !contains(inst.Sinks, v) {
					spares = inst.Spares[v]
					break
				}
			}
		}
		spec := qSpec(ctx.Cfg)
		spec.Rotation = j.rotation
		// Rotated runs need headroom: the budget is (1+spares)× the battery.
		if j.rotation {
			spec.MaxRounds *= 1 + maxSparesPerRole
		}
		rep, err := simulate(ctx, inst, spec, uint64(3200+i/2))
		if err != nil {
			rows[i] = []string{j.structure, onOff, "ERR: " + err.Error(),
				"", "", "", "", "", "", "", ""}
			return
		}
		rows[i] = append(append([]string{j.structure, onOff, d(spares)},
			lifetimeCells(rep)...), d(rep.Rotations))
	})
	for _, r := range rows {
		t.Rows = append(t.Rows, r)
	}
	t.AddNote("rotation swaps a depleted member for a co-located sleeping spare with "+
		"a fresh battery (the paper's expendable-members redundancy, capped at %d "+
		"spares/role); the off/on pairs share the traffic substream, so the contrast "+
		"is pure policy", maxSparesPerRole)
	return t
}

// contains reports whether v is in xs (tiny sink lists only).
func contains(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
