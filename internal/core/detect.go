package core

import (
	"sort"

	"repro/internal/simnet"
)

// DetectionReport is the outcome of the distributed component-size
// detection protocol of DetectComponents.
type DetectionReport struct {
	// ComponentSizes maps each component leader (max node ID in the
	// component) to the size its members learned.
	ComponentSizes map[int32]int
	// Off lists the nodes that turned themselves off because their learned
	// component size fell below the threshold, in ascending order.
	Off []int32
	// MessagesSent / MessagesDelivered are simnet totals across all phases.
	MessagesSent      int
	MessagesDelivered int
	// Rounds is the simulated completion time (hop-time units).
	Rounds float64
}

// detectState is the per-node state of the detection protocol.
type detectState struct {
	leader   int32
	parent   int32
	children []int32
	reported int
	count    int
	size     int
	done     bool
}

// Protocol payloads.
type floodMsg struct{ leader int32 }
type adoptMsg struct{ child int32 }
type countMsg struct{ count int }
type sizeMsg struct{ size int }

// DetectComponents runs the small-component detection the paper sketches at
// the end of §4.1 ("the nodes of a small component can then turn themselves
// off") as a real distributed protocol over the constructed rep/relay graph
// (all elected nodes, not just the largest component):
//
//  1. leader flood: every node repeatedly forwards the largest node ID it
//     has heard; on quiescence each component agrees on its max-ID leader
//     and the flood edges define a spanning tree (parent = first sender of
//     the final leader value);
//  2. adopt: every non-leader registers with its tree parent;
//  3. convergecast: leaves report count 1; internal nodes add their
//     subtree counts and forward — the leader learns the component size;
//  4. size broadcast: the leader floods the size down the tree; every node
//     now knows how big its component is and turns itself off when the size
//     is below offThreshold.
//
// Each phase runs to quiescence on the event simulator, so the message and
// time costs are measured, not assumed. The learned sizes are exactly the
// true component sizes (asserted by tests against the graph substrate).
func (n *Network) DetectComponents(offThreshold int) *DetectionReport {
	sim := simnet.New()
	// Participants: every node with at least one rep/relay edge.
	var nodes []int32
	for u := int32(0); int(u) < n.Graph.N; u++ {
		if n.Graph.Degree(u) > 0 {
			nodes = append(nodes, u)
		}
	}
	states := make(map[int32]*detectState, len(nodes))
	for _, u := range nodes {
		states[u] = &detectState{leader: u, parent: -1}
	}

	for _, u := range nodes {
		u := u
		sim.Register(simnet.NodeID(u), simnet.HandlerFunc(func(s *simnet.Network, m simnet.Message) {
			st := states[u]
			switch payload := m.Payload.(type) {
			case floodMsg:
				if payload.leader > st.leader {
					st.leader = payload.leader
					st.parent = int32(m.From)
					for _, v := range n.Graph.Neighbors(u) {
						if v != int32(m.From) {
							s.Send(simnet.NodeID(u), simnet.NodeID(v), floodMsg{leader: st.leader})
						}
					}
				}
			case adoptMsg:
				st.children = append(st.children, payload.child)
			case countMsg:
				st.count += payload.count
				st.reported++
				if st.reported == len(st.children) && st.parent >= 0 && !st.done {
					st.done = true
					s.Send(simnet.NodeID(u), simnet.NodeID(st.parent), countMsg{count: st.count + 1})
				}
			case sizeMsg:
				if st.size == 0 {
					st.size = payload.size
					for _, c := range st.children {
						s.Send(simnet.NodeID(u), simnet.NodeID(c), sizeMsg{size: st.size})
					}
				}
			}
		}))
	}

	// Phase 1: leader flood, run to quiescence.
	for _, u := range nodes {
		for _, v := range n.Graph.Neighbors(u) {
			sim.Send(simnet.NodeID(u), simnet.NodeID(v), floodMsg{leader: u})
		}
	}
	sim.Run(0)

	// Phase 2: adopt.
	for _, u := range nodes {
		if st := states[u]; st.parent >= 0 {
			sim.Send(simnet.NodeID(u), simnet.NodeID(st.parent), adoptMsg{child: u})
		}
	}
	sim.Run(0)

	// Phase 3: convergecast — leaves start.
	for _, u := range nodes {
		st := states[u]
		if len(st.children) == 0 && st.parent >= 0 {
			st.done = true
			sim.Send(simnet.NodeID(u), simnet.NodeID(st.parent), countMsg{count: 1})
		}
	}
	sim.Run(0)

	// Phase 4: leaders (parent < 0) announce the size down the tree.
	report := &DetectionReport{ComponentSizes: map[int32]int{}}
	for _, u := range nodes {
		st := states[u]
		if st.parent < 0 {
			st.size = st.count + 1
			report.ComponentSizes[u] = st.size
			for _, c := range st.children {
				sim.Send(simnet.NodeID(u), simnet.NodeID(c), sizeMsg{size: st.size})
			}
		}
	}
	sim.Run(0)

	for _, u := range nodes {
		if states[u].size < offThreshold {
			report.Off = append(report.Off, u)
		}
	}
	sort.Slice(report.Off, func(i, j int) bool { return report.Off[i] < report.Off[j] })
	report.MessagesSent = sim.MessagesSent
	report.MessagesDelivered = sim.MessagesDelivered
	report.Rounds = sim.Now()
	return report
}
