package core

import (
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/simnet"
	"repro/internal/tiling"
)

// NN-SENS protocol payloads.
type nnRepAnnounceMsg struct{ rep int32 }
type nnCensusMsg struct{ node int32 }
type nnLeaderMsg struct {
	region tiling.NRegion
	leader int32
}
type nnTileGoodMsg struct {
	rep    int32
	disk   [4]int32
	bridge [4]int32
}
type nnCrossMsg struct{ from int32 }
type nnCrossAckMsg struct{ from int32 }

// nnNodeState is the per-node protocol state of BuildNNDistributed.
type nnNodeState struct {
	tile    tiling.Coord
	region  tiling.NRegion
	mapped  bool
	maxSeen int32
	// Representative-elect bookkeeping.
	census int
	disk   [4]int32
	bridge [4]int32
	// Relay bookkeeping (filled by nnTileGoodMsg).
	tileGood nnTileGoodMsg
	hasGood  bool
}

// BuildNNDistributed executes the §2.2 / §4.1 construction for NN-SENS as a
// message-passing protocol on the discrete-event simulator:
//
//	t=0: region-internal ID broadcast (election, 9 regions per tile);
//	t=2: the C0 winner announces itself to every node of its tile;
//	t=4: every tile node reports to the representative-elect (the census
//	     that enforces the population ≤ k/2 goodness condition) and region
//	     winners announce their regions;
//	t=6: a representative with all eight relay leaders and census ≤ k/2
//	     declares the tile good and ships the relay table to its relays;
//	t=8: outer-disk relays of good tiles handshake across tile boundaries;
//	     a successful handshake installs the five-edge Figure 6 path
//	     rep—E_d—C_d—C_d'—E_d'—rep'.
//
// The topology equals the centralized BuildNN with the broadcast election
// protocol (asserted by tests). Base-graph validation is not performed here
// — run BuildNN for the Claim 2.3 check; the point of this variant is
// measured message costs for P4.
func BuildNNDistributed(pts []geom.Point, box geom.Rect, spec tiling.NNSpec) (*DistributedResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	gm := spec.Compile()
	n := &Network{
		Kind:   KindNN,
		Pts:    pts,
		Box:    box,
		Map:    tiling.NewMap(box, spec.TileSide()),
		Tiles:  make(map[tiling.Coord]*TileNodes),
		NNSpec: &spec,
	}
	n.Stats.Tiles = n.Map.Tiles()

	// Phase 1: local classification.
	states := make([]nnNodeState, len(pts))
	tileNodes := map[tiling.Coord][]int32{} // every node of the tile
	regionPeers := map[tiling.Coord]map[tiling.NRegion][]int32{}
	for i, p := range pts {
		st := &states[i]
		st.maxSeen = int32(i)
		for d := 0; d < 4; d++ {
			st.disk[d] = -1
			st.bridge[d] = -1
		}
		c := n.Map.Tiling.TileOf(p)
		if _, _, ok := n.Map.Phi(c); !ok {
			continue
		}
		st.tile = c
		st.mapped = true
		st.region = gm.Classify(n.Map.Tiling.Local(c, p))
		tileNodes[c] = append(tileNodes[c], int32(i))
		if st.region != tiling.NNone {
			if regionPeers[c] == nil {
				regionPeers[c] = map[tiling.NRegion][]int32{}
			}
			regionPeers[c][st.region] = append(regionPeers[c][st.region], int32(i))
		}
	}

	sim := simnet.New()
	b := graph.NewBuilder(len(pts))
	goodTiles := map[tiling.Coord]bool{}

	for i := range pts {
		i := i
		sim.Register(simnet.NodeID(i), simnet.HandlerFunc(func(s *simnet.Network, m simnet.Message) {
			st := &states[i]
			switch payload := m.Payload.(type) {
			case electionMsg:
				if payload.id > st.maxSeen {
					st.maxSeen = payload.id
				}
			case nnRepAnnounceMsg:
				// Every tile node replies with its census entry.
				s.Send(simnet.NodeID(i), simnet.NodeID(payload.rep), nnCensusMsg{node: int32(i)})
			case nnCensusMsg:
				st.census++
			case nnLeaderMsg:
				switch {
				case payload.region >= tiling.NDiskRight && payload.region <= tiling.NDiskBottom:
					st.disk[payload.region-tiling.NDiskRight] = payload.leader
				case payload.region >= tiling.NBridgeRight && payload.region <= tiling.NBridgeBottom:
					st.bridge[payload.region-tiling.NBridgeRight] = payload.leader
				}
			case nnTileGoodMsg:
				st.tileGood = payload
				st.hasGood = true
			case nnCrossMsg:
				// Facing outer-disk relay: accept iff own tile is good; the
				// ACK carries our ID; we also install our side's intra-tile
				// path edges.
				if !st.hasGood {
					return
				}
				s.Send(simnet.NodeID(i), simnet.NodeID(payload.from), nnCrossAckMsg{from: int32(i)})
				st.installIntraPath(b, int32(i))
			case nnCrossAckMsg:
				// Initiating outer-disk relay: install the boundary edge and
				// our side's intra-tile path edges.
				b.AddEdge(int32(i), payload.from)
				st.installIntraPath(b, int32(i))
			}
		}))
	}

	// t=0: elections in all nine regions.
	sim.After(0, func(s *simnet.Network) {
		//sensvet:allow detrange — enqueue order only permutes same-timestep delivery; election handlers take a max over ids, so the outcome commutes (gated by TestNNDistributedMatchesCentralized)
		for _, regions := range regionPeers {
			//sensvet:allow detrange — same broadcast: per-region sends, handlers commute
			for _, peers := range regions {
				for _, u := range peers {
					for _, v := range peers {
						if u != v {
							s.Send(simnet.NodeID(u), simnet.NodeID(v), electionMsg{id: u})
						}
					}
				}
			}
		}
	})

	// t=2: representative-elect announces to the whole tile.
	sim.After(2, func(s *simnet.Network) {
		//sensvet:allow detrange — each tile's rep announces to that tile's own nodes; census counting commutes
		for c, regions := range regionPeers {
			rep := winner(regions[tiling.NC0])
			if rep < 0 {
				continue
			}
			for _, v := range tileNodes[c] {
				if v != rep {
					s.Send(simnet.NodeID(rep), simnet.NodeID(v), nnRepAnnounceMsg{rep: rep})
				}
			}
			states[rep].census++ // the rep counts itself
		}
	})

	// t=4: relay winners announce their regions to the representative.
	sim.After(4, func(s *simnet.Network) {
		//sensvet:allow detrange — leader announcements land in per-(rep,region) slots; distinct tiles write distinct slots
		for _, regions := range regionPeers {
			rep := winner(regions[tiling.NC0])
			if rep < 0 {
				continue
			}
			for _, d := range tiling.Directions {
				if l := winner(regions[tiling.NDisk(d)]); l >= 0 {
					s.Send(simnet.NodeID(l), simnet.NodeID(rep),
						nnLeaderMsg{region: tiling.NDisk(d), leader: l})
				}
				if l := winner(regions[tiling.NBridge(d)]); l >= 0 {
					s.Send(simnet.NodeID(l), simnet.NodeID(rep),
						nnLeaderMsg{region: tiling.NBridge(d), leader: l})
				}
			}
		}
	})

	// t=6: goodness decision and relay-table distribution.
	sim.After(6, func(s *simnet.Network) {
		//sensvet:allow detrange — goodness reads per-rep state finalized at t=4; goodTiles stores are keyed by tile and table handlers commute
		for c, regions := range regionPeers {
			rep := winner(regions[tiling.NC0])
			if rep < 0 {
				continue
			}
			st := &states[rep]
			good := st.census <= spec.K/2
			for d := 0; d < 4; d++ {
				good = good && st.disk[d] >= 0 && st.bridge[d] >= 0
			}
			if !good {
				continue
			}
			goodTiles[c] = true
			msg := nnTileGoodMsg{rep: rep, disk: st.disk, bridge: st.bridge}
			states[rep].tileGood = msg
			states[rep].hasGood = true
			for d := 0; d < 4; d++ {
				s.Send(simnet.NodeID(rep), simnet.NodeID(st.disk[d]), msg)
				s.Send(simnet.NodeID(rep), simnet.NodeID(st.bridge[d]), msg)
			}
		}
	})

	// t=8: cross-boundary handshakes (initiated toward Right and Top).
	sim.After(8, func(s *simnet.Network) {
		//sensvet:allow detrange — handshake edges go through the counting-sort CSR build (insertion-order independent)
		for c := range goodTiles {
			for _, d := range []tiling.Direction{tiling.Right, tiling.Top} {
				nc := c.Neighbor(d)
				if !goodTiles[nc] {
					continue
				}
				u := winner(regionPeers[c][tiling.NDisk(d)])
				v := winner(regionPeers[nc][tiling.NDisk(d.Opposite())])
				if u >= 0 && v >= 0 {
					s.Send(simnet.NodeID(u), simnet.NodeID(v), nnCrossMsg{from: u})
				}
			}
		}
	})

	sim.Run(0)

	// Assemble the Network view.
	//sensvet:allow detrange — each tile's table entry is computed from that tile's own regions and stored by key
	for c, regions := range regionPeers {
		tn := &TileNodes{Rep: winner(regions[tiling.NC0])}
		tn.Population = len(tileNodes[c])
		for _, d := range tiling.Directions {
			tn.Disk[d] = winner(regions[tiling.NDisk(d)])
			tn.Bridge[d] = winner(regions[tiling.NBridge(d)])
		}
		tn.Good = goodTiles[c]
		if tn.Good {
			n.Stats.GoodTiles++
		}
		n.Tiles[c] = tn
	}
	n.Stats.ElectionMessages = sim.MessagesSent
	n.Stats.ElectionRounds = 1
	n.finalize(b)

	return &DistributedResult{
		Network:           n,
		MessagesSent:      sim.MessagesSent,
		MessagesDelivered: sim.MessagesDelivered,
		Duration:          sim.Now(),
	}, nil
}

// installIntraPath adds, for the outer-disk relay `self` of a good tile,
// its side of the Figure 6 path: C_d—E_d and E_d—rep, using the relay table
// received at t=6. The direction is identified by locating self in the
// table.
func (st *nnNodeState) installIntraPath(b *graph.Builder, self int32) {
	for d := 0; d < 4; d++ {
		if st.tileGood.disk[d] == self {
			b.AddEdge(self, st.tileGood.bridge[d])
			b.AddEdge(st.tileGood.bridge[d], st.tileGood.rep)
			return
		}
	}
}
