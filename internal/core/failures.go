package core

import (
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/tiling"
)

// FailureReport quantifies the damage of node failures to a SENS network —
// the flip side of the paper's redundancy story: individual nodes are
// expendable (most are not even members), but failures of members fragment
// the subnetwork until it is rebuilt from the survivors.
type FailureReport struct {
	// FailedTotal is the number of failed deployment nodes.
	FailedTotal int
	// FailedMembers is how many of them were network members.
	FailedMembers int
	// SurvivingLargest is the size of the largest connected component of
	// the surviving members under the ORIGINAL topology (no rebuild).
	SurvivingLargest int
	// SurvivingFraction is SurvivingLargest / original member count.
	SurvivingFraction float64
	// Rebuilt is the network constructed from scratch on the surviving
	// deployment (what the paper's local algorithm would converge to after
	// re-running elections).
	Rebuilt *Network
}

// SimulateFailures kills each deployment node independently with
// probability q, measures the degradation of the existing network, and
// rebuilds from the survivors. Thinning a Poisson(λ) deployment at rate q
// leaves a Poisson((1−q)λ) deployment, so the rebuild succeeds exactly when
// (1−q)λ is still above the construction threshold — the crossover the E17
// experiment exhibits.
func SimulateFailures(n *Network, q float64, rng *rand.Rand) (*FailureReport, error) {
	rep := &FailureReport{}
	failed := make([]bool, len(n.Pts))
	survivors := make([]geom.Point, 0, len(n.Pts))
	for i := range n.Pts {
		if rng.Float64() < q {
			failed[i] = true
			rep.FailedTotal++
			if n.InNet[i] {
				rep.FailedMembers++
			}
		} else {
			survivors = append(survivors, n.Pts[i])
		}
	}

	// Degradation of the original topology: components of the induced
	// subgraph on surviving members.
	rep.SurvivingLargest = graph.LargestComponentWhere(n.Graph, n.Members,
		func(u int32) bool { return !failed[u] })
	if len(n.Members) > 0 {
		rep.SurvivingFraction = float64(rep.SurvivingLargest) / float64(len(n.Members))
	}

	// Rebuild from the survivors with the same geometry.
	var err error
	switch {
	case n.UDGSpec != nil:
		rebuilt, e := BuildUDG(survivors, n.Box, *n.UDGSpec, Options{SkipBase: true})
		rep.Rebuilt, err = rebuilt, e
	case n.NNSpec != nil:
		rebuilt, e := BuildNN(survivors, n.Box, *n.NNSpec, Options{SkipBase: true})
		rep.Rebuilt, err = rebuilt, e
	}
	if err != nil {
		return nil, err
	}
	return rep, nil
}

// SmallComponentWaste reports the §4.1 "small components turn themselves
// off" accounting: the number of rep/relay nodes that were elected and
// connected but ended up outside the largest component, by tile.
func (n *Network) SmallComponentWaste() (nodes int, tiles int) {
	seen := map[tiling.Coord]bool{}
	//sensvet:allow detrange — Degree and InNet are read-only lookups; nodes/tiles are commutative counts
	for c, tn := range n.Tiles {
		if !tn.Good {
			continue
		}
		ids := append([]int32{tn.Rep}, tn.Bridge[:]...)
		wasted := false
		for _, id := range ids {
			if id >= 0 && !n.InNet[id] && n.Graph.Degree(id) > 0 {
				nodes++
				wasted = true
			}
		}
		if wasted && !seen[c] {
			seen[c] = true
			tiles++
		}
	}
	return nodes, tiles
}
