package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/rgg"
	"repro/internal/tiling"
)

// BuildUDGSharded constructs the identical UDG-SENS(2, λ) network as
// BuildUDG by tile-sharded parallel execution — the scale-tier path for
// 10⁶-node deployments, where the serial per-tile loop and the map-ordered
// wiring pass become the bottleneck.
//
// The construction is the same Figure 7 pipeline, re-cut along tile
// boundaries into two data-parallel phases over a dense tile slab
// (tiling.AssignTilesCSR; no per-tile map allocation, no map iteration
// order anywhere):
//
//  1. Elections: every occupied tile classifies its points and elects its
//     five region leaders independently — tiles share nothing, so the phase
//     shards freely with per-shard election scratch. Election message/round
//     accounting accumulates into order-independent sums and maxes.
//  2. Wiring with border stitching: every good tile emits its rep↔relay
//     edges and — for the Right and Top borders only, so each boundary is
//     stitched by exactly one of its two tiles — the relay↔relay edge to
//     the facing neighbor, reading the neighbor's phase-1 leaders. Edges
//     land in per-shard packed buffers whose deterministic concatenation
//     feeds the counting-sort CSR build, which is insertion-order
//     independent.
//
// The result is byte-identical to BuildUDG at any GOMAXPROCS — graph,
// members, per-tile elections, lattice coupling and stats (equivalence
// suite in scale_test.go). When the base graph is not supplied or skipped
// it is built with the pair-free rgg.UDGGrid enumeration rather than the
// per-point query path.
func BuildUDGSharded(pts []geom.Point, box geom.Rect, spec tiling.UDGSpec, opt Options) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		Kind:    KindUDG,
		Pts:     pts,
		Box:     box,
		Map:     tiling.NewMap(box, spec.Side),
		Tiles:   make(map[tiling.Coord]*TileNodes),
		UDGSpec: &spec,
	}
	n.Base = opt.Base
	if n.Base == nil && !opt.SkipBase {
		n.Base = rgg.UDGGrid(pts, spec.Radius)
	}
	if n.Base != nil && n.Base.N != len(pts) {
		return nil, fmt.Errorf("sens: base graph has %d vertices, deployment has %d", n.Base.N, len(pts))
	}
	if opt.Alive != nil && len(opt.Alive) != len(pts) {
		return nil, fmt.Errorf("sens: alive mask has %d entries, deployment has %d", len(opt.Alive), len(pts))
	}

	gm := spec.Compile()
	start, order := tiling.AssignTilesCSR(n.Map, pts)
	nt := n.Map.Tiles()
	n.Stats.Tiles = nt
	tiles := make([]TileNodes, nt)

	// Phase 1: per-tile elections. Tiles write only their own slab entry;
	// stats reduce through order-independent atomics.
	var messages, goodTiles atomic.Int64
	var maxRounds atomic.Int64
	parallel.ForShard(nt, func(lo, hi int) {
		var esc election.Scratch
		var regionIDs [5][]int32
		var local []geom.Point
		shardMsgs, shardRounds := 0, 0
		for t := lo; t < hi; t++ {
			idx := order[start[t]:start[t+1]]
			if len(idx) == 0 {
				continue
			}
			c := n.Map.PhiInv(t%n.Map.W, t/n.Map.W)
			local = tiling.LocalPoints(n.Map, c, pts, idx, local)
			for r := range regionIDs {
				regionIDs[r] = regionIDs[r][:0]
			}
			pop := 0
			for k, p := range local {
				if opt.Alive != nil && !opt.Alive[idx[k]] {
					continue
				}
				pop++
				switch r := gm.Classify(p); r {
				case tiling.UC0:
					regionIDs[0] = append(regionIDs[0], idx[k])
				case tiling.URelayRight, tiling.URelayLeft, tiling.URelayTop, tiling.URelayBottom:
					d := int(r - tiling.URelayRight)
					regionIDs[1+d] = append(regionIDs[1+d], idx[k])
				}
			}
			tn := &tiles[t]
			tn.Population = pop
			tn.Rep = -1
			for d := range tn.Disk {
				tn.Disk[d] = -1
			}
			elect := func(ids []int32) int32 {
				res := esc.Elect(opt.Election, ids)
				shardMsgs += res.Messages
				if res.Rounds > shardRounds {
					shardRounds = res.Rounds
				}
				return res.Leader
			}
			tn.Rep = elect(regionIDs[0])
			good := tn.Rep >= 0
			for d := 0; d < 4; d++ {
				tn.Bridge[d] = elect(regionIDs[1+d])
				good = good && tn.Bridge[d] >= 0
			}
			tn.Good = good
			if good {
				goodTiles.Add(1)
			}
		}
		messages.Add(int64(shardMsgs))
		for {
			cur := maxRounds.Load()
			if int64(shardRounds) <= cur || maxRounds.CompareAndSwap(cur, int64(shardRounds)) {
				break
			}
		}
	})
	n.Stats.ElectionMessages = int(messages.Load())
	n.Stats.ElectionRounds = int(maxRounds.Load())
	n.Stats.GoodTiles = int(goodTiles.Load())

	// Phase 2: wiring with border stitching. Each good tile emits its own
	// rep↔relay edges plus the Right/Top cross-boundary relay edges, so
	// every edge is produced by exactly one tile; handshake accounting is a
	// set of order-independent sums.
	requireBase := spec.Mode == tiling.GeometryRelaxed
	var attempts, missing, failures atomic.Int64
	validate := func(u, v int32) bool {
		attempts.Add(1)
		if n.Base == nil || n.Base.HasEdge(u, v) {
			return true
		}
		missing.Add(1)
		if requireBase {
			failures.Add(1)
			return false
		}
		return true
	}
	W, H := n.Map.W, n.Map.H
	edges := parallel.CollectCap(nt, parallel.DefaultGrain, 6*parallel.DefaultGrain,
		func(lo, hi int, out []uint64) []uint64 {
			for t := lo; t < hi; t++ {
				tn := &tiles[t]
				if !tn.Good {
					continue
				}
				for d := 0; d < 4; d++ {
					if validate(tn.Rep, tn.Bridge[d]) {
						out = append(out, graph.Pack(tn.Rep, tn.Bridge[d]))
					}
				}
				x, y := t%W, t/W
				if x+1 < W && tiles[t+1].Good { // Right border
					u, v := tn.Bridge[tiling.Right], tiles[t+1].Bridge[tiling.Left]
					if validate(u, v) {
						out = append(out, graph.Pack(u, v))
					}
				}
				if y+1 < H && tiles[t+W].Good { // Top border
					u, v := tn.Bridge[tiling.Top], tiles[t+W].Bridge[tiling.Bottom]
					if validate(u, v) {
						out = append(out, graph.Pack(u, v))
					}
				}
			}
			return out
		})
	n.Stats.HandshakeAttempts = int(attempts.Load())
	n.Stats.MissingBaseEdges = int(missing.Load())
	n.Stats.HandshakeFailures = int(failures.Load())

	// Occupied tiles enter the map exactly as in the serial build; entries
	// point into the dense slab.
	for t := 0; t < nt; t++ {
		if start[t+1] > start[t] {
			n.Tiles[n.Map.PhiInv(t%W, t/W)] = &tiles[t]
		}
	}

	b := graph.NewBuilder(len(pts))
	b.Grow(len(edges))
	b.AddPacked(edges, true)
	n.finalize(b)

	if spec.Mode == tiling.GeometryRepaired && n.Stats.MissingBaseEdges > 0 {
		return nil, fmt.Errorf("sens: repaired-geometry invariant violated: %d SENS edges absent from UDG base",
			n.Stats.MissingBaseEdges)
	}
	return n, nil
}
