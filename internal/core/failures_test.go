package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/tiling"
)

func TestSimulateFailuresLowRate(t *testing.T) {
	n := buildTestUDG(t, 20, 18, 24)
	g := rng.New(21)
	rep, err := SimulateFailures(n, 0.05, g)
	if err != nil {
		t.Fatal(err)
	}
	// ~5% of nodes fail.
	frac := float64(rep.FailedTotal) / float64(len(n.Pts))
	if frac < 0.03 || frac > 0.07 {
		t.Errorf("failure fraction = %v", frac)
	}
	// Rebuild at λ_eff = 0.95·18 ≈ 17.1 > λs stays healthy.
	if rep.Rebuilt.GoodFraction() < 0.5 {
		t.Errorf("rebuilt good fraction %v too low after 5%% failures",
			rep.Rebuilt.GoodFraction())
	}
	if rep.Rebuilt.MaxDegree() > 4 {
		t.Errorf("rebuilt max degree %d", rep.Rebuilt.MaxDegree())
	}
}

func TestSimulateFailuresCrossesThreshold(t *testing.T) {
	// λ = 14, q = 0.5 → λ_eff = 7 ≪ λs ≈ 11.76: the rebuild must collapse.
	n := buildTestUDG(t, 22, 14, 24)
	g := rng.New(23)
	rep, err := SimulateFailures(n, 0.5, g)
	if err != nil {
		t.Fatal(err)
	}
	healthyBefore := n.GoodFraction()
	if healthyBefore < 0.55 {
		t.Skip("realization below threshold before failures")
	}
	if rep.Rebuilt.GoodFraction() > 0.25 {
		t.Errorf("rebuilt good fraction %v after 50%% failures — should collapse",
			rep.Rebuilt.GoodFraction())
	}
}

func TestSimulateFailuresDegradationMonotone(t *testing.T) {
	n := buildTestUDG(t, 24, 16, 24)
	g := rng.New(25)
	prev := 1.1
	for _, q := range []float64{0.0, 0.2, 0.5, 0.8} {
		rep, err := SimulateFailures(n, q, g)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SurvivingFraction > prev+0.05 {
			t.Errorf("surviving fraction rose with failure rate at q=%v: %v > %v",
				q, rep.SurvivingFraction, prev)
		}
		prev = rep.SurvivingFraction
		if q == 0 && rep.SurvivingFraction != 1 {
			t.Errorf("q=0 should not degrade: %v", rep.SurvivingFraction)
		}
	}
}

func TestSimulateFailuresNN(t *testing.T) {
	spec := tiling.PaperNNSpec()
	n := buildTestNN(t, 26, spec, 4*spec.TileSide())
	g := rng.New(27)
	rep, err := SimulateFailures(n, 0.1, g)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rebuilt == nil || rep.Rebuilt.Kind != KindNN {
		t.Fatal("NN rebuild missing")
	}
}

func TestSmallComponentWaste(t *testing.T) {
	n := buildTestUDG(t, 28, 16, 24)
	nodes, tiles := n.SmallComponentWaste()
	if nodes < 0 || tiles < 0 {
		t.Fatal("negative waste")
	}
	// Waste nodes are connected (degree > 0) but not members — verify
	// consistency with the flags.
	if nodes > 0 && len(n.Members) == 0 {
		t.Error("waste reported with empty network")
	}
}

func TestInhomogeneousDeployment(t *testing.T) {
	g := rng.New(29)
	box := geom.Box(20, 10)
	grad := pointprocess.LinearGradient(box, 2, 10)
	pts := pointprocess.Inhomogeneous(box, grad, 10, g)
	// Expected count: ∫ intensity = mean(2,10) · area = 6 · 200 = 1200.
	if len(pts) < 1000 || len(pts) > 1400 {
		t.Errorf("inhomogeneous count = %d want ≈1200", len(pts))
	}
	// Left half must be sparser than the right half.
	left, right := 0, 0
	for _, p := range pts {
		if p.X < 10 {
			left++
		} else {
			right++
		}
	}
	if left >= right {
		t.Errorf("gradient not realized: left %d right %d", left, right)
	}
	// Degenerate cases.
	if got := pointprocess.Inhomogeneous(box, grad, 0, g); got != nil {
		t.Error("maxLambda=0 should give nil")
	}
	hot := pointprocess.RadialHotspot(geom.Pt(5, 5), 20, 1, 3)
	if hot(geom.Pt(5, 5)) != 20 || hot(geom.Pt(15, 5)) != 1 {
		t.Error("hotspot endpoints wrong")
	}
	if v := hot(geom.Pt(5+1.5, 5)); v <= 1 || v >= 20 {
		t.Errorf("hotspot midpoint = %v", v)
	}
}
