package core

import (
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/tiling"
)

// sameNetwork asserts the two networks are byte-identical in everything the
// construction determines: graph, membership, per-tile elections, coupled
// lattice and accounting.
func sameNetwork(t *testing.T, label string, a, b *Network) {
	t.Helper()
	sameGraph := func(what string, x, y *graph.CSR) {
		if x.N != y.N || x.EdgeCount != y.EdgeCount {
			t.Fatalf("%s: %s N/EdgeCount differ: (%d, %d) vs (%d, %d)",
				label, what, x.N, x.EdgeCount, y.N, y.EdgeCount)
		}
		for i := range x.Start {
			if x.Start[i] != y.Start[i] {
				t.Fatalf("%s: %s Start[%d] = %d vs %d", label, what, i, x.Start[i], y.Start[i])
			}
		}
		for i := range x.Adj {
			if x.Adj[i] != y.Adj[i] {
				t.Fatalf("%s: %s Adj[%d] = %d vs %d", label, what, i, x.Adj[i], y.Adj[i])
			}
		}
	}
	sameGraph("subgraph", a.Graph, b.Graph)
	if (a.Base == nil) != (b.Base == nil) {
		t.Fatalf("%s: base presence differs", label)
	}
	if a.Base != nil {
		sameGraph("base", a.Base.CSR, b.Base.CSR)
	}
	if a.Stats != b.Stats {
		t.Fatalf("%s: stats differ:\n%+v\n%+v", label, a.Stats, b.Stats)
	}
	if len(a.Members) != len(b.Members) {
		t.Fatalf("%s: member counts %d vs %d", label, len(a.Members), len(b.Members))
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			t.Fatalf("%s: Members[%d] = %d vs %d", label, i, a.Members[i], b.Members[i])
		}
	}
	for i := range a.InNet {
		if a.InNet[i] != b.InNet[i] {
			t.Fatalf("%s: InNet[%d] differs", label, i)
		}
	}
	if len(a.Tiles) != len(b.Tiles) {
		t.Fatalf("%s: tile counts %d vs %d", label, len(a.Tiles), len(b.Tiles))
	}
	for c, ta := range a.Tiles {
		tb, ok := b.Tiles[c]
		if !ok {
			t.Fatalf("%s: tile %v missing from second network", label, c)
		}
		if *ta != *tb {
			t.Fatalf("%s: tile %v differs: %+v vs %+v", label, c, *ta, *tb)
		}
	}
	if (a.Lat == nil) != (b.Lat == nil) {
		t.Fatalf("%s: lattice presence differs", label)
	}
	if a.Lat != nil {
		if a.Lat.W != b.Lat.W || a.Lat.H != b.Lat.H {
			t.Fatalf("%s: lattice dims differ", label)
		}
		for i := range a.Lat.Open {
			if a.Lat.Open[i] != b.Lat.Open[i] {
				t.Fatalf("%s: lattice site %d differs", label, i)
			}
		}
	}
}

// TestShardedMatchesSerialAt10k is the acceptance-criterion gate: the
// tile-sharded build must reproduce BuildUDG exactly on a 10⁴-point
// deployment, across geometry modes and with/without the base graph.
func TestShardedMatchesSerialAt10k(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(25, 25), 16, rng.New(81))
	if len(pts) < 9000 {
		t.Fatalf("deployment too small (%d) for the 10k gate", len(pts))
	}
	box := geom.Box(25, 25)
	cases := []struct {
		name string
		spec tiling.UDGSpec
		opt  Options
	}{
		{"repaired-skipbase", tiling.DefaultUDGSpec(), Options{SkipBase: true}},
		{"repaired-base", tiling.DefaultUDGSpec(), Options{}},
		{"relaxed-base", tiling.RelaxedUDGSpec(), Options{}},
		{"literal", tiling.PaperUDGSpec(), Options{SkipBase: true}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serial, err := BuildUDG(pts, box, c.spec, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			sharded, err := BuildUDGSharded(pts, box, c.spec, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			sameNetwork(t, c.name, serial, sharded)
		})
	}
}

// TestShardedMatchesSerialWithAliveMask covers the masked-deployment path
// (dead points take no part in elections but keep their indices).
func TestShardedMatchesSerialWithAliveMask(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(12, 12), 16, rng.New(82))
	box := geom.Box(12, 12)
	alive := make([]bool, len(pts))
	g := rng.New(83)
	for i := range alive {
		alive[i] = g.Float64() > 0.3
	}
	opt := Options{SkipBase: true, Alive: alive}
	serial, err := BuildUDG(pts, box, tiling.DefaultUDGSpec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := BuildUDGSharded(pts, box, tiling.DefaultUDGSpec(), opt)
	if err != nil {
		t.Fatal(err)
	}
	sameNetwork(t, "alive-mask", serial, sharded)
}

// TestShardedDeterministicAcrossGOMAXPROCS pins the sharded builder to the
// determinism contract at worker counts 1 and 8 — the second acceptance
// criterion.
func TestShardedDeterministicAcrossGOMAXPROCS(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(25, 25), 16, rng.New(84))
	box := geom.Box(25, 25)
	spec := tiling.DefaultUDGSpec()

	prev := runtime.GOMAXPROCS(8)
	wide, errW := BuildUDGSharded(pts, box, spec, Options{})
	runtime.GOMAXPROCS(1)
	narrow, errN := BuildUDGSharded(pts, box, spec, Options{})
	runtime.GOMAXPROCS(prev)
	if errW != nil || errN != nil {
		t.Fatal(errW, errN)
	}
	sameNetwork(t, "GOMAXPROCS 1 vs 8", narrow, wide)
}

// TestShardedErrorPaths mirrors BuildUDG's argument validation.
func TestShardedErrorPaths(t *testing.T) {
	pts := pointprocess.Poisson(geom.Box(6, 6), 8, rng.New(85))
	box := geom.Box(6, 6)
	bad := tiling.DefaultUDGSpec()
	bad.Side = -1
	if _, err := BuildUDGSharded(pts, box, bad, Options{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := BuildUDGSharded(pts, box, tiling.DefaultUDGSpec(), Options{Alive: []bool{true}}); err == nil {
		t.Error("mis-sized alive mask accepted")
	}
	wrongBase := rgg.UDG(pts[:4], 1)
	if _, err := BuildUDGSharded(pts, box, tiling.DefaultUDGSpec(), Options{Base: wrongBase}); err == nil {
		t.Error("mis-sized base graph accepted")
	}
	small, err := BuildUDGSharded(nil, box, tiling.DefaultUDGSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Members) != 0 || small.Stats.GoodTiles != 0 {
		t.Error("empty deployment should yield empty network")
	}
}
