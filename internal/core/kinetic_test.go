package core

import (
	"runtime"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/tiling"
)

// checkKineticEquivalence asserts the equivalence gate: the kinetic
// maintainer's materialized graph equals a from-scratch BuildUDG at the
// same positions and alive mask, edge-for-edge.
func checkKineticEquivalence(t *testing.T, k *Kinetic, spec tiling.UDGSpec, step int) {
	t.Helper()
	ref, err := BuildUDG(k.Positions(), k.Box(), spec, Options{SkipBase: true, Alive: k.AliveMask()})
	if err != nil {
		t.Fatalf("step %d: BuildUDG: %v", step, err)
	}
	got := k.Materialize()
	if diff := graph.FirstDiff(got, ref.Graph); diff != "" {
		t.Fatalf("step %d: incremental != rebuild: %s", step, diff)
	}
}

// runKineticEquivalence drives random moves and deaths through a Kinetic
// UDG-SENS maintainer and checks the gate after every batch.
func runKineticEquivalence(t *testing.T, seed rng.Seed, lambda, side float64) {
	t.Helper()
	box := geom.Box(side, side)
	pts := pointprocess.Poisson(box, lambda, rng.New(seed))
	spec := tiling.DefaultUDGSpec()
	opt := Options{SkipBase: true}
	n, err := BuildUDG(pts, box, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats.GoodTiles == 0 {
		t.Fatal("no good tiles — test deployment too sparse to exercise repairs")
	}
	k, err := NewKinetic(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkKineticEquivalence(t, k, spec, -1)

	gen := rng.Sub(seed, 7)
	np := len(pts)
	for step := 0; step < 20; step++ {
		for op := 0; op < 6; op++ {
			u := int32(gen.IntN(np))
			if !k.AliveMask()[u] {
				continue
			}
			switch {
			case gen.Float64() < 0.1:
				k.Remove(u)
			case gen.Float64() < 0.15:
				// Long jump anywhere in the box.
				k.Move(u, geom.Point{X: gen.Float64() * side, Y: gen.Float64() * side})
			default:
				// Displacement on the tile scale: crosses boundaries and
				// region borders but stays local.
				p := k.Positions()[u]
				p.X += (gen.Float64() - 0.5) * 1.2 * spec.Side
				p.Y += (gen.Float64() - 0.5) * 1.2 * spec.Side
				k.Move(u, box.Clamp(p))
			}
		}
		checkKineticEquivalence(t, k, spec, step)
	}
	if k.Stats().TileRecomputes == 0 {
		t.Fatal("no tile recomputes recorded — repairs are not happening")
	}
}

func TestKineticSENSEquivalenceUnderMotion(t *testing.T) {
	for _, gmp := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(gmp)
		runKineticEquivalence(t, 41, 16, 12)
		runtime.GOMAXPROCS(prev)
	}
}

func TestKineticSENSEquivalenceSparse(t *testing.T) {
	// Subcritical density: most tiles are bad, so repairs constantly flip
	// tiles between good and bad and contributions appear and vanish.
	runKineticEquivalence(t, 43, 6, 12)
}

func TestKineticSENSMassDeathReachesEmpty(t *testing.T) {
	box := geom.Box(9, 9)
	pts := pointprocess.Poisson(box, 14, rng.New(5))
	spec := tiling.DefaultUDGSpec()
	opt := Options{SkipBase: true}
	n, err := BuildUDG(pts, box, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKinetic(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	order := rng.Sub(5, 2).Perm(len(pts))
	for i, u := range order {
		k.Remove(int32(u))
		if i%19 == 0 || i == len(order)-1 {
			checkKineticEquivalence(t, k, spec, i)
		}
	}
	if got := k.Materialize(); got.EdgeCount != 0 {
		t.Fatalf("graph not empty after all deaths: %d edges", got.EdgeCount)
	}
}

func TestKineticSENSMaskedStart(t *testing.T) {
	// Starting from a network built with a partial alive mask must stay on
	// the gate as more nodes die and survivors move.
	box := geom.Box(10, 10)
	pts := pointprocess.Poisson(box, 16, rng.New(9))
	alive := make([]bool, len(pts))
	gen := rng.Sub(9, 1)
	for i := range alive {
		alive[i] = gen.Float64() < 0.8
	}
	spec := tiling.DefaultUDGSpec()
	opt := Options{SkipBase: true, Alive: alive}
	n, err := BuildUDG(pts, box, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKinetic(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	checkKineticEquivalence(t, k, spec, -1)
	for step := 0; step < 40; step++ {
		u := int32(gen.IntN(len(pts)))
		if !k.AliveMask()[u] {
			continue
		}
		if step%5 == 4 {
			k.Remove(u)
		} else {
			p := k.Positions()[u]
			p.X += (gen.Float64() - 0.5) * 2
			p.Y += (gen.Float64() - 0.5) * 2
			k.Move(u, box.Clamp(p))
		}
		checkKineticEquivalence(t, k, spec, step)
	}
}

func TestKineticSENSStatsScaleWithRegion(t *testing.T) {
	// A single move touches at most two tiles (plus their Left/Bottom
	// neighbors' contributions) no matter how large the network is.
	box := geom.Box(24, 24)
	pts := pointprocess.Poisson(box, 16, rng.New(11))
	spec := tiling.DefaultUDGSpec()
	opt := Options{SkipBase: true}
	n, err := BuildUDG(pts, box, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKinetic(n, opt)
	if err != nil {
		t.Fatal(err)
	}
	gen := rng.Sub(11, 3)
	const trials = 60
	k.ResetStats()
	for i := 0; i < trials; i++ {
		u := int32(gen.IntN(len(pts)))
		if !k.AliveMask()[u] {
			continue
		}
		p := k.Positions()[u]
		p.X += (gen.Float64() - 0.5) * spec.Side
		p.Y += (gen.Float64() - 0.5) * spec.Side
		k.Move(u, box.Clamp(p))
	}
	s := k.ResetStats()
	if perMove := float64(s.TileRecomputes) / trials; perMove > 2 {
		t.Fatalf("moves re-elect %.2f tiles on average — repair is not localized", perMove)
	}
	if n.Stats.Tiles < 100 {
		t.Fatalf("test network too small (%d tiles) to demonstrate locality", n.Stats.Tiles)
	}
}
