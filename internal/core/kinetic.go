package core

import (
	"fmt"

	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/tiling"
)

// KineticStats counts the repair work a Kinetic has performed. All counters
// accumulate until ResetStats.
type KineticStats struct {
	// TileRecomputes is the number of per-tile re-elections (classify the
	// tile's live members into the five regions, re-run the five leader
	// elections).
	TileRecomputes int
	// ContribRecomputes is the number of per-tile edge-contribution lists
	// that changed and were swapped in the delta overlay.
	ContribRecomputes int
	// EdgeChanges is the number of individual edge insertions plus removals
	// applied to the delta overlay.
	EdgeChanges int
}

// Kinetic maintains a UDG-SENS network incrementally under node motion and
// death. The invariant it preserves is exact structural equivalence: after
// any sequence of Move and Remove calls, Materialize returns edge-for-edge
// the graph that BuildUDG would produce from scratch at the current
// positions with the current alive mask (and SkipBase).
//
// The repair is dirty-tile local. Elections are deterministic functions of
// a tile's member set, and a tile's contribution to the network — its four
// rep↔relay edges plus the Right/Top boundary edges it owns — depends only
// on its own elected nodes and the goodness of its Right/Top neighbors. A
// single move therefore dirties at most two tiles (source and destination),
// and at most their Left/Bottom neighbors need their contributions
// re-derived: O(1) tiles per event, independent of the network size.
//
// The maintainer requires geometry-guaranteed edges: in GeometryRelaxed
// mode with a base graph present, handshakes can drop edges in a way that
// depends on the full deployment, which breaks tile locality; NewKinetic
// rejects that combination.
type Kinetic struct {
	spec  tiling.UDGSpec
	gm    *tiling.UDGGeometry
	alg   election.Algorithm
	m     tiling.Map
	box   geom.Rect
	pts   []geom.Point
	alive []bool

	// members holds the live point indices of each occupied mapped tile in
	// ascending order — the exact candidate ordering AssignTiles produces,
	// so re-elections reproduce the from-scratch results bit for bit.
	members map[tiling.Coord][]int32
	tiles   map[tiling.Coord]*TileNodes
	// contrib holds, per tile, the packed edges this tile currently
	// contributes to the network. Contributions are pairwise disjoint: an
	// internal edge belongs to its tile, a boundary edge to the tile on its
	// Left/Bottom side.
	contrib map[tiling.Coord][]uint64

	delta *graph.Delta
	stats KineticStats

	esc     election.Scratch
	local   []geom.Point
	regions [5][]int32
	dirty   map[tiling.Coord]struct{}
	cdirty  map[tiling.Coord]struct{}
	swaps   []contribSwap
}

type contribSwap struct {
	c    tiling.Coord
	next []uint64
}

// NewKinetic wraps a freshly built UDG-SENS network for incremental
// maintenance. opt must be the Options the network was built with (the
// election algorithm and alive mask must match for re-elections to
// reproduce the original results).
func NewKinetic(n *Network, opt Options) (*Kinetic, error) {
	if n.Kind != KindUDG || n.UDGSpec == nil {
		return nil, fmt.Errorf("sens: kinetic maintenance requires a UDG-SENS network")
	}
	if n.Base != nil && n.UDGSpec.Mode == tiling.GeometryRelaxed {
		return nil, fmt.Errorf("sens: kinetic maintenance requires geometry-guaranteed edges; relaxed mode with a base graph can drop edges non-locally")
	}
	k := &Kinetic{
		spec:    *n.UDGSpec,
		gm:      n.UDGSpec.Compile(),
		alg:     opt.Election,
		m:       n.Map,
		box:     n.Box,
		pts:     append([]geom.Point(nil), n.Pts...),
		alive:   make([]bool, len(n.Pts)),
		members: make(map[tiling.Coord][]int32),
		tiles:   make(map[tiling.Coord]*TileNodes),
		contrib: make(map[tiling.Coord][]uint64),
		dirty:   make(map[tiling.Coord]struct{}),
		cdirty:  make(map[tiling.Coord]struct{}),
		delta:   graph.NewDelta(n.Graph),
	}
	for i := range k.alive {
		k.alive[i] = opt.Alive == nil || opt.Alive[i]
	}
	for c, idx := range tiling.AssignTiles(k.m, k.pts) {
		var own []int32
		for _, i := range idx {
			if k.alive[i] {
				own = append(own, i)
			}
		}
		if len(own) > 0 {
			k.members[c] = own
		}
	}
	for c, tn := range n.Tiles {
		cp := *tn
		k.tiles[c] = &cp
	}
	//sensvet:allow detrange — each tile's contribution reads only final elected state; stores are keyed by tile
	for c := range k.tiles {
		if e := k.contribution(c, nil); len(e) > 0 {
			k.contrib[c] = e
		}
	}
	return k, nil
}

// Positions returns the current node positions. Read-only for callers.
func (k *Kinetic) Positions() []geom.Point { return k.pts }

// AliveMask returns the current alive flags. Read-only for callers.
func (k *Kinetic) AliveMask() []bool { return k.alive }

// Box returns the deployment region the network was built over.
func (k *Kinetic) Box() geom.Rect { return k.box }

// Delta exposes the maintained edge overlay for structural queries without
// materialization.
func (k *Kinetic) Delta() *graph.Delta { return k.delta }

// Materialize flattens the maintained overlay into an immutable CSR equal,
// edge for edge, to a from-scratch BuildUDG at the current state.
func (k *Kinetic) Materialize() *graph.CSR { return k.delta.Materialize() }

// Stats returns the accumulated repair counters.
func (k *Kinetic) Stats() KineticStats { return k.stats }

// ResetStats returns the accumulated counters and zeroes them.
func (k *Kinetic) ResetStats() KineticStats {
	s := k.stats
	k.stats = KineticStats{}
	return s
}

// GoodTiles counts the currently good tiles.
func (k *Kinetic) GoodTiles() int {
	n := 0
	for _, tn := range k.tiles {
		if tn.Good {
			n++
		}
	}
	return n
}

// mappedTile returns the tile containing p and whether it lies inside the
// mapped window.
func (k *Kinetic) mappedTile(p geom.Point) (tiling.Coord, bool) {
	c := k.m.Tiling.TileOf(p)
	_, _, ok := k.m.Phi(c)
	return c, ok
}

// memberInsert adds point i to tile c's member list, keeping it ascending.
func (k *Kinetic) memberInsert(c tiling.Coord, i int32) {
	list := k.members[c]
	at := len(list)
	for at > 0 && list[at-1] > i {
		at--
	}
	list = append(list, 0)
	copy(list[at+1:], list[at:])
	list[at] = i
	k.members[c] = list
}

// memberRemove deletes point i from tile c's member list (which must
// contain it).
func (k *Kinetic) memberRemove(c tiling.Coord, i int32) {
	list := k.members[c]
	for at, v := range list {
		if v == i {
			copy(list[at:], list[at+1:])
			list = list[:len(list)-1]
			break
		}
	}
	if len(list) == 0 {
		delete(k.members, c)
	} else {
		k.members[c] = list
	}
}

// Move updates node u's position and repairs every structure the
// displacement can affect. u must be alive.
func (k *Kinetic) Move(u int32, p geom.Point) {
	if !k.alive[u] {
		panic("sens: Move on dead node")
	}
	oldC, oldOK := k.mappedTile(k.pts[u])
	newC, newOK := k.mappedTile(p)
	k.pts[u] = p
	if oldOK && newOK && oldC == newC {
		// Same tile, but the region classification may have changed.
		k.dirty[oldC] = struct{}{}
	} else {
		if oldOK {
			k.memberRemove(oldC, u)
			k.dirty[oldC] = struct{}{}
		}
		if newOK {
			k.memberInsert(newC, u)
			k.dirty[newC] = struct{}{}
		}
	}
	k.repair()
}

// Remove marks node u dead and repairs its tile. Removing a dead node is a
// no-op.
func (k *Kinetic) Remove(u int32) {
	if !k.alive[u] {
		return
	}
	k.alive[u] = false
	if c, ok := k.mappedTile(k.pts[u]); ok {
		k.memberRemove(c, u)
		k.dirty[c] = struct{}{}
		k.repair()
	}
}

// recomputeTile re-derives tile c's TileNodes from its current live
// members — the same classification and election pipeline as BuildUDG, over
// the same ascending candidate order.
func (k *Kinetic) recomputeTile(c tiling.Coord) {
	k.stats.TileRecomputes++
	idx := k.members[c]
	if len(idx) == 0 {
		delete(k.tiles, c)
		return
	}
	k.local = tiling.LocalPoints(k.m, c, k.pts, idx, k.local)
	for r := range k.regions {
		k.regions[r] = k.regions[r][:0]
	}
	for i, p := range k.local {
		switch r := k.gm.Classify(p); r {
		case tiling.UC0:
			k.regions[0] = append(k.regions[0], idx[i])
		case tiling.URelayRight, tiling.URelayLeft, tiling.URelayTop, tiling.URelayBottom:
			d := int(r - tiling.URelayRight)
			k.regions[1+d] = append(k.regions[1+d], idx[i])
		}
	}
	tn := &TileNodes{Population: len(idx), Rep: -1}
	for d := range tn.Disk {
		tn.Disk[d] = -1
	}
	var st Stats // incremental re-elections are not charged to build stats
	tn.Rep = electRegion(k.alg, k.regions[0], &st, &k.esc)
	good := tn.Rep >= 0
	for d := 0; d < 4; d++ {
		tn.Bridge[d] = electRegion(k.alg, k.regions[1+d], &st, &k.esc)
		good = good && tn.Bridge[d] >= 0
	}
	tn.Good = good
	k.tiles[c] = tn
}

// contribution appends tile c's owned edges to dst: rep↔relay for the four
// directions plus the Right/Top boundary edges toward good neighbors — the
// exact edge set BuildUDG emits while visiting c.
func (k *Kinetic) contribution(c tiling.Coord, dst []uint64) []uint64 {
	tn, ok := k.tiles[c]
	if !ok || !tn.Good {
		return dst
	}
	for d := range tiling.Directions {
		dst = append(dst, graph.Pack(tn.Rep, tn.Bridge[d]))
	}
	for _, d := range []tiling.Direction{tiling.Right, tiling.Top} {
		nb, ok := k.tiles[c.Neighbor(d)]
		if !ok || !nb.Good {
			continue
		}
		dst = append(dst, graph.Pack(tn.Bridge[d], nb.Bridge[d.Opposite()]))
	}
	return dst
}

// repair flushes the dirty-tile set: re-elect every dirty tile, then swap
// the contribution lists of the dirty tiles and of their Left/Bottom
// neighbors (the tiles whose boundary edges read a dirty tile's state).
// Retractions run before emissions so an edge that migrates from one
// tile's contribution to another's is never transiently double-counted.
func (k *Kinetic) repair() {
	if len(k.dirty) == 0 {
		return
	}
	//sensvet:allow detrange — re-election reads only the tile's own membership; stores are keyed by tile
	for c := range k.dirty {
		k.recomputeTile(c)
	}
	//sensvet:allow detrange — pure set union: inserting a tile and its two fixed neighbors commutes
	for c := range k.dirty {
		k.cdirty[c] = struct{}{}
		k.cdirty[c.Neighbor(tiling.Left)] = struct{}{}
		k.cdirty[c.Neighbor(tiling.Bottom)] = struct{}{}
	}
	clear(k.dirty)
	k.swaps = k.swaps[:0]
	//sensvet:allow detrange — contributions are per-tile and disjoint; swaps apply retract-before-emit, so delta state and stats are order-independent
	for c := range k.cdirty {
		next := k.contribution(c, nil)
		if edgeListsEqual(k.contrib[c], next) {
			continue
		}
		k.stats.ContribRecomputes++
		k.swaps = append(k.swaps, contribSwap{c: c, next: next})
	}
	clear(k.cdirty)
	for _, s := range k.swaps {
		for _, e := range k.contrib[s.c] {
			u, v := graph.Unpack(e)
			if k.delta.RemoveEdge(u, v) {
				k.stats.EdgeChanges++
			}
		}
	}
	for _, s := range k.swaps {
		for _, e := range s.next {
			u, v := graph.Unpack(e)
			if k.delta.AddEdge(u, v) {
				k.stats.EdgeChanges++
			}
		}
		if len(s.next) == 0 {
			delete(k.contrib, s.c)
		} else {
			k.contrib[s.c] = s.next
		}
	}
}

// edgeListsEqual reports whether two packed-edge lists are identical.
func edgeListsEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
