package core

import (
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/power"
	"repro/internal/stats"
	"repro/internal/tiling"
)

// StretchSample records one representative pair measurement for the
// Theorem 3.2 experiments. It is the shared power.StretchSample shape
// (Euclid, SubLen — the Euclidean-weighted shortest-path length in the SENS
// subgraph — and Hops) extended with the lattice-level distance of the
// coupling.
type StretchSample struct {
	power.StretchSample
	// LatticeD is the L1 distance between the two tiles under φ — the
	// D(x, y) of Lemma 1.1 / Theorem 3.2.
	LatticeD int
}

// Stretch returns SubLen / Euclid (the distance stretch δ of §1).
func (s StretchSample) Stretch() float64 { return s.EuclidStretch() }

// SampleRepStretch measures stretch between random pairs of good-tile
// representatives inside the largest component. Pairs are drawn with a
// source fanout (several targets per source, fanout 8) and measured through
// the batched power.MeasurePairs engine: one buffered Dijkstra+BFS sweep
// per distinct source covers all of that source's targets.
//
// Sampling is attempt-bounded: pairs whose endpoints are disconnected in
// the subgraph (possible only pre-prune, when reps sit in different
// components) are skipped, and after maxAttempts draws the samples
// collected so far are returned — possibly fewer than requested, never an
// infinite loop.
func (n *Network) SampleRepStretch(pairs int, rng *rand.Rand) []StretchSample {
	reps, coords := n.GoodReps()
	if len(reps) < 2 || pairs <= 0 {
		return nil
	}
	fanout := 8
	if pairs < fanout {
		fanout = pairs
	}
	maxAttempts := 40*pairs + 64 // same safety margin as power.MeasureStretch callers
	out := make([]StretchSample, 0, pairs)
	m := power.NewMeasurer(n.Graph, nil, n.Pts, power.BatchSpec{Hops: true})
	var batch []power.Pair
	var batchIdx [][2]int32 // (source, target) rep indices per batched pair
	for attempts := 0; attempts < maxAttempts && len(out) < pairs; {
		batch, batchIdx = batch[:0], batchIdx[:0]
		for len(batch) < pairs-len(out) && attempts < maxAttempts {
			si := rng.IntN(len(reps))
			for f := 0; f < fanout && len(batch) < pairs-len(out) && attempts < maxAttempts; f++ {
				attempts++
				ti := rng.IntN(len(reps))
				if ti == si {
					continue
				}
				batch = append(batch, power.Pair{U: reps[si], V: reps[ti]})
				batchIdx = append(batchIdx, [2]int32{int32(si), int32(ti)})
			}
		}
		for i, s := range m.Pairs(batch) {
			if len(out) >= pairs {
				break
			}
			if s.Hops < 0 || math.IsInf(s.SubLen, 1) {
				continue // different component (possible only pre-prune)
			}
			sx, sy, _ := n.Map.Phi(coords[batchIdx[i][0]])
			tx, ty, _ := n.Map.Phi(coords[batchIdx[i][1]])
			out = append(out, StretchSample{
				StretchSample: s,
				LatticeD:      lattice.L1(sx, sy, tx, ty),
			})
		}
	}
	return out
}

// EmptyBoxProbability estimates the coverage failure probability of
// Theorem 3.3: the probability that a random ℓ×ℓ box (placed uniformly
// inside the deployment region) contains no member of the SENS network.
func (n *Network) EmptyBoxProbability(ell float64, trials int, rng *rand.Rand) stats.Proportion {
	if ell > n.Box.Width() || ell > n.Box.Height() || trials <= 0 {
		return stats.NewProportion(0, 0)
	}
	members := n.MemberPoints()
	empty := 0
	for t := 0; t < trials; t++ {
		x := n.Box.Min.X + rng.Float64()*(n.Box.Width()-ell)
		y := n.Box.Min.Y + rng.Float64()*(n.Box.Height()-ell)
		box := geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+ell, y+ell)}
		hit := false
		for _, p := range members {
			if box.Contains(p) {
				hit = true
				break
			}
		}
		if !hit {
			empty++
		}
	}
	return stats.NewProportion(empty, trials)
}

// DegreeHistogram returns the degree distribution of the members of the
// SENS network (P1: max degree 4 for UDG-SENS).
func (n *Network) DegreeHistogram() []int {
	var h []int
	for _, v := range n.Members {
		d := n.Graph.Degree(v)
		for len(h) <= d {
			h = append(h, 0)
		}
		h[d]++
	}
	return h
}

// AdjacentGoodPairs returns all pairs of horizontally/vertically adjacent
// good tiles — the open edges of the coupled percolated mesh. Pairs come
// back sorted by first-tile (I, J) then direction, so the listing is
// deterministic even though the tile table is a map.
func (n *Network) AdjacentGoodPairs() [][2]tiling.Coord {
	var out [][2]tiling.Coord
	for c, tn := range n.Tiles {
		if !tn.Good {
			continue
		}
		// Right and Top neighbors, spelled as offsets so the loop body stays
		// call-free (detrange's collect-then-sort form).
		for _, nc := range [2]tiling.Coord{{I: c.I + 1, J: c.J}, {I: c.I, J: c.J + 1}} {
			if nb, ok := n.Tiles[nc]; ok && nb.Good {
				out = append(out, [2]tiling.Coord{c, nc})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a[0] != b[0] {
			if a[0].I != b[0].I {
				return a[0].I < b[0].I
			}
			return a[0].J < b[0].J
		}
		if a[1].I != b[1].I {
			return a[1].I < b[1].I
		}
		return a[1].J < b[1].J
	})
	return out
}

// RepPathWithinBound verifies Claim 2.1 / Claim 2.3 for one adjacent good
// pair: the two representatives are connected in the SENS subgraph and every
// hop of the shortest path has length at most maxHop. Returns the hop count
// (−1 if disconnected) and whether the per-hop bound held.
func (n *Network) RepPathWithinBound(a, b tiling.Coord, maxHop float64) (hops int, ok bool) {
	ta, tb := n.Tiles[a], n.Tiles[b]
	if ta == nil || tb == nil || ta.Rep < 0 || tb.Rep < 0 {
		return -1, false
	}
	path := graph.BFSPath(n.Graph, ta.Rep, tb.Rep)
	if path == nil {
		return -1, false
	}
	for i := 1; i < len(path); i++ {
		if n.Pts[path[i-1]].Dist(n.Pts[path[i]]) > maxHop+1e-9 {
			return len(path) - 1, false
		}
	}
	return len(path) - 1, true
}
