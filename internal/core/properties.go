package core

import (
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/stats"
	"repro/internal/tiling"
)

// StretchSample records one representative pair measurement for the
// Theorem 3.2 experiments.
type StretchSample struct {
	// Euclid is the Euclidean distance between the two representatives —
	// the lower bound any path must beat.
	Euclid float64
	// PathLen is the Euclidean-weighted shortest-path length between them
	// in the SENS subgraph.
	PathLen float64
	// Hops is the hop count of the shortest hop path in the SENS subgraph.
	Hops int
	// LatticeD is the L1 distance between the two tiles under φ — the
	// D(x, y) of Lemma 1.1 / Theorem 3.2.
	LatticeD int
}

// Stretch returns PathLen / Euclid (the distance stretch δ of §1).
func (s StretchSample) Stretch() float64 {
	if s.Euclid == 0 {
		return 1
	}
	return s.PathLen / s.Euclid
}

// SampleRepStretch measures stretch between random pairs of good-tile
// representatives inside the largest component. To amortize shortest-path
// costs, it picks random source reps and, for each, measures several random
// targets (fanout per source ≈ √pairs).
func (n *Network) SampleRepStretch(pairs int, rng *rand.Rand) []StretchSample {
	reps, coords := n.GoodReps()
	if len(reps) < 2 || pairs <= 0 {
		return nil
	}
	fanout := 8
	if pairs < fanout {
		fanout = pairs
	}
	weight := graph.EuclideanWeight(n.Pts)
	var out []StretchSample
	var hopBuf []int32
	var wdist []float64
	var scratch graph.DijkstraScratch
	for len(out) < pairs {
		si := rng.IntN(len(reps))
		src := reps[si]
		wdist = graph.DijkstraInto(n.Graph, src, weight, wdist, &scratch)
		hopBuf = graph.BFS(n.Graph, src, hopBuf)
		for f := 0; f < fanout && len(out) < pairs; f++ {
			ti := rng.IntN(len(reps))
			if ti == si {
				continue
			}
			dst := reps[ti]
			if hopBuf[dst] < 0 {
				continue // different component (possible only pre-prune)
			}
			sx, sy, _ := n.Map.Phi(coords[si])
			tx, ty, _ := n.Map.Phi(coords[ti])
			out = append(out, StretchSample{
				Euclid:   n.Pts[src].Dist(n.Pts[dst]),
				PathLen:  wdist[dst],
				Hops:     int(hopBuf[dst]),
				LatticeD: lattice.L1(sx, sy, tx, ty),
			})
		}
	}
	return out
}

// EmptyBoxProbability estimates the coverage failure probability of
// Theorem 3.3: the probability that a random ℓ×ℓ box (placed uniformly
// inside the deployment region) contains no member of the SENS network.
func (n *Network) EmptyBoxProbability(ell float64, trials int, rng *rand.Rand) stats.Proportion {
	if ell > n.Box.Width() || ell > n.Box.Height() || trials <= 0 {
		return stats.NewProportion(0, 0)
	}
	members := n.MemberPoints()
	empty := 0
	for t := 0; t < trials; t++ {
		x := n.Box.Min.X + rng.Float64()*(n.Box.Width()-ell)
		y := n.Box.Min.Y + rng.Float64()*(n.Box.Height()-ell)
		box := geom.Rect{Min: geom.Pt(x, y), Max: geom.Pt(x+ell, y+ell)}
		hit := false
		for _, p := range members {
			if box.Contains(p) {
				hit = true
				break
			}
		}
		if !hit {
			empty++
		}
	}
	return stats.NewProportion(empty, trials)
}

// DegreeHistogram returns the degree distribution of the members of the
// SENS network (P1: max degree 4 for UDG-SENS).
func (n *Network) DegreeHistogram() []int {
	var h []int
	for _, v := range n.Members {
		d := n.Graph.Degree(v)
		for len(h) <= d {
			h = append(h, 0)
		}
		h[d]++
	}
	return h
}

// AdjacentGoodPairs returns all pairs of horizontally/vertically adjacent
// good tiles — the open edges of the coupled percolated mesh.
func (n *Network) AdjacentGoodPairs() [][2]tiling.Coord {
	var out [][2]tiling.Coord
	for c, tn := range n.Tiles {
		if !tn.Good {
			continue
		}
		for _, d := range []tiling.Direction{tiling.Right, tiling.Top} {
			nc := c.Neighbor(d)
			if nb, ok := n.Tiles[nc]; ok && nb.Good {
				out = append(out, [2]tiling.Coord{c, nc})
			}
		}
	}
	return out
}

// RepPathWithinBound verifies Claim 2.1 / Claim 2.3 for one adjacent good
// pair: the two representatives are connected in the SENS subgraph and every
// hop of the shortest path has length at most maxHop. Returns the hop count
// (−1 if disconnected) and whether the per-hop bound held.
func (n *Network) RepPathWithinBound(a, b tiling.Coord, maxHop float64) (hops int, ok bool) {
	ta, tb := n.Tiles[a], n.Tiles[b]
	if ta == nil || tb == nil || ta.Rep < 0 || tb.Rep < 0 {
		return -1, false
	}
	path := graph.BFSPath(n.Graph, ta.Rep, tb.Rep)
	if path == nil {
		return -1, false
	}
	for i := 1; i < len(path); i++ {
		if n.Pts[path[i-1]].Dist(n.Pts[path[i]]) > maxHop+1e-9 {
			return len(path) - 1, false
		}
	}
	return len(path) - 1, true
}
