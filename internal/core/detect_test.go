package core

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/tiling"
)

func TestDetectComponentsSizesMatchGraph(t *testing.T) {
	n := buildTestUDG(t, 40, 16, 24)
	rep := n.DetectComponents(0)

	// Ground truth: component sizes of the rep/relay graph restricted to
	// connected (degree > 0) vertices.
	labels, sizes := graph.Components(n.Graph)
	want := map[int32]int{} // leader (max id) → size
	leaderOf := map[int32]int32{}
	for u := int32(0); int(u) < n.Graph.N; u++ {
		if n.Graph.Degree(u) == 0 {
			continue
		}
		l := labels[u]
		if u > leaderOf[l] {
			leaderOf[l] = u
		}
	}
	for u := int32(0); int(u) < n.Graph.N; u++ {
		if n.Graph.Degree(u) == 0 {
			continue
		}
		want[leaderOf[labels[u]]] = sizes[labels[u]]
	}
	if len(rep.ComponentSizes) != len(want) {
		t.Fatalf("component count: protocol %d vs graph %d",
			len(rep.ComponentSizes), len(want))
	}
	for leader, size := range want {
		if got := rep.ComponentSizes[leader]; got != size {
			t.Fatalf("component of leader %d: protocol size %d vs true %d",
				leader, got, size)
		}
	}
	if rep.MessagesSent == 0 || rep.MessagesSent != rep.MessagesDelivered {
		t.Errorf("message accounting: %d/%d", rep.MessagesSent, rep.MessagesDelivered)
	}
}

func TestDetectComponentsTurnOff(t *testing.T) {
	n := buildTestUDG(t, 41, 16, 24)
	// Threshold above everything: every connected node turns off.
	all := n.DetectComponents(1 << 30)
	offCount := 0
	for u := int32(0); int(u) < n.Graph.N; u++ {
		if n.Graph.Degree(u) > 0 {
			offCount++
		}
	}
	if len(all.Off) != offCount {
		t.Errorf("huge threshold: off %d want %d", len(all.Off), offCount)
	}
	// Threshold 0: nobody turns off.
	none := n.DetectComponents(0)
	if len(none.Off) != 0 {
		t.Errorf("zero threshold: off %d want 0", len(none.Off))
	}
	// Threshold = largest component size: exactly the non-members among
	// connected nodes turn off — the paper's §4.1 sketch realized.
	cut := n.DetectComponents(len(n.Members))
	for _, u := range cut.Off {
		if n.InNet[u] {
			t.Fatalf("member %d turned itself off", u)
		}
	}
	wantOff := 0
	for u := int32(0); int(u) < n.Graph.N; u++ {
		if n.Graph.Degree(u) > 0 && !n.InNet[u] {
			wantOff++
		}
	}
	if len(cut.Off) != wantOff {
		t.Errorf("threshold=|largest|: off %d want %d", len(cut.Off), wantOff)
	}
}

func TestDetectComponentsEmptyNetwork(t *testing.T) {
	n, err := BuildUDG(nil, geom.Box(6, 6), tiling.DefaultUDGSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := n.DetectComponents(5)
	if len(rep.ComponentSizes) != 0 || len(rep.Off) != 0 || rep.MessagesSent != 0 {
		t.Errorf("empty network detection: %+v", rep)
	}
}
