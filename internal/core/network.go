// Package sens implements the paper's primary contribution: the sparse
// power-efficient subnetwork constructions UDG-SENS(2, λ) and NN-SENS(2, k)
// (§2), built by the distributed algorithm of §4.1 (Figure 7):
//
//  1. each node locates its tile from position information,
//  2. each node classifies itself into a tile region,
//  3. each region elects a leader (representative or relay),
//  4. leaders connect to form the rep–relay–relay–rep paths between
//     adjacent good tiles.
//
// The resulting network couples to site percolation on Z² through
// tiling.Map: a site is open iff its tile is good, and the SENS subgraph
// realizes the open edges of the percolated mesh (Figures 2, 4, 6, 8).
// The sensing network proper is the largest connected component of the
// rep/relay graph, per the paper's definition.
package core

import (
	"fmt"
	"sort"

	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/lattice"
	"repro/internal/rgg"
	"repro/internal/tiling"
)

// Kind distinguishes the two constructions.
type Kind int

// The two SENS constructions of the paper.
const (
	KindUDG Kind = iota
	KindNN
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindUDG {
		return "UDG-SENS"
	}
	return "NN-SENS"
}

// TileNodes records the elected nodes of one mapped tile. Indices refer to
// the deployment point slice; −1 means "no point elected".
type TileNodes struct {
	Good       bool
	Population int
	Rep        int32
	// Bridge holds, per direction, the relay adjacent to the representative:
	// the UDG edge relay (regions E_l/E_r/E_t/E_b of §2.1) or the NN bridge
	// relay (regions E_* of §2.2).
	Bridge [4]int32
	// Disk holds, per direction, the NN outer-disk relay (regions C_* of
	// §2.2); unused (−1) for UDG-SENS.
	Disk [4]int32
}

// Stats aggregates construction-time accounting.
type Stats struct {
	Tiles             int // mapped tiles
	GoodTiles         int
	ElectionMessages  int // total messages across all region elections
	ElectionRounds    int // max rounds over regions (they run in parallel)
	HandshakeAttempts int // connect() calls attempted
	HandshakeFailures int // connect() calls that failed (relaxed mode)
	SubgraphEdges     int // edges of the rep/relay graph
	MissingBaseEdges  int // SENS edges absent from the base graph
}

// Network is a constructed SENS subnetwork together with its coupling data.
type Network struct {
	Kind Kind
	// Pts are all deployment points (the Poisson process realization).
	Pts []geom.Point
	// Box is the deployment region.
	Box geom.Rect
	// Map is the tile ↔ Z² bijection φ restricted to the full tiles of Box.
	Map tiling.Map
	// Base is the underlying UDG(2, λ) or NN(2, k) graph (nil when skipped).
	Base *rgg.Geometric
	// Tiles holds the per-tile election results for mapped tiles.
	Tiles map[tiling.Coord]*TileNodes
	// Lat is the coupled site-percolation configuration: site (x, y) open
	// iff tile φ⁻¹(x, y) is good. Nil when the map window is empty.
	Lat *lattice.Lattice
	// Graph is the rep/relay subgraph over all point indices (non-members
	// are isolated vertices).
	Graph *graph.CSR
	// Members lists the vertices of the largest connected component — the
	// SENS network proper.
	Members []int32
	// InNet flags Members for O(1) lookup.
	InNet []bool
	// Stats carries construction accounting.
	Stats Stats

	// UDGSpec / NNSpec record the geometry used (exactly one non-nil).
	UDGSpec *tiling.UDGSpec
	NNSpec  *tiling.NNSpec
}

// Options tunes the construction pipeline.
type Options struct {
	// Election selects the leader-election protocol (default Tournament).
	Election election.Algorithm
	// Base supplies a pre-built base graph, avoiding a rebuild.
	Base *rgg.Geometric
	// SkipBase skips building the base graph entirely. Validation of SENS
	// edges against the base is then impossible and MissingBaseEdges stays
	// 0. (The UDG repaired-mode construction is guaranteed valid anyway;
	// use this to speed up large Monte-Carlo sweeps.)
	SkipBase bool
	// Alive optionally masks the deployment: a point with Alive[i] == false
	// takes no part in classification or elections and stays an isolated
	// vertex, while indices keep their meaning. Nil means every point is
	// alive. This is how the kinetic maintainer's from-scratch comparator
	// and the live-network scenarios express node deaths without renumbering
	// the deployment. The base graph, when built, still spans all points.
	Alive []bool
}

// MemberPoints returns the positions of the network members.
func (n *Network) MemberPoints() []geom.Point {
	out := make([]geom.Point, len(n.Members))
	for i, v := range n.Members {
		out[i] = n.Pts[v]
	}
	return out
}

// GoodReps returns the representatives of good tiles that made it into the
// largest component, together with their tile coordinates, in deterministic
// (sorted) order.
func (n *Network) GoodReps() (reps []int32, coords []tiling.Coord) {
	type pair struct {
		c tiling.Coord
		r int32
	}
	var ps []pair
	for c, tn := range n.Tiles {
		if tn.Good && tn.Rep >= 0 && n.InNet[tn.Rep] {
			ps = append(ps, pair{c, tn.Rep})
		}
	}
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].c.J != ps[j].c.J {
			return ps[i].c.J < ps[j].c.J
		}
		return ps[i].c.I < ps[j].c.I
	})
	for _, p := range ps {
		reps = append(reps, p.r)
		coords = append(coords, p.c)
	}
	return reps, coords
}

// GoodFraction returns the fraction of mapped tiles that are good — the
// empirical estimate of the site-open probability in the coupling.
func (n *Network) GoodFraction() float64 {
	if n.Stats.Tiles == 0 {
		return 0
	}
	return float64(n.Stats.GoodTiles) / float64(n.Stats.Tiles)
}

// ActiveFraction returns |Members| / |Pts| — the fraction of deployed nodes
// the sensing network actually uses (the paper's "redundancy" headline).
func (n *Network) ActiveFraction() float64 {
	if len(n.Pts) == 0 {
		return 0
	}
	return float64(len(n.Members)) / float64(len(n.Pts))
}

// MaxDegree returns the maximum degree in the rep/relay subgraph (the
// paper's sparsity property P1 asserts ≤ 4).
func (n *Network) MaxDegree() int { return n.Graph.MaxDegree() }

// finalize computes the coupled lattice, largest component and flags.
func (n *Network) finalize(b *graph.Builder) {
	if n.Map.Tiles() > 0 {
		n.Lat = lattice.New(n.Map.W, n.Map.H)
		//sensvet:allow detrange — Phi is a pure coordinate map; each tile sets only its own lattice cell
		for c, tn := range n.Tiles {
			if x, y, ok := n.Map.Phi(c); ok && tn.Good {
				n.Lat.Set(x, y, true)
			}
		}
	}
	n.Graph = b.Build()
	n.Stats.SubgraphEdges = n.Graph.EdgeCount
	n.Members, _ = graph.LargestComponent(n.Graph)
	if len(n.Members) == 1 {
		// A single isolated vertex is not a network.
		n.Members = nil
	}
	n.InNet = make([]bool, len(n.Pts))
	for _, v := range n.Members {
		n.InNet[v] = true
	}
}

// electRegion runs a leader election over the given candidate point indices
// and accumulates its cost into the stats; returns −1 for no candidates.
// The scratch buffer is reused across the construction's per-region
// elections (one per occupied region per tile), so the hot tournament path
// allocates nothing.
func electRegion(alg election.Algorithm, ids []int32, st *Stats, esc *election.Scratch) int32 {
	res := esc.Elect(alg, ids)
	st.ElectionMessages += res.Messages
	if res.Rounds > st.ElectionRounds {
		st.ElectionRounds = res.Rounds
	}
	return res.Leader
}

// validateEdge charges a handshake and checks the base graph when present.
// Returns whether the edge should be added to the subgraph.
func validateEdge(n *Network, u, v int32, requireBase bool) bool {
	n.Stats.HandshakeAttempts++
	if n.Base == nil {
		return true
	}
	if n.Base.HasEdge(u, v) {
		return true
	}
	n.Stats.MissingBaseEdges++
	if requireBase {
		n.Stats.HandshakeFailures++
		return false
	}
	return true
}

// String renders a one-line summary.
func (n *Network) String() string {
	return fmt.Sprintf("%s: %d pts, %d/%d good tiles, %d members (%.1f%% active), %d edges, maxdeg %d",
		n.Kind, len(n.Pts), n.Stats.GoodTiles, n.Stats.Tiles, len(n.Members),
		100*n.ActiveFraction(), n.Stats.SubgraphEdges, n.MaxDegree())
}
