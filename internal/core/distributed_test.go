package core

import (
	"testing"

	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/tiling"
)

// TestDistributedMatchesCentralized is the strongest P4 statement in the
// repository: the message-passing protocol (nodes acting only on their own
// position and received messages) produces byte-for-byte the same network
// as the centralized pipeline.
func TestDistributedMatchesCentralized(t *testing.T) {
	for _, tc := range []struct {
		name   string
		spec   tiling.UDGSpec
		lambda float64
	}{
		{"repaired", tiling.DefaultUDGSpec(), 16},
		{"relaxed", tiling.RelaxedUDGSpec(), 5},
		{"literal", tiling.PaperUDGSpec(), 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := rng.New(11)
			box := geom.Box(18, 18)
			pts := pointprocess.Poisson(box, tc.lambda, g)
			central, err := BuildUDG(pts, box, tc.spec, Options{
				Election: election.AlgorithmBroadcast,
				SkipBase: tc.spec.Mode == tiling.GeometryRepaired,
			})
			if err != nil {
				t.Fatal(err)
			}
			dist, err := BuildUDGDistributed(pts, box, tc.spec)
			if err != nil {
				t.Fatal(err)
			}
			dn := dist.Network

			if dn.Stats.GoodTiles != central.Stats.GoodTiles {
				t.Fatalf("good tiles: distributed %d vs centralized %d",
					dn.Stats.GoodTiles, central.Stats.GoodTiles)
			}
			// Per-tile leaders agree for good tiles.
			for c, ct := range central.Tiles {
				dt, ok := dn.Tiles[c]
				if ct.Good != (ok && dt.Good) {
					t.Fatalf("tile %v goodness mismatch", c)
				}
				if !ct.Good {
					continue
				}
				if dt.Rep != ct.Rep {
					t.Fatalf("tile %v rep: distributed %d vs %d", c, dt.Rep, ct.Rep)
				}
				for d := range ct.Bridge {
					if dt.Bridge[d] != ct.Bridge[d] {
						t.Fatalf("tile %v relay %d: distributed %d vs %d",
							c, d, dt.Bridge[d], ct.Bridge[d])
					}
				}
			}
			// Identical edge sets.
			if dn.Graph.EdgeCount != central.Graph.EdgeCount {
				t.Fatalf("edges: distributed %d vs centralized %d",
					dn.Graph.EdgeCount, central.Graph.EdgeCount)
			}
			for u := int32(0); int(u) < central.Graph.N; u++ {
				for _, v := range central.Graph.Neighbors(u) {
					if !dn.Graph.HasEdge(u, v) {
						t.Fatalf("centralized edge (%d,%d) missing from distributed", u, v)
					}
				}
			}
			// Identical member sets.
			if len(dn.Members) != len(central.Members) {
				t.Fatalf("members: distributed %d vs centralized %d",
					len(dn.Members), len(central.Members))
			}
			for i := range dn.Members {
				if dn.Members[i] != central.Members[i] {
					t.Fatalf("member list diverges at %d", i)
				}
			}
		})
	}
}

func TestDistributedMessageAccounting(t *testing.T) {
	g := rng.New(12)
	box := geom.Box(15, 15)
	pts := pointprocess.Poisson(box, 16, g)
	dist, err := BuildUDGDistributed(pts, box, tiling.DefaultUDGSpec())
	if err != nil {
		t.Fatal(err)
	}
	if dist.MessagesSent == 0 || dist.MessagesSent != dist.MessagesDelivered {
		t.Errorf("message accounting: sent %d delivered %d",
			dist.MessagesSent, dist.MessagesDelivered)
	}
	// Election broadcast dominates: messages must be at least the sum of
	// m(m−1) over regions, and the per-node cost must be O(1)-ish.
	perNode := float64(dist.MessagesSent) / float64(len(pts))
	if perNode > 20 {
		t.Errorf("messages per node %v — locality (P4) violated?", perNode)
	}
	if dist.Duration <= 0 {
		t.Errorf("duration = %v", dist.Duration)
	}
}

func TestDistributedRejectsInvalidSpec(t *testing.T) {
	bad := tiling.DefaultUDGSpec()
	bad.Re = 0.5
	if _, err := BuildUDGDistributed(nil, geom.Box(5, 5), bad); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestDistributedEmptyDeployment(t *testing.T) {
	dist, err := BuildUDGDistributed(nil, geom.Box(6, 6), tiling.DefaultUDGSpec())
	if err != nil {
		t.Fatal(err)
	}
	if dist.Network.Stats.GoodTiles != 0 || len(dist.Network.Members) != 0 {
		t.Error("empty deployment should give empty network")
	}
	if dist.MessagesSent != 0 {
		t.Errorf("empty deployment sent %d messages", dist.MessagesSent)
	}
}
