package core

import (
	"testing"

	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rng"
	"repro/internal/tiling"
)

func TestNNDistributedMatchesCentralized(t *testing.T) {
	spec := tiling.PaperNNSpec()
	g := rng.New(31)
	side := 5 * spec.TileSide()
	box := geom.Box(side, side)
	pts := pointprocess.Poisson(box, 1.0, g)

	central, err := BuildNN(pts, box, spec, Options{
		Election: election.AlgorithmBroadcast,
		SkipBase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	dist, err := BuildNNDistributed(pts, box, spec)
	if err != nil {
		t.Fatal(err)
	}
	dn := dist.Network

	if dn.Stats.GoodTiles != central.Stats.GoodTiles {
		t.Fatalf("good tiles: distributed %d vs centralized %d",
			dn.Stats.GoodTiles, central.Stats.GoodTiles)
	}
	for c, ct := range central.Tiles {
		dt, ok := dn.Tiles[c]
		if !ok {
			if ct.Population > 0 {
				t.Fatalf("tile %v missing from distributed", c)
			}
			continue
		}
		if ct.Good != dt.Good {
			t.Fatalf("tile %v goodness mismatch (pop central %d, dist %d)",
				c, ct.Population, dt.Population)
		}
		if !ct.Good {
			continue
		}
		if dt.Rep != ct.Rep {
			t.Fatalf("tile %v rep mismatch", c)
		}
		for d := range ct.Disk {
			if dt.Disk[d] != ct.Disk[d] || dt.Bridge[d] != ct.Bridge[d] {
				t.Fatalf("tile %v relay tables differ", c)
			}
		}
		if dt.Population != ct.Population {
			t.Fatalf("tile %v population: distributed %d vs %d",
				c, dt.Population, ct.Population)
		}
	}
	if dn.Graph.EdgeCount != central.Graph.EdgeCount {
		t.Fatalf("edges: distributed %d vs centralized %d",
			dn.Graph.EdgeCount, central.Graph.EdgeCount)
	}
	for u := int32(0); int(u) < central.Graph.N; u++ {
		for _, v := range central.Graph.Neighbors(u) {
			if !dn.Graph.HasEdge(u, v) {
				t.Fatalf("centralized edge (%d,%d) missing from distributed", u, v)
			}
		}
	}
	if len(dn.Members) != len(central.Members) {
		t.Fatalf("members: %d vs %d", len(dn.Members), len(central.Members))
	}
}

func TestNNDistributedMessageCost(t *testing.T) {
	spec := tiling.PaperNNSpec()
	g := rng.New(32)
	side := 4 * spec.TileSide()
	box := geom.Box(side, side)
	pts := pointprocess.Poisson(box, 1.0, g)
	dist, err := BuildNNDistributed(pts, box, spec)
	if err != nil {
		t.Fatal(err)
	}
	if dist.MessagesSent == 0 {
		t.Fatal("no messages sent")
	}
	// The census makes the cost ~2 messages per tile node plus elections:
	// still O(1) per node.
	perNode := float64(dist.MessagesSent) / float64(len(pts))
	if perNode > 25 {
		t.Errorf("messages per node = %v — locality violated?", perNode)
	}
}

func TestNNDistributedRejectsInvalidSpec(t *testing.T) {
	if _, err := BuildNNDistributed(nil, geom.Box(5, 5), tiling.NNSpec{A: -1, K: 5}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestNNDistributedEmpty(t *testing.T) {
	spec := tiling.PaperNNSpec()
	dist, err := BuildNNDistributed(nil, geom.Box(2*spec.TileSide(), 2*spec.TileSide()), spec)
	if err != nil {
		t.Fatal(err)
	}
	if dist.Network.Stats.GoodTiles != 0 || dist.MessagesSent != 0 {
		t.Error("empty deployment should be silent")
	}
}
