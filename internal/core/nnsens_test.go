package core

import (
	"testing"

	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/tiling"
)

// buildTestNN builds an NN-SENS network at unit density. The paper's exact
// parameters (k = 188, tile side 8.93) need large boxes; tests use them at
// a modest multiple of the tile size and validate against the real NN base
// graph — the executable Claim 2.3.
func buildTestNN(t *testing.T, seed rng.Seed, spec tiling.NNSpec, side float64) *Network {
	t.Helper()
	g := rng.New(seed)
	box := geom.Box(side, side)
	pts := pointprocess.Poisson(box, 1.0, g)
	n, err := BuildNN(pts, box, spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNNSENSBasicInvariants(t *testing.T) {
	spec := tiling.PaperNNSpec()
	n := buildTestNN(t, 1, spec, 5*spec.TileSide())
	if n.Stats.Tiles != 25 {
		t.Fatalf("tiles = %d want 25", n.Stats.Tiles)
	}
	if n.Stats.GoodTiles == 0 {
		t.Fatal("no good tiles at paper parameters")
	}
	// Claim 2.3 validation happened inside BuildNN (error on violation);
	// assert the stats agree.
	if n.Stats.MissingBaseEdges != 0 {
		t.Errorf("missing base edges: %d", n.Stats.MissingBaseEdges)
	}
	// Lattice coupling.
	for c, tn := range n.Tiles {
		x, y, ok := n.Map.Phi(c)
		if !ok {
			t.Fatalf("unmapped tile %v", c)
		}
		if n.Lat.IsOpen(x, y) != tn.Good {
			t.Fatalf("lattice/goodness mismatch at %v", c)
		}
	}
	// Sparsity: reps have ≤ 4 neighbors; relays ≤ 2 each unless a point
	// serves two overlapping bridge regions. Max degree 4 still holds.
	if d := n.MaxDegree(); d > 4 {
		t.Errorf("max degree %d > 4", d)
	}
}

func TestNNSENSPathBetweenAdjacentGoodTiles(t *testing.T) {
	spec := tiling.PaperNNSpec()
	n := buildTestNN(t, 2, spec, 6*spec.TileSide())
	pairs := n.AdjacentGoodPairs()
	if len(pairs) == 0 {
		t.Skip("no adjacent good pairs in this realization")
	}
	for _, pr := range pairs {
		// Figure 6: the rep path uses 4 relays = 5 hops.
		hops, ok := n.RepPathWithinBound(pr[0], pr[1], 1e18) // no per-hop bound for NN
		if hops < 0 {
			t.Fatalf("reps of adjacent good tiles %v disconnected", pr)
		}
		if hops > 5 {
			t.Fatalf("adjacent rep path has %d hops > 5", hops)
		}
		_ = ok
	}
}

func TestNNSENSPopulationCap(t *testing.T) {
	// With a tiny k the population cap k/2 bites and kills goodness.
	spec := tiling.NNSpec{A: 0.893, K: 8}
	n := buildTestNN(t, 3, spec, 4*spec.TileSide())
	// Mean tile population is ~79.7 ≫ 4, so no tile can be good.
	if n.Stats.GoodTiles != 0 {
		t.Errorf("good tiles with k=8 population cap: %d", n.Stats.GoodTiles)
	}
}

func TestNNSENSGoodTilePopulations(t *testing.T) {
	spec := tiling.PaperNNSpec()
	n := buildTestNN(t, 4, spec, 5*spec.TileSide())
	for c, tn := range n.Tiles {
		if tn.Good && tn.Population > spec.K/2 {
			t.Fatalf("good tile %v has population %d > k/2 = %d", c, tn.Population, spec.K/2)
		}
	}
}

func TestNNSENSElectionAccounting(t *testing.T) {
	spec := tiling.PaperNNSpec()
	g := rng.New(5)
	box := geom.Box(4*spec.TileSide(), 4*spec.TileSide())
	pts := pointprocess.Poisson(box, 1.0, g)
	tournament, err := BuildNN(pts, box, spec, Options{Election: election.AlgorithmTournament})
	if err != nil {
		t.Fatal(err)
	}
	broadcast, err := BuildNN(pts, box, spec, Options{Election: election.AlgorithmBroadcast})
	if err != nil {
		t.Fatal(err)
	}
	// Identical topology regardless of protocol (both elect max ID)…
	if tournament.Stats.GoodTiles != broadcast.Stats.GoodTiles ||
		tournament.Stats.SubgraphEdges != broadcast.Stats.SubgraphEdges {
		t.Error("election protocol changed the constructed network")
	}
	// …but different message costs (broadcast is quadratic).
	if tournament.Stats.ElectionMessages >= broadcast.Stats.ElectionMessages {
		t.Errorf("tournament (%d msgs) should beat broadcast (%d msgs)",
			tournament.Stats.ElectionMessages, broadcast.Stats.ElectionMessages)
	}
	if tournament.Stats.ElectionMessages == 0 {
		t.Error("no election messages recorded")
	}
}

func TestBuildNNRejectsInvalidSpec(t *testing.T) {
	if _, err := BuildNN(nil, geom.Box(5, 5), tiling.NNSpec{A: -1, K: 10}, Options{}); err == nil {
		t.Error("invalid spec accepted")
	}
	if _, err := BuildNN(nil, geom.Box(5, 5), tiling.NNSpec{A: 1, K: 1}, Options{}); err == nil {
		t.Error("K=1 spec accepted")
	}
}

func TestNNSENSEmptyDeployment(t *testing.T) {
	spec := tiling.PaperNNSpec()
	n, err := BuildNN(nil, geom.Box(2*spec.TileSide(), 2*spec.TileSide()), spec, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats.GoodTiles != 0 || len(n.Members) != 0 {
		t.Error("empty deployment should give empty network")
	}
}

func TestNNSENSSkipBase(t *testing.T) {
	spec := tiling.PaperNNSpec()
	g := rng.New(6)
	box := geom.Box(3*spec.TileSide(), 3*spec.TileSide())
	pts := pointprocess.Poisson(box, 1.0, g)
	n, err := BuildNN(pts, box, spec, Options{SkipBase: true})
	if err != nil {
		t.Fatal(err)
	}
	if n.Base != nil {
		t.Error("base graph built despite SkipBase")
	}
	if n.Stats.MissingBaseEdges != 0 {
		t.Error("missing-edge count without a base graph")
	}
}

func TestNNSENSReusesProvidedBase(t *testing.T) {
	spec := tiling.PaperNNSpec()
	g := rng.New(7)
	box := geom.Box(3*spec.TileSide(), 3*spec.TileSide())
	pts := pointprocess.Poisson(box, 1.0, g)
	base := rgg.NN(pts, spec.K)
	n, err := BuildNN(pts, box, spec, Options{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if n.Base != base {
		t.Error("provided base not reused")
	}
}
