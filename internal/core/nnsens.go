package core

import (
	"fmt"

	"repro/internal/election"
	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/rgg"
	"repro/internal/tiling"
)

// BuildNN constructs NN-SENS(2, k) over the deployment pts in box (§2.2):
//
//   - every mapped tile classifies its points into the nine regions (C0,
//     four outer disks C_*, four bridges E_*) and elects a leader per
//     occupied region;
//   - a tile is good when all nine leaders exist AND its population is at
//     most k/2;
//   - for each pair of adjacent good tiles the five-edge path
//     rep(t) — E_d(t) — C_d(t) — C_d'(t') — E_d'(t') — rep(t') is installed
//     (Figure 6: four relays between the two representatives).
//
// Edges toward direction d are installed only when the d-neighbor is also
// good: the Claim 2.3 ball argument that guarantees these edges exist in
// NN(2, k) needs BOTH tiles' populations capped at k/2, so only then are
// the hops guaranteed base edges. The construction validates each edge
// against the base NN graph when available and fails loudly on a violation
// — this is the executable form of Claim 2.3.
func BuildNN(pts []geom.Point, box geom.Rect, spec tiling.NNSpec, opt Options) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	gm := spec.Compile()
	n := &Network{
		Kind:   KindNN,
		Pts:    pts,
		Box:    box,
		Map:    tiling.NewMap(box, spec.TileSide()),
		Tiles:  make(map[tiling.Coord]*TileNodes),
		NNSpec: &spec,
	}
	n.Base = opt.Base
	if n.Base == nil && !opt.SkipBase {
		n.Base = rgg.NN(pts, spec.K)
	}
	if n.Base != nil && n.Base.N != len(pts) {
		return nil, fmt.Errorf("sens: base graph has %d vertices, deployment has %d", n.Base.N, len(pts))
	}

	groups := tiling.AssignTiles(n.Map, pts)
	n.Stats.Tiles = n.Map.Tiles()

	// Region elections. Index layout: 0 = C0, 1..4 = disks, 5..8 = bridges.
	var regionIDs [9][]int32
	var local []geom.Point
	var esc election.Scratch
	//sensvet:allow detrange — each tile's election reads only that tile's points; scratch is reset per iteration, stats are commutative counters, stores are keyed by tile
	for c, idx := range groups {
		local = tiling.LocalPoints(n.Map, c, pts, idx, local)
		for r := range regionIDs {
			regionIDs[r] = regionIDs[r][:0]
		}
		for k, p := range local {
			switch r := gm.Classify(p); {
			case r == tiling.NC0:
				regionIDs[0] = append(regionIDs[0], idx[k])
			case r >= tiling.NDiskRight && r <= tiling.NDiskBottom:
				d := int(r - tiling.NDiskRight)
				regionIDs[1+d] = append(regionIDs[1+d], idx[k])
			case r >= tiling.NBridgeRight && r <= tiling.NBridgeBottom:
				d := int(r - tiling.NBridgeRight)
				regionIDs[5+d] = append(regionIDs[5+d], idx[k])
			}
		}
		tn := &TileNodes{Population: len(idx), Rep: -1}
		tn.Rep = electRegion(opt.Election, regionIDs[0], &n.Stats, &esc)
		good := tn.Rep >= 0
		for d := 0; d < 4; d++ {
			tn.Disk[d] = electRegion(opt.Election, regionIDs[1+d], &n.Stats, &esc)
			tn.Bridge[d] = electRegion(opt.Election, regionIDs[5+d], &n.Stats, &esc)
			good = good && tn.Disk[d] >= 0 && tn.Bridge[d] >= 0
		}
		tn.Good = good && len(idx) <= spec.K/2
		if tn.Good {
			n.Stats.GoodTiles++
		}
		n.Tiles[c] = tn
	}

	// Connections: the five-edge path per adjacent good pair.
	b := graph.NewBuilder(len(pts))
	//sensvet:allow detrange — edge emission order is canonicalized by the counting-sort CSR build; path stats are commutative counters
	for c, tn := range n.Tiles {
		if !tn.Good {
			continue
		}
		for _, d := range []tiling.Direction{tiling.Right, tiling.Top} {
			nb, ok := n.Tiles[c.Neighbor(d)]
			if !ok || !nb.Good {
				continue
			}
			od := d.Opposite()
			hops := [5][2]int32{
				{tn.Rep, tn.Bridge[d]},
				{tn.Bridge[d], tn.Disk[d]},
				{tn.Disk[d], nb.Disk[od]},
				{nb.Disk[od], nb.Bridge[od]},
				{nb.Bridge[od], nb.Rep},
			}
			for _, h := range hops {
				if validateEdge(n, h[0], h[1], false) {
					b.AddEdge(h[0], h[1])
				}
			}
		}
	}
	n.finalize(b)

	if n.Base != nil && n.Stats.MissingBaseEdges > 0 {
		return nil, fmt.Errorf("sens: Claim 2.3 invariant violated: %d SENS edges absent from NN(2, %d) base",
			n.Stats.MissingBaseEdges, spec.K)
	}
	return n, nil
}
