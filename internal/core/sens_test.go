package core

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/graph"
	"repro/internal/pointprocess"
	"repro/internal/rgg"
	"repro/internal/rng"
	"repro/internal/tiling"
)

// buildTestUDG builds a moderately sized supercritical UDG-SENS network.
func buildTestUDG(t *testing.T, seed rng.Seed, lambda float64, side float64) *Network {
	t.Helper()
	g := rng.New(seed)
	box := geom.Box(side, side)
	pts := pointprocess.Poisson(box, lambda, g)
	n, err := BuildUDG(pts, box, tiling.DefaultUDGSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestUDGSENSBasicInvariants(t *testing.T) {
	// λ = 16 is comfortably above the repaired geometry's λs ≈ 11.7.
	n := buildTestUDG(t, 1, 16, 24)
	if n.Stats.Tiles == 0 {
		t.Fatal("no tiles mapped")
	}
	if n.Stats.GoodTiles == 0 {
		t.Fatal("no good tiles at λ=16")
	}
	if n.GoodFraction() < 0.6 {
		t.Errorf("good fraction %v too low for λ=16", n.GoodFraction())
	}
	if len(n.Members) == 0 {
		t.Fatal("empty network")
	}
	// P1: sparsity.
	if d := n.MaxDegree(); d > 4 {
		t.Errorf("max degree %d > 4 (P1 violated)", d)
	}
	// Every SENS edge is a base UDG edge (repaired-mode invariant, already
	// enforced by the constructor — double check stats).
	if n.Stats.MissingBaseEdges != 0 {
		t.Errorf("missing base edges: %d", n.Stats.MissingBaseEdges)
	}
	// The network uses only a fraction of all nodes (the paper's point).
	if af := n.ActiveFraction(); af <= 0 || af >= 0.5 {
		t.Errorf("active fraction %v out of expected range (0, 0.5)", af)
	}
	// Lattice coupling matches tile goodness.
	for c, tn := range n.Tiles {
		x, y, ok := n.Map.Phi(c)
		if !ok {
			t.Fatalf("unmapped tile %v in Tiles", c)
		}
		if n.Lat.IsOpen(x, y) != tn.Good {
			t.Fatalf("lattice/goodness mismatch at %v", c)
		}
	}
}

func TestUDGSENSEdgeLengthsWithinRadius(t *testing.T) {
	n := buildTestUDG(t, 2, 16, 18)
	for u := int32(0); int(u) < n.Graph.N; u++ {
		for _, v := range n.Graph.Neighbors(u) {
			if d := n.Pts[u].Dist(n.Pts[v]); d > n.UDGSpec.Radius+1e-9 {
				t.Fatalf("SENS edge (%d,%d) length %v exceeds radius", u, v, d)
			}
		}
	}
}

func TestUDGSENSClaim21PathBound(t *testing.T) {
	// Claim 2.1: reps of adjacent good tiles connect via ≤ 3 hops of length
	// ≤ 1 each (cu ≤ 3).
	n := buildTestUDG(t, 3, 16, 18)
	pairs := n.AdjacentGoodPairs()
	if len(pairs) == 0 {
		t.Fatal("no adjacent good pairs")
	}
	for _, pr := range pairs {
		hops, ok := n.RepPathWithinBound(pr[0], pr[1], 1.0)
		if hops < 0 {
			t.Fatalf("reps of adjacent good tiles %v disconnected", pr)
		}
		if !ok {
			t.Fatalf("per-hop bound violated for %v", pr)
		}
		if hops > 3 {
			t.Fatalf("adjacent rep path %v has %d hops > 3", pr, hops)
		}
	}
}

func TestUDGSENSLiteralModeEmpty(t *testing.T) {
	g := rng.New(4)
	box := geom.Box(12, 12)
	pts := pointprocess.Poisson(box, 5, g)
	n, err := BuildUDG(pts, box, tiling.PaperUDGSpec(), Options{SkipBase: true})
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats.GoodTiles != 0 {
		t.Errorf("literal mode produced %d good tiles — regions should be empty", n.Stats.GoodTiles)
	}
	if len(n.Members) != 0 {
		t.Errorf("literal mode produced a network with %d members", len(n.Members))
	}
}

func TestUDGSENSRelaxedModeHandshakes(t *testing.T) {
	g := rng.New(5)
	box := geom.Box(16, 16)
	pts := pointprocess.Poisson(box, 4, g)
	n, err := BuildUDG(pts, box, tiling.RelaxedUDGSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The relaxed bands are occupied easily at λ=4 (area ≈ 0.167 each… the
	// point is the mode runs; goodness is plentiful at this density).
	if n.Stats.GoodTiles == 0 {
		t.Fatal("relaxed mode produced no good tiles at λ=4")
	}
	if n.Stats.HandshakeAttempts == 0 {
		t.Fatal("no handshakes attempted")
	}
	// Relaxed mode must never install an edge longer than the radius:
	// failures are allowed, invalid edges are not.
	for u := int32(0); int(u) < n.Graph.N; u++ {
		for _, v := range n.Graph.Neighbors(u) {
			if d := n.Pts[u].Dist(n.Pts[v]); d > 1+1e-9 {
				t.Fatalf("relaxed SENS kept an overlong edge: %v", d)
			}
		}
	}
}

func TestUDGSENSSubcritical(t *testing.T) {
	// Far below λs almost no tile is good.
	n := buildTestUDG(t, 6, 2, 18)
	if f := n.GoodFraction(); f > 0.05 {
		t.Errorf("good fraction %v at λ=2 — expected near zero", f)
	}
}

func TestUDGSENSGoodFractionMatchesAnalytic(t *testing.T) {
	n := buildTestUDG(t, 7, 14, 45)
	want := n.UDGSpec.GoodProbability(14)
	got := n.GoodFraction()
	if math.Abs(got-want) > 0.05 {
		t.Errorf("good fraction %v vs analytic %v", got, want)
	}
}

func TestBuildUDGRejectsInvalidSpec(t *testing.T) {
	bad := tiling.DefaultUDGSpec()
	bad.Xe = 0.9
	if _, err := BuildUDG(nil, geom.Box(5, 5), bad, Options{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestBuildUDGRejectsMismatchedBase(t *testing.T) {
	g := rng.New(8)
	box := geom.Box(6, 6)
	pts := pointprocess.Poisson(box, 3, g)
	other := append(append([]geom.Point(nil), pts...), geom.Pt(1, 1)) // one extra vertex
	base := rgg.UDG(other, 1)
	if _, err := BuildUDG(pts, box, tiling.DefaultUDGSpec(), Options{Base: base}); err == nil {
		t.Error("mismatched base accepted")
	}
}

func TestUDGSENSEmptyDeployment(t *testing.T) {
	n, err := BuildUDG(nil, geom.Box(6, 6), tiling.DefaultUDGSpec(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats.GoodTiles != 0 || len(n.Members) != 0 {
		t.Error("empty deployment should give empty network")
	}
	if n.MaxDegree() != 0 {
		t.Error("empty network degree")
	}
	if n.ActiveFraction() != 0 {
		t.Error("empty active fraction")
	}
}

func TestSampleRepStretch(t *testing.T) {
	n := buildTestUDG(t, 9, 16, 30)
	g := rng.New(10)
	samples := n.SampleRepStretch(60, g)
	if len(samples) != 60 {
		t.Fatalf("got %d samples", len(samples))
	}
	for _, s := range samples {
		if s.SubLen < s.Euclid-1e-9 {
			t.Fatalf("path shorter than Euclidean distance: %+v", s)
		}
		if s.Stretch() < 1-1e-9 {
			t.Fatalf("stretch below 1: %+v", s)
		}
		if s.Hops <= 0 || s.LatticeD < 0 {
			t.Fatalf("degenerate sample: %+v", s)
		}
	}
}

func TestEmptyBoxProbabilityBounds(t *testing.T) {
	n := buildTestUDG(t, 11, 16, 24)
	g := rng.New(12)
	// Tiny boxes are almost always empty; huge boxes almost never.
	small := n.EmptyBoxProbability(0.05, 300, g)
	large := n.EmptyBoxProbability(12, 300, g)
	if small.P < 0.8 {
		t.Errorf("tiny box empty probability %v — expected near 1", small.P)
	}
	if large.P > 0.05 {
		t.Errorf("huge box empty probability %v — expected near 0", large.P)
	}
	// Out-of-range ℓ yields an empty measurement.
	if got := n.EmptyBoxProbability(100, 10, g); got.N != 0 {
		t.Errorf("oversized box should measure nothing: %+v", got)
	}
}

func TestDegreeHistogram(t *testing.T) {
	n := buildTestUDG(t, 13, 16, 18)
	h := n.DegreeHistogram()
	if len(h) > 5 {
		t.Fatalf("degrees above 4 present: %v", h)
	}
	total := 0
	for d, c := range h {
		if d == 0 && c > 0 {
			t.Errorf("members with degree 0: %d", c)
		}
		total += c
	}
	if total != len(n.Members) {
		t.Errorf("histogram total %d != members %d", total, len(n.Members))
	}
}

// twoComponentNetwork hand-builds a Network whose good-tile representatives
// sit in two disconnected components — the pre-prune configuration that made
// the old SampleRepStretch spin forever on cross-component draws.
func twoComponentNetwork(reps []int32) *Network {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // component A
	b.AddEdge(2, 3) // component B
	tiles := map[tiling.Coord]*TileNodes{}
	for i, r := range reps {
		tiles[tiling.Coord{I: i, J: 0}] = &TileNodes{Good: true, Rep: r}
	}
	return &Network{
		Pts:   []geom.Point{geom.Pt(0.5, 0.5), geom.Pt(1.5, 0.5), geom.Pt(2.5, 0.5), geom.Pt(3.5, 0.5)},
		Graph: b.Build(),
		InNet: []bool{true, true, true, true},
		Map:   tiling.Map{Tiling: tiling.Tiling{Side: 1}, W: 4, H: 1},
		Tiles: tiles,
	}
}

func TestSampleRepStretchTerminatesOnDisconnectedReps(t *testing.T) {
	// Every rep pair crosses the component cut: sampling must hit its
	// attempt cap and return what it collected (nothing) instead of looping.
	n := twoComponentNetwork([]int32{0, 2})
	if got := n.SampleRepStretch(10, rng.New(3)); len(got) != 0 {
		t.Fatalf("cross-component sampling returned %d samples", len(got))
	}

	// With reps on both sides of the cut, only same-component pairs are
	// accepted and every accepted sample is finite.
	n = twoComponentNetwork([]int32{0, 1, 2, 3})
	samples := n.SampleRepStretch(25, rng.New(4))
	if len(samples) == 0 {
		t.Fatal("no same-component samples collected")
	}
	if len(samples) > 25 {
		t.Fatalf("collected %d samples, asked for 25", len(samples))
	}
	for _, s := range samples {
		if math.IsInf(s.SubLen, 1) || s.Hops <= 0 {
			t.Fatalf("accepted a cross-component sample: %+v", s)
		}
	}
}
